#include "testkit/fuzzer.hpp"

#include <cstdio>
#include <string>

#include "core/testbed.hpp"
#include "testkit/fault_injector.hpp"
#include "util/rng.hpp"

namespace ddoshield::testkit {

using util::SimTime;

core::Scenario Fuzzer::generate_scenario(std::uint64_t seed) {
  util::Rng root{seed};
  util::Rng r = root.fork("scenario");

  core::Scenario s;
  s.seed = seed;
  s.device_count = static_cast<std::size_t>(2 + r.uniform_u64(9));  // 2..10
  s.duration = SimTime::millis(r.uniform_int(3000, 6000));
  s.infection_start = SimTime::millis(r.uniform_int(200, 1000));
  s.vulnerable_fraction = r.uniform(0.5, 1.0);

  s.benign.http_session_rate = r.uniform(0.2, 1.5);
  s.benign.http_mean_requests = r.uniform(1.0, 6.0);
  s.benign.video_session_rate = r.uniform(0.02, 0.3);
  s.benign.video_mean_watch_seconds = r.uniform(2.0, 10.0);
  s.benign.ftp_session_rate = r.uniform(0.02, 0.2);
  s.benign.ftp_mean_files = r.uniform(1.0, 4.0);
  s.benign.telemetry_publish_rate = r.bernoulli(0.3) ? r.uniform(0.5, 3.0) : 0.0;

  s.topology.access_link.rate_bps = r.uniform(5e6, 50e6);
  s.topology.access_link.delay = SimTime::micros(r.uniform_int(200, 5000));
  s.topology.access_link.queue_bytes =
      static_cast<std::uint32_t>(r.uniform_int(16, 128)) * 1024u;
  s.topology.uplink.rate_bps = r.uniform(20e6, 200e6);
  s.topology.uplink.delay = SimTime::micros(r.uniform_int(200, 2000));
  s.topology.uplink.queue_bytes =
      static_cast<std::uint32_t>(r.uniform_int(64, 512)) * 1024u;

  // 0-4 attack bursts inside the window where bots can exist and the
  // burst still ends before the scenario does.
  const std::uint64_t bursts = r.uniform_u64(5);
  for (std::uint64_t i = 0; i < bursts; ++i) {
    core::AttackBurst b;
    b.duration = SimTime::millis(r.uniform_int(300, 1200));
    const std::int64_t earliest = (s.infection_start + SimTime::millis(500)).ns();
    const std::int64_t latest = (s.duration - b.duration).ns();
    if (latest <= earliest) continue;
    b.start = SimTime::nanos(earliest + static_cast<std::int64_t>(r.uniform_u64(
                                            static_cast<std::uint64_t>(latest - earliest))));
    b.type = static_cast<botnet::AttackType>(r.uniform_u64(3));
    b.packets_per_second_per_bot = r.uniform(100.0, 500.0);
    b.spoof_sources = r.bernoulli(0.4);
    s.attacks.push_back(b);
  }

  if (r.bernoulli(0.25)) {
    s.churn.events_per_device_per_second = r.uniform(0.02, 0.1);
    s.churn.down_time = SimTime::millis(r.uniform_int(300, 1500));
  }
  return s;
}

namespace {

void log_packet(EventLog& log, SimTime now, const net::Packet& pkt, net::TapDirection dir) {
  const char d = dir == net::TapDirection::kSent       ? 's'
                 : dir == net::TapDirection::kReceived ? 'r'
                                                       : 'f';
  char line[224];
  std::snprintf(line, sizeof line,
                "t=%lld %c uid=%llu %s:%u>%s:%u proto=%u flags=%u seq=%u ack=%u len=%u "
                "origin=%u corrupt=%d",
                static_cast<long long>(now.ns()), d,
                static_cast<unsigned long long>(pkt.uid), pkt.src.to_string().c_str(),
                pkt.src_port, pkt.dst.to_string().c_str(), pkt.dst_port,
                static_cast<unsigned>(pkt.proto), pkt.tcp_flags, pkt.seq, pkt.ack,
                pkt.payload_bytes, static_cast<unsigned>(pkt.origin), pkt.corrupted ? 1 : 0);
  log.append(line);
}

// Deterministic fault plan drawn from the seed: which links flap, which
// degrade, which devices crash, and when — all inside [0.1, 0.9] of the
// scenario so recovery lands before teardown.
void plan_faults(core::Testbed& bed, FaultInjector& injector, std::uint64_t seed) {
  util::Rng r = util::Rng{seed}.fork("faultplan");
  const core::Scenario& s = bed.scenario();
  const net::StarTopology& topo = bed.topology();
  const std::int64_t dur = s.duration.ns();

  const std::uint64_t n = r.uniform_u64(7);  // 0..6 faults
  for (std::uint64_t i = 0; i < n; ++i) {
    const SimTime at = SimTime::nanos(dur / 10 + static_cast<std::int64_t>(
                                                     r.uniform_u64(static_cast<std::uint64_t>(dur / 2))));
    const SimTime down = SimTime::nanos(dur / 50 + static_cast<std::int64_t>(r.uniform_u64(
                                                       static_cast<std::uint64_t>(dur / 5))));
    const std::size_t dev = static_cast<std::size_t>(r.uniform_u64(topo.devices.size()));
    switch (r.uniform_u64(4)) {
      case 0:  // flap one device's access link
        injector.flap_link(topo.devices[dev]->link_at(0), at, down,
                           "access_" + std::to_string(dev));
        break;
      case 1:  // flap the victim uplink — the paper's worst-case outage
        injector.flap_link(*topo.uplink, at, down, "uplink");
        break;
      case 2: {  // degrade a random link: loss + corruption + jitter
        net::LinkFault fault;
        fault.drop_probability = r.uniform(0.0, 0.3);
        fault.corrupt_probability = r.uniform(0.0, 0.1);
        fault.extra_delay = SimTime::micros(r.uniform_int(0, 20000));
        fault.jitter = SimTime::micros(r.uniform_int(0, 10000));
        net::Network& net = bed.network();
        const std::size_t li = static_cast<std::size_t>(r.uniform_u64(net.link_count()));
        injector.degrade_link(net.link_at(li), at, down, fault,
                              "link_" + std::to_string(li));
        break;
      }
      default:  // crash + restart a device container
        injector.crash_node(
            at, down, [&bed, dev]() { bed.crash_device(dev); },
            [&bed, dev]() { bed.restart_device(dev); }, "dev_" + std::to_string(dev));
        break;
    }
  }
}

}  // namespace

FuzzResult Fuzzer::run(std::uint64_t seed) {
  FuzzResult result;
  result.seed = seed;
  result.scenario = generate_scenario(seed);

  core::Testbed bed{result.scenario};
  bed.deploy();
  net::Simulator& sim = bed.network().simulator();

  std::unique_ptr<InvariantChecker> checker;
  if (options_.check_invariants) {
    checker = std::make_unique<InvariantChecker>(sim);
    checker->watch_network(bed.network());
  }

  if (options_.log_packets) {
    bed.topology().tserver->add_tap(
        [&result, &sim](const net::Packet& pkt, net::TapDirection dir) {
          ++result.packets_tapped;
          log_packet(result.log, sim.now(), pkt, dir);
        });
  }

  FaultInjector injector{sim, seed, &result.log};
  if (options_.enable_faults) {
    plan_faults(bed, injector, seed);
  }

  ids::RealTimeIds* ids = nullptr;
  if (options_.ids_model != nullptr) {
    ids::IdsConfig cfg;
    cfg.window = options_.ids_window;
    ids = &bed.deploy_ids(*options_.ids_model, cfg);
    if (options_.enable_mitigation) bed.enable_mitigation();
  }

  bed.run();
  // Let retransmission chains, TIME_WAIT timers, and fault recoveries
  // finish so per-link conservation can be checked exactly.
  sim.run_until(result.scenario.duration + options_.drain_grace);

  if (ids != nullptr) {
    for (const auto& w : ids->reports()) {
      // Integer fields only: the cpu_* members are wall-clock measurements
      // and would break byte-identical replay.
      result.log.append("window=" + std::to_string(w.window_index) +
                        " start=" + std::to_string(w.window_start.ns()) +
                        " packets=" + std::to_string(w.packets) +
                        " truth_mal=" + std::to_string(w.truth_malicious) +
                        " pred_mal=" + std::to_string(w.predicted_malicious) +
                        " single=" + std::to_string(w.single_class ? 1 : 0));
    }
    result.ids_windows = ids->reports().size();
  }

  if (bed.mitigation() != nullptr) {
    // Action lines are integer-only, so they replay byte for byte; the
    // summary also pins the enforcement drop counters and cookie count.
    for (const auto& line : bed.mitigation()->action_log().lines()) {
      result.log.append(line);
    }
    result.mitigation_actions = bed.mitigation()->action_log().size();
    const net::NodeStats& router = bed.topology().router->stats();
    result.log.append(
        "mitigation actions=" + std::to_string(result.mitigation_actions) +
        " acl_dropped=" + std::to_string(router.dropped_acl) +
        " ratelimit_dropped=" + std::to_string(router.dropped_ratelimit) +
        " cookies_sent=" + std::to_string(bed.topology().tserver->tcp().syn_cookies_sent()));
  }

  if (checker) {
    result.invariants = checker->finalize();
    for (const auto& v : result.invariants.violations) {
      result.log.append("violation: " + v);
    }
  }

  result.faults_scheduled = injector.faults_scheduled();
  result.faults_fired = injector.faults_fired();
  result.events_executed = sim.events_executed();
  result.end_time = sim.now();
  result.log.append("end t=" + std::to_string(result.end_time.ns()) +
                    " events=" + std::to_string(result.events_executed) +
                    " tapped=" + std::to_string(result.packets_tapped) +
                    " faults=" + std::to_string(result.faults_fired) + " violations=" +
                    std::to_string(result.invariants.total_violations));
  return result;
}

}  // namespace ddoshield::testkit
