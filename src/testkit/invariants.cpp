#include "testkit/invariants.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

namespace ddoshield::testkit {

namespace {

// RFC 1982 serial comparison over the 32-bit sequence space.
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

std::string flow_label(const net::Packet& pkt) {
  return pkt.src.to_string() + ":" + std::to_string(pkt.src_port) + "->" +
         pkt.dst.to_string() + ":" + std::to_string(pkt.dst_port);
}

}  // namespace

std::string InvariantReport::summary() const {
  std::string s = "invariants: " + std::to_string(total_violations) + " violation(s), " +
                  std::to_string(packets_checked) + " segments checked, " +
                  std::to_string(flows_tracked) + " flow directions, " +
                  std::to_string(directions_checked) + " link directions";
  for (const auto& v : violations) {
    s += "\n  - " + v;
  }
  return s;
}

InvariantChecker::InvariantChecker(net::Simulator& sim) : sim_{sim} {}

void InvariantChecker::violation(std::string msg) {
  ++report_.total_violations;
  if (report_.total_violations == 1) {
    // First violation: snapshot the flight recorder's ring while the crash
    // site is still fresh (no-op unless a dump path is armed). Later
    // violations would only overwrite the interesting events.
    obs::FlightRecorder::global().dump_if_armed(msg);
  }
  if (report_.violations.size() < kMaxStoredViolations) {
    report_.violations.push_back(std::move(msg));
  }
}

void InvariantChecker::watch_node(net::Node& node) {
  WatchedNode w;
  w.node = &node;
  w.acl_baseline = node.stats().dropped_acl;
  w.ratelimit_baseline = node.stats().dropped_ratelimit;
  nodes_.push_back(w);
  node.add_tap([this](const net::Packet& pkt, net::TapDirection dir) {
    if (dir != net::TapDirection::kSent) return;
    if (pkt.proto != net::IpProto::kTcp || !pkt.stack_tcp || pkt.corrupted) return;
    on_sent_segment(pkt);
  });
}

void InvariantChecker::watch_link_direction(net::Link& link, const net::Node& from) {
  WatchedDirection w;
  w.link = &link;
  w.from = &from;
  w.label = from.name() + "->" + link.peer_of(from).name();
  w.baseline = link.stats_from(from);
  directions_.push_back(std::move(w));
}

void InvariantChecker::watch_network(net::Network& net) {
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    watch_node(net.node_at(i));
  }
  // Every link direction shows up exactly once when enumerated as
  // (node, interface): each link is attached to each endpoint once.
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    net::Node& n = net.node_at(i);
    for (std::size_t k = 0; k < n.interface_count(); ++k) {
      watch_link_direction(n.link_at(k), n);
    }
  }
  auto& reg = obs::MetricsRegistry::global();
  obs_tx_baseline_ = reg.counter("net.link.tx_packets").value();
  obs_dropped_baseline_ = reg.counter("net.link.dropped_packets").value();
  obs_acl_baseline_ = reg.counter("net.acl_dropped").value();
  obs_ratelimit_baseline_ = reg.counter("net.ratelimit_dropped").value();
  crosscheck_obs_ = true;
}

void InvariantChecker::on_sent_segment(const net::Packet& pkt) {
  ++report_.packets_checked;
  auto& st = flows_[FlowKey{pkt.src.bits(), pkt.src_port, pkt.dst.bits(), pkt.dst_port}];

  const bool syn = pkt.has_flag(net::TcpFlags::kSyn);
  const bool fin = pkt.has_flag(net::TcpFlags::kFin);
  const bool rst = pkt.has_flag(net::TcpFlags::kRst);
  const bool ack = pkt.has_flag(net::TcpFlags::kAck);
  // SYN and FIN each occupy one sequence number.
  const std::uint32_t effective_len = pkt.payload_bytes + (syn ? 1u : 0u) + (fin ? 1u : 0u);
  const std::uint32_t edge = pkt.seq + effective_len;

  if (syn) {
    if (!st.sent_syn || pkt.seq != st.syn_seq) {
      // First SYN, or a new ISS on a reused 4-tuple: open a fresh epoch.
      // (A retransmitted SYN keeps its ISS and falls through unchanged.)
      st = FlowDirState{};
      st.sent_syn = true;
      st.syn_seq = pkt.seq;
      st.has_edge = true;
      st.max_edge = edge;
    }
    if (pkt.payload_bytes > 0) {
      violation("tcp: SYN carrying payload on " + flow_label(pkt) + " seq=" +
                std::to_string(pkt.seq) + " len=" + std::to_string(pkt.payload_bytes));
    }
    return;
  }

  // Raw-socket responders (listener RSTs to unexpected segments) never
  // offered a SYN; flood 4-tuple collisions make their acks jump freely,
  // so the stateful checks below apply only to connection-ful directions.
  if (!st.sent_syn) {
    if (!rst && pkt.payload_bytes > 0) {
      violation("tcp: data before handshake on " + flow_label(pkt) + " seq=" +
                std::to_string(pkt.seq) + " len=" + std::to_string(pkt.payload_bytes));
    }
    return;
  }

  if (rst) {
    // Further RSTs are legal: a closed endpoint RSTs every stray segment
    // the peer keeps retransmitting at it.
    st.rst_sent = true;
    return;
  }

  if (st.rst_sent) {
    violation("tcp: segment after RST on " + flow_label(pkt) + " seq=" +
              std::to_string(pkt.seq) + " flags=" + std::to_string(pkt.tcp_flags));
    return;
  }

  if (effective_len > 0) {
    // New bytes must extend the stream contiguously: a start past the
    // highest edge ever sent means the stack skipped sequence space.
    if (st.has_edge && seq_lt(st.max_edge, pkt.seq)) {
      violation("tcp: sequence gap on " + flow_label(pkt) + " seq=" +
                std::to_string(pkt.seq) + " prev_edge=" + std::to_string(st.max_edge));
    }
    if (st.fin_sent) {
      // Nothing new may follow the FIN; retransmitting up to it is legal.
      if (seq_lt(st.fin_edge, edge)) {
        violation("tcp: data beyond FIN on " + flow_label(pkt) + " seq=" +
                  std::to_string(pkt.seq) + " edge=" + std::to_string(edge) +
                  " fin_edge=" + std::to_string(st.fin_edge));
      }
    }
    if (!st.has_edge || seq_lt(st.max_edge, edge)) {
      st.has_edge = true;
      st.max_edge = edge;
    }
  }

  if (fin) {
    if (st.fin_sent && st.fin_edge != edge) {
      violation("tcp: FIN moved on " + flow_label(pkt) + " old_edge=" +
                std::to_string(st.fin_edge) + " new_edge=" + std::to_string(edge));
    }
    st.fin_sent = true;
    st.fin_edge = edge;
  }

  if (ack) {
    if (st.has_ack && seq_lt(pkt.ack, st.last_ack)) {
      violation("tcp: cumulative ack regressed on " + flow_label(pkt) + " ack=" +
                std::to_string(pkt.ack) + " prev=" + std::to_string(st.last_ack));
    }
    if (!st.has_ack || seq_lt(st.last_ack, pkt.ack)) {
      st.has_ack = true;
      st.last_ack = pkt.ack;
    }
  }
}

std::uint64_t InvariantChecker::check_metrics(const obs::MetricsRegistry& registry,
                                              std::vector<std::string>* out) {
  std::uint64_t found = 0;
  auto add = [&](std::string msg) {
    ++found;
    if (out != nullptr) out->push_back(std::move(msg));
  };

  for (const auto& [name, h] : registry.histograms()) {
    std::uint64_t bucket_sum = 0;
    for (const auto b : h.buckets()) bucket_sum += b;
    if (bucket_sum != h.count()) {
      add("metrics: histogram " + name + " count " + std::to_string(h.count()) +
          " != bucket sum " + std::to_string(bucket_sum));
    }
    if (h.count() > 0) {
      const double mean = h.mean();
      if (mean < static_cast<double>(h.min()) || mean > static_cast<double>(h.max())) {
        add("metrics: histogram " + name + " mean outside [min, max]");
      }
      const double p50 = h.quantile(0.50);
      const double p90 = h.quantile(0.90);
      const double p99 = h.quantile(0.99);
      if (p50 > p90 || p90 > p99) {
        add("metrics: histogram " + name + " quantiles out of order");
      }
    }
  }
  for (const auto& [name, g] : registry.gauges()) {
    if (g.high_water() < g.value()) {
      add("metrics: gauge " + name + " high_water below value");
    }
  }

  // The snapshot writer must be a pure function of registry state.
  std::ostringstream first, second;
  obs::write_json_snapshot(registry, first);
  obs::write_json_snapshot(registry, second);
  if (first.str() != second.str()) {
    add("metrics: snapshot not byte-idempotent");
  }
  if (first.str().find("\"schema\": \"ddoshield-metrics-v2\"") == std::string::npos) {
    add("metrics: snapshot missing ddoshield-metrics-v2 schema tag");
  }
  return found;
}

InvariantReport InvariantChecker::finalize() {
  if (finalized_) {
    throw std::logic_error("InvariantChecker::finalize called twice");
  }
  finalized_ = true;

  if (const auto regressions = sim_.time_regressions(); regressions != 0) {
    violation("sim: clock ran " + std::to_string(regressions) +
              " event(s) stamped in the past");
  }

  const bool drained = sim_.events_pending() == 0;
  std::uint64_t tx_delta_sum = 0;
  std::uint64_t dropped_delta_sum = 0;
  for (const auto& w : directions_) {
    const net::LinkDirectionStats& s = w.link->stats_from(*w.from);
    const std::uint64_t tx = s.tx_packets - w.baseline.tx_packets;
    const std::uint64_t delivered = s.delivered_packets - w.baseline.delivered_packets;
    const std::uint64_t lost = s.lost_in_flight_packets - w.baseline.lost_in_flight_packets;
    const std::uint64_t dropped = s.dropped_packets - w.baseline.dropped_packets;
    const std::uint64_t fault_dropped =
        s.fault_dropped_packets - w.baseline.fault_dropped_packets;
    tx_delta_sum += tx;
    dropped_delta_sum += dropped;

    if (delivered + lost > tx) {
      violation("link " + w.label + ": delivered+lost (" + std::to_string(delivered) +
                "+" + std::to_string(lost) + ") exceeds tx " + std::to_string(tx));
    } else if (drained && delivered + lost != tx) {
      violation("link " + w.label + ": conservation broken after drain, tx=" +
                std::to_string(tx) + " delivered=" + std::to_string(delivered) +
                " lost_in_flight=" + std::to_string(lost));
    }
    if (fault_dropped > dropped) {
      violation("link " + w.label + ": fault drops " + std::to_string(fault_dropped) +
                " exceed total drops " + std::to_string(dropped));
    }
  }

  std::uint64_t acl_delta_sum = 0;
  std::uint64_t ratelimit_delta_sum = 0;
  for (const auto& w : nodes_) {
    acl_delta_sum += w.node->stats().dropped_acl - w.acl_baseline;
    ratelimit_delta_sum += w.node->stats().dropped_ratelimit - w.ratelimit_baseline;
  }

  if (crosscheck_obs_) {
    auto& reg = obs::MetricsRegistry::global();
    const std::uint64_t obs_tx = reg.counter("net.link.tx_packets").value() - obs_tx_baseline_;
    const std::uint64_t obs_dropped =
        reg.counter("net.link.dropped_packets").value() - obs_dropped_baseline_;
    if (obs_tx != tx_delta_sum) {
      violation("obs: net.link.tx_packets delta " + std::to_string(obs_tx) +
                " != per-link sum " + std::to_string(tx_delta_sum));
    }
    if (obs_dropped != dropped_delta_sum) {
      violation("obs: net.link.dropped_packets delta " + std::to_string(obs_dropped) +
                " != per-link sum " + std::to_string(dropped_delta_sum));
    }
    const std::uint64_t obs_acl = reg.counter("net.acl_dropped").value() - obs_acl_baseline_;
    const std::uint64_t obs_ratelimit =
        reg.counter("net.ratelimit_dropped").value() - obs_ratelimit_baseline_;
    if (obs_acl != acl_delta_sum) {
      violation("obs: net.acl_dropped delta " + std::to_string(obs_acl) +
                " != per-node sum " + std::to_string(acl_delta_sum));
    }
    if (obs_ratelimit != ratelimit_delta_sum) {
      violation("obs: net.ratelimit_dropped delta " + std::to_string(obs_ratelimit) +
                " != per-node sum " + std::to_string(ratelimit_delta_sum));
    }
  }

  report_.total_violations += check_metrics(obs::MetricsRegistry::global(), &report_.violations);
  if (report_.violations.size() > kMaxStoredViolations) {
    report_.violations.resize(kMaxStoredViolations);
  }

  report_.flows_tracked = flows_.size();
  report_.directions_checked = directions_.size();
  return report_;
}

}  // namespace ddoshield::testkit
