#include "testkit/fault_injector.hpp"

#include <cstdio>

#include "util/rng.hpp"

namespace ddoshield::testkit {

FaultInjector::FaultInjector(net::Simulator& sim, std::uint64_t seed, EventLog* log)
    : sim_{sim}, seed_{seed}, log_{log} {}

void FaultInjector::fired(util::SimTime at, const std::string& what) {
  ++faults_fired_;
  if (log_ != nullptr) {
    log_->append("t=" + std::to_string(at.ns()) + " fault=" + what);
  }
}

std::uint64_t FaultInjector::next_stream_seed() {
  // Each degraded link gets its own dice stream so adding a fault to one
  // link never perturbs another link's draws under the same seed.
  util::Rng r{seed_};
  return r.fork("stream" + std::to_string(streams_issued_++)).next_u64();
}

void FaultInjector::flap_link(net::Link& link, util::SimTime at, util::SimTime down_for,
                              const std::string& tag) {
  faults_scheduled_ += 2;
  net::Link* l = &link;
  sim_.schedule_at(at, [this, l, tag]() {
    l->set_up(false);
    fired(sim_.now(), "link_down " + tag);
  });
  sim_.schedule_at(at + down_for, [this, l, tag]() {
    l->set_up(true);
    fired(sim_.now(), "link_up " + tag);
  });
}

void FaultInjector::partition(const std::vector<net::Link*>& links, util::SimTime at,
                              util::SimTime down_for, const std::string& tag) {
  faults_scheduled_ += 2;
  auto down = links;
  sim_.schedule_at(at, [this, down, tag]() {
    for (net::Link* l : down) l->set_up(false);
    fired(sim_.now(), "partition_start " + tag + " links=" + std::to_string(down.size()));
  });
  sim_.schedule_at(at + down_for, [this, down, tag]() {
    for (net::Link* l : down) l->set_up(true);
    fired(sim_.now(), "partition_heal " + tag + " links=" + std::to_string(down.size()));
  });
}

void FaultInjector::degrade_link(net::Link& link, util::SimTime at, util::SimTime duration,
                                 net::LinkFault fault, const std::string& tag) {
  faults_scheduled_ += 2;
  const std::uint64_t stream = next_stream_seed();
  net::Link* l = &link;
  sim_.schedule_at(at, [this, l, fault, stream, tag]() {
    l->set_fault(fault, stream);
    char detail[128];
    std::snprintf(detail, sizeof detail, " drop_p=%.6f corrupt_p=%.6f delay_ns=%lld jitter_ns=%lld",
                  fault.drop_probability, fault.corrupt_probability,
                  static_cast<long long>(fault.extra_delay.ns()),
                  static_cast<long long>(fault.jitter.ns()));
    fired(sim_.now(), "degrade_start " + tag + detail);
  });
  sim_.schedule_at(at + duration, [this, l, tag]() {
    l->clear_fault();
    fired(sim_.now(), "degrade_end " + tag);
  });
}

void FaultInjector::crash_node(util::SimTime at, util::SimTime down_for,
                               std::function<void()> kill, std::function<void()> restart,
                               const std::string& tag) {
  ++faults_scheduled_;
  sim_.schedule_at(at, [this, kill = std::move(kill), tag]() {
    kill();
    fired(sim_.now(), "crash " + tag);
  });
  if (restart) {
    ++faults_scheduled_;
    sim_.schedule_at(at + down_for, [this, restart = std::move(restart), tag]() {
      restart();
      fired(sim_.now(), "restart " + tag);
    });
  }
}

void FaultInjector::crash_container(container::Container& container, util::SimTime at,
                                    util::SimTime down_for) {
  container::Container* c = &container;
  crash_node(
      at, down_for, [c]() { c->kill(); },
      [c]() {
        if (c->state() != container::ContainerState::kRunning) c->start();
      },
      "container " + container.name());
}

}  // namespace ddoshield::testkit
