// InvariantChecker: always-true properties of the net/IDS pipeline,
// asserted over live traffic.
//
// The checker taps watched nodes and verifies, packet by packet and at
// finalize():
//   * TCP state-machine legality on stack-emitted segments (Packet::
//     stack_tcp) observed at their sender: no data before the sending
//     direction has offered a SYN, no sequence gaps beyond the
//     highest-sent edge, cumulative-ACK monotonicity, FIN edge immobility,
//     and no non-RST segments after a RST (repeated RSTs are legal — a
//     closed endpoint RSTs stray retransmissions). Raw flood forgeries
//     and fault-corrupted
//     headers are exempt — their illegality is intended load, not a stack
//     bug.
//   * Event-queue sanity: the simulator clock never ran an event stamped
//     in its past (Simulator::time_regressions() == 0).
//   * Per-link packet conservation: tx == delivered + lost_in_flight for
//     every watched direction once the queue drains (<= while events are
//     still pending), and dropped/tx tallies match the deltas charged to
//     the global obs counters over the watch window.
//   * Mitigation drop accounting: per-node ingress-filter drops (ACL and
//     rate-limit) summed over watched nodes match the deltas charged to
//     the global net.acl_dropped / net.ratelimit_dropped counters. These
//     drops happen after link delivery, so link conservation is unaffected
//     whether or not mitigation is enabled.
//   * Metrics self-consistency: histogram count == sum of buckets,
//     min <= mean <= max, ordered quantiles, gauge high-water >= value,
//     and a byte-idempotent "ddoshield-metrics-v2" snapshot.
//
// The first violation also triggers obs::FlightRecorder::dump_if_armed,
// so an armed run leaves a flight_dump.json next to the failure.
//
// Sequence-number comparisons use RFC 1982 serial arithmetic, so legality
// holds across 32-bit wrap. A SYN carrying a new ISS on an already-seen
// flow direction silently opens a new epoch (ephemeral-port reuse), which
// keeps flood-heavy fuzz runs free of false positives.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "net/link.hpp"
#include "net/network.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"

namespace ddoshield::obs {
class MetricsRegistry;
}

namespace ddoshield::testkit {

struct InvariantReport {
  std::vector<std::string> violations;  // first kMaxStoredViolations, verbatim
  std::uint64_t total_violations = 0;
  std::uint64_t packets_checked = 0;
  std::uint64_t flows_tracked = 0;
  std::uint64_t directions_checked = 0;

  bool ok() const { return total_violations == 0; }
  std::string summary() const;
};

class InvariantChecker {
 public:
  static constexpr std::size_t kMaxStoredViolations = 64;

  explicit InvariantChecker(net::Simulator& sim);

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Installs a tap on the node; checks every stack-emitted TCP segment
  /// the node originates. The node must outlive the checker's finalize().
  void watch_node(net::Node& node);

  /// Records the direction's current counters as a baseline; finalize()
  /// asserts conservation over everything sent after this point.
  void watch_link_direction(net::Link& link, const net::Node& from);

  /// Watches every node and both directions of every link, and snapshots
  /// the global obs link counters so finalize() can cross-check them.
  void watch_network(net::Network& net);

  /// Runs the end-of-run checks and returns the combined report. May be
  /// called once; packet-level violations found earlier are included.
  InvariantReport finalize();

  /// Metrics-only consistency pass, usable standalone in unit tests.
  /// Appends any violations to `out` and returns the number found.
  static std::uint64_t check_metrics(const obs::MetricsRegistry& registry,
                                     std::vector<std::string>* out);

 private:
  // One direction of one flow: packets src:sport -> dst:dport.
  using FlowKey = std::tuple<std::uint32_t, std::uint16_t, std::uint32_t, std::uint16_t>;

  struct FlowDirState {
    bool sent_syn = false;       // this side offered SYN or SYN-ACK
    std::uint32_t syn_seq = 0;   // ISS of the current epoch
    bool has_edge = false;
    std::uint32_t max_edge = 0;  // highest seq + effective_len sent
    bool has_ack = false;
    std::uint32_t last_ack = 0;
    bool fin_sent = false;
    std::uint32_t fin_edge = 0;  // seq + payload + 1 of the FIN segment
    bool rst_sent = false;
  };

  struct WatchedDirection {
    net::Link* link;
    const net::Node* from;
    std::string label;                    // "a->b" for messages
    net::LinkDirectionStats baseline;
  };

  struct WatchedNode {
    const net::Node* node;
    std::uint64_t acl_baseline = 0;
    std::uint64_t ratelimit_baseline = 0;
  };

  void on_sent_segment(const net::Packet& pkt);
  void violation(std::string msg);

  net::Simulator& sim_;
  std::map<FlowKey, FlowDirState> flows_;
  std::vector<WatchedDirection> directions_;
  std::vector<WatchedNode> nodes_;
  bool finalized_ = false;

  // Global obs counter values when watch_network() ran; 0-delta when no
  // network was watched whole, in which case the cross-check is skipped.
  bool crosscheck_obs_ = false;
  std::uint64_t obs_tx_baseline_ = 0;
  std::uint64_t obs_dropped_baseline_ = 0;
  std::uint64_t obs_acl_baseline_ = 0;
  std::uint64_t obs_ratelimit_baseline_ = 0;

  InvariantReport report_;
};

}  // namespace ddoshield::testkit
