// FaultInjector: schedules adverse conditions onto a live simulation.
//
// Every action is armed from the event loop at a simulated time, so fault
// schedules replay exactly under the same seed. Supported faults:
//   * flap_link / partition — administrative link-down windows (a flapping
//     access line, a partitioned victim uplink);
//   * degrade_link — a timed burst of probabilistic loss, header
//     corruption, and extra delay/jitter (net::LinkFault);
//   * crash_node — abrupt container death and later restart, expressed as
//     caller-supplied kill/restart closures so the injector stays
//     independent of the core testbed layer (core::Testbed::crash_device /
//     restart_device are the canonical pair).
//
// Firings are appended to an optional EventLog, making the fault schedule
// part of the run's replayable trace.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "net/link.hpp"
#include "net/simulator.hpp"
#include "testkit/event_log.hpp"

namespace ddoshield::testkit {

class FaultInjector {
 public:
  /// `seed` derives the per-link fault streams; `log` (optional, must
  /// outlive the injector) records each firing.
  FaultInjector(net::Simulator& sim, std::uint64_t seed, EventLog* log = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Takes the link down at `at` and back up `down_for` later.
  void flap_link(net::Link& link, util::SimTime at, util::SimTime down_for,
                 const std::string& tag = "link");

  /// Takes a set of links down together — a network partition.
  void partition(const std::vector<net::Link*>& links, util::SimTime at,
                 util::SimTime down_for, const std::string& tag = "partition");

  /// Applies `fault` to the link for `duration`, then clears it. Each
  /// call draws a fresh deterministic stream for the link's fault dice.
  void degrade_link(net::Link& link, util::SimTime at, util::SimTime duration,
                    net::LinkFault fault, const std::string& tag = "link");

  /// Runs `kill` at `at` and `restart` at `at + down_for` (restart may be
  /// empty for a crash with no recovery).
  void crash_node(util::SimTime at, util::SimTime down_for, std::function<void()> kill,
                  std::function<void()> restart = {}, const std::string& tag = "node");

  /// Container convenience: docker-kill then restart.
  void crash_container(container::Container& container, util::SimTime at,
                       util::SimTime down_for);

  std::uint64_t faults_scheduled() const { return faults_scheduled_; }
  std::uint64_t faults_fired() const { return faults_fired_; }

 private:
  void fired(util::SimTime at, const std::string& what);
  std::uint64_t next_stream_seed();

  net::Simulator& sim_;
  std::uint64_t seed_;
  std::uint64_t streams_issued_ = 0;
  EventLog* log_;
  std::uint64_t faults_scheduled_ = 0;
  std::uint64_t faults_fired_ = 0;
};

}  // namespace ddoshield::testkit
