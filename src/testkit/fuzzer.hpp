// Seeded scenario fuzzer for the net/IDS pipeline.
//
// One 64-bit seed deterministically expands into a complete randomized
// run: topology shape and link parameters, benign traffic mix, Mirai
// infection and attack schedule, and a fault plan (link flaps, degrade
// bursts, device crashes). The run drives the *real* stack — Testbed,
// TcpHost, RealTimeIds — while an InvariantChecker watches every node and
// an EventLog records each packet crossing the victim, each fault firing,
// and each closed IDS window. Replaying a seed reproduces the event log
// byte for byte; the fuzz_smoke ctest target asserts exactly that.
#pragma once

#include <cstdint>
#include <memory>

#include "core/scenario.hpp"
#include "ml/classifier.hpp"
#include "testkit/event_log.hpp"
#include "testkit/invariants.hpp"

namespace ddoshield::testkit {

struct FuzzOptions {
  /// When set, the IDS container is deployed with this trained model and
  /// window reports are appended to the event log.
  const ml::Classifier* ids_model = nullptr;
  util::SimTime ids_window = util::SimTime::millis(500);
  /// Close the detect→defend loop: Testbed::enable_mitigation after the
  /// IDS deploys (requires ids_model). Every mitigation action is appended
  /// to the event log, so same-seed replay covers enforcement too.
  bool enable_mitigation = false;
  /// Generate and apply a fault plan (flaps, degradation, crashes).
  bool enable_faults = true;
  /// Watch the whole network with an InvariantChecker.
  bool check_invariants = true;
  /// Log every packet the victim's node sends/receives/forwards.
  bool log_packets = true;
  /// Extra simulated time after the scenario ends for retransmission
  /// chains to die out; covers the worst TCP retry backoff (~32 s).
  util::SimTime drain_grace = util::SimTime::seconds(40);
};

struct FuzzResult {
  std::uint64_t seed = 0;
  core::Scenario scenario;
  InvariantReport invariants;
  EventLog log;
  std::uint64_t packets_tapped = 0;
  std::uint64_t faults_scheduled = 0;
  std::uint64_t faults_fired = 0;
  std::uint64_t ids_windows = 0;
  std::uint64_t mitigation_actions = 0;
  std::uint64_t events_executed = 0;
  util::SimTime end_time;

  bool ok() const { return invariants.ok(); }
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options = {}) : options_{options} {}

  /// Pure function of the seed: the randomized scenario a run will use.
  static core::Scenario generate_scenario(std::uint64_t seed);

  /// Builds, runs, and checks one seeded scenario end to end.
  FuzzResult run(std::uint64_t seed);

 private:
  FuzzOptions options_;
};

}  // namespace ddoshield::testkit
