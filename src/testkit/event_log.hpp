// Deterministic event/trace log for replay proofs.
//
// Every observable the testkit cares about (tapped packets, fault
// firings, closed IDS windows) is rendered to a text line and appended
// here in simulation order. Two runs of the same seed must produce
// byte-identical logs — the fuzz harness asserts equality on joined(),
// and digest() gives a cheap fingerprint to record next to a seed.
// Lines must therefore contain only simulation-derived values: sim
// timestamps, packet headers, counts — never wall-clock durations,
// pointers, or iteration order of unordered containers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ddoshield::testkit {

class EventLog {
 public:
  void append(std::string line) { lines_.push_back(std::move(line)); }

  const std::vector<std::string>& lines() const { return lines_; }
  std::size_t size() const { return lines_.size(); }
  bool empty() const { return lines_.empty(); }

  /// All lines '\n'-joined, with a trailing newline when non-empty.
  std::string joined() const;

  /// FNV-1a 64 over joined(); the per-seed fingerprint.
  std::uint64_t digest() const;

  /// Writes joined() to a file. Returns false if the file cannot open.
  bool write_file(const std::string& path) const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace ddoshield::testkit
