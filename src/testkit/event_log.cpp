#include "testkit/event_log.hpp"

#include <fstream>

namespace ddoshield::testkit {

std::string EventLog::joined() const {
  std::string out;
  std::size_t total = 0;
  for (const auto& l : lines_) total += l.size() + 1;
  out.reserve(total);
  for (const auto& l : lines_) {
    out += l;
    out += '\n';
  }
  return out;
}

std::uint64_t EventLog::digest() const {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (const auto& l : lines_) {
    for (const unsigned char c : l) {
      h ^= c;
      h *= 1099511628211ull;  // FNV prime
    }
    h ^= static_cast<unsigned char>('\n');
    h *= 1099511628211ull;
  }
  return h;
}

bool EventLog::write_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << joined();
  return out.good();
}

}  // namespace ddoshield::testkit
