// HTTP traffic: an Apache-like server on the TServer plus request/response
// clients on the devices.
//
// The exchange is modelled at message level: the client sends a request
// (a few hundred bytes, "GET /obj-N"), the server answers with a status
// line announcing the response length followed by that many payload bytes,
// and the client issues the next request after a think time or closes the
// connection after a per-session request budget (HTTP keep-alive).
// Response sizes are Pareto-distributed — heavy-tailed like real web
// object sizes — so benign traffic has natural volume variance.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/app.hpp"
#include "net/tcp.hpp"
#include "util/stats.hpp"

namespace ddoshield::apps {

struct HttpServerConfig {
  std::uint16_t port = 80;
  std::size_t backlog = 128;
  double mean_response_bytes = 16 * 1024;  // Pareto-scaled
  double pareto_shape = 1.5;
};

class HttpServer : public App {
 public:
  HttpServer(container::Container& owner, util::Rng rng, HttpServerConfig config = {});

  std::uint64_t requests_served() const { return requests_served_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void handle_connection(std::shared_ptr<net::TcpConnection> conn);
  std::uint32_t draw_response_bytes();

  HttpServerConfig config_;
  std::shared_ptr<net::TcpListener> listener_;
  std::uint64_t requests_served_ = 0;
  std::uint64_t bytes_served_ = 0;
};

struct HttpClientConfig {
  net::Endpoint server;
  double session_rate = 0.5;        // new sessions per second (exponential gaps)
  double mean_requests_per_session = 5.0;
  double mean_think_seconds = 0.5;  // gap between requests in a session
  std::uint32_t request_bytes = 350;
};

class HttpClient : public App {
 public:
  HttpClient(container::Container& owner, util::Rng rng, HttpClientConfig config);

  std::uint64_t responses_completed() const { return responses_completed_; }
  std::uint64_t bytes_downloaded() const { return bytes_downloaded_; }
  std::uint64_t failed_sessions() const { return failed_sessions_; }
  const util::OnlineStats& response_latency() const { return response_latency_; }

 protected:
  void on_start() override;

 private:
  void schedule_next_session();
  void start_session();

  struct Session;
  void issue_request(const std::shared_ptr<Session>& s);

  HttpClientConfig config_;
  std::uint64_t responses_completed_ = 0;
  std::uint64_t bytes_downloaded_ = 0;
  std::uint64_t failed_sessions_ = 0;
  util::OnlineStats response_latency_;
};

}  // namespace ddoshield::apps
