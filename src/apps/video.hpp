// Video streaming traffic (the paper's Nginx-RTMP role).
//
// A client connects to the streaming port and sends a PLAY command; the
// server then pushes fixed-size chunks at the stream's frame cadence until
// the viewer disconnects. This yields the long-lived, steadily-paced TCP
// flows characteristic of video — a very different statistical signature
// from HTTP's bursty request/response and FTP's bulk transfers.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/app.hpp"
#include "net/tcp.hpp"
#include "util/stats.hpp"

namespace ddoshield::apps {

struct VideoServerConfig {
  std::uint16_t port = 1935;
  std::size_t backlog = 64;
  std::uint32_t chunk_bytes = 4096;
  util::SimTime chunk_interval = util::SimTime::millis(100);  // ~327 kbit/s
};

class VideoServer : public App {
 public:
  VideoServer(container::Container& owner, util::Rng rng, VideoServerConfig config = {});

  std::uint64_t streams_started() const { return streams_started_; }
  std::uint64_t chunks_sent() const { return chunks_sent_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void handle_connection(std::shared_ptr<net::TcpConnection> conn);
  void stream_chunk(std::weak_ptr<net::TcpConnection> conn_weak);

  VideoServerConfig config_;
  std::shared_ptr<net::TcpListener> listener_;
  std::uint64_t streams_started_ = 0;
  std::uint64_t chunks_sent_ = 0;
};

struct VideoClientConfig {
  net::Endpoint server;
  double session_rate = 0.1;          // viewing sessions per second
  double mean_watch_seconds = 30.0;   // exponential session length
};

class VideoClient : public App {
 public:
  VideoClient(container::Container& owner, util::Rng rng, VideoClientConfig config);

  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t bytes_received() const { return bytes_received_; }

 protected:
  void on_start() override;

 private:
  void schedule_next_session();
  void start_session();

  VideoClientConfig config_;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t bytes_received_ = 0;
};

}  // namespace ddoshield::apps
