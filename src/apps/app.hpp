// Base class for simulated applications ("binaries running inside a
// container"). An App is bound to a container, reaches the network through
// the container's bridged node, and owns a deterministic RNG stream.
//
// Scheduling goes through App::schedule so that stopping the app (or its
// container) cancels every pending timer — the simulated equivalent of the
// process dying with the container.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "container/container.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "util/rng.hpp"

namespace ddoshield::apps {

class App {
 public:
  App(container::Container& owner, std::string name, util::Rng rng);
  virtual ~App() = default;

  App(const App&) = delete;
  App& operator=(const App&) = delete;

  const std::string& name() const { return name_; }
  bool running() const { return running_; }

  /// Starts the app; registers the stop hook with the container.
  void start();

  /// Stops the app and cancels all pending self-scheduled events.
  void stop();

  /// Process-wide switch restoring the original timer-prune policy: a full
  /// sweep of the timer list on every schedule() once it holds 64 handles.
  /// The production policy only sweeps after the list doubles (amortized
  /// O(1) per schedule); bench_scale's legacy mode turns this on to
  /// reproduce the original per-event cost profile.
  static void set_eager_prune_compat(bool on);
  static bool eager_prune_compat();

 protected:
  virtual void on_start() = 0;
  virtual void on_stop() {}

  container::Container& owner() { return owner_; }
  net::Node& node() { return owner_.node(); }
  net::Simulator& sim() { return owner_.node().simulator(); }
  util::Rng& rng() { return rng_; }

  /// Schedules fn after `delay`; auto-cancelled if the app stops first.
  void schedule(util::SimTime delay, std::function<void()> fn);

 private:
  void prune_timers();

  container::Container& owner_;
  std::string name_;
  util::Rng rng_;
  bool running_ = false;
  std::vector<net::EventHandle> timers_;
  std::size_t prune_threshold_ = 64;
};

}  // namespace ddoshield::apps
