#include "apps/http.hpp"

#include <algorithm>
#include <string>

#include "obs/survival.hpp"
#include "util/logging.hpp"

namespace ddoshield::apps {

using net::TcpCloseReason;
using net::TcpConnection;
using net::TrafficOrigin;
using util::SimTime;

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(container::Container& owner, util::Rng rng, HttpServerConfig config)
    : App{owner, "http-server", rng}, config_{config} {}

void HttpServer::on_start() {
  listener_ = node().tcp().listen(config_.port, config_.backlog, TrafficOrigin::kHttp);
  listener_->set_on_accept(
      [this](std::shared_ptr<TcpConnection> conn) { handle_connection(std::move(conn)); });
}

void HttpServer::on_stop() {
  if (listener_) listener_->close();
  listener_.reset();
}

std::uint32_t HttpServer::draw_response_bytes() {
  // Pareto with mean = scale * shape / (shape - 1)  →  scale from mean.
  const double scale =
      config_.mean_response_bytes * (config_.pareto_shape - 1.0) / config_.pareto_shape;
  const double size = rng().pareto(scale, config_.pareto_shape);
  return static_cast<std::uint32_t>(std::clamp(size, 64.0, 4.0 * 1024 * 1024));
}

void HttpServer::handle_connection(std::shared_ptr<TcpConnection> conn) {
  // Each in-order request message triggers one response.
  conn->set_on_data([this, conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    if (app_data.empty()) return;  // continuation segment of a large request
    auto conn = conn_weak.lock();
    if (!conn || !running()) return;
    const std::uint32_t body = draw_response_bytes();
    ++requests_served_;
    bytes_served_ += body;
    conn->send(body, "HTTP/1.1 200 OK len=" + std::to_string(body));
  });
  conn->set_on_peer_fin([conn_weak = std::weak_ptr<TcpConnection>{conn}] {
    if (auto conn = conn_weak.lock()) conn->close();
  });
}

// ---------------------------------------------------------------------------
// HttpClient
// ---------------------------------------------------------------------------

struct HttpClient::Session {
  std::shared_ptr<TcpConnection> conn;
  int requests_left = 0;
  std::uint64_t expected_bytes = 0;   // current response's announced length
  std::uint64_t received_bytes = 0;   // progress within the current response
  SimTime request_sent_at;
  bool awaiting_response = false;
};

HttpClient::HttpClient(container::Container& owner, util::Rng rng, HttpClientConfig config)
    : App{owner, "http-client", rng}, config_{config} {}

void HttpClient::on_start() { schedule_next_session(); }

void HttpClient::schedule_next_session() {
  const double gap = rng().exponential(config_.session_rate);
  schedule(SimTime::from_seconds(gap), [this] {
    start_session();
    schedule_next_session();
  });
}

void HttpClient::start_session() {
  auto session = std::make_shared<Session>();
  session->requests_left =
      1 + static_cast<int>(rng().poisson(std::max(0.0, config_.mean_requests_per_session - 1)));

  auto conn = node().tcp().connect(config_.server, TrafficOrigin::kHttp);
  session->conn = conn;
  obs::SurvivalMeter::global().on_connect_attempt();

  conn->set_on_connected([this, session] {
    obs::SurvivalMeter::global().on_connect_success();
    issue_request(session);
  });

  conn->set_on_data([this, session](std::uint32_t bytes, const std::string& app_data) {
    if (!session->awaiting_response) return;
    if (!app_data.empty()) {
      // Status line announces the body length: "HTTP/1.1 200 OK len=NNN".
      const auto pos = app_data.rfind("len=");
      if (pos != std::string::npos) {
        session->expected_bytes = std::stoull(app_data.substr(pos + 4));
      }
    }
    session->received_bytes += bytes;
    bytes_downloaded_ += bytes;
    if (session->expected_bytes > 0 && session->received_bytes >= session->expected_bytes) {
      ++responses_completed_;
      const SimTime latency = sim().now() - session->request_sent_at;
      response_latency_.add(latency.to_seconds());
      obs::SurvivalMeter::global().on_request_complete(
          static_cast<std::uint64_t>(latency.ns()), session->received_bytes);
      session->awaiting_response = false;
      if (session->requests_left > 0 && running()) {
        const double think = rng().exponential(1.0 / config_.mean_think_seconds);
        schedule(SimTime::from_seconds(think), [this, session] {
          if (session->conn->state() == net::TcpState::kEstablished) issue_request(session);
        });
      } else {
        session->conn->close();
      }
    }
  });

  conn->set_on_closed([this, session](TcpCloseReason reason) {
    if (reason == TcpCloseReason::kConnectTimeout) {
      obs::SurvivalMeter::global().on_connect_failure();
    }
    if (reason != TcpCloseReason::kGracefulClose &&
        (session->awaiting_response || session->requests_left > 0)) {
      ++failed_sessions_;
      if (reason != TcpCloseReason::kConnectTimeout) {
        obs::SurvivalMeter::global().on_request_failure();
      }
    }
  });
}

void HttpClient::issue_request(const std::shared_ptr<Session>& s) {
  if (s->requests_left <= 0) return;
  --s->requests_left;
  s->awaiting_response = true;
  s->expected_bytes = 0;
  s->received_bytes = 0;
  s->request_sent_at = sim().now();
  const auto obj = rng().uniform_u64(100000);
  // Real request sizes vary with URL, headers, and cookies; a heavy-tailed
  // draw around the configured mean keeps per-packet sizes from being a
  // trivially separable constant.
  const auto bytes = static_cast<std::uint32_t>(std::clamp(
      rng().pareto(static_cast<double>(config_.request_bytes) * 0.5, 2.0), 120.0, 1400.0));
  s->conn->send(bytes, "GET /obj-" + std::to_string(obj) + " HTTP/1.1");
}

}  // namespace ddoshield::apps
