#include "apps/video.hpp"

#include <string>

#include "obs/survival.hpp"

namespace ddoshield::apps {

using net::TcpConnection;
using net::TcpState;
using net::TrafficOrigin;
using util::SimTime;

// ---------------------------------------------------------------------------
// VideoServer
// ---------------------------------------------------------------------------

VideoServer::VideoServer(container::Container& owner, util::Rng rng, VideoServerConfig config)
    : App{owner, "video-server", rng}, config_{config} {}

void VideoServer::on_start() {
  listener_ = node().tcp().listen(config_.port, config_.backlog, TrafficOrigin::kVideo);
  listener_->set_on_accept(
      [this](std::shared_ptr<TcpConnection> conn) { handle_connection(std::move(conn)); });
}

void VideoServer::on_stop() {
  if (listener_) listener_->close();
  listener_.reset();
}

void VideoServer::handle_connection(std::shared_ptr<TcpConnection> conn) {
  conn->set_on_data([this, conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    if (app_data.rfind("PLAY", 0) != 0) return;
    ++streams_started_;
    stream_chunk(conn_weak);
  });
  conn->set_on_peer_fin([conn_weak = std::weak_ptr<TcpConnection>{conn}] {
    if (auto conn = conn_weak.lock()) conn->close();
  });
}

void VideoServer::stream_chunk(std::weak_ptr<TcpConnection> conn_weak) {
  auto conn = conn_weak.lock();
  if (!conn || !running()) return;
  if (conn->state() != TcpState::kEstablished) return;  // viewer left
  conn->send(config_.chunk_bytes);
  ++chunks_sent_;
  schedule(config_.chunk_interval, [this, conn_weak] { stream_chunk(conn_weak); });
}

// ---------------------------------------------------------------------------
// VideoClient
// ---------------------------------------------------------------------------

VideoClient::VideoClient(container::Container& owner, util::Rng rng, VideoClientConfig config)
    : App{owner, "video-client", rng}, config_{config} {}

void VideoClient::on_start() { schedule_next_session(); }

void VideoClient::schedule_next_session() {
  const double gap = rng().exponential(config_.session_rate);
  schedule(SimTime::from_seconds(gap), [this] {
    start_session();
    schedule_next_session();
  });
}

void VideoClient::start_session() {
  ++sessions_started_;
  auto conn = node().tcp().connect(config_.server, TrafficOrigin::kVideo);
  obs::SurvivalMeter::global().on_connect_attempt();

  conn->set_on_closed([](net::TcpCloseReason reason) {
    if (reason == net::TcpCloseReason::kConnectTimeout) {
      obs::SurvivalMeter::global().on_connect_failure();
    }
  });

  conn->set_on_connected([this, conn] {
    obs::SurvivalMeter::global().on_connect_success();
    const auto stream = rng().uniform_u64(64);
    conn->send(96, "PLAY stream-" + std::to_string(stream));
    // The viewer watches for an exponential duration, then hangs up.
    const double watch = rng().exponential(1.0 / config_.mean_watch_seconds);
    schedule(SimTime::from_seconds(watch), [conn] {
      if (conn->state() == TcpState::kEstablished) conn->close();
    });
  });

  conn->set_on_data([this](std::uint32_t bytes, const std::string&) {
    bytes_received_ += bytes;
    obs::SurvivalMeter::global().on_goodput_bytes(bytes);
  });
}

}  // namespace ddoshield::apps
