// IoT telemetry traffic (§V extension).
//
// The paper's threats-to-validity section concedes that HTTP/video/FTP
// "may not be exhaustive, considering the wide range of protocols used in
// the IoT environment" and plans to diversify via TON-IoT. This app adds
// the most common missing pattern: MQTT-style sensor telemetry — devices
// keep a long-lived connection to a broker and publish small readings at
// a steady cadence, with periodic keep-alive pings. Disabled by default in
// the canonical scenarios (so the calibrated paper reproductions are
// untouched); enable it through BenignLoad::telemetry_publish_rate.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/app.hpp"
#include "net/tcp.hpp"

namespace ddoshield::apps {

struct TelemetryBrokerConfig {
  std::uint16_t port = 1883;  // MQTT
  std::size_t backlog = 128;
};

/// The broker: accepts device connections, acknowledges publishes
/// (QoS-1-style PUBACK), answers keep-alive pings.
class TelemetryBroker : public App {
 public:
  TelemetryBroker(container::Container& owner, util::Rng rng,
                  TelemetryBrokerConfig config = {});

  std::uint64_t publishes_received() const { return publishes_received_; }
  std::uint64_t sessions_accepted() const { return sessions_accepted_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void handle_connection(std::shared_ptr<net::TcpConnection> conn);

  TelemetryBrokerConfig config_;
  std::shared_ptr<net::TcpListener> listener_;
  std::uint64_t publishes_received_ = 0;
  std::uint64_t sessions_accepted_ = 0;
};

struct TelemetrySensorConfig {
  net::Endpoint broker;
  /// Readings per second (e.g. 0.5 = one sample every 2 s).
  double publish_rate = 0.5;
  std::uint32_t reading_bytes = 48;  // topic + small JSON payload
  util::SimTime keepalive = util::SimTime::seconds(15);
  util::SimTime reconnect_delay = util::SimTime::seconds(3);
};

/// A sensor: connects once, then publishes readings forever, pinging when
/// idle and reconnecting (with jitter) if the broker connection drops —
/// e.g. when a flood congests the path.
class TelemetrySensor : public App {
 public:
  TelemetrySensor(container::Container& owner, util::Rng rng, TelemetrySensorConfig config);

  std::uint64_t publishes_sent() const { return publishes_sent_; }
  std::uint64_t publishes_acked() const { return publishes_acked_; }
  std::uint64_t reconnects() const { return reconnects_; }
  bool connected() const;

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void dial();
  void publish_tick();
  void keepalive_tick();

  TelemetrySensorConfig config_;
  std::shared_ptr<net::TcpConnection> conn_;
  std::uint64_t publishes_sent_ = 0;
  std::uint64_t publishes_acked_ = 0;
  std::uint64_t reconnects_ = 0;
  util::SimTime last_activity_;
};

}  // namespace ddoshield::apps
