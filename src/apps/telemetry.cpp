#include "apps/telemetry.hpp"

namespace ddoshield::apps {

using net::TcpCloseReason;
using net::TcpConnection;
using net::TcpState;
using net::TrafficOrigin;
using util::SimTime;

// ---------------------------------------------------------------------------
// TelemetryBroker
// ---------------------------------------------------------------------------

TelemetryBroker::TelemetryBroker(container::Container& owner, util::Rng rng,
                                 TelemetryBrokerConfig config)
    : App{owner, "telemetry-broker", rng}, config_{config} {}

void TelemetryBroker::on_start() {
  listener_ = node().tcp().listen(config_.port, config_.backlog, TrafficOrigin::kHttp);
  listener_->set_on_accept([this](std::shared_ptr<TcpConnection> conn) {
    ++sessions_accepted_;
    handle_connection(std::move(conn));
  });
}

void TelemetryBroker::on_stop() {
  if (listener_) listener_->close();
  listener_.reset();
}

void TelemetryBroker::handle_connection(std::shared_ptr<TcpConnection> conn) {
  conn->set_on_data([this, conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    auto conn = conn_weak.lock();
    if (!conn || !running()) return;
    if (app_data.rfind("PUB ", 0) == 0) {
      ++publishes_received_;
      conn->send(8, "PUBACK");
    } else if (app_data == "PINGREQ") {
      conn->send(8, "PINGRESP");
    }
  });
  conn->set_on_peer_fin([conn_weak = std::weak_ptr<TcpConnection>{conn}] {
    if (auto conn = conn_weak.lock()) conn->close();
  });
}

// ---------------------------------------------------------------------------
// TelemetrySensor
// ---------------------------------------------------------------------------

TelemetrySensor::TelemetrySensor(container::Container& owner, util::Rng rng,
                                 TelemetrySensorConfig config)
    : App{owner, "telemetry-sensor", rng}, config_{config} {}

bool TelemetrySensor::connected() const {
  return conn_ && conn_->state() == TcpState::kEstablished;
}

// Dial from the event loop, not from within start(): Testbed::deploy()
// starts apps before the simulator runs, and a synchronous connect here
// would put a SYN on the wire that taps/checkers installed between
// deploy() and run() never see (the testkit fuzzer caught exactly that).
void TelemetrySensor::on_start() {
  schedule(SimTime{}, [this] { dial(); });
}

void TelemetrySensor::on_stop() {
  if (conn_) conn_->abort();
  conn_.reset();
}

void TelemetrySensor::dial() {
  conn_ = node().tcp().connect(config_.broker, TrafficOrigin::kHttp);

  conn_->set_on_connected([this] {
    last_activity_ = sim().now();
    publish_tick();
    keepalive_tick();
  });

  conn_->set_on_data([this](std::uint32_t, const std::string& app_data) {
    if (app_data == "PUBACK") ++publishes_acked_;
  });

  conn_->set_on_closed([this](TcpCloseReason) {
    if (!running()) return;
    ++reconnects_;
    const double jitter = rng().uniform(0.5, 1.5);
    schedule(SimTime::from_seconds(config_.reconnect_delay.to_seconds() * jitter),
             [this] { dial(); });
  });
}

void TelemetrySensor::publish_tick() {
  if (!connected()) return;
  const double reading = rng().normal(21.5, 0.4);  // a temperature, say
  conn_->send(config_.reading_bytes,
              "PUB sensors/" + node().name() + " value=" + std::to_string(reading));
  ++publishes_sent_;
  last_activity_ = sim().now();
  const double gap = rng().exponential(config_.publish_rate);
  schedule(SimTime::from_seconds(gap), [this] { publish_tick(); });
}

void TelemetrySensor::keepalive_tick() {
  if (!connected()) return;
  if (sim().now() - last_activity_ >= config_.keepalive) {
    conn_->send(8, "PINGREQ");
    last_activity_ = sim().now();
  }
  schedule(config_.keepalive, [this] { keepalive_tick(); });
}

}  // namespace ddoshield::apps
