#include "apps/ftp.hpp"

#include <algorithm>
#include <string>

#include "obs/survival.hpp"

namespace ddoshield::apps {

using net::Endpoint;
using net::TcpCloseReason;
using net::TcpConnection;
using net::TcpState;
using net::TrafficOrigin;
using util::SimTime;

// ---------------------------------------------------------------------------
// FtpServer
// ---------------------------------------------------------------------------

FtpServer::FtpServer(container::Container& owner, util::Rng rng, FtpServerConfig config)
    : App{owner, "ftp-server", rng}, config_{config} {}

void FtpServer::on_start() {
  control_listener_ =
      node().tcp().listen(config_.control_port, config_.backlog, TrafficOrigin::kFtp);
  control_listener_->set_on_accept(
      [this](std::shared_ptr<TcpConnection> conn) { handle_control(std::move(conn)); });
}

void FtpServer::on_stop() {
  if (control_listener_) control_listener_->close();
  control_listener_.reset();
}

std::uint32_t FtpServer::draw_file_bytes() {
  const double scale =
      config_.mean_file_bytes * (config_.pareto_shape - 1.0) / config_.pareto_shape;
  const double size = rng().pareto(scale, config_.pareto_shape);
  return static_cast<std::uint32_t>(std::clamp(size, 1024.0, 16.0 * 1024 * 1024));
}

void FtpServer::handle_control(std::shared_ptr<TcpConnection> conn) {
  conn->set_on_data([this, conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    auto control = conn_weak.lock();
    if (!control || !running()) return;
    if (app_data.rfind("RETR", 0) == 0) {
      begin_transfer(control);
    } else if (app_data.rfind("QUIT", 0) == 0) {
      control->close();
    }
  });
  conn->set_on_peer_fin([conn_weak = std::weak_ptr<TcpConnection>{conn}] {
    if (auto conn = conn_weak.lock()) conn->close();
  });
}

void FtpServer::begin_transfer(const std::shared_ptr<TcpConnection>& control) {
  const std::uint32_t file_bytes = draw_file_bytes();
  ++transfers_started_;

  // One-shot passive-mode data listener on an ephemeral port.
  std::uint16_t data_port = 0;
  std::shared_ptr<net::TcpListener> data_listener;
  for (int attempt = 0; attempt < 16 && !data_listener; ++attempt) {
    data_port = node().allocate_ephemeral_port();
    try {
      data_listener = node().tcp().listen(data_port, 1, TrafficOrigin::kFtp);
    } catch (const std::invalid_argument&) {
      // Port collision with a live socket; try the next ephemeral port.
    }
  }
  if (!data_listener) return;

  data_listener->set_on_accept([this, file_bytes, data_listener,
                                control_weak = std::weak_ptr<TcpConnection>{control}](
                                   std::shared_ptr<TcpConnection> data_conn) {
    data_listener->close();  // single transfer per listener
    data_conn->send(file_bytes, "DATA");
    bytes_served_ += file_bytes;
    data_conn->close();
    data_conn->set_on_closed([this, control_weak](TcpCloseReason reason) {
      if (reason != TcpCloseReason::kGracefulClose) return;
      ++transfers_completed_;
      if (auto control = control_weak.lock();
          control && control->state() == TcpState::kEstablished) {
        control->send(64, "226 transfer complete");
      }
    });
  });

  control->send(96, "150 PASV port=" + std::to_string(data_port) +
                        " size=" + std::to_string(file_bytes));
}

// ---------------------------------------------------------------------------
// FtpClient
// ---------------------------------------------------------------------------

struct FtpClient::Session {
  std::shared_ptr<TcpConnection> control;
  int files_left = 0;
  bool transfer_active = false;
  std::uint64_t expected_bytes = 0;
  std::uint64_t received_bytes = 0;
  SimTime transfer_started_at;
};

FtpClient::FtpClient(container::Container& owner, util::Rng rng, FtpClientConfig config)
    : App{owner, "ftp-client", rng}, config_{config} {}

void FtpClient::on_start() { schedule_next_session(); }

void FtpClient::schedule_next_session() {
  const double gap = rng().exponential(config_.session_rate);
  schedule(SimTime::from_seconds(gap), [this] {
    start_session();
    schedule_next_session();
  });
}

void FtpClient::start_session() {
  auto session = std::make_shared<Session>();
  session->files_left =
      1 + static_cast<int>(rng().poisson(std::max(0.0, config_.mean_files_per_session - 1)));

  auto control = node().tcp().connect(config_.server, TrafficOrigin::kFtp);
  session->control = control;
  obs::SurvivalMeter::global().on_connect_attempt();

  control->set_on_connected([this, session] {
    obs::SurvivalMeter::global().on_connect_success();
    request_file(session);
  });

  control->set_on_closed([](TcpCloseReason reason) {
    if (reason == TcpCloseReason::kConnectTimeout) {
      obs::SurvivalMeter::global().on_connect_failure();
    }
  });

  control->set_on_data([this, session](std::uint32_t, const std::string& app_data) {
    if (app_data.rfind("150 PASV", 0) == 0) {
      const auto port_pos = app_data.find("port=");
      const auto size_pos = app_data.find("size=");
      if (port_pos == std::string::npos || size_pos == std::string::npos) return;
      const auto port = static_cast<std::uint16_t>(std::stoul(app_data.substr(port_pos + 5)));
      const auto size = std::stoull(app_data.substr(size_pos + 5));
      open_data_connection(session, port, size);
    } else if (app_data.rfind("226", 0) == 0) {
      // Server-side completion confirmation; the client-side completion is
      // already counted when the data connection finished.
      if (session->files_left > 0 && running()) {
        const double pause = rng().exponential(1.0 / config_.mean_pause_seconds);
        schedule(SimTime::from_seconds(pause), [this, session] {
          if (session->control->state() == TcpState::kEstablished) request_file(session);
        });
      } else if (session->control->state() == TcpState::kEstablished) {
        session->control->send(32, "QUIT");
        session->control->close();
      }
    }
  });
}

void FtpClient::request_file(const std::shared_ptr<Session>& s) {
  if (s->files_left <= 0) return;
  --s->files_left;
  s->transfer_active = true;
  s->expected_bytes = 0;
  s->received_bytes = 0;
  s->transfer_started_at = sim().now();
  const auto file = rng().uniform_u64(5000);
  s->control->send(64, "RETR file-" + std::to_string(file));
}

void FtpClient::open_data_connection(const std::shared_ptr<Session>& s, std::uint16_t port,
                                     std::uint64_t expected_bytes) {
  s->expected_bytes = expected_bytes;
  auto data = node().tcp().connect(Endpoint{config_.server.addr, port}, TrafficOrigin::kFtp);

  data->set_on_data([this, s](std::uint32_t bytes, const std::string&) {
    s->received_bytes += bytes;
    bytes_downloaded_ += bytes;
  });

  data->set_on_peer_fin([data] { data->close(); });

  data->set_on_closed([this, s](TcpCloseReason reason) {
    s->transfer_active = false;
    if (reason == TcpCloseReason::kGracefulClose && s->received_bytes >= s->expected_bytes) {
      ++downloads_completed_;
      obs::SurvivalMeter::global().on_request_complete(
          static_cast<std::uint64_t>((sim().now() - s->transfer_started_at).ns()),
          s->received_bytes);
    } else {
      ++failed_downloads_;
      obs::SurvivalMeter::global().on_request_failure();
    }
  });
}

}  // namespace ddoshield::apps
