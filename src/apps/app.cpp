#include "apps/app.hpp"

namespace ddoshield::apps {

App::App(container::Container& owner, std::string name, util::Rng rng)
    : owner_{owner}, name_{std::move(name)}, rng_{rng} {}

void App::start() {
  if (running_) return;
  running_ = true;
  owner_.on_stop([this] { stop(); });
  on_start();
}

void App::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  on_stop();
}

void App::schedule(util::SimTime delay, std::function<void()> fn) {
  if (!running_) return;
  prune_timers();
  timers_.push_back(sim().schedule(delay, [this, fn = std::move(fn)] {
    if (running_) fn();
  }));
}

void App::prune_timers() {
  if (timers_.size() < 64) return;
  std::erase_if(timers_, [](const net::EventHandle& h) { return !h.pending(); });
}

}  // namespace ddoshield::apps
