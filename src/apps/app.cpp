#include "apps/app.hpp"

#include <algorithm>

namespace ddoshield::apps {

namespace {
bool g_eager_prune_compat = false;
}

void App::set_eager_prune_compat(bool on) { g_eager_prune_compat = on; }
bool App::eager_prune_compat() { return g_eager_prune_compat; }

App::App(container::Container& owner, std::string name, util::Rng rng)
    : owner_{owner}, name_{std::move(name)}, rng_{rng} {}

void App::start() {
  if (running_) return;
  running_ = true;
  owner_.on_stop([this] { stop(); });
  on_start();
}

void App::stop() {
  if (!running_) return;
  running_ = false;
  for (auto& t : timers_) t.cancel();
  timers_.clear();
  on_stop();
}

void App::schedule(util::SimTime delay, std::function<void()> fn) {
  if (!running_) return;
  prune_timers();
  timers_.push_back(sim().schedule(delay, [this, fn = std::move(fn)] {
    if (running_) fn();
  }));
}

void App::prune_timers() {
  // Amortized O(1) per schedule(): scan only when the list has doubled
  // since the last sweep, not on every call — an app holding hundreds of
  // live timers (flood pacing, many parallel sessions) would otherwise
  // pay a full scan per newly armed timer.
  if (g_eager_prune_compat) {
    if (timers_.size() < 64) return;
    std::erase_if(timers_, [](const net::EventHandle& h) { return !h.pending(); });
    return;
  }
  if (timers_.size() < prune_threshold_) return;
  std::erase_if(timers_, [](const net::EventHandle& h) { return !h.pending(); });
  prune_threshold_ = std::max<std::size_t>(64, timers_.size() * 2);
}

}  // namespace ddoshield::apps
