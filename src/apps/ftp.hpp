// FTP traffic (the paper's customized FTP server).
//
// Classic two-connection FTP in passive mode: the client holds a control
// connection on port 21 and sends RETR commands; for each transfer the
// server opens a one-shot data listener on an ephemeral port, announces it
// ("150 PASV port=P size=S"), streams the file over the data connection,
// closes it, and confirms on the control channel ("226"). File sizes are
// heavy-tailed, so FTP contributes the bulk-transfer end of the benign mix.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/app.hpp"
#include "net/tcp.hpp"
#include "util/stats.hpp"

namespace ddoshield::apps {

struct FtpServerConfig {
  std::uint16_t control_port = 21;
  std::size_t backlog = 64;
  double mean_file_bytes = 256 * 1024;
  double pareto_shape = 1.3;
};

class FtpServer : public App {
 public:
  FtpServer(container::Container& owner, util::Rng rng, FtpServerConfig config = {});

  std::uint64_t transfers_started() const { return transfers_started_; }
  std::uint64_t transfers_completed() const { return transfers_completed_; }
  std::uint64_t bytes_served() const { return bytes_served_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void handle_control(std::shared_ptr<net::TcpConnection> conn);
  void begin_transfer(const std::shared_ptr<net::TcpConnection>& control);
  std::uint32_t draw_file_bytes();

  FtpServerConfig config_;
  std::shared_ptr<net::TcpListener> control_listener_;
  std::uint64_t transfers_started_ = 0;
  std::uint64_t transfers_completed_ = 0;
  std::uint64_t bytes_served_ = 0;
};

struct FtpClientConfig {
  net::Endpoint server;  // control endpoint (port 21)
  double session_rate = 0.05;          // download sessions per second
  double mean_files_per_session = 2.0;
  double mean_pause_seconds = 2.0;     // gap between files in a session
};

class FtpClient : public App {
 public:
  FtpClient(container::Container& owner, util::Rng rng, FtpClientConfig config);

  std::uint64_t downloads_completed() const { return downloads_completed_; }
  std::uint64_t bytes_downloaded() const { return bytes_downloaded_; }
  std::uint64_t failed_downloads() const { return failed_downloads_; }

 protected:
  void on_start() override;

 private:
  struct Session;
  void schedule_next_session();
  void start_session();
  void request_file(const std::shared_ptr<Session>& s);
  void open_data_connection(const std::shared_ptr<Session>& s, std::uint16_t port,
                            std::uint64_t expected_bytes);

  FtpClientConfig config_;
  std::uint64_t downloads_completed_ = 0;
  std::uint64_t bytes_downloaded_ = 0;
  std::uint64_t failed_downloads_ = 0;
};

}  // namespace ddoshield::apps
