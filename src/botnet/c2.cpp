#include "botnet/c2.hpp"

#include <sstream>
#include <stdexcept>

namespace ddoshield::botnet {

using net::TcpConnection;
using net::TrafficOrigin;

std::string C2Command::encode() const {
  std::ostringstream os;
  os << "ATK " << to_string(type) << ' ' << target.to_string() << ' ' << target_port << ' '
     << duration.ns() / 1'000'000 << ' ' << packets_per_second << ' '
     << (spoof_sources ? 1 : 0);
  return os.str();
}

C2Command C2Command::decode(const std::string& line) {
  std::istringstream is{line};
  std::string tag, type_str, ip_str;
  std::int64_t dur_ms = 0;
  int spoof = 0;
  C2Command cmd;
  is >> tag >> type_str >> ip_str >> cmd.target_port >> dur_ms >> cmd.packets_per_second >>
      spoof;
  if (tag != "ATK" || is.fail()) {
    throw std::invalid_argument("C2Command::decode: malformed command '" + line + "'");
  }
  cmd.type = attack_type_from_string(type_str);
  cmd.target = net::Ipv4Address::parse(ip_str);
  cmd.duration = util::SimTime::millis(dur_ms);
  cmd.spoof_sources = spoof != 0;
  return cmd;
}

C2Server::C2Server(container::Container& owner, util::Rng rng, C2ServerConfig config)
    : App{owner, "c2-server", rng}, config_{config} {}

void C2Server::on_start() {
  listener_ = node().tcp().listen(config_.port, config_.backlog, TrafficOrigin::kMiraiC2);
  listener_->set_on_accept(
      [this](std::shared_ptr<TcpConnection> conn) { handle_connection(std::move(conn)); });
  schedule(config_.sweep_interval, [this] { sweep_dead_bots(); });
}

// Drops bots whose heartbeats stopped (device churned out); their
// connections are aborted so a reconnecting bot re-registers cleanly.
void C2Server::sweep_dead_bots() {
  const util::SimTime now = sim().now();
  std::vector<std::shared_ptr<TcpConnection>> dead;
  for (auto it = bots_.begin(); it != bots_.end();) {
    if (now - it->second.last_seen > config_.bot_timeout) {
      dead.push_back(std::move(it->second.conn));
      it = bots_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& conn : dead) conn->abort();
  schedule(config_.sweep_interval, [this] { sweep_dead_bots(); });
}

void C2Server::on_stop() {
  if (listener_) listener_->close();
  listener_.reset();
  // abort() fires on_closed, which erases from bots_ — detach the map
  // first so the close callbacks cannot mutate what we iterate.
  auto bots = std::move(bots_);
  bots_.clear();
  for (auto& [name, slot] : bots) slot.conn->abort();
}

void C2Server::handle_connection(std::shared_ptr<TcpConnection> conn) {
  auto bot_name = std::make_shared<std::string>();

  conn->set_on_data([this, bot_name, conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    auto conn = conn_weak.lock();
    if (!conn || !running()) return;
    if (app_data.rfind("REG ", 0) == 0) {
      *bot_name = app_data.substr(4);
      bots_[*bot_name] = BotSlot{conn, sim().now()};
      ++total_registrations_;
      conn->send(16, "ACK");
    } else if (app_data == "PING") {
      if (auto it = bots_.find(*bot_name); it != bots_.end() && it->second.conn == conn) {
        it->second.last_seen = sim().now();
      }
      conn->send(16, "PONG");
    }
  });

  conn->set_on_closed([this, bot_name, conn_raw = conn.get()](net::TcpCloseReason) {
    // Only erase if this connection still owns the slot (a reconnected
    // bot may have re-registered under the same name already).
    if (bot_name->empty()) return;
    if (auto it = bots_.find(*bot_name);
        it != bots_.end() && it->second.conn.get() == conn_raw) {
      bots_.erase(it);
    }
  });
}

std::size_t C2Server::launch_attack(const C2Command& cmd) {
  const std::string wire = cmd.encode();
  std::size_t sent = 0;
  for (auto& [name, slot] : bots_) {
    if (slot.conn->state() == net::TcpState::kEstablished) {
      slot.conn->send(static_cast<std::uint32_t>(64 + wire.size()), wire);
      ++sent;
    }
  }
  return sent;
}

std::size_t C2Server::stop_attack() {
  std::size_t sent = 0;
  for (auto& [name, slot] : bots_) {
    if (slot.conn->state() == net::TcpState::kEstablished) {
      slot.conn->send(16, "STP");
      ++sent;
    }
  }
  return sent;
}

std::vector<std::string> C2Server::bot_names() const {
  std::vector<std::string> names;
  names.reserve(bots_.size());
  for (const auto& [name, slot] : bots_) names.push_back(name);
  return names;
}

}  // namespace ddoshield::botnet
