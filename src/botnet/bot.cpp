#include "botnet/bot.hpp"

#include "botnet/c2.hpp"

namespace ddoshield::botnet {

using net::TcpCloseReason;
using net::TcpState;
using net::TrafficOrigin;
using util::SimTime;

BotAgent::BotAgent(container::Container& owner, util::Rng rng, BotAgentConfig config)
    : App{owner, "bot-agent", rng}, config_{config} {}

std::uint64_t BotAgent::flood_packets_sent() const {
  return flood_ ? flood_->packets_emitted() : flood_packets_total_;
}

bool BotAgent::connected() const {
  return c2_conn_ && c2_conn_->state() == TcpState::kEstablished;
}

void BotAgent::on_start() {
  flood_ = std::make_unique<FloodEngine>(node(), rng().fork("flood"));
  dial_c2();
}

void BotAgent::on_stop() {
  if (flood_) {
    flood_packets_total_ = flood_->packets_emitted();
    flood_->stop();
  }
  if (c2_conn_) c2_conn_->abort();
  c2_conn_.reset();
}

void BotAgent::dial_c2() {
  c2_conn_ = node().tcp().connect(config_.c2, TrafficOrigin::kMiraiC2);

  c2_conn_->set_on_connected([this] {
    c2_conn_->send(32, "REG " + node().name());
    heartbeat();
  });

  c2_conn_->set_on_data([this](std::uint32_t, const std::string& app_data) {
    handle_command(app_data);
  });

  c2_conn_->set_on_closed([this](TcpCloseReason) {
    if (running()) schedule_reconnect();
  });
}

void BotAgent::schedule_reconnect() {
  // Jittered delay prevents a thundering herd when the C2 or the path
  // comes back after churn.
  const double jitter = rng().uniform(0.5, 1.5);
  schedule(SimTime::from_seconds(config_.reconnect_delay.to_seconds() * jitter),
           [this] { dial_c2(); });
}

void BotAgent::heartbeat() {
  if (!connected()) return;
  c2_conn_->send(16, "PING");
  schedule(config_.heartbeat_interval, [this] { heartbeat(); });
}

void BotAgent::handle_command(const std::string& app_data) {
  if (app_data.rfind("ATK ", 0) == 0) {
    const C2Command cmd = C2Command::decode(app_data);
    FloodConfig fc;
    fc.type = cmd.type;
    fc.target = cmd.target;
    fc.target_port = cmd.target_port;
    fc.duration = cmd.duration;
    fc.packets_per_second = cmd.packets_per_second;
    fc.spoof_sources = cmd.spoof_sources;
    ++attacks_executed_;
    flood_->start(fc);
  } else if (app_data == "STP") {
    flood_->stop();
  }
}

}  // namespace ddoshield::botnet
