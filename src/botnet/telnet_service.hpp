// The vulnerable telnet daemon running on each IoT device.
//
// This is the "vulnerable binary inside the Dev container" of the paper:
// it answers on port 23, checks LOGIN attempts against the device's
// (factory-default) credential, and — once authenticated — accepts an
// INSTALL command that hands control to the infection callback, at which
// point the testbed starts a BotAgent on the device.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "apps/app.hpp"
#include "botnet/credentials.hpp"
#include "net/tcp.hpp"

namespace ddoshield::botnet {

struct TelnetServiceConfig {
  std::uint16_t port = 23;
  std::size_t backlog = 16;
  /// The factory credential this device still has set; nullopt = device
  /// is patched (no dictionary entry works).
  std::optional<Credential> credential;
  /// Failed attempts before the daemon drops the session (then the scanner
  /// must reconnect — matching Mirai's reconnect-per-few-guesses pattern).
  int max_attempts_per_session = 4;
};

class TelnetService : public apps::App {
 public:
  /// `on_infected` fires when an authenticated peer issues INSTALL; the
  /// argument is the C2 address string carried in the command.
  using InfectedFn = std::function<void(const std::string& c2_addr)>;

  TelnetService(container::Container& owner, util::Rng rng, TelnetServiceConfig config,
                InfectedFn on_infected);

  std::uint64_t login_attempts() const { return login_attempts_; }
  std::uint64_t successful_logins() const { return successful_logins_; }
  bool infected() const { return infected_; }

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void handle_session(std::shared_ptr<net::TcpConnection> conn);

  TelnetServiceConfig config_;
  InfectedFn on_infected_;
  std::shared_ptr<net::TcpListener> listener_;
  std::uint64_t login_attempts_ = 0;
  std::uint64_t successful_logins_ = 0;
  bool infected_ = false;
};

}  // namespace ddoshield::botnet
