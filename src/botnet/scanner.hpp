// Mirai scanner and loader.
//
// The Scanner sweeps a target list, opens telnet sessions, and brute-forces
// the credential dictionary (reconnecting when the daemon drops the session
// after too many failures). Hits are handed to the Loader, which logs in
// with the recovered credential and issues INSTALL <c2-addr>, triggering
// the device's infection callback. Together they reproduce Mirai's
// scan → report → load pipeline; the packets are labelled kMiraiScan.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "botnet/credentials.hpp"
#include "net/tcp.hpp"

namespace ddoshield::botnet {

struct ScanResult {
  net::Ipv4Address address;
  Credential credential;
};

struct ScannerConfig {
  std::vector<net::Ipv4Address> targets;
  std::uint16_t telnet_port = 23;
  /// Simultaneously scanned hosts (Mirai kept many sockets in flight).
  std::size_t concurrency = 4;
  /// Pause between credential guesses within a session.
  util::SimTime guess_interval = util::SimTime::millis(200);
  /// Pause before retrying a host whose session was dropped mid-dictionary.
  util::SimTime reconnect_delay = util::SimTime::millis(500);
  /// Give up on a host after this many total guesses (patched device).
  std::size_t max_guesses_per_host = 24;
};

class Scanner : public apps::App {
 public:
  using FoundFn = std::function<void(const ScanResult&)>;
  using DoneFn = std::function<void()>;

  Scanner(container::Container& owner, util::Rng rng, ScannerConfig config,
          FoundFn on_found, DoneFn on_done = nullptr);

  std::uint64_t hosts_scanned() const { return hosts_scanned_; }
  std::uint64_t hosts_compromised() const { return hosts_compromised_; }
  std::uint64_t guesses_sent() const { return guesses_sent_; }
  bool finished() const { return finished_; }

 protected:
  void on_start() override;

 private:
  struct HostScan;
  void launch_next();
  void scan_host(std::size_t target_index);
  void open_session(const std::shared_ptr<HostScan>& scan);
  void host_finished(const std::shared_ptr<HostScan>& scan, bool compromised);

  ScannerConfig config_;
  FoundFn on_found_;
  DoneFn on_done_;
  std::size_t next_target_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t hosts_scanned_ = 0;
  std::uint64_t hosts_compromised_ = 0;
  std::uint64_t guesses_sent_ = 0;
  bool finished_ = false;
};

struct LoaderConfig {
  std::uint16_t telnet_port = 23;
  std::string c2_address;  // dotted quad handed to INSTALL
};

/// Logs into a compromised device with the recovered credential and plants
/// the bot. One Loader serves the whole campaign.
class Loader : public apps::App {
 public:
  using InstalledFn = std::function<void(net::Ipv4Address)>;

  Loader(container::Container& owner, util::Rng rng, LoaderConfig config,
         InstalledFn on_installed = nullptr);

  /// Starts an install session against the device.
  void infect(const ScanResult& result);

  std::uint64_t installs_attempted() const { return installs_attempted_; }
  std::uint64_t installs_succeeded() const { return installs_succeeded_; }

 protected:
  void on_start() override {}

 private:
  LoaderConfig config_;
  InstalledFn on_installed_;
  std::uint64_t installs_attempted_ = 0;
  std::uint64_t installs_succeeded_ = 0;
};

}  // namespace ddoshield::botnet
