// Mirai-style factory-default credential dictionary.
//
// Mirai's scanner carried a list of ~60 vendor default telnet logins and
// brute-forced them against every host answering on 23/2323. We embed a
// representative subset (all long-public, e.g. from the leaked Mirai
// source and CVE advisories) and model per-device vulnerability as "which
// dictionary entry (if any) this device still has configured".
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace ddoshield::botnet {

struct Credential {
  std::string user;
  std::string pass;

  bool operator==(const Credential&) const = default;
};

/// The scanner's dictionary, in the weighted order Mirai tried them.
std::span<const Credential> default_credential_dictionary();

/// Convenience: the dictionary entry at `index` (throws std::out_of_range
/// past the end). Device profiles reference entries by index so scenarios
/// stay readable.
const Credential& credential_at(std::size_t index);

std::size_t credential_dictionary_size();

}  // namespace ddoshield::botnet
