#include "botnet/floods.hpp"

#include <stdexcept>

#include "net/simulator.hpp"

namespace ddoshield::botnet {

using net::IpProto;
using net::Packet;
using net::TcpFlags;
using net::TrafficOrigin;
using util::SimTime;

std::string to_string(AttackType t) {
  switch (t) {
    case AttackType::kSynFlood: return "syn";
    case AttackType::kAckFlood: return "ack";
    case AttackType::kUdpFlood: return "udp";
  }
  return "?";
}

AttackType attack_type_from_string(const std::string& s) {
  if (s == "syn") return AttackType::kSynFlood;
  if (s == "ack") return AttackType::kAckFlood;
  if (s == "udp") return AttackType::kUdpFlood;
  throw std::invalid_argument("attack_type_from_string: unknown type '" + s + "'");
}

TrafficOrigin origin_of(AttackType t) {
  switch (t) {
    case AttackType::kSynFlood: return TrafficOrigin::kMiraiSynFlood;
    case AttackType::kAckFlood: return TrafficOrigin::kMiraiAckFlood;
    case AttackType::kUdpFlood: return TrafficOrigin::kMiraiUdpFlood;
  }
  return TrafficOrigin::kMiraiSynFlood;
}

FloodEngine::FloodEngine(net::Node& node, util::Rng rng) : node_{node}, rng_{rng} {}

void FloodEngine::start(const FloodConfig& config, DoneFn done) {
  if (config.packets_per_second <= 0.0) {
    throw std::invalid_argument("FloodEngine: packets_per_second must be positive");
  }
  stop();
  config_ = config;
  done_ = std::move(done);
  active_ = true;
  deadline_ = node_.simulator().now() + config_.duration;
  emit_next();
}

void FloodEngine::stop() {
  timer_.cancel();
  active_ = false;
}

void FloodEngine::emit_next() {
  if (!active_) return;
  if (node_.simulator().now() >= deadline_) {
    active_ = false;
    if (done_) done_();
    return;
  }
  node_.send(craft_packet());
  ++packets_emitted_;
  // Exponential inter-packet gaps: a Poisson packet process, which is what
  // a busy-looping sender thinned by OS jitter looks like on the wire.
  const double gap = rng_.exponential(config_.packets_per_second);
  timer_ = node_.simulator().schedule(SimTime::from_seconds(gap), [this] { emit_next(); });
}

Packet FloodEngine::craft_packet() {
  Packet pkt;
  pkt.dst = config_.target;
  pkt.origin = origin_of(config_.type);
  if (config_.spoof_sources) {
    // Random globally-routable-looking source.
    pkt.src = net::Ipv4Address{static_cast<std::uint32_t>(rng_.next_u64())};
  }
  switch (config_.type) {
    case AttackType::kSynFlood:
      pkt.proto = IpProto::kTcp;
      pkt.dst_port = config_.target_port;
      pkt.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(64512));
      pkt.tcp_flags = TcpFlags::kSyn;
      pkt.seq = static_cast<std::uint32_t>(rng_.next_u64());
      break;
    case AttackType::kAckFlood:
      pkt.proto = IpProto::kTcp;
      pkt.dst_port = config_.target_port;
      pkt.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(64512));
      pkt.tcp_flags = TcpFlags::kAck | TcpFlags::kPsh;
      pkt.seq = static_cast<std::uint32_t>(rng_.next_u64());
      pkt.ack = static_cast<std::uint32_t>(rng_.next_u64());
      // Length jitters around the configured size (botmasters randomise
      // it); a fixed length would be a single-feature giveaway.
      pkt.payload_bytes = config_.ack_payload_bytes / 2 +
                          static_cast<std::uint32_t>(rng_.uniform_u64(config_.ack_payload_bytes));
      break;
    case AttackType::kUdpFlood:
      pkt.proto = IpProto::kUdp;
      pkt.src_port = static_cast<std::uint16_t>(1024 + rng_.uniform_u64(64512));
      pkt.dst_port = config_.udp_port_spread == 0
                         ? config_.target_port
                         : static_cast<std::uint16_t>(
                               config_.target_port +
                               rng_.uniform_u64(config_.udp_port_spread));
      pkt.payload_bytes = config_.udp_payload_bytes / 2 +
                          static_cast<std::uint32_t>(rng_.uniform_u64(config_.udp_payload_bytes));
      break;
  }
  return pkt;
}

}  // namespace ddoshield::botnet
