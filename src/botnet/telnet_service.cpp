#include "botnet/telnet_service.hpp"

#include <memory>

namespace ddoshield::botnet {

using net::TcpConnection;
using net::TrafficOrigin;

TelnetService::TelnetService(container::Container& owner, util::Rng rng,
                             TelnetServiceConfig config, InfectedFn on_infected)
    : App{owner, "telnetd", rng}, config_{config}, on_infected_{std::move(on_infected)} {}

void TelnetService::on_start() {
  // Replies to scan traffic are part of the attack's footprint: label with
  // the scan origin, matching flow-based ground-truth labelling.
  listener_ = node().tcp().listen(config_.port, config_.backlog, TrafficOrigin::kMiraiScan);
  listener_->set_on_accept(
      [this](std::shared_ptr<TcpConnection> conn) { handle_session(std::move(conn)); });
}

void TelnetService::on_stop() {
  if (listener_) listener_->close();
  listener_.reset();
}

void TelnetService::handle_session(std::shared_ptr<TcpConnection> conn) {
  // Per-session state lives in the closure.
  auto attempts = std::make_shared<int>(0);
  auto authenticated = std::make_shared<bool>(false);

  conn->set_on_data([this, attempts, authenticated,
                     conn_weak = std::weak_ptr<TcpConnection>{conn}](
                        std::uint32_t, const std::string& app_data) {
    auto conn = conn_weak.lock();
    if (!conn || !running()) return;

    if (app_data.rfind("LOGIN ", 0) == 0) {
      ++login_attempts_;
      ++*attempts;
      // Command format: "LOGIN <user> <pass>"; pass may be empty.
      const std::string rest = app_data.substr(6);
      const auto space = rest.find(' ');
      const std::string user = space == std::string::npos ? rest : rest.substr(0, space);
      const std::string pass = space == std::string::npos ? "" : rest.substr(space + 1);

      if (config_.credential && user == config_.credential->user &&
          pass == config_.credential->pass) {
        *authenticated = true;
        ++successful_logins_;
        conn->send(32, "OK shell");
      } else {
        conn->send(32, "FAIL");
        if (*attempts >= config_.max_attempts_per_session) conn->abort();
      }
      return;
    }

    if (app_data.rfind("INSTALL ", 0) == 0 && *authenticated) {
      infected_ = true;
      const std::string c2_addr = app_data.substr(8);
      conn->send(32, "INSTALLED");
      conn->close();
      if (on_infected_) on_infected_(c2_addr);
      return;
    }
  });

  conn->set_on_peer_fin([conn_weak = std::weak_ptr<TcpConnection>{conn}] {
    if (auto conn = conn_weak.lock()) conn->close();
  });
}

}  // namespace ddoshield::botnet
