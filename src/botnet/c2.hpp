// Mirai command-and-control server.
//
// Runs inside the Attacker container. Bots connect over TCP, register, and
// keep the channel alive with heartbeats; the operator launches an attack
// by broadcasting an ATK command to every connected bot. The C2 channel's
// packets are labelled kMiraiC2 — low-volume but persistent malicious
// traffic that a good IDS should also flag.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "botnet/floods.hpp"
#include "net/tcp.hpp"

namespace ddoshield::botnet {

struct C2Command {
  AttackType type = AttackType::kSynFlood;
  net::Ipv4Address target;
  std::uint16_t target_port = 80;
  util::SimTime duration = util::SimTime::seconds(10);
  double packets_per_second = 1000.0;
  bool spoof_sources = false;

  /// Wire encoding: "ATK <type> <ip> <port> <dur_ms> <pps> <spoof>".
  std::string encode() const;
  static C2Command decode(const std::string& line);
};

struct C2ServerConfig {
  std::uint16_t port = 48101;  // Mirai's loader/C2 port
  std::size_t backlog = 256;
  /// Bots silent for longer than this are dropped (their device churned
  /// out or the path collapsed); the reconnect handshake re-registers them.
  util::SimTime bot_timeout = util::SimTime::seconds(30);
  util::SimTime sweep_interval = util::SimTime::seconds(10);
};

class C2Server : public apps::App {
 public:
  C2Server(container::Container& owner, util::Rng rng, C2ServerConfig config = {});

  /// Broadcasts an attack command to all connected bots; returns how many
  /// bots received it.
  std::size_t launch_attack(const C2Command& cmd);

  /// Broadcasts a stop command.
  std::size_t stop_attack();

  std::size_t connected_bots() const { return bots_.size(); }
  std::uint64_t total_registrations() const { return total_registrations_; }
  std::vector<std::string> bot_names() const;

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  struct BotSlot {
    std::shared_ptr<net::TcpConnection> conn;
    util::SimTime last_seen;
  };

  void handle_connection(std::shared_ptr<net::TcpConnection> conn);
  void sweep_dead_bots();

  C2ServerConfig config_;
  std::shared_ptr<net::TcpListener> listener_;
  std::map<std::string, BotSlot> bots_;
  std::uint64_t total_registrations_ = 0;
};

}  // namespace ddoshield::botnet
