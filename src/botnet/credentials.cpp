#include "botnet/credentials.hpp"

#include <array>
#include <stdexcept>
#include <vector>

namespace ddoshield::botnet {

namespace {

const std::vector<Credential>& dictionary() {
  static const std::vector<Credential> kDict = {
      {"root", "xc3511"},    {"root", "vizxv"},     {"root", "admin"},
      {"admin", "admin"},    {"root", "888888"},    {"root", "xmhdipc"},
      {"root", "default"},   {"root", "juantech"},  {"root", "123456"},
      {"root", "54321"},     {"support", "support"},{"root", ""},
      {"admin", "password"}, {"root", "root"},      {"root", "12345"},
      {"user", "user"},      {"admin", ""},         {"root", "pass"},
      {"admin", "admin1234"},{"root", "1111"},      {"admin", "smcadmin"},
      {"admin", "1111"},     {"root", "666666"},    {"root", "password"},
      {"root", "1234"},      {"root", "klv123"},    {"Administrator", "admin"},
      {"service", "service"},{"supervisor", "supervisor"}, {"guest", "guest"},
      {"guest", "12345"},    {"admin1", "password"},{"administrator", "1234"},
      {"666666", "666666"},  {"888888", "888888"},  {"ubnt", "ubnt"},
      {"root", "klv1234"},   {"root", "Zte521"},    {"root", "hi3518"},
      {"root", "jvbzd"},     {"root", "anko"},      {"root", "zlxx."},
      {"root", "7ujMko0vizxv"}, {"root", "7ujMko0admin"}, {"root", "system"},
      {"root", "ikwb"},      {"root", "dreambox"},  {"root", "user"},
      {"root", "realtek"},   {"root", "00000000"},  {"admin", "1111111"},
      {"admin", "1234"},     {"admin", "12345"},    {"admin", "54321"},
      {"admin", "123456"},   {"admin", "7ujMko0admin"}, {"admin", "meinsm"},
      {"tech", "tech"},      {"mother", "fucker"},
  };
  return kDict;
}

}  // namespace

std::span<const Credential> default_credential_dictionary() { return dictionary(); }

const Credential& credential_at(std::size_t index) {
  const auto& d = dictionary();
  if (index >= d.size()) {
    throw std::out_of_range("credential_at: index past dictionary end");
  }
  return d[index];
}

std::size_t credential_dictionary_size() { return dictionary().size(); }

}  // namespace ddoshield::botnet
