// The bot agent installed on a compromised device.
//
// Dials the C2, registers under the device's name, heartbeats, and
// executes ATK/STP commands with its FloodEngine. If the C2 channel drops
// (device churn, congestion collapse) it reconnects with jittered backoff,
// so the botnet reassembles after disruption — the behaviour DDoSim's
// churn-rate experiments measure.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/app.hpp"
#include "botnet/floods.hpp"
#include "net/tcp.hpp"

namespace ddoshield::botnet {

struct BotAgentConfig {
  net::Endpoint c2;
  util::SimTime heartbeat_interval = util::SimTime::seconds(10);
  util::SimTime reconnect_delay = util::SimTime::seconds(2);
};

class BotAgent : public apps::App {
 public:
  BotAgent(container::Container& owner, util::Rng rng, BotAgentConfig config);

  bool connected() const;
  bool attacking() const { return flood_ && flood_->active(); }
  std::uint64_t attacks_executed() const { return attacks_executed_; }
  std::uint64_t flood_packets_sent() const;

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  void dial_c2();
  void schedule_reconnect();
  void heartbeat();
  void handle_command(const std::string& app_data);

  BotAgentConfig config_;
  std::shared_ptr<net::TcpConnection> c2_conn_;
  std::unique_ptr<FloodEngine> flood_;
  std::uint64_t attacks_executed_ = 0;
  std::uint64_t flood_packets_total_ = 0;
};

}  // namespace ddoshield::botnet
