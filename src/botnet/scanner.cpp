#include "botnet/scanner.hpp"

namespace ddoshield::botnet {

using net::Endpoint;
using net::TcpCloseReason;
using net::TcpConnection;
using net::TcpState;
using net::TrafficOrigin;
using util::SimTime;

// ---------------------------------------------------------------------------
// Scanner
// ---------------------------------------------------------------------------

struct Scanner::HostScan {
  net::Ipv4Address address;
  std::size_t next_credential = 0;
  std::size_t guesses = 0;
  std::shared_ptr<TcpConnection> conn;
  bool done = false;
};

Scanner::Scanner(container::Container& owner, util::Rng rng, ScannerConfig config,
                 FoundFn on_found, DoneFn on_done)
    : App{owner, "mirai-scanner", rng},
      config_{std::move(config)},
      on_found_{std::move(on_found)},
      on_done_{std::move(on_done)} {}

void Scanner::on_start() {
  if (config_.targets.empty()) {
    finished_ = true;
    if (on_done_) on_done_();
    return;
  }
  launch_next();
}

void Scanner::launch_next() {
  while (running() && in_flight_ < config_.concurrency &&
         next_target_ < config_.targets.size()) {
    scan_host(next_target_++);
  }
  if (in_flight_ == 0 && next_target_ >= config_.targets.size() && !finished_) {
    finished_ = true;
    if (on_done_) on_done_();
  }
}

void Scanner::scan_host(std::size_t target_index) {
  auto scan = std::make_shared<HostScan>();
  scan->address = config_.targets[target_index];
  ++in_flight_;
  open_session(scan);
}

void Scanner::open_session(const std::shared_ptr<HostScan>& scan) {
  if (!running() || scan->done) return;
  auto conn =
      node().tcp().connect(Endpoint{scan->address, config_.telnet_port}, TrafficOrigin::kMiraiScan);
  scan->conn = conn;

  auto send_guess = [this, scan_weak = std::weak_ptr<HostScan>{scan}] {
    auto scan = scan_weak.lock();
    if (!scan || scan->done || !running()) return;
    if (scan->guesses >= config_.max_guesses_per_host ||
        scan->next_credential >= credential_dictionary_size()) {
      scan->conn->abort();
      host_finished(scan, false);
      return;
    }
    // A stale timer can fire after the daemon dropped the session; the
    // credential must not be consumed then — the reconnect path will
    // retry it on the fresh session.
    if (scan->conn->state() != TcpState::kEstablished) return;
    const Credential& cred = credential_at(scan->next_credential++);
    ++scan->guesses;
    ++guesses_sent_;
    scan->conn->send(48, "LOGIN " + cred.user + " " + cred.pass);
  };

  conn->set_on_connected([send_guess] { send_guess(); });

  conn->set_on_data([this, scan, send_guess](std::uint32_t, const std::string& app_data) {
    if (scan->done || !running()) return;
    if (app_data.rfind("OK", 0) == 0) {
      // The credential that just succeeded is the previous one issued.
      const Credential& cred = credential_at(scan->next_credential - 1);
      scan->conn->close();
      ++hosts_compromised_;
      host_finished(scan, true);
      if (on_found_) on_found_(ScanResult{scan->address, cred});
    } else if (app_data.rfind("FAIL", 0) == 0) {
      schedule(config_.guess_interval, send_guess);
    }
  });

  conn->set_on_closed([this, scan](TcpCloseReason reason) {
    if (scan->done || !running()) return;
    if (reason == TcpCloseReason::kConnectTimeout) {
      // Host unreachable (churned out or no telnet): give up on it.
      host_finished(scan, false);
      return;
    }
    if (scan->guesses >= config_.max_guesses_per_host ||
        scan->next_credential >= credential_dictionary_size()) {
      host_finished(scan, false);
      return;
    }
    // Daemon dropped us mid-dictionary; reconnect and continue.
    schedule(config_.reconnect_delay, [this, scan] { open_session(scan); });
  });
}

void Scanner::host_finished(const std::shared_ptr<HostScan>& scan, bool /*compromised*/) {
  if (scan->done) return;
  scan->done = true;
  ++hosts_scanned_;
  --in_flight_;
  launch_next();
}

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

Loader::Loader(container::Container& owner, util::Rng rng, LoaderConfig config,
               InstalledFn on_installed)
    : App{owner, "mirai-loader", rng},
      config_{std::move(config)},
      on_installed_{std::move(on_installed)} {}

void Loader::infect(const ScanResult& result) {
  if (!running()) return;
  ++installs_attempted_;
  auto conn = node().tcp().connect(Endpoint{result.address, config_.telnet_port},
                                   TrafficOrigin::kMiraiScan);
  auto logged_in = std::make_shared<bool>(false);

  conn->set_on_connected([conn, result] {
    conn->send(48, "LOGIN " + result.credential.user + " " + result.credential.pass);
  });

  conn->set_on_data([this, conn, logged_in, addr = result.address](
                        std::uint32_t, const std::string& app_data) {
    if (app_data.rfind("OK", 0) == 0 && !*logged_in) {
      *logged_in = true;
      conn->send(64, "INSTALL " + config_.c2_address);
    } else if (app_data.rfind("INSTALLED", 0) == 0) {
      ++installs_succeeded_;
      if (conn->state() == TcpState::kEstablished) conn->close();
      if (on_installed_) on_installed_(addr);
    }
  });
}

}  // namespace ddoshield::botnet
