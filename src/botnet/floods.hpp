// Mirai attack vectors: SYN flood, ACK flood, UDP flood.
//
// A FloodEngine is a packet generator bound to a node. It emits raw
// crafted packets (bypassing the socket layer, as Mirai's attack modules
// do with raw sockets) at a configured rate with per-packet jitter, random
// source ports and sequence numbers, and an optional spoofed-source mode.
// The victim's stack answers per its state machine — SYN-ACKs from the
// listener, RSTs for stray ACKs, silent drops for UDP — so the flood's
// on-wire footprint is bidirectional and realistic.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::botnet {

enum class AttackType : std::uint8_t { kSynFlood = 0, kAckFlood, kUdpFlood };

std::string to_string(AttackType t);
/// Parses "syn"/"ack"/"udp"; throws std::invalid_argument otherwise.
AttackType attack_type_from_string(const std::string& s);

net::TrafficOrigin origin_of(AttackType t);

struct FloodConfig {
  AttackType type = AttackType::kSynFlood;
  net::Ipv4Address target;
  std::uint16_t target_port = 80;
  double packets_per_second = 1000.0;
  util::SimTime duration = util::SimTime::seconds(10);
  /// Spoof random source addresses (Mirai's TCP vectors support this when
  /// the device is not NATed). Spoofed floods defeat per-source filtering
  /// and leave half-open embryos that can never complete.
  bool spoof_sources = false;
  std::uint32_t udp_payload_bytes = 512;
  /// Mirai's ACK flood carries a random payload (512 bytes by default in
  /// the leaked source), which makes its packets look like ordinary data
  /// segments rather than empty window updates.
  std::uint32_t ack_payload_bytes = 512;
  /// UDP flood sprays this many destination ports round-robin-randomly;
  /// 0 = always target_port.
  std::uint16_t udp_port_spread = 1024;
};

class FloodEngine {
 public:
  using DoneFn = std::function<void()>;

  FloodEngine(net::Node& node, util::Rng rng);

  /// Starts emitting; calls `done` when the configured duration elapses.
  /// A flood can be stopped early with stop().
  void start(const FloodConfig& config, DoneFn done = nullptr);
  void stop();

  bool active() const { return active_; }
  std::uint64_t packets_emitted() const { return packets_emitted_; }

 private:
  void emit_next();
  net::Packet craft_packet();

  net::Node& node_;
  util::Rng rng_;
  FloodConfig config_;
  DoneFn done_;
  bool active_ = false;
  util::SimTime deadline_;
  net::EventHandle timer_;
  std::uint64_t packets_emitted_ = 0;
};

}  // namespace ddoshield::botnet
