// The DDoShield-IoT testbed (Fig. 1).
//
// Wires the whole system from a Scenario: the simulated network (star of
// device/attacker access links into a router uplinked to the TServer), one
// container per role bridged onto its node, the TServer's three benign-
// traffic servers (Apache/Nginx-RTMP/FTP roles), per-device benign clients
// and the vulnerable telnet daemon, the Mirai pipeline (scanner → loader →
// bot agents → C2), scheduled attack bursts, optional device churn, a
// capture tap on the TServer, and (optionally) the real-time IDS container.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "apps/ftp.hpp"
#include "apps/http.hpp"
#include "apps/telemetry.hpp"
#include "apps/video.hpp"
#include "botnet/bot.hpp"
#include "botnet/c2.hpp"
#include "botnet/scanner.hpp"
#include "botnet/telnet_service.hpp"
#include "capture/dataset.hpp"
#include "capture/tap.hpp"
#include "container/runtime.hpp"
#include "core/scenario.hpp"
#include "ids/realtime_ids.hpp"
#include "mitigate/mitigation.hpp"
#include "ml/classifier.hpp"
#include "net/network.hpp"
#include "obs/sampler.hpp"

namespace ddoshield::core {

/// Per-second victim-side throughput sample, for the DDoSim-substrate
/// experiments (E6).
struct ThroughputSample {
  util::SimTime at;
  double benign_goodput_bps = 0.0;   // application bytes served to clients
  double uplink_rx_bps = 0.0;        // everything arriving at the TServer
  std::size_t connected_bots = 0;
};

class Testbed {
 public:
  explicit Testbed(Scenario scenario);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  /// Builds topology, containers, and apps, and schedules the scenario's
  /// infection, attacks, and churn. Must be called exactly once.
  void deploy();

  /// Starts collecting every tapped packet into dataset().
  void record_dataset();

  /// Deploys the real-time IDS container with a trained model.
  /// Must be called after deploy() and before run_until the traffic of
  /// interest. Returns the IDS for report access.
  ids::RealTimeIds& deploy_ids(const ml::Classifier& model, ids::IdsConfig config = {});

  /// Closes the detect→defend loop: installs an EdgeFilter at the router
  /// guarding the TServer and starts a MitigationController (in the IDS
  /// container) driven by the IDS verdict bus, with quarantine hooks wired
  /// to crash_device/restart_device. Must be called after deploy_ids().
  mitigate::MitigationController& enable_mitigation(mitigate::MitigationConfig config = {});
  /// Present only after enable_mitigation().
  mitigate::MitigationController* mitigation() { return mitigation_.get(); }

  /// Runs the simulation to the given absolute time.
  void run_until(util::SimTime t);
  /// Runs the full scenario duration and stops all containers.
  void run();

  // --- fault injection (testkit) --------------------------------------------
  /// Kills the device's container mid-scenario: every app on it (benign
  /// clients, telnetd, an installed bot) stops, and the bot infection is
  /// lost — a rebooted Mirai victim comes back clean and re-vulnerable.
  void crash_device(std::size_t device_index);
  /// Restarts a crashed/stopped device container and its resident apps
  /// (benign clients and the telnet daemon; bots only return through
  /// reinfection).
  void restart_device(std::size_t device_index);

  // --- access ---------------------------------------------------------------
  net::Network& network() { return net_; }
  container::ContainerRuntime& runtime() { return runtime_; }
  const net::StarTopology& topology() const { return topo_; }
  capture::PacketTap& tap() { return *tap_; }
  capture::Dataset& dataset() { return dataset_; }
  const Scenario& scenario() const { return scenario_; }

  botnet::C2Server& c2() { return *c2_; }
  std::size_t infected_devices() const;
  std::size_t connected_bots() const { return c2_ ? c2_->connected_bots() : 0; }

  apps::HttpServer& http_server() { return *http_server_; }
  apps::VideoServer& video_server() { return *video_server_; }
  apps::FtpServer& ftp_server() { return *ftp_server_; }
  /// Present only when the scenario enables telemetry traffic.
  apps::TelemetryBroker* telemetry_broker() { return telemetry_broker_.get(); }

  /// Total benign application bytes delivered to device clients so far.
  std::uint64_t benign_bytes_delivered() const;
  /// Benign requests/downloads that failed (timeouts, resets) so far.
  std::uint64_t benign_failures() const;
  std::uint64_t benign_completions() const;

  const std::vector<ThroughputSample>& throughput_series() const { return throughput_; }
  /// Enables periodic throughput sampling (E6); call before run().
  void sample_throughput_every(util::SimTime interval);

  /// Starts the obs sampler on the simulation clock: snapshots event-queue
  /// depth, uplink queue occupancy, TServer active TCP connections, and —
  /// when an IDS is deployed — the IDS window backlog into "testbed.*"
  /// gauges every `period` of sim time until the scenario ends. Call after
  /// deploy() (and after deploy_ids() to include the IDS probe).
  obs::Sampler& enable_metrics_sampling(util::SimTime period = util::SimTime::millis(100));

 private:
  void build_containers();
  void start_benign_apps();
  void start_botnet();
  void schedule_attacks();
  void schedule_churn();
  void churn_tick();
  void throughput_tick();
  void install_bot(std::size_t device_index);

  Scenario scenario_;
  util::Rng churn_rng_{0};
  util::SimTime throughput_interval_;
  net::Network net_;
  net::StarTopology topo_;
  container::ContainerRuntime runtime_;
  bool deployed_ = false;

  std::unique_ptr<capture::PacketTap> tap_;
  capture::Dataset dataset_;
  bool recording_ = false;

  // TServer apps.
  std::unique_ptr<apps::HttpServer> http_server_;
  std::unique_ptr<apps::VideoServer> video_server_;
  std::unique_ptr<apps::FtpServer> ftp_server_;
  std::unique_ptr<apps::TelemetryBroker> telemetry_broker_;

  // Device apps (index-aligned with topology().devices).
  std::vector<std::unique_ptr<apps::HttpClient>> http_clients_;
  std::vector<std::unique_ptr<apps::VideoClient>> video_clients_;
  std::vector<std::unique_ptr<apps::FtpClient>> ftp_clients_;
  std::vector<std::unique_ptr<apps::TelemetrySensor>> telemetry_sensors_;
  std::vector<std::unique_ptr<botnet::TelnetService>> telnet_services_;
  std::vector<std::unique_ptr<botnet::BotAgent>> bots_;

  // Attacker apps.
  std::unique_ptr<botnet::C2Server> c2_;
  std::unique_ptr<botnet::Scanner> scanner_;
  std::unique_ptr<botnet::Loader> loader_;

  // IDS.
  std::unique_ptr<ids::RealTimeIds> ids_;

  // Mitigation (declared after net_/topo_: the destructor detaches the
  // filter from the router before the network goes away).
  std::unique_ptr<mitigate::EdgeFilter> edge_filter_;
  std::unique_ptr<mitigate::MitigationController> mitigation_;

  // Observability.
  std::unique_ptr<obs::Sampler> sampler_;

  std::vector<ThroughputSample> throughput_;
  std::uint64_t last_benign_bytes_ = 0;
  std::uint64_t last_uplink_rx_bytes_ = 0;
};

}  // namespace ddoshield::core
