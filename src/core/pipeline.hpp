// End-to-end experiment pipeline: dataset generation → model training →
// real-time detection. These are the exact flows behind the paper's
// Tables I & II and the per-second accuracy analysis, factored as library
// calls so benches, examples, and tests share one implementation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "capture/dataset.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "features/extractor.hpp"
#include "ids/realtime_ids.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace ddoshield::core {

/// Bridges the feature extractor's output into the ML layer's matrix.
void to_design_matrix(const features::FeatureMatrix& fm, ml::DesignMatrix& x,
                      std::vector<int>& y);

struct GenerationResult {
  capture::Dataset dataset;
  std::size_t infected_devices = 0;
  std::size_t peak_connected_bots = 0;
};

/// Runs a scenario and captures every tapped packet (E1).
GenerationResult run_generation(const Scenario& scenario);

struct ModelReport {
  std::string model;
  ml::ConfusionMatrix train;
  ml::ConfusionMatrix test;
  std::uint64_t model_file_bytes = 0;  // serialized size (Table II)
  double fit_seconds = 0.0;            // wall-clock training time
};

/// The three trained detectors plus their training-phase metrics (E2).
struct TrainedModels {
  std::vector<ModelReport> reports;
  std::map<std::string, std::unique_ptr<ml::Classifier>> models;

  const ml::Classifier& get(const std::string& name) const;
  const ModelReport& report_of(const std::string& name) const;
};

struct TrainingOptions {
  util::SimTime window = util::SimTime::seconds(1);
  double test_fraction = 0.2;
  std::uint64_t split_seed = 99;
};

/// Extracts features from the dataset and trains RF, K-Means, and CNN.
TrainedModels train_all_models(const capture::Dataset& dataset, TrainingOptions options = {});

struct DetectionResult {
  std::string model;
  ids::IdsSummary summary;
  std::vector<ids::WindowReport> windows;
  double model_size_kb = 0.0;
};

/// Runs the real-time detection scenario with the given trained model
/// deployed in the IDS container (E3/E4/E5). The same scenario/seed gives
/// every model an identical packet stream.
DetectionResult run_detection(const Scenario& scenario, const ml::Classifier& model,
                              ids::IdsConfig ids_config = {});

/// Train/serve column-order skew (the paper-artifact reconstruction).
///
/// The published testbed trains each model with its own script: K-Means
/// and the CNN are fitted and served by the same real-time component, but
/// the Random Forest is fitted offline from the exported CSV — whose
/// statistical columns are ordered per the schema — and then served the
/// real-time loop's computation-ordered vectors. sklearn models accept any
/// numpy array of the right width, so the permutation is silent. This
/// adapter reproduces that skew: it forwards rows to the wrapped model
/// after re-ordering them into the streaming layout, turning the model's
/// learned statistical thresholds into noise — the paper's own diagnosis
/// of its real-time Random Forest accuracy (Table I, 61.22%).
/// EXPERIMENTS.md (E3) reports results with and without the skew.
class SkewServedClassifier : public ml::Classifier {
 public:
  explicit SkewServedClassifier(const ml::Classifier& inner) : inner_{inner} {}

  std::string name() const override { return inner_.name(); }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override;
  int predict(std::span<const double> row) const override;
  bool trained() const override { return inner_.trained(); }
  void save(util::ByteWriter& w) const override { inner_.save(w); }
  void load(util::ByteReader&) override;
  std::uint64_t parameter_bytes() const override { return inner_.parameter_bytes(); }
  std::uint64_t inference_scratch_bytes() const override {
    return inner_.inference_scratch_bytes();
  }

 private:
  const ml::Classifier& inner_;
};

}  // namespace ddoshield::core
