// Scenario configuration: everything that defines one testbed run.
//
// Two canonical scenarios reproduce the paper's evaluation:
//   * training_scenario()  — the 10-minute dataset-generation run, with
//     benign traffic and near-continuous rotating Mirai attacks, so every
//     window contains a benign/malicious mix (the paper's §IV-D setup,
//     which yielded 3.0M malicious / 2.2M benign packets);
//   * detection_scenario() — the 5-minute real-time run, with *bursty*
//     attacks separated by quiet gaps, so many windows contain a single
//     traffic class (the property §IV-D leans on when it restricts
//     real-time scoring to accuracy).
// Packet rates are scaled down from the paper's (which needed 10 wall-
// clock minutes on a laptop) so a full pipeline runs in seconds; the
// malicious:benign ratio and the mix of attack vectors are preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "botnet/floods.hpp"
#include "net/network.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::core {

/// One scheduled attack burst, commanded through the C2.
struct AttackBurst {
  util::SimTime start;
  botnet::AttackType type = botnet::AttackType::kSynFlood;
  util::SimTime duration = util::SimTime::seconds(10);
  double packets_per_second_per_bot = 400.0;
  bool spoof_sources = false;
};

/// Device churn: devices drop off the network and return (DDoSim §III-A).
struct ChurnConfig {
  /// Expected link-down events per device per second; 0 disables churn.
  double events_per_device_per_second = 0.0;
  util::SimTime down_time = util::SimTime::seconds(5);
};

struct BenignLoad {
  double http_session_rate = 0.6;   // sessions/s per device
  double http_mean_requests = 4.0;
  double video_session_rate = 0.08;
  double video_mean_watch_seconds = 20.0;
  double ftp_session_rate = 0.05;
  double ftp_mean_files = 2.0;
  /// MQTT-style sensor telemetry (readings/s per device); 0 disables it.
  /// Off in the canonical paper scenarios — it is the §V benign-diversity
  /// extension, not part of the reproduced workload.
  double telemetry_publish_rate = 0.0;
};

struct Scenario {
  std::uint64_t seed = 1;
  std::size_t device_count = 8;
  /// Fraction of devices with a factory-default credential still set.
  double vulnerable_fraction = 1.0;
  util::SimTime duration = util::SimTime::seconds(60);
  /// When the attacker begins scanning for victims.
  util::SimTime infection_start = util::SimTime::seconds(1);
  /// Wall-clock time at which this capture starts. Consecutive runs of the
  /// testbed (train first, detect later) carry increasing offsets, exactly
  /// like the absolute timestamps of consecutive real pcap captures.
  util::SimTime capture_clock_offset;
  BenignLoad benign;
  std::vector<AttackBurst> attacks;
  ChurnConfig churn;
  /// Star-topology link parameters (access links and the victim uplink).
  /// The canonical scenarios keep the defaults; the testkit fuzzer
  /// randomises them to explore degraded-substrate regimes. The embedded
  /// device_count is overridden by Scenario::device_count at deploy.
  net::StarTopologyConfig topology;
};

/// The paper's dataset-generation run (E1/E2), time-scaled.
Scenario training_scenario(std::uint64_t seed = 1);

/// The paper's real-time detection run (E3/E4/E5), time-scaled.
Scenario detection_scenario(std::uint64_t seed = 2);

/// Appends a repeating attack pattern to `scenario.attacks`: bursts of
/// `burst` length separated by `gap`, rotating through the given types,
/// from `from` until `until`.
void schedule_attack_cycle(Scenario& scenario, util::SimTime from, util::SimTime until,
                           util::SimTime burst, util::SimTime gap,
                           const std::vector<botnet::AttackType>& types,
                           double pps_per_bot);

}  // namespace ddoshield::core
