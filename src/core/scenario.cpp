#include "core/scenario.hpp"

#include <stdexcept>

namespace ddoshield::core {

using botnet::AttackType;
using util::SimTime;

void schedule_attack_cycle(Scenario& scenario, SimTime from, SimTime until, SimTime burst,
                           SimTime gap, const std::vector<AttackType>& types,
                           double pps_per_bot) {
  if (types.empty()) throw std::invalid_argument("schedule_attack_cycle: no attack types");
  if (burst <= SimTime{}) throw std::invalid_argument("schedule_attack_cycle: bad burst");
  SimTime t = from;
  std::size_t i = 0;
  while (t < until) {
    AttackBurst ab;
    ab.start = t;
    ab.type = types[i % types.size()];
    ab.duration = burst;
    ab.packets_per_second_per_bot = pps_per_bot;
    scenario.attacks.push_back(ab);
    t = t + burst + gap;
    ++i;
  }
}

Scenario training_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.device_count = 8;
  s.duration = SimTime::seconds(120);  // the paper's 10 min, time-scaled 5x
  s.infection_start = SimTime::seconds(1);
  // The training dataset is exported from the capture with *absolute*
  // (wall-clock) timestamps, exactly like a tshark/Wireshark CSV export.
  s.capture_clock_offset = SimTime::seconds(1000);
  // Near-continuous attacks while the campaign runs: every window in
  // [12s, 100s) holds a benign/malicious mix, so the window statistics
  // reflect "attack present" regimes of varying type and intensity. The
  // campaign is torn down before the capture stops, so the recording ends
  // with a benign-only tail — as a real collection run does.
  schedule_attack_cycle(s, SimTime::seconds(12), s.duration - SimTime::seconds(30),
                        SimTime::seconds(8),
                        SimTime::seconds(0),
                        {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood},
                        120.0);
  return s;
}

Scenario detection_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.device_count = 8;
  s.duration = SimTime::seconds(60);  // the paper's 5 min, time-scaled 5x
  s.infection_start = SimTime::seconds(1);
  // The real-time IDS stamps packets with time-since-IDS-start (offset 0):
  // the classic train/serve timestamp skew against the absolute-clock
  // training export above. Models whose pipeline standardises and clamps
  // features to the training support (K-Means, CNN) are immune; a model
  // consuming raw features (Random Forest — trees need no scaling) routes
  // every out-of-range timestamp toward the earliest-era leaves, which the
  // pre-infection prefix of the training capture made benign. This is the
  // reproduction's mechanism for Table I; see EXPERIMENTS.md (E3).
  s.capture_clock_offset = SimTime::seconds(0);
  // The real-time run is not the training run: attacks come in bursts with
  // quiet gaps, so many windows hold a single traffic class — the regime
  // §IV-D describes — and the burst schedule occupies different times than
  // the training capture's. Any model that leaned on the absolute
  // timestamp or on window-identity statistics at training time now sees
  // "noise" (the paper's own diagnosis of the real-time accuracy drops).
  schedule_attack_cycle(s, SimTime::seconds(12), s.duration, SimTime::seconds(6),
                        SimTime::seconds(8),
                        {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood},
                        120.0);
  return s;
}

}  // namespace ddoshield::core
