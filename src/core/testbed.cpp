#include "core/testbed.hpp"

#include <cmath>
#include <stdexcept>

#include "net/tcp.hpp"
#include "util/logging.hpp"

namespace ddoshield::core {

using util::LogLevel;
using util::Rng;
using util::SimTime;

Testbed::Testbed(Scenario scenario) : scenario_{std::move(scenario)} {}

Testbed::~Testbed() {
  // Detach the edge filter before edge_filter_ is destroyed (member order
  // alone is not enough: topo_.router outlives the filter).
  if (edge_filter_ && topo_.router != nullptr) topo_.router->set_ingress_filter(nullptr);
  runtime_.stop_all();
}

void Testbed::deploy() {
  if (deployed_) throw std::logic_error("Testbed::deploy: already deployed");
  deployed_ = true;

  net::StarTopologyConfig topo_cfg = scenario_.topology;
  topo_cfg.device_count = scenario_.device_count;
  topo_ = net::build_star_topology(net_, topo_cfg);

  capture::TapConfig tap_cfg;
  tap_cfg.clock_offset = scenario_.capture_clock_offset;
  tap_ = std::make_unique<capture::PacketTap>(tap_cfg);
  tap_->attach_to(*topo_.tserver);

  build_containers();
  start_benign_apps();
  start_botnet();
  schedule_attacks();
  schedule_churn();
}

void Testbed::build_containers() {
  // Images mirror the paper's four container roles. Entrypoints are
  // installed per-app below; images carry the identity.
  runtime_.register_image({"ddoshield/tserver", "1.0", nullptr});
  runtime_.register_image({"ddoshield/attacker", "1.0", nullptr});
  runtime_.register_image({"ddoshield/dev", "1.0", nullptr});
  runtime_.register_image({"ddoshield/ids", "1.0", nullptr});

  auto& tserver = runtime_.create("tserver", "ddoshield/tserver:1.0");
  tserver.attach_node(*topo_.tserver);
  tserver.start();

  auto& attacker = runtime_.create("attacker", "ddoshield/attacker:1.0");
  attacker.attach_node(*topo_.attacker);
  attacker.start();

  for (std::size_t i = 0; i < topo_.devices.size(); ++i) {
    auto& dev = runtime_.create("dev_" + std::to_string(i), "ddoshield/dev:1.0");
    dev.attach_node(*topo_.devices[i]);
    dev.start();
  }

  auto& ids = runtime_.create("ids", "ddoshield/ids:1.0");
  // The IDS container taps the victim; bridging it to the TServer node
  // mirrors the paper's port-mirrored sensor placement.
  ids.attach_node(*topo_.tserver);
  ids.start();
}

void Testbed::start_benign_apps() {
  Rng root{scenario_.seed};
  auto& tserver = runtime_.get("tserver");

  http_server_ = std::make_unique<apps::HttpServer>(tserver, root.fork("http-server"));
  http_server_->start();
  video_server_ = std::make_unique<apps::VideoServer>(tserver, root.fork("video-server"));
  video_server_->start();
  ftp_server_ = std::make_unique<apps::FtpServer>(tserver, root.fork("ftp-server"));
  ftp_server_->start();
  if (scenario_.benign.telemetry_publish_rate > 0.0) {
    telemetry_broker_ =
        std::make_unique<apps::TelemetryBroker>(tserver, root.fork("telemetry-broker"));
    telemetry_broker_->start();
  }

  const net::Ipv4Address server_addr = topo_.tserver->address();
  for (std::size_t i = 0; i < topo_.devices.size(); ++i) {
    auto& dev = runtime_.get("dev_" + std::to_string(i));
    const std::string tag = "dev-" + std::to_string(i);

    apps::HttpClientConfig http_cfg;
    http_cfg.server = {server_addr, 80};
    http_cfg.session_rate = scenario_.benign.http_session_rate;
    http_cfg.mean_requests_per_session = scenario_.benign.http_mean_requests;
    http_clients_.push_back(
        std::make_unique<apps::HttpClient>(dev, root.fork(tag + "-http"), http_cfg));
    http_clients_.back()->start();

    apps::VideoClientConfig video_cfg;
    video_cfg.server = {server_addr, 1935};
    video_cfg.session_rate = scenario_.benign.video_session_rate;
    video_cfg.mean_watch_seconds = scenario_.benign.video_mean_watch_seconds;
    video_clients_.push_back(
        std::make_unique<apps::VideoClient>(dev, root.fork(tag + "-video"), video_cfg));
    video_clients_.back()->start();

    apps::FtpClientConfig ftp_cfg;
    ftp_cfg.server = {server_addr, 21};
    ftp_cfg.session_rate = scenario_.benign.ftp_session_rate;
    ftp_cfg.mean_files_per_session = scenario_.benign.ftp_mean_files;
    ftp_clients_.push_back(
        std::make_unique<apps::FtpClient>(dev, root.fork(tag + "-ftp"), ftp_cfg));
    ftp_clients_.back()->start();

    if (scenario_.benign.telemetry_publish_rate > 0.0) {
      apps::TelemetrySensorConfig sensor_cfg;
      sensor_cfg.broker = {server_addr, 1883};
      sensor_cfg.publish_rate = scenario_.benign.telemetry_publish_rate;
      telemetry_sensors_.push_back(std::make_unique<apps::TelemetrySensor>(
          dev, root.fork(tag + "-telemetry"), sensor_cfg));
      telemetry_sensors_.back()->start();
    }
  }
}

void Testbed::start_botnet() {
  Rng root{scenario_.seed};
  Rng vuln_rng = root.fork("vulnerability");
  auto& attacker = runtime_.get("attacker");

  // C2 first, so bots always find it.
  c2_ = std::make_unique<botnet::C2Server>(attacker, root.fork("c2"));
  c2_->start();

  // Vulnerable telnet daemons on the devices. The vulnerable count is
  // deterministic (first round(fraction*N) devices) so experiments can
  // sweep botnet size exactly; which credential each device kept is drawn
  // from the common-defaults prefix of the dictionary.
  bots_.resize(topo_.devices.size());
  const auto vulnerable_count = static_cast<std::size_t>(
      std::llround(scenario_.vulnerable_fraction * static_cast<double>(topo_.devices.size())));
  for (std::size_t i = 0; i < topo_.devices.size(); ++i) {
    auto& dev = runtime_.get("dev_" + std::to_string(i));
    botnet::TelnetServiceConfig cfg;
    if (i < vulnerable_count) {
      cfg.credential =
          botnet::credential_at(vuln_rng.uniform_u64(8));  // common defaults only
    }
    const std::size_t index = i;
    telnet_services_.push_back(std::make_unique<botnet::TelnetService>(
        dev, root.fork("telnetd-" + std::to_string(i)), cfg,
        [this, index](const std::string&) { install_bot(index); }));
    telnet_services_.back()->start();
  }

  // Loader and scanner on the attacker.
  botnet::LoaderConfig loader_cfg;
  loader_cfg.c2_address = topo_.attacker->address().to_string();
  loader_ = std::make_unique<botnet::Loader>(attacker, root.fork("loader"), loader_cfg);
  loader_->start();

  botnet::ScannerConfig scan_cfg;
  for (const auto* dev : topo_.devices) scan_cfg.targets.push_back(dev->address());
  scanner_ = std::make_unique<botnet::Scanner>(
      attacker, root.fork("scanner"), scan_cfg,
      [this](const botnet::ScanResult& result) { loader_->infect(result); });

  net_.simulator().schedule_at(scenario_.infection_start, [this] { scanner_->start(); });
}

void Testbed::install_bot(std::size_t device_index) {
  if (bots_.at(device_index)) return;  // already infected
  auto& dev = runtime_.get("dev_" + std::to_string(device_index));
  Rng root{scenario_.seed};
  botnet::BotAgentConfig cfg;
  cfg.c2 = {topo_.attacker->address(), 48101};
  bots_[device_index] = std::make_unique<botnet::BotAgent>(
      dev, root.fork("bot-" + std::to_string(device_index)), cfg);
  bots_[device_index]->start();
  util::log(LogLevel::kInfo, "testbed", "device {} infected, bot started", device_index);
}

void Testbed::schedule_attacks() {
  for (const AttackBurst& burst : scenario_.attacks) {
    net_.simulator().schedule_at(burst.start, [this, burst] {
      botnet::C2Command cmd;
      cmd.type = burst.type;
      cmd.target = topo_.tserver->address();
      cmd.target_port = burst.type == botnet::AttackType::kUdpFlood ? 9000 : 80;
      cmd.duration = burst.duration;
      cmd.packets_per_second = burst.packets_per_second_per_bot;
      cmd.spoof_sources = burst.spoof_sources;
      const std::size_t bots = c2_->launch_attack(cmd);
      util::log(LogLevel::kInfo, "testbed", "attack {} -> {} bots",
                botnet::to_string(burst.type), bots);
    });
  }
}

void Testbed::schedule_churn() {
  if (scenario_.churn.events_per_device_per_second <= 0.0) return;
  churn_rng_ = Rng{scenario_.seed}.fork("churn");
  churn_tick();
}

// Self-rescheduling churn process: after an exponential gap, pick a random
// device, take its access link down for down_time, bring it back.
void Testbed::churn_tick() {
  const double total_rate = scenario_.churn.events_per_device_per_second *
                            static_cast<double>(topo_.devices.size());
  const double gap = churn_rng_.exponential(total_rate);
  net_.simulator().schedule(SimTime::from_seconds(gap), [this] {
    const std::size_t victim = churn_rng_.uniform_u64(topo_.devices.size());
    net::Node* dev = topo_.devices[victim];
    if (dev->interface_count() > 0) {
      net::Link& link = dev->link_at(0);
      link.set_up(false);
      net_.simulator().schedule(scenario_.churn.down_time, [&link] { link.set_up(true); });
    }
    churn_tick();
  });
}

void Testbed::record_dataset() {
  if (recording_) return;
  recording_ = true;
  tap_->add_sink([this](const capture::PacketRecord& r) { dataset_.add(r); });
}

ids::RealTimeIds& Testbed::deploy_ids(const ml::Classifier& model, ids::IdsConfig config) {
  if (!deployed_) throw std::logic_error("Testbed::deploy_ids: call deploy() first");
  if (ids_) throw std::logic_error("Testbed::deploy_ids: IDS already deployed");
  auto& ids_container = runtime_.get("ids");
  ids_ = std::make_unique<ids::RealTimeIds>(ids_container, Rng{scenario_.seed}.fork("ids"),
                                            model, config);
  ids_->attach_tap(*tap_);
  ids_->start();
  return *ids_;
}

mitigate::MitigationController& Testbed::enable_mitigation(mitigate::MitigationConfig config) {
  if (!ids_) throw std::logic_error("Testbed::enable_mitigation: call deploy_ids() first");
  if (mitigation_) throw std::logic_error("Testbed::enable_mitigation: already enabled");

  // Enforcement point: the router's ingress, guarding packets addressed to
  // the TServer — the simulated analogue of pushing filters to the victim's
  // edge so the flood dies before the uplink.
  edge_filter_ = std::make_unique<mitigate::EdgeFilter>(net_.simulator(),
                                                        topo_.tserver->address());
  topo_.router->set_ingress_filter(edge_filter_.get());

  auto& ids_container = runtime_.get("ids");
  mitigation_ = std::make_unique<mitigate::MitigationController>(
      ids_container, Rng{scenario_.seed}.fork("mitigate"), *ids_, *edge_filter_,
      topo_.tserver->tcp(), config);
  mitigation_->set_quarantine_hooks(
      [this](std::uint32_t src_addr) {
        for (std::size_t i = 0; i < topo_.devices.size(); ++i) {
          if (topo_.devices[i]->address().bits() != src_addr) continue;
          auto& dev = runtime_.get("dev_" + std::to_string(i));
          if (dev.state() != container::ContainerState::kRunning) return false;
          crash_device(i);
          return true;
        }
        return false;  // spoofed or non-device source: edge rules only
      },
      [this](std::uint32_t src_addr) {
        for (std::size_t i = 0; i < topo_.devices.size(); ++i) {
          if (topo_.devices[i]->address().bits() == src_addr) {
            restart_device(i);
            return;
          }
        }
      });
  mitigation_->start();
  return *mitigation_;
}

void Testbed::run_until(SimTime t) { net_.simulator().run_until(t); }

void Testbed::run() {
  run_until(scenario_.duration);
  if (ids_) ids_->flush();
  runtime_.stop_all();
}

void Testbed::crash_device(std::size_t device_index) {
  auto& dev = runtime_.get("dev_" + std::to_string(device_index));
  dev.kill();  // stop hooks cancel every resident app's timers
  bots_.at(device_index).reset();
  util::log(LogLevel::kInfo, "testbed", "device {} crashed", device_index);
}

void Testbed::restart_device(std::size_t device_index) {
  auto& dev = runtime_.get("dev_" + std::to_string(device_index));
  if (dev.state() == container::ContainerState::kRunning) return;
  dev.start();
  http_clients_.at(device_index)->start();
  video_clients_.at(device_index)->start();
  ftp_clients_.at(device_index)->start();
  if (device_index < telemetry_sensors_.size() && telemetry_sensors_[device_index]) {
    telemetry_sensors_[device_index]->start();
  }
  telnet_services_.at(device_index)->start();
  util::log(LogLevel::kInfo, "testbed", "device {} restarted", device_index);
}

std::size_t Testbed::infected_devices() const {
  std::size_t n = 0;
  for (const auto& bot : bots_) n += bot != nullptr;
  return n;
}

std::uint64_t Testbed::benign_bytes_delivered() const {
  std::uint64_t bytes = 0;
  for (const auto& c : http_clients_) bytes += c->bytes_downloaded();
  for (const auto& c : video_clients_) bytes += c->bytes_received();
  for (const auto& c : ftp_clients_) bytes += c->bytes_downloaded();
  return bytes;
}

std::uint64_t Testbed::benign_failures() const {
  std::uint64_t n = 0;
  for (const auto& c : http_clients_) n += c->failed_sessions();
  for (const auto& c : ftp_clients_) n += c->failed_downloads();
  return n;
}

std::uint64_t Testbed::benign_completions() const {
  std::uint64_t n = 0;
  for (const auto& c : http_clients_) n += c->responses_completed();
  for (const auto& c : ftp_clients_) n += c->downloads_completed();
  return n;
}

void Testbed::sample_throughput_every(SimTime interval) {
  if (!deployed_) throw std::logic_error("Testbed: deploy() before sampling");
  throughput_interval_ = interval;
  net_.simulator().schedule(interval, [this] { throughput_tick(); });
}

obs::Sampler& Testbed::enable_metrics_sampling(SimTime period) {
  if (!deployed_) throw std::logic_error("Testbed: deploy() before sampling");
  obs::SamplerConfig cfg;
  cfg.period = period;
  cfg.until = scenario_.duration;
  sampler_ = std::make_unique<obs::Sampler>(obs::MetricsRegistry::global(), cfg);
  sampler_->add_probe("testbed.sim_pending_events", [this] {
    return static_cast<double>(net_.simulator().pending_events());
  });
  sampler_->add_probe("testbed.uplink_queue_bytes", [this] {
    return topo_.uplink->queue_backlog_bytes(*topo_.router);
  });
  sampler_->add_probe("testbed.tserver_tcp_connections", [this] {
    return static_cast<double>(topo_.tserver->tcp().active_connections());
  });
  sampler_->add_probe("testbed.ids_window_backlog", [this] {
    return ids_ ? static_cast<double>(ids_->window_backlog()) : 0.0;
  });
  sampler_->start(net_.simulator());
  return *sampler_;
}

void Testbed::throughput_tick() {
  const std::uint64_t benign_now = benign_bytes_delivered();
  const std::uint64_t uplink_now = topo_.uplink->stats_from(*topo_.router).tx_bytes;
  ThroughputSample s;
  s.at = net_.simulator().now();
  s.benign_goodput_bps = static_cast<double>(benign_now - last_benign_bytes_) * 8.0 /
                         throughput_interval_.to_seconds();
  s.uplink_rx_bps = static_cast<double>(uplink_now - last_uplink_rx_bytes_) * 8.0 /
                    throughput_interval_.to_seconds();
  s.connected_bots = connected_bots();
  throughput_.push_back(s);
  last_benign_bytes_ = benign_now;
  last_uplink_rx_bytes_ = uplink_now;
  net_.simulator().schedule(throughput_interval_, [this] { throughput_tick(); });
}

}  // namespace ddoshield::core
