#include "core/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "ml/cnn.hpp"
#include "ml/kmeans.hpp"
#include "ml/model_store.hpp"
#include "ml/random_forest.hpp"

namespace ddoshield::core {

void to_design_matrix(const features::FeatureMatrix& fm, ml::DesignMatrix& x,
                      std::vector<int>& y) {
  x = ml::DesignMatrix{features::kFeatureCount};
  x.reserve(fm.rows.size());
  for (const auto& row : fm.rows) x.add_row(row);
  y = fm.labels;
}

GenerationResult run_generation(const Scenario& scenario) {
  Testbed testbed{scenario};
  testbed.deploy();
  testbed.record_dataset();

  GenerationResult result;
  // Track peak bot count with a coarse sampler.
  const util::SimTime step = util::SimTime::seconds(1);
  for (util::SimTime t = step; t <= scenario.duration; t += step) {
    testbed.run_until(t);
    result.peak_connected_bots = std::max(result.peak_connected_bots, testbed.connected_bots());
  }
  testbed.run();  // finalize

  result.infected_devices = testbed.infected_devices();
  result.dataset = std::move(testbed.dataset());
  return result;
}

const ml::Classifier& TrainedModels::get(const std::string& name) const {
  const auto it = models.find(name);
  if (it == models.end()) throw std::invalid_argument("TrainedModels: no model " + name);
  return *it->second;
}

const ModelReport& TrainedModels::report_of(const std::string& name) const {
  for (const auto& r : reports) {
    if (r.model == name) return r;
  }
  throw std::invalid_argument("TrainedModels: no report for " + name);
}

TrainedModels train_all_models(const capture::Dataset& dataset, TrainingOptions options) {
  if (dataset.empty()) throw std::invalid_argument("train_all_models: empty dataset");

  features::AggregatorConfig agg_cfg;
  agg_cfg.window = options.window;
  const features::FeatureMatrix fm = features::extract_features(dataset, agg_cfg);

  ml::DesignMatrix x;
  std::vector<int> y;
  to_design_matrix(fm, x, y);

  util::Rng split_rng{options.split_seed};
  const ml::TrainTestSplit split = ml::train_test_split(x, y, options.test_fraction, split_rng);

  TrainedModels out;
  out.models.emplace("rf", std::make_unique<ml::RandomForest>());
  out.models.emplace("kmeans", std::make_unique<ml::KMeansDetector>());
  out.models.emplace("cnn", std::make_unique<ml::Cnn1D>());

  for (auto& [name, model] : out.models) {
    ModelReport report;
    report.model = name;

    const auto t0 = std::chrono::steady_clock::now();
    model->fit(split.train_x, split.train_y);
    const auto t1 = std::chrono::steady_clock::now();
    report.fit_seconds = std::chrono::duration<double>(t1 - t0).count();

    const std::vector<int> train_pred = model->predict_batch(split.train_x);
    report.train.add_all(split.train_y, train_pred);
    const std::vector<int> test_pred = model->predict_batch(split.test_x);
    report.test.add_all(split.test_y, test_pred);

    report.model_file_bytes = ml::serialize_model(*model).size();
    out.reports.push_back(std::move(report));
  }
  return out;
}

void SkewServedClassifier::fit(const ml::DesignMatrix&, const std::vector<int>&) {
  throw std::logic_error("SkewServedClassifier: serving adapter only; fit the inner model");
}

void SkewServedClassifier::load(util::ByteReader&) {
  throw std::logic_error("SkewServedClassifier: serving adapter only; load the inner model");
}

int SkewServedClassifier::predict(std::span<const double> row) const {
  if (row.size() != features::kFeatureCount) {
    throw std::invalid_argument("SkewServedClassifier: wrong feature width");
  }
  features::FeatureRow offline{};
  std::copy(row.begin(), row.end(), offline.begin());
  const features::FeatureRow streaming = features::to_streaming_order(offline);
  return inner_.predict(streaming);
}

DetectionResult run_detection(const Scenario& scenario, const ml::Classifier& model,
                              ids::IdsConfig ids_config) {
  Testbed testbed{scenario};
  testbed.deploy();
  ids::RealTimeIds& ids = testbed.deploy_ids(model, ids_config);
  // Periodic gauge snapshots (queue depths, connections, IDS backlog); one
  // tick per detection window keeps the cost invisible next to the window
  // computation itself.
  testbed.enable_metrics_sampling(ids_config.window);
  testbed.run();

  DetectionResult result;
  result.model = model.name();
  result.summary = ids.summarize();
  result.windows = ids.reports();
  result.model_size_kb = static_cast<double>(ml::serialize_model(model).size()) / 1024.0;
  return result;
}

}  // namespace ddoshield::core
