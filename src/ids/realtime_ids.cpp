#include "ids/realtime_ids.hpp"

#include <algorithm>
#include <map>

#include "features/schema.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ddoshield::ids {

using util::SimTime;

RealTimeIds::RealTimeIds(container::Container& owner, util::Rng rng,
                         const ml::Classifier& model, IdsConfig config)
    : App{owner, "realtime-ids", rng},
      model_{model},
      config_{config},
      meter_{model.name(), config.meter} {
  if (!model_.trained()) {
    throw std::invalid_argument("RealTimeIds: model must be trained before deployment");
  }
  if (config_.window <= SimTime{}) {
    throw std::invalid_argument("RealTimeIds: window must be positive");
  }
  if (config_.offload_inference) {
    engine_ = std::make_unique<InferenceEngine>(
        model_, InferEngineConfig{config_.infer_ring_capacity});
  }
  auto& reg = obs::MetricsRegistry::global();
  m_feature_ns_ = &reg.histogram("ids." + model_.name() + ".feature_ns");
  m_inference_ns_ = &reg.histogram("ids." + model_.name() + ".inference_ns");
  m_verdict_malicious_ = &reg.counter("ids.verdict.malicious");
  m_verdict_benign_ = &reg.counter("ids.verdict.benign");
  m_windows_ = &reg.counter("ids.windows_closed");
  m_backlog_ = &reg.gauge("ids.window_backlog");

  flight_ = &obs::FlightRecorder::global();
  auto& lat = obs::LatencyTracker::global();
  lat_detect_benign_ = &lat.series("flight." + model_.name() + ".detect_lag_ns.benign");
  lat_detect_attack_ = &lat.series("flight." + model_.name() + ".detect_lag_ns.attack");
  lat_infer_batch_ = &lat.series("flight.ids.infer_batch_ns");
  lat_infer_wait_ = &lat.series("flight.ids.infer_wait_ns");
  lat_ring_wait_ = &lat.series("flight.ids.ring_wait_ns");
}

void RealTimeIds::attach_tap(capture::PacketTap& tap) {
  tap.add_sink([this](const capture::PacketRecord& r) {
    if (running()) on_record(r);
  });
}

void RealTimeIds::on_start() {
  current_window_ = static_cast<std::uint64_t>(sim().now().ns() / config_.window.ns());
  schedule_tick();
}

void RealTimeIds::on_stop() { flush(); }

void RealTimeIds::schedule_tick() {
  // Fire exactly at the next window boundary.
  const std::int64_t next_edge =
      (static_cast<std::int64_t>(current_window_) + 1) * config_.window.ns();
  schedule(SimTime::nanos(next_edge) - sim().now(), [this] {
    close_window();
    ++current_window_;
    schedule_tick();
  });
}

void RealTimeIds::on_record(const capture::PacketRecord& record) {
  buffer_.push_back(record);
  if (flight_->sampled(record.uid)) {
    // Sim clock at hand-over, not record.timestamp: the tap may add a
    // capture clock offset that the detection-lag series must not absorb.
    window_samples_.push_back(
        WindowSample{record.uid, sim().now().ns(), record.is_malicious()});
  }
  buffer_peak_bytes_ = std::max<std::uint64_t>(
      buffer_peak_bytes_, buffer_.capacity() * sizeof(capture::PacketRecord));
  m_backlog_->set(static_cast<double>(buffer_.size()));
}

void RealTimeIds::close_window() {
  if (buffer_.empty()) {
    if (engine_) drain_completed(/*block=*/false);
    return;
  }

  PendingWindow pending;
  WindowReport& report = pending.report;
  report.window_index = current_window_;
  report.window_start =
      SimTime::nanos(static_cast<std::int64_t>(current_window_) * config_.window.ns());
  report.packets = buffer_.size();

  // --- preprocessing: statistical features over the window (measured) -----
  features::WindowStats stats;
  ml::DesignMatrix x{features::kFeatureCount};
  {
    obs::ScopedTimer timer{*m_feature_ns_, report.cpu_feature_ns};
    stats = features::compute_window_stats(buffer_, config_.window);
    x.reserve(buffer_.size());
    for (const auto& r : buffer_) x.add_row(features::make_feature_row(r, stats));
  }
  pending.truths.reserve(buffer_.size());
  for (const auto& r : buffer_) pending.truths.push_back(r.is_malicious() ? 1 : 0);
  if (verdict_sink_) {
    pending.row_sources.reserve(buffer_.size());
    for (const auto& r : buffer_) pending.row_sources.push_back(r.src_addr);
  }
  pending.samples = std::move(window_samples_);
  window_samples_.clear();

  const std::size_t rows = buffer_.size();
  buffer_.clear();
  m_backlog_->set(0.0);

  pending.close_sim_ns = sim().now().ns();
  pending.close_wall_ns = flight_->wall_now_ns();
  if (flight_->enabled()) {
    flight_->record(obs::FlightStage::kWindowClose, report.window_index,
                    pending.close_sim_ns, pending.close_wall_ns, report.packets);
  }

  // --- detection: batched inference over the window's matrix --------------
  if (engine_) {
    pending.submit_wall_ns = flight_->wall_now_ns();
    if (flight_->enabled()) {
      flight_->record(obs::FlightStage::kInferSubmit, report.window_index,
                      sim().now().ns(), pending.submit_wall_ns, rows);
    }
    pending_.push_back(std::move(pending));
    engine_->submit(std::move(x));
    drain_completed(/*block=*/false);
    return;
  }
  pending.submit_wall_ns = flight_->wall_now_ns();
  if (flight_->enabled()) {
    flight_->record(obs::FlightStage::kInferSubmit, report.window_index,
                    sim().now().ns(), pending.submit_wall_ns, rows);
  }
  std::uint64_t inference_ns = 0;
  ml::Verdicts verdicts;
  {
    obs::ScopedTimer timer{inference_ns};
    model_.score_batch(x, verdicts);
  }
  finalize_window(std::move(pending), verdicts, inference_ns, /*queue_wait_ns=*/0);
}

void RealTimeIds::finalize_window(PendingWindow&& pending, const ml::Verdicts& verdicts,
                                  std::uint64_t inference_ns, std::uint64_t queue_wait_ns) {
  WindowReport report = pending.report;
  report.cpu_inference_ns = inference_ns;
  m_inference_ns_->observe(inference_ns);

  ml::ConfusionMatrix window_cm;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    window_cm.add(pending.truths[i], verdicts[i]);
    confusion_.add(pending.truths[i], verdicts[i]);
  }

  report.truth_malicious = window_cm.tp() + window_cm.fn();
  report.predicted_malicious = window_cm.tp() + window_cm.fp();
  report.accuracy = window_cm.accuracy();
  report.single_class =
      report.truth_malicious == 0 || report.truth_malicious == report.packets;
  reports_.push_back(report);

  m_windows_->inc();
  m_verdict_malicious_->inc(report.predicted_malicious);
  m_verdict_benign_->inc(report.packets - report.predicted_malicious);
  meter_.on_window_closed(report.window_index, report.cpu_feature_ns, report.cpu_inference_ns,
                          static_cast<std::uint64_t>(config_.window.ns()));

  if (flight_->enabled()) {
    const std::int64_t verdict_wall = flight_->wall_now_ns();
    flight_->record(obs::FlightStage::kInferComplete, report.window_index,
                    sim().now().ns(), verdict_wall, verdicts.size());
    flight_->record(obs::FlightStage::kVerdict, report.window_index, sim().now().ns(),
                    verdict_wall, report.predicted_malicious);

    // Stage attribution. The batch kernel's own time and any wait around
    // it (ring sit + result sit in offload mode; ~0 inline) come from the
    // wall clock; the end-to-end detection lag of each sampled packet
    // composes a sim-domain part (tap to window close — queueing plus
    // buffering, deterministic) with a wall-domain part (window close to
    // verdict — the real compute cost the simulation never models).
    lat_infer_batch_->observe(inference_ns);
    if (queue_wait_ns > 0) lat_ring_wait_->observe(queue_wait_ns);
    const std::int64_t around =
        verdict_wall > pending.submit_wall_ns ? verdict_wall - pending.submit_wall_ns : 0;
    const std::uint64_t wait =
        static_cast<std::uint64_t>(around) > inference_ns
            ? static_cast<std::uint64_t>(around) - inference_ns
            : 0;
    lat_infer_wait_->observe(wait);
    const std::int64_t wall_part =
        verdict_wall > pending.close_wall_ns ? verdict_wall - pending.close_wall_ns : 0;
    for (const WindowSample& s : pending.samples) {
      const std::int64_t sim_part =
          pending.close_sim_ns > s.tap_sim_ns ? pending.close_sim_ns - s.tap_sim_ns : 0;
      const std::uint64_t lag = static_cast<std::uint64_t>(sim_part + wall_part);
      (s.malicious ? lat_detect_attack_ : lat_detect_benign_)->observe(lag);
    }
  }

  auto& trace = obs::TraceRecorder::global();
  if (trace.enabled()) {
    trace.span("ids.window." + model_.name(), "ids", report.window_start, config_.window);
  }

  if (verdict_sink_) {
    WindowVerdictEvent event;
    event.window_index = report.window_index;
    event.window_start = report.window_start;
    event.packets = report.packets;
    event.predicted_malicious = report.predicted_malicious;
    // Ordered aggregation so the event is a pure function of the window's
    // rows, independent of arrival interleavings.
    std::map<std::uint32_t, SourceVerdict> by_source;
    for (std::size_t i = 0; i < verdicts.size() && i < pending.row_sources.size(); ++i) {
      SourceVerdict& sv = by_source[pending.row_sources[i]];
      sv.src_addr = pending.row_sources[i];
      ++sv.packets;
      sv.flagged += verdicts[i] != 0 ? 1u : 0u;
    }
    event.sources.reserve(by_source.size());
    for (auto& [addr, sv] : by_source) event.sources.push_back(sv);
    verdict_sink_(event);
  }
}

void RealTimeIds::finalize_windows_through(std::uint64_t through) {
  if (!engine_) return;  // inline mode: verdicts were published at the tick
  while (!pending_.empty() && pending_.front().report.window_index <= through) {
    // Blocking collect: wall-clock wait, zero sim-time cost — the verdict
    // *content* and the sim time it becomes visible stay deterministic.
    InferResult result = engine_->collect();
    PendingWindow pending = std::move(pending_.front());
    pending_.pop_front();
    finalize_window(std::move(pending), result.verdicts, result.inference_ns,
                    result.queue_wait_ns);
  }
  engine_->publish_metrics();
}

void RealTimeIds::drain_completed(bool block) {
  if (!engine_) return;
  InferResult result;
  while (engine_->outstanding() > 0) {
    if (block) {
      result = engine_->collect();
    } else if (!engine_->try_collect(result)) {
      break;
    }
    // Single FIFO worker: results arrive in submission order, so the
    // oldest pending window is always the one this result scores.
    PendingWindow pending = std::move(pending_.front());
    pending_.pop_front();
    finalize_window(std::move(pending), result.verdicts, result.inference_ns,
                    result.queue_wait_ns);
  }
  engine_->publish_metrics();
}

void RealTimeIds::flush() {
  if (!buffer_.empty()) close_window();
  if (engine_) drain_completed(/*block=*/true);
}

IdsSummary RealTimeIds::summarize() const {
  IdsSummary s;
  s.windows = reports_.size();
  s.confusion = confusion_;
  if (reports_.empty()) return s;

  double cpu_fraction_sum = 0.0;
  double accuracy_sum = 0.0;
  for (const auto& r : reports_) {
    accuracy_sum += r.accuracy;
    s.min_accuracy = std::min(s.min_accuracy, r.accuracy);
    s.packets += r.packets;
    cpu_fraction_sum += meter_.window_cpu_percent(
        r.cpu_feature_ns, r.cpu_inference_ns, static_cast<std::uint64_t>(config_.window.ns()));
  }
  s.average_accuracy = accuracy_sum / static_cast<double>(reports_.size());
  s.overall_accuracy = confusion_.accuracy();
  s.cpu_percent = cpu_fraction_sum / static_cast<double>(reports_.size());

  const double scratch =
      static_cast<double>(model_.inference_scratch_bytes()) *
      static_cast<double>(config_.meter.inference_chunk);
  const double row_buffer =
      static_cast<double>(config_.meter.inference_chunk) *
      static_cast<double>(sizeof(features::FeatureRow));
  s.memory_kb = (static_cast<double>(buffer_peak_bytes_) + scratch + row_buffer) / 1024.0;
  return s;
}

}  // namespace ddoshield::ids
