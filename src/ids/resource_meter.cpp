#include "ids/resource_meter.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/resource.h>
#include <unistd.h>
#define DDOSHIELD_HAVE_RUSAGE 1
#endif

namespace ddoshield::ids {

ResourceMeter::ResourceMeter(const std::string& model_name, ResourceMeterConfig config)
    : config_{config} {
#if defined(__linux__)
  status_fd_ = ::open("/proc/self/status", O_RDONLY | O_CLOEXEC);
#endif
  auto& reg = obs::MetricsRegistry::global();
  m_cpu_percent_ = &reg.gauge("ids." + model_name + ".cpu_percent");
  m_rss_kb_ = &reg.gauge("ids." + model_name + ".rss_kb");
  m_rss_peak_kb_ = &reg.gauge("ids." + model_name + ".rss_peak_kb");
}

ResourceMeter::~ResourceMeter() {
#if defined(__linux__)
  if (status_fd_ >= 0) ::close(status_fd_);
#endif
}

double ResourceMeter::window_cpu_percent(std::uint64_t feature_ns, std::uint64_t inference_ns,
                                         std::uint64_t window_ns) const {
  if (window_ns == 0) return 0.0;
  const double work_ns = config_.per_window_overhead_ms * 1e6 +
                         static_cast<double>(feature_ns) * config_.feature_slowdown +
                         static_cast<double>(inference_ns) * config_.inference_slowdown;
  return 100.0 * std::min(1.0, work_ns / static_cast<double>(window_ns));
}

std::uint64_t ResourceMeter::sample_rss_kb(std::uint64_t window_index) {
  if (window_index == last_sampled_window_) return cached_rss_kb_;
  cached_rss_kb_ = read_rss_kb();
  last_sampled_window_ = window_index;
  ++samples_;
  return cached_rss_kb_;
}

void ResourceMeter::on_window_closed(std::uint64_t window_index, std::uint64_t feature_ns,
                                     std::uint64_t inference_ns, std::uint64_t window_ns) {
  m_cpu_percent_->set(window_cpu_percent(feature_ns, inference_ns, window_ns));
  m_rss_kb_->set(static_cast<double>(sample_rss_kb(window_index)));
  m_rss_peak_kb_->set(static_cast<double>(cached_peak_kb_));
}

std::uint64_t ResourceMeter::read_rss_kb() {
#if defined(__linux__)
  if (status_fd_ >= 0) {
    // /proc/self/status regenerates on every read; pread from 0 on the
    // cached descriptor avoids the open/close pair per sample. VmHWM (the
    // kernel's RSS high-water mark) sits in the same buffer, so the peak
    // comes for free with the current-RSS sample.
    char buf[4096];
    const ssize_t n = ::pread(status_fd_, buf, sizeof(buf) - 1, 0);
    if (n > 0) {
      buf[n] = '\0';
      if (const char* hwm = std::strstr(buf, "VmHWM:")) {
        cached_peak_kb_ = std::strtoull(hwm + 6, nullptr, 10);  // field is in kB
      }
      if (const char* line = std::strstr(buf, "VmRSS:")) {
        return std::strtoull(line + 6, nullptr, 10);  // field is in kB
      }
    }
  }
#endif
#if defined(DDOSHIELD_HAVE_RUSAGE)
  struct rusage ru{};
  if (::getrusage(RUSAGE_SELF, &ru) == 0) {
#if defined(__APPLE__)
    const auto peak = static_cast<std::uint64_t>(ru.ru_maxrss) / 1024;  // bytes on macOS
#else
    const auto peak = static_cast<std::uint64_t>(ru.ru_maxrss);  // KiB elsewhere
#endif
    if (peak > cached_peak_kb_) cached_peak_kb_ = peak;
    // ru_maxrss is itself a peak, so without procfs the current-RSS probe
    // degrades to the high-water mark — still monotone and honest.
    return peak;
  }
#endif
  return 0;
}

}  // namespace ddoshield::ids
