// The Real-Time IDS Unit (Fig. 2): monitor → preprocess → detect.
//
// Runs as an app inside the IDS container. A PacketTap on the victim
// feeds it records; a periodic simulator timer closes each time window
// (1 s by default, user-configurable per §III-B); at window close the IDS
// computes the statistical features, stamps them onto each packet's basic
// features, runs the loaded model over every row, and records a
// per-window report with the window's accuracy — the quantity Table I
// averages and §IV-D's per-second analysis plots.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "apps/app.hpp"
#include "capture/packet_record.hpp"
#include "capture/tap.hpp"
#include "features/window_stats.hpp"
#include "ids/infer_engine.hpp"
#include "ids/resource_meter.hpp"
#include "ml/classifier.hpp"
#include "ml/metrics.hpp"

namespace ddoshield::obs {
class Counter;
class Gauge;
class Histogram;
class FlightRecorder;
class LogLinearHistogram;
}

namespace ddoshield::ids {

/// Per-source slice of one window's verdicts (sorted by src_addr). The
/// mitigation controller turns these into enforcement decisions.
struct SourceVerdict {
  std::uint32_t src_addr = 0;
  std::uint32_t packets = 0;  // rows from this source in the window
  std::uint32_t flagged = 0;  // rows the model called malicious
};

/// What the verdict bus publishes for every scored window. Carries only
/// deterministic fields (no wall-clock measurements) so subscribers can
/// write byte-identical action logs across same-seed runs.
struct WindowVerdictEvent {
  std::uint64_t window_index = 0;
  util::SimTime window_start;
  std::uint64_t packets = 0;
  std::uint64_t predicted_malicious = 0;
  std::vector<SourceVerdict> sources;
};

/// One closed detection window.
struct WindowReport {
  std::uint64_t window_index = 0;
  util::SimTime window_start;
  std::uint64_t packets = 0;
  std::uint64_t truth_malicious = 0;
  std::uint64_t predicted_malicious = 0;
  double accuracy = 0.0;
  bool single_class = false;  // only one truth class present (§IV-D caveat)
  std::uint64_t cpu_feature_ns = 0;   // measured statistical-feature cost
  std::uint64_t cpu_inference_ns = 0; // measured model cost
};

struct IdsSummary {
  double average_accuracy = 0.0;   // mean of per-window accuracies (Table I)
  double min_accuracy = 1.0;       // the boundary-dip metric (§IV-D)
  double overall_accuracy = 0.0;   // packet-weighted, for reference
  std::uint64_t windows = 0;
  std::uint64_t packets = 0;
  double cpu_percent = 0.0;        // Table II CPU (%)
  double memory_kb = 0.0;          // Table II Memory (Kb)
  ml::ConfusionMatrix confusion;   // accumulated over all windows
};

struct IdsConfig {
  util::SimTime window = util::SimTime::seconds(1);
  ResourceMeterConfig meter;
  /// Scores each closed window on the dedicated InferenceEngine thread
  /// instead of inline. The verdict sequence is identical either way (see
  /// DESIGN.md §10); reports for in-flight windows materialise when their
  /// results drain, at the latest at flush().
  bool offload_inference = false;
  /// Windows in flight before submit() back-pressures (offload mode).
  std::size_t infer_ring_capacity = 8;
};

class RealTimeIds : public apps::App {
 public:
  /// The model must already be trained (loaded from its model file).
  RealTimeIds(container::Container& owner, util::Rng rng, const ml::Classifier& model,
              IdsConfig config = {});

  /// Connects the IDS to a capture tap (typically on the TServer).
  void attach_tap(capture::PacketTap& tap);

  const std::vector<WindowReport>& reports() const { return reports_; }
  IdsSummary summarize() const;

  /// Packets buffered in the currently open window (the obs sampler's
  /// "ids.window_backlog" probe).
  std::size_t window_backlog() const { return buffer_.size(); }

  /// The offload engine, or null in inline mode (tests reconcile its
  /// backpressure stats against the flight recorder's wait series).
  const InferenceEngine* engine() const { return engine_.get(); }

  util::SimTime window_period() const { return config_.window; }

  /// Subscribes the verdict bus: fires once per scored window, after the
  /// report commits. In inline mode that is at the window-close tick; in
  /// offload mode whenever the result drains (nondeterministic sim time —
  /// subscribers must only buffer, and order by window_index).
  void set_verdict_sink(std::function<void(const WindowVerdictEvent&)> sink) {
    verdict_sink_ = std::move(sink);
  }

  /// Blocks (wall-clock) until every offload window with index <= through
  /// has drained and published its verdicts; no-op in inline mode. Called
  /// by the mitigation controller at its tick so the set of buffered
  /// verdicts at a given sim time is deterministic either way.
  void finalize_windows_through(std::uint64_t through);

  /// Closes the current partial window (end of run).
  void flush();

 protected:
  void on_start() override;
  void on_stop() override;

 private:
  /// A uid-sampled packet awaiting its window's verdict; the flight
  /// recorder's end-to-end detection lag is measured over these.
  struct WindowSample {
    std::uint64_t uid = 0;
    std::int64_t tap_sim_ns = 0;  // sim clock when the tap handed it over
    bool malicious = false;       // ground truth, selects the lag series
  };

  /// One window whose features are computed but whose verdicts are still
  /// on the scoring thread (offload mode).
  struct PendingWindow {
    WindowReport report;      // everything but the verdict-derived fields
    std::vector<int> truths;  // ground-truth label per row
    std::vector<std::uint32_t> row_sources;  // src addr per row (verdict bus only)
    std::vector<WindowSample> samples;
    std::int64_t close_sim_ns = 0;   // sim clock at window close
    std::int64_t close_wall_ns = 0;  // wall clock at window close
    std::int64_t submit_wall_ns = 0; // wall clock at inference submit
  };

  void on_record(const capture::PacketRecord& record);
  void close_window();
  void schedule_tick();
  /// Fills in the verdict-derived report fields and commits the report.
  void finalize_window(PendingWindow&& pending, const ml::Verdicts& verdicts,
                       std::uint64_t inference_ns, std::uint64_t queue_wait_ns);
  /// Collects completed offload results in submission order; with block
  /// set, waits until none are outstanding.
  void drain_completed(bool block);

  const ml::Classifier& model_;
  IdsConfig config_;
  ResourceMeter meter_;
  std::unique_ptr<InferenceEngine> engine_;
  std::deque<PendingWindow> pending_;
  std::vector<capture::PacketRecord> buffer_;
  std::vector<WindowSample> window_samples_;  // sampled uids in the open window
  std::uint64_t buffer_peak_bytes_ = 0;
  std::uint64_t current_window_ = 0;
  std::vector<WindowReport> reports_;
  ml::ConfusionMatrix confusion_;
  std::function<void(const WindowVerdictEvent&)> verdict_sink_;

  // Registry instruments; the latency histograms are per-model
  // ("ids.<model>.feature_ns" / "ids.<model>.inference_ns"), resolved
  // once at construction.
  obs::Histogram* m_feature_ns_;
  obs::Histogram* m_inference_ns_;
  obs::Counter* m_verdict_malicious_;
  obs::Counter* m_verdict_benign_;
  obs::Counter* m_windows_;
  obs::Gauge* m_backlog_;

  // Flight-recorder wiring: window lifecycle events plus the latency
  // series split per model and per traffic class.
  obs::FlightRecorder* flight_;
  obs::LogLinearHistogram* lat_detect_benign_;  // flight.<model>.detect_lag_ns.benign
  obs::LogLinearHistogram* lat_detect_attack_;  // flight.<model>.detect_lag_ns.attack
  obs::LogLinearHistogram* lat_infer_batch_;    // flight.ids.infer_batch_ns
  obs::LogLinearHistogram* lat_infer_wait_;     // flight.ids.infer_wait_ns
  obs::LogLinearHistogram* lat_ring_wait_;      // flight.ids.ring_wait_ns
};

}  // namespace ddoshield::ids
