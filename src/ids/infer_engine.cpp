#include "ids/infer_engine.hpp"

#include <chrono>
#include <deque>
#include <stdexcept>

namespace ddoshield::ids {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

}  // namespace

InferenceEngine::InferenceEngine(const ml::Classifier& model, InferEngineConfig config)
    : model_{model},
      config_{config},
      jobs_{config.ring_capacity},
      results_{config.ring_capacity},
      m_backpressure_{&obs::MetricsRegistry::global().counter("ids.infer.backpressure_waits")},
      m_batches_{&obs::MetricsRegistry::global().counter("ids.infer.batches")},
      m_ring_depth_{&obs::MetricsRegistry::global().gauge("ids.infer.ring_depth")},
      m_batch_rows_{&obs::MetricsRegistry::global().histogram("ids.infer.batch_rows")},
      worker_{[this] { worker_loop(); }} {
  if (!model.trained()) {
    stop_.store(true, std::memory_order_release);
    worker_.join();
    throw std::logic_error("InferenceEngine: model must be trained before offloading");
  }
}

InferenceEngine::~InferenceEngine() {
  stop_.store(true, std::memory_order_release);
  worker_.join();
}

std::uint64_t InferenceEngine::submit(ml::DesignMatrix x) {
  const std::size_t rows = x.rows();
  Job job{submitted_, now_ns(), std::move(x)};
  if (!jobs_.try_push(std::move(job))) {
    // Ring full: the scoring thread is behind. Never drop a window —
    // count the stall once and yield until a slot frees. (A failed
    // try_push leaves the job untouched, so retrying the move is safe.)
    ++backpressure_waits_;
    do {
      std::this_thread::yield();
    } while (!jobs_.try_push(std::move(job)));
  }
  ++submitted_;
  m_batches_->inc();
  m_batch_rows_->observe(rows);
  const std::size_t depth = outstanding();
  if (depth > ring_high_water_) ring_high_water_ = depth;
  m_ring_depth_->set(static_cast<double>(depth));
  return submitted_ - 1;
}

bool InferenceEngine::try_collect(InferResult& out) {
  if (!results_.try_pop(out)) return false;
  if (out.seq != collected_) {
    throw std::logic_error("InferenceEngine: out-of-order result (FIFO invariant broken)");
  }
  ++collected_;
  m_ring_depth_->set(static_cast<double>(outstanding()));
  return true;
}

InferResult InferenceEngine::collect() {
  if (outstanding() == 0) {
    throw std::logic_error("InferenceEngine::collect: no outstanding jobs");
  }
  InferResult out;
  while (!try_collect(out)) std::this_thread::yield();
  return out;
}

InferenceEngine::Stats InferenceEngine::stats() const {
  Stats s;
  s.submitted = submitted_;
  s.completed = completed_.value();
  s.backpressure_waits = backpressure_waits_;
  s.ring_high_water = ring_high_water_;
  s.rows_scored = rows_scored_.value();
  return s;
}

void InferenceEngine::publish_metrics() const {
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("ids.infer.ring_high_water").set(static_cast<double>(ring_high_water_));
  reg.gauge("ids.infer.worker_batches").set(static_cast<double>(completed_.value()));
  reg.gauge("ids.infer.worker_rows").set(static_cast<double>(rows_scored_.value()));
  if (backpressure_waits_ > m_backpressure_->value()) {
    m_backpressure_->inc(backpressure_waits_ - m_backpressure_->value());
  }
}

void InferenceEngine::worker_loop() {
  Job job;
  ml::Verdicts verdicts;
  // Finished results that found the results ring full, in order. Spilling
  // here instead of blocking keeps the worker draining jobs_ no matter how
  // long the caller defers collecting, so submit() can only ever wait on
  // the jobs ring — which this loop always empties. (Blocking on a full
  // results ring would wedge the pair: worker stuck pushing, caller stuck
  // in submit(), nobody collecting.)
  std::deque<InferResult> overflow;
  auto flush_overflow = [this, &overflow] {
    while (!overflow.empty() && results_.try_push(std::move(overflow.front()))) {
      overflow.pop_front();
    }
  };
  while (true) {
    flush_overflow();
    if (!jobs_.try_pop(job)) {
      if (stop_.load(std::memory_order_acquire)) {
        // Drain anything raced in between the stop flag and the last push.
        if (!jobs_.try_pop(job)) {
          // Spilled results the caller never collected die with the
          // engine; waiting for a collect that will never come would
          // hang the destructor's join.
          flush_overflow();
          return;
        }
      } else {
        std::this_thread::yield();
        continue;
      }
    }
    const std::uint64_t t0 = now_ns();
    model_.score_batch(job.x, verdicts);
    const std::uint64_t t1 = now_ns();

    InferResult res;
    res.seq = job.seq;
    res.verdicts = verdicts;
    res.inference_ns = t1 - t0;
    res.queue_wait_ns = t0 > job.submit_wall_ns ? t0 - job.submit_wall_ns : 0;
    rows_scored_.inc(res.verdicts.size());
    completed_.inc();
    if (!overflow.empty() || !results_.try_push(std::move(res))) {
      overflow.push_back(std::move(res));
    }
  }
}

}  // namespace ddoshield::ids
