// Resource metering for the IDS container (Table II).
//
// What the paper measures on its laptop-hosted Docker container, we
// measure on the genuinely-executed detection computation:
//   * CPU  — real nanoseconds of feature extraction + inference per
//     window (std::chrono::steady_clock around the actual work), expressed
//     as a percentage of the window's real-time budget after scaling by a
//     device-slowdown factor. The factor models how much slower the
//     paper's Python/sklearn/TF pipeline on a 2.7 GHz i5 inside
//     VM+Docker is than optimised C++ on a modern host; it is a single
//     documented constant, identical across models, so the *comparison*
//     between models is measurement, not modelling.
//   * Memory — exact bytes of the detection working set: the window's
//     packet/feature buffers plus the model's inference scratch (times
//     the inference batch chunk, mirroring how TF batches a window).
//   * Model size — the serialized model file's size (measured elsewhere,
//     via ml::serialize_model).
//
// Timing itself is done with obs::ScopedTimer (src/obs/metrics.hpp), which
// charges the measured wall nanoseconds both to the per-window report sinks
// consumed below and to the registry's latency histograms.
#pragma once

#include <cstdint>
#include <string>

namespace ddoshield::obs {
class Gauge;
}

namespace ddoshield::ids {

struct ResourceMeterConfig {
  /// Multipliers from our measured C++ nanoseconds to the reference
  /// deployment (the paper's Python feature loop + native sklearn/TF
  /// inference on a 2.7 GHz i5 inside VM+Docker). The interpreted
  /// per-packet feature loop carries orders of magnitude more overhead
  /// than the C-backed inference, which is why the paper reports CPU as
  /// dominated by statistical-feature computation and nearly equal across
  /// models. Both constants are documented in DESIGN.md §2 and identical
  /// for every model, so cross-model comparisons remain pure measurement.
  double feature_slowdown = 1100.0;
  double inference_slowdown = 0.25;
  /// Fixed per-window pipeline overhead in the reference deployment:
  /// (re)building the window dataframe, dispatching into the model
  /// runtime, logging the per-window score. Amortised over longer
  /// windows — the effect behind the paper's §IV-E claim that extending
  /// the statistical-feature period reduces CPU.
  double per_window_overhead_ms = 150.0;
  /// Rows per inference batch chunk (TF-style window batching).
  std::size_t inference_chunk = 32;
};

/// Per-model resource sampler. Owns the slowdown-factor CPU formula (one
/// place, shared by the per-window gauge and IdsSummary) and the process
/// RSS probe.
///
/// The RSS probe reads VmRSS from /proc/self/status through a file
/// descriptor opened once at construction (pread from offset 0 — the
/// procfs file regenerates per read, so no reopen is needed) and is
/// rate-limited to one read per detection window: re-sampling within the
/// same window returns the cached value. Both matter on the hot path —
/// the old pattern of open()+parse on every probe costs two syscalls plus
/// a path walk per packet window. Where procfs is unavailable the probe
/// falls back to getrusage(RUSAGE_SELF) peak RSS.
///
/// Each window close publishes "ids.<model>.cpu_percent", "ids.<model>.rss_kb",
/// and "ids.<model>.rss_peak_kb" gauges (peak = VmHWM, the kernel's RSS
/// high-water mark, with a getrusage ru_maxrss fallback), so per-model
/// Table II figures land in the metrics snapshot alongside the latency
/// histograms.
class ResourceMeter {
 public:
  ResourceMeter(const std::string& model_name, ResourceMeterConfig config);
  ~ResourceMeter();

  ResourceMeter(const ResourceMeter&) = delete;
  ResourceMeter& operator=(const ResourceMeter&) = delete;

  /// Modelled reference-deployment CPU for one window, as a percentage of
  /// the window's real-time budget (clamped to 100).
  double window_cpu_percent(std::uint64_t feature_ns, std::uint64_t inference_ns,
                            std::uint64_t window_ns) const;

  /// Process RSS in KiB, sampled at most once per window index; repeat
  /// calls within a window return the cached value.
  std::uint64_t sample_rss_kb(std::uint64_t window_index);

  /// Peak (high-water) RSS in KiB, refreshed by the same once-per-window
  /// read that sample_rss_kb performs. VmHWM on Linux procfs; elsewhere
  /// getrusage(RUSAGE_SELF).ru_maxrss.
  std::uint64_t peak_rss_kb() const { return cached_peak_kb_; }

  /// Updates the per-model gauges for one closed window.
  void on_window_closed(std::uint64_t window_index, std::uint64_t feature_ns,
                        std::uint64_t inference_ns, std::uint64_t window_ns);

  const ResourceMeterConfig& config() const { return config_; }
  /// Number of actual /proc (or getrusage) reads — observable rate limit.
  std::uint64_t samples_taken() const { return samples_; }

 private:
  /// One probe fills both current and peak RSS from a single procfs read
  /// (or one getrusage call on the fallback path).
  std::uint64_t read_rss_kb();

  ResourceMeterConfig config_;
  int status_fd_ = -1;
  std::uint64_t last_sampled_window_ = ~0ull;
  std::uint64_t cached_rss_kb_ = 0;
  std::uint64_t cached_peak_kb_ = 0;
  std::uint64_t samples_ = 0;
  obs::Gauge* m_cpu_percent_;
  obs::Gauge* m_rss_kb_;
  obs::Gauge* m_rss_peak_kb_;
};

}  // namespace ddoshield::ids
