// Resource metering for the IDS container (Table II).
//
// What the paper measures on its laptop-hosted Docker container, we
// measure on the genuinely-executed detection computation:
//   * CPU  — real nanoseconds of feature extraction + inference per
//     window (std::chrono::steady_clock around the actual work), expressed
//     as a percentage of the window's real-time budget after scaling by a
//     device-slowdown factor. The factor models how much slower the
//     paper's Python/sklearn/TF pipeline on a 2.7 GHz i5 inside
//     VM+Docker is than optimised C++ on a modern host; it is a single
//     documented constant, identical across models, so the *comparison*
//     between models is measurement, not modelling.
//   * Memory — exact bytes of the detection working set: the window's
//     packet/feature buffers plus the model's inference scratch (times
//     the inference batch chunk, mirroring how TF batches a window).
//   * Model size — the serialized model file's size (measured elsewhere,
//     via ml::serialize_model).
//
// Timing itself is done with obs::ScopedTimer (src/obs/metrics.hpp), which
// charges the measured wall nanoseconds both to the per-window report sinks
// consumed below and to the registry's latency histograms.
#pragma once

#include <cstdint>

namespace ddoshield::ids {

struct ResourceMeterConfig {
  /// Multipliers from our measured C++ nanoseconds to the reference
  /// deployment (the paper's Python feature loop + native sklearn/TF
  /// inference on a 2.7 GHz i5 inside VM+Docker). The interpreted
  /// per-packet feature loop carries orders of magnitude more overhead
  /// than the C-backed inference, which is why the paper reports CPU as
  /// dominated by statistical-feature computation and nearly equal across
  /// models. Both constants are documented in DESIGN.md §2 and identical
  /// for every model, so cross-model comparisons remain pure measurement.
  double feature_slowdown = 1100.0;
  double inference_slowdown = 0.25;
  /// Fixed per-window pipeline overhead in the reference deployment:
  /// (re)building the window dataframe, dispatching into the model
  /// runtime, logging the per-window score. Amortised over longer
  /// windows — the effect behind the paper's §IV-E claim that extending
  /// the statistical-feature period reduces CPU.
  double per_window_overhead_ms = 150.0;
  /// Rows per inference batch chunk (TF-style window batching).
  std::size_t inference_chunk = 32;
};

}  // namespace ddoshield::ids
