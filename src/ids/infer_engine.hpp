// Off-thread batched inference: the detection half of Fig. 2 lifted off
// the simulation (forwarding) thread.
//
// The simulation thread submits one job per closed window — a design
// matrix of that window's feature rows — through a bounded lock-free SPSC
// ring; a dedicated scoring thread pops jobs in FIFO order, runs the
// model's batched score_batch kernel, and pushes the verdicts through a
// second SPSC ring back to the simulation thread, which merges them in
// submission order.
//
// Determinism argument (DESIGN.md §10): a single worker consuming a FIFO
// ring processes jobs in exactly submission order; score_batch is a pure
// function of (model, matrix) and bit-identical to the inline scalar
// loop; results return through a FIFO ring. Therefore the verdict
// *sequence* is identical to inline scoring — only wall-clock timing
// (which never feeds back into the simulation) differs. The engine
// asserts the FIFO property by stamping each job with a sequence number
// and refusing out-of-order results.
//
// Thread rules: submit/try_collect/collect/drain and publish_metrics are
// simulation-thread only; the worker touches nothing but the rings, the
// const model, and its RelaxedCounters (obs's registry instruments are
// unsynchronised by design).
#pragma once

#include <cstdint>
#include <thread>

#include "ml/classifier.hpp"
#include "ml/design_matrix.hpp"
#include "obs/metrics.hpp"
#include "util/spsc_ring.hpp"

namespace ddoshield::ids {

struct InferEngineConfig {
  /// Jobs in flight (ring slots). A full ring back-pressures submit(),
  /// which spin-yields until the worker frees a slot — counted, so the
  /// obs snapshot shows when the scoring thread cannot keep up.
  std::size_t ring_capacity = 8;
};

/// One scored job, returned in submission order.
struct InferResult {
  std::uint64_t seq = 0;
  ml::Verdicts verdicts;
  std::uint64_t inference_ns = 0;  // worker-side wall time for the batch
  /// Wall time the job sat in the ring before the worker picked it up
  /// (submit stamp to batch start) — the flight recorder's ring-wait
  /// series, reconcilable against the backpressure counters.
  std::uint64_t queue_wait_ns = 0;
};

class InferenceEngine {
 public:
  /// The model must stay trained and unmutated while the engine lives.
  explicit InferenceEngine(const ml::Classifier& model, InferEngineConfig config = {});
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Hands one batch to the scoring thread; returns its sequence number.
  /// Spin-waits (never drops) when the ring is full.
  std::uint64_t submit(ml::DesignMatrix x);

  /// Non-blocking: pops the oldest completed result, if any.
  bool try_collect(InferResult& out);

  /// Blocking: waits for the oldest outstanding result.
  InferResult collect();

  /// Jobs submitted but not yet collected.
  std::size_t outstanding() const { return submitted_ - collected_; }

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;          // worker-side
    std::uint64_t backpressure_waits = 0; // submits that found the ring full
    std::uint64_t ring_high_water = 0;    // max jobs in flight observed
    std::uint64_t rows_scored = 0;        // worker-side
  };
  Stats stats() const;

  /// Copies engine stats into the global registry ("ids.infer.*" —
  /// ring_depth, backpressure, batch_rows); simulation-thread only.
  void publish_metrics() const;

 private:
  struct Job {
    std::uint64_t seq = 0;
    std::uint64_t submit_wall_ns = 0;
    ml::DesignMatrix x;
  };

  void worker_loop();

  const ml::Classifier& model_;
  InferEngineConfig config_;
  util::SpscRing<Job> jobs_;
  util::SpscRing<InferResult> results_;
  std::atomic<bool> stop_{false};

  // Simulation-thread state.
  std::uint64_t submitted_ = 0;
  std::uint64_t collected_ = 0;
  std::uint64_t backpressure_waits_ = 0;
  std::uint64_t ring_high_water_ = 0;
  obs::Counter* m_backpressure_;
  obs::Counter* m_batches_;
  obs::Gauge* m_ring_depth_;
  obs::Histogram* m_batch_rows_;

  // Worker-thread state (published to the registry by the sim thread).
  obs::RelaxedCounter completed_;
  obs::RelaxedCounter rows_scored_;

  std::thread worker_;  // last member: starts after everything it touches
};

}  // namespace ddoshield::ids
