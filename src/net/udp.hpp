// UDP sockets over the simulated network.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "net/address.hpp"
#include "net/packet.hpp"

namespace ddoshield::net {

class Node;
class UdpHost;

/// A bound UDP endpoint. Obtained from UdpHost::open; closing (or dropping
/// the last shared_ptr) releases the port.
class UdpSocket : public std::enable_shared_from_this<UdpSocket> {
 public:
  using ReceiveFn = std::function<void(const Packet&)>;

  std::uint16_t port() const { return port_; }
  bool is_open() const { return open_; }

  void set_receive_callback(ReceiveFn fn) { on_receive_ = std::move(fn); }

  /// Sends a datagram to `dst`. `origin` labels the traffic for ground
  /// truth; payload is the modelled size plus optional app message.
  void send_to(Endpoint dst, std::uint32_t payload_bytes, TrafficOrigin origin,
               std::string app_data = {});

  void close();

 private:
  friend class UdpHost;
  UdpSocket(UdpHost& host, std::uint16_t port) : host_{&host}, port_{port} {}

  UdpHost* host_;
  std::uint16_t port_;
  bool open_ = true;
  ReceiveFn on_receive_;
};

/// Per-node UDP demultiplexer.
class UdpHost {
 public:
  explicit UdpHost(Node& node) : node_{node} {}

  /// Binds a socket; port 0 picks an ephemeral port. Throws if the port
  /// is already bound.
  std::shared_ptr<UdpSocket> open(std::uint16_t port = 0);

  /// Called by the node for every locally-addressed UDP packet.
  void deliver(const Packet& pkt);

  std::uint64_t delivered() const { return delivered_; }
  /// Datagrams that arrived for a port nobody listens on — under a UDP
  /// flood this is the dominant counter.
  std::uint64_t dropped_no_socket() const { return dropped_no_socket_; }

  Node& node() { return node_; }

 private:
  friend class UdpSocket;
  void release(std::uint16_t port) { sockets_.erase(port); }

  Node& node_;
  std::map<std::uint16_t, std::weak_ptr<UdpSocket>> sockets_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_no_socket_ = 0;
};

}  // namespace ddoshield::net
