// TCP over the simulated network.
//
// The implementation covers the behaviours the testbed's experiments and
// features actually depend on:
//   * three-way handshake with SYN retransmission and exponential backoff;
//   * listener backlog so SYN floods exhaust half-open slots and starve
//     legitimate connects (the core DDoS effect on the TServer);
//   * in-order byte-stream delivery with cumulative ACKs, out-of-order
//     buffering, and timeout-driven retransmission;
//   * slow-start/AIMD-style congestion window so floods collapse benign
//     goodput through loss, not just queueing;
//   * FIN teardown, RST on stray segments (what an ACK flood provokes).
//
// Apps exchange "app messages": a byte count plus an optional short string
// (request line, command). The byte count is segmented at MSS and drives
// all wire-level behaviour; the string rides on the first segment of its
// message and is handed to the peer app when that segment is delivered
// in order. The IDS sees only headers, sizes, and timing — as in the paper.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"

namespace ddoshield::obs {
class Counter;
class Gauge;
}

namespace ddoshield::net {

class Node;
class TcpHost;
class TcpListener;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kLastAck,
  kClosing,
  kTimeWait,
};

std::string to_string(TcpState s);

/// Why a connection ended, reported through on_closed.
enum class TcpCloseReason {
  kGracefulClose,   // FIN exchange completed
  kReset,           // peer sent RST
  kConnectTimeout,  // SYN retries exhausted
  kRetransmitLimit, // data retransmission retries exhausted
  kAborted,         // local abort()
};

std::string to_string(TcpCloseReason r);

struct TcpConfig {
  std::uint32_t mss = 1460;
  std::uint32_t receive_window = 64 * 1024;
  std::uint32_t initial_cwnd_segments = 10;
  util::SimTime base_rto = util::SimTime::millis(250);
  util::SimTime syn_rto = util::SimTime::millis(500);
  int max_syn_retries = 4;
  int max_synack_retries = 3;
  int max_data_retries = 6;
  util::SimTime time_wait = util::SimTime::seconds(1);
  /// SYN-cookie defense (off by default; behavior is bit-identical to the
  /// pre-cookie stack until enabled). When any listener's half-open count
  /// reaches the watermark, further SYNs are answered statelessly: the
  /// SYN-ACK's ISN is a keyed hash of the 4-tuple and the client ISN, no
  /// embryo is created, and the completing ACK is validated by recomputing
  /// the hash — so a SYN flood stops consuming backlog slots.
  bool syn_cookies = false;
  /// Half-open threshold that activates cookies; 0 means backlog / 2.
  std::size_t syn_cookie_watermark = 0;
};

class TcpConnection : public std::enable_shared_from_this<TcpConnection> {
 public:
  using ConnectedFn = std::function<void()>;
  using DataFn = std::function<void(std::uint32_t bytes, const std::string& app_data)>;
  using ClosedFn = std::function<void(TcpCloseReason)>;
  using PeerFinFn = std::function<void()>;

  TcpState state() const { return state_; }
  Endpoint local() const { return local_; }
  Endpoint remote() const { return remote_; }
  TrafficOrigin origin() const { return origin_; }

  void set_on_connected(ConnectedFn fn) { on_connected_ = std::move(fn); }
  void set_on_data(DataFn fn) { on_data_ = std::move(fn); }
  void set_on_closed(ClosedFn fn) { on_closed_ = std::move(fn); }
  /// Fires when the peer half-closes (its FIN is consumed in ESTABLISHED);
  /// typical servers reply-then-close from here.
  void set_on_peer_fin(PeerFinFn fn) { on_peer_fin_ = std::move(fn); }

  /// Queues an app message of `bytes` payload; `app_data` rides on the
  /// first segment. Legal in ESTABLISHED and CLOSE_WAIT.
  void send(std::uint32_t bytes, std::string app_data = {});

  /// Graceful close: flush pending data, then FIN.
  void close();

  /// Abortive close: RST to the peer, drop all state.
  void abort();

  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t bytes_received() const { return bytes_received_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  util::SimTime established_at() const { return established_at_; }

 private:
  friend class TcpHost;

  struct Segment {
    std::uint32_t seq = 0;
    std::uint32_t len = 0;
    std::string app_data;
    bool fin = false;
  };

  TcpConnection(TcpHost& host, Endpoint local, Endpoint remote, TrafficOrigin origin);

  // Client-side open; sends SYN.
  void start_connect();
  // Server-side embryo created by a listener upon SYN; sends SYN-ACK.
  void start_accept(std::uint32_t peer_iss);
  // Server side reconstructed from a validated SYN-cookie ACK: no embryo
  // ever existed, so the connection starts directly ESTABLISHED with the
  // cookie as its ISS.
  void start_cookie_accept(std::uint32_t peer_iss, std::uint32_t cookie_iss);

  void on_segment(const Packet& pkt);
  void send_segment(std::uint8_t flags, std::uint32_t seq, std::uint32_t len,
                    std::string app_data, bool count_payload = true);
  void send_ack();
  void try_transmit();
  void enqueue_fin();
  void arm_retransmit_timer(util::SimTime rto);
  void on_retransmit_timeout();
  void handle_ack(std::uint32_t ack);
  void accept_payload(const Packet& pkt);
  void deliver_in_order();
  void enter_time_wait();
  void finish(TcpCloseReason reason);

  TcpHost& host_;
  Simulator& sim_;
  Endpoint local_;
  Endpoint remote_;
  TrafficOrigin origin_;
  TcpConfig cfg_;
  TcpState state_ = TcpState::kClosed;

  // send side
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::deque<Segment> unsent_;
  std::deque<Segment> inflight_;
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  int retry_count_ = 0;
  bool fin_queued_ = false;
  bool fin_sent_ = false;

  // receive side
  std::uint32_t irs_ = 0;
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, Segment> out_of_order_;
  bool peer_fin_seq_known_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  EventHandle rto_timer_;
  EventHandle time_wait_timer_;
  EventHandle delack_timer_;
  int delayed_ack_pending_ = 0;

  ConnectedFn on_connected_;
  DataFn on_data_;
  ClosedFn on_closed_;
  PeerFinFn on_peer_fin_;
  std::weak_ptr<TcpListener> parent_listener_;  // set while an embryo

  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t retransmissions_ = 0;
  util::SimTime established_at_;
  bool finished_ = false;
};

/// A listening TCP port with a finite half-open backlog.
class TcpListener {
 public:
  using AcceptFn = std::function<void(std::shared_ptr<TcpConnection>)>;

  std::uint16_t port() const { return port_; }
  std::size_t half_open() const { return half_open_count_; }
  std::uint64_t backlog_drops() const { return backlog_drops_; }
  std::uint64_t accepted() const { return accepted_; }

  void set_on_accept(AcceptFn fn) { on_accept_ = std::move(fn); }
  void close();

 private:
  friend class TcpHost;
  friend class TcpConnection;
  TcpListener(TcpHost& host, std::uint16_t port, std::size_t backlog, TrafficOrigin origin)
      : host_{&host}, port_{port}, backlog_{backlog}, origin_{origin} {}

  TcpHost* host_;
  std::uint16_t port_;
  std::size_t backlog_;
  TrafficOrigin origin_;
  AcceptFn on_accept_;
  std::size_t half_open_count_ = 0;
  std::uint64_t backlog_drops_ = 0;
  std::uint64_t accepted_ = 0;
  bool open_ = true;
};

/// Per-node TCP demultiplexer and connection factory.
class TcpHost {
 public:
  TcpHost(Node& node, TcpConfig cfg = {});

  /// Starts listening; `origin` labels stack-generated replies
  /// (SYN-ACKs, ACKs) of accepted connections.
  std::shared_ptr<TcpListener> listen(std::uint16_t port, std::size_t backlog = 128,
                                      TrafficOrigin origin = TrafficOrigin::kInfrastructure);

  /// Opens a client connection from an ephemeral port.
  std::shared_ptr<TcpConnection> connect(Endpoint remote, TrafficOrigin origin);

  /// Called by the node for every locally-addressed TCP packet.
  void deliver(const Packet& pkt);

  Node& node() { return node_; }
  const TcpConfig& config() const { return cfg_; }

  /// Flips the SYN-cookie defense at runtime (the mitigation controller's
  /// enforcement point). watermark == 0 keeps the configured/default one.
  void set_syn_cookies(bool on, std::size_t watermark = 0);
  bool syn_cookies_enabled() const { return cfg_.syn_cookies; }

  /// Keyed-hash ISN for a stateless SYN-ACK, in the spirit of Linux
  /// secure_seq.h: a deterministic mix of the 4-tuple, the client's ISN,
  /// and a per-host secret, so only a peer that really received our
  /// SYN-ACK can produce the completing ACK.
  std::uint32_t syn_cookie_isn(Ipv4Address saddr, Ipv4Address daddr, std::uint16_t sport,
                               std::uint16_t dport, std::uint32_t client_iss) const;

  std::uint64_t rst_sent() const { return rst_sent_; }
  std::uint64_t syn_cookies_sent() const { return syn_cookies_sent_; }
  std::uint64_t syn_cookies_accepted() const { return syn_cookies_accepted_; }
  std::uint64_t syn_cookies_rejected() const { return syn_cookies_rejected_; }
  std::size_t active_connections() const { return connections_.size(); }

 private:
  friend class TcpConnection;
  friend class TcpListener;

  struct ConnKey {
    std::uint16_t local_port;
    Endpoint remote;
    friend auto operator<=>(const ConnKey&, const ConnKey&) = default;
  };

  void register_connection(std::shared_ptr<TcpConnection> conn);
  void remove_connection(const TcpConnection& conn);
  void notify_established(TcpConnection& conn);
  void send_rst_for(const Packet& pkt);
  std::uint32_t random_iss();

  /// Answers a SYN with a stateless cookie SYN-ACK (no embryo).
  void send_syn_cookie(const Packet& pkt, const TcpListener& listener);
  /// Tries to complete a cookie handshake from a stray ACK; returns true
  /// if the segment was consumed (connection created or cookie rejected
  /// into the RST path by the caller).
  bool try_cookie_complete(const Packet& pkt);

  Node& node_;
  TcpConfig cfg_;
  std::map<ConnKey, std::shared_ptr<TcpConnection>> connections_;
  std::map<std::uint16_t, std::weak_ptr<TcpListener>> listeners_;
  std::uint64_t rst_sent_ = 0;
  std::uint64_t syn_cookies_sent_ = 0;
  std::uint64_t syn_cookies_accepted_ = 0;
  std::uint64_t syn_cookies_rejected_ = 0;
  std::uint32_t iss_state_ = 0x12345678;
  std::uint64_t cookie_secret_ = 0;  // per-host, fixed at construction

  // Aggregate registry instruments (shared across hosts), resolved once.
  obs::Counter* m_handshakes_;
  obs::Counter* m_retransmits_;
  obs::Counter* m_rst_sent_;
  obs::Counter* m_syn_cookies_sent_;
  obs::Counter* m_syn_cookies_accepted_;
  obs::Counter* m_syn_cookies_rejected_;
  obs::Gauge* m_active_connections_;
};

}  // namespace ddoshield::net
