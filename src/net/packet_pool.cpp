#include "net/packet_pool.hpp"

#include <cstdio>
#include <cstdlib>

namespace ddoshield::net {

PacketPool::~PacketPool() = default;

PacketPool::Slot* PacketPool::slot_of(Packet* pkt) {
  // Packet is the first member of Slot, so the addresses coincide
  // (offsetof is unusable here: Packet holds a std::string, making Slot
  // non-standard-layout).
  return reinterpret_cast<Slot*>(pkt);
}

void PacketPool::reset_for_reuse(Packet& pkt) {
  // Field-wise reset that keeps app_data's buffer: the retained capacity
  // is the pool's payload arena.
  pkt.src = Ipv4Address{};
  pkt.dst = Ipv4Address{};
  pkt.proto = IpProto::kUdp;
  pkt.ttl = 64;
  pkt.src_port = 0;
  pkt.dst_port = 0;
  pkt.seq = 0;
  pkt.ack = 0;
  pkt.tcp_flags = 0;
  pkt.payload_bytes = 0;
  pkt.app_data.clear();
  pkt.origin = TrafficOrigin::kInfrastructure;
  pkt.sent_at = util::SimTime{};
  pkt.uid = 0;
  pkt.stack_tcp = false;
  pkt.corrupted = false;
}

void PacketPool::grow_block() {
  auto block = std::make_unique<Slot[]>(kBlockPackets);
  free_list_.reserve(free_list_.capacity() + kBlockPackets);
  for (std::size_t i = kBlockPackets; i-- > 0;) {
    block[i].in_free_list = true;
    free_list_.push_back(&block[i]);
  }
  blocks_.push_back(std::move(block));
  ++stats_.allocated_blocks;
  stats_.allocated_packets += kBlockPackets;
}

void PacketPool::reserve(std::size_t packets) {
  if (bypass_) return;
  while (stats_.allocated_packets < packets) grow_block();
}

Packet* PacketPool::acquire() {
  ++stats_.acquires;
  ++stats_.outstanding;
  if (stats_.outstanding > stats_.outstanding_high_water) {
    stats_.outstanding_high_water = stats_.outstanding;
  }

  if (bypass_) {
    ++stats_.allocated_packets;
    Slot* slot = new Slot{};
    slot->heap_single = true;
    return &slot->pkt;
  }

  if (free_list_.empty()) {
    grow_block();
  } else {
    ++stats_.reuses;
  }

  Slot* slot = free_list_.back();
  free_list_.pop_back();
  slot->in_free_list = false;
  reset_for_reuse(slot->pkt);
  return &slot->pkt;
}

void PacketPool::release(Packet* pkt) {
  Slot* slot = slot_of(pkt);
  if (slot->heap_single) {
    ++stats_.releases;
    --stats_.outstanding;
    delete slot;
    return;
  }
  if (slot->in_free_list) {
    std::fprintf(stderr, "PacketPool::release: double release of packet slot %p\n",
                 static_cast<void*>(pkt));
    std::abort();
  }
  slot->in_free_list = true;
  free_list_.push_back(slot);
  ++stats_.releases;
  --stats_.outstanding;
}

void PacketPool::set_bypass(bool bypass) {
  if (bypass == bypass_) return;
  if (stats_.outstanding != 0) {
    std::fprintf(stderr, "PacketPool::set_bypass: %llu slots still outstanding\n",
                 static_cast<unsigned long long>(stats_.outstanding));
    std::abort();
  }
  bypass_ = bypass;
}

}  // namespace ddoshield::net
