// IPv4 addressing for the simulated network.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ddoshield::net {

/// An IPv4 address stored host-order in 32 bits.
class Ipv4Address {
 public:
  constexpr Ipv4Address() = default;
  constexpr explicit Ipv4Address(std::uint32_t bits) : bits_{bits} {}
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
      : bits_{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}} {}

  /// Parses dotted-quad notation; throws std::invalid_argument on bad input.
  static Ipv4Address parse(const std::string& text);

  constexpr std::uint32_t bits() const { return bits_; }
  constexpr bool is_unspecified() const { return bits_ == 0; }

  /// True if both addresses share the given prefix length.
  constexpr bool same_subnet(Ipv4Address other, int prefix_len) const {
    if (prefix_len <= 0) return true;
    const std::uint32_t mask =
        prefix_len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix_len)) - 1u);
    return (bits_ & mask) == (other.bits_ & mask);
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t bits_ = 0;
};

/// (address, port) pair — the socket-level endpoint identity.
struct Endpoint {
  Ipv4Address addr;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) = default;
  std::string to_string() const;
};

}  // namespace ddoshield::net
