#include "net/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace ddoshield::net {

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule(util::SimTime delay, std::function<void()> fn) {
  if (delay.is_negative()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(util::SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle{cancelled};
}

void Simulator::run_until(util::SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    execute_next();
  }
  if (now_ < until) now_ = until;
}

void Simulator::run_all() {
  while (!queue_.empty()) execute_next();
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

void Simulator::execute_next() {
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the small members and pop before running.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.when;
  if (*ev.cancelled) return;
  ++events_executed_;
  ev.fn();
}

}  // namespace ddoshield::net
