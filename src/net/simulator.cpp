#include "net/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace ddoshield::net {

namespace {
SchedulerKind g_default_scheduler = SchedulerKind::kCalendar;
}  // namespace

SchedulerKind Simulator::default_scheduler() { return g_default_scheduler; }

void Simulator::set_default_scheduler(SchedulerKind kind) { g_default_scheduler = kind; }

Simulator::Simulator(SchedulerKind kind) : kind_{kind} {
  if (kind_ == SchedulerKind::kCalendar) {
    calendar_.buckets.resize(kBuckets);
  }
  auto& reg = obs::MetricsRegistry::global();
  m_scheduled_ = &reg.counter("net.sim.events_scheduled");
  m_executed_ = &reg.counter("net.sim.events_executed");
  m_cancelled_ = &reg.counter("net.sim.events_cancelled");
  m_rollovers_ = &reg.counter("net.sim.calendar.rollovers");
  m_migrations_ = &reg.counter("net.sim.calendar.migrations");
  m_bucket_occupancy_ = &reg.gauge("net.sim.calendar.bucket_occupancy");
}

Simulator::~Simulator() { flush_stats(); }

void Simulator::flush_stats() {
  m_scheduled_->inc(next_seq_ - flushed_scheduled_);
  flushed_scheduled_ = next_seq_;
  m_executed_->inc(events_executed_ - flushed_executed_);
  flushed_executed_ = events_executed_;
  m_cancelled_->inc(events_cancelled_ - flushed_cancelled_);
  flushed_cancelled_ = events_cancelled_;
  m_rollovers_->inc(calendar_.rollovers - flushed_rollovers_);
  flushed_rollovers_ = calendar_.rollovers;
  m_migrations_->inc(calendar_.migrations - flushed_migrations_);
  flushed_migrations_ = calendar_.migrations;
  m_bucket_occupancy_->set(static_cast<double>(calendar_.bucket_high_water));
}

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

void Simulator::heap_push(EventHeap& heap, Event ev) {
  heap.push_back(std::move(ev));
  std::push_heap(heap.begin(), heap.end(), EventOrder{});
}

Simulator::Event Simulator::heap_pop(EventHeap& heap) {
  std::pop_heap(heap.begin(), heap.end(), EventOrder{});
  Event ev = std::move(heap.back());
  heap.pop_back();
  return ev;
}

EventHandle Simulator::schedule(util::SimTime delay, Callback fn) {
  if (delay.is_negative()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(util::SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  insert(Event{when, next_seq_++, std::move(fn), cancelled});
  return EventHandle{cancelled};
}

void Simulator::post(util::SimTime delay, Callback fn) {
  if (delay.is_negative()) {
    throw std::invalid_argument("Simulator::post: negative delay");
  }
  post_at(now_ + delay, std::move(fn));
}

void Simulator::post_at(util::SimTime when, Callback fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::post_at: time in the past");
  }
  insert(Event{when, next_seq_++, std::move(fn), nullptr});
}

void Simulator::insert(Event ev) {
  if (alloc_compat_) {
    // Reproduce the seed's allocation profile: one token per event plus a
    // heap-boxed closure (what std::function did for any capture beyond
    // its small-buffer size).
    if (!ev.cancelled) ev.cancelled = std::make_shared<bool>(false);
    auto boxed = std::make_shared<Callback>(std::move(ev.fn));
    ev.fn = [boxed] { (*boxed)(); };
  }
  if (kind_ == SchedulerKind::kBinaryHeap) {
    heap_push(heap_, std::move(ev));
  } else {
    insert_calendar(std::move(ev));
  }
  ++pending_;
  if (pending_ > queue_high_water_) queue_high_water_ = pending_;
}

void Simulator::insert_calendar(Event ev) {
  CalendarState& cal = calendar_;
  if (cal.buffered == 0 && cal.overflow.empty()) {
    // Idle wheel: re-anchor the window at the clock so the whole span
    // [now, now + kBuckets days) is bucketable again.
    cal.base_day = day_of(now_);
    cal.hint_day = cal.base_day;
  }
  const std::int64_t day = day_of(ev.when);
  if (day < cal.base_day + static_cast<std::int64_t>(kBuckets)) {
    EventHeap& bucket = cal.buckets[static_cast<std::size_t>(day) & (kBuckets - 1)];
    heap_push(bucket, std::move(ev));
    ++cal.buffered;
    if (bucket.size() > cal.bucket_high_water) cal.bucket_high_water = bucket.size();
    if (day < cal.hint_day) cal.hint_day = day;
  } else {
    heap_push(cal.overflow, std::move(ev));
  }
}

void Simulator::migrate_overflow() {
  CalendarState& cal = calendar_;
  const std::int64_t end_day = cal.base_day + static_cast<std::int64_t>(kBuckets);
  while (!cal.overflow.empty() && day_of(cal.overflow.front().when) < end_day) {
    Event ev = heap_pop(cal.overflow);
    const std::int64_t day = day_of(ev.when);
    EventHeap& bucket = cal.buckets[static_cast<std::size_t>(day) & (kBuckets - 1)];
    heap_push(bucket, std::move(ev));
    ++cal.buffered;
    if (bucket.size() > cal.bucket_high_water) cal.bucket_high_water = bucket.size();
    ++cal.migrations;
  }
}

util::SimTime Simulator::next_when() {
  if (kind_ == SchedulerKind::kBinaryHeap) return heap_.front().when;
  CalendarState& cal = calendar_;
  if (cal.buffered == 0) return cal.overflow.front().when;
  // Walk the hint forward past drained days. Amortized O(1): the hint only
  // ever retreats when an insert lands on an earlier day.
  while (cal.buckets[static_cast<std::size_t>(cal.hint_day) & (kBuckets - 1)].empty()) {
    ++cal.hint_day;
  }
  return cal.buckets[static_cast<std::size_t>(cal.hint_day) & (kBuckets - 1)].front().when;
}

void Simulator::run_until(util::SimTime until) {
  while (pending_ != 0 && next_when() <= until) {
    execute_next();
  }
  if (now_ < until) now_ = until;
  flush_stats();
}

void Simulator::run_all() {
  while (pending_ != 0) execute_next();
  flush_stats();
}

void Simulator::clear() {
  heap_.clear();
  for (EventHeap& bucket : calendar_.buckets) bucket.clear();
  calendar_.overflow.clear();
  calendar_.buffered = 0;
  pending_ = 0;
}

void Simulator::execute_next() {
  Event ev;
  if (kind_ == SchedulerKind::kBinaryHeap) {
    ev = heap_pop(heap_);
  } else {
    CalendarState& cal = calendar_;
    if (cal.buffered == 0) {
      // Every bucket drained and only far-future events remain: fast-
      // forward the wheel window to the spillover's earliest day and pull
      // everything that now fits back onto the wheel.
      cal.base_day = day_of(cal.overflow.front().when);
      cal.hint_day = cal.base_day;
      ++cal.rollovers;
      migrate_overflow();
    }
    while (cal.buckets[static_cast<std::size_t>(cal.hint_day) & (kBuckets - 1)].empty()) {
      ++cal.hint_day;
    }
    ev = heap_pop(cal.buckets[static_cast<std::size_t>(cal.hint_day) & (kBuckets - 1)]);
    --cal.buffered;
  }
  --pending_;

  if (ev.when < now_) ++time_regressions_;
  now_ = ev.when;
  if (ev.cancelled && *ev.cancelled) {
    ++events_cancelled_;
    return;
  }
  ++events_executed_;
  ev.fn();
}

}  // namespace ddoshield::net
