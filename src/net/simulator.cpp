#include "net/simulator.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace ddoshield::net {

Simulator::Simulator() {
  auto& reg = obs::MetricsRegistry::global();
  m_scheduled_ = &reg.counter("net.sim.events_scheduled");
  m_executed_ = &reg.counter("net.sim.events_executed");
  m_cancelled_ = &reg.counter("net.sim.events_cancelled");
}

Simulator::~Simulator() { flush_stats(); }

void Simulator::flush_stats() {
  m_scheduled_->inc(next_seq_ - flushed_scheduled_);
  flushed_scheduled_ = next_seq_;
  m_executed_->inc(events_executed_ - flushed_executed_);
  flushed_executed_ = events_executed_;
  m_cancelled_->inc(events_cancelled_ - flushed_cancelled_);
  flushed_cancelled_ = events_cancelled_;
}

void EventHandle::cancel() {
  if (cancelled_) *cancelled_ = true;
}

bool EventHandle::pending() const { return cancelled_ && !*cancelled_; }

EventHandle Simulator::schedule(util::SimTime delay, std::function<void()> fn) {
  if (delay.is_negative()) {
    throw std::invalid_argument("Simulator::schedule: negative delay");
  }
  return schedule_at(now_ + delay, std::move(fn));
}

EventHandle Simulator::schedule_at(util::SimTime when, std::function<void()> fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Event{when, next_seq_++, std::move(fn), cancelled});
  if (queue_.size() > queue_high_water_) queue_high_water_ = queue_.size();
  return EventHandle{cancelled};
}

void Simulator::run_until(util::SimTime until) {
  while (!queue_.empty() && queue_.top().when <= until) {
    execute_next();
  }
  if (now_ < until) now_ = until;
  flush_stats();
}

void Simulator::run_all() {
  while (!queue_.empty()) execute_next();
  flush_stats();
}

void Simulator::clear() {
  while (!queue_.empty()) queue_.pop();
}

void Simulator::execute_next() {
  // priority_queue::top is const; move out via const_cast is UB-adjacent,
  // so copy the small members and pop before running.
  Event ev = queue_.top();
  queue_.pop();
  if (ev.when < now_) ++time_regressions_;
  now_ = ev.when;
  if (*ev.cancelled) {
    ++events_cancelled_;
    return;
  }
  ++events_executed_;
  ev.fn();
}

}  // namespace ddoshield::net
