// Free-list packet pool for the simulation hot path.
//
// Every packet in flight on a link used to live inside a heap-allocated
// closure; at flood rates that is one malloc/free pair per packet. The
// pool instead hands out slots from chunked arena blocks (kBlockPackets
// packets per block) threaded on a free list. A released slot keeps its
// Packet's app_data capacity, so the string buffer doubles as a payload
// arena: once the pool has grown to the simulation's in-flight high-water
// mark, steady state acquires and releases touch the allocator zero times
// — the property bench_scale gates on via stats().allocated_packets.
//
// Ownership protocol: acquire() transfers ownership of the slot to the
// caller; exactly one matching release() returns it. Link::transmit owns
// the slot for a packet's whole flight and releases it after delivery (or
// after accounting an in-flight loss). Double releases abort immediately
// with a diagnostic — a use-after-release would otherwise silently corrupt
// another in-flight packet.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.hpp"

namespace ddoshield::net {

class PacketPool {
 public:
  /// Packets per arena block. Growth is block-at-a-time so a burst does
  /// not trigger per-packet allocations even while the pool warms up.
  static constexpr std::size_t kBlockPackets = 256;

  struct Stats {
    std::uint64_t allocated_blocks = 0;
    /// Fresh slots ever created. Flat after warmup in pooled mode; grows
    /// by one per acquire in bypass mode. The bench's steady-state gate.
    std::uint64_t allocated_packets = 0;
    std::uint64_t acquires = 0;
    std::uint64_t releases = 0;
    /// Acquires served from the free list (no allocator traffic).
    std::uint64_t reuses = 0;
    std::uint64_t outstanding = 0;
    std::uint64_t outstanding_high_water = 0;
  };

  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;
  ~PacketPool();

  /// Pre-grows the pool to at least `packets` slots (whole blocks), so a
  /// run whose in-flight peak stays under that count performs zero
  /// allocations end to end. Ignored in bypass mode.
  void reserve(std::size_t packets);

  /// Returns a default-initialized packet slot (app_data cleared but its
  /// capacity retained from the slot's previous life).
  Packet* acquire();

  /// Returns a slot to the free list. Aborts on double release.
  void release(Packet* pkt);

  /// Bypass mode allocates/frees every packet on the heap — the pre-pool
  /// behaviour, kept so bench_scale can measure before/after on one
  /// binary. Only togglable while no slots are outstanding.
  void set_bypass(bool bypass);
  bool bypass() const { return bypass_; }

  const Stats& stats() const { return stats_; }

 private:
  struct Slot {
    Packet pkt;
    bool in_free_list = false;
    bool heap_single = false;  // bypass-mode slot: freed on release
  };

  static Slot* slot_of(Packet* pkt);
  static void reset_for_reuse(Packet& pkt);
  void grow_block();

  std::vector<std::unique_ptr<Slot[]>> blocks_;
  std::vector<Slot*> free_list_;
  bool bypass_ = false;
  Stats stats_;
};

}  // namespace ddoshield::net
