#include "net/udp.hpp"

#include <stdexcept>

#include "net/node.hpp"

namespace ddoshield::net {

void UdpSocket::send_to(Endpoint dst, std::uint32_t payload_bytes, TrafficOrigin origin,
                        std::string app_data) {
  if (!open_) throw std::logic_error("UdpSocket::send_to: socket is closed");
  Packet pkt;
  pkt.dst = dst.addr;
  pkt.dst_port = dst.port;
  pkt.src_port = port_;
  pkt.proto = IpProto::kUdp;
  pkt.payload_bytes = payload_bytes;
  pkt.app_data = std::move(app_data);
  pkt.origin = origin;
  host_->node().send(std::move(pkt));
}

void UdpSocket::close() {
  if (!open_) return;
  open_ = false;
  host_->release(port_);
}

std::shared_ptr<UdpSocket> UdpHost::open(std::uint16_t port) {
  if (port == 0) {
    do {
      port = node_.allocate_ephemeral_port();
    } while (sockets_.contains(port));
  } else if (auto it = sockets_.find(port); it != sockets_.end() && !it->second.expired()) {
    throw std::invalid_argument("UdpHost::open: port already bound");
  }
  auto socket = std::shared_ptr<UdpSocket>(new UdpSocket{*this, port});
  sockets_[port] = socket;
  return socket;
}

void UdpHost::deliver(const Packet& pkt) {
  const auto it = sockets_.find(pkt.dst_port);
  if (it == sockets_.end()) {
    ++dropped_no_socket_;
    return;
  }
  auto socket = it->second.lock();
  if (!socket || !socket->is_open()) {
    sockets_.erase(it);
    ++dropped_no_socket_;
    return;
  }
  ++delivered_;
  if (socket->on_receive_) socket->on_receive_(pkt);
}

}  // namespace ddoshield::net
