#include "net/packet.hpp"

#include <sstream>

namespace ddoshield::net {

std::string to_string(TrafficOrigin origin) {
  switch (origin) {
    case TrafficOrigin::kHttp: return "http";
    case TrafficOrigin::kVideo: return "video";
    case TrafficOrigin::kFtp: return "ftp";
    case TrafficOrigin::kMiraiScan: return "mirai-scan";
    case TrafficOrigin::kMiraiC2: return "mirai-c2";
    case TrafficOrigin::kMiraiSynFlood: return "mirai-syn-flood";
    case TrafficOrigin::kMiraiAckFlood: return "mirai-ack-flood";
    case TrafficOrigin::kMiraiUdpFlood: return "mirai-udp-flood";
    case TrafficOrigin::kInfrastructure: return "infra";
  }
  return "?";
}

TrafficClass traffic_class_of(TrafficOrigin origin) {
  switch (origin) {
    case TrafficOrigin::kMiraiScan:
    case TrafficOrigin::kMiraiC2:
    case TrafficOrigin::kMiraiSynFlood:
    case TrafficOrigin::kMiraiAckFlood:
    case TrafficOrigin::kMiraiUdpFlood:
      return TrafficClass::kMalicious;
    default:
      return TrafficClass::kBenign;
  }
}

std::string Packet::summary() const {
  std::ostringstream os;
  os << src.to_string() << ':' << src_port << " > " << dst.to_string() << ':' << dst_port
     << ' ' << (proto == IpProto::kTcp ? "tcp" : "udp");
  if (proto == IpProto::kTcp) {
    os << " [";
    if (has_flag(TcpFlags::kSyn)) os << 'S';
    if (has_flag(TcpFlags::kAck)) os << 'A';
    if (has_flag(TcpFlags::kFin)) os << 'F';
    if (has_flag(TcpFlags::kRst)) os << 'R';
    if (has_flag(TcpFlags::kPsh)) os << 'P';
    os << "] seq=" << seq << " ack=" << ack;
  }
  os << " len=" << payload_bytes << " origin=" << to_string(origin);
  return os.str();
}

}  // namespace ddoshield::net
