#include "net/network.hpp"

#include <stdexcept>

namespace ddoshield::net {

Node& Network::add_node(const std::string& name, Ipv4Address addr) {
  for (const auto& n : nodes_) {
    if (n->name() == name) throw std::invalid_argument("Network: duplicate node name " + name);
    if (n->address() == addr) {
      throw std::invalid_argument("Network: duplicate address " + addr.to_string());
    }
  }
  nodes_.push_back(std::make_unique<Node>(sim_, name, addr));
  return *nodes_.back();
}

Link& Network::add_link(Node& a, Node& b, LinkConfig config) {
  links_.push_back(std::make_unique<Link>(sim_, a, b, config));
  return *links_.back();
}

Node* Network::find_node(const std::string& name) {
  for (const auto& n : nodes_) {
    if (n->name() == name) return n.get();
  }
  return nullptr;
}

StarTopology build_star_topology(Network& net, const StarTopologyConfig& config) {
  StarTopology topo;

  topo.router = &net.add_node("router", Ipv4Address{10, 0, 0, 1});
  topo.router->set_forwarding(true);

  topo.tserver = &net.add_node("tserver", Ipv4Address{10, 0, 1, 1});
  topo.uplink = &net.add_link(*topo.router, *topo.tserver, config.uplink);
  // On the router the uplink is interface 0; route the server subnet there.
  topo.router->add_route(Ipv4Address{10, 0, 1, 0}, 24, 0);
  topo.tserver->set_default_route(0);

  topo.attacker = &net.add_node("attacker", Ipv4Address{10, 0, 0, 2});
  net.add_link(*topo.router, *topo.attacker, config.access_link);
  topo.router->add_route(topo.attacker->address(), 32, topo.router->interface_count() - 1);
  topo.attacker->set_default_route(0);

  topo.devices.reserve(config.device_count);
  for (std::size_t i = 0; i < config.device_count; ++i) {
    // Device addresses 10.0.0.10, .11, ... leave room for infrastructure.
    const auto last_octet = static_cast<std::uint8_t>(10 + i % 240);
    const auto third_octet = static_cast<std::uint8_t>(i / 240);
    Node& dev = net.add_node("dev_" + std::to_string(i),
                             Ipv4Address{10, 1, third_octet, last_octet});
    net.add_link(*topo.router, dev, config.access_link);
    topo.router->add_route(dev.address(), 32, topo.router->interface_count() - 1);
    dev.set_default_route(0);
    topo.devices.push_back(&dev);
  }
  return topo;
}

}  // namespace ddoshield::net
