#include "net/link.hpp"

#include <stdexcept>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace ddoshield::net {

Link::Link(Simulator& sim, Node& a, Node& b, LinkConfig config)
    : sim_{sim}, ends_{&a, &b}, config_{config} {
  if (&a == &b) throw std::invalid_argument("Link: cannot connect a node to itself");
  if (config_.rate_bps <= 0.0) throw std::invalid_argument("Link: rate must be positive");
  auto& reg = obs::MetricsRegistry::global();
  m_tx_packets_ = &reg.counter("net.link.tx_packets");
  m_tx_bytes_ = &reg.counter("net.link.tx_bytes");
  m_dropped_packets_ = &reg.counter("net.link.dropped_packets");
  m_dropped_bytes_ = &reg.counter("net.link.dropped_bytes");
  m_queue_bytes_ = &reg.gauge("net.link.queue_bytes");
  flight_ = &obs::FlightRecorder::global();
  auto& lat = obs::LatencyTracker::global();
  lat_queue_ns_ = &lat.series("flight.net.queue_ns");
  lat_transit_ns_ = &lat.series("flight.net.transit_ns");
  a.attach_link(*this);
  b.attach_link(*this);
}

int Link::index_of(const Node& n) const {
  if (&n == ends_[0]) return 0;
  if (&n == ends_[1]) return 1;
  throw std::invalid_argument("Link: node is not an endpoint of this link");
}

Node& Link::peer_of(const Node& n) const { return *ends_[1 - index_of(n)]; }

Link::Direction& Link::direction_from(const Node& from) {
  return dirs_[index_of(from)];
}

const LinkDirectionStats& Link::stats_from(const Node& from) const {
  return dirs_[index_of(from)].stats;
}

double Link::queue_backlog_bytes(const Node& from) const {
  const Direction& dir = dirs_[index_of(from)];
  const util::SimTime now = sim_.now();
  const util::SimTime backlog =
      dir.busy_until > now ? dir.busy_until - now : util::SimTime{};
  return backlog.to_seconds() * config_.rate_bps / 8.0;
}

void Link::set_fault(const LinkFault& fault, std::uint64_t seed) {
  fault_ = fault;
  fault_rng_ = util::Rng{seed};
}

// Deterministic header mangling: the kind of damage a flaky L2 segment
// inflicts — a few flipped bits in fields the IDS and the TCP demux both
// read. Payload size is left intact so link/queue accounting stays exact.
void Link::corrupt_header(Packet& pkt) {
  pkt.corrupted = true;
  switch (fault_rng_.uniform_u64(4)) {
    case 0: pkt.seq ^= 1u << fault_rng_.uniform_u64(32); break;
    case 1: pkt.src_port ^= static_cast<std::uint16_t>(1u << fault_rng_.uniform_u64(16)); break;
    case 2: pkt.dst_port ^= static_cast<std::uint16_t>(1u << fault_rng_.uniform_u64(16)); break;
    default: pkt.tcp_flags ^= static_cast<std::uint8_t>(1u << fault_rng_.uniform_u64(6)); break;
  }
}

bool Link::transmit(const Node& from, Packet pkt) {
  auto& dir = direction_from(from);
  const std::uint32_t bytes = pkt.wire_bytes();

  if (!up_) {
    ++dir.stats.dropped_packets;
    dir.stats.dropped_bytes += bytes;
    m_dropped_packets_->inc();
    m_dropped_bytes_->inc(bytes);
    return false;
  }

  if (fault_.drop_probability > 0.0 && fault_rng_.bernoulli(fault_.drop_probability)) {
    ++dir.stats.dropped_packets;
    dir.stats.dropped_bytes += bytes;
    ++dir.stats.fault_dropped_packets;
    m_dropped_packets_->inc();
    m_dropped_bytes_->inc(bytes);
    return false;
  }

  const util::SimTime now = sim_.now();
  const util::SimTime backlog =
      dir.busy_until > now ? dir.busy_until - now : util::SimTime{};
  const double backlog_bytes = backlog.to_seconds() * config_.rate_bps / 8.0;
  if (backlog_bytes + bytes > static_cast<double>(config_.queue_bytes)) {
    ++dir.stats.dropped_packets;
    dir.stats.dropped_bytes += bytes;
    m_dropped_packets_->inc();
    m_dropped_bytes_->inc(bytes);
    return false;
  }

  const util::SimTime tx_time =
      util::SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / config_.rate_bps);
  const util::SimTime start = dir.busy_until > now ? dir.busy_until : now;
  dir.busy_until = start + tx_time;
  util::SimTime arrival = dir.busy_until + config_.delay;
  if (fault_.active()) {
    arrival += fault_.extra_delay;
    if (!fault_.jitter.is_zero()) {
      arrival += util::SimTime::from_seconds(fault_rng_.uniform() * fault_.jitter.to_seconds());
    }
    if (fault_.corrupt_probability > 0.0 &&
        fault_rng_.bernoulli(fault_.corrupt_probability)) {
      corrupt_header(pkt);
      ++dir.stats.corrupted_packets;
    }
  }

  ++dir.stats.tx_packets;
  dir.stats.tx_bytes += bytes;
  m_tx_packets_->inc();
  m_tx_bytes_->inc(bytes);
  m_queue_bytes_->set(backlog_bytes + bytes);

  if (flight_->sampled(pkt.uid)) {
    // All three timestamps of this packet's wire life are known here, so
    // the per-stage latency series fill in one place; the ring events are
    // what a post-mortem dump replays. (Link rx is recorded at actual
    // delivery below, so dumps never show phantom arrivals.)
    flight_->record(obs::FlightStage::kNetEnqueue, pkt.uid, now.ns(), 0, bytes);
    flight_->record(obs::FlightStage::kLinkTx, pkt.uid, start.ns());
    lat_queue_ns_->observe(static_cast<std::uint64_t>((start - now).ns()));
    lat_transit_ns_->observe(static_cast<std::uint64_t>((arrival - start).ns()));
  }

  Node* peer = ends_[1 - index_of(from)];
  Direction* sender_dir = &dir;
  // The packet rides out its flight in a pool slot; the delivery closure
  // (four pointers — inline in the event node) owns the slot and releases
  // it on both outcomes. Steady state this path never touches the heap.
  Packet* slot = sim_.packet_pool().acquire();
  *slot = std::move(pkt);
  sim_.post_at(arrival, [peer, sender_dir, slot, this] {
    if (up_) {
      ++sender_dir->stats.delivered_packets;
      if (flight_->sampled(slot->uid)) {
        flight_->record(obs::FlightStage::kLinkRx, slot->uid, sim_.now().ns(), 0,
                        slot->wire_bytes());
      }
      peer->deliver(std::move(*slot));
    } else {
      // The link went down while the packet was propagating: account the
      // loss so per-link conservation (tx = delivered + lost) still holds.
      ++sender_dir->stats.lost_in_flight_packets;
    }
    sim_.packet_pool().release(slot);
  });
  return true;
}

}  // namespace ddoshield::net
