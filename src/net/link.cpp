#include "net/link.hpp"

#include <stdexcept>

#include "net/node.hpp"
#include "net/simulator.hpp"
#include "obs/metrics.hpp"

namespace ddoshield::net {

Link::Link(Simulator& sim, Node& a, Node& b, LinkConfig config)
    : sim_{sim}, ends_{&a, &b}, config_{config} {
  if (&a == &b) throw std::invalid_argument("Link: cannot connect a node to itself");
  if (config_.rate_bps <= 0.0) throw std::invalid_argument("Link: rate must be positive");
  auto& reg = obs::MetricsRegistry::global();
  m_tx_packets_ = &reg.counter("net.link.tx_packets");
  m_tx_bytes_ = &reg.counter("net.link.tx_bytes");
  m_dropped_packets_ = &reg.counter("net.link.dropped_packets");
  m_dropped_bytes_ = &reg.counter("net.link.dropped_bytes");
  m_queue_bytes_ = &reg.gauge("net.link.queue_bytes");
  a.attach_link(*this);
  b.attach_link(*this);
}

int Link::index_of(const Node& n) const {
  if (&n == ends_[0]) return 0;
  if (&n == ends_[1]) return 1;
  throw std::invalid_argument("Link: node is not an endpoint of this link");
}

Node& Link::peer_of(const Node& n) const { return *ends_[1 - index_of(n)]; }

Link::Direction& Link::direction_from(const Node& from) {
  return dirs_[index_of(from)];
}

const LinkDirectionStats& Link::stats_from(const Node& from) const {
  return dirs_[index_of(from)].stats;
}

double Link::queue_backlog_bytes(const Node& from) const {
  const Direction& dir = dirs_[index_of(from)];
  const util::SimTime now = sim_.now();
  const util::SimTime backlog =
      dir.busy_until > now ? dir.busy_until - now : util::SimTime{};
  return backlog.to_seconds() * config_.rate_bps / 8.0;
}

bool Link::transmit(const Node& from, Packet pkt) {
  auto& dir = direction_from(from);
  const std::uint32_t bytes = pkt.wire_bytes();

  if (!up_) {
    ++dir.stats.dropped_packets;
    dir.stats.dropped_bytes += bytes;
    m_dropped_packets_->inc();
    m_dropped_bytes_->inc(bytes);
    return false;
  }

  const util::SimTime now = sim_.now();
  const util::SimTime backlog =
      dir.busy_until > now ? dir.busy_until - now : util::SimTime{};
  const double backlog_bytes = backlog.to_seconds() * config_.rate_bps / 8.0;
  if (backlog_bytes + bytes > static_cast<double>(config_.queue_bytes)) {
    ++dir.stats.dropped_packets;
    dir.stats.dropped_bytes += bytes;
    m_dropped_packets_->inc();
    m_dropped_bytes_->inc(bytes);
    return false;
  }

  const util::SimTime tx_time =
      util::SimTime::from_seconds(static_cast<double>(bytes) * 8.0 / config_.rate_bps);
  const util::SimTime start = dir.busy_until > now ? dir.busy_until : now;
  dir.busy_until = start + tx_time;
  const util::SimTime arrival = dir.busy_until + config_.delay;

  ++dir.stats.tx_packets;
  dir.stats.tx_bytes += bytes;
  m_tx_packets_->inc();
  m_tx_bytes_->inc(bytes);
  m_queue_bytes_->set(backlog_bytes + bytes);

  Node* peer = ends_[1 - index_of(from)];
  sim_.schedule_at(arrival, [peer, pkt = std::move(pkt), this]() mutable {
    if (up_) peer->deliver(std::move(pkt));
  });
  return true;
}

}  // namespace ddoshield::net
