// Point-to-point duplex link with finite rate, propagation delay, and a
// drop-tail buffer.
//
// Queueing is modelled with the standard fluid approximation: each
// direction tracks the time until which its transmitter is busy; the
// implied backlog in bytes is (busy_until - now) * rate / 8. A packet that
// would push the backlog past the configured buffer size is dropped. This
// reproduces the two behaviours the testbed needs from NS-3 links —
// serialization delay under load and loss under flood — at a fraction of
// the bookkeeping.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::obs {
class Counter;
class Gauge;
class FlightRecorder;
class LogLinearHistogram;
}

namespace ddoshield::net {

class Node;
class Simulator;

struct LinkConfig {
  double rate_bps = 100e6;                 // 100 Mbit/s default access link
  util::SimTime delay = util::SimTime::micros(500);
  std::uint32_t queue_bytes = 128 * 1024;  // per-direction drop-tail buffer
};

/// Per-direction counters, exposed for experiment harnesses. Conservation
/// holds per direction once the simulator drains:
///   offered  = tx_packets + dropped_packets
///   tx_packets = delivered_packets + lost_in_flight_packets (+ in flight)
struct LinkDirectionStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t dropped_packets = 0;  // rejected at ingress: queue, down, fault
  std::uint64_t dropped_bytes = 0;
  std::uint64_t fault_dropped_packets = 0;  // subset of dropped: injected faults
  std::uint64_t delivered_packets = 0;      // handed to the peer node
  std::uint64_t lost_in_flight_packets = 0; // link went down mid-propagation
  std::uint64_t corrupted_packets = 0;      // delivered with fault-mangled headers
};

/// Transient degradation injected by the testkit: probabilistic loss,
/// header corruption, and added latency/jitter on top of the configured
/// propagation delay. All randomness is drawn from a deterministic,
/// seed-derived stream so fault schedules replay exactly.
struct LinkFault {
  double drop_probability = 0.0;     // Bernoulli per offered packet
  double corrupt_probability = 0.0;  // Bernoulli per delivered packet
  util::SimTime extra_delay;         // added to every delivery
  util::SimTime jitter;              // uniform extra in [0, jitter)

  bool active() const {
    return drop_probability > 0.0 || corrupt_probability > 0.0 ||
           !extra_delay.is_zero() || !jitter.is_zero();
  }
};

class Link {
 public:
  /// Creates the link and registers an interface on both endpoints.
  /// The nodes must outlive the link; topology teardown is whole-network.
  Link(Simulator& sim, Node& a, Node& b, LinkConfig config);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Transmits `pkt` from `from` toward the opposite endpoint. Returns
  /// false if the drop-tail buffer rejected the packet.
  bool transmit(const Node& from, Packet pkt);

  /// Administrative state; a downed link drops everything (device churn).
  /// Packets already propagating when the link goes down are lost and
  /// accounted as lost_in_flight_packets on their sending direction.
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  /// Installs a fault profile on both directions; the seed derives the
  /// deterministic stream behind drop/corrupt/jitter draws.
  void set_fault(const LinkFault& fault, std::uint64_t seed);
  void clear_fault() { fault_ = LinkFault{}; }
  const LinkFault& fault() const { return fault_; }

  const LinkDirectionStats& stats_from(const Node& from) const;
  const LinkConfig& config() const { return config_; }
  Node& peer_of(const Node& n) const;

  /// Bytes currently implied queued in the transmitter leaving `from`
  /// (the fluid-model backlog at the simulator's current time). The obs
  /// sampler probes this for per-link queue-occupancy gauges.
  double queue_backlog_bytes(const Node& from) const;

 private:
  struct Direction {
    util::SimTime busy_until;
    LinkDirectionStats stats;
  };

  Direction& direction_from(const Node& from);
  int index_of(const Node& n) const;

  void corrupt_header(Packet& pkt);

  Simulator& sim_;
  Node* ends_[2];
  LinkConfig config_;
  Direction dirs_[2];
  bool up_ = true;
  LinkFault fault_;
  util::Rng fault_rng_{0};

  // Aggregate registry instruments, resolved once at construction and
  // shared by every link in the process.
  obs::Counter* m_tx_packets_;
  obs::Counter* m_tx_bytes_;
  obs::Counter* m_dropped_packets_;
  obs::Counter* m_dropped_bytes_;
  obs::Gauge* m_queue_bytes_;

  // Flight-recorder wiring: stage events for uid-sampled packets plus the
  // per-stage latency series they feed (queue wait, wire transit).
  obs::FlightRecorder* flight_;
  obs::LogLinearHistogram* lat_queue_ns_;
  obs::LogLinearHistogram* lat_transit_ns_;
};

}  // namespace ddoshield::net
