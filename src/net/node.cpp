#include "net/node.hpp"

#include <stdexcept>

#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace ddoshield::net {

namespace {
bool g_route_cache_enabled = true;

// Fibonacci multiplicative hash: star-topology addresses are dense
// (10.0.x.y), so low-bit masking alone would collide whole subnets into a
// handful of slots.
std::size_t route_cache_slot(std::uint32_t bits) {
  return static_cast<std::size_t>((bits * 0x9e3779b1u) >> 24);
}
}  // namespace

void Node::set_route_cache_enabled(bool on) { g_route_cache_enabled = on; }
bool Node::route_cache_enabled() { return g_route_cache_enabled; }

Node::Node(Simulator& sim, std::string name, Ipv4Address addr)
    : sim_{sim}, name_{std::move(name)}, addr_{addr} {
  port_rng_state_ ^= addr.bits() * 2654435761u;  // per-node port sequence
  if (port_rng_state_ == 0) port_rng_state_ = 0x6b8b4567;
  udp_ = std::make_unique<UdpHost>(*this);
  tcp_ = std::make_unique<TcpHost>(*this);
  flight_ = &obs::FlightRecorder::global();
  lat_deliver_ns_ = &obs::LatencyTracker::global().series("flight.net.deliver_lag_ns");
  auto& reg = obs::MetricsRegistry::global();
  m_acl_dropped_ = &reg.counter("net.acl_dropped");
  m_ratelimit_dropped_ = &reg.counter("net.ratelimit_dropped");
}

Node::~Node() = default;

std::size_t Node::attach_link(Link& link) {
  links_.push_back(&link);
  return links_.size() - 1;
}

void Node::add_route(Ipv4Address prefix, int prefix_len, std::size_t ifindex) {
  if (ifindex >= links_.size()) {
    throw std::out_of_range("Node::add_route: no such interface");
  }
  routes_.push_back(RouteEntry{prefix, prefix_len, ifindex});
  invalidate_route_cache();
}

void Node::set_default_route(std::size_t ifindex) {
  if (ifindex >= links_.size()) {
    throw std::out_of_range("Node::set_default_route: no such interface");
  }
  default_route_ = static_cast<int>(ifindex);
  invalidate_route_cache();
}

void Node::invalidate_route_cache() { route_cache_.reset(); }

int Node::route_lookup_scan(Ipv4Address dst) const {
  int best = -1;
  int best_len = -1;
  for (const auto& r : routes_) {
    if (dst.same_subnet(r.prefix, r.prefix_len) && r.prefix_len > best_len) {
      best = static_cast<int>(r.ifindex);
      best_len = r.prefix_len;
    }
  }
  if (best >= 0) return best;
  return default_route_;
}

int Node::route_lookup(Ipv4Address dst) const {
  if (!g_route_cache_enabled || routes_.size() < kRouteCacheMinRoutes) {
    return route_lookup_scan(dst);
  }
  if (!route_cache_) {
    route_cache_ = std::make_unique<RouteCacheEntry[]>(kRouteCacheSlots);
  }
  const std::uint64_t tag = std::uint64_t{dst.bits()} + 1;
  RouteCacheEntry& entry = route_cache_[route_cache_slot(dst.bits())];
  if (entry.tag != tag) {
    entry.tag = tag;
    entry.ifindex = route_lookup_scan(dst);
  }
  return entry.ifindex;
}

std::uint16_t Node::allocate_ephemeral_port() {
  // Randomised ephemeral allocation over 1024-65535, like modern stacks
  // (RFC 6056). IoT stacks vary, but none hand out a narrow contiguous
  // band per boot — and Mirai draws its flood source ports from the same
  // range, so the source port alone must not give an IDS a free label.
  port_rng_state_ ^= port_rng_state_ << 13;
  port_rng_state_ ^= port_rng_state_ >> 17;
  port_rng_state_ ^= port_rng_state_ << 5;
  return static_cast<std::uint16_t>(1024 + port_rng_state_ % 64512);
}

void Node::run_taps(const Packet& pkt, TapDirection dir) {
  for (const auto& tap : taps_) tap(pkt, dir);
}

void Node::send(Packet pkt) {
  if (pkt.src.is_unspecified()) pkt.src = addr_;
  pkt.sent_at = sim_.now();
  pkt.uid = sim_.next_packet_uid();

  const int ifindex = route_lookup(pkt.dst);
  if (ifindex < 0) {
    ++stats_.dropped_no_route;
    return;
  }
  ++stats_.sent_packets;
  run_taps(pkt, TapDirection::kSent);
  if (!links_[static_cast<std::size_t>(ifindex)]->transmit(*this, std::move(pkt))) {
    ++stats_.dropped_link;
  }
}

void Node::deliver(Packet pkt) {
  // Enforcement first: a filtered packet is dropped before taps, transports,
  // or forwarding see it, exactly like a hardware ACL/policer ahead of the
  // forwarding plane. Links already counted the delivery, so per-link
  // conservation is unaffected; the node-level stats and the global
  // counters carry the mitigation accounting instead.
  if (ingress_filter_ != nullptr) {
    switch (ingress_filter_->on_packet(pkt)) {
      case FilterVerdict::kAccept:
        break;
      case FilterVerdict::kDropAcl:
        ++stats_.dropped_acl;
        m_acl_dropped_->inc();
        return;
      case FilterVerdict::kDropRateLimit:
        ++stats_.dropped_ratelimit;
        m_ratelimit_dropped_->inc();
        return;
    }
  }

  if (pkt.dst == addr_) {
    ++stats_.received_packets;
    run_taps(pkt, TapDirection::kReceived);
    switch (pkt.proto) {
      case IpProto::kTcp:
        if (flight_->sampled(pkt.uid)) {
          const util::SimTime now = sim_.now();
          flight_->record(obs::FlightStage::kTcpDeliver, pkt.uid, now.ns());
          lat_deliver_ns_->observe(static_cast<std::uint64_t>((now - pkt.sent_at).ns()));
        }
        tcp_->deliver(pkt);
        break;
      case IpProto::kUdp:
        udp_->deliver(pkt);
        break;
    }
    return;
  }

  if (!forwarding_) return;  // not for us, not a router: drop

  if (pkt.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  pkt.ttl -= 1;

  const int ifindex = route_lookup(pkt.dst);
  if (ifindex < 0) {
    ++stats_.dropped_no_route;
    return;
  }
  ++stats_.forwarded_packets;
  run_taps(pkt, TapDirection::kForwarded);
  if (!links_[static_cast<std::size_t>(ifindex)]->transmit(*this, std::move(pkt))) {
    ++stats_.dropped_link;
  }
}

}  // namespace ddoshield::net
