#include "net/node.hpp"

#include <stdexcept>

#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/logging.hpp"

namespace ddoshield::net {

Node::Node(Simulator& sim, std::string name, Ipv4Address addr)
    : sim_{sim}, name_{std::move(name)}, addr_{addr} {
  port_rng_state_ ^= addr.bits() * 2654435761u;  // per-node port sequence
  if (port_rng_state_ == 0) port_rng_state_ = 0x6b8b4567;
  udp_ = std::make_unique<UdpHost>(*this);
  tcp_ = std::make_unique<TcpHost>(*this);
}

Node::~Node() = default;

std::size_t Node::attach_link(Link& link) {
  links_.push_back(&link);
  return links_.size() - 1;
}

void Node::add_route(Ipv4Address prefix, int prefix_len, std::size_t ifindex) {
  if (ifindex >= links_.size()) {
    throw std::out_of_range("Node::add_route: no such interface");
  }
  routes_.push_back(RouteEntry{prefix, prefix_len, ifindex});
}

void Node::set_default_route(std::size_t ifindex) {
  if (ifindex >= links_.size()) {
    throw std::out_of_range("Node::set_default_route: no such interface");
  }
  default_route_ = static_cast<int>(ifindex);
}

int Node::route_lookup(Ipv4Address dst) const {
  int best = -1;
  int best_len = -1;
  for (const auto& r : routes_) {
    if (dst.same_subnet(r.prefix, r.prefix_len) && r.prefix_len > best_len) {
      best = static_cast<int>(r.ifindex);
      best_len = r.prefix_len;
    }
  }
  if (best >= 0) return best;
  return default_route_;
}

std::uint16_t Node::allocate_ephemeral_port() {
  // Randomised ephemeral allocation over 1024-65535, like modern stacks
  // (RFC 6056). IoT stacks vary, but none hand out a narrow contiguous
  // band per boot — and Mirai draws its flood source ports from the same
  // range, so the source port alone must not give an IDS a free label.
  port_rng_state_ ^= port_rng_state_ << 13;
  port_rng_state_ ^= port_rng_state_ >> 17;
  port_rng_state_ ^= port_rng_state_ << 5;
  return static_cast<std::uint16_t>(1024 + port_rng_state_ % 64512);
}

void Node::run_taps(const Packet& pkt, TapDirection dir) {
  for (const auto& tap : taps_) tap(pkt, dir);
}

void Node::send(Packet pkt) {
  if (pkt.src.is_unspecified()) pkt.src = addr_;
  pkt.sent_at = sim_.now();
  pkt.uid = sim_.next_packet_uid();

  const int ifindex = route_lookup(pkt.dst);
  if (ifindex < 0) {
    ++stats_.dropped_no_route;
    return;
  }
  ++stats_.sent_packets;
  run_taps(pkt, TapDirection::kSent);
  if (!links_[static_cast<std::size_t>(ifindex)]->transmit(*this, std::move(pkt))) {
    ++stats_.dropped_link;
  }
}

void Node::deliver(Packet pkt) {
  if (pkt.dst == addr_) {
    ++stats_.received_packets;
    run_taps(pkt, TapDirection::kReceived);
    switch (pkt.proto) {
      case IpProto::kTcp:
        tcp_->deliver(pkt);
        break;
      case IpProto::kUdp:
        udp_->deliver(pkt);
        break;
    }
    return;
  }

  if (!forwarding_) return;  // not for us, not a router: drop

  if (pkt.ttl <= 1) {
    ++stats_.dropped_ttl;
    return;
  }
  pkt.ttl -= 1;

  const int ifindex = route_lookup(pkt.dst);
  if (ifindex < 0) {
    ++stats_.dropped_no_route;
    return;
  }
  ++stats_.forwarded_packets;
  run_taps(pkt, TapDirection::kForwarded);
  if (!links_[static_cast<std::size_t>(ifindex)]->transmit(*this, std::move(pkt))) {
    ++stats_.dropped_link;
  }
}

}  // namespace ddoshield::net
