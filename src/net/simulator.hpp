// Discrete-event simulation engine.
//
// A single Simulator instance owns the virtual clock and an ordered event
// queue. Components schedule closures; the engine pops them in (time,
// insertion-order) order, so simultaneous events run FIFO and runs are
// deterministic. Events can be cancelled through the returned handle —
// used heavily by TCP retransmission timers and churn schedules.
//
// Two interchangeable queue backends sit behind the same API:
//
//   * kCalendar (default) — a calendar queue: a wheel of "day" buckets,
//     each a small binary heap, covering a sliding window of simulated
//     time, with a spillover heap for events beyond the window. Near-term
//     events (link deliveries, app ticks — the bulk of the load) pay
//     O(log bucket_size) with bucket_size a few dozen, instead of
//     O(log total_pending) against hundreds of thousands of pending
//     events under flood.
//   * kBinaryHeap — the original single std::priority_queue, kept so the
//     testkit can replay one seed on both backends and assert
//     byte-identical event logs (both pop in exact (when, seq) order, so
//     execution is provably identical; the test pins it anyway).
//
// Event closures are stored in SmallFn inline buffers and hot-path
// callers use post()/post_at() (no cancellation token), so steady-state
// scheduling performs zero heap allocations; the owned PacketPool does
// the same for packets in flight (see packet_pool.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "net/packet_pool.hpp"
#include "util/sim_time.hpp"
#include "util/small_fn.hpp"

namespace ddoshield::obs {
class Counter;
class Gauge;
}

namespace ddoshield::net {

class Simulator;

enum class SchedulerKind { kCalendar, kBinaryHeap };

/// Cancellation handle for a scheduled event. Copyable; cancelling twice
/// or cancelling after the event ran is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_{std::move(cancelled)} {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  /// Event closures up to this capture size run allocation-free.
  using Callback = util::SmallFn<void(), 64>;

  explicit Simulator(SchedulerKind kind = default_scheduler());
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Process-wide default backend for simulators constructed without an
  /// explicit kind (Network, Testbed). The testkit's scheduler-equivalence
  /// test flips this around whole pipeline runs.
  static SchedulerKind default_scheduler();
  static void set_default_scheduler(SchedulerKind kind);
  SchedulerKind scheduler_kind() const { return kind_; }

  util::SimTime now() const { return now_; }

  /// Schedules fn to run `delay` after the current time. delay must be >= 0.
  EventHandle schedule(util::SimTime delay, Callback fn);

  /// Schedules fn at an absolute simulated time >= now().
  EventHandle schedule_at(util::SimTime when, Callback fn);

  /// Fire-and-forget variants: no cancellation handle, so no token
  /// allocation. The packet hot path (link deliveries) uses these.
  void post(util::SimTime delay, Callback fn);
  void post_at(util::SimTime when, Callback fn);

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events stamped exactly at `until` do run. Advances the clock to
  /// `until` even if the queue drained earlier, so periodic samplers
  /// observe a consistent end time.
  void run_until(util::SimTime until);

  /// Runs until the event queue is fully drained.
  void run_all();

  /// Drops every pending event (used by teardown in tests). Pool slots
  /// owned by dropped closures are reclaimed when the pool is destroyed.
  void clear();

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const { return pending_; }
  /// Alias of events_pending(), the name the obs sampler probes use.
  std::size_t pending_events() const { return pending_; }
  /// Deepest the event queue has ever been on this simulator.
  std::size_t queue_high_water() const { return queue_high_water_; }

  std::uint64_t events_cancelled() const { return events_cancelled_; }

  /// Times an executed event carried a timestamp earlier than the clock.
  /// Structurally impossible unless the queue ordering breaks; the testkit
  /// invariant checker asserts this stays zero.
  std::uint64_t time_regressions() const { return time_regressions_; }

  // --- calendar-queue introspection ---------------------------------------
  /// Wheel fast-forwards: the cursor jumped because every bucket drained.
  std::uint64_t calendar_rollovers() const { return calendar_.rollovers; }
  /// Events promoted from the spillover heap into wheel buckets.
  std::uint64_t calendar_migrations() const { return calendar_.migrations; }
  /// Deepest any single bucket has been.
  std::size_t calendar_bucket_high_water() const { return calendar_.bucket_high_water; }
  /// Events currently in the spillover heap (beyond the wheel's window).
  std::size_t calendar_overflow_pending() const { return calendar_.overflow.size(); }

  /// Restores the seed implementation's per-event allocation profile:
  /// every insert boxes its closure on the heap (the std::function
  /// behaviour) and allocates a cancellation token even for post()ed
  /// events. Execution order is unchanged — this is the "legacy" cost
  /// model bench_scale's before/after comparison measures against.
  void set_alloc_compat(bool on) { alloc_compat_ = on; }
  bool alloc_compat() const { return alloc_compat_; }

  /// Hands out process-unique packet uids.
  std::uint64_t next_packet_uid() { return ++packet_uid_; }

  /// Free-list pool for packets in flight on this simulator's links.
  PacketPool& packet_pool() { return packet_pool_; }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t seq = 0;
    Callback fn;
    std::shared_ptr<bool> cancelled;  // null for post()/post_at() events
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap on time
      return a.seq > b.seq;                          // FIFO among equals
    }
  };
  // Event heaps are plain vectors driven by std::push_heap/std::pop_heap:
  // std::priority_queue cannot release ownership of its top element, which
  // would force a copy per pop — untenable with move-only SmallFn closures.
  using EventHeap = std::vector<Event>;

  // Calendar geometry: 4096 one-millisecond days cover a ~4.1 s window —
  // wide enough that link serialization, app ticks, and first-shot RTO
  // timers all land on the wheel; only long retransmission backoffs and
  // scenario-scale timers spill over. Ordering is exact regardless of
  // geometry (every pop takes the global (when, seq) minimum), so these
  // constants are pure tuning.
  static constexpr std::int64_t kDayNs = 1'000'000;  // 1 ms per bucket
  static constexpr std::size_t kBuckets = 4096;      // power of two

  struct CalendarState {
    std::vector<EventHeap> buckets;  // each kept as a binary heap
    EventHeap overflow;              // also a heap: events beyond the window
    std::int64_t base_day = 0;  // wheel covers days [base_day, base_day + kBuckets)
    std::int64_t hint_day = 0;  // first possibly non-empty day (>= base_day)
    std::size_t buffered = 0;   // events currently in buckets
    std::uint64_t rollovers = 0;
    std::uint64_t migrations = 0;
    std::size_t bucket_high_water = 0;
  };

  static std::int64_t day_of(util::SimTime t) { return t.ns() / kDayNs; }

  static void heap_push(EventHeap& heap, Event ev);
  static Event heap_pop(EventHeap& heap);

  void insert(Event ev);
  void insert_calendar(Event ev);
  /// Promotes spillover events now inside the wheel window into buckets.
  void migrate_overflow();
  /// Minimum pending event's timestamp; pending_ must be non-zero.
  util::SimTime next_when();
  void execute_next();
  void flush_stats();

  SchedulerKind kind_;
  bool alloc_compat_ = false;
  util::SimTime now_;
  EventHeap heap_;  // kBinaryHeap backend
  CalendarState calendar_;
  std::size_t pending_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::uint64_t packet_uid_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t time_regressions_ = 0;

  PacketPool packet_pool_;

  // The per-event hot path touches only the plain tallies above (next_seq_
  // doubles as the scheduled count); deltas are published to the shared
  // registry counters at run boundaries so instrumentation stays off the
  // event loop. The registry accumulates across simulator instances.
  std::uint64_t flushed_scheduled_ = 0;
  std::uint64_t flushed_executed_ = 0;
  std::uint64_t flushed_cancelled_ = 0;
  std::uint64_t flushed_rollovers_ = 0;
  std::uint64_t flushed_migrations_ = 0;
  obs::Counter* m_scheduled_;
  obs::Counter* m_executed_;
  obs::Counter* m_cancelled_;
  obs::Counter* m_rollovers_;
  obs::Counter* m_migrations_;
  obs::Gauge* m_bucket_occupancy_;
};

}  // namespace ddoshield::net
