// Discrete-event simulation engine.
//
// A single Simulator instance owns the virtual clock and an ordered event
// queue. Components schedule closures; the engine pops them in (time,
// insertion-order) order, so simultaneous events run FIFO and runs are
// deterministic. Events can be cancelled through the returned handle —
// used heavily by TCP retransmission timers and churn schedules.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/sim_time.hpp"

namespace ddoshield::obs {
class Counter;
}

namespace ddoshield::net {

class Simulator;

/// Cancellation handle for a scheduled event. Copyable; cancelling twice
/// or cancelling after the event ran is a harmless no-op.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  bool pending() const;

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> cancelled) : cancelled_{std::move(cancelled)} {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  util::SimTime now() const { return now_; }

  /// Schedules fn to run `delay` after the current time. delay must be >= 0.
  EventHandle schedule(util::SimTime delay, std::function<void()> fn);

  /// Schedules fn at an absolute simulated time >= now().
  EventHandle schedule_at(util::SimTime when, std::function<void()> fn);

  /// Runs events until the queue drains or the clock passes `until`.
  /// Events stamped exactly at `until` do run. Advances the clock to
  /// `until` even if the queue drained earlier, so periodic samplers
  /// observe a consistent end time.
  void run_until(util::SimTime until);

  /// Runs until the event queue is fully drained.
  void run_all();

  /// Drops every pending event (used by teardown in tests).
  void clear();

  std::uint64_t events_executed() const { return events_executed_; }
  std::size_t events_pending() const { return queue_.size(); }
  /// Alias of events_pending(), the name the obs sampler probes use.
  std::size_t pending_events() const { return queue_.size(); }
  /// Deepest the event queue has ever been on this simulator.
  std::size_t queue_high_water() const { return queue_high_water_; }

  std::uint64_t events_cancelled() const { return events_cancelled_; }

  /// Times an executed event carried a timestamp earlier than the clock.
  /// Structurally impossible unless the queue ordering breaks; the testkit
  /// invariant checker asserts this stays zero.
  std::uint64_t time_regressions() const { return time_regressions_; }

  /// Hands out process-unique packet uids.
  std::uint64_t next_packet_uid() { return ++packet_uid_; }

 private:
  struct Event {
    util::SimTime when;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct EventOrder {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;  // min-heap on time
      return a.seq > b.seq;                          // FIFO among equals
    }
  };

  void execute_next();
  void flush_stats();

  util::SimTime now_;
  std::priority_queue<Event, std::vector<Event>, EventOrder> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_executed_ = 0;
  std::uint64_t events_cancelled_ = 0;
  std::uint64_t packet_uid_ = 0;
  std::size_t queue_high_water_ = 0;
  std::uint64_t time_regressions_ = 0;

  // The per-event hot path touches only the plain tallies above (next_seq_
  // doubles as the scheduled count); deltas are published to the shared
  // registry counters at run boundaries so instrumentation stays off the
  // event loop. The registry accumulates across simulator instances.
  std::uint64_t flushed_scheduled_ = 0;
  std::uint64_t flushed_executed_ = 0;
  std::uint64_t flushed_cancelled_ = 0;
  obs::Counter* m_scheduled_;
  obs::Counter* m_executed_;
  obs::Counter* m_cancelled_;
};

}  // namespace ddoshield::net
