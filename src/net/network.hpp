// Network: owns the simulator, nodes, and links of one topology, plus a
// builder for the testbed's canonical star layout (devices and attacker on
// access links into a router, router uplinked to the TServer and IDS tap).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"

namespace ddoshield::net {

class Network {
 public:
  Network() = default;
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& simulator() { return sim_; }

  /// Creates a node owned by the network.
  Node& add_node(const std::string& name, Ipv4Address addr);

  /// Creates a duplex link between two owned nodes.
  Link& add_link(Node& a, Node& b, LinkConfig config = {});

  Node* find_node(const std::string& name);
  std::size_t node_count() const { return nodes_.size(); }
  Node& node_at(std::size_t i) { return *nodes_.at(i); }
  std::size_t link_count() const { return links_.size(); }
  Link& link_at(std::size_t i) { return *links_.at(i); }

 private:
  Simulator sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
};

/// The testbed's standard topology:
///
///   dev_0 ... dev_{n-1}  attacker            (10.0.0.0/24 side)
///        \   |   /        |
///          router ———————— tserver           (10.0.1.1)
///
/// Every leaf gets its own access link into the router; the router-TServer
/// uplink is the bottleneck the floods congest, and the node the capture
/// tap watches. Mirrors DDoSim's ghost-node bridge layout.
struct StarTopology {
  Node* router = nullptr;
  Node* tserver = nullptr;
  Node* attacker = nullptr;
  std::vector<Node*> devices;
  Link* uplink = nullptr;  // router <-> tserver
};

struct StarTopologyConfig {
  std::size_t device_count = 8;
  LinkConfig access_link{.rate_bps = 20e6,
                         .delay = util::SimTime::millis(2),
                         .queue_bytes = 64 * 1024};
  LinkConfig uplink{.rate_bps = 100e6,
                    .delay = util::SimTime::millis(1),
                    .queue_bytes = 256 * 1024};
};

StarTopology build_star_topology(Network& net, const StarTopologyConfig& config);

}  // namespace ddoshield::net
