// A simulated host or router.
//
// Each Node owns one IPv4 address, a set of link interfaces, a static
// routing table, and its transport layers (UdpHost, TcpHost). Hosts with
// forwarding enabled act as routers. Taps observe every packet the node
// sends or receives — the capture module's attachment point, playing the
// role of the paper's Wireshark/pcap probe.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"

namespace ddoshield::obs {
class Counter;
class FlightRecorder;
class LogLinearHistogram;
}

namespace ddoshield::net {

class TcpHost;
class UdpHost;

enum class TapDirection { kSent, kReceived, kForwarded };

using TapFn = std::function<void(const Packet&, TapDirection)>;

/// What an ingress filter decided about an arriving packet. The drop
/// variants are charged to distinct node stats and obs counters so packet
/// conservation stays checkable with enforcement enabled.
enum class FilterVerdict : std::uint8_t {
  kAccept = 0,
  kDropAcl,        // matched an installed blocklist rule
  kDropRateLimit,  // exceeded the source's token bucket
};

/// Enforcement hook consulted before any local delivery or forwarding —
/// the simulated analogue of an edge router's ACL/policer stage. Installed
/// by the mitigation subsystem; a node without a filter pays one branch.
class IngressFilter {
 public:
  virtual ~IngressFilter() = default;
  virtual FilterVerdict on_packet(const Packet& pkt) = 0;
};

struct NodeStats {
  std::uint64_t sent_packets = 0;
  std::uint64_t received_packets = 0;
  std::uint64_t forwarded_packets = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_ttl = 0;
  std::uint64_t dropped_link = 0;
  std::uint64_t dropped_acl = 0;        // ingress filter: blocklist rule
  std::uint64_t dropped_ratelimit = 0;  // ingress filter: token bucket
};

class Node {
 public:
  Node(Simulator& sim, std::string name, Ipv4Address addr);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  const std::string& name() const { return name_; }
  Ipv4Address address() const { return addr_; }
  Simulator& simulator() { return sim_; }

  // --- topology ----------------------------------------------------------
  /// Registered by Link's constructor; returns the new interface index.
  std::size_t attach_link(Link& link);
  std::size_t interface_count() const { return links_.size(); }
  Link& link_at(std::size_t ifindex) { return *links_.at(ifindex); }

  void set_forwarding(bool on) { forwarding_ = on; }
  bool forwarding() const { return forwarding_; }

  // --- routing ------------------------------------------------------------
  void add_route(Ipv4Address prefix, int prefix_len, std::size_t ifindex);
  void set_default_route(std::size_t ifindex);
  /// Longest-prefix-match; returns -1 if no route exists.
  int route_lookup(Ipv4Address dst) const;

  /// Process-wide switch for the per-node exact-match route cache. The
  /// router's table holds one /32 per device, so the longest-prefix scan is
  /// O(devices) per forwarded packet; the cache memoises dst -> ifindex in a
  /// direct-mapped array with identical lookup results. Default on;
  /// bench_scale's legacy mode turns it off to reproduce the original
  /// per-packet scan cost.
  static void set_route_cache_enabled(bool on);
  static bool route_cache_enabled();

  // --- datapath -----------------------------------------------------------
  /// Sends a packet originated at this node. Stamps uid/timestamp; the
  /// source address defaults to this node's address when unspecified,
  /// but a caller-set source is honoured (address spoofing by bots).
  void send(Packet pkt);

  /// Entry point from links: local delivery or forwarding.
  void deliver(Packet pkt);

  // --- transports -----------------------------------------------------------
  UdpHost& udp() { return *udp_; }
  TcpHost& tcp() { return *tcp_; }

  /// Ephemeral source-port allocator (1024-65535, wraps around).
  std::uint16_t allocate_ephemeral_port();

  // --- enforcement -----------------------------------------------------------
  /// Installs (or, with nullptr, removes) the ingress filter consulted at
  /// the top of deliver(). The filter must outlive its installation.
  void set_ingress_filter(IngressFilter* filter) { ingress_filter_ = filter; }
  IngressFilter* ingress_filter() const { return ingress_filter_; }

  // --- observation ----------------------------------------------------------
  void add_tap(TapFn tap) { taps_.push_back(std::move(tap)); }
  const NodeStats& stats() const { return stats_; }

 private:
  struct RouteEntry {
    Ipv4Address prefix;
    int prefix_len;
    std::size_t ifindex;
  };

  struct RouteCacheEntry {
    std::uint64_t tag = 0;  // dst address bits + 1; 0 marks an empty slot
    int ifindex = -1;
  };
  static constexpr std::size_t kRouteCacheSlots = 256;
  /// Routing tables smaller than this skip the cache entirely: leaf nodes
  /// hold one or two routes, and for them the scan is already cheaper than
  /// a cache probe plus 4 KiB of cold cache lines per node.
  static constexpr std::size_t kRouteCacheMinRoutes = 8;

  int route_lookup_scan(Ipv4Address dst) const;
  void invalidate_route_cache();

  void run_taps(const Packet& pkt, TapDirection dir);

  Simulator& sim_;
  std::string name_;
  Ipv4Address addr_;
  std::vector<Link*> links_;
  std::vector<RouteEntry> routes_;
  mutable std::unique_ptr<RouteCacheEntry[]> route_cache_;  // lazily built
  int default_route_ = -1;
  bool forwarding_ = false;
  std::uint32_t port_rng_state_ = 0x6b8b4567;
  std::vector<TapFn> taps_;
  NodeStats stats_;
  IngressFilter* ingress_filter_ = nullptr;
  std::unique_ptr<UdpHost> udp_;
  std::unique_ptr<TcpHost> tcp_;
  obs::Counter* m_acl_dropped_;
  obs::Counter* m_ratelimit_dropped_;

  // Flight-recorder wiring for the local-delivery stage (send-to-deliver
  // lag of uid-sampled packets terminating at this node).
  obs::FlightRecorder* flight_;
  obs::LogLinearHistogram* lat_deliver_ns_;
};

}  // namespace ddoshield::net
