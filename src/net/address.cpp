#include "net/address.hpp"

#include <sstream>
#include <stdexcept>

namespace ddoshield::net {

Ipv4Address Ipv4Address::parse(const std::string& text) {
  std::uint32_t parts[4];
  std::size_t idx = 0;
  std::size_t pos = 0;
  while (idx < 4) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      throw std::invalid_argument("Ipv4Address::parse: bad address '" + text + "'");
    }
    std::uint32_t v = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      v = v * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      ++pos;
      if (++digits > 3 || v > 255) {
        throw std::invalid_argument("Ipv4Address::parse: octet out of range in '" + text + "'");
      }
    }
    parts[idx++] = v;
    if (idx < 4) {
      if (pos >= text.size() || text[pos] != '.') {
        throw std::invalid_argument("Ipv4Address::parse: expected '.' in '" + text + "'");
      }
      ++pos;
    }
  }
  if (pos != text.size()) {
    throw std::invalid_argument("Ipv4Address::parse: trailing characters in '" + text + "'");
  }
  return Ipv4Address{static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                     static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3])};
}

std::string Ipv4Address::to_string() const {
  std::ostringstream os;
  os << ((bits_ >> 24) & 0xFF) << '.' << ((bits_ >> 16) & 0xFF) << '.'
     << ((bits_ >> 8) & 0xFF) << '.' << (bits_ & 0xFF);
  return os.str();
}

std::string Endpoint::to_string() const {
  return addr.to_string() + ":" + std::to_string(port);
}

}  // namespace ddoshield::net
