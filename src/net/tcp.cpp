#include "net/tcp.hpp"

#include <algorithm>
#include <stdexcept>

#include "net/node.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace ddoshield::net {

namespace {

// 32-bit sequence-space comparisons (RFC 1982 style).
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_leq(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

constexpr std::string_view kLog = "tcp";

}  // namespace

std::string to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

std::string to_string(TcpCloseReason r) {
  switch (r) {
    case TcpCloseReason::kGracefulClose: return "graceful";
    case TcpCloseReason::kReset: return "reset";
    case TcpCloseReason::kConnectTimeout: return "connect-timeout";
    case TcpCloseReason::kRetransmitLimit: return "retransmit-limit";
    case TcpCloseReason::kAborted: return "aborted";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// TcpConnection
// ---------------------------------------------------------------------------

TcpConnection::TcpConnection(TcpHost& host, Endpoint local, Endpoint remote,
                             TrafficOrigin origin)
    : host_{host},
      sim_{host.node().simulator()},
      local_{local},
      remote_{remote},
      origin_{origin},
      cfg_{host.config()} {
  cwnd_ = cfg_.initial_cwnd_segments * cfg_.mss;
  ssthresh_ = cfg_.receive_window;
}

void TcpConnection::start_connect() {
  iss_ = host_.random_iss();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  state_ = TcpState::kSynSent;
  send_segment(TcpFlags::kSyn, iss_, 0, {}, false);
  arm_retransmit_timer(cfg_.syn_rto);
}

void TcpConnection::start_accept(std::uint32_t peer_iss) {
  irs_ = peer_iss;
  rcv_nxt_ = peer_iss + 1;
  iss_ = host_.random_iss();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  state_ = TcpState::kSynRcvd;
  send_segment(TcpFlags::kSyn | TcpFlags::kAck, iss_, 0, {}, false);
  arm_retransmit_timer(cfg_.syn_rto);
}

void TcpConnection::start_cookie_accept(std::uint32_t peer_iss, std::uint32_t cookie_iss) {
  // The handshake already happened statelessly: our SYN-ACK carried the
  // cookie as ISS and the peer's ACK proved it arrived. Adopt the cookie
  // as this side's sequence origin and go straight to ESTABLISHED.
  irs_ = peer_iss;
  rcv_nxt_ = peer_iss + 1;
  iss_ = cookie_iss;
  snd_una_ = cookie_iss + 1;
  snd_nxt_ = cookie_iss + 1;
  state_ = TcpState::kEstablished;
  established_at_ = sim_.now();
  host_.m_handshakes_->inc();
}

void TcpConnection::send(std::uint32_t bytes, std::string app_data) {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait) {
    throw std::logic_error("TcpConnection::send: not writable in state " +
                           to_string(state_));
  }
  if (fin_queued_) {
    throw std::logic_error("TcpConnection::send: already closed for writing");
  }
  // Segment at MSS; the app message string rides on the first segment.
  std::uint32_t remaining = bytes;
  bool first = true;
  do {
    Segment seg;
    seg.len = std::min(remaining, cfg_.mss);
    if (first) seg.app_data = std::move(app_data);
    first = false;
    remaining -= seg.len;
    unsent_.push_back(std::move(seg));
  } while (remaining > 0);
  try_transmit();
}

void TcpConnection::close() {
  switch (state_) {
    case TcpState::kSynSent:
      finish(TcpCloseReason::kAborted);
      return;
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      enqueue_fin();
      return;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      enqueue_fin();
      return;
    default:
      return;  // already closing or closed
  }
}

void TcpConnection::abort() {
  if (finished_) return;
  if (state_ != TcpState::kSynSent && state_ != TcpState::kClosed) {
    send_segment(TcpFlags::kRst | TcpFlags::kAck, snd_nxt_, 0, {}, false);
  }
  finish(TcpCloseReason::kAborted);
}

void TcpConnection::enqueue_fin() {
  if (fin_queued_) return;
  fin_queued_ = true;
  Segment seg;
  seg.fin = true;
  unsent_.push_back(std::move(seg));
  try_transmit();
}

void TcpConnection::send_segment(std::uint8_t flags, std::uint32_t seq, std::uint32_t len,
                                 std::string app_data, bool count_payload) {
  Packet pkt;
  pkt.src = local_.addr;
  pkt.src_port = local_.port;
  pkt.dst = remote_.addr;
  pkt.dst_port = remote_.port;
  pkt.proto = IpProto::kTcp;
  pkt.tcp_flags = flags;
  pkt.seq = seq;
  // ACK is meaningful once we have seen the peer's ISS.
  if ((flags & TcpFlags::kAck) != 0) pkt.ack = rcv_nxt_;
  pkt.payload_bytes = len;
  pkt.app_data = std::move(app_data);
  pkt.origin = origin_;
  pkt.stack_tcp = true;
  if (count_payload) bytes_sent_ += len;
  host_.node().send(std::move(pkt));
}

void TcpConnection::send_ack() {
  send_segment(TcpFlags::kAck, snd_nxt_, 0, {}, false);
}

void TcpConnection::try_transmit() {
  while (!unsent_.empty()) {
    Segment& head = unsent_.front();
    const std::uint32_t in_flight = snd_nxt_ - snd_una_;
    if (!head.fin && in_flight + head.len > cwnd_) break;

    Segment seg = std::move(head);
    unsent_.pop_front();
    seg.seq = snd_nxt_;
    if (seg.fin) {
      fin_sent_ = true;
      snd_nxt_ += 1;  // FIN consumes one sequence number
      send_segment(TcpFlags::kFin | TcpFlags::kAck, seg.seq, 0, {}, false);
    } else {
      snd_nxt_ += seg.len;
      send_segment(TcpFlags::kAck | TcpFlags::kPsh, seg.seq, seg.len, seg.app_data);
    }
    inflight_.push_back(std::move(seg));
  }
  if (!inflight_.empty() && !rto_timer_.pending()) {
    arm_retransmit_timer(cfg_.base_rto);
  }
}

void TcpConnection::arm_retransmit_timer(util::SimTime rto) {
  rto_timer_.cancel();
  // Exponential backoff on consecutive retries.
  util::SimTime backed_off = rto;
  for (int i = 0; i < retry_count_; ++i) backed_off = backed_off * 2;
  auto self = weak_from_this();
  rto_timer_ = sim_.schedule(backed_off, [self]() {
    if (auto conn = self.lock()) conn->on_retransmit_timeout();
  });
}

void TcpConnection::on_retransmit_timeout() {
  if (finished_) return;

  if (state_ == TcpState::kSynSent) {
    if (retry_count_ >= cfg_.max_syn_retries) {
      finish(TcpCloseReason::kConnectTimeout);
      return;
    }
    ++retry_count_;
    ++retransmissions_;
    host_.m_retransmits_->inc();
    send_segment(TcpFlags::kSyn, iss_, 0, {}, false);
    arm_retransmit_timer(cfg_.syn_rto);
    return;
  }

  if (state_ == TcpState::kSynRcvd) {
    if (retry_count_ >= cfg_.max_synack_retries) {
      // Half-open embryo gave up: free the backlog slot silently, exactly
      // like a kernel reaping an unanswered SYN-ACK.
      finish(TcpCloseReason::kConnectTimeout);
      return;
    }
    ++retry_count_;
    ++retransmissions_;
    host_.m_retransmits_->inc();
    send_segment(TcpFlags::kSyn | TcpFlags::kAck, iss_, 0, {}, false);
    arm_retransmit_timer(cfg_.syn_rto);
    return;
  }

  if (inflight_.empty()) return;
  if (retry_count_ >= cfg_.max_data_retries) {
    finish(TcpCloseReason::kRetransmitLimit);
    return;
  }
  ++retry_count_;
  ++retransmissions_;
  host_.m_retransmits_->inc();
  // Multiplicative decrease, then retransmit the oldest unacked segment.
  ssthresh_ = std::max(cwnd_ / 2, 2 * cfg_.mss);
  cwnd_ = cfg_.mss;
  const Segment& seg = inflight_.front();
  if (seg.fin) {
    send_segment(TcpFlags::kFin | TcpFlags::kAck, seg.seq, 0, {}, false);
  } else {
    send_segment(TcpFlags::kAck | TcpFlags::kPsh, seg.seq, seg.len, seg.app_data, false);
  }
  arm_retransmit_timer(cfg_.base_rto);
}

void TcpConnection::handle_ack(std::uint32_t ack) {
  if (!seq_lt(snd_una_, ack) || !seq_leq(ack, snd_nxt_)) return;  // stale or absurd
  snd_una_ = ack;
  retry_count_ = 0;

  while (!inflight_.empty()) {
    const Segment& seg = inflight_.front();
    const std::uint32_t seg_end = seg.seq + (seg.fin ? 1 : seg.len);
    if (!seq_leq(seg_end, ack)) break;
    // Congestion window growth per fully-acked segment.
    if (cwnd_ < ssthresh_) {
      cwnd_ += cfg_.mss;  // slow start
    } else {
      cwnd_ += std::max(1u, cfg_.mss * cfg_.mss / cwnd_);  // congestion avoidance
    }
    cwnd_ = std::min(cwnd_, cfg_.receive_window);
    inflight_.pop_front();
  }

  rto_timer_.cancel();
  if (!inflight_.empty()) arm_retransmit_timer(cfg_.base_rto);

  try_transmit();

  // FIN-acknowledgement driven transitions.
  if (fin_sent_ && inflight_.empty() && unsent_.empty() && snd_una_ == snd_nxt_) {
    switch (state_) {
      case TcpState::kFinWait1:
        state_ = TcpState::kFinWait2;
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        finish(TcpCloseReason::kGracefulClose);
        break;
      default:
        break;
    }
  }
}

void TcpConnection::accept_payload(const Packet& pkt) {
  if (pkt.payload_bytes == 0) return;
  if (pkt.seq == rcv_nxt_) {
    rcv_nxt_ += pkt.payload_bytes;
    bytes_received_ += pkt.payload_bytes;
    if (on_data_) on_data_(pkt.payload_bytes, pkt.app_data);
    deliver_in_order();
    // Delayed ACK (RFC 1122): acknowledge every second in-order segment
    // immediately; hold the odd ones briefly like real stacks do.
    if (++delayed_ack_pending_ >= 2) {
      delayed_ack_pending_ = 0;
      delack_timer_.cancel();
      send_ack();
    } else {
      auto self = weak_from_this();
      delack_timer_.cancel();
      delack_timer_ = sim_.schedule(util::SimTime::millis(40), [self] {
        if (auto conn = self.lock()) {
          conn->delayed_ack_pending_ = 0;
          conn->send_ack();
        }
      });
    }
  } else if (seq_lt(rcv_nxt_, pkt.seq)) {
    Segment seg;
    seg.seq = pkt.seq;
    seg.len = pkt.payload_bytes;
    seg.app_data = pkt.app_data;
    out_of_order_.emplace(pkt.seq, std::move(seg));
    send_ack();  // duplicate ACK signals the gap
  } else {
    send_ack();  // old retransmission
  }
}

void TcpConnection::deliver_in_order() {
  auto it = out_of_order_.begin();
  while (it != out_of_order_.end() && seq_leq(it->first, rcv_nxt_)) {
    if (it->first == rcv_nxt_) {
      rcv_nxt_ += it->second.len;
      bytes_received_ += it->second.len;
      if (on_data_) on_data_(it->second.len, it->second.app_data);
    }
    it = out_of_order_.erase(it);
    it = out_of_order_.begin();
  }
}

void TcpConnection::on_segment(const Packet& pkt) {
  if (finished_) return;
  auto self = shared_from_this();  // keep alive across callbacks

  if (pkt.has_flag(TcpFlags::kRst)) {
    if (state_ == TcpState::kSynRcvd || state_ == TcpState::kSynSent) {
      finish(TcpCloseReason::kReset);
    } else if (state_ != TcpState::kClosed) {
      finish(TcpCloseReason::kReset);
    }
    return;
  }

  switch (state_) {
    case TcpState::kSynSent: {
      if (pkt.has_flag(TcpFlags::kSyn) && pkt.has_flag(TcpFlags::kAck) &&
          pkt.ack == snd_nxt_) {
        irs_ = pkt.seq;
        rcv_nxt_ = pkt.seq + 1;
        snd_una_ = pkt.ack;
        retry_count_ = 0;
        rto_timer_.cancel();
        state_ = TcpState::kEstablished;
        established_at_ = sim_.now();
        host_.m_handshakes_->inc();
        send_ack();
        if (on_connected_) on_connected_();
        try_transmit();
      }
      return;
    }
    case TcpState::kSynRcvd: {
      if (pkt.has_flag(TcpFlags::kAck) && pkt.ack == snd_nxt_) {
        rto_timer_.cancel();
        retry_count_ = 0;
        state_ = TcpState::kEstablished;
        established_at_ = sim_.now();
        host_.m_handshakes_->inc();
        host_.notify_established(*this);
        // The completing ACK may already carry data.
        accept_payload(pkt);
        if (pkt.has_flag(TcpFlags::kFin)) {
          peer_fin_seq_known_ = true;
          peer_fin_seq_ = pkt.seq + pkt.payload_bytes;
        }
      }
      return;
    }
    case TcpState::kEstablished:
    case TcpState::kFinWait1:
    case TcpState::kFinWait2:
    case TcpState::kClosing:
    case TcpState::kCloseWait:
    case TcpState::kLastAck: {
      if (pkt.has_flag(TcpFlags::kAck)) handle_ack(pkt.ack);
      if (finished_) return;
      accept_payload(pkt);
      if (pkt.has_flag(TcpFlags::kFin)) {
        peer_fin_seq_known_ = true;
        peer_fin_seq_ = pkt.seq + pkt.payload_bytes;
      }
      // Consume the peer's FIN only once all data before it is in.
      if (peer_fin_seq_known_ && rcv_nxt_ == peer_fin_seq_) {
        peer_fin_seq_known_ = false;
        rcv_nxt_ += 1;
        send_ack();
        switch (state_) {
          case TcpState::kEstablished:
            state_ = TcpState::kCloseWait;
            if (on_peer_fin_) on_peer_fin_();
            break;
          case TcpState::kFinWait1:
            state_ = fin_sent_ && snd_una_ == snd_nxt_ ? TcpState::kTimeWait
                                                       : TcpState::kClosing;
            if (state_ == TcpState::kTimeWait) enter_time_wait();
            break;
          case TcpState::kFinWait2:
            enter_time_wait();
            break;
          default:
            break;
        }
      }
      return;
    }
    case TcpState::kTimeWait: {
      // ACK retransmitted FINs.
      if (pkt.has_flag(TcpFlags::kFin)) send_ack();
      return;
    }
    default:
      return;
  }
}

void TcpConnection::enter_time_wait() {
  state_ = TcpState::kTimeWait;
  auto self = weak_from_this();
  time_wait_timer_ = sim_.schedule(cfg_.time_wait, [self]() {
    if (auto conn = self.lock()) conn->finish(TcpCloseReason::kGracefulClose);
  });
}

void TcpConnection::finish(TcpCloseReason reason) {
  if (finished_) return;
  finished_ = true;
  rto_timer_.cancel();
  time_wait_timer_.cancel();
  delack_timer_.cancel();
  const TcpState prior = state_;
  state_ = TcpState::kClosed;
  if (auto listener = parent_listener_.lock(); listener && prior == TcpState::kSynRcvd) {
    if (listener->half_open_count_ > 0) --listener->half_open_count_;
  }
  auto self = shared_from_this();  // survive map erasure below
  host_.remove_connection(*this);
  if (on_closed_) on_closed_(reason);
}

// ---------------------------------------------------------------------------
// TcpListener
// ---------------------------------------------------------------------------

void TcpListener::close() { open_ = false; }

// ---------------------------------------------------------------------------
// TcpHost
// ---------------------------------------------------------------------------

TcpHost::TcpHost(Node& node, TcpConfig cfg) : node_{node}, cfg_{cfg} {
  auto& reg = obs::MetricsRegistry::global();
  m_handshakes_ = &reg.counter("net.tcp.handshakes");
  m_retransmits_ = &reg.counter("net.tcp.retransmits");
  m_rst_sent_ = &reg.counter("net.tcp.rst_sent");
  m_syn_cookies_sent_ = &reg.counter("net.tcp.syn_cookies_sent");
  m_syn_cookies_accepted_ = &reg.counter("net.tcp.syn_cookies_accepted");
  m_syn_cookies_rejected_ = &reg.counter("net.tcp.syn_cookies_rejected");
  m_active_connections_ = &reg.gauge("net.tcp.active_connections");
  // Deterministic per-host secret: a fixed constant mixed with the host
  // address. Real stacks draw this from the CSPRNG at boot; here same-seed
  // reproducibility is the point, and within a run the secret is exactly as
  // unguessable to simulated peers as a random one.
  cookie_secret_ = 0x9e3779b97f4a7c15ull ^ (std::uint64_t{node.address().bits()} << 17);
}

void TcpHost::set_syn_cookies(bool on, std::size_t watermark) {
  cfg_.syn_cookies = on;
  if (watermark != 0) cfg_.syn_cookie_watermark = watermark;
}

std::uint32_t TcpHost::syn_cookie_isn(Ipv4Address saddr, Ipv4Address daddr,
                                      std::uint16_t sport, std::uint16_t dport,
                                      std::uint32_t client_iss) const {
  // SplitMix64-style avalanche over the 4-tuple + client ISN + secret —
  // the same shape as secure_tcp_seq()'s siphash over (saddr, daddr,
  // sport, dport, secret), collapsed to one mixer because simulated peers
  // cannot mount key-recovery attacks.
  std::uint64_t h = cookie_secret_;
  h ^= (std::uint64_t{saddr.bits()} << 32) | daddr.bits();
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h ^= (std::uint64_t{sport} << 48) | (std::uint64_t{dport} << 32) | client_iss;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  h ^= h >> 31;
  return static_cast<std::uint32_t>(h);
}

void TcpHost::send_syn_cookie(const Packet& pkt, const TcpListener& listener) {
  ++syn_cookies_sent_;
  m_syn_cookies_sent_->inc();
  Packet synack;
  synack.src = node_.address();
  synack.src_port = pkt.dst_port;
  synack.dst = pkt.src;
  synack.dst_port = pkt.src_port;
  synack.proto = IpProto::kTcp;
  synack.tcp_flags = TcpFlags::kSyn | TcpFlags::kAck;
  synack.seq = syn_cookie_isn(pkt.src, pkt.dst, pkt.src_port, pkt.dst_port, pkt.seq);
  synack.ack = pkt.seq + 1;
  // Same flow-based ground truth as embryo SYN-ACKs: inherit the
  // initiator's origin so cookie replies to flood SYNs stay part of the
  // attack footprint.
  synack.origin =
      pkt.origin == TrafficOrigin::kInfrastructure ? listener.origin_ : pkt.origin;
  synack.stack_tcp = true;
  node_.send(std::move(synack));
}

bool TcpHost::try_cookie_complete(const Packet& pkt) {
  if (!cfg_.syn_cookies) return false;
  if (!pkt.has_flag(TcpFlags::kAck) || pkt.has_flag(TcpFlags::kSyn) ||
      pkt.has_flag(TcpFlags::kRst)) {
    return false;
  }
  auto lit = listeners_.find(pkt.dst_port);
  if (lit == listeners_.end()) return false;
  auto listener = lit->second.lock();
  if (!listener || !listener->open_) return false;

  // The completing ACK acknowledges cookie+1 and its seq is client_iss+1.
  // This also validates the first data segment if the bare ACK was lost —
  // the same recovery real SYN-cookie stacks rely on.
  const std::uint32_t client_iss = pkt.seq - 1;
  const std::uint32_t expected =
      syn_cookie_isn(pkt.src, pkt.dst, pkt.src_port, pkt.dst_port, client_iss);
  if (pkt.ack - 1 != expected) {
    ++syn_cookies_rejected_;
    m_syn_cookies_rejected_->inc();
    return false;  // caller falls through to the RST path
  }

  ++syn_cookies_accepted_;
  m_syn_cookies_accepted_->inc();
  Endpoint local{node_.address(), pkt.dst_port};
  Endpoint remote{pkt.src, pkt.src_port};
  const TrafficOrigin conn_origin =
      pkt.origin == TrafficOrigin::kInfrastructure ? listener->origin_ : pkt.origin;
  auto conn =
      std::shared_ptr<TcpConnection>(new TcpConnection{*this, local, remote, conn_origin});
  register_connection(conn);
  conn->start_cookie_accept(client_iss, expected);
  ++listener->accepted_;
  if (listener->on_accept_) listener->on_accept_(conn);
  // The validated ACK may already carry data or a FIN; run it through the
  // established state machine.
  conn->on_segment(pkt);
  return true;
}

std::uint32_t TcpHost::random_iss() {
  // xorshift; determinism comes from per-host call order, which the
  // simulator makes reproducible.
  iss_state_ ^= iss_state_ << 13;
  iss_state_ ^= iss_state_ >> 17;
  iss_state_ ^= iss_state_ << 5;
  return iss_state_;
}

std::shared_ptr<TcpListener> TcpHost::listen(std::uint16_t port, std::size_t backlog,
                                             TrafficOrigin origin) {
  if (auto it = listeners_.find(port); it != listeners_.end() && !it->second.expired()) {
    throw std::invalid_argument("TcpHost::listen: port already listening");
  }
  auto listener = std::shared_ptr<TcpListener>(new TcpListener{*this, port, backlog, origin});
  listeners_[port] = listener;
  return listener;
}

std::shared_ptr<TcpConnection> TcpHost::connect(Endpoint remote, TrafficOrigin origin) {
  Endpoint local{node_.address(), 0};
  ConnKey key;
  do {
    local.port = node_.allocate_ephemeral_port();
    key = ConnKey{local.port, remote};
  } while (connections_.contains(key));

  auto conn = std::shared_ptr<TcpConnection>(new TcpConnection{*this, local, remote, origin});
  connections_[key] = conn;
  m_active_connections_->add(1.0);
  conn->start_connect();
  return conn;
}

void TcpHost::register_connection(std::shared_ptr<TcpConnection> conn) {
  connections_[ConnKey{conn->local().port, conn->remote()}] = std::move(conn);
  m_active_connections_->add(1.0);
}

void TcpHost::remove_connection(const TcpConnection& conn) {
  if (connections_.erase(ConnKey{conn.local().port, conn.remote()}) > 0) {
    m_active_connections_->add(-1.0);
  }
}

void TcpHost::notify_established(TcpConnection& conn) {
  auto listener = conn.parent_listener_.lock();
  if (!listener) return;
  if (listener->half_open_count_ > 0) --listener->half_open_count_;
  ++listener->accepted_;
  conn.parent_listener_.reset();
  if (listener->on_accept_) listener->on_accept_(conn.shared_from_this());
}

void TcpHost::send_rst_for(const Packet& pkt) {
  ++rst_sent_;
  m_rst_sent_->inc();
  Packet rst;
  rst.src = pkt.dst;
  rst.src_port = pkt.dst_port;
  rst.dst = pkt.src;
  rst.dst_port = pkt.src_port;
  rst.proto = IpProto::kTcp;
  rst.tcp_flags = TcpFlags::kRst | TcpFlags::kAck;
  rst.seq = pkt.ack;
  rst.ack = pkt.seq + pkt.payload_bytes + (pkt.has_flag(TcpFlags::kSyn) ? 1 : 0);
  // Flow-based ground truth (CICIDS-style): every packet of a flow whose
  // initiator was malicious is malicious, including stack-generated
  // responses — a RST provoked by a flood segment is part of the attack's
  // on-wire footprint.
  rst.origin = pkt.origin;
  rst.stack_tcp = true;
  node_.send(std::move(rst));
}

void TcpHost::deliver(const Packet& pkt) {
  const ConnKey key{pkt.dst_port, Endpoint{pkt.src, pkt.src_port}};
  if (auto it = connections_.find(key); it != connections_.end()) {
    it->second->on_segment(pkt);
    return;
  }

  // New connection attempt?
  if (pkt.has_flag(TcpFlags::kSyn) && !pkt.has_flag(TcpFlags::kAck)) {
    if (auto lit = listeners_.find(pkt.dst_port); lit != listeners_.end()) {
      auto listener = lit->second.lock();
      if (listener && listener->open_) {
        if (cfg_.syn_cookies) {
          // Above the watermark the listener stops investing state in
          // unproven peers: answer statelessly and keep the remaining
          // backlog for the pre-flood embryos already in flight.
          const std::size_t watermark = cfg_.syn_cookie_watermark != 0
                                            ? cfg_.syn_cookie_watermark
                                            : listener->backlog_ / 2;
          if (listener->half_open_count_ >= watermark) {
            send_syn_cookie(pkt, *listener);
            return;
          }
        }
        if (listener->half_open_count_ >= listener->backlog_) {
          ++listener->backlog_drops_;  // backlog exhausted: silently drop
          return;
        }
        ++listener->half_open_count_;
        Endpoint local{node_.address(), pkt.dst_port};
        Endpoint remote{pkt.src, pkt.src_port};
        // Flow-based ground truth: the server side of a connection inherits
        // the *initiator's* origin, so SYN-ACKs answering a flood SYN are
        // part of the attack footprint while replies to a benign client
        // carry the benign protocol tag. The listener origin is the
        // fallback for untagged initiators.
        const TrafficOrigin conn_origin = pkt.origin == TrafficOrigin::kInfrastructure
                                              ? listener->origin_
                                              : pkt.origin;
        auto conn = std::shared_ptr<TcpConnection>(
            new TcpConnection{*this, local, remote, conn_origin});
        conn->parent_listener_ = listener;
        register_connection(conn);
        conn->start_accept(pkt.seq);
        return;
      }
      listeners_.erase(lit);
    }
  }

  // A stray ACK may be the completion of a stateless cookie handshake.
  if (try_cookie_complete(pkt)) return;

  // No matching state: answer with RST unless the stray segment is itself
  // a RST (never RST a RST).
  if (!pkt.has_flag(TcpFlags::kRst)) send_rst_for(pkt);
}

}  // namespace ddoshield::net
