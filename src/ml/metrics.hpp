// Classification metrics: confusion matrix, accuracy, precision, recall,
// F1 — the paper's §IV-C evaluation set.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace ddoshield::ml {

/// Binary confusion matrix with "malicious" (1) as the positive class.
class ConfusionMatrix {
 public:
  void add(int truth, int prediction);
  void add_all(std::span<const int> truth, std::span<const int> prediction);

  std::uint64_t tp() const { return tp_; }
  std::uint64_t tn() const { return tn_; }
  std::uint64_t fp() const { return fp_; }
  std::uint64_t fn() const { return fn_; }
  std::uint64_t total() const { return tp_ + tn_ + fp_ + fn_; }

  /// All return 0 when their denominator is empty (the paper's division-
  /// by-zero caveat for single-class windows — callers decide how to
  /// treat such windows; see §IV-D).
  double accuracy() const;
  double precision() const;
  double recall() const;
  double f1() const;

  std::string to_string() const;

 private:
  std::uint64_t tp_ = 0;
  std::uint64_t tn_ = 0;
  std::uint64_t fp_ = 0;
  std::uint64_t fn_ = 0;
};

}  // namespace ddoshield::ml
