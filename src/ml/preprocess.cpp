#include "ml/preprocess.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/stats.hpp"

namespace ddoshield::ml {

void StandardScaler::fit(const DesignMatrix& x) {
  if (x.empty()) throw std::invalid_argument("StandardScaler::fit: empty matrix");
  const std::size_t cols = x.cols();
  std::vector<util::OnlineStats> stats(cols);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t c = 0; c < cols; ++c) stats[c].add(row[c]);
  }
  mean_.assign(cols, 0.0);
  stddev_.assign(cols, 1.0);
  for (std::size_t c = 0; c < cols; ++c) {
    mean_[c] = stats[c].mean();
    const double sd = stats[c].stddev();
    stddev_[c] = sd > 1e-12 ? sd : 1.0;  // constant feature: avoid blow-up
  }
}

std::vector<double> StandardScaler::transform(std::span<const double> row) const {
  std::vector<double> out(row.begin(), row.end());
  transform_inplace(out);
  return out;
}

void StandardScaler::transform_inplace(std::span<double> row) const {
  transform_into(row, row);
}

void StandardScaler::transform_into(std::span<const double> row, std::span<double> out) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (row.size() != mean_.size() || out.size() != mean_.size()) {
    throw std::invalid_argument("StandardScaler::transform: wrong width");
  }
  for (std::size_t c = 0; c < row.size(); ++c) {
    // Clamp to the training support (±3σ): robust-inference guard that
    // keeps a single drifted feature (an absolute timestamp, a byte-rate
    // spike) from dominating distances or saturating activations.
    out[c] = std::clamp((row[c] - mean_[c]) / stddev_[c], -3.0, 3.0);
  }
}

DesignMatrix StandardScaler::transform(const DesignMatrix& x) const {
  DesignMatrix out{x.cols()};
  out.reserve(x.rows());
  std::vector<double> buf;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    buf.assign(x.row(i).begin(), x.row(i).end());
    transform_inplace(buf);
    out.add_row(buf);
  }
  return out;
}

std::uint64_t StandardScaler::fingerprint() const {
  // FNV-1a over the exact byte representation, so any parameter drift —
  // even in the last ulp — changes the stamp.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](const std::vector<double>& xs) {
    for (const double v : xs) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &v, sizeof bits);
      for (int shift = 0; shift < 64; shift += 8) {
        h ^= (bits >> shift) & 0xffU;
        h *= 0x100000001b3ULL;
      }
    }
  };
  mix(mean_);
  mix(stddev_);
  return h;
}

void StandardScaler::save(util::ByteWriter& w) const {
  w.put_f64_span(mean_);
  w.put_f64_span(stddev_);
  w.put_u64(fingerprint());
}

void StandardScaler::load(util::ByteReader& r) {
  mean_ = r.get_f64_vector();
  stddev_ = r.get_f64_vector();
  if (mean_.size() != stddev_.size()) {
    throw std::invalid_argument("StandardScaler::load: inconsistent sizes");
  }
  const std::uint64_t stamp = r.get_u64();
  if (stamp != fingerprint()) {
    throw std::invalid_argument(
        "StandardScaler::load: fingerprint mismatch (train/serve scaler skew "
        "or corrupted model file)");
  }
}

TrainTestSplit train_test_split(const DesignMatrix& x, const std::vector<int>& y,
                                double test_fraction, util::Rng& rng) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("train_test_split: X/y size mismatch");
  }
  if (test_fraction <= 0.0 || test_fraction >= 1.0) {
    throw std::invalid_argument("train_test_split: fraction must be in (0,1)");
  }

  // Group row indices by class, shuffle each group, carve off the tail.
  std::vector<std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const auto cls = static_cast<std::size_t>(y[i]);
    if (cls >= by_class.size()) by_class.resize(cls + 1);
    by_class[cls].push_back(i);
  }

  TrainTestSplit split;
  split.train_x = DesignMatrix{x.cols()};
  split.test_x = DesignMatrix{x.cols()};
  for (auto& indices : by_class) {
    rng.shuffle(indices);
    const auto test_count = static_cast<std::size_t>(
        std::llround(static_cast<double>(indices.size()) * test_fraction));
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const std::size_t i = indices[k];
      if (k < test_count) {
        split.test_x.add_row(x.row(i));
        split.test_y.push_back(y[i]);
      } else {
        split.train_x.add_row(x.row(i));
        split.train_y.push_back(y[i]);
      }
    }
  }
  return split;
}

void subsample(const DesignMatrix& x, const std::vector<int>& y, std::size_t max_rows,
               util::Rng& rng, DesignMatrix& out_x, std::vector<int>& out_y) {
  if (x.rows() != y.size()) throw std::invalid_argument("subsample: X/y size mismatch");
  out_x = DesignMatrix{x.cols()};
  out_y.clear();
  if (x.rows() <= max_rows) {
    for (std::size_t i = 0; i < x.rows(); ++i) out_x.add_row(x.row(i));
    out_y = y;
    return;
  }
  std::vector<std::size_t> indices(x.rows());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  rng.shuffle(indices);
  indices.resize(max_rows);
  out_x.reserve(max_rows);
  out_y.reserve(max_rows);
  for (const std::size_t i : indices) {
    out_x.add_row(x.row(i));
    out_y.push_back(y[i]);
  }
}

}  // namespace ddoshield::ml
