#include "ml/isolation_forest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ddoshield::ml {

double isolation_c_norm(std::size_t n) {
  if (n <= 1) return 0.0;
  const double nd = static_cast<double>(n);
  const double harmonic = std::log(nd - 1.0) + 0.5772156649015329;  // H(n-1)
  return 2.0 * harmonic - 2.0 * (nd - 1.0) / nd;
}

IsolationForest::IsolationForest(IsolationForestConfig config) : config_{config} {
  if (config_.n_trees == 0) throw std::invalid_argument("IsolationForest: n_trees > 0");
  if (config_.subsample < 2) throw std::invalid_argument("IsolationForest: subsample >= 2");
}

std::int32_t IsolationForest::build(Tree& tree, const DesignMatrix& x,
                                    std::vector<std::size_t>& idx, std::size_t begin,
                                    std::size_t end, std::size_t depth,
                                    std::size_t depth_limit, util::Rng& rng) {
  const std::size_t n = end - begin;
  if (depth >= depth_limit || n <= 1) {
    Node leaf;
    leaf.size = static_cast<std::uint32_t>(n);
    tree.nodes.push_back(leaf);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  }

  // Pick a random feature with spread, and a random split value within it.
  const std::size_t dims = x.cols();
  std::int32_t feature = -1;
  double lo = 0.0, hi = 0.0;
  for (std::size_t attempt = 0; attempt < dims; ++attempt) {
    const auto f = static_cast<std::size_t>(rng.uniform_u64(dims));
    lo = std::numeric_limits<double>::max();
    hi = std::numeric_limits<double>::lowest();
    for (std::size_t k = begin; k < end; ++k) {
      const double v = x.at(idx[k], f);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) {
      feature = static_cast<std::int32_t>(f);
      break;
    }
  }
  if (feature < 0) {  // all candidate features constant here
    Node leaf;
    leaf.size = static_cast<std::uint32_t>(n);
    tree.nodes.push_back(leaf);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  }

  const double split = rng.uniform(lo, hi);
  const auto mid_it =
      std::partition(idx.begin() + static_cast<std::ptrdiff_t>(begin),
                     idx.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t i) {
                       return x.at(i, static_cast<std::size_t>(feature)) < split;
                     });
  const auto mid = static_cast<std::size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) {
    Node leaf;
    leaf.size = static_cast<std::uint32_t>(n);
    tree.nodes.push_back(leaf);
    return static_cast<std::int32_t>(tree.nodes.size() - 1);
  }

  Node node;
  node.feature = feature;
  node.threshold = split;
  tree.nodes.push_back(node);
  const auto me = static_cast<std::int32_t>(tree.nodes.size() - 1);
  const std::int32_t left = build(tree, x, idx, begin, mid, depth + 1, depth_limit, rng);
  const std::int32_t right = build(tree, x, idx, mid, end, depth + 1, depth_limit, rng);
  tree.nodes[static_cast<std::size_t>(me)].left = left;
  tree.nodes[static_cast<std::size_t>(me)].right = right;
  return me;
}

void IsolationForest::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("IsolationForest::fit: X/y mismatch");
  if (x.rows() < config_.subsample) {
    throw std::invalid_argument("IsolationForest::fit: fewer rows than subsample");
  }

  util::Rng rng{config_.seed};
  scaler_.fit(x);
  DesignMatrix sub_raw;
  std::vector<int> sub_y;
  subsample(x, y, config_.max_training_rows, rng, sub_raw, sub_y);
  const DesignMatrix data = scaler_.transform(sub_raw);

  c_norm_ = isolation_c_norm(config_.subsample);
  const auto depth_limit = static_cast<std::size_t>(
      std::ceil(std::log2(static_cast<double>(config_.subsample))));

  trees_.clear();
  trees_.resize(config_.n_trees);
  std::vector<std::size_t> sample(config_.subsample);
  for (auto& tree : trees_) {
    for (auto& s : sample) s = rng.uniform_u64(data.rows());
    tree.nodes.reserve(2 * config_.subsample);
    build(tree, data, sample, 0, sample.size(), 0, depth_limit, rng);
  }

  // Threshold calibration: the score cut that maximises training accuracy.
  // (The model itself never used the labels.)
  std::vector<std::pair<double, int>> scored;
  const std::size_t calib = std::min<std::size_t>(data.rows(), 20000);
  scored.reserve(calib);
  for (std::size_t i = 0; i < calib; ++i) {
    double mean_path = 0.0;
    for (const auto& tree : trees_) mean_path += path_length(tree, data.row(i));
    mean_path /= static_cast<double>(trees_.size());
    const double score = std::pow(2.0, -mean_path / c_norm_);
    scored.emplace_back(score, sub_y[i]);
  }
  std::sort(scored.begin(), scored.end());
  std::size_t total_pos = 0;
  for (const auto& [s, label] : scored) total_pos += label != 0;
  // Sweep every cut in both directions: "malicious above the cut" is the
  // classic rare-anomaly reading, but flood traffic is dense, so the
  // attack class can calibrate to the low-score side.
  std::size_t pos_below = 0;
  std::size_t best_correct = total_pos;  // cut below everything, malicious above
  double best_cut = 0.0;
  bool best_above = true;
  for (std::size_t i = 0; i < scored.size(); ++i) {
    pos_below += scored[i].second != 0;
    const double cut = i + 1 < scored.size()
                           ? 0.5 * (scored[i].first + scored[i + 1].first)
                           : scored[i].first;
    const std::size_t neg_below = (i + 1) - pos_below;
    const std::size_t pos_above = total_pos - pos_below;
    const std::size_t correct_above = neg_below + pos_above;   // malicious = high score
    const std::size_t correct_below =
        scored.size() - correct_above;                          // malicious = low score
    if (correct_above > best_correct) {
      best_correct = correct_above;
      best_cut = cut;
      best_above = true;
    }
    if (correct_below > best_correct) {
      best_correct = correct_below;
      best_cut = cut;
      best_above = false;
    }
  }
  threshold_ = best_cut;
  malicious_above_ = best_above;
}

double IsolationForest::path_length(const Tree& tree, std::span<const double> row) const {
  std::int32_t i = 0;
  double depth = 0.0;
  for (;;) {
    const Node& node = tree.nodes[static_cast<std::size_t>(i)];
    if (node.feature < 0) {
      return depth + isolation_c_norm(node.size);  // unresolved subtree estimate
    }
    ++depth;
    i = row[static_cast<std::size_t>(node.feature)] < node.threshold ? node.left
                                                                     : node.right;
  }
}

double IsolationForest::anomaly_score(std::span<const double> row) const {
  if (trees_.empty()) throw std::logic_error("IsolationForest: not trained");
  const std::vector<double> z = scaler_.transform(row);
  double mean_path = 0.0;
  for (const auto& tree : trees_) mean_path += path_length(tree, z);
  mean_path /= static_cast<double>(trees_.size());
  return std::pow(2.0, -mean_path / c_norm_);
}

int IsolationForest::predict(std::span<const double> row) const {
  const bool above = anomaly_score(row) > threshold_;
  return above == malicious_above_ ? 1 : 0;
}

void IsolationForest::save(util::ByteWriter& w) const {
  scaler_.save(w);
  w.put_f64(c_norm_);
  w.put_f64(threshold_);
  w.put_u8(malicious_above_ ? 1 : 0);
  w.put_u64(trees_.size());
  for (const auto& tree : trees_) {
    w.put_u64(tree.nodes.size());
    for (const auto& n : tree.nodes) {
      w.put_u32(static_cast<std::uint32_t>(n.feature));
      w.put_f64(n.threshold);
      w.put_u32(static_cast<std::uint32_t>(n.left));
      w.put_u32(static_cast<std::uint32_t>(n.right));
      w.put_u32(n.size);
    }
  }
}

void IsolationForest::load(util::ByteReader& r) {
  scaler_.load(r);
  c_norm_ = r.get_f64();
  threshold_ = r.get_f64();
  malicious_above_ = r.get_u8() != 0;
  const std::uint64_t count = r.get_u64();
  trees_.clear();
  trees_.resize(count);
  for (auto& tree : trees_) {
    const std::uint64_t nodes = r.get_u64();
    tree.nodes.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i) {
      Node n;
      n.feature = static_cast<std::int32_t>(r.get_u32());
      n.threshold = r.get_f64();
      n.left = static_cast<std::int32_t>(r.get_u32());
      n.right = static_cast<std::int32_t>(r.get_u32());
      n.size = r.get_u32();
      tree.nodes.push_back(n);
    }
  }
}

std::uint64_t IsolationForest::parameter_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& tree : trees_) bytes += tree.nodes.size() * sizeof(Node);
  return bytes;
}

std::uint64_t IsolationForest::inference_scratch_bytes() const {
  return scaler_.mean().size() * sizeof(double);
}

}  // namespace ddoshield::ml
