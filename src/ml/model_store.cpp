#include "ml/model_store.hpp"

#include <fstream>
#include <stdexcept>

#include "ml/cnn.hpp"
#include "ml/kmeans.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"
#include "util/byte_buffer.hpp"

namespace ddoshield::ml {

namespace {
constexpr std::uint32_t kMagic = 0x4D534444;  // "DDSM" little-endian
constexpr std::uint32_t kVersion = 1;
}  // namespace

std::vector<std::uint8_t> serialize_model(const Classifier& model) {
  util::ByteWriter w;
  w.put_u32(kMagic);
  w.put_u32(kVersion);
  w.put_string(model.name());
  model.save(w);
  return w.take();
}

std::unique_ptr<Classifier> deserialize_model(std::span<const std::uint8_t> bytes) {
  util::ByteReader r{bytes};
  if (r.get_u32() != kMagic) {
    throw std::invalid_argument("deserialize_model: bad magic");
  }
  if (r.get_u32() != kVersion) {
    throw std::invalid_argument("deserialize_model: unsupported version");
  }
  auto model = make_model(r.get_string());
  model->load(r);
  return model;
}

void save_model_file(const Classifier& model, const std::string& path) {
  const auto bytes = serialize_model(model);
  std::ofstream out{path, std::ios::binary};
  if (!out) throw std::runtime_error("save_model_file: cannot open " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("save_model_file: write failed for " + path);
}

std::unique_ptr<Classifier> load_model_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in) throw std::runtime_error("load_model_file: cannot open " + path);
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>{in},
                                  std::istreambuf_iterator<char>{}};
  return deserialize_model(bytes);
}

std::unique_ptr<Classifier> make_model(const std::string& name) {
  if (name == "rf") return std::make_unique<RandomForest>();
  if (name == "kmeans") return std::make_unique<KMeansDetector>();
  if (name == "cnn") return std::make_unique<Cnn1D>();
  if (name == "svm") return std::make_unique<LinearSvm>();
  if (name == "iforest") return std::make_unique<IsolationForest>();
  throw std::invalid_argument("make_model: unknown model '" + name + "'");
}

}  // namespace ddoshield::ml
