#include "ml/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ddoshield::ml {

// Parameter layouts:
//   conv_w_[f * kernel + k]           — filter f, tap k (same padding)
//   dense1_w_[h * flat + i]           — hidden unit h, flattened input i
//   dense2_w_[c * hidden + h]         — class c, hidden unit h
// Flattened conv output index: f * pooled_length() + p.

namespace {

/// Adam state for one parameter tensor.
struct AdamState {
  std::vector<double> m;
  std::vector<double> v;
  explicit AdamState(std::size_t n) : m(n, 0.0), v(n, 0.0) {}
};

void adam_step(std::vector<double>& params, const std::vector<double>& grads, AdamState& state,
               const CnnConfig& cfg, double lr_t) {
  for (std::size_t i = 0; i < params.size(); ++i) {
    state.m[i] = cfg.beta1 * state.m[i] + (1.0 - cfg.beta1) * grads[i];
    state.v[i] = cfg.beta2 * state.v[i] + (1.0 - cfg.beta2) * grads[i] * grads[i];
    params[i] -= lr_t * state.m[i] / (std::sqrt(state.v[i]) + 1e-8);
  }
}

}  // namespace

Cnn1D::Cnn1D(CnnConfig config) : config_{config} {
  if (config_.kernel % 2 == 0) {
    throw std::invalid_argument("Cnn1D: kernel must be odd (same padding)");
  }
  if (config_.filters == 0 || config_.hidden == 0) {
    throw std::invalid_argument("Cnn1D: filters and hidden must be > 0");
  }
}

void Cnn1D::forward(std::span<const double> scaled, Activations& act) const {
  const std::size_t d = input_dim_;
  const std::size_t f_count = config_.filters;
  const std::size_t k = config_.kernel;
  const std::size_t half = k / 2;
  const std::size_t p_len = pooled_length();
  const std::size_t flat = flat_size();
  const std::size_t h_count = config_.hidden;

  act.input.assign(scaled.begin(), scaled.end());
  act.conv.assign(f_count * d, 0.0);
  act.relu1.assign(f_count * d, 0.0);
  act.pooled.assign(f_count * p_len, 0.0);
  act.pool_argmax.assign(f_count * p_len, 0);
  act.dense1.assign(h_count, 0.0);
  act.relu2.assign(h_count, 0.0);
  act.logits.assign(2, 0.0);
  act.probs.assign(2, 0.0);

  // Conv1D, same padding.
  for (std::size_t f = 0; f < f_count; ++f) {
    for (std::size_t i = 0; i < d; ++i) {
      double sum = conv_b_[f];
      for (std::size_t t = 0; t < k; ++t) {
        const std::int64_t src = static_cast<std::int64_t>(i + t) - static_cast<std::int64_t>(half);
        if (src >= 0 && src < static_cast<std::int64_t>(d)) {
          sum += conv_w_[f * k + t] * scaled[static_cast<std::size_t>(src)];
        }
      }
      act.conv[f * d + i] = sum;
      act.relu1[f * d + i] = sum > 0.0 ? sum : 0.0;
    }
  }

  // MaxPool(2) with argmax memo for backprop.
  for (std::size_t f = 0; f < f_count; ++f) {
    for (std::size_t p = 0; p < p_len; ++p) {
      const std::size_t i0 = 2 * p;
      const std::size_t i1 = std::min(i0 + 1, d - 1);
      const double v0 = act.relu1[f * d + i0];
      const double v1 = act.relu1[f * d + i1];
      if (v0 >= v1) {
        act.pooled[f * p_len + p] = v0;
        act.pool_argmax[f * p_len + p] = f * d + i0;
      } else {
        act.pooled[f * p_len + p] = v1;
        act.pool_argmax[f * p_len + p] = f * d + i1;
      }
    }
  }

  // Dense(hidden) + ReLU.
  for (std::size_t h = 0; h < h_count; ++h) {
    double sum = dense1_b_[h];
    const double* w = &dense1_w_[h * flat];
    for (std::size_t i = 0; i < flat; ++i) sum += w[i] * act.pooled[i];
    act.dense1[h] = sum;
    act.relu2[h] = sum > 0.0 ? sum : 0.0;
  }

  // Dense(2) + softmax.
  for (std::size_t c = 0; c < 2; ++c) {
    double sum = dense2_b_[c];
    const double* w = &dense2_w_[c * h_count];
    for (std::size_t h = 0; h < h_count; ++h) sum += w[h] * act.relu2[h];
    act.logits[c] = sum;
  }
  const double mx = std::max(act.logits[0], act.logits[1]);
  const double e0 = std::exp(act.logits[0] - mx);
  const double e1 = std::exp(act.logits[1] - mx);
  act.probs[0] = e0 / (e0 + e1);
  act.probs[1] = e1 / (e0 + e1);
}

void Cnn1D::initialize(std::size_t input_dim, const StandardScaler& scaler) {
  if (!scaler.fitted() || scaler.mean().size() != input_dim) {
    throw std::invalid_argument("Cnn1D::initialize: scaler does not match input width");
  }
  util::Rng rng{config_.seed};
  input_dim_ = input_dim;
  scaler_ = scaler;

  const std::size_t k = config_.kernel;
  const std::size_t flat = flat_size();
  auto he_init = [&rng](std::vector<double>& w, std::size_t fan_in) {
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (double& v : w) v = rng.normal(0.0, stddev);
  };
  conv_w_.assign(config_.filters * k, 0.0);
  conv_b_.assign(config_.filters, 0.0);
  dense1_w_.assign(config_.hidden * flat, 0.0);
  dense1_b_.assign(config_.hidden, 0.0);
  dense2_w_.assign(2 * config_.hidden, 0.0);
  dense2_b_.assign(2, 0.0);
  he_init(conv_w_, k);
  he_init(dense1_w_, flat);
  he_init(dense2_w_, config_.hidden);
  trained_ = true;
}

std::vector<double> Cnn1D::parameters() const {
  std::vector<double> flat;
  flat.reserve(parameter_count());
  for (const auto* block : {&conv_w_, &conv_b_, &dense1_w_, &dense1_b_, &dense2_w_, &dense2_b_}) {
    flat.insert(flat.end(), block->begin(), block->end());
  }
  return flat;
}

void Cnn1D::set_parameters(std::span<const double> flat) {
  if (flat.size() != parameter_count()) {
    throw std::invalid_argument("Cnn1D::set_parameters: wrong length");
  }
  std::size_t pos = 0;
  for (auto* block : {&conv_w_, &conv_b_, &dense1_w_, &dense1_b_, &dense2_w_, &dense2_b_}) {
    std::copy(flat.begin() + static_cast<std::ptrdiff_t>(pos),
              flat.begin() + static_cast<std::ptrdiff_t>(pos + block->size()), block->begin());
    pos += block->size();
  }
}

void Cnn1D::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("Cnn1D::fit: X/y mismatch");
  if (x.empty()) throw std::invalid_argument("Cnn1D::fit: empty dataset");
  StandardScaler scaler;
  scaler.fit(x);
  initialize(x.cols(), scaler);
  train_epochs(x, y, config_.epochs);
}

void Cnn1D::train_epochs(const DesignMatrix& x, const std::vector<int>& y,
                         std::size_t epochs) {
  if (!trained_) throw std::logic_error("Cnn1D::train_epochs: initialize() or fit() first");
  if (x.rows() != y.size()) throw std::invalid_argument("Cnn1D::train_epochs: X/y mismatch");
  if (x.cols() != input_dim_) throw std::invalid_argument("Cnn1D::train_epochs: wrong width");
  if (x.empty() || epochs == 0) return;

  util::Rng rng{config_.seed ^ (0x9E3779B97F4A7C15ULL + ++train_calls_)};
  DesignMatrix sub_raw;
  std::vector<int> sub_y;
  subsample(x, y, config_.max_training_rows, rng, sub_raw, sub_y);
  const DesignMatrix data = scaler_.transform(sub_raw);
  const std::size_t n = data.rows();

  const std::size_t f_count = config_.filters;
  const std::size_t k = config_.kernel;
  const std::size_t flat = flat_size();
  const std::size_t h_count = config_.hidden;
  const std::size_t p_len = pooled_length();
  const std::size_t d = input_dim_;
  const std::size_t half = k / 2;

  AdamState s_conv_w{conv_w_.size()}, s_conv_b{conv_b_.size()};
  AdamState s_d1_w{dense1_w_.size()}, s_d1_b{dense1_b_.size()};
  AdamState s_d2_w{dense2_w_.size()}, s_d2_b{dense2_b_.size()};

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  Activations act;
  std::vector<double> g_conv_w(conv_w_.size()), g_conv_b(conv_b_.size());
  std::vector<double> g_d1_w(dense1_w_.size()), g_d1_b(dense1_b_.size());
  std::vector<double> g_d2_w(dense2_w_.size()), g_d2_b(dense2_b_.size());
  std::vector<double> d_relu2(h_count), d_pooled(flat), d_relu1(f_count * d);

  std::uint64_t step = 0;
  for (std::size_t epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(start + config_.batch_size, n);
      const double inv_batch = 1.0 / static_cast<double>(end - start);

      std::fill(g_conv_w.begin(), g_conv_w.end(), 0.0);
      std::fill(g_conv_b.begin(), g_conv_b.end(), 0.0);
      std::fill(g_d1_w.begin(), g_d1_w.end(), 0.0);
      std::fill(g_d1_b.begin(), g_d1_b.end(), 0.0);
      std::fill(g_d2_w.begin(), g_d2_w.end(), 0.0);
      std::fill(g_d2_b.begin(), g_d2_b.end(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t i = order[bi];
        forward(data.row(i), act);
        const int truth = sub_y[i] != 0 ? 1 : 0;

        // dL/dlogits for softmax + cross-entropy.
        double d_logits[2] = {act.probs[0], act.probs[1]};
        d_logits[truth] -= 1.0;

        // Dense2 gradients and back to relu2.
        std::fill(d_relu2.begin(), d_relu2.end(), 0.0);
        for (std::size_t c = 0; c < 2; ++c) {
          g_d2_b[c] += d_logits[c];
          double* gw = &g_d2_w[c * h_count];
          const double* w = &dense2_w_[c * h_count];
          for (std::size_t h = 0; h < h_count; ++h) {
            gw[h] += d_logits[c] * act.relu2[h];
            d_relu2[h] += d_logits[c] * w[h];
          }
        }

        // ReLU2 and Dense1; back to pooled.
        std::fill(d_pooled.begin(), d_pooled.end(), 0.0);
        for (std::size_t h = 0; h < h_count; ++h) {
          if (act.dense1[h] <= 0.0) continue;
          const double dh = d_relu2[h];
          g_d1_b[h] += dh;
          double* gw = &g_d1_w[h * flat];
          const double* w = &dense1_w_[h * flat];
          for (std::size_t p = 0; p < flat; ++p) {
            gw[p] += dh * act.pooled[p];
            d_pooled[p] += dh * w[p];
          }
        }

        // MaxPool backprop (route gradient to argmax), then ReLU1.
        std::fill(d_relu1.begin(), d_relu1.end(), 0.0);
        for (std::size_t p = 0; p < f_count * p_len; ++p) {
          d_relu1[act.pool_argmax[p]] += d_pooled[p];
        }

        // Conv backprop.
        for (std::size_t f = 0; f < f_count; ++f) {
          for (std::size_t i2 = 0; i2 < d; ++i2) {
            if (act.conv[f * d + i2] <= 0.0) continue;  // ReLU1 gate
            const double dc = d_relu1[f * d + i2];
            if (dc == 0.0) continue;
            g_conv_b[f] += dc;
            for (std::size_t t = 0; t < k; ++t) {
              const std::int64_t src =
                  static_cast<std::int64_t>(i2 + t) - static_cast<std::int64_t>(half);
              if (src >= 0 && src < static_cast<std::int64_t>(d)) {
                g_conv_w[f * k + t] += dc * act.input[static_cast<std::size_t>(src)];
              }
            }
          }
        }
      }

      // Average the batch gradients and take an Adam step.
      for (double& g : g_conv_w) g *= inv_batch;
      for (double& g : g_conv_b) g *= inv_batch;
      for (double& g : g_d1_w) g *= inv_batch;
      for (double& g : g_d1_b) g *= inv_batch;
      for (double& g : g_d2_w) g *= inv_batch;
      for (double& g : g_d2_b) g *= inv_batch;

      ++step;
      const double bias_correction =
          std::sqrt(1.0 - std::pow(config_.beta2, static_cast<double>(step))) /
          (1.0 - std::pow(config_.beta1, static_cast<double>(step)));
      const double lr_t = config_.learning_rate * bias_correction;

      adam_step(conv_w_, g_conv_w, s_conv_w, config_, lr_t);
      adam_step(conv_b_, g_conv_b, s_conv_b, config_, lr_t);
      adam_step(dense1_w_, g_d1_w, s_d1_w, config_, lr_t);
      adam_step(dense1_b_, g_d1_b, s_d1_b, config_, lr_t);
      adam_step(dense2_w_, g_d2_w, s_d2_w, config_, lr_t);
      adam_step(dense2_b_, g_d2_b, s_d2_b, config_, lr_t);
    }
  }
}

std::vector<double> Cnn1D::predict_proba(std::span<const double> row) const {
  if (!trained_) throw std::logic_error("Cnn1D::predict_proba: not trained");
  const std::vector<double> scaled = scaler_.transform(row);
  Activations act;
  forward(scaled, act);
  return act.probs;
}

int Cnn1D::predict(std::span<const double> row) const {
  const auto probs = predict_proba(row);
  return probs[1] > probs[0] ? 1 : 0;
}

void Cnn1D::score_batch(const DesignMatrix& x, Verdicts& out) const {
  if (!trained_) throw std::logic_error("Cnn1D::score_batch: not trained");
  if (!batched_inference()) {
    score_rows_scalar(x, out);
    return;
  }

  const std::size_t n = x.rows();
  const std::size_t d = input_dim_;
  const std::size_t f_count = config_.filters;
  const std::size_t k = config_.kernel;
  const std::size_t half = k / 2;
  const std::size_t p_len = pooled_length();
  const std::size_t flat = flat_size();
  const std::size_t h_count = config_.hidden;
  out.assign(n, 0);

  constexpr std::size_t kRowBlock = 32;
  constexpr std::size_t kTileRows = 16;  // GEMM micro-tile width (see below)
  std::vector<double> scaled(kRowBlock * d);
  std::vector<double> relu1(d);                 // one row's conv activations
  std::vector<double> pooled(kRowBlock * flat); // the im2col design matrix
  std::vector<double> pt(flat * kTileRows);     // one tile, transposed
  std::vector<double> hidden(kRowBlock * h_count);

  for (std::size_t base = 0; base < n; base += kRowBlock) {
    const std::size_t bn = std::min(kRowBlock, n - base);

    // --- scale + Conv1D + ReLU + MaxPool(2), per row, scalar order -------
    for (std::size_t r = 0; r < bn; ++r) {
      double* in = scaled.data() + r * d;
      scaler_.transform_into(x.row(base + r), {in, d});
      double* p_row = pooled.data() + r * flat;
      for (std::size_t f = 0; f < f_count; ++f) {
        for (std::size_t i = 0; i < d; ++i) {
          double sum = conv_b_[f];
          for (std::size_t t = 0; t < k; ++t) {
            const std::int64_t src =
                static_cast<std::int64_t>(i + t) - static_cast<std::int64_t>(half);
            if (src >= 0 && src < static_cast<std::int64_t>(d)) {
              sum += conv_w_[f * k + t] * in[static_cast<std::size_t>(src)];
            }
          }
          relu1[i] = sum > 0.0 ? sum : 0.0;
        }
        for (std::size_t p = 0; p < p_len; ++p) {
          const std::size_t i0 = 2 * p;
          const std::size_t i1 = std::min(i0 + 1, d - 1);
          const double v0 = relu1[i0];
          const double v1 = relu1[i1];
          p_row[f * p_len + p] = v0 >= v1 ? v0 : v1;  // scalar path's >= tie rule
        }
      }
    }

    // --- Dense(hidden) as a register-blocked GEMM ------------------------
    // Two structural moves over the scalar per-row GEMV, neither touching
    // any per-output reduction:
    //   * hidden unit outer, rows inner — the per-row order streams the
    //     whole dense1 weight matrix (H × flat doubles, far beyond L2)
    //     once per row and is memory-bound; this order loads each weight
    //     row once per tile and reuses it across every row in it;
    //   * a fixed-width transposed micro-tile — row j's pooled value for
    //     input i sits at pt[i * kTileRows + j], so the j-loop below is a
    //     contiguous fixed-trip-count lane loop the compiler can keep in
    //     vector registers. Each lane j is an independent accumulator
    //     chain that still sums i ascending from the bias — the scalar
    //     order — so every (row, h) output is bit-identical to forward();
    //     the lanes merely retire in parallel instead of serialising on
    //     the FP add latency like the scalar dot product does.
    std::size_t r0 = 0;
    for (; r0 + kTileRows <= bn; r0 += kTileRows) {
      for (std::size_t j = 0; j < kTileRows; ++j) {
        const double* p_row = pooled.data() + (r0 + j) * flat;
        for (std::size_t i = 0; i < flat; ++i) pt[i * kTileRows + j] = p_row[i];
      }
      for (std::size_t h = 0; h < h_count; ++h) {
        const double* w = &dense1_w_[h * flat];
        const double b = dense1_b_[h];
        double acc[kTileRows];
#if defined(__SSE2__)
        // Hand-held two-lane form of the fallback loop below. GCC at -O2
        // vectorises that loop but leaves the accumulators in stack slots;
        // naming the 8 × 2-lane accumulators as __m128d values keeps the
        // whole tile in registers (measured ~2.3× over the fallback here).
        // Each lane is still an independent bias-first, i-ascending chain
        // of mul-then-add (no FMA contraction on packed intrinsics), so
        // outputs stay bit-identical to the scalar dot product.
        const __m128d bv = _mm_set1_pd(b);
        __m128d a0 = bv, a1 = bv, a2 = bv, a3 = bv, a4 = bv, a5 = bv, a6 = bv, a7 = bv;
        for (std::size_t i = 0; i < flat; ++i) {
          const __m128d wi = _mm_set1_pd(w[i]);
          const double* col = pt.data() + i * kTileRows;
          a0 = _mm_add_pd(a0, _mm_mul_pd(wi, _mm_loadu_pd(col + 0)));
          a1 = _mm_add_pd(a1, _mm_mul_pd(wi, _mm_loadu_pd(col + 2)));
          a2 = _mm_add_pd(a2, _mm_mul_pd(wi, _mm_loadu_pd(col + 4)));
          a3 = _mm_add_pd(a3, _mm_mul_pd(wi, _mm_loadu_pd(col + 6)));
          a4 = _mm_add_pd(a4, _mm_mul_pd(wi, _mm_loadu_pd(col + 8)));
          a5 = _mm_add_pd(a5, _mm_mul_pd(wi, _mm_loadu_pd(col + 10)));
          a6 = _mm_add_pd(a6, _mm_mul_pd(wi, _mm_loadu_pd(col + 12)));
          a7 = _mm_add_pd(a7, _mm_mul_pd(wi, _mm_loadu_pd(col + 14)));
        }
        _mm_storeu_pd(acc + 0, a0);
        _mm_storeu_pd(acc + 2, a1);
        _mm_storeu_pd(acc + 4, a2);
        _mm_storeu_pd(acc + 6, a3);
        _mm_storeu_pd(acc + 8, a4);
        _mm_storeu_pd(acc + 10, a5);
        _mm_storeu_pd(acc + 12, a6);
        _mm_storeu_pd(acc + 14, a7);
#else
        for (std::size_t j = 0; j < kTileRows; ++j) acc[j] = b;
        for (std::size_t i = 0; i < flat; ++i) {
          const double wi = w[i];
          const double* col = pt.data() + i * kTileRows;
          for (std::size_t j = 0; j < kTileRows; ++j) acc[j] += wi * col[j];
        }
#endif
        for (std::size_t j = 0; j < kTileRows; ++j) {
          hidden[(r0 + j) * h_count + h] = acc[j] > 0.0 ? acc[j] : 0.0;
        }
      }
    }
    // Remainder rows (final partial tile): plain per-row dot products.
    for (; r0 < bn; ++r0) {
      const double* p_row = pooled.data() + r0 * flat;
      for (std::size_t h = 0; h < h_count; ++h) {
        const double* w = &dense1_w_[h * flat];
        double sum = dense1_b_[h];
        for (std::size_t i = 0; i < flat; ++i) sum += w[i] * p_row[i];
        hidden[r0 * h_count + h] = sum > 0.0 ? sum : 0.0;
      }
    }

    // --- Dense(2) + softmax + argmax -------------------------------------
    for (std::size_t r = 0; r < bn; ++r) {
      const double* h_row = hidden.data() + r * h_count;
      const double* w0 = &dense2_w_[0];
      const double* w1 = &dense2_w_[h_count];
      double l0 = dense2_b_[0], l1 = dense2_b_[1];
      for (std::size_t h = 0; h < h_count; ++h) {
        l0 += w0[h] * h_row[h];
        l1 += w1[h] * h_row[h];
      }
      // Same softmax expressions as forward(): exp rounding can merge
      // nearly-equal logits, so comparing probabilities (not logits) keeps
      // the verdict bit-identical to predict().
      const double mx = std::max(l0, l1);
      const double e0 = std::exp(l0 - mx);
      const double e1 = std::exp(l1 - mx);
      const double p0 = e0 / (e0 + e1);
      const double p1 = e1 / (e0 + e1);
      out[base + r] = p1 > p0 ? 1 : 0;
    }
  }
}

void Cnn1D::save(util::ByteWriter& w) const {
  scaler_.save(w);
  w.put_u64(input_dim_);
  w.put_u64(config_.filters);
  w.put_u64(config_.kernel);
  w.put_u64(config_.hidden);
  w.put_f64_span(conv_w_);
  w.put_f64_span(conv_b_);
  w.put_f64_span(dense1_w_);
  w.put_f64_span(dense1_b_);
  w.put_f64_span(dense2_w_);
  w.put_f64_span(dense2_b_);
}

void Cnn1D::load(util::ByteReader& r) {
  scaler_.load(r);
  input_dim_ = r.get_u64();
  config_.filters = r.get_u64();
  config_.kernel = r.get_u64();
  config_.hidden = r.get_u64();
  conv_w_ = r.get_f64_vector();
  conv_b_ = r.get_f64_vector();
  dense1_w_ = r.get_f64_vector();
  dense1_b_ = r.get_f64_vector();
  dense2_w_ = r.get_f64_vector();
  dense2_b_ = r.get_f64_vector();
  if (conv_w_.size() != config_.filters * config_.kernel ||
      dense1_w_.size() != config_.hidden * flat_size() ||
      dense2_w_.size() != 2 * config_.hidden) {
    throw std::invalid_argument("Cnn1D::load: inconsistent model file");
  }
  trained_ = true;
}

std::size_t Cnn1D::parameter_count() const {
  return conv_w_.size() + conv_b_.size() + dense1_w_.size() + dense1_b_.size() +
         dense2_w_.size() + dense2_b_.size();
}

std::uint64_t Cnn1D::parameter_bytes() const { return parameter_count() * sizeof(double); }

std::uint64_t Cnn1D::inference_scratch_bytes() const {
  // All Activations buffers touched by one forward pass.
  const std::size_t d = input_dim_;
  const std::size_t doubles = d + 2 * config_.filters * d + 2 * config_.filters * pooled_length() +
                              2 * config_.hidden + 4;
  return doubles * sizeof(double) +
         config_.filters * pooled_length() * sizeof(std::size_t);
}

}  // namespace ddoshield::ml
