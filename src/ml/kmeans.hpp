// Unsupervised K-Means detector with entropy-penalised cluster-count
// selection (Sinaga & Yang's "Unsupervised K-Means", the paper's ref [31]).
//
// Training starts from a generous number of clusters seeded k-means++ style
// and alternates assignment / centroid / mixing-proportion updates. The
// objective carries an entropy penalty on the mixing proportions, so
// under-populated clusters lose mass and are discarded — the algorithm
// finds its own k. Labels never influence clustering; they are used only
// afterwards to give each surviving cluster a majority-class tag so the
// detector can answer benign/malicious (exactly how an unsupervised model
// is wired into a supervised IDS evaluation).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

struct KMeansConfig {
  /// Generous starting count: traffic regimes are plentiful (three benign
  /// protocols x quiet/busy, three attack vectors x intensities), and the
  /// entropy penalty prunes what the data cannot support.
  std::size_t initial_clusters = 40;
  std::size_t max_iterations = 50;
  double tolerance = 1e-4;       // centroid-shift convergence threshold
  double entropy_weight = 0.01;  // penalty strength on mixing proportions
  double min_proportion = 0.003; // clusters below this mass are dropped
  /// Training subsample bound (k-means is O(n·k·d) per iteration).
  std::size_t max_training_rows = 60000;
  std::uint64_t seed = 4242;
};

class KMeansDetector : public Classifier {
 public:
  explicit KMeansDetector(KMeansConfig config = {});

  std::string name() const override { return "kmeans"; }
  void fit(const DesignMatrix& x, const std::vector<int>& y) override;
  int predict(std::span<const double> row) const override;
  /// Batched kernel: scales a block of rows once into reusable scratch
  /// (no per-row allocation), then sweeps the contiguous hoisted centroid
  /// array centroid-outer / row-inner so each centroid is loaded once per
  /// block. The per-(row, centroid) distance keeps the scalar path's
  /// dimension-ascending accumulation — a norm-factorised ‖x‖²−2x·c+‖c‖²
  /// formulation was rejected because its different rounding can flip
  /// near-tie argmins — so verdicts are bit-identical to predict().
  void score_batch(const DesignMatrix& x, Verdicts& out) const override;
  bool trained() const override { return !centroids_.empty(); }

  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;

  std::uint64_t parameter_bytes() const override;
  std::uint64_t inference_scratch_bytes() const override;

  std::size_t cluster_count() const { return centroids_.size(); }
  const std::vector<int>& cluster_labels() const { return cluster_labels_; }

 private:
  std::size_t nearest_cluster(std::span<const double> scaled_row) const;
  /// Packs centroids_ into one contiguous (k × dims) array — the batched
  /// kernel's layout — after fit() and load().
  void rebuild_flat();

  KMeansConfig config_;
  StandardScaler scaler_;
  std::vector<std::vector<double>> centroids_;
  std::vector<double> centroid_flat_;  // k × dims, row-major
  std::vector<double> proportions_;
  std::vector<int> cluster_labels_;  // majority class per cluster
};

}  // namespace ddoshield::ml
