// 1-D convolutional neural network (§III-B, the paper's TensorFlow model).
//
// Architecture over the feature vector treated as a length-D sequence:
//   Conv1D(filters, kernel=3, same padding) → ReLU → MaxPool(2)
//   → Flatten → Dense(hidden) → ReLU → Dense(2) → Softmax
// trained with Adam on cross-entropy. Written from scratch: forward,
// backward, and the optimiser live here; no external ML dependency.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

struct CnnConfig {
  std::size_t filters = 8;
  std::size_t kernel = 3;
  std::size_t hidden = 1250;
  std::size_t epochs = 4;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  /// Adam moment decay rates.
  double beta1 = 0.9;
  double beta2 = 0.999;
  /// Training subsample bound.
  std::size_t max_training_rows = 30000;
  std::uint64_t seed = 777;
};

class Cnn1D : public Classifier {
 public:
  explicit Cnn1D(CnnConfig config = {});

  std::string name() const override { return "cnn"; }
  void fit(const DesignMatrix& x, const std::vector<int>& y) override;
  int predict(std::span<const double> row) const override;
  /// Batched kernel: scales and convolves a block of rows into an
  /// im2col-style (rows × flat) pooled matrix, then runs the dense layers
  /// as a register-blocked GEMM — four independent hidden-unit
  /// accumulators per pass, each summing the flat dimension in the scalar
  /// path's ascending order, so the result is bit-identical to predict()
  /// while the accumulator fan breaks the FP add latency chain that
  /// serialises the scalar dot products. No per-row allocation.
  void score_batch(const DesignMatrix& x, Verdicts& out) const override;
  bool trained() const override { return trained_; }

  /// Class probabilities (softmax output) for one raw row.
  std::vector<double> predict_proba(std::span<const double> row) const;

  // --- federated-learning support (FedAvg over parameter vectors) ----------
  /// Prepares an untrained network: fixes the input width and the shared
  /// scaler, He-initialises the weights. After this the model is servable
  /// (trained() == true) and train_epochs() refines it in place.
  void initialize(std::size_t input_dim, const StandardScaler& scaler);
  /// Additional Adam epochs from the *current* parameters (no re-init).
  void train_epochs(const DesignMatrix& x, const std::vector<int>& y, std::size_t epochs);
  /// Flattened copy of all trainable parameters, layout-stable.
  std::vector<double> parameters() const;
  /// Replaces all parameters; the length must match parameters().size().
  void set_parameters(std::span<const double> flat);

  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;

  std::uint64_t parameter_bytes() const override;
  std::uint64_t inference_scratch_bytes() const override;

  std::size_t parameter_count() const;

 private:
  struct Activations {
    std::vector<double> input;    // D
    std::vector<double> conv;     // F * D (pre-activation)
    std::vector<double> relu1;    // F * D
    std::vector<double> pooled;   // F * P
    std::vector<std::size_t> pool_argmax;
    std::vector<double> dense1;   // H (pre-activation)
    std::vector<double> relu2;    // H
    std::vector<double> logits;   // 2
    std::vector<double> probs;    // 2
  };

  void forward(std::span<const double> scaled, Activations& act) const;
  std::size_t pooled_length() const { return (input_dim_ + 1) / 2; }
  std::size_t flat_size() const { return config_.filters * pooled_length(); }

  CnnConfig config_;
  StandardScaler scaler_;
  std::size_t input_dim_ = 0;
  bool trained_ = false;
  std::uint64_t train_calls_ = 0;  // varies shuffles across train_epochs calls

  // Parameters, flat layouts documented in cnn.cpp.
  std::vector<double> conv_w_;    // F * kernel
  std::vector<double> conv_b_;    // F
  std::vector<double> dense1_w_;  // H * flat
  std::vector<double> dense1_b_;  // H
  std::vector<double> dense2_w_;  // 2 * H
  std::vector<double> dense2_b_;  // 2
};

}  // namespace ddoshield::ml
