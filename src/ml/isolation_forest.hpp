// Isolation Forest (§V extension).
//
// The second additional detector the paper's threats-to-validity section
// names. Classic Liu/Ting/Zhou construction: an ensemble of isolation
// trees, each grown on a small subsample by recursive random axis/value
// splits; anomalous points isolate in few splits, so the expected path
// length maps to an anomaly score s = 2^(-E[h]/c(psi)). Training is
// unsupervised; labels are used once, to place the alarm threshold at the
// score that best separates the training classes (the same label-free-
// model / labelled-evaluation wiring as the K-Means detector).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

struct IsolationForestConfig {
  std::size_t n_trees = 100;
  std::size_t subsample = 256;  // psi; the classic default
  std::uint64_t seed = 515;
  /// Training subsample bound for threshold calibration.
  std::size_t max_training_rows = 60000;
};

class IsolationForest : public Classifier {
 public:
  explicit IsolationForest(IsolationForestConfig config = {});

  std::string name() const override { return "iforest"; }
  void fit(const DesignMatrix& x, const std::vector<int>& y) override;
  int predict(std::span<const double> row) const override;
  bool trained() const override { return !trees_.empty(); }

  /// Anomaly score in (0,1); higher = more isolated = more anomalous.
  double anomaly_score(std::span<const double> row) const;
  double threshold() const { return threshold_; }
  /// True when the malicious class sits on the high-score (isolated) side.
  /// Flood traffic is *dense*, so on DDoS captures the attack class often
  /// calibrates to the low-score side — the inversion of the classic
  /// "attacks are rare anomalies" assumption.
  bool malicious_is_anomalous() const { return malicious_above_; }

  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;

  std::uint64_t parameter_bytes() const override;
  std::uint64_t inference_scratch_bytes() const override;

 private:
  struct Node {
    std::int32_t feature = -1;  // -1: external node
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t size = 0;     // external node: subsample size at leaf
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  std::int32_t build(Tree& tree, const DesignMatrix& x, std::vector<std::size_t>& idx,
                     std::size_t begin, std::size_t end, std::size_t depth,
                     std::size_t depth_limit, util::Rng& rng);
  double path_length(const Tree& tree, std::span<const double> row) const;

  IsolationForestConfig config_;
  StandardScaler scaler_;
  std::vector<Tree> trees_;
  double c_norm_ = 1.0;      // c(psi) normaliser
  double threshold_ = 0.5;   // alarm threshold on the anomaly score
  bool malicious_above_ = true;  // which side of the threshold is malicious
};

/// Average unsuccessful-search path length of a BST with n nodes — the
/// c(n) normaliser from the Isolation Forest paper.
double isolation_c_norm(std::size_t n);

}  // namespace ddoshield::ml
