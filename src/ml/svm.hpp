// Linear Support Vector Machine (§V extension).
//
// The paper's threats-to-validity section names SVM as the first of the
// additional detectors it plans to profile. This is a from-scratch linear
// SVM: L2-regularised hinge loss minimised with averaged stochastic
// sub-gradient descent (Pegasos-style step sizes) on standardised inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/preprocess.hpp"

namespace ddoshield::ml {

struct SvmConfig {
  double lambda = 1e-4;   // L2 regularisation strength
  std::size_t epochs = 5;
  /// Training subsample bound.
  std::size_t max_training_rows = 60000;
  std::uint64_t seed = 2025;
};

class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(SvmConfig config = {});

  std::string name() const override { return "svm"; }
  void fit(const DesignMatrix& x, const std::vector<int>& y) override;
  int predict(std::span<const double> row) const override;
  bool trained() const override { return !weights_.empty(); }

  /// Signed distance to the separating hyperplane (raw decision value).
  double decision_value(std::span<const double> row) const;

  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;

  std::uint64_t parameter_bytes() const override;
  std::uint64_t inference_scratch_bytes() const override;

 private:
  SvmConfig config_;
  StandardScaler scaler_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace ddoshield::ml
