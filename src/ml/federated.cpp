#include "ml/federated.hpp"

#include <cmath>
#include <stdexcept>

namespace ddoshield::ml {

FederatedCnnTrainer::FederatedCnnTrainer(FederatedConfig config) : config_{config} {
  if (config_.rounds == 0) throw std::invalid_argument("FederatedCnnTrainer: rounds > 0");
  if (config_.local_epochs == 0) {
    throw std::invalid_argument("FederatedCnnTrainer: local_epochs > 0");
  }
}

Cnn1D FederatedCnnTrainer::train(const std::vector<FederatedShard>& shards,
                                 const StandardScaler& scaler) {
  if (shards.empty()) throw std::invalid_argument("FederatedCnnTrainer: no shards");
  for (const auto& shard : shards) {
    if (shard.x == nullptr || shard.y == nullptr || shard.x->empty()) {
      throw std::invalid_argument("FederatedCnnTrainer: empty shard");
    }
    if (shard.x->rows() != shard.y->size()) {
      throw std::invalid_argument("FederatedCnnTrainer: shard X/y mismatch");
    }
    if (shard.x->cols() != scaler.mean().size()) {
      throw std::invalid_argument("FederatedCnnTrainer: shard width != scaler width");
    }
  }
  round_stats_.clear();

  Cnn1D global{config_.cnn};
  global.initialize(shards.front().x->cols(), scaler);
  std::vector<double> global_params = global.parameters();

  // One persistent local model per client, so client-side Adam shuffling
  // stays deterministic per client across rounds.
  std::vector<Cnn1D> clients;
  clients.reserve(shards.size());
  for (std::size_t c = 0; c < shards.size(); ++c) {
    CnnConfig cfg = config_.cnn;
    cfg.seed = config_.cnn.seed + 1 + c;
    clients.emplace_back(cfg);
    clients.back().initialize(shards.front().x->cols(), scaler);
  }

  double total_rows = 0.0;
  for (const auto& shard : shards) total_rows += static_cast<double>(shard.x->rows());

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    std::vector<double> aggregate(global_params.size(), 0.0);
    for (std::size_t c = 0; c < shards.size(); ++c) {
      clients[c].set_parameters(global_params);
      clients[c].train_epochs(*shards[c].x, *shards[c].y, config_.local_epochs);
      const std::vector<double> local = clients[c].parameters();
      const double weight = static_cast<double>(shards[c].x->rows()) / total_rows;
      for (std::size_t p = 0; p < aggregate.size(); ++p) {
        aggregate[p] += weight * local[p];
      }
    }

    FederatedRoundStats stats;
    stats.round = round;
    double delta = 0.0;
    for (std::size_t p = 0; p < aggregate.size(); ++p) {
      delta += std::abs(aggregate[p] - global_params[p]);
    }
    stats.mean_parameter_delta = delta / static_cast<double>(aggregate.size());
    round_stats_.push_back(stats);

    global_params = std::move(aggregate);
  }

  global.set_parameters(global_params);
  return global;
}

void shard_dataset(const DesignMatrix& x, const std::vector<int>& y, std::size_t clients,
                   std::vector<DesignMatrix>& out_x, std::vector<std::vector<int>>& out_y) {
  if (clients == 0) throw std::invalid_argument("shard_dataset: clients > 0");
  if (x.rows() != y.size()) throw std::invalid_argument("shard_dataset: X/y mismatch");
  out_x.assign(clients, DesignMatrix{x.cols()});
  out_y.assign(clients, {});
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out_x[i % clients].add_row(x.row(i));
    out_y[i % clients].push_back(y[i]);
  }
}

}  // namespace ddoshield::ml
