// Preprocessing: standard scaling and stratified train/test splitting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/design_matrix.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

/// Per-feature zero-mean unit-variance scaler (sklearn's StandardScaler).
/// Constant features scale to 0 (variance clamps to 1).
class StandardScaler {
 public:
  void fit(const DesignMatrix& x);
  bool fitted() const { return !mean_.empty(); }

  /// Scales one row out-of-place.
  std::vector<double> transform(std::span<const double> row) const;
  /// Scales one row in-place.
  void transform_inplace(std::span<double> row) const;
  /// Scales one row into a caller-provided buffer of the same width —
  /// the real-time path's form: no per-call allocation, identical math.
  void transform_into(std::span<const double> row, std::span<double> out) const;
  /// Scales a whole matrix.
  DesignMatrix transform(const DesignMatrix& x) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// Order-sensitive digest of (mean, stddev): the train/serve equality
  /// stamp. Two scalers with the same fingerprint apply the same affine
  /// map, so a model file whose stored fingerprint disagrees with its
  /// stored parameters was corrupted or assembled from mismatched halves
  /// — the silent-skew family EXPERIMENTS.md (E3) analyses.
  std::uint64_t fingerprint() const;

  bool operator==(const StandardScaler& other) const {
    return mean_ == other.mean_ && stddev_ == other.stddev_;
  }

  void save(util::ByteWriter& w) const;
  /// Throws std::invalid_argument when the stored fingerprint does not
  /// match the stored parameters (train/serve scaler skew guard).
  void load(util::ByteReader& r);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

struct TrainTestSplit {
  DesignMatrix train_x;
  std::vector<int> train_y;
  DesignMatrix test_x;
  std::vector<int> test_y;
};

/// Stratified shuffle split: each class contributes `test_fraction` of its
/// rows to the test set. Deterministic given the rng.
TrainTestSplit train_test_split(const DesignMatrix& x, const std::vector<int>& y,
                                double test_fraction, util::Rng& rng);

/// Uniform random subsample of at most `max_rows` rows (used to bound
/// training cost on multi-hundred-thousand-packet datasets).
void subsample(const DesignMatrix& x, const std::vector<int>& y, std::size_t max_rows,
               util::Rng& rng, DesignMatrix& out_x, std::vector<int>& out_y);

}  // namespace ddoshield::ml
