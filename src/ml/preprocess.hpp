// Preprocessing: standard scaling and stratified train/test splitting.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/design_matrix.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

/// Per-feature zero-mean unit-variance scaler (sklearn's StandardScaler).
/// Constant features scale to 0 (variance clamps to 1).
class StandardScaler {
 public:
  void fit(const DesignMatrix& x);
  bool fitted() const { return !mean_.empty(); }

  /// Scales one row out-of-place.
  std::vector<double> transform(std::span<const double> row) const;
  /// Scales one row in-place.
  void transform_inplace(std::span<double> row) const;
  /// Scales a whole matrix.
  DesignMatrix transform(const DesignMatrix& x) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

struct TrainTestSplit {
  DesignMatrix train_x;
  std::vector<int> train_y;
  DesignMatrix test_x;
  std::vector<int> test_y;
};

/// Stratified shuffle split: each class contributes `test_fraction` of its
/// rows to the test set. Deterministic given the rng.
TrainTestSplit train_test_split(const DesignMatrix& x, const std::vector<int>& y,
                                double test_fraction, util::Rng& rng);

/// Uniform random subsample of at most `max_rows` rows (used to bound
/// training cost on multi-hundred-thousand-packet datasets).
void subsample(const DesignMatrix& x, const std::vector<int>& y, std::size_t max_rows,
               util::Rng& rng, DesignMatrix& out_x, std::vector<int>& out_y);

}  // namespace ddoshield::ml
