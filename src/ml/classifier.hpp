// Abstract classifier interface implemented by RandomForest, KMeansDetector,
// and Cnn1D. Mirrors the role scikit-learn / TensorFlow models play in the
// paper's IDS: fit on a labelled matrix, predict per row, persist to a
// model file (the paper's PKL), and report the resource figures Table II
// needs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/design_matrix.hpp"
#include "util/byte_buffer.hpp"

namespace ddoshield::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Stable identifier used in reports and model files ("rf", "kmeans",
  /// "cnn").
  virtual std::string name() const = 0;

  /// Trains on (X, y). Models fit their internal StandardScaler here, so
  /// callers always pass raw (unscaled) features.
  virtual void fit(const DesignMatrix& x, const std::vector<int>& y) = 0;

  /// Predicts the class (0 benign / 1 malicious) of one raw feature row.
  virtual int predict(std::span<const double> row) const = 0;

  std::vector<int> predict_batch(const DesignMatrix& x) const;

  virtual bool trained() const = 0;

  // --- persistence (the PKL role) ------------------------------------------
  virtual void save(util::ByteWriter& w) const = 0;
  virtual void load(util::ByteReader& r) = 0;

  // --- resource reporting (Table II) ---------------------------------------
  /// Bytes of model parameters resident during inference.
  virtual std::uint64_t parameter_bytes() const = 0;
  /// Bytes of scratch memory one predict() call touches.
  virtual std::uint64_t inference_scratch_bytes() const = 0;
};

}  // namespace ddoshield::ml
