// Abstract classifier interface implemented by RandomForest, KMeansDetector,
// and Cnn1D. Mirrors the role scikit-learn / TensorFlow models play in the
// paper's IDS: fit on a labelled matrix, predict per row, persist to a
// model file (the paper's PKL), and report the resource figures Table II
// needs.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "ml/design_matrix.hpp"
#include "util/byte_buffer.hpp"

namespace ddoshield::ml {

/// One 0/1 verdict per design-matrix row, in row order.
using Verdicts = std::vector<int>;

class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Stable identifier used in reports and model files ("rf", "kmeans",
  /// "cnn").
  virtual std::string name() const = 0;

  /// Trains on (X, y). Models fit their internal StandardScaler here, so
  /// callers always pass raw (unscaled) features.
  virtual void fit(const DesignMatrix& x, const std::vector<int>& y) = 0;

  /// Predicts the class (0 benign / 1 malicious) of one raw feature row.
  virtual int predict(std::span<const double> row) const = 0;

  /// Scores every row of x into out (resized to x.rows()).
  ///
  /// With batched inference enabled (the default), the three paper models
  /// override this with cache-blocked kernels that are bit-identical to
  /// calling predict() per row: every floating-point reduction keeps the
  /// scalar path's accumulation order, only the loop structure (and the
  /// per-row allocations) change. With the legacy switch off — the PR 3
  /// idiom for A/B runs — every override falls back to the scalar loop.
  ///
  /// Thread contract: const, allocation-bounded, and registry-free, so
  /// the off-thread ids::InferenceEngine may call it from its scoring
  /// thread while the simulation thread holds the model immutable. The
  /// obs-instrumented entry point is predict_batch(), which must stay on
  /// the simulation thread.
  virtual void score_batch(const DesignMatrix& x, Verdicts& out) const;

  /// Runtime legacy switch for the batched kernels. Affects every model;
  /// reads are relaxed-atomic so flipping it between runs is safe even
  /// while an InferenceEngine worker is idle-polling.
  static void set_batched_inference(bool enabled);
  static bool batched_inference();

  std::vector<int> predict_batch(const DesignMatrix& x) const;

  virtual bool trained() const = 0;

  // --- persistence (the PKL role) ------------------------------------------
  virtual void save(util::ByteWriter& w) const = 0;
  virtual void load(util::ByteReader& r) = 0;

  // --- resource reporting (Table II) ---------------------------------------
  /// Bytes of model parameters resident during inference.
  virtual std::uint64_t parameter_bytes() const = 0;
  /// Bytes of scratch memory one predict() call touches.
  virtual std::uint64_t inference_scratch_bytes() const = 0;

 protected:
  /// The reference implementation every batched kernel must match bit for
  /// bit: predict() applied to each row in order.
  void score_rows_scalar(const DesignMatrix& x, Verdicts& out) const;
};

}  // namespace ddoshield::ml
