#include "ml/classifier.hpp"

#include "obs/metrics.hpp"

namespace ddoshield::ml {

std::vector<int> Classifier::predict_batch(const DesignMatrix& x) const {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("ml." + name() + ".predict_batch_rows").inc(x.rows());
  obs::ScopedTimer timer{reg.histogram("ml." + name() + ".predict_batch_ns")};
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace ddoshield::ml
