#include "ml/classifier.hpp"

namespace ddoshield::ml {

std::vector<int> Classifier::predict_batch(const DesignMatrix& x) const {
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
  return out;
}

}  // namespace ddoshield::ml
