#include "ml/classifier.hpp"

#include <atomic>

#include "obs/metrics.hpp"

namespace ddoshield::ml {

namespace {
// Default-on, like PR 3's tuned paths; benches and tests flip it per run.
std::atomic<bool> g_batched_inference{true};
}  // namespace

void Classifier::set_batched_inference(bool enabled) {
  g_batched_inference.store(enabled, std::memory_order_relaxed);
}

bool Classifier::batched_inference() {
  return g_batched_inference.load(std::memory_order_relaxed);
}

void Classifier::score_rows_scalar(const DesignMatrix& x, Verdicts& out) const {
  out.clear();
  out.reserve(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) out.push_back(predict(x.row(i)));
}

void Classifier::score_batch(const DesignMatrix& x, Verdicts& out) const {
  score_rows_scalar(x, out);
}

std::vector<int> Classifier::predict_batch(const DesignMatrix& x) const {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("ml." + name() + ".predict_batch_rows").inc(x.rows());
  obs::ScopedTimer timer{reg.histogram("ml." + name() + ".predict_batch_ns")};
  Verdicts out;
  score_batch(x, out);
  return out;
}

}  // namespace ddoshield::ml
