#include "ml/feature_selection.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace ddoshield::ml {

std::vector<FeatureScore> rank_features(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("rank_features: X/y mismatch");
  if (x.empty()) throw std::invalid_argument("rank_features: empty matrix");

  const std::size_t dims = x.cols();
  std::vector<util::OnlineStats> per_class[2];
  per_class[0].resize(dims);
  per_class[1].resize(dims);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    auto& stats = per_class[y[i] != 0 ? 1 : 0];
    const auto row = x.row(i);
    for (std::size_t d = 0; d < dims; ++d) stats[d].add(row[d]);
  }

  std::vector<FeatureScore> scores(dims);
  for (std::size_t d = 0; d < dims; ++d) {
    scores[d].index = d;
    const double mu0 = per_class[0][d].mean();
    const double mu1 = per_class[1][d].mean();
    const double var_sum = per_class[0][d].variance() + per_class[1][d].variance();
    const double diff = mu1 - mu0;
    scores[d].score = var_sum > 1e-18 ? diff * diff / var_sum
                      : (diff * diff > 1e-18 ? 1e18 : 0.0);
  }
  std::sort(scores.begin(), scores.end(),
            [](const FeatureScore& a, const FeatureScore& b) { return a.score > b.score; });
  return scores;
}

DesignMatrix select_columns(const DesignMatrix& x, const std::vector<std::size_t>& columns) {
  if (columns.empty()) throw std::invalid_argument("select_columns: no columns");
  for (const std::size_t c : columns) {
    if (c >= x.cols()) throw std::out_of_range("select_columns: bad column index");
  }
  DesignMatrix out{columns.size()};
  out.reserve(x.rows());
  std::vector<double> buf(columns.size());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto row = x.row(i);
    for (std::size_t k = 0; k < columns.size(); ++k) buf[k] = row[columns[k]];
    out.add_row(buf);
  }
  return out;
}

std::vector<std::size_t> top_k_columns(const std::vector<FeatureScore>& ranking,
                                       std::size_t k) {
  if (k == 0 || k > ranking.size()) {
    throw std::invalid_argument("top_k_columns: k out of range");
  }
  std::vector<std::size_t> columns;
  columns.reserve(k);
  for (std::size_t i = 0; i < k; ++i) columns.push_back(ranking[i].index);
  return columns;
}

void ColumnSubsetClassifier::fit(const DesignMatrix&, const std::vector<int>&) {
  throw std::logic_error("ColumnSubsetClassifier: serving wrapper; fit the inner model "
                         "on select_columns() output");
}

int ColumnSubsetClassifier::predict(std::span<const double> row) const {
  std::vector<double> projected(columns_.size());
  for (std::size_t k = 0; k < columns_.size(); ++k) {
    if (columns_[k] >= row.size()) {
      throw std::invalid_argument("ColumnSubsetClassifier: row narrower than subset");
    }
    projected[k] = row[columns_[k]];
  }
  return inner_.predict(projected);
}

void ColumnSubsetClassifier::save(util::ByteWriter& w) const { inner_.save(w); }

void ColumnSubsetClassifier::load(util::ByteReader&) {
  throw std::logic_error("ColumnSubsetClassifier: load the inner model instead");
}

}  // namespace ddoshield::ml
