// Model persistence — the paper's "save each model in a PKL file" step.
//
// A model file is:  magic "DDSM" | format version | model name | payload.
// load_model() reconstructs the right concrete classifier from the name.
// The on-disk size of this file is Table II's "Model Size (Kb)" metric.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.hpp"

namespace ddoshield::ml {

/// Serialises the classifier to the in-memory model-file format.
std::vector<std::uint8_t> serialize_model(const Classifier& model);

/// Reconstructs a classifier from bytes produced by serialize_model;
/// throws std::invalid_argument on bad magic/version/name.
std::unique_ptr<Classifier> deserialize_model(std::span<const std::uint8_t> bytes);

/// File convenience wrappers; throw std::runtime_error on I/O failure.
void save_model_file(const Classifier& model, const std::string& path);
std::unique_ptr<Classifier> load_model_file(const std::string& path);

/// Creates an untrained model by name ("rf", "kmeans", "cnn").
std::unique_ptr<Classifier> make_model(const std::string& name);

}  // namespace ddoshield::ml
