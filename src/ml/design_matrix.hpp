// Row-major dense design matrix — the ML layer's data container.
//
// The ML library is deliberately independent of the feature schema: it
// consumes any (rows × cols) double matrix plus integer labels, so models
// are reusable and unit-testable on synthetic data.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace ddoshield::ml {

class DesignMatrix {
 public:
  DesignMatrix() = default;
  explicit DesignMatrix(std::size_t cols) : cols_{cols} {
    if (cols == 0) throw std::invalid_argument("DesignMatrix: cols must be > 0");
  }

  std::size_t rows() const { return cols_ == 0 ? 0 : data_.size() / cols_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  void reserve(std::size_t rows) { data_.reserve(rows * cols_); }

  void add_row(std::span<const double> row) {
    if (row.size() != cols_) {
      throw std::invalid_argument("DesignMatrix::add_row: wrong width");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }

  std::span<const double> row(std::size_t i) const {
    if (i >= rows()) throw std::out_of_range("DesignMatrix::row");
    return {data_.data() + i * cols_, cols_};
  }

  std::span<double> mutable_row(std::size_t i) {
    if (i >= rows()) throw std::out_of_range("DesignMatrix::mutable_row");
    return {data_.data() + i * cols_, cols_};
  }

  double at(std::size_t r, std::size_t c) const { return row(r)[c]; }

  /// Approximate heap footprint, for resource accounting.
  std::size_t byte_size() const { return data_.size() * sizeof(double); }

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace ddoshield::ml
