// CART decision tree (gini impurity), the Random Forest base learner.
//
// Supports per-node feature subsampling (the "random" in Random Forest)
// and the usual depth / minimum-samples regularisers. Trees store nodes in
// a flat vector, which keeps serialization trivial and inference cache-
// friendly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/design_matrix.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

struct TreeConfig {
  std::size_t max_depth = 12;
  std::size_t min_samples_split = 4;
  std::size_t min_samples_leaf = 2;
  /// Features examined per split; 0 means all features.
  std::size_t features_per_split = 0;
};

class DecisionTree {
 public:
  /// Trains on the rows of x selected by `indices` (the caller's bootstrap
  /// sample). `num_classes` fixes the label alphabet.
  void fit(const DesignMatrix& x, std::span<const int> y, std::span<const std::size_t> indices,
           int num_classes, const TreeConfig& config, util::Rng& rng);

  int predict(std::span<const double> row) const;

  bool trained() const { return !nodes_.empty(); }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t depth() const { return depth_; }

  void save(util::ByteWriter& w) const;
  void load(util::ByteReader& r);

  /// Bytes used by the node array.
  std::uint64_t byte_size() const;

  /// Appends this tree's nodes to the caller's parallel flat arrays (SoA),
  /// child indices rebased to absolute positions; returns the root's
  /// absolute index. Nodes the scalar walker treats as leaves (feature,
  /// left, or right negative) are emitted with feature = -1 and self-loop
  /// children, so batched traversal terminates on a single test per hop.
  /// RandomForest's batched kernel builds its whole-forest layout with
  /// this.
  std::int32_t flatten_append(std::vector<std::int32_t>& feature, std::vector<double>& threshold,
                              std::vector<std::int32_t>& left, std::vector<std::int32_t>& right,
                              std::vector<std::int32_t>& leaf_class) const;

 private:
  struct Node {
    // Internal node: feature >= 0, children set. Leaf: feature == -1,
    // leaf_class holds the majority class.
    std::int32_t feature = -1;
    double threshold = 0.0;
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::int32_t leaf_class = 0;
  };

  std::int32_t build(const DesignMatrix& x, std::span<const int> y,
                     std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
                     std::size_t depth, const TreeConfig& config, util::Rng& rng);

  std::vector<Node> nodes_;
  int num_classes_ = 2;
  std::size_t depth_ = 0;
};

}  // namespace ddoshield::ml
