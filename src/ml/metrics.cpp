#include "ml/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace ddoshield::ml {

void ConfusionMatrix::add(int truth, int prediction) {
  if (truth == 1) {
    prediction == 1 ? ++tp_ : ++fn_;
  } else {
    prediction == 1 ? ++fp_ : ++tn_;
  }
}

void ConfusionMatrix::add_all(std::span<const int> truth, std::span<const int> prediction) {
  if (truth.size() != prediction.size()) {
    throw std::invalid_argument("ConfusionMatrix::add_all: size mismatch");
  }
  for (std::size_t i = 0; i < truth.size(); ++i) add(truth[i], prediction[i]);
}

double ConfusionMatrix::accuracy() const {
  const auto n = total();
  return n == 0 ? 0.0 : static_cast<double>(tp_ + tn_) / static_cast<double>(n);
}

double ConfusionMatrix::precision() const {
  const auto denom = tp_ + fp_;
  return denom == 0 ? 0.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double ConfusionMatrix::recall() const {
  const auto denom = tp_ + fn_;
  return denom == 0 ? 0.0 : static_cast<double>(tp_) / static_cast<double>(denom);
}

double ConfusionMatrix::f1() const {
  const double p = precision();
  const double r = recall();
  return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "tp=" << tp_ << " tn=" << tn_ << " fp=" << fp_ << " fn=" << fn_
     << " acc=" << accuracy() << " prec=" << precision() << " rec=" << recall()
     << " f1=" << f1();
  return os.str();
}

}  // namespace ddoshield::ml
