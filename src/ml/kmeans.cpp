#include "ml/kmeans.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ddoshield::ml {

namespace {

double squared_distance(std::span<const double> a, std::span<const double> b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double diff = a[i] - b[i];
    d += diff * diff;
  }
  return d;
}

}  // namespace

KMeansDetector::KMeansDetector(KMeansConfig config) : config_{config} {
  if (config_.initial_clusters < 2) {
    throw std::invalid_argument("KMeansDetector: need at least 2 initial clusters");
  }
}

void KMeansDetector::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("KMeansDetector::fit: X/y mismatch");
  if (x.rows() < config_.initial_clusters) {
    throw std::invalid_argument("KMeansDetector::fit: fewer rows than clusters");
  }

  util::Rng rng{config_.seed};

  scaler_.fit(x);
  DesignMatrix sub_raw;
  std::vector<int> sub_y;
  subsample(x, y, config_.max_training_rows, rng, sub_raw, sub_y);
  const DesignMatrix data = scaler_.transform(sub_raw);
  const std::size_t n = data.rows();
  const std::size_t dims = data.cols();

  // k-means++ style seeding: first centroid uniform, the rest weighted by
  // squared distance to the nearest chosen centroid.
  std::size_t k = config_.initial_clusters;
  centroids_.clear();
  {
    const auto first = data.row(rng.uniform_u64(n));
    centroids_.emplace_back(first.begin(), first.end());
    std::vector<double> dist2(n, std::numeric_limits<double>::max());
    while (centroids_.size() < k) {
      double total = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dist2[i] = std::min(dist2[i], squared_distance(data.row(i), centroids_.back()));
        total += dist2[i];
      }
      double pick = rng.uniform() * total;
      std::size_t chosen = n - 1;
      for (std::size_t i = 0; i < n; ++i) {
        pick -= dist2[i];
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
      const auto row = data.row(chosen);
      centroids_.emplace_back(row.begin(), row.end());
    }
  }
  proportions_.assign(k, 1.0 / static_cast<double>(k));

  std::vector<std::size_t> assignment(n, 0);
  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    // --- assignment with entropy-penalised objective -----------------------
    // cost(i, c) = ||x_i - mu_c||^2 - w * log(pi_c): clusters with larger
    // mixing proportions are slightly favoured, so starving clusters starve
    // further and can be pruned — the U-k-means mechanism for finding k.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::max();
      std::size_t best_c = 0;
      for (std::size_t c = 0; c < centroids_.size(); ++c) {
        const double cost = squared_distance(data.row(i), centroids_[c]) -
                            config_.entropy_weight * std::log(proportions_[c] + 1e-12);
        if (cost < best) {
          best = cost;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    }

    // --- centroid + proportion update --------------------------------------
    std::vector<std::vector<double>> sums(centroids_.size(), std::vector<double>(dims, 0.0));
    std::vector<std::size_t> counts(centroids_.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto row = data.row(i);
      auto& sum = sums[assignment[i]];
      for (std::size_t d = 0; d < dims; ++d) sum[d] += row[d];
      ++counts[assignment[i]];
    }

    double max_shift = 0.0;
    for (std::size_t c = 0; c < centroids_.size(); ++c) {
      if (counts[c] == 0) {
        proportions_[c] = 0.0;  // starved: prune next round
        continue;
      }
      for (std::size_t d = 0; d < dims; ++d) {
        const double updated = sums[c][d] / static_cast<double>(counts[c]);
        max_shift = std::max(max_shift, std::abs(updated - centroids_[c][d]));
        centroids_[c][d] = updated;
      }
      proportions_[c] = static_cast<double>(counts[c]) / static_cast<double>(n);
    }

    // --- prune starving clusters -------------------------------------------
    if (centroids_.size() > 2) {
      std::vector<std::size_t> kept;
      for (std::size_t c = 0; c < centroids_.size(); ++c) {
        if (proportions_[c] >= config_.min_proportion) kept.push_back(c);
      }
      if (kept.size() >= 2 && kept.size() < centroids_.size()) {
        std::vector<std::vector<double>> kept_centroids;
        std::vector<double> kept_props;
        kept_centroids.reserve(kept.size());
        kept_props.reserve(kept.size());
        for (const std::size_t c : kept) {
          kept_centroids.push_back(std::move(centroids_[c]));
          kept_props.push_back(proportions_[c]);
        }
        centroids_ = std::move(kept_centroids);
        proportions_ = std::move(kept_props);
        // Renormalise proportions after pruning.
        double total = 0.0;
        for (const double p : proportions_) total += p;
        for (double& p : proportions_) p /= total;
        continue;  // re-assign against the pruned set before convergence test
      }
    }

    if (max_shift < config_.tolerance) break;
  }

  // --- majority-class tag per cluster (evaluation wiring, not clustering) --
  std::vector<std::array<std::size_t, 2>> class_counts(centroids_.size(), {0, 0});
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t c = nearest_cluster(data.row(i));
    ++class_counts[c][static_cast<std::size_t>(sub_y[i] != 0)];
  }
  cluster_labels_.assign(centroids_.size(), 0);
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    cluster_labels_[c] = class_counts[c][1] > class_counts[c][0] ? 1 : 0;
  }
  rebuild_flat();
}

void KMeansDetector::rebuild_flat() {
  centroid_flat_.clear();
  for (const auto& c : centroids_) centroid_flat_.insert(centroid_flat_.end(), c.begin(), c.end());
}

void KMeansDetector::score_batch(const DesignMatrix& x, Verdicts& out) const {
  if (centroids_.empty()) throw std::logic_error("KMeansDetector::score_batch: not trained");
  if (!batched_inference()) {
    score_rows_scalar(x, out);
    return;
  }

  const std::size_t n = x.rows();
  const std::size_t dims = scaler_.mean().size();
  const std::size_t k = centroids_.size();
  out.assign(n, 0);

  constexpr std::size_t kRowBlock = 32;
  std::vector<double> scaled(kRowBlock * dims);
  std::vector<double> best(kRowBlock);
  std::vector<std::size_t> best_c(kRowBlock);

  for (std::size_t base = 0; base < n; base += kRowBlock) {
    const std::size_t bn = std::min(kRowBlock, n - base);
    for (std::size_t r = 0; r < bn; ++r) {
      scaler_.transform_into(x.row(base + r), {scaled.data() + r * dims, dims});
    }
    std::fill(best.begin(), best.begin() + static_cast<std::ptrdiff_t>(bn),
              std::numeric_limits<double>::max());
    std::fill(best_c.begin(), best_c.begin() + static_cast<std::ptrdiff_t>(bn), 0);
    for (std::size_t c = 0; c < k; ++c) {
      const double* cen = centroid_flat_.data() + c * dims;
      for (std::size_t r = 0; r < bn; ++r) {
        const double* row = scaled.data() + r * dims;
        double d = 0.0;
        for (std::size_t i = 0; i < dims; ++i) {
          const double diff = row[i] - cen[i];
          d += diff * diff;
        }
        // Strict < keeps the scalar path's first-minimum tie-break.
        if (d < best[r]) {
          best[r] = d;
          best_c[r] = c;
        }
      }
    }
    for (std::size_t r = 0; r < bn; ++r) out[base + r] = cluster_labels_[best_c[r]];
  }
}

std::size_t KMeansDetector::nearest_cluster(std::span<const double> scaled_row) const {
  double best = std::numeric_limits<double>::max();
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < centroids_.size(); ++c) {
    const double d = squared_distance(scaled_row, centroids_[c]);
    if (d < best) {
      best = d;
      best_c = c;
    }
  }
  return best_c;
}

int KMeansDetector::predict(std::span<const double> row) const {
  if (centroids_.empty()) throw std::logic_error("KMeansDetector::predict: not trained");
  const std::vector<double> scaled = scaler_.transform(row);
  return cluster_labels_[nearest_cluster(scaled)];
}

void KMeansDetector::save(util::ByteWriter& w) const {
  scaler_.save(w);
  w.put_u64(centroids_.size());
  for (const auto& c : centroids_) w.put_f64_span(c);
  w.put_f64_span(proportions_);
  w.put_u64(cluster_labels_.size());
  for (const int l : cluster_labels_) w.put_u32(static_cast<std::uint32_t>(l));
}

void KMeansDetector::load(util::ByteReader& r) {
  scaler_.load(r);
  const std::uint64_t k = r.get_u64();
  centroids_.clear();
  centroids_.reserve(k);
  for (std::uint64_t c = 0; c < k; ++c) centroids_.push_back(r.get_f64_vector());
  proportions_ = r.get_f64_vector();
  const std::uint64_t labels = r.get_u64();
  cluster_labels_.clear();
  cluster_labels_.reserve(labels);
  for (std::uint64_t i = 0; i < labels; ++i) {
    cluster_labels_.push_back(static_cast<int>(r.get_u32()));
  }
  if (centroids_.size() != cluster_labels_.size()) {
    throw std::invalid_argument("KMeansDetector::load: inconsistent model file");
  }
  rebuild_flat();
}

std::uint64_t KMeansDetector::parameter_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& c : centroids_) bytes += c.size() * sizeof(double);
  bytes += proportions_.size() * sizeof(double);
  bytes += cluster_labels_.size() * sizeof(int);
  bytes += scaler_.mean().size() * 2 * sizeof(double);
  return bytes;
}

std::uint64_t KMeansDetector::inference_scratch_bytes() const {
  // One scaled copy of the input row.
  return scaler_.mean().size() * sizeof(double);
}

}  // namespace ddoshield::ml
