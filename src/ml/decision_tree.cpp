#include "ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ddoshield::ml {

namespace {

double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double g = 1.0;
  for (const std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    g -= p * p;
  }
  return g;
}

}  // namespace

void DecisionTree::fit(const DesignMatrix& x, std::span<const int> y,
                       std::span<const std::size_t> indices, int num_classes,
                       const TreeConfig& config, util::Rng& rng) {
  if (x.rows() != y.size()) throw std::invalid_argument("DecisionTree::fit: X/y mismatch");
  if (indices.empty()) throw std::invalid_argument("DecisionTree::fit: empty sample");
  if (num_classes < 2) throw std::invalid_argument("DecisionTree::fit: need >= 2 classes");
  nodes_.clear();
  depth_ = 0;
  num_classes_ = num_classes;
  std::vector<std::size_t> work{indices.begin(), indices.end()};
  build(x, y, work, 0, work.size(), 0, config, rng);
}

std::int32_t DecisionTree::build(const DesignMatrix& x, std::span<const int> y,
                                 std::vector<std::size_t>& indices, std::size_t begin,
                                 std::size_t end, std::size_t depth, const TreeConfig& config,
                                 util::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t n = end - begin;

  // Class histogram of this node's samples.
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t k = begin; k < end; ++k) ++counts[static_cast<std::size_t>(y[indices[k]])];
  const auto majority = static_cast<std::int32_t>(
      std::max_element(counts.begin(), counts.end()) - counts.begin());

  auto make_leaf = [&]() {
    Node leaf;
    leaf.leaf_class = majority;
    nodes_.push_back(leaf);
    return static_cast<std::int32_t>(nodes_.size() - 1);
  };

  const double node_gini = gini(counts, n);
  if (depth >= config.max_depth || n < config.min_samples_split || node_gini == 0.0) {
    return make_leaf();
  }

  // Choose candidate features (without replacement).
  std::vector<std::size_t> features(x.cols());
  for (std::size_t f = 0; f < features.size(); ++f) features[f] = f;
  std::size_t feature_budget = config.features_per_split == 0
                                   ? features.size()
                                   : std::min(config.features_per_split, features.size());
  rng.shuffle(features);
  features.resize(feature_budget);

  double best_gain = 1e-12;  // require strictly positive gain
  std::int32_t best_feature = -1;
  double best_threshold = 0.0;

  std::vector<std::pair<double, int>> values;
  values.reserve(n);
  std::vector<std::size_t> left_counts(static_cast<std::size_t>(num_classes_));

  for (const std::size_t f : features) {
    values.clear();
    for (std::size_t k = begin; k < end; ++k) {
      values.emplace_back(x.at(indices[k], f), y[indices[k]]);
    }
    std::sort(values.begin(), values.end());
    if (values.front().first == values.back().first) continue;  // constant feature here

    std::fill(left_counts.begin(), left_counts.end(), 0);
    // Sweep split positions; a threshold between distinct adjacent values.
    for (std::size_t i = 0; i + 1 < values.size(); ++i) {
      ++left_counts[static_cast<std::size_t>(values[i].second)];
      if (values[i].first == values[i + 1].first) continue;
      const std::size_t n_left = i + 1;
      const std::size_t n_right = n - n_left;
      if (n_left < config.min_samples_leaf || n_right < config.min_samples_leaf) continue;

      double right_gini_sum = 0.0;
      {
        double g = 1.0;
        for (std::size_t c = 0; c < left_counts.size(); ++c) {
          const double p =
              static_cast<double>(counts[c] - left_counts[c]) / static_cast<double>(n_right);
          g -= p * p;
        }
        right_gini_sum = g;
      }
      const double left_gini = gini(left_counts, n_left);
      const double weighted = (static_cast<double>(n_left) * left_gini +
                               static_cast<double>(n_right) * right_gini_sum) /
                              static_cast<double>(n);
      const double gain = node_gini - weighted;
      if (gain > best_gain) {
        best_gain = gain;
        best_feature = static_cast<std::int32_t>(f);
        best_threshold = 0.5 * (values[i].first + values[i + 1].first);
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition indices around the threshold.
  const auto mid_it = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return x.at(idx, static_cast<std::size_t>(best_feature)) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate split

  Node node;
  node.feature = best_feature;
  node.threshold = best_threshold;
  node.leaf_class = majority;
  nodes_.push_back(node);
  const auto me = static_cast<std::int32_t>(nodes_.size() - 1);

  const std::int32_t left = build(x, y, indices, begin, mid, depth + 1, config, rng);
  const std::int32_t right = build(x, y, indices, mid, end, depth + 1, config, rng);
  nodes_[static_cast<std::size_t>(me)].left = left;
  nodes_[static_cast<std::size_t>(me)].right = right;
  return me;
}

int DecisionTree::predict(std::span<const double> row) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::predict: not trained");
  std::int32_t i = 0;
  for (;;) {
    const Node& node = nodes_[static_cast<std::size_t>(i)];
    if (node.feature < 0 || node.left < 0 || node.right < 0) return node.leaf_class;
    i = row[static_cast<std::size_t>(node.feature)] <= node.threshold ? node.left : node.right;
  }
}

void DecisionTree::save(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(num_classes_));
  w.put_u64(depth_);
  w.put_u64(nodes_.size());
  for (const Node& n : nodes_) {
    w.put_u32(static_cast<std::uint32_t>(n.feature));
    w.put_f64(n.threshold);
    w.put_u32(static_cast<std::uint32_t>(n.left));
    w.put_u32(static_cast<std::uint32_t>(n.right));
    w.put_u32(static_cast<std::uint32_t>(n.leaf_class));
  }
}

void DecisionTree::load(util::ByteReader& r) {
  num_classes_ = static_cast<int>(r.get_u32());
  depth_ = r.get_u64();
  const std::uint64_t count = r.get_u64();
  nodes_.clear();
  nodes_.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    Node n;
    n.feature = static_cast<std::int32_t>(r.get_u32());
    n.threshold = r.get_f64();
    n.left = static_cast<std::int32_t>(r.get_u32());
    n.right = static_cast<std::int32_t>(r.get_u32());
    n.leaf_class = static_cast<std::int32_t>(r.get_u32());
    nodes_.push_back(n);
  }
}

std::uint64_t DecisionTree::byte_size() const { return nodes_.size() * sizeof(Node); }

std::int32_t DecisionTree::flatten_append(std::vector<std::int32_t>& feature,
                                          std::vector<double>& threshold,
                                          std::vector<std::int32_t>& left,
                                          std::vector<std::int32_t>& right,
                                          std::vector<std::int32_t>& leaf_class) const {
  if (nodes_.empty()) throw std::logic_error("DecisionTree::flatten_append: not trained");
  const auto offset = static_cast<std::int32_t>(feature.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    const auto self = static_cast<std::int32_t>(offset + static_cast<std::int32_t>(i));
    const bool leaf = n.feature < 0 || n.left < 0 || n.right < 0;
    feature.push_back(leaf ? -1 : n.feature);
    threshold.push_back(n.threshold);
    left.push_back(leaf ? self : n.left + offset);
    right.push_back(leaf ? self : n.right + offset);
    leaf_class.push_back(n.leaf_class);
  }
  return offset;
}

}  // namespace ddoshield::ml
