#include "ml/random_forest.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace ddoshield::ml {

RandomForest::RandomForest(RandomForestConfig config) : config_{config} {
  if (config_.n_estimators == 0) {
    throw std::invalid_argument("RandomForest: n_estimators must be > 0");
  }
}

void RandomForest::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("RandomForest::fit: X/y mismatch");
  if (x.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");

  num_classes_ = 1 + *std::max_element(y.begin(), y.end());
  num_classes_ = std::max(num_classes_, 2);

  util::Rng rng{config_.seed};
  const std::size_t sample_size =
      config_.max_samples_per_tree == 0
          ? x.rows()
          : std::min(config_.max_samples_per_tree, x.rows());

  trees_.clear();
  trees_.resize(config_.n_estimators);
  std::vector<std::size_t> bootstrap(sample_size);
  for (std::size_t t = 0; t < config_.n_estimators; ++t) {
    util::Rng tree_rng = rng.fork("tree-" + std::to_string(t));
    for (auto& idx : bootstrap) idx = tree_rng.uniform_u64(x.rows());  // with replacement
    trees_[t].fit(x, y, bootstrap, num_classes_, config_.tree, tree_rng);
  }
  rebuild_flat();
}

void RandomForest::FlatForest::clear() {
  feature.clear();
  threshold.clear();
  left.clear();
  right.clear();
  leaf_class.clear();
  roots.clear();
}

void RandomForest::rebuild_flat() {
  flat_.clear();
  flat_.roots.reserve(trees_.size());
  for (const DecisionTree& tree : trees_) {
    flat_.roots.push_back(tree.flatten_append(flat_.feature, flat_.threshold, flat_.left,
                                              flat_.right, flat_.leaf_class));
  }
}

int RandomForest::predict(std::span<const double> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict: not trained");
  // Majority vote over trees.
  std::array<std::uint32_t, 16> votes{};  // num_classes_ is small
  for (const auto& tree : trees_) {
    const int c = tree.predict(row);
    ++votes[static_cast<std::size_t>(c) % votes.size()];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

void RandomForest::score_batch(const DesignMatrix& x, Verdicts& out) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::score_batch: not trained");
  if (!batched_inference()) {
    score_rows_scalar(x, out);
    return;
  }

  const std::size_t n = x.rows();
  const std::size_t cols = x.cols();
  const double* data = x.data().data();
  out.assign(n, 0);

  // Same 16-slot vote layout (and the same index wrap) as the scalar
  // predict(), so argmax tie-breaking is identical by construction.
  constexpr std::size_t kVoteSlots = 16;
  constexpr std::size_t kRowBlock = 64;  // rows resident in L1 per pass
  std::array<std::uint32_t, kVoteSlots * kRowBlock> votes;

  const std::int32_t* feature = flat_.feature.data();
  const double* threshold = flat_.threshold.data();
  const std::int32_t* left = flat_.left.data();
  const std::int32_t* right = flat_.right.data();
  const std::int32_t* leaf_class = flat_.leaf_class.data();

  for (std::size_t base = 0; base < n; base += kRowBlock) {
    const std::size_t bn = std::min(kRowBlock, n - base);
    votes.fill(0);
    for (const std::int32_t root : flat_.roots) {
      // Tree-inner over a row block: the (shared) upper nodes of the tree
      // stay hot across the block's rows. (A lockstep multi-row descent
      // was tried here and measured slower: fully-grown trees have long
      // depth tails, so every lane pays the deepest lane's walk.)
      for (std::size_t r = 0; r < bn; ++r) {
        const double* row = data + (base + r) * cols;
        std::int32_t i = root;
        std::int32_t f = feature[static_cast<std::size_t>(i)];
        while (f >= 0) {
          const auto idx = static_cast<std::size_t>(i);
          // Compare + select compiles to a cmov: no mispredicted branch
          // per hop, unlike the scalar walker's per-node field tests.
          i = row[static_cast<std::size_t>(f)] <= threshold[idx] ? left[idx] : right[idx];
          f = feature[static_cast<std::size_t>(i)];
        }
        const auto c = static_cast<std::size_t>(leaf_class[static_cast<std::size_t>(i)]);
        ++votes[r * kVoteSlots + c % kVoteSlots];
      }
    }
    for (std::size_t r = 0; r < bn; ++r) {
      const std::uint32_t* v = &votes[r * kVoteSlots];
      out[base + r] = static_cast<int>(std::max_element(v, v + kVoteSlots) - v);
    }
  }
}

void RandomForest::save(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(num_classes_));
  w.put_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(w);
}

void RandomForest::load(util::ByteReader& r) {
  num_classes_ = static_cast<int>(r.get_u32());
  const std::uint64_t count = r.get_u64();
  trees_.assign(count, DecisionTree{});
  for (auto& tree : trees_) tree.load(r);
  rebuild_flat();
}

std::uint64_t RandomForest::parameter_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& tree : trees_) bytes += tree.byte_size();
  return bytes;
}

std::uint64_t RandomForest::inference_scratch_bytes() const {
  // Vote counters plus a pointer-chase per tree; effectively constant.
  return 16 * sizeof(std::uint32_t) + trees_.size() * sizeof(void*);
}

}  // namespace ddoshield::ml
