#include "ml/random_forest.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace ddoshield::ml {

RandomForest::RandomForest(RandomForestConfig config) : config_{config} {
  if (config_.n_estimators == 0) {
    throw std::invalid_argument("RandomForest: n_estimators must be > 0");
  }
}

void RandomForest::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("RandomForest::fit: X/y mismatch");
  if (x.empty()) throw std::invalid_argument("RandomForest::fit: empty dataset");

  num_classes_ = 1 + *std::max_element(y.begin(), y.end());
  num_classes_ = std::max(num_classes_, 2);

  util::Rng rng{config_.seed};
  const std::size_t sample_size =
      config_.max_samples_per_tree == 0
          ? x.rows()
          : std::min(config_.max_samples_per_tree, x.rows());

  trees_.clear();
  trees_.resize(config_.n_estimators);
  std::vector<std::size_t> bootstrap(sample_size);
  for (std::size_t t = 0; t < config_.n_estimators; ++t) {
    util::Rng tree_rng = rng.fork("tree-" + std::to_string(t));
    for (auto& idx : bootstrap) idx = tree_rng.uniform_u64(x.rows());  // with replacement
    trees_[t].fit(x, y, bootstrap, num_classes_, config_.tree, tree_rng);
  }
}

int RandomForest::predict(std::span<const double> row) const {
  if (trees_.empty()) throw std::logic_error("RandomForest::predict: not trained");
  // Majority vote over trees.
  std::array<std::uint32_t, 16> votes{};  // num_classes_ is small
  for (const auto& tree : trees_) {
    const int c = tree.predict(row);
    ++votes[static_cast<std::size_t>(c) % votes.size()];
  }
  return static_cast<int>(std::max_element(votes.begin(), votes.end()) - votes.begin());
}

void RandomForest::save(util::ByteWriter& w) const {
  w.put_u32(static_cast<std::uint32_t>(num_classes_));
  w.put_u64(trees_.size());
  for (const auto& tree : trees_) tree.save(w);
}

void RandomForest::load(util::ByteReader& r) {
  num_classes_ = static_cast<int>(r.get_u32());
  const std::uint64_t count = r.get_u64();
  trees_.assign(count, DecisionTree{});
  for (auto& tree : trees_) tree.load(r);
}

std::uint64_t RandomForest::parameter_bytes() const {
  std::uint64_t bytes = 0;
  for (const auto& tree : trees_) bytes += tree.byte_size();
  return bytes;
}

std::uint64_t RandomForest::inference_scratch_bytes() const {
  // Vote counters plus a pointer-chase per tree; effectively constant.
  return 16 * sizeof(std::uint32_t) + trees_.size() * sizeof(void*);
}

}  // namespace ddoshield::ml
