// Random Forest classifier: bagged CART trees with per-split feature
// subsampling and majority voting (§III-B of the paper, scikit-learn's
// RandomForestClassifier role).
#pragma once

#include <cstdint>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/decision_tree.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {

struct RandomForestConfig {
  /// Defaults mirror scikit-learn's RandomForestClassifier (the paper's
  /// implementation): 100 fully-grown trees (no depth limit, leaves down
  /// to single samples) with sqrt(n_features) feature subsampling.
  std::size_t n_estimators = 100;
  TreeConfig tree{.max_depth = 64, .min_samples_split = 2, .min_samples_leaf = 1,
                  .features_per_split = 4};  // ~sqrt(17)
  /// Bootstrap sample size per tree, capped to bound training cost on
  /// multi-hundred-thousand-row datasets; 0 = full dataset size.
  std::size_t max_samples_per_tree = 3500;
  std::uint64_t seed = 1337;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestConfig config = {});

  std::string name() const override { return "rf"; }
  void fit(const DesignMatrix& x, const std::vector<int>& y) override;
  int predict(std::span<const double> row) const override;
  /// Batched kernel over a flattened whole-forest node layout (SoA arrays,
  /// leaves as self-loops), walked row-block by row-block with a cmov
  /// select per hop — no virtual dispatch per tree, no pointer chase into
  /// per-tree vectors. Bit-identical to predict() per row; falls back to
  /// the scalar loop when set_batched_inference(false).
  void score_batch(const DesignMatrix& x, Verdicts& out) const override;
  bool trained() const override { return !trees_.empty(); }

  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;

  std::uint64_t parameter_bytes() const override;
  std::uint64_t inference_scratch_bytes() const override;

  std::size_t tree_count() const { return trees_.size(); }
  const RandomForestConfig& config() const { return config_; }

 private:
  /// Whole-forest SoA node arrays for the batched kernel, rebuilt after
  /// fit() and load() (inference-only; serialization stays tree-shaped).
  struct FlatForest {
    std::vector<std::int32_t> feature;  // -1 marks a leaf
    std::vector<double> threshold;
    std::vector<std::int32_t> left, right;  // absolute; self-loop at leaves
    std::vector<std::int32_t> leaf_class;
    std::vector<std::int32_t> roots;  // one per tree
    void clear();
  };

  void rebuild_flat();

  RandomForestConfig config_;
  std::vector<DecisionTree> trees_;
  FlatForest flat_;
  int num_classes_ = 2;
};

}  // namespace ddoshield::ml
