// Feature-usefulness evaluation (§IV-D footnote / future work).
//
// The paper deliberately skips feature selection and blames its real-time
// accuracy dips on that choice ("we do not use a features extraction
// algorithm that evaluates the actual usefulness of each feature. This
// will be part of future work."). This module is that future work: a
// Fisher-score ranking of features by class separability, a top-k column
// selector, and a serving wrapper that projects full rows onto the
// selected subset so any Classifier can run on curated features.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/design_matrix.hpp"

namespace ddoshield::ml {

struct FeatureScore {
  std::size_t index = 0;
  double score = 0.0;  // Fisher score: (mu1-mu0)^2 / (var1 + var0)
};

/// Ranks every column by Fisher score, best first. Constant features and
/// features with zero between-class separation score 0.
std::vector<FeatureScore> rank_features(const DesignMatrix& x, const std::vector<int>& y);

/// Copies the given columns (in the given order) into a narrower matrix.
DesignMatrix select_columns(const DesignMatrix& x, const std::vector<std::size_t>& columns);

/// Convenience: the top-k column indices from a ranking.
std::vector<std::size_t> top_k_columns(const std::vector<FeatureScore>& ranking,
                                       std::size_t k);

/// Serves a model trained on a column subset: projects each full-width row
/// onto the subset before delegating. Owns nothing; the inner model and
/// the column list must outlive it.
class ColumnSubsetClassifier : public Classifier {
 public:
  ColumnSubsetClassifier(const Classifier& inner, std::vector<std::size_t> columns)
      : inner_{inner}, columns_{std::move(columns)} {}

  std::string name() const override { return inner_.name(); }
  void fit(const DesignMatrix&, const std::vector<int>&) override;
  int predict(std::span<const double> row) const override;
  bool trained() const override { return inner_.trained(); }
  void save(util::ByteWriter& w) const override;
  void load(util::ByteReader& r) override;
  std::uint64_t parameter_bytes() const override { return inner_.parameter_bytes(); }
  std::uint64_t inference_scratch_bytes() const override {
    return inner_.inference_scratch_bytes() + columns_.size() * sizeof(double);
  }

  const std::vector<std::size_t>& columns() const { return columns_; }

 private:
  const Classifier& inner_;
  std::vector<std::size_t> columns_;
};

}  // namespace ddoshield::ml
