// Federated NIDS training (§VI future work).
//
// The paper's stated next step: "enhance DDoShield-IoT to emulate a
// FL-based Network Intrusion Detection System". FedAvg over the CNN
// detector: each device keeps its local capture shard private, trains the
// shared architecture locally for a few epochs, and only parameter vectors
// travel; the aggregator weighs client updates by shard size. Feature
// scaling is a pre-agreed deployment artifact (fitted once on a public
// calibration sample), as in real FL-NIDS deployments.
#pragma once

#include <cstdint>
#include <vector>

#include "ml/cnn.hpp"
#include "ml/design_matrix.hpp"

namespace ddoshield::ml {

struct FederatedConfig {
  std::size_t rounds = 5;
  std::size_t local_epochs = 1;
  CnnConfig cnn;  // shared architecture; cnn.epochs is ignored
};

/// One client's private shard.
struct FederatedShard {
  const DesignMatrix* x = nullptr;
  const std::vector<int>* y = nullptr;
};

struct FederatedRoundStats {
  std::size_t round = 0;
  double mean_parameter_delta = 0.0;  // mean |global_t - global_{t-1}|
};

class FederatedCnnTrainer {
 public:
  explicit FederatedCnnTrainer(FederatedConfig config = {});

  /// Runs FedAvg and returns the global model. `scaler` is the shared
  /// normalisation artifact (fit it on any public calibration matrix).
  /// Throws if shards are empty or widths disagree with the scaler.
  Cnn1D train(const std::vector<FederatedShard>& shards, const StandardScaler& scaler);

  const std::vector<FederatedRoundStats>& round_stats() const { return round_stats_; }

 private:
  FederatedConfig config_;
  std::vector<FederatedRoundStats> round_stats_;
};

/// Splits a dataset matrix into per-client shards by row index modulo
/// `clients` (a convenience for experiments; real deployments shard by
/// capture point). Returned matrices own their rows.
void shard_dataset(const DesignMatrix& x, const std::vector<int>& y, std::size_t clients,
                   std::vector<DesignMatrix>& out_x, std::vector<std::vector<int>>& out_y);

}  // namespace ddoshield::ml
