#include "ml/svm.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ddoshield::ml {

LinearSvm::LinearSvm(SvmConfig config) : config_{config} {
  if (config_.lambda <= 0.0) throw std::invalid_argument("LinearSvm: lambda must be > 0");
  if (config_.epochs == 0) throw std::invalid_argument("LinearSvm: epochs must be > 0");
}

void LinearSvm::fit(const DesignMatrix& x, const std::vector<int>& y) {
  if (x.rows() != y.size()) throw std::invalid_argument("LinearSvm::fit: X/y mismatch");
  if (x.empty()) throw std::invalid_argument("LinearSvm::fit: empty dataset");

  util::Rng rng{config_.seed};
  scaler_.fit(x);
  DesignMatrix sub_raw;
  std::vector<int> sub_y;
  subsample(x, y, config_.max_training_rows, rng, sub_raw, sub_y);
  const DesignMatrix data = scaler_.transform(sub_raw);
  const std::size_t n = data.rows();
  const std::size_t dims = data.cols();

  std::vector<double> w(dims, 0.0);
  double b = 0.0;
  // Polyak-style averaged iterate: the running mean of (w, b) converges
  // more stably than the last SGD iterate.
  std::vector<double> w_avg(dims, 0.0);
  double b_avg = 0.0;
  std::uint64_t averaged = 0;

  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;

  // Step-size offset keeps the first steps bounded (eta <= 1), and
  // averaging starts after the first epoch's burn-in.
  const double t0 = 1.0 / config_.lambda;
  std::uint64_t t = 0;
  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.shuffle(order);
    for (const std::size_t i : order) {
      ++t;
      const double eta = 1.0 / (config_.lambda * (static_cast<double>(t) + t0));
      const double label = sub_y[i] != 0 ? 1.0 : -1.0;
      const auto row = data.row(i);
      double margin = b;
      for (std::size_t d = 0; d < dims; ++d) margin += w[d] * row[d];
      margin *= label;

      // Pegasos update: shrink by the regulariser, step on hinge violation.
      const double scale = 1.0 - eta * config_.lambda;
      for (std::size_t d = 0; d < dims; ++d) w[d] *= scale;
      if (margin < 1.0) {
        for (std::size_t d = 0; d < dims; ++d) w[d] += eta * label * row[d];
        b += eta * label;
      }

      if (epoch > 0 || config_.epochs == 1) {
        ++averaged;
        const double k = 1.0 / static_cast<double>(averaged);
        for (std::size_t d = 0; d < dims; ++d) w_avg[d] += (w[d] - w_avg[d]) * k;
        b_avg += (b - b_avg) * k;
      }
    }
  }
  weights_ = std::move(w_avg);
  bias_ = b_avg;
}

double LinearSvm::decision_value(std::span<const double> row) const {
  if (weights_.empty()) throw std::logic_error("LinearSvm: not trained");
  const std::vector<double> z = scaler_.transform(row);
  double v = bias_;
  for (std::size_t d = 0; d < weights_.size(); ++d) v += weights_[d] * z[d];
  return v;
}

int LinearSvm::predict(std::span<const double> row) const {
  return decision_value(row) > 0.0 ? 1 : 0;
}

void LinearSvm::save(util::ByteWriter& w) const {
  scaler_.save(w);
  w.put_f64_span(weights_);
  w.put_f64(bias_);
}

void LinearSvm::load(util::ByteReader& r) {
  scaler_.load(r);
  weights_ = r.get_f64_vector();
  bias_ = r.get_f64();
  if (weights_.size() != scaler_.mean().size()) {
    throw std::invalid_argument("LinearSvm::load: inconsistent model file");
  }
}

std::uint64_t LinearSvm::parameter_bytes() const {
  return (weights_.size() + 1 + 2 * scaler_.mean().size()) * sizeof(double);
}

std::uint64_t LinearSvm::inference_scratch_bytes() const {
  return scaler_.mean().size() * sizeof(double);
}

}  // namespace ddoshield::ml
