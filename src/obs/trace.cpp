#include "obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <ostream>

#include "obs/metrics.hpp"

namespace ddoshield::obs {

namespace {

// Escapes the characters JSON strings cannot carry raw. Instrument names
// are ASCII identifiers in practice; this keeps the output valid even if
// one is not.
void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      case '\r': out << "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xF] << hex[c & 0xF];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Sim-time nanoseconds to trace microseconds with sub-µs precision.
void write_micros(std::ostream& out, std::int64_t ns) {
  out << ns / 1000;
  const std::int64_t frac = ns % 1000;
  if (frac != 0) {
    char buf[8];
    std::snprintf(buf, sizeof buf, ".%03lld", static_cast<long long>(frac < 0 ? -frac : frac));
    out << buf;
  }
}

}  // namespace

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

bool TraceRecorder::admit() {
  if (events_.size() < budget_) return true;
  ++dropped_;
  if (!dropped_counter_)
    dropped_counter_ = &MetricsRegistry::global().counter("trace.dropped_events");
  dropped_counter_->inc();
  return false;
}

void TraceRecorder::span(std::string_view name, std::string_view category,
                         util::SimTime start, util::SimTime duration) {
  if (!enabled_ || !admit()) return;
  events_.push_back(Event{'X', std::string{name}, std::string{category}, start.ns(),
                          duration.ns(), 0.0});
}

void TraceRecorder::instant(std::string_view name, std::string_view category,
                            util::SimTime at) {
  if (!enabled_ || !admit()) return;
  events_.push_back(Event{'i', std::string{name}, std::string{category}, at.ns(), 0, 0.0});
}

void TraceRecorder::counter(std::string_view name, util::SimTime at, double value) {
  if (!enabled_ || !admit()) return;
  events_.push_back(Event{'C', std::string{name}, "counters", at.ns(), 0, value});
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  // Sort by timestamp (stable, so simultaneous events keep record order);
  // chrome://tracing tolerates any order but monotonic ts makes the file
  // diffable and lets tests assert on it directly.
  std::vector<const Event*> sorted;
  sorted.reserve(events_.size());
  for (const auto& e : events_) sorted.push_back(&e);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const Event* a, const Event* b) { return a->ts_ns < b->ts_ns; });

  // One pseudo-thread per category, in first-seen order.
  std::map<std::string, int, std::less<>> tids;
  const auto tid_of = [&tids](const std::string& category) {
    auto it = tids.find(category);
    if (it == tids.end()) it = tids.emplace(category, static_cast<int>(tids.size()) + 1).first;
    return it->second;
  };

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Event* e : sorted) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    write_json_string(out, e->name);
    out << ",\"cat\":";
    write_json_string(out, e->category);
    out << ",\"ph\":\"" << e->phase << "\",\"pid\":1,\"tid\":" << tid_of(e->category)
        << ",\"ts\":";
    write_micros(out, e->ts_ns);
    if (e->phase == 'X') {
      out << ",\"dur\":";
      write_micros(out, e->dur_ns);
    } else if (e->phase == 'i') {
      out << ",\"s\":\"g\"";
    } else if (e->phase == 'C') {
      out << ",\"args\":{\"value\":" << e->value << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

bool TraceRecorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  write_chrome_trace(out);
  return out.good();
}

}  // namespace ddoshield::obs
