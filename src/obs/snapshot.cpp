#include "obs/snapshot.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

#include "obs/latency.hpp"

namespace ddoshield::obs {

namespace {

constexpr std::string_view kSchemaV1 = "ddoshield-metrics-v1";
constexpr std::string_view kSchemaV2 = "ddoshield-metrics-v2";

// %.17g round-trips doubles; JSON has no inf/nan, so degrade those to 0.
void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void write_name(std::ostream& out, const std::string& name) {
  out << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

// The {"count"..."p99"[,"p999"]} body shared by histogram and latency
// entries. `with_p999` distinguishes schema generations.
void write_hist_body(std::ostream& out, std::uint64_t count, std::uint64_t sum,
                     std::uint64_t min, std::uint64_t max, double mean, double p50,
                     double p90, double p99, bool with_p999, double p999) {
  out << "{\"count\": " << count << ", \"sum\": " << sum << ", \"min\": " << min
      << ", \"max\": " << max << ", \"mean\": ";
  write_number(out, mean);
  out << ", \"p50\": ";
  write_number(out, p50);
  out << ", \"p90\": ";
  write_number(out, p90);
  out << ", \"p99\": ";
  write_number(out, p99);
  if (with_p999) {
    out << ", \"p999\": ";
    write_number(out, p999);
  }
  out << "}";
}

// ---------------------------------------------------------------------------
// Reader: a pointer scanner for the controlled format above. Not a general
// JSON parser — it accepts exactly the object shapes the writers produce
// (string keys, number / string / flat-object values, fixed section order).

struct Scanner {
  const char* p;
  const char* end;

  void ws() {
    while (p < end && (*p == ' ' || *p == '\n' || *p == '\t' || *p == '\r')) ++p;
  }
  bool lit(char c) {
    ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    ws();
    return p < end && *p == c;
  }
  bool str(std::string& out) {
    if (!lit('"')) return false;
    out.clear();
    while (p < end && *p != '"') {
      char c = *p++;
      if (c == '\\' && p < end) c = *p++;
      out.push_back(c);
    }
    return lit('"');
  }
  bool num(double& out) {
    ws();
    char* after = nullptr;
    out = std::strtod(p, &after);
    if (after == p) return false;
    p = after;
    return true;
  }
  bool u64(std::uint64_t& out) {
    ws();
    char* after = nullptr;
    out = std::strtoull(p, &after, 10);
    if (after == p) return false;
    p = after;
    return true;
  }
};

// Parses {"key": <num>, ...} assigning fields of a SnapshotHistogram by
// key; unknown keys fail (the format is closed).
bool parse_hist_body(Scanner& s, SnapshotHistogram& h) {
  if (!s.lit('{')) return false;
  if (s.lit('}')) return true;
  std::string key;
  do {
    if (!s.str(key) || !s.lit(':')) return false;
    if (key == "count") {
      if (!s.u64(h.count)) return false;
    } else if (key == "sum") {
      if (!s.u64(h.sum)) return false;
    } else if (key == "min") {
      if (!s.u64(h.min)) return false;
    } else if (key == "max") {
      if (!s.u64(h.max)) return false;
    } else if (key == "mean") {
      if (!s.num(h.mean)) return false;
    } else if (key == "p50") {
      if (!s.num(h.p50)) return false;
    } else if (key == "p90") {
      if (!s.num(h.p90)) return false;
    } else if (key == "p99") {
      if (!s.num(h.p99)) return false;
    } else if (key == "p999") {
      if (!s.num(h.p999)) return false;
    } else {
      return false;
    }
  } while (s.lit(','));
  return s.lit('}');
}

bool parse_gauge_body(Scanner& s, SnapshotGauge& g) {
  if (!s.lit('{')) return false;
  if (s.lit('}')) return true;
  std::string key;
  do {
    if (!s.str(key) || !s.lit(':')) return false;
    if (key == "value") {
      if (!s.num(g.value)) return false;
    } else if (key == "high_water") {
      if (!s.num(g.high_water)) return false;
    } else {
      return false;
    }
  } while (s.lit(','));
  return s.lit('}');
}

// Parses a named section {"name": <entry>, ...} via a per-entry callback.
template <typename Entry, typename Parse>
bool parse_section(Scanner& s, std::map<std::string, Entry>& into, Parse parse) {
  if (!s.lit('{')) return false;
  if (s.lit('}')) return true;
  std::string name;
  do {
    if (!s.str(name) || !s.lit(':')) return false;
    Entry e{};
    if (!parse(s, e)) return false;
    into.emplace(std::move(name), std::move(e));
  } while (s.lit(','));
  return s.lit('}');
}

bool expect_key(Scanner& s, std::string_view key) {
  std::string got;
  return s.str(got) && got == key && s.lit(':');
}

}  // namespace

void write_json_snapshot(const MetricsRegistry& registry, std::ostream& out,
                         SnapshotVersion version, const LatencyTracker* latency) {
  const bool v2 = version == SnapshotVersion::kV2;
  out << "{\n  \"schema\": \"" << (v2 ? kSchemaV2 : kSchemaV1)
      << "\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": " << c.value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": {\"value\": ";
    write_number(out, g.value());
    out << ", \"high_water\": ";
    write_number(out, g.high_water());
    out << "}";
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": ";
    write_hist_body(out, h.count(), h.sum(), h.min(), h.max(), h.mean(), h.p50(),
                    h.p90(), h.p99(), v2, h.p999());
  }
  if (!v2) {
    out << "\n  }\n}\n";
    return;
  }
  out << "\n  },\n  \"latency\": {";
  first = true;
  if (latency) {
    for (const auto& [name, h] : latency->all()) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      write_name(out, name);
      out << ": ";
      write_hist_body(out, h.count(), h.sum(), h.min(), h.max(), h.mean(), h.p50(),
                      h.p90(), h.p99(), /*with_p999=*/true, h.p999());
    }
  }
  out << "\n  }\n}\n";
}

bool write_json_snapshot_file(const MetricsRegistry& registry, const std::string& path,
                              SnapshotVersion version, const LatencyTracker* latency) {
  std::ofstream out{path};
  if (!out) return false;
  write_json_snapshot(registry, out, version, latency);
  return out.good();
}

bool read_json_snapshot(std::istream& in, SnapshotData& out) {
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Scanner s{text.data(), text.data() + text.size()};

  if (!s.lit('{')) return false;
  if (!expect_key(s, "schema") || !s.str(out.schema)) return false;
  if (out.schema != kSchemaV1 && out.schema != kSchemaV2) return false;
  const bool v2 = out.schema == kSchemaV2;

  if (!s.lit(',') || !expect_key(s, "counters")) return false;
  if (!parse_section(s, out.counters,
                     [](Scanner& sc, std::uint64_t& v) { return sc.u64(v); }))
    return false;
  if (!s.lit(',') || !expect_key(s, "gauges")) return false;
  if (!parse_section(s, out.gauges, parse_gauge_body)) return false;
  if (!s.lit(',') || !expect_key(s, "histograms")) return false;
  if (!parse_section(s, out.histograms, parse_hist_body)) return false;
  if (v2) {
    if (!s.lit(',') || !expect_key(s, "latency")) return false;
    if (!parse_section(s, out.latency, parse_hist_body)) return false;
  }
  return s.lit('}');
}

bool read_json_snapshot_file(const std::string& path, SnapshotData& out) {
  std::ifstream in{path};
  if (!in) return false;
  return read_json_snapshot(in, out);
}

void write_json_snapshot(const SnapshotData& data, std::ostream& out) {
  const bool v2 = data.schema != kSchemaV1;
  out << "{\n  \"schema\": \"" << (v2 ? kSchemaV2 : kSchemaV1)
      << "\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : data.counters) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": " << v;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : data.gauges) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": {\"value\": ";
    write_number(out, g.value);
    out << ", \"high_water\": ";
    write_number(out, g.high_water);
    out << "}";
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : data.histograms) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": ";
    write_hist_body(out, h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p90, h.p99,
                    v2, h.p999);
  }
  if (!v2) {
    out << "\n  }\n}\n";
    return;
  }
  out << "\n  },\n  \"latency\": {";
  first = true;
  for (const auto& [name, h] : data.latency) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": ";
    write_hist_body(out, h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p90, h.p99,
                    /*with_p999=*/true, h.p999);
  }
  out << "\n  }\n}\n";
}

}  // namespace ddoshield::obs
