#include "obs/snapshot.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace ddoshield::obs {

namespace {

// %.17g round-trips doubles; JSON has no inf/nan, so degrade those to 0.
void write_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << 0;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void write_name(std::ostream& out, const std::string& name) {
  out << '"';
  for (const char c : name) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

void write_json_snapshot(const MetricsRegistry& registry, std::ostream& out) {
  out << "{\n  \"schema\": \"ddoshield-metrics-v1\",\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : registry.counters()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": " << c.value();
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : registry.gauges()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": {\"value\": ";
    write_number(out, g.value());
    out << ", \"high_water\": ";
    write_number(out, g.high_water());
    out << "}";
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : registry.histograms()) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    write_name(out, name);
    out << ": {\"count\": " << h.count() << ", \"sum\": " << h.sum()
        << ", \"min\": " << h.min() << ", \"max\": " << h.max() << ", \"mean\": ";
    write_number(out, h.mean());
    out << ", \"p50\": ";
    write_number(out, h.quantile(0.50));
    out << ", \"p90\": ";
    write_number(out, h.quantile(0.90));
    out << ", \"p99\": ";
    write_number(out, h.quantile(0.99));
    out << "}";
  }
  out << "\n  }\n}\n";
}

bool write_json_snapshot_file(const MetricsRegistry& registry, const std::string& path) {
  std::ofstream out{path};
  if (!out) return false;
  write_json_snapshot(registry, out);
  return out.good();
}

}  // namespace ddoshield::obs
