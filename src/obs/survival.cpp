#include "obs/survival.hpp"

#include <cstdio>

namespace ddoshield::obs {

SurvivalMeter& SurvivalMeter::global() {
  static SurvivalMeter meter;
  return meter;
}

void SurvivalMeter::reset() {
  connects_attempted_ = 0;
  connects_succeeded_ = 0;
  connects_failed_ = 0;
  requests_completed_ = 0;
  requests_failed_ = 0;
  benign_bytes_ = 0;
  latency_ns_.reset();
}

SurvivalReport SurvivalMeter::report() const {
  SurvivalReport r;
  r.connects_attempted = connects_attempted_;
  r.connects_succeeded = connects_succeeded_;
  r.connects_failed = connects_failed_;
  r.requests_completed = requests_completed_;
  r.requests_failed = requests_failed_;
  r.benign_bytes = benign_bytes_;
  r.latency_samples = latency_ns_.count();
  r.latency_mean_ns = latency_ns_.mean();
  r.latency_p50_ns = latency_ns_.p50();
  r.latency_p99_ns = latency_ns_.p99();
  return r;
}

std::string SurvivalReport::summary() const {
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "benign connects:  %llu/%llu succeeded (%.1f%%), %llu timed out\n"
                "benign requests:  %llu completed, %llu failed (%.1f%% success)\n"
                "benign goodput:   %llu bytes\n"
                "benign latency:   p50 %.3f ms  p99 %.3f ms  mean %.3f ms (%llu samples)",
                static_cast<unsigned long long>(connects_succeeded),
                static_cast<unsigned long long>(connects_attempted),
                100.0 * connect_success_rate(),
                static_cast<unsigned long long>(connects_failed),
                static_cast<unsigned long long>(requests_completed),
                static_cast<unsigned long long>(requests_failed),
                100.0 * request_success_rate(),
                static_cast<unsigned long long>(benign_bytes), latency_p50_ns / 1e6,
                latency_p99_ns / 1e6, latency_mean_ns / 1e6,
                static_cast<unsigned long long>(latency_samples));
  return buf;
}

}  // namespace ddoshield::obs
