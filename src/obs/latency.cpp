#include "obs/latency.hpp"

#include <algorithm>

namespace ddoshield::obs {

std::uint64_t LogLinearHistogram::bucket_floor(std::size_t i) {
  if (i < 2 * kSub) return i;
  const std::uint64_t shift = i / kSub - 1;
  const std::uint64_t sub = i % kSub;
  return (kSub + sub) << shift;
}

std::uint64_t LogLinearHistogram::bucket_width(std::size_t i) {
  if (i < 2 * kSub) return 1;
  return 1ull << (i / kSub - 1);
}

double LogLinearHistogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  // One sample is every quantile exactly; skip the interpolation (see
  // Histogram::quantile — same single-out-of-range-sample clamp).
  if (count_ == 1) return static_cast<double>(min());
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);

  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Linear interpolation inside the sub-bucket by the fraction of its
      // population below the target rank.
      const double lo = static_cast<double>(bucket_floor(i));
      const double width = static_cast<double>(bucket_width(i));
      const double into = 1.0 - (static_cast<double>(seen) - target) /
                                    static_cast<double>(buckets_[i]);
      const double v = lo + width * into;
      return std::min(std::max(v, static_cast<double>(min())), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

LatencyTracker& LatencyTracker::global() {
  static LatencyTracker tracker;
  return tracker;
}

LogLinearHistogram& LatencyTracker::series(std::string_view name) {
  auto it = series_.find(name);
  if (it == series_.end()) it = series_.emplace(std::string{name}, LogLinearHistogram{}).first;
  return it->second;
}

void LatencyTracker::reset() {
  for (auto& [name, h] : series_) h.reset();
}

}  // namespace ddoshield::obs
