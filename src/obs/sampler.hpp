// Periodic gauge sampler driven by the simulation clock.
//
// A Sampler owns a set of probes — closures that read a live quantity
// (event-queue depth, link queue occupancy, active TCP connections, IDS
// window backlog) — and, on a fixed sim-time cadence, writes each probe's
// value into a named gauge in a MetricsRegistry. When tracing is enabled
// it also emits one Chrome counter event per probe per tick, so the
// sampled series render as graphs in chrome://tracing.
//
// start() is duck-typed on the scheduler (anything with now() and
// schedule(delay, fn), i.e. net::Simulator) so obs stays a leaf library
// under util and net can itself link against obs for instrumentation.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::obs {

struct SamplerConfig {
  util::SimTime period = util::SimTime::millis(100);
  /// Last tick scheduled at or before this time; zero means unbounded
  /// (caller must drive the sim with run_until, never run_all).
  util::SimTime until;
};

class Sampler {
 public:
  explicit Sampler(MetricsRegistry& registry, SamplerConfig config = {});

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Registers a probe whose value lands in registry gauge `gauge_name`.
  void add_probe(std::string gauge_name, std::function<double()> probe);

  /// Schedules the first tick at now() + period; each tick re-arms until
  /// stop() or config.until. The scheduler must outlive the sampler.
  template <typename Sim>
  void start(Sim& sim) {
    running_ = true;
    arm(sim);
  }

  void stop() { running_ = false; }

  /// Runs every probe once against the given timestamp (also what each
  /// scheduled tick does with the simulator's clock).
  void sample_now(util::SimTime now);

  std::uint64_t samples_taken() const { return samples_taken_; }
  util::SimTime last_sample_at() const { return last_sample_at_; }
  const SamplerConfig& config() const { return config_; }

 private:
  struct Probe {
    std::string gauge_name;
    Gauge* gauge;
    std::function<double()> fn;
  };

  template <typename Sim>
  void arm(Sim& sim) {
    if (!config_.until.is_zero() && sim.now() + config_.period > config_.until) return;
    sim.schedule(config_.period, [this, &sim] {
      if (!running_) return;
      sample_now(sim.now());
      arm(sim);
    });
  }

  MetricsRegistry& registry_;
  SamplerConfig config_;
  std::vector<Probe> probes_;
  bool running_ = false;
  std::uint64_t samples_taken_ = 0;
  util::SimTime last_sample_at_;
};

}  // namespace ddoshield::obs
