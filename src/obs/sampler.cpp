#include "obs/sampler.hpp"

#include <stdexcept>

namespace ddoshield::obs {

Sampler::Sampler(MetricsRegistry& registry, SamplerConfig config)
    : registry_{registry}, config_{config} {
  if (config_.period <= util::SimTime{}) {
    throw std::invalid_argument("Sampler: period must be positive");
  }
}

void Sampler::add_probe(std::string gauge_name, std::function<double()> probe) {
  Gauge& gauge = registry_.gauge(gauge_name);
  probes_.push_back(Probe{std::move(gauge_name), &gauge, std::move(probe)});
}

void Sampler::sample_now(util::SimTime now) {
  auto& trace = TraceRecorder::global();
  const bool tracing = trace.enabled();
  for (const auto& probe : probes_) {
    const double v = probe.fn();
    probe.gauge->set(v);
    if (tracing) trace.counter(probe.gauge_name, now, v);
  }
  ++samples_taken_;
  last_sample_at_ = now;
}

}  // namespace ddoshield::obs
