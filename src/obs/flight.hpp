// FlightRecorder: always-on, bounded ring of stage-stamped lifecycle
// events for sampled packets and detection windows — the testbed's black
// box. When something goes wrong (an invariant violation, a fatal signal),
// the last N events plus a final metrics snapshot are serialized to
// flight_dump.json so the crash site arrives with its own timeline.
//
// Clock domains (DESIGN.md §11): net-layer stages carry the simulated
// clock (deterministic, replayable); IDS/ML stages additionally carry a
// monotonic wall clock, because inference latency is real time the
// simulation never sees. A dump therefore distinguishes sim_ns (always
// comparable across a replay) from wall_ns (machine-dependent; zeroed when
// the recorder is configured with wall_clock=false, which makes dumps
// byte-reproducible for seeded testkit runs).
//
// Cost discipline: per-packet stages are recorded only for a 1-in-N
// uid-sampled subset (N a power of two, default 16), so the hot path pays
// one predictable branch per site when the packet is not sampled and a
// handful of stores when it is. Per-window stages are always recorded —
// windows close at 1 Hz, not per packet. The ring never allocates after
// configure(); old events are overwritten, counted in flight.dropped.
//
// Thread rules: record() is simulation-thread only, like the registry's
// instruments. The inference worker never records; the IDS records the
// submit/complete stamps from the simulation thread as it hands off and
// drains work.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace ddoshield::obs {

class Counter;
class TraceRecorder;

/// Lifecycle stages a sampled packet or window passes through, in
/// pipeline order. Packet stages are keyed by packet uid; window stages
/// (kWindowClose onward) by window index.
enum class FlightStage : std::uint8_t {
  kNetEnqueue = 0,   // accepted into a link's drop-tail queue
  kLinkTx,           // serialization onto the wire began
  kLinkRx,           // delivered to the peer node
  kTcpDeliver,       // handed to the destination TCP stack
  kCaptureTap,       // observed by the capture tap (IDS ingress)
  kWindowClose,      // detection window sealed, features start
  kInferSubmit,      // design matrix handed to the scoring path
  kInferComplete,    // verdicts back from the scoring path
  kVerdict,          // window report finalized
};
constexpr std::size_t kFlightStageCount = 9;

std::string_view to_string(FlightStage stage);

struct FlightEvent {
  std::uint64_t id = 0;       // packet uid, or window index for window stages
  FlightStage stage = FlightStage::kNetEnqueue;
  std::int64_t sim_ns = 0;    // simulated clock
  std::int64_t wall_ns = 0;   // monotonic wall clock; 0 for net stages or
                              // when wall_clock is configured off
  std::uint64_t arg = 0;      // stage detail: wire bytes, window packets,
                              // batch ns, predicted-malicious count
};

struct FlightConfig {
  /// Ring slots; rounded up to a power of two. Also the maximum events a
  /// post-mortem dump can carry.
  std::size_t capacity = 4096;
  /// Per-packet stages record 1 in this many uids (power of two; 1 = all).
  std::uint32_t sample_every = 16;
  /// Stamp a monotonic wall clock on IDS/ML stages. Off = wall_ns is 0
  /// everywhere and dumps of seeded runs are byte-identical.
  bool wall_clock = true;
};

class FlightRecorder {
 public:
  FlightRecorder();
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// The process-wide recorder every instrumentation site uses.
  static FlightRecorder& global();

  /// Applies a new geometry/sampling config and clears the ring.
  void configure(const FlightConfig& config);
  const FlightConfig& config() const { return config_; }

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Sampling decision for per-packet stages: one branch when disabled.
  bool sampled(std::uint64_t uid) const {
    return enabled_ && (uid & sample_mask_) == 0;
  }

  /// Appends one event to the ring. Callers gate per-packet stages with
  /// sampled(uid) first; window stages gate on enabled() only.
  void record(FlightStage stage, std::uint64_t id, std::int64_t sim_ns,
              std::int64_t wall_ns = 0, std::uint64_t arg = 0);

  /// Monotonic wall nanoseconds, or 0 when configured wall_clock=false.
  std::int64_t wall_now_ns() const;

  std::size_t size() const;                 // events currently in the ring
  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t overwritten() const { return overwritten_; }
  void clear();

  /// Copies the ring's events oldest-first (the post-mortem view).
  std::vector<FlightEvent> events_in_order() const;

  // --- post-mortem dumps ----------------------------------------------------

  /// Arms write-once dumping to `path`: the first dump_if_armed() call —
  /// the testkit invariant checker fires one on its first violation —
  /// writes the dump there. Pass "" to disarm.
  void arm_dump(std::string path);
  const std::string& dump_path() const { return dump_path_; }
  bool dumped() const { return dumped_; }

  /// Writes the dump to the armed path (once); returns false when unarmed,
  /// already dumped, or the file cannot be written.
  bool dump_if_armed(std::string_view reason);

  /// Serializes the last events + a final ddoshield-metrics-v2 snapshot of
  /// the global registry and latency tracker.
  void write_dump(std::ostream& out, std::string_view reason) const;
  bool write_dump_file(const std::string& path, std::string_view reason) const;

  /// Installs SIGSEGV/SIGABRT/SIGFPE/SIGILL/SIGBUS and std::terminate
  /// hooks that write the armed dump before re-raising. Best-effort: the
  /// handlers are not async-signal-safe in the strict sense, but a partial
  /// flight dump from a dying testbed beats none (documented in §11).
  void install_crash_handlers();

  /// Merges the ring into a TraceRecorder as instant events (category
  /// "flight", named "<stage> #<id>") so one Chrome timeline shows net,
  /// capture, and inference stages together. Events land at their sim_ns.
  void export_to_trace(TraceRecorder& trace) const;

 private:
  FlightConfig config_;
  bool enabled_ = false;
  std::uint64_t sample_mask_ = 15;
  std::vector<FlightEvent> ring_;
  std::size_t ring_mask_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t overwritten_ = 0;
  std::string dump_path_;
  bool dumped_ = false;

  Counter* m_recorded_;
  Counter* m_overwritten_;
  Counter* m_dumps_;
};

}  // namespace ddoshield::obs
