// Metrics substrate for the testbed (counters, gauges, histograms).
//
// Every layer of the system charges its counters into a process-global
// MetricsRegistry (mirroring the process-global Logger): components look
// their instruments up once at construction and keep raw pointers, so the
// hot path is a plain integer increment — no map lookup, no allocation,
// no branch on an "enabled" flag. Histograms use fixed log2 buckets so
// observing a latency is O(1) and allocation-free; quantiles are
// log-interpolated within the winning bucket, which is plenty for the
// order-of-magnitude questions the benches ask.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace ddoshield::obs {

/// Relaxed atomic counter for code that runs off the simulation thread
/// (the IDS scoring worker). The registry's Counter / Gauge / Histogram
/// are deliberately unsynchronised — every other layer is single-threaded
/// and the hot path must stay a plain integer increment — so cross-thread
/// producers accumulate into a RelaxedCounter and the owning component
/// publishes the value into a registry instrument from the simulation
/// thread (see ids::InferenceEngine::publish_metrics).
class RelaxedCounter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }
  void reset() { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous level with a high-water mark (queue depths, backlogs).
class Gauge {
 public:
  void set(double v) {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  void add(double delta) { set(value_ + delta); }
  double value() const { return value_; }
  double high_water() const { return high_water_; }
  void reset() {
    value_ = 0.0;
    high_water_ = 0.0;
  }

 private:
  double value_ = 0.0;
  double high_water_ = 0.0;
};

/// Log-scale histogram over non-negative integer samples (nanoseconds,
/// bytes, counts). Bucket i holds samples in [2^i, 2^(i+1)); sample 0
/// lands in bucket 0. Fixed storage, no allocation on observe().
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void observe(std::uint64_t v) {
    ++buckets_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Value at quantile q in [0, 1], log-interpolated within the bucket.
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Smallest sample value a bucket can hold (2^i; bucket 0 holds [0, 2)).
  static std::uint64_t bucket_floor(std::size_t i) { return i == 0 ? 0 : (1ull << i); }

  void reset() {
    buckets_.fill(0);
    count_ = sum_ = min_ = max_ = 0;
  }

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < 2) return 0;
    return static_cast<std::size_t>(63 - __builtin_clzll(v));
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named instrument store. Instruments live as long as the registry and
/// never move (std::map node stability), so callers cache the returned
/// references across the whole run.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide default registry every layer charges into.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  const std::map<std::string, Counter, std::less<>>& counters() const { return counters_; }
  const std::map<std::string, Gauge, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const { return histograms_; }

  /// Zeroes every instrument but keeps registrations (and thus every
  /// pointer components cached) valid. Benches call this between phases.
  void reset();

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Scoped stopwatch: charges real (wall) elapsed nanoseconds to a
/// histogram and/or a raw counter on destruction. Replaces the old
/// ids::ScopedCpuTimer; the raw-sink form keeps the resource-meter
/// slowdown-factor pipeline (ResourceMeterConfig) working unchanged.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& hist)
      : hist_{&hist}, start_{std::chrono::steady_clock::now()} {}
  explicit ScopedTimer(std::uint64_t& sink)
      : sink_{&sink}, start_{std::chrono::steady_clock::now()} {}
  ScopedTimer(Histogram& hist, std::uint64_t& sink)
      : hist_{&hist}, sink_{&sink}, start_{std::chrono::steady_clock::now()} {}

  ~ScopedTimer() {
    const auto end = std::chrono::steady_clock::now();
    const auto ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_).count());
    if (hist_) hist_->observe(ns);
    if (sink_) *sink_ += ns;
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* hist_ = nullptr;
  std::uint64_t* sink_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ddoshield::obs
