// Tail-latency tracking for the flight recorder (log-linear histograms).
//
// The registry's log2 Histogram answers order-of-magnitude questions; tail
// percentiles need better resolution. LogLinearHistogram is the HDR-style
// compromise: each power-of-two octave is subdivided into 32 linear
// sub-buckets, so any recorded value is off by at most 1/32 (~3%) of
// itself — tight enough that p999 is meaningful — while observe() stays a
// branch, a shift, and an increment, with zero allocation.
//
// LatencyTracker is the named store for these histograms, mirroring
// MetricsRegistry: components resolve their series once at construction
// and keep raw pointers, so the hot path never does a map lookup. The
// tracker is single-threaded by the same rule as the registry — only the
// simulation thread observes into it.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace ddoshield::obs {

/// Log-linear ("HDR-style") histogram over non-negative integer samples.
/// Values below 2^(kSubBits+1) are recorded exactly; above that, each
/// power-of-two range splits into kSub linear sub-buckets, bounding
/// relative error by 1/kSub.
class LogLinearHistogram {
 public:
  static constexpr int kSubBits = 5;                 // 32 sub-buckets per octave
  static constexpr std::size_t kSub = 1u << kSubBits;
  // Indices 0..2*kSub-1 are exact values; octaves 6..63 add kSub each.
  static constexpr std::size_t kBucketCount = 2 * kSub + (63 - kSubBits) * kSub;

  void observe(std::uint64_t v) {
    ++buckets_[index_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }
  double mean() const { return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0.0; }

  /// Value at quantile q in [0, 1], linearly interpolated within the
  /// winning sub-bucket and clamped to the observed [min, max].
  double quantile(double q) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
  double p999() const { return quantile(0.999); }

  void reset() {
    buckets_.fill(0);
    count_ = sum_ = min_ = max_ = 0;
  }

  /// Inclusive lower edge of bucket i (exposed for tests).
  static std::uint64_t bucket_floor(std::size_t i);
  /// Width in value space of bucket i.
  static std::uint64_t bucket_width(std::size_t i);
  static std::size_t index_of(std::uint64_t v) {
    if (v < 2 * kSub) return static_cast<std::size_t>(v);
    const int msb = 63 - __builtin_clzll(v);
    const int shift = msb - kSubBits;
    return static_cast<std::size_t>(shift + 1) * kSub +
           (static_cast<std::size_t>(v >> shift) & (kSub - 1));
  }

  const std::array<std::uint64_t, kBucketCount>& buckets() const { return buckets_; }

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named store of LogLinearHistograms, keyed like registry instruments
/// ("flight.net.queue_ns", "flight.rf.detect_lag_ns.attack"). Node
/// stability means cached pointers survive registration growth.
class LatencyTracker {
 public:
  LatencyTracker() = default;
  LatencyTracker(const LatencyTracker&) = delete;
  LatencyTracker& operator=(const LatencyTracker&) = delete;

  /// The process-wide tracker the flight-recorder wiring charges into.
  static LatencyTracker& global();

  LogLinearHistogram& series(std::string_view name);

  const std::map<std::string, LogLinearHistogram, std::less<>>& all() const { return series_; }

  /// Zeroes every series but keeps registrations (cached pointers stay
  /// valid). Benches call this between phases.
  void reset();

 private:
  std::map<std::string, LogLinearHistogram, std::less<>> series_;
};

}  // namespace ddoshield::obs
