// SurvivalMeter: what production cares about under attack.
//
// Detection accuracy says whether the IDS saw the flood; survival metrics
// say whether the service lived through it. The meter aggregates, over the
// benign client apps only: connection attempts vs. successes (SYN-flood
// backlog exhaustion shows up here first), request/download completions
// and failures, delivered application bytes (goodput), and the full
// request-latency distribution in a log-linear histogram (p50/p99 under
// congestion). Comparing report() between a mitigated and an unmitigated
// run of the same seed is the experiment EXPERIMENTS.md's "survival under
// attack" section records; the flight recorder's stage series attribute
// *where* the surviving latency went.
//
// The meter is process-global and off by default: while disabled every
// hook is a branch and no state changes, so runs that never enable it are
// byte-identical to builds that predate it. The histogram is meter-owned
// (not a LatencyTracker series), so enabling it never changes metric
// snapshots either.
#pragma once

#include <cstdint>
#include <string>

#include "obs/latency.hpp"

namespace ddoshield::obs {

struct SurvivalReport {
  std::uint64_t connects_attempted = 0;
  std::uint64_t connects_succeeded = 0;
  std::uint64_t connects_failed = 0;  // SYN retries exhausted
  std::uint64_t requests_completed = 0;
  std::uint64_t requests_failed = 0;
  std::uint64_t benign_bytes = 0;  // application payload delivered (goodput)
  std::uint64_t latency_samples = 0;
  double latency_mean_ns = 0.0;
  double latency_p50_ns = 0.0;
  double latency_p99_ns = 0.0;

  double connect_success_rate() const {
    return connects_attempted == 0
               ? 0.0
               : static_cast<double>(connects_succeeded) /
                     static_cast<double>(connects_attempted);
  }
  double request_success_rate() const {
    const std::uint64_t total = requests_completed + requests_failed;
    return total == 0 ? 0.0
                      : static_cast<double>(requests_completed) / static_cast<double>(total);
  }

  /// Multi-line human-readable block (quickstart's --survival-report).
  std::string summary() const;
};

class SurvivalMeter {
 public:
  /// The process-wide meter the benign client apps charge into.
  static SurvivalMeter& global();

  SurvivalMeter() = default;
  SurvivalMeter(const SurvivalMeter&) = delete;
  SurvivalMeter& operator=(const SurvivalMeter&) = delete;

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Zeroes all tallies (A/B runs re-arm between phases).
  void reset();

  // --- hooks (no-ops while disabled) ---------------------------------------
  void on_connect_attempt() {
    if (enabled_) ++connects_attempted_;
  }
  void on_connect_success() {
    if (enabled_) ++connects_succeeded_;
  }
  void on_connect_failure() {
    if (enabled_) ++connects_failed_;
  }
  void on_request_complete(std::uint64_t latency_ns, std::uint64_t bytes) {
    if (!enabled_) return;
    ++requests_completed_;
    benign_bytes_ += bytes;
    latency_ns_.observe(latency_ns);
  }
  void on_request_failure() {
    if (enabled_) ++requests_failed_;
  }
  /// Bytes delivered outside request/response exchanges (video streaming).
  void on_goodput_bytes(std::uint64_t bytes) {
    if (enabled_) benign_bytes_ += bytes;
  }

  SurvivalReport report() const;

 private:
  bool enabled_ = false;
  std::uint64_t connects_attempted_ = 0;
  std::uint64_t connects_succeeded_ = 0;
  std::uint64_t connects_failed_ = 0;
  std::uint64_t requests_completed_ = 0;
  std::uint64_t requests_failed_ = 0;
  std::uint64_t benign_bytes_ = 0;
  LogLinearHistogram latency_ns_;
};

}  // namespace ddoshield::obs
