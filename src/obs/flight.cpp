#include "obs/flight.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <ostream>

#include "obs/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace ddoshield::obs {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

// The signal path re-raises with the default disposition after dumping, so
// the process still dies with the original signal (core files, CI exit
// codes, and ASan reports all keep working).
void crash_signal_handler(int sig) {
  char reason[32];
  std::snprintf(reason, sizeof reason, "signal %d", sig);
  FlightRecorder::global().dump_if_armed(reason);
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

std::terminate_handler g_prev_terminate = nullptr;

[[noreturn]] void crash_terminate_handler() {
  FlightRecorder::global().dump_if_armed("std::terminate");
  if (g_prev_terminate) g_prev_terminate();
  std::abort();
}

}  // namespace

std::string_view to_string(FlightStage stage) {
  switch (stage) {
    case FlightStage::kNetEnqueue: return "net_enqueue";
    case FlightStage::kLinkTx: return "link_tx";
    case FlightStage::kLinkRx: return "link_rx";
    case FlightStage::kTcpDeliver: return "tcp_deliver";
    case FlightStage::kCaptureTap: return "capture_tap";
    case FlightStage::kWindowClose: return "window_close";
    case FlightStage::kInferSubmit: return "infer_submit";
    case FlightStage::kInferComplete: return "infer_complete";
    case FlightStage::kVerdict: return "verdict";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder() {
  auto& reg = MetricsRegistry::global();
  m_recorded_ = &reg.counter("flight.recorded_events");
  m_overwritten_ = &reg.counter("flight.overwritten_events");
  m_dumps_ = &reg.counter("flight.dumps");
  configure(FlightConfig{});
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::configure(const FlightConfig& config) {
  config_ = config;
  if (config_.capacity == 0) config_.capacity = 1;
  config_.capacity = round_up_pow2(config_.capacity);
  if (config_.sample_every == 0) config_.sample_every = 1;
  config_.sample_every =
      static_cast<std::uint32_t>(round_up_pow2(config_.sample_every));
  sample_mask_ = config_.sample_every - 1;
  ring_.assign(config_.capacity, FlightEvent{});
  ring_mask_ = config_.capacity - 1;
  recorded_ = 0;
  overwritten_ = 0;
}

void FlightRecorder::record(FlightStage stage, std::uint64_t id,
                            std::int64_t sim_ns, std::int64_t wall_ns,
                            std::uint64_t arg) {
  if (!enabled_) return;
  if (recorded_ >= ring_.size()) {
    ++overwritten_;
    m_overwritten_->inc();
  }
  FlightEvent& slot = ring_[recorded_ & ring_mask_];
  slot.id = id;
  slot.stage = stage;
  slot.sim_ns = sim_ns;
  slot.wall_ns = wall_ns;
  slot.arg = arg;
  ++recorded_;
  m_recorded_->inc();
}

std::int64_t FlightRecorder::wall_now_ns() const {
  if (!config_.wall_clock) return 0;
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::size_t FlightRecorder::size() const {
  return recorded_ < ring_.size() ? static_cast<std::size_t>(recorded_)
                                  : ring_.size();
}

void FlightRecorder::clear() {
  recorded_ = 0;
  overwritten_ = 0;
  dumped_ = false;
}

std::vector<FlightEvent> FlightRecorder::events_in_order() const {
  std::vector<FlightEvent> out;
  const std::size_t n = size();
  out.reserve(n);
  const std::uint64_t start = recorded_ - n;
  for (std::size_t i = 0; i < n; ++i) out.push_back(ring_[(start + i) & ring_mask_]);
  return out;
}

void FlightRecorder::arm_dump(std::string path) {
  dump_path_ = std::move(path);
  dumped_ = false;
}

bool FlightRecorder::dump_if_armed(std::string_view reason) {
  if (dump_path_.empty() || dumped_) return false;
  dumped_ = true;  // write-once even if the write itself fails halfway
  return write_dump_file(dump_path_, reason);
}

void FlightRecorder::write_dump(std::ostream& out, std::string_view reason) const {
  out << "{\n  \"schema\": \"ddoshield-flight-dump-v1\",\n  \"reason\": ";
  write_escaped(out, reason);
  out << ",\n  \"config\": {\"capacity\": " << config_.capacity
      << ", \"sample_every\": " << config_.sample_every << ", \"wall_clock\": "
      << (config_.wall_clock ? "true" : "false") << "},\n  \"recorded\": "
      << recorded_ << ",\n  \"overwritten\": " << overwritten_
      << ",\n  \"events\": [";
  const auto events = events_in_order();
  bool first = true;
  for (const FlightEvent& e : events) {
    out << (first ? "\n    " : ",\n    ");
    first = false;
    out << "{\"id\": " << e.id << ", \"stage\": \"" << to_string(e.stage)
        << "\", \"sim_ns\": " << e.sim_ns << ", \"wall_ns\": " << e.wall_ns
        << ", \"arg\": " << e.arg << "}";
  }
  out << "\n  ],\n  \"metrics\": ";
  write_json_snapshot(MetricsRegistry::global(), out, SnapshotVersion::kV2,
                      &LatencyTracker::global());
  out << "}\n";
}

bool FlightRecorder::write_dump_file(const std::string& path,
                                     std::string_view reason) const {
  std::ofstream out{path};
  if (!out) return false;
  write_dump(out, reason);
  m_dumps_->inc();
  return out.good();
}

void FlightRecorder::export_to_trace(TraceRecorder& trace) const {
  char name[64];
  for (const FlightEvent& e : events_in_order()) {
    const std::string_view stage = to_string(e.stage);
    std::snprintf(name, sizeof name, "%.*s #%llu", static_cast<int>(stage.size()),
                  stage.data(), static_cast<unsigned long long>(e.id));
    trace.instant(name, "flight", util::SimTime::nanos(e.sim_ns));
  }
}

void FlightRecorder::install_crash_handlers() {
  std::signal(SIGSEGV, crash_signal_handler);
  std::signal(SIGABRT, crash_signal_handler);
  std::signal(SIGFPE, crash_signal_handler);
  std::signal(SIGILL, crash_signal_handler);
#ifdef SIGBUS
  std::signal(SIGBUS, crash_signal_handler);
#endif
  g_prev_terminate = std::set_terminate(crash_terminate_handler);
}

}  // namespace ddoshield::obs
