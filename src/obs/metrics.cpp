#include "obs/metrics.hpp"

#include <cmath>

namespace ddoshield::obs {

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  // A single sample IS every quantile. The interpolation below would put
  // p50/p90 partway through the sample's bucket — for an out-of-range
  // sample (e.g. 2^63) that's far from the only value ever observed.
  if (count_ == 1) return static_cast<double>(min());
  if (q <= 0.0) return static_cast<double>(min());
  if (q >= 1.0) return static_cast<double>(max_);

  const double target = q * static_cast<double>(count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target) {
      // Log-interpolate between the bucket's bounds by the fraction of the
      // bucket's population below the target rank.
      // Bucket i spans [2^i, 2^(i+1)). Compute the upper edge in floating
      // point: for i == 63 the integer expression 1ull << 64 would
      // overflow (and clamping it to 2^63 made hi == lo, degenerating the
      // interpolation for the top bucket).
      const double lo = static_cast<double>(i == 0 ? 1 : (1ull << i));
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double into = 1.0 - (static_cast<double>(seen) - target) /
                                    static_cast<double>(buckets_[i]);
      const double v = lo * std::pow(hi / lo, into);
      // Clamp to the observed range so tiny histograms stay intuitive.
      return std::min(std::max(v, static_cast<double>(min())), static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) it = counters_.emplace(std::string{name}, Counter{}).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) it = gauges_.emplace(std::string{name}, Gauge{}).first;
  return it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) it = histograms_.emplace(std::string{name}, Histogram{}).first;
  return it->second;
}

void MetricsRegistry::reset() {
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace ddoshield::obs
