// Sim-time tracing with Chrome trace_event export.
//
// Components record spans (a named interval of simulated time), instants
// (a point event), and counter samples against the virtual clock. The
// recorder is process-global and off by default: every record call starts
// with a single branch on enabled(), so a build with tracing compiled in
// but switched off pays one predictable-not-taken branch per site.
//
// export: write_chrome_trace() emits the Trace Event Format JSON that
// chrome://tracing (and Perfetto's legacy loader) opens directly, with
// `ts`/`dur` in sim-time microseconds and one pseudo-thread per category.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim_time.hpp"

namespace ddoshield::obs {

class Counter;

class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The process-wide recorder all instrumentation sites use.
  static TraceRecorder& global();

  void set_enabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  /// Caps the number of buffered events. Once full the recorder drops new
  /// events (counting them in `trace.dropped_events`) instead of growing
  /// without bound — long fuzz runs used to OOM the recorder. 0 means
  /// drop everything; the default is 1M events (~80 MB worst case).
  void set_event_budget(std::size_t budget) { budget_ = budget; }
  std::size_t event_budget() const { return budget_; }
  std::uint64_t dropped_events() const { return dropped_; }

  /// Records a complete span [start, start + duration] ("ph":"X").
  void span(std::string_view name, std::string_view category, util::SimTime start,
            util::SimTime duration);

  /// Records a point-in-time event ("ph":"i").
  void instant(std::string_view name, std::string_view category, util::SimTime at);

  /// Records a counter sample ("ph":"C"), rendered as a filled graph.
  void counter(std::string_view name, util::SimTime at, double value);

  std::size_t size() const { return events_.size(); }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Writes the whole trace as Chrome trace_event JSON; events are sorted
  /// by timestamp so `ts` is monotonic in the output.
  void write_chrome_trace(std::ostream& out) const;

  /// Convenience file form. Returns false if the file cannot be opened.
  bool write_chrome_trace_file(const std::string& path) const;

 private:
  struct Event {
    char phase;  // 'X', 'i', or 'C'
    std::string name;
    std::string category;
    std::int64_t ts_ns;
    std::int64_t dur_ns;  // spans only
    double value;         // counters only
  };

  /// True when there is room for one more event; otherwise counts a drop.
  bool admit();

  bool enabled_ = false;
  std::size_t budget_ = 1u << 20;
  std::uint64_t dropped_ = 0;
  Counter* dropped_counter_ = nullptr;  // resolved lazily on first drop
  std::vector<Event> events_;
};

}  // namespace ddoshield::obs
