// JSON snapshot of a MetricsRegistry — the BENCH_*.json artifact format.
//
// Schema (documented in DESIGN.md "Observability"):
//   {
//     "schema": "ddoshield-metrics-v1",
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": {"value": <f>, "high_water": <f>}, ... },
//     "histograms": { "<name>": {"count","sum","min","max","mean",
//                                "p50","p90","p99"}, ... }
//   }
// Names are emitted sorted, so two snapshots of the same run diff cleanly.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/metrics.hpp"

namespace ddoshield::obs {

void write_json_snapshot(const MetricsRegistry& registry, std::ostream& out);

/// Convenience file form. Returns false if the file cannot be opened.
bool write_json_snapshot_file(const MetricsRegistry& registry, const std::string& path);

}  // namespace ddoshield::obs
