// JSON snapshot of a MetricsRegistry — the BENCH_*.json artifact format.
//
// Two schema generations (DESIGN.md §11 documents the migration):
//   v1 ("ddoshield-metrics-v1") — counters / gauges / histograms, with
//     p50/p90/p99 per histogram. The PR-1 goldens pin these bytes.
//   v2 ("ddoshield-metrics-v2") — v1 plus a "p999" field per histogram and
//     a "latency" section carrying the flight-recorder LatencyTracker
//     series (log-linear histograms with interpolated p50/p90/p99/p999).
//
//   {
//     "schema": "ddoshield-metrics-v2",
//     "counters":   { "<name>": <u64>, ... },
//     "gauges":     { "<name>": {"value": <f>, "high_water": <f>}, ... },
//     "histograms": { "<name>": {"count","sum","min","max","mean",
//                                "p50","p90","p99"[,"p999"]}, ... },
//     "latency":    { "<name>": {"count","sum","min","max","mean",
//                                "p50","p90","p99","p999"}, ... }   // v2
//   }
// Names are emitted sorted, so two snapshots of the same run diff cleanly.
// read_json_snapshot() accepts both generations, and rewriting what it
// read reproduces the input byte-for-byte (%.17g doubles round-trip), so
// v2-era tooling can ingest and regenerate v1 goldens unchanged.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace ddoshield::obs {

class LatencyTracker;

enum class SnapshotVersion {
  kV1,  // legacy golden format: no p999, no latency section
  kV2,  // current: p999 per histogram + latency section
};

/// Writes the registry as JSON. With kV2 and a non-null `latency`, the
/// tracker's series are emitted in the "latency" section; a null tracker
/// emits an empty section (the schema is stable either way).
void write_json_snapshot(const MetricsRegistry& registry, std::ostream& out,
                         SnapshotVersion version = SnapshotVersion::kV2,
                         const LatencyTracker* latency = nullptr);

/// Convenience file form. Returns false if the file cannot be opened.
bool write_json_snapshot_file(const MetricsRegistry& registry, const std::string& path,
                              SnapshotVersion version = SnapshotVersion::kV2,
                              const LatencyTracker* latency = nullptr);

// --- parsed snapshot --------------------------------------------------------

struct SnapshotGauge {
  double value = 0.0;
  double high_water = 0.0;
};

struct SnapshotHistogram {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;  // v2 only; 0 when absent
};

/// A snapshot read back from JSON. `schema` distinguishes v1 from v2;
/// `latency` is empty for v1 inputs.
struct SnapshotData {
  std::string schema;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, SnapshotGauge> gauges;
  std::map<std::string, SnapshotHistogram> histograms;
  std::map<std::string, SnapshotHistogram> latency;
};

/// Parses a v1 or v2 snapshot. Returns false (and leaves `out` partially
/// filled) on malformed input or an unknown schema tag.
bool read_json_snapshot(std::istream& in, SnapshotData& out);
bool read_json_snapshot_file(const std::string& path, SnapshotData& out);

/// Re-serializes parsed data in its own schema generation: a v1 input
/// rewrites byte-identically to the original file.
void write_json_snapshot(const SnapshotData& data, std::ostream& out);

}  // namespace ddoshield::obs
