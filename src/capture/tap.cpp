#include "capture/tap.hpp"

#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace ddoshield::capture {

PacketTap::PacketTap(TapConfig config)
    : config_{config},
      m_packets_{&obs::MetricsRegistry::global().counter("capture.tap.packets")},
      m_dropped_{&obs::MetricsRegistry::global().counter("capture.tap.dropped")},
      flight_{&obs::FlightRecorder::global()},
      lat_tap_ns_{&obs::LatencyTracker::global().series("flight.capture.tap_lag_ns")} {}

void PacketTap::attach_to(net::Node& node) {
  node.add_tap([this, &node](const net::Packet& pkt, net::TapDirection dir) {
    on_packet(pkt, dir, node);
  });
}

void PacketTap::on_packet(const net::Packet& pkt, net::TapDirection dir, net::Node& node) {
  if (!enabled_) {
    m_dropped_->inc();
    return;
  }
  switch (dir) {
    case net::TapDirection::kReceived:
      if (!config_.capture_received) return;
      break;
    case net::TapDirection::kSent:
      if (!config_.capture_sent) return;
      break;
    case net::TapDirection::kForwarded:
      if (!config_.capture_forwarded) return;
      break;
  }
  ++packets_captured_;
  m_packets_->inc();
  if (flight_->sampled(pkt.uid)) {
    const util::SimTime now = node.simulator().now();
    flight_->record(obs::FlightStage::kCaptureTap, pkt.uid, now.ns(), 0,
                    pkt.wire_bytes());
    lat_tap_ns_->observe(static_cast<std::uint64_t>((now - pkt.sent_at).ns()));
  }
  // Counting semantics above are load-bearing (bench goldens); only the
  // record construction is skippable when nobody is listening.
  if (sinks_.empty()) return;
  const PacketRecord record =
      PacketRecord::from_packet(pkt, node.simulator().now() + config_.clock_offset);
  for (const auto& sink : sinks_) sink(record);
}

}  // namespace ddoshield::capture
