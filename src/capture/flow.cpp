#include "capture/flow.hpp"

#include <tuple>

namespace ddoshield::capture {

void FlowTable::add(const PacketRecord& record) {
  auto [it, inserted] = flows_.try_emplace(FlowKey::of(record));
  FlowRecord& flow = it->second;
  if (inserted) flow.first_seen = record.timestamp;
  flow.last_seen = record.timestamp;
  ++flow.packets;
  flow.bytes += record.wire_bytes;
  if (record.is_tcp()) {
    flow.syn_count += record.has_flag(net::TcpFlags::kSyn);
    flow.fin_count += record.has_flag(net::TcpFlags::kFin);
    flow.rst_count += record.has_flag(net::TcpFlags::kRst);
  }
  flow.malicious = flow.malicious || record.is_malicious();
}

std::size_t FlowTable::short_lived_count(util::SimTime max_duration,
                                         std::uint64_t max_packets) const {
  std::size_t n = 0;
  for (const auto& [key, flow] : flows_) {
    if (flow.duration() <= max_duration && flow.packets <= max_packets) ++n;
  }
  return n;
}

std::size_t FlowTable::repeated_attempt_sources(std::uint32_t min_syns) const {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t>, std::uint32_t> syns;
  for (const auto& [key, flow] : flows_) {
    if (flow.syn_count > 0) {
      syns[{key.src_addr, key.dst_addr, key.dst_port}] += flow.syn_count;
    }
  }
  std::size_t n = 0;
  for (const auto& [agg, count] : syns) n += count >= min_syns;
  return n;
}

}  // namespace ddoshield::capture
