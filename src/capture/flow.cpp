#include "capture/flow.hpp"

#include <algorithm>

namespace ddoshield::capture {

void FlowTable::add(const PacketRecord& record) {
  FlowRecord& flow = flows_.find_or_insert(FlowKey::of(record));
  if (flow.packets == 0) flow.first_seen = record.timestamp;
  flow.last_seen = record.timestamp;
  ++flow.packets;
  flow.bytes += record.wire_bytes;
  if (record.is_tcp()) {
    flow.syn_count += record.has_flag(net::TcpFlags::kSyn);
    flow.fin_count += record.has_flag(net::TcpFlags::kFin);
    flow.rst_count += record.has_flag(net::TcpFlags::kRst);
  }
  flow.malicious = flow.malicious || record.is_malicious();
}

std::vector<std::pair<FlowKey, FlowRecord>> FlowTable::sorted_flows() const {
  std::vector<std::pair<FlowKey, FlowRecord>> out;
  out.reserve(flows_.size());
  flows_.for_each([&](const FlowKey& key, const FlowRecord& flow) { out.emplace_back(key, flow); });
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

std::size_t FlowTable::short_lived_count(util::SimTime max_duration,
                                         std::uint64_t max_packets) const {
  std::size_t n = 0;
  flows_.for_each([&](const FlowKey&, const FlowRecord& flow) {
    if (flow.duration() <= max_duration && flow.packets <= max_packets) ++n;
  });
  return n;
}

namespace {
struct AttemptKey {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t dst_port = 0;
  friend bool operator==(const AttemptKey&, const AttemptKey&) = default;
};
struct AttemptKeyHash {
  std::size_t operator()(const AttemptKey& k) const {
    const std::uint64_t addrs = (std::uint64_t{k.src_addr} << 32) | k.dst_addr;
    return static_cast<std::size_t>(mix_u64(addrs ^ mix_u64(k.dst_port)));
  }
};
}  // namespace

std::size_t FlowTable::repeated_attempt_sources(std::uint32_t min_syns) const {
  FlatTable<AttemptKey, std::uint32_t, AttemptKeyHash> syns;
  flows_.for_each([&](const FlowKey& key, const FlowRecord& flow) {
    if (flow.syn_count > 0) {
      syns.find_or_insert(AttemptKey{key.src_addr, key.dst_addr, key.dst_port}) +=
          flow.syn_count;
    }
  });
  std::size_t n = 0;
  syns.for_each([&](const AttemptKey&, const std::uint32_t& count) { n += count >= min_syns; });
  return n;
}

}  // namespace ddoshield::capture
