// Labelled packet dataset: in-memory store plus CSV persistence.
//
// A generation run fills a Dataset through the tap; the ML pipeline trains
// from it; EXPERIMENTS.md quotes its composition against the paper's
// 3,012,885 malicious / 2,243,634 benign packets.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "capture/packet_record.hpp"

namespace ddoshield::capture {

class Dataset {
 public:
  void add(const PacketRecord& record) { records_.push_back(record); }
  void reserve(std::size_t n) { records_.reserve(n); }
  void clear() { records_.clear(); }

  const std::vector<PacketRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  std::size_t malicious_count() const;
  std::size_t benign_count() const;
  /// malicious : benign ratio; returns 0 when there is no benign traffic.
  double balance_ratio() const;

  /// Packet counts per fine-grained origin, for composition reports.
  std::map<net::TrafficOrigin, std::size_t> origin_histogram() const;

  /// Writes header + rows; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;
  /// Loads a file produced by save_csv.
  static Dataset load_csv(const std::string& path);

  std::string composition_summary() const;

 private:
  std::vector<PacketRecord> records_;
};

}  // namespace ddoshield::capture
