// Open-addressing hash table for the per-packet capture/feature path.
//
// The flow bookkeeping behind the IDS features used to ride on std::map —
// a red-black tree paying one node allocation plus O(log n) pointer-chasing
// comparisons per packet. FlatTable keeps key/value pairs in one contiguous
// slot array with linear probing: a lookup is a hash, a mask, and a short
// forward scan through cache-resident slots; inserts allocate only when the
// table grows (power-of-two capacity, rehash at 7/8 combined live+tombstone
// load). Erases leave tombstones that later inserts reclaim in place, and a
// rehash drops them wholesale while preserving every live entry — per-flow
// feature state survives window-boundary rehashes untouched.
//
// Iteration order is slot order — deterministic for a given insertion
// sequence, but not sorted; consumers that need a canonical order (CSV
// exports, event logs) must sort, which FlowTable::sorted_flows() does.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <utility>
#include <vector>

namespace ddoshield::capture {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class FlatTable {
 public:
  struct Stats {
    std::uint64_t finds = 0;
    std::uint64_t inserts = 0;
    std::uint64_t erases = 0;
    std::uint64_t rehashes = 0;
    std::uint64_t tombstones_reclaimed = 0;
    std::uint64_t probe_steps = 0;     // slots visited beyond the home slot
    std::uint64_t max_probe_length = 0;
  };

  explicit FlatTable(std::size_t min_capacity = 16) {
    std::size_t cap = 8;
    while (cap < min_capacity) cap <<= 1;
    states_.assign(cap, kEmpty);
    slots_.resize(cap);
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return states_.size(); }
  std::size_t tombstones() const { return tombstones_; }
  const Stats& stats() const { return stats_; }

  /// Returns the value for `key`, default-constructing it on first sight.
  Value& find_or_insert(const Key& key) {
    if ((size_ + tombstones_ + 1) * 8 > capacity() * 7) {
      rehash(size_ * 2 > capacity() ? capacity() * 2 : capacity());
    }
    const std::size_t mask = capacity() - 1;
    std::size_t i = Hash{}(key) & mask;
    std::size_t first_tombstone = kNoSlot;
    std::uint64_t probe = 0;
    for (;; i = (i + 1) & mask, ++probe) {
      if (states_[i] == kEmpty) break;
      if (states_[i] == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = i;
        continue;
      }
      if (slots_[i].first == key) {
        note_probe(probe);
        ++stats_.finds;
        return slots_[i].second;
      }
    }
    note_probe(probe);
    ++stats_.inserts;
    if (first_tombstone != kNoSlot) {
      i = first_tombstone;
      --tombstones_;
      ++stats_.tombstones_reclaimed;
    }
    states_[i] = kFull;
    slots_[i] = {key, Value{}};
    ++size_;
    return slots_[i].second;
  }

  Value* find(const Key& key) {
    const std::size_t mask = capacity() - 1;
    std::size_t i = Hash{}(key) & mask;
    std::uint64_t probe = 0;
    for (;; i = (i + 1) & mask, ++probe) {
      if (states_[i] == kEmpty) break;
      if (states_[i] == kFull && slots_[i].first == key) {
        note_probe(probe);
        ++stats_.finds;
        return &slots_[i].second;
      }
    }
    note_probe(probe);
    return nullptr;
  }
  const Value* find(const Key& key) const {
    return const_cast<FlatTable*>(this)->find(key);
  }

  /// Tombstones the entry; returns false if the key was absent.
  bool erase(const Key& key) {
    const std::size_t mask = capacity() - 1;
    std::size_t i = Hash{}(key) & mask;
    for (;; i = (i + 1) & mask) {
      if (states_[i] == kEmpty) return false;
      if (states_[i] == kFull && slots_[i].first == key) {
        states_[i] = kTombstone;
        slots_[i] = {};
        --size_;
        ++tombstones_;
        ++stats_.erases;
        return true;
      }
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < capacity(); ++i) {
      if (states_[i] == kFull) fn(slots_[i].first, slots_[i].second);
    }
  }

  void clear() {
    states_.assign(capacity(), kEmpty);
    for (auto& slot : slots_) slot = {};
    size_ = 0;
    tombstones_ = 0;
  }

  /// Grows (or compacts tombstones at the same capacity) while preserving
  /// every live entry.
  void rehash(std::size_t new_capacity) {
    std::size_t cap = 8;
    while (cap < new_capacity || cap < size_ * 2) cap <<= 1;
    std::vector<std::uint8_t> old_states = std::move(states_);
    std::vector<std::pair<Key, Value>> old_slots = std::move(slots_);
    states_.assign(cap, kEmpty);
    slots_.clear();
    slots_.resize(cap);
    const std::size_t mask = cap - 1;
    for (std::size_t i = 0; i < old_states.size(); ++i) {
      if (old_states[i] != kFull) continue;
      std::size_t j = Hash{}(old_slots[i].first) & mask;
      while (states_[j] == kFull) j = (j + 1) & mask;
      states_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
    tombstones_ = 0;
    ++stats_.rehashes;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  void note_probe(std::uint64_t probe) {
    stats_.probe_steps += probe;
    if (probe > stats_.max_probe_length) stats_.max_probe_length = probe;
  }

  std::vector<std::uint8_t> states_;
  std::vector<std::pair<Key, Value>> slots_;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  mutable Stats stats_;
};

/// SplitMix64-style finalizer — the hash combiner the flow keys use.
inline std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace ddoshield::capture
