#include "capture/packet_record.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace ddoshield::capture {

PacketRecord PacketRecord::from_packet(const net::Packet& pkt, util::SimTime at) {
  PacketRecord r;
  r.timestamp = at;
  r.src_addr = pkt.src.bits();
  r.dst_addr = pkt.dst.bits();
  r.src_port = pkt.src_port;
  r.dst_port = pkt.dst_port;
  r.protocol = static_cast<std::uint8_t>(pkt.proto);
  r.tcp_flags = pkt.tcp_flags;
  r.seq = pkt.seq;
  r.payload_bytes = pkt.payload_bytes;
  r.wire_bytes = pkt.wire_bytes();
  r.origin = pkt.origin;
  r.label = net::traffic_class_of(pkt.origin);
  r.uid = pkt.uid;
  return r;
}

std::string PacketRecord::csv_header() {
  return "timestamp_ns,src_addr,dst_addr,src_port,dst_port,protocol,tcp_flags,seq,"
         "payload_bytes,wire_bytes,label,origin";
}

std::string PacketRecord::to_csv() const {
  std::ostringstream os;
  os << timestamp.ns() << ',' << src_addr << ',' << dst_addr << ',' << src_port << ','
     << dst_port << ',' << static_cast<int>(protocol) << ',' << static_cast<int>(tcp_flags)
     << ',' << seq << ',' << payload_bytes << ',' << wire_bytes << ','
     << static_cast<int>(label) << ',' << static_cast<int>(origin);
  return os.str();
}

PacketRecord PacketRecord::from_csv(const std::string& line) {
  std::vector<std::uint64_t> fields;
  fields.reserve(12);
  std::istringstream is{line};
  std::string cell;
  while (std::getline(is, cell, ',')) {
    try {
      fields.push_back(std::stoull(cell));
    } catch (const std::exception&) {
      throw std::invalid_argument("PacketRecord::from_csv: bad cell '" + cell + "'");
    }
  }
  if (fields.size() != 12) {
    throw std::invalid_argument("PacketRecord::from_csv: expected 12 fields, got " +
                                std::to_string(fields.size()));
  }
  PacketRecord r;
  r.timestamp = util::SimTime::nanos(static_cast<std::int64_t>(fields[0]));
  r.src_addr = static_cast<std::uint32_t>(fields[1]);
  r.dst_addr = static_cast<std::uint32_t>(fields[2]);
  r.src_port = static_cast<std::uint16_t>(fields[3]);
  r.dst_port = static_cast<std::uint16_t>(fields[4]);
  r.protocol = static_cast<std::uint8_t>(fields[5]);
  r.tcp_flags = static_cast<std::uint8_t>(fields[6]);
  r.seq = static_cast<std::uint32_t>(fields[7]);
  r.payload_bytes = static_cast<std::uint32_t>(fields[8]);
  r.wire_bytes = static_cast<std::uint32_t>(fields[9]);
  r.label = static_cast<net::TrafficClass>(fields[10]);
  r.origin = static_cast<net::TrafficOrigin>(fields[11]);
  return r;
}

}  // namespace ddoshield::capture
