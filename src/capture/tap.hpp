// PacketTap: the testbed's Wireshark.
//
// Attaches to a node (typically the TServer, so it sees everything that
// reaches or leaves the victim) and streams PacketRecords to subscribers:
// the dataset recorder during generation runs, the real-time IDS during
// detection runs. Capturing both received and sent packets makes the
// trace bidirectional, like port-mirroring the victim's access link.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "capture/packet_record.hpp"
#include "net/node.hpp"

namespace ddoshield::obs {
class Counter;
class FlightRecorder;
class LogLinearHistogram;
}

namespace ddoshield::capture {

struct TapConfig {
  bool capture_received = true;
  bool capture_sent = true;
  bool capture_forwarded = false;  // enable when tapping the router instead
  /// Added to every record's timestamp: maps the simulation's 0-based
  /// clock onto the capture wall clock. A detection run performed after a
  /// training capture carries a later offset, exactly like the absolute
  /// timestamps in consecutive real pcaps.
  util::SimTime clock_offset;
};

class PacketTap {
 public:
  using SinkFn = std::function<void(const PacketRecord&)>;

  explicit PacketTap(TapConfig config = {});

  /// Registers with the node; the tap must outlive the node's traffic.
  void attach_to(net::Node& node);

  void add_sink(SinkFn sink) { sinks_.push_back(std::move(sink)); }

  /// Pausing keeps the tap attached but discards traffic (used between
  /// the generation and detection phases of an experiment).
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  std::uint64_t packets_captured() const { return packets_captured_; }

 private:
  void on_packet(const net::Packet& pkt, net::TapDirection dir, net::Node& node);

  TapConfig config_;
  std::vector<SinkFn> sinks_;
  bool enabled_ = true;
  std::uint64_t packets_captured_ = 0;
  obs::Counter* m_packets_;  // aggregate "capture.tap.packets"
  obs::Counter* m_dropped_;  // "capture.tap.dropped": seen while paused

  // Flight-recorder wiring: the capture-tap stage of sampled packets and
  // the send-to-tap lag series feeding the IDS ingress attribution.
  obs::FlightRecorder* flight_;
  obs::LogLinearHistogram* lat_tap_ns_;
};

}  // namespace ddoshield::capture
