// Flow tracking over captured packets.
//
// A flow is the directional 5-tuple. The table powers flow-level analysis:
// short-lived-connection detection, repeated connection attempts, per-flow
// byte/packet accounting — and gives experiments a Wireshark-
// "conversations"-style view of a run.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "capture/packet_record.hpp"
#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::capture {

struct FlowKey {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  static FlowKey of(const PacketRecord& r) {
    return FlowKey{r.src_addr, r.dst_addr, r.src_port, r.dst_port, r.protocol};
  }
};

struct FlowRecord {
  util::SimTime first_seen;
  util::SimTime last_seen;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t syn_count = 0;
  std::uint32_t fin_count = 0;
  std::uint32_t rst_count = 0;
  bool malicious = false;  // any packet labelled malicious taints the flow

  util::SimTime duration() const { return last_seen - first_seen; }
};

class FlowTable {
 public:
  void add(const PacketRecord& record);

  std::size_t flow_count() const { return flows_.size(); }
  const std::map<FlowKey, FlowRecord>& flows() const { return flows_; }

  /// Flows shorter than `max_duration` with at most `max_packets` packets —
  /// the scanning / failed-handshake signature.
  std::size_t short_lived_count(util::SimTime max_duration, std::uint64_t max_packets) const;

  /// Number of (src, dst, dst_port) aggregates with at least `min_syns`
  /// SYNs — repeated connection attempts.
  std::size_t repeated_attempt_sources(std::uint32_t min_syns) const;

  void clear() { flows_.clear(); }

 private:
  std::map<FlowKey, FlowRecord> flows_;
};

}  // namespace ddoshield::capture
