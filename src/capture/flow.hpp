// Flow tracking over captured packets.
//
// A flow is the directional 5-tuple. The table powers flow-level analysis:
// short-lived-connection detection, repeated connection attempts, per-flow
// byte/packet accounting — and gives experiments a Wireshark-
// "conversations"-style view of a run. Storage is an open-addressing
// FlatTable, so the per-packet add() is a probe over contiguous slots
// rather than a tree walk with a node allocation.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "capture/flat_table.hpp"
#include "capture/packet_record.hpp"
#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::capture {

struct FlowKey {
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  friend auto operator<=>(const FlowKey&, const FlowKey&) = default;

  static FlowKey of(const PacketRecord& r) {
    return FlowKey{r.src_addr, r.dst_addr, r.src_port, r.dst_port, r.protocol};
  }
};

struct FlowKeyHash {
  std::size_t operator()(const FlowKey& k) const {
    const std::uint64_t addrs = (std::uint64_t{k.src_addr} << 32) | k.dst_addr;
    const std::uint64_t rest = (std::uint64_t{k.src_port} << 24) |
                               (std::uint64_t{k.dst_port} << 8) | k.protocol;
    return static_cast<std::size_t>(mix_u64(addrs ^ mix_u64(rest)));
  }
};

struct FlowRecord {
  util::SimTime first_seen;
  util::SimTime last_seen;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t syn_count = 0;
  std::uint32_t fin_count = 0;
  std::uint32_t rst_count = 0;
  bool malicious = false;  // any packet labelled malicious taints the flow

  util::SimTime duration() const { return last_seen - first_seen; }
};

class FlowTable {
 public:
  void add(const PacketRecord& record);

  std::size_t flow_count() const { return flows_.size(); }

  /// Looks up one flow; nullptr when the 5-tuple was never seen.
  const FlowRecord* find(const FlowKey& key) const { return flows_.find(key); }

  /// Visits every flow in (deterministic) table order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    flows_.for_each(std::forward<Fn>(fn));
  }

  /// All flows sorted by key — the canonical order for exports and logs.
  std::vector<std::pair<FlowKey, FlowRecord>> sorted_flows() const;

  /// Flows shorter than `max_duration` with at most `max_packets` packets —
  /// the scanning / failed-handshake signature.
  std::size_t short_lived_count(util::SimTime max_duration, std::uint64_t max_packets) const;

  /// Number of (src, dst, dst_port) aggregates with at least `min_syns`
  /// SYNs — repeated connection attempts.
  std::size_t repeated_attempt_sources(std::uint32_t min_syns) const;

  void clear() { flows_.clear(); }

  const FlatTable<FlowKey, FlowRecord, FlowKeyHash>& table() const { return flows_; }

 private:
  FlatTable<FlowKey, FlowRecord, FlowKeyHash> flows_;
};

}  // namespace ddoshield::capture
