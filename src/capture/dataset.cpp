#include "capture/dataset.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace ddoshield::capture {

std::size_t Dataset::malicious_count() const {
  std::size_t n = 0;
  for (const auto& r : records_) n += r.is_malicious();
  return n;
}

std::size_t Dataset::benign_count() const { return records_.size() - malicious_count(); }

double Dataset::balance_ratio() const {
  const std::size_t benign = benign_count();
  if (benign == 0) return 0.0;
  return static_cast<double>(malicious_count()) / static_cast<double>(benign);
}

std::map<net::TrafficOrigin, std::size_t> Dataset::origin_histogram() const {
  std::map<net::TrafficOrigin, std::size_t> hist;
  for (const auto& r : records_) ++hist[r.origin];
  return hist;
}

void Dataset::save_csv(const std::string& path) const {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("Dataset::save_csv: cannot open " + path);
  out << PacketRecord::csv_header() << '\n';
  for (const auto& r : records_) out << r.to_csv() << '\n';
  if (!out) throw std::runtime_error("Dataset::save_csv: write failed for " + path);
}

Dataset Dataset::load_csv(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("Dataset::load_csv: cannot open " + path);
  Dataset ds;
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("Dataset::load_csv: empty file " + path);
  }
  if (line != PacketRecord::csv_header()) {
    throw std::runtime_error("Dataset::load_csv: unexpected header in " + path);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    ds.add(PacketRecord::from_csv(line));
  }
  return ds;
}

std::string Dataset::composition_summary() const {
  std::ostringstream os;
  os << "packets=" << size() << " malicious=" << malicious_count()
     << " benign=" << benign_count();
  os.setf(std::ios::fixed);
  os.precision(3);
  os << " ratio=" << balance_ratio() << "\n";
  for (const auto& [origin, count] : origin_histogram()) {
    os << "  " << net::to_string(origin) << ": " << count << "\n";
  }
  return os.str();
}

}  // namespace ddoshield::capture
