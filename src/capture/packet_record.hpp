// The captured-packet record: what the testbed's pcap-equivalent stores
// for every packet crossing the tap, and the only view of traffic the IDS
// feature extractor is allowed to see (headers + sizes + timing), plus the
// ground-truth label used for training and for scoring detection.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::capture {

struct PacketRecord {
  util::SimTime timestamp;
  std::uint32_t src_addr = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;  // IpProto numeric value (6 tcp / 17 udp)
  std::uint8_t tcp_flags = 0;
  std::uint32_t seq = 0;
  std::uint32_t payload_bytes = 0;
  std::uint32_t wire_bytes = 0;

  // Ground truth (never exposed to features).
  net::TrafficClass label = net::TrafficClass::kBenign;
  net::TrafficOrigin origin = net::TrafficOrigin::kInfrastructure;

  /// Simulator packet uid, carried through so the IDS can correlate flight
  /// recorder stages. In-memory only: the 12-field CSV format is pinned by
  /// exported datasets, so the uid is 0 for records read back from CSV.
  std::uint64_t uid = 0;

  static PacketRecord from_packet(const net::Packet& pkt, util::SimTime at);

  bool is_tcp() const { return protocol == 6; }
  bool is_udp() const { return protocol == 17; }
  bool has_flag(std::uint8_t f) const { return (tcp_flags & f) != 0; }
  bool is_malicious() const { return label == net::TrafficClass::kMalicious; }

  /// CSV row matching csv_header().
  std::string to_csv() const;
  static std::string csv_header();
  /// Parses a row produced by to_csv; throws std::invalid_argument on
  /// malformed input.
  static PacketRecord from_csv(const std::string& line);
};

}  // namespace ddoshield::capture
