#include "container/runtime.hpp"

#include <stdexcept>

namespace ddoshield::container {

void ContainerRuntime::register_image(Image image) {
  images_[image.ref()] = std::move(image);
}

const Image& ContainerRuntime::image(const std::string& ref) const {
  const auto it = images_.find(ref);
  if (it == images_.end()) {
    throw std::invalid_argument("ContainerRuntime: unknown image " + ref);
  }
  return it->second;
}

Container& ContainerRuntime::create(const std::string& container_name,
                                    const std::string& image_ref) {
  if (containers_.contains(container_name)) {
    throw std::invalid_argument("ContainerRuntime: duplicate container name " + container_name);
  }
  auto c = std::make_unique<Container>(container_name, image(image_ref));
  auto& ref = *c;
  containers_[container_name] = std::move(c);
  return ref;
}

Container& ContainerRuntime::get(const std::string& container_name) {
  const auto it = containers_.find(container_name);
  if (it == containers_.end()) {
    throw std::invalid_argument("ContainerRuntime: no such container " + container_name);
  }
  return *it->second;
}

void ContainerRuntime::remove(const std::string& container_name) {
  auto it = containers_.find(container_name);
  if (it == containers_.end()) {
    throw std::invalid_argument("ContainerRuntime: no such container " + container_name);
  }
  it->second->stop();
  containers_.erase(it);
}

void ContainerRuntime::stop_all() {
  for (auto& [name, c] : containers_) c->stop();
}

std::vector<std::string> ContainerRuntime::list() const {
  std::vector<std::string> names;
  names.reserve(containers_.size());
  for (const auto& [name, c] : containers_) names.push_back(name);
  return names;
}

std::size_t ContainerRuntime::running_count() const {
  std::size_t n = 0;
  for (const auto& [name, c] : containers_) n += c->state() == ContainerState::kRunning;
  return n;
}

}  // namespace ddoshield::container
