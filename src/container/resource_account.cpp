#include "container/resource_account.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ddoshield::container {

void ResourceAccount::alloc(std::uint64_t bytes) {
  heap_bytes_ += bytes;
  peak_heap_bytes_ = std::max(peak_heap_bytes_, heap_bytes_);
}

void ResourceAccount::free(std::uint64_t bytes) {
  if (bytes > heap_bytes_) {
    throw std::logic_error("ResourceAccount::free: freeing more than allocated");
  }
  heap_bytes_ -= bytes;
}

void ResourceAccount::reset() { *this = ResourceAccount{}; }

std::string ResourceAccount::summary() const {
  std::ostringstream os;
  os << "cpu_ops=" << cpu_ops_ << " cpu_time_ms=" << static_cast<double>(cpu_time_ns_) * 1e-6
     << " heap_kb=" << static_cast<double>(heap_bytes_) / 1024.0
     << " peak_kb=" << static_cast<double>(peak_heap_bytes_) / 1024.0;
  return os.str();
}

void ScopedAllocation::resize(std::uint64_t bytes) {
  if (account_ == nullptr) throw std::logic_error("ScopedAllocation::resize: empty");
  if (bytes >= bytes_) {
    account_->alloc(bytes - bytes_);
  } else {
    account_->free(bytes_ - bytes);
  }
  bytes_ = bytes;
}

}  // namespace ddoshield::container
