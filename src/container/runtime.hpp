// Container runtime: the image registry and container lifecycle manager —
// the testbed's stand-in for the Docker daemon.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/container.hpp"

namespace ddoshield::container {

class ContainerRuntime {
 public:
  /// Registers (or overwrites) an image under name:tag.
  void register_image(Image image);
  bool has_image(const std::string& ref) const { return images_.contains(ref); }
  const Image& image(const std::string& ref) const;

  /// Creates a container from a registered image. Names must be unique.
  Container& create(const std::string& container_name, const std::string& image_ref);

  Container& get(const std::string& container_name);
  bool exists(const std::string& container_name) const {
    return containers_.contains(container_name);
  }

  /// Stops (if running) and removes the container.
  void remove(const std::string& container_name);

  /// Stops every running container (testbed teardown).
  void stop_all();

  std::vector<std::string> list() const;
  std::size_t running_count() const;

 private:
  std::map<std::string, Image> images_;
  std::map<std::string, std::unique_ptr<Container>> containers_;
};

}  // namespace ddoshield::container
