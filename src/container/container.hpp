// Container and image model.
//
// DDoShield-IoT runs each role (Devs, Attacker, TServer, IDS) as a Docker
// container bridged onto the NS-3 network through a ghost node. This module
// reproduces the *semantics* that matter to the testbed: named images with
// an entrypoint, container lifecycle (created → running → stopped), a
// network bridge binding the container to exactly one simulated node, and
// per-container resource accounting (the `docker stats` role).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/resource_account.hpp"
#include "net/node.hpp"

namespace ddoshield::container {

/// A container image: a named template whose entrypoint is invoked when a
/// container created from it starts. The entrypoint receives the container
/// so it can reach the bridged node and the environment.
class Container;
using Entrypoint = std::function<void(Container&)>;

struct Image {
  std::string name;     // e.g. "ddoshield/dev"
  std::string tag;      // e.g. "1.0"
  Entrypoint entrypoint;

  std::string ref() const { return name + ":" + tag; }
};

enum class ContainerState { kCreated, kRunning, kStopped };

std::string to_string(ContainerState s);

class Container {
 public:
  Container(std::string name, Image image);

  const std::string& name() const { return name_; }
  const Image& image() const { return image_; }
  ContainerState state() const { return state_; }

  // --- network bridge ------------------------------------------------------
  /// Binds the container to its ghost node. Must happen before start();
  /// rebinding a running container throws (as would re-plumbing docker
  /// networking live).
  void attach_node(net::Node& node);
  bool has_node() const { return node_ != nullptr; }
  net::Node& node();

  // --- environment -----------------------------------------------------------
  void set_env(const std::string& key, std::string value) { env_[key] = std::move(value); }
  /// Returns the value or `fallback` when unset.
  std::string env(const std::string& key, const std::string& fallback = {}) const;

  // --- lifecycle -----------------------------------------------------------
  /// Runs the image entrypoint. Throws if already running or no node bound.
  /// Restarting a stopped/killed container is legal (docker restart);
  /// restart_count() tracks starts beyond the first.
  void start();
  void stop();
  /// Abrupt termination (docker kill / a crashing workload): every process
  /// in the container dies, so stop hooks still run — their job is to
  /// cancel the dead processes' pending sim timers — but the exit is
  /// recorded as a crash for the fault-injection bookkeeping.
  void kill();
  /// Registers teardown work run at stop() (apps cancel their timers here).
  void on_stop(std::function<void()> fn) { stop_hooks_.push_back(std::move(fn)); }

  bool last_exit_crashed() const { return last_exit_crashed_; }
  std::uint64_t restart_count() const { return restart_count_; }

  ResourceAccount& resources() { return resources_; }
  const ResourceAccount& resources() const { return resources_; }

 private:
  std::string name_;
  Image image_;
  ContainerState state_ = ContainerState::kCreated;
  net::Node* node_ = nullptr;
  std::map<std::string, std::string> env_;
  std::vector<std::function<void()>> stop_hooks_;
  ResourceAccount resources_;
  bool started_once_ = false;
  bool last_exit_crashed_ = false;
  std::uint64_t restart_count_ = 0;
};

}  // namespace ddoshield::container
