#include "container/container.hpp"

#include <stdexcept>

namespace ddoshield::container {

std::string to_string(ContainerState s) {
  switch (s) {
    case ContainerState::kCreated: return "created";
    case ContainerState::kRunning: return "running";
    case ContainerState::kStopped: return "stopped";
  }
  return "?";
}

Container::Container(std::string name, Image image)
    : name_{std::move(name)}, image_{std::move(image)} {}

void Container::attach_node(net::Node& node) {
  if (state_ == ContainerState::kRunning) {
    throw std::logic_error("Container::attach_node: container is running");
  }
  node_ = &node;
}

net::Node& Container::node() {
  if (node_ == nullptr) {
    throw std::logic_error("Container::node: no node attached to " + name_);
  }
  return *node_;
}

std::string Container::env(const std::string& key, const std::string& fallback) const {
  const auto it = env_.find(key);
  return it == env_.end() ? fallback : it->second;
}

void Container::start() {
  if (state_ == ContainerState::kRunning) {
    throw std::logic_error("Container::start: already running: " + name_);
  }
  if (node_ == nullptr) {
    throw std::logic_error("Container::start: no network bridge for " + name_);
  }
  if (started_once_) ++restart_count_;
  started_once_ = true;
  last_exit_crashed_ = false;
  state_ = ContainerState::kRunning;
  if (image_.entrypoint) image_.entrypoint(*this);
}

void Container::stop() {
  if (state_ != ContainerState::kRunning) return;
  state_ = ContainerState::kStopped;
  for (auto& hook : stop_hooks_) hook();
  stop_hooks_.clear();
}

void Container::kill() {
  if (state_ != ContainerState::kRunning) return;
  stop();
  last_exit_crashed_ = true;
}

}  // namespace ddoshield::container
