// Per-container resource accounting.
//
// Docker gives the paper two things the numbers in Table II depend on:
// isolation of the IDS process and per-container CPU/memory visibility
// (docker stats). ResourceAccount is that visibility: components charge
// their compute and heap usage here, and the meter reads it back.
//
// CPU is tracked two ways:
//   * cpu_ops — abstract operation counts charged by simulated components
//     (deterministic, replayable);
//   * cpu_time — real nanoseconds measured around genuinely-executed work
//     (model inference, feature extraction), which is what Table II uses.
#pragma once

#include <cstdint>
#include <string>

#include "util/sim_time.hpp"

namespace ddoshield::container {

class ResourceAccount {
 public:
  // --- simulated compute ---------------------------------------------------
  void charge_cpu_ops(std::uint64_t ops) { cpu_ops_ += ops; }
  std::uint64_t cpu_ops() const { return cpu_ops_; }

  // --- measured compute ----------------------------------------------------
  void charge_cpu_time_ns(std::uint64_t ns) { cpu_time_ns_ += ns; }
  std::uint64_t cpu_time_ns() const { return cpu_time_ns_; }

  // --- heap ---------------------------------------------------------------
  void alloc(std::uint64_t bytes);
  void free(std::uint64_t bytes);
  std::uint64_t heap_bytes() const { return heap_bytes_; }
  std::uint64_t peak_heap_bytes() const { return peak_heap_bytes_; }

  /// Forgets history (a container restart).
  void reset();

  std::string summary() const;

 private:
  std::uint64_t cpu_ops_ = 0;
  std::uint64_t cpu_time_ns_ = 0;
  std::uint64_t heap_bytes_ = 0;
  std::uint64_t peak_heap_bytes_ = 0;
};

/// RAII heap charge: accounts `bytes` for its lifetime. Attach to working
/// buffers so the meter sees exactly what is resident.
class ScopedAllocation {
 public:
  ScopedAllocation() = default;
  ScopedAllocation(ResourceAccount& account, std::uint64_t bytes)
      : account_{&account}, bytes_{bytes} {
    account_->alloc(bytes_);
  }
  ~ScopedAllocation() { release(); }

  ScopedAllocation(const ScopedAllocation&) = delete;
  ScopedAllocation& operator=(const ScopedAllocation&) = delete;
  ScopedAllocation(ScopedAllocation&& o) noexcept
      : account_{o.account_}, bytes_{o.bytes_} {
    o.account_ = nullptr;
    o.bytes_ = 0;
  }
  ScopedAllocation& operator=(ScopedAllocation&& o) noexcept {
    if (this != &o) {
      release();
      account_ = o.account_;
      bytes_ = o.bytes_;
      o.account_ = nullptr;
      o.bytes_ = 0;
    }
    return *this;
  }

  /// Re-sizes the charge in place (growable working buffers).
  void resize(std::uint64_t bytes);

 private:
  void release() {
    if (account_ != nullptr) account_->free(bytes_);
    account_ = nullptr;
    bytes_ = 0;
  }
  ResourceAccount* account_ = nullptr;
  std::uint64_t bytes_ = 0;
};

}  // namespace ddoshield::container
