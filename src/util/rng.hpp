// Deterministic random number generation.
//
// Every stochastic component in the testbed owns an Rng seeded from the
// scenario seed plus a component tag, so experiments replay exactly and
// components can be added/removed without perturbing each other's streams.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ddoshield::util {

/// xoshiro256** PRNG with convenience distributions.
///
/// Not cryptographic; chosen for speed, quality, and a tiny state that is
/// cheap to fork per component.
class Rng {
 public:
  /// Seeds from a single 64-bit value via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Derives an independent stream for a named sub-component.
  /// fork("scanner") and fork("http") of the same parent never correlate.
  Rng fork(std::string_view tag) const;

  std::uint64_t next_u64();

  /// Uniform in [0, bound) without modulo bias. bound must be > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box-Muller (cached second value).
  double normal();
  double normal(double mean, double stddev);

  /// Exponential with the given rate (events per unit); mean is 1/rate.
  double exponential(double rate);

  /// Pareto-distributed sample (heavy-tailed; models file/flow sizes).
  double pareto(double scale, double shape);

  /// True with probability p.
  bool bernoulli(double p);

  /// Poisson-distributed count with the given mean (Knuth / normal approx).
  std::uint32_t poisson(double mean);

  /// Selects an index in [0, weights.size()) proportionally to weights.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle of an index range stored by the caller.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace ddoshield::util
