// Minimal leveled logger.
//
// The testbed is a library first; logging defaults to Warn so tests and
// benches stay quiet, and examples crank it up for narration. The logger is
// process-global by design — it carries no simulation state.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ddoshield::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the printable name of a level, e.g. "INFO".
std::string_view log_level_name(LogLevel level);

namespace detail {

/// True if the "{}" at `brace` is the inside of an escaped "{{}}".
inline bool brace_is_escaped(std::string_view fmt, std::size_t brace) {
  return brace > 0 && fmt[brace - 1] == '{' && brace + 2 < fmt.size() &&
         fmt[brace + 2] == '}';
}

/// Appends fmt[pos..] with every escaped "{{}}" rendered as "{}".
/// Unescaped "{}" (placeholders left over once arguments ran out) pass
/// through literally.
inline void append_tail(std::ostringstream& os, std::string_view fmt, std::size_t pos) {
  while (true) {
    const std::size_t esc = fmt.find("{{}}", pos);
    if (esc == std::string_view::npos) {
      os << fmt.substr(pos);
      return;
    }
    os << fmt.substr(pos, esc - pos) << "{}";
    pos = esc + 4;
  }
}

}  // namespace detail

/// Substitutes each "{}" in `fmt` with the next argument, streamed via
/// operator<<. "{{}}" escapes a literal "{}" (it is never treated as a
/// placeholder). Extra "{}" render literally once arguments run out;
/// extra arguments beyond the placeholders are ignored.
/// (std::format is unavailable on the minimum supported toolchain.)
template <typename... Args>
std::string format_braces(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  std::size_t pos = 0;
  [[maybe_unused]] auto emit_one = [&](const auto& arg) {
    while (true) {
      const std::size_t brace = fmt.find("{}", pos);
      if (brace == std::string_view::npos) {
        return;  // more args than placeholders: ignore the extras
      }
      if (detail::brace_is_escaped(fmt, brace)) {
        // Emit the "{{}}" as a literal "{}" and keep looking.
        os << fmt.substr(pos, brace - 1 - pos) << "{}";
        pos = brace + 3;
        continue;
      }
      os << fmt.substr(pos, brace - pos) << arg;
      pos = brace + 2;
      return;
    }
  };
  (emit_one(args), ...);
  detail::append_tail(os, fmt, pos);
  return os.str();
}

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Writes one line: "[LEVEL] component: message".
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

/// Formats and logs at the given level if enabled. Usage:
///   log(LogLevel::kInfo, "tcp", "retransmit seq={}", seq);
template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt,
         const Args&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.write(level, component, format_braces(fmt, args...));
}

}  // namespace ddoshield::util
