// Minimal leveled logger.
//
// The testbed is a library first; logging defaults to Warn so tests and
// benches stay quiet, and examples crank it up for narration. The logger is
// process-global by design — it carries no simulation state.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace ddoshield::util {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Returns the printable name of a level, e.g. "INFO".
std::string_view log_level_name(LogLevel level);

/// Substitutes each "{}" in `fmt` with the next argument, streamed via
/// operator<<. Extra "{}" render literally once arguments run out.
/// (std::format is unavailable on the minimum supported toolchain.)
template <typename... Args>
std::string format_braces(std::string_view fmt, const Args&... args) {
  std::ostringstream os;
  std::size_t pos = 0;
  auto emit_one = [&](const auto& arg) {
    const std::size_t brace = fmt.find("{}", pos);
    if (brace == std::string_view::npos) {
      return;  // more args than placeholders: ignore the extras
    }
    os << fmt.substr(pos, brace - pos) << arg;
    pos = brace + 2;
  };
  (emit_one(args), ...);
  os << fmt.substr(pos);
  return os.str();
}

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }
  bool enabled(LogLevel level) const { return level >= level_ && level_ != LogLevel::kOff; }

  /// Writes one line: "[LEVEL] component: message".
  void write(LogLevel level, std::string_view component, std::string_view message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mutex_;
};

/// Formats and logs at the given level if enabled. Usage:
///   log(LogLevel::kInfo, "tcp", "retransmit seq={}", seq);
template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt,
         const Args&... args) {
  auto& logger = Logger::instance();
  if (!logger.enabled(level)) return;
  logger.write(level, component, format_braces(fmt, args...));
}

}  // namespace ddoshield::util
