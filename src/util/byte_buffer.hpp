// Little-endian byte buffer used by model serialization and the dataset
// writer's binary format.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ddoshield::util {

/// Appends fixed-width little-endian values to a growable byte vector.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { data_.push_back(v); }
  void put_u16(std::uint16_t v) { put_raw(&v, sizeof v); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof v); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof v); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof v); }
  void put_f64(double v) { put_raw(&v, sizeof v); }

  void put_string(const std::string& s) {
    put_u32(static_cast<std::uint32_t>(s.size()));
    put_raw(s.data(), s.size());
  }

  void put_f64_span(std::span<const double> xs) {
    put_u64(xs.size());
    put_raw(xs.data(), xs.size() * sizeof(double));
  }

  const std::vector<std::uint8_t>& bytes() const { return data_; }
  std::vector<std::uint8_t> take() { return std::move(data_); }
  std::size_t size() const { return data_.size(); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    data_.insert(data_.end(), b, b + n);
  }
  std::vector<std::uint8_t> data_;
};

/// Reads values written by ByteWriter; throws std::out_of_range on
/// truncated input so corrupt model files fail loudly, never silently.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_{data} {}

  std::uint8_t get_u8() { return get<std::uint8_t>(); }
  std::uint16_t get_u16() { return get<std::uint16_t>(); }
  std::uint32_t get_u32() { return get<std::uint32_t>(); }
  std::uint64_t get_u64() { return get<std::uint64_t>(); }
  std::int64_t get_i64() { return get<std::int64_t>(); }
  double get_f64() { return get<double>(); }

  std::string get_string() {
    const auto n = get_u32();
    check(n);
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
  }

  std::vector<double> get_f64_vector() {
    const auto n = get_u64();
    check(n * sizeof(double));
    std::vector<double> v(n);
    std::memcpy(v.data(), data_.data() + pos_, n * sizeof(double));
    pos_ += n * sizeof(double);
    return v;
  }

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  template <typename T>
  T get() {
    check(sizeof(T));
    T v;
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }
  void check(std::size_t n) const {
    if (pos_ + n > data_.size()) throw std::out_of_range("ByteReader: truncated input");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace ddoshield::util
