// Move-only callable with inline small-object storage.
//
// The event scheduler stores one callable per pending event; with
// std::function every capture larger than the library's tiny SBO buffer
// costs a heap allocation per scheduled event — at flood rates that is a
// malloc/free pair per packet. SmallFn keeps any callable up to `Capacity`
// bytes inline in the event node itself (falling back to the heap for
// oversized captures), so the steady-state hot path schedules without
// touching the allocator. Capacity is a tuning knob, not a hard limit.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace ddoshield::util {

template <typename Signature, std::size_t Capacity = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<std::decay_t<F>, SmallFn> &&
                                        std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      vt_ = &vtable_inline<Fn>;
    } else {
      *reinterpret_cast<Fn**>(storage_) = new Fn(std::forward<F>(f));
      vt_ = &vtable_heap<Fn>;
    }
  }

  SmallFn(SmallFn&& other) noexcept {
    if (other.vt_) {
      other.vt_->relocate(other.storage_, storage_);
      vt_ = other.vt_;
      other.vt_ = nullptr;
    }
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      if (other.vt_) {
        other.vt_->relocate(other.storage_, storage_);
        vt_ = other.vt_;
        other.vt_ = nullptr;
      }
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  void reset() {
    if (vt_) {
      vt_->destroy(storage_);
      vt_ = nullptr;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }

  /// True when the held callable lives in the inline buffer (no heap).
  bool is_inline() const { return vt_ && vt_->inline_stored; }

  R operator()(Args... args) const {
    return vt_->invoke(const_cast<unsigned char*>(storage_), std::forward<Args>(args)...);
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    // Move-constructs into dst and destroys src (trivial pointer copy for
    // heap-held callables).
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    bool inline_stored;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= Capacity && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr VTable vtable_inline{
      [](void* s, Args&&... args) -> R {
        return (*static_cast<Fn*>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* s) { static_cast<Fn*>(s)->~Fn(); },
      /*inline_stored=*/true,
  };

  template <typename Fn>
  static constexpr VTable vtable_heap{
      [](void* s, Args&&... args) -> R {
        return (**static_cast<Fn**>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* s) { delete *static_cast<Fn**>(s); },
      /*inline_stored=*/false,
  };

  alignas(std::max_align_t) unsigned char storage_[Capacity < sizeof(void*) ? sizeof(void*)
                                                                            : Capacity];
  const VTable* vt_ = nullptr;
};

}  // namespace ddoshield::util
