#include "util/logging.hpp"

#include <iostream>

namespace ddoshield::util {

std::string_view log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, std::string_view component, std::string_view message) {
  std::lock_guard<std::mutex> lock{mutex_};
  std::cerr << "[" << log_level_name(level) << "] " << component << ": " << message << "\n";
  // Errors precede crashes often enough that losing them to buffering is
  // not acceptable; force the line out even if cerr was retargeted to a
  // buffered stream.
  if (level == LogLevel::kError) std::cerr.flush();
}

}  // namespace ddoshield::util
