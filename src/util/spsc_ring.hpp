// Bounded lock-free single-producer / single-consumer ring.
//
// The hand-off between the simulation thread (producer) and the dedicated
// IDS scoring thread (consumer). Capacity is rounded up to a power of two;
// try_push / try_pop are wait-free: one relaxed load of the caller's own
// index, at most one acquire load of the opposite index, and one release
// store. Indices grow monotonically and are masked on access, so empty
// (head == tail) and full (tail - head == capacity) are unambiguous
// without a wasted slot. Each side keeps a cached copy of the opposite
// index on its own cache line (Vyukov's layout), so the common case reads
// a shared line only when the cached view runs out.
//
// Thread contract: exactly one producer thread calls try_push and exactly
// one consumer thread calls try_pop. size() is safe from either side but
// only approximate while the other side is active.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ddoshield::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false (and leaves v untouched) when full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) return false;  // genuinely full
    }
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;  // genuinely empty
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  std::size_t capacity() const { return mask_ + 1; }

  /// Approximate occupancy (exact when the opposite thread is quiescent).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // next pop slot, consumer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // next push slot, producer-owned
  alignas(64) std::size_t cached_head_ = 0;       // producer's view of head_
  alignas(64) std::size_t cached_tail_ = 0;       // consumer's view of tail_
};

}  // namespace ddoshield::util
