#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ddoshield::util {

void OnlineStats::add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void FrequencyCounter::add(std::uint64_t key, std::uint64_t weight) {
  counts_[key] += weight;
  total_ += weight;
}

void FrequencyCounter::reset() {
  counts_.clear();
  total_ = 0;
}

std::uint64_t FrequencyCounter::count_of(std::uint64_t key) const {
  const auto it = counts_.find(key);
  return it == counts_.end() ? 0 : it->second;
}

double FrequencyCounter::entropy() const {
  if (total_ == 0 || counts_.size() <= 1) return 0.0;
  double h = 0.0;
  const double n = static_cast<double>(total_);
  for (const auto& [key, c] : counts_) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / n;
    h -= p * std::log2(p);
  }
  return h;
}

double FrequencyCounter::max_share() const {
  if (total_ == 0) return 0.0;
  std::uint64_t best = 0;
  for (const auto& [key, c] : counts_) best = std::max(best, c);
  return static_cast<double>(best) / static_cast<double>(total_);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, bins_(bins, 0) {
  if (!(lo < hi) || bins == 0) {
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
  }
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(t * static_cast<double>(bins_.size()));
  idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(bins_.size()) - 1);
  ++bins_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < bins_.size(); ++i) {
    const double next = cum + static_cast<double>(bins_[i]);
    if (next >= target) {
      const double frac = bins_[i] == 0 ? 0.0 : (target - cum) / static_cast<double>(bins_[i]);
      return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
    }
    cum = next;
  }
  return hi_;
}

}  // namespace ddoshield::util
