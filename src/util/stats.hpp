// Streaming statistics helpers used by the feature extractor, the traffic
// generators, and the experiment harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace ddoshield::util {

/// Welford online mean/variance accumulator; numerically stable and O(1)
/// per sample, which matters when features are recomputed every window.
class OnlineStats {
 public:
  void add(double x);
  void reset();

  std::uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Population variance (divides by n). Zero when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double sum() const { return count_ == 0 ? 0.0 : mean_ * static_cast<double>(count_); }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Counts discrete keys and exposes Shannon entropy over the empirical
/// distribution — the paper's destination-port entropy feature.
class FrequencyCounter {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1);
  void reset();

  std::uint64_t total() const { return total_; }
  std::size_t distinct() const { return counts_.size(); }
  std::uint64_t count_of(std::uint64_t key) const;

  /// Shannon entropy in bits of the key distribution; 0 for <=1 distinct key.
  double entropy() const;

  /// Largest single-key share of the total, in [0,1]; 0 when empty.
  double max_share() const;

  const std::map<std::uint64_t, std::uint64_t>& counts() const { return counts_; }

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Fixed-bin histogram for experiment reporting (latency, goodput, ...).
class Histogram {
 public:
  /// Bins span [lo, hi) uniformly; samples outside clamp to the edge bins.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& bins() const { return bins_; }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Linear-interpolated quantile estimate, q in [0,1].
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace ddoshield::util
