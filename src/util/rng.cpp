#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace ddoshield::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

// FNV-1a over the tag, mixed into stream derivation.
std::uint64_t hash_tag(std::string_view tag) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char c : tag) {
    h ^= c;
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

Rng Rng::fork(std::string_view tag) const {
  // Combine the parent's full state with the tag hash so forked streams
  // depend on the parent seed but not on how many numbers it has drawn
  // relative to other forks.
  std::uint64_t mix = hash_tag(tag);
  for (auto w : state_) mix = rotl(mix ^ w, 17) * 0x9E3779B97F4A7C15ULL;
  return Rng{mix};
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_u64(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("uniform_u64: bound must be > 0");
  // Rejection sampling to remove modulo bias.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? next_u64() : uniform_u64(span));
}

double Rng::uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return -std::log(u) / rate;
}

double Rng::pareto(double scale, double shape) {
  if (scale <= 0.0 || shape <= 0.0) {
    throw std::invalid_argument("pareto: scale and shape must be > 0");
  }
  double u = uniform();
  while (u <= 1e-300) u = uniform();
  return scale / std::pow(u, 1.0 / shape);
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::uint32_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's method.
    const double limit = std::exp(-mean);
    double p = 1.0;
    std::uint32_t k = 0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation for large means.
  const double x = normal(mean, std::sqrt(mean));
  return x <= 0.0 ? 0u : static_cast<std::uint32_t>(std::llround(x));
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  if (weights.empty()) throw std::invalid_argument("weighted_index: empty weights");
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total weight");
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace ddoshield::util
