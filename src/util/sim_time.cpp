#include "util/sim_time.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ddoshield::util {

SimTime SimTime::from_seconds(double s) {
  return SimTime{static_cast<std::int64_t>(std::llround(s * 1e9))};
}

std::string SimTime::to_string() const {
  std::ostringstream os;
  const std::int64_t abs_ns = ns_ < 0 ? -ns_ : ns_;
  if (abs_ns >= 1'000'000'000) {
    os << to_seconds() << "s";
  } else if (abs_ns >= 1'000'000) {
    os << to_millis() << "ms";
  } else if (abs_ns >= 1'000) {
    os << static_cast<double>(ns_) * 1e-3 << "us";
  } else {
    os << ns_ << "ns";
  }
  return os.str();
}

SimTime inter_arrival(double events_per_second) {
  if (events_per_second <= 0.0) {
    throw std::invalid_argument("inter_arrival: rate must be positive");
  }
  return SimTime::from_seconds(1.0 / events_per_second);
}

}  // namespace ddoshield::util
