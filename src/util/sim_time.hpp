// Simulated-time primitives for the discrete-event engine.
//
// All simulator components express time as SimTime, a strong wrapper around
// a signed 64-bit nanosecond count. Using integers (not doubles) keeps event
// ordering exact and runs bit-reproducible across platforms.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace ddoshield::util {

/// A point or span on the simulated clock, in nanoseconds.
///
/// SimTime is used both as an absolute timestamp (since simulation start)
/// and as a duration; arithmetic between the two is the natural integer
/// arithmetic. Negative values are permitted for durations but the
/// scheduler rejects scheduling into the past.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t ns) { return SimTime{ns}; }
  static constexpr SimTime micros(std::int64_t us) { return SimTime{us * 1'000}; }
  static constexpr SimTime millis(std::int64_t ms) { return SimTime{ms * 1'000'000}; }
  static constexpr SimTime seconds(std::int64_t s) { return SimTime{s * 1'000'000'000}; }

  /// Builds a SimTime from fractional seconds; rounds to nearest nanosecond.
  static SimTime from_seconds(double s);

  constexpr std::int64_t ns() const { return ns_; }
  constexpr double to_seconds() const { return static_cast<double>(ns_) * 1e-9; }
  constexpr double to_millis() const { return static_cast<double>(ns_) * 1e-6; }

  constexpr bool is_zero() const { return ns_ == 0; }
  constexpr bool is_negative() const { return ns_ < 0; }

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
  friend constexpr SimTime operator/(SimTime a, std::int64_t k) { return SimTime{a.ns_ / k}; }
  constexpr SimTime& operator+=(SimTime o) { ns_ += o.ns_; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns_ -= o.ns_; return *this; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;

  /// Human-readable rendering, e.g. "12.345s" or "350ms".
  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) : ns_{ns} {}
  std::int64_t ns_ = 0;
};

/// Scales a per-second rate into the SimTime gap between consecutive events.
/// E.g. inter_arrival(200.0) == 5ms.
SimTime inter_arrival(double events_per_second);

}  // namespace ddoshield::util
