// Closed-loop mitigation: from IDS verdicts to enforcement.
//
// The paper's testbed stops at detection; this subsystem closes the loop.
// A MitigationController (an app in the IDS container) subscribes to the
// RealTimeIds verdict bus and drives three enforcement mechanisms:
//
//   * per-source token-bucket rate limiters and ACL drop rules in an
//     EdgeFilter installed at the router's ingress (net::IngressFilter) —
//     the simulated analogue of pushing filters to the victim's edge;
//   * SYN cookies in the victim's TCP stack (TcpHost::set_syn_cookies),
//     self-activating above a half-open watermark;
//   * quarantine of persistently-malicious devices through the testbed's
//     crash/restart hooks, with a scheduled probation rejoin.
//
// Determinism rules (DESIGN.md §12): verdict-sink callbacks only buffer;
// all decisions happen at the controller's window tick, which runs after
// the IDS tick at the same boundary (FIFO seq order) and first blocks —
// wall-clock only — until every window up to the closed one has drained
// from the offload engine. Every action is appended to an ActionLog whose
// lines carry only sim-time and integer fields, so same-seed runs replay
// byte-identically, inline or offloaded.
//
// Hysteresis: a source must accumulate `strikes_to_*` flagged windows to
// escalate and `clean_windows_to_release` consecutive clean windows to be
// pardoned, so flapping verdicts don't thrash rules. ACLs also expire on a
// TTL: a blocked source is invisible to the sensor, so expiry (fail2ban
// style) is what re-tests it — an offender re-strikes within one window.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "ids/realtime_ids.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "net/tcp.hpp"

namespace ddoshield::mitigate {

enum class ActionType : std::uint8_t {
  kSynCookiesOn,      // arg: watermark (0 = stack default)
  kRateLimitInstall,  // arg: packets/sec
  kRateLimitRelease,  // arg: clean windows observed
  kAclInstall,        // arg: TTL in ns
  kAclRelease,        // arg: clean windows observed
  kAclExpire,         // arg: TTL in ns
  kQuarantine,        // arg: device index
  kProbationRejoin,   // arg: device index
};

const char* to_string(ActionType t);

/// One enforcement decision; only deterministic fields.
struct Action {
  std::int64_t t_ns = 0;
  std::uint64_t window_index = 0;
  ActionType type = ActionType::kSynCookiesOn;
  std::uint32_t src_addr = 0;  // 0 for host-wide actions (SYN cookies)
  std::uint64_t arg = 0;

  std::string to_line() const;
};

/// Append-only record of every action; the mitigation analogue of the
/// testkit EventLog (byte-identical across same-seed runs).
class ActionLog {
 public:
  void append(Action a) { actions_.push_back(a); }
  const std::vector<Action>& actions() const { return actions_; }
  std::size_t size() const { return actions_.size(); }
  std::vector<std::string> lines() const;
  /// All lines joined with '\n' (replay comparisons).
  std::string joined() const;

 private:
  std::vector<Action> actions_;
};

struct MitigationConfig {
  // Mechanism switches — all enforcement is opt-in per mechanism; with the
  // controller never deployed, behavior is bit-identical to main.
  bool enable_rate_limit = true;
  bool enable_acl = true;
  bool enable_syn_cookies = true;
  bool enable_quarantine = false;  // crashing devices is drastic; opt in

  // When is a source "flagged" in a window: at least min_packets rows and
  // at least suspect_share of them called malicious. The volume floor is
  // what separates bots (hundreds of rows per window) from benign clients
  // that merely share a flood window with them.
  double suspect_share = 0.5;
  std::uint32_t min_packets = 64;

  // Hysteresis ladder (strikes = flagged windows, not necessarily
  // consecutive; clean windows below the flag bar reset nothing until
  // clean_windows_to_release of them arrive in a row).
  std::uint32_t strikes_to_limit = 1;
  std::uint32_t strikes_to_acl = 3;
  std::uint32_t strikes_to_quarantine = 6;
  std::uint32_t clean_windows_to_release = 3;

  // Enforcement parameters.
  double limit_pps = 50.0;
  double limit_burst = 25.0;
  util::SimTime acl_ttl = util::SimTime::seconds(10);
  util::SimTime probation = util::SimTime::seconds(8);
  std::size_t syn_cookie_watermark = 0;  // 0 = stack default (backlog/2)
};

/// Ingress filter for the protected service's edge: an ordered ACL set
/// plus per-source token buckets refilled on the simulation clock. Only
/// packets addressed to the protected destination are subject to rules;
/// with no rules installed, on_packet is two branches.
class EdgeFilter : public net::IngressFilter {
 public:
  EdgeFilter(net::Simulator& sim, net::Ipv4Address protected_dst)
      : sim_{sim}, protected_dst_{protected_dst} {}

  net::FilterVerdict on_packet(const net::Packet& pkt) override;

  void install_acl(std::uint32_t src_addr) { acl_.insert(src_addr); }
  void remove_acl(std::uint32_t src_addr) { acl_.erase(src_addr); }
  void install_limit(std::uint32_t src_addr, double pps, double burst);
  void remove_limit(std::uint32_t src_addr) { limits_.erase(src_addr); }

  std::size_t acl_rules() const { return acl_.size(); }
  std::size_t limit_rules() const { return limits_.size(); }
  net::Ipv4Address protected_dst() const { return protected_dst_; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double rate_pps = 0.0;
    double burst = 0.0;
    std::int64_t last_refill_ns = 0;
  };

  net::Simulator& sim_;
  net::Ipv4Address protected_dst_;
  std::set<std::uint32_t> acl_;
  std::map<std::uint32_t, TokenBucket> limits_;
};

struct MitigationSummary {
  std::uint64_t windows_processed = 0;
  std::uint64_t actions = 0;
  std::uint64_t rate_limits_installed = 0;
  std::uint64_t acls_installed = 0;
  std::uint64_t quarantines = 0;
  std::uint64_t rejoins = 0;
  std::size_t sources_tracked = 0;
  std::string to_string() const;
};

/// The controller app: buffers verdict events, decides at window ticks,
/// enforces through the filter / TCP stack / quarantine hooks.
class MitigationController : public apps::App {
 public:
  /// Maps a source address to a quarantineable device and crashes it;
  /// returns false when the address is no device (spoofed, attacker) or
  /// the device is already down.
  using QuarantineFn = std::function<bool(std::uint32_t src_addr)>;
  /// Probation ended: restart the device.
  using RejoinFn = std::function<void(std::uint32_t src_addr)>;

  MitigationController(container::Container& owner, util::Rng rng, ids::RealTimeIds& ids,
                       EdgeFilter& filter, net::TcpHost& victim_tcp, MitigationConfig cfg);

  void set_quarantine_hooks(QuarantineFn quarantine, RejoinFn rejoin) {
    quarantine_fn_ = std::move(quarantine);
    rejoin_fn_ = std::move(rejoin);
  }

  const MitigationConfig& config() const { return cfg_; }
  const ActionLog& action_log() const { return log_; }
  MitigationSummary summary() const;

 protected:
  void on_start() override;

 private:
  struct SourceState {
    std::uint32_t strikes = 0;
    std::uint32_t clean = 0;
    bool limited = false;
    bool acl = false;
    bool quarantined = false;
    std::int64_t acl_expires_ns = 0;
  };

  void schedule_tick();
  void tick();
  void process_event(const ids::WindowVerdictEvent& event);
  void expire_acls(std::uint64_t window_index);
  void escalate(std::uint32_t src_addr, SourceState& st, std::uint64_t window_index);
  void pardon(std::uint32_t src_addr, SourceState& st, std::uint64_t window_index);
  void log_action(ActionType type, std::uint64_t window_index, std::uint32_t src_addr,
                  std::uint64_t arg);

  ids::RealTimeIds& ids_;
  EdgeFilter& filter_;
  net::TcpHost& victim_tcp_;
  MitigationConfig cfg_;
  QuarantineFn quarantine_fn_;
  RejoinFn rejoin_fn_;

  std::uint64_t current_window_ = 0;
  std::uint64_t windows_processed_ = 0;
  std::deque<ids::WindowVerdictEvent> inbox_;  // sink buffers; tick drains
  std::map<std::uint32_t, SourceState> sources_;
  ActionLog log_;
};

}  // namespace ddoshield::mitigate
