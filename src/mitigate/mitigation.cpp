#include "mitigate/mitigation.hpp"

#include <algorithm>
#include <cstdio>

#include "net/address.hpp"

namespace ddoshield::mitigate {

using util::SimTime;

// ---------------------------------------------------------------------------
// ActionLog
// ---------------------------------------------------------------------------

const char* to_string(ActionType t) {
  switch (t) {
    case ActionType::kSynCookiesOn: return "syn_cookies_on";
    case ActionType::kRateLimitInstall: return "ratelimit_install";
    case ActionType::kRateLimitRelease: return "ratelimit_release";
    case ActionType::kAclInstall: return "acl_install";
    case ActionType::kAclRelease: return "acl_release";
    case ActionType::kAclExpire: return "acl_expire";
    case ActionType::kQuarantine: return "quarantine";
    case ActionType::kProbationRejoin: return "probation_rejoin";
  }
  return "unknown";
}

std::string Action::to_line() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%lld mitigate action=%s window=%llu src=%s arg=%llu",
                static_cast<long long>(t_ns), to_string(type),
                static_cast<unsigned long long>(window_index),
                net::Ipv4Address{src_addr}.to_string().c_str(),
                static_cast<unsigned long long>(arg));
  return std::string{buf};
}

std::vector<std::string> ActionLog::lines() const {
  std::vector<std::string> out;
  out.reserve(actions_.size());
  for (const auto& a : actions_) out.push_back(a.to_line());
  return out;
}

std::string ActionLog::joined() const {
  std::string out;
  for (const auto& a : actions_) {
    out += a.to_line();
    out += '\n';
  }
  return out;
}

// ---------------------------------------------------------------------------
// EdgeFilter
// ---------------------------------------------------------------------------

net::FilterVerdict EdgeFilter::on_packet(const net::Packet& pkt) {
  // Benign-only fast path: no rules installed means two cheap branches.
  if (acl_.empty() && limits_.empty()) return net::FilterVerdict::kAccept;
  if (pkt.dst != protected_dst_) return net::FilterVerdict::kAccept;

  if (acl_.count(pkt.src.bits()) != 0) return net::FilterVerdict::kDropAcl;

  auto it = limits_.find(pkt.src.bits());
  if (it == limits_.end()) return net::FilterVerdict::kAccept;

  TokenBucket& tb = it->second;
  const std::int64_t now_ns = sim_.now().ns();
  if (now_ns > tb.last_refill_ns) {
    const double dt_sec = static_cast<double>(now_ns - tb.last_refill_ns) * 1e-9;
    tb.tokens = std::min(tb.burst, tb.tokens + tb.rate_pps * dt_sec);
    tb.last_refill_ns = now_ns;
  }
  if (tb.tokens >= 1.0) {
    tb.tokens -= 1.0;
    return net::FilterVerdict::kAccept;
  }
  return net::FilterVerdict::kDropRateLimit;
}

void EdgeFilter::install_limit(std::uint32_t src_addr, double pps, double burst) {
  TokenBucket tb;
  tb.rate_pps = pps;
  tb.burst = burst;
  tb.tokens = burst;  // a fresh rule starts full; the flood drains it at once
  tb.last_refill_ns = sim_.now().ns();
  limits_[src_addr] = tb;
}

// ---------------------------------------------------------------------------
// MitigationController
// ---------------------------------------------------------------------------

std::string MitigationSummary::to_string() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "mitigation windows=%llu actions=%llu ratelimits=%llu acls=%llu "
                "quarantines=%llu rejoins=%llu sources=%zu",
                static_cast<unsigned long long>(windows_processed),
                static_cast<unsigned long long>(actions),
                static_cast<unsigned long long>(rate_limits_installed),
                static_cast<unsigned long long>(acls_installed),
                static_cast<unsigned long long>(quarantines),
                static_cast<unsigned long long>(rejoins), sources_tracked);
  return std::string{buf};
}

MitigationController::MitigationController(container::Container& owner, util::Rng rng,
                                           ids::RealTimeIds& ids, EdgeFilter& filter,
                                           net::TcpHost& victim_tcp, MitigationConfig cfg)
    : App{owner, "mitigation-controller", std::move(rng)},
      ids_{ids},
      filter_{filter},
      victim_tcp_{victim_tcp},
      cfg_{cfg} {}

void MitigationController::on_start() {
  // The sink may fire from finalize paths whose wall-clock timing depends on
  // the offload engine; it must only buffer. All decisions happen in tick().
  ids_.set_verdict_sink(
      [this](const ids::WindowVerdictEvent& event) { inbox_.push_back(event); });

  if (cfg_.enable_syn_cookies) {
    victim_tcp_.set_syn_cookies(true, cfg_.syn_cookie_watermark);
    log_action(ActionType::kSynCookiesOn, 0, 0,
               static_cast<std::uint64_t>(cfg_.syn_cookie_watermark));
  }

  const std::int64_t w = ids_.window_period().ns();
  current_window_ = static_cast<std::uint64_t>(sim().now().ns() / w);
  schedule_tick();
}

void MitigationController::schedule_tick() {
  // Fire exactly at the next window boundary. The IDS schedules its own tick
  // for the same instant but earlier (it started first), so FIFO ordering at
  // equal timestamps guarantees window k is closed before we act on it —
  // inductively, because both sides re-schedule from within their ticks.
  const std::int64_t w = ids_.window_period().ns();
  const std::int64_t boundary = static_cast<std::int64_t>(current_window_ + 1) * w;
  schedule(SimTime::nanos(boundary) - sim().now(), [this] { tick(); });
}

void MitigationController::tick() {
  const std::uint64_t closed = current_window_;

  expire_acls(closed);

  // Block (wall-clock only — sim time does not advance) until the offload
  // engine has published every window up to the one that just closed, so the
  // decisions below see the same verdict stream as an inline run.
  ids_.finalize_windows_through(closed);

  while (!inbox_.empty()) {
    process_event(inbox_.front());
    inbox_.pop_front();
  }

  ++current_window_;
  schedule_tick();
}

void MitigationController::expire_acls(std::uint64_t window_index) {
  const std::int64_t now_ns = sim().now().ns();
  for (auto& [addr, st] : sources_) {
    if (st.acl && st.acl_expires_ns <= now_ns) {
      st.acl = false;
      // Strikes are retained: a repeat offender re-blocks after one window
      // (fail2ban-style), a reformed one climbs down via clean windows.
      filter_.remove_acl(addr);
      log_action(ActionType::kAclExpire, window_index, addr,
                 static_cast<std::uint64_t>(cfg_.acl_ttl.ns()));
    }
  }
}

void MitigationController::process_event(const ids::WindowVerdictEvent& event) {
  ++windows_processed_;
  for (const auto& sv : event.sources) {
    // Never blocklist the protected service itself: the tap sees both
    // directions, so the victim's own responses share every flood window's
    // (flagged) statistical features.
    if (sv.src_addr == filter_.protected_dst().bits()) continue;
    SourceState& st = sources_[sv.src_addr];
    if (st.quarantined) continue;
    const bool flagged =
        sv.packets >= cfg_.min_packets &&
        static_cast<double>(sv.flagged) >= cfg_.suspect_share * static_cast<double>(sv.packets);
    if (flagged) {
      ++st.strikes;
      st.clean = 0;
      escalate(sv.src_addr, st, event.window_index);
    } else if (!st.acl) {
      // An ACL'd source is invisible to the tap, so absence of flags while
      // blocked proves nothing; only unblocked clean windows count.
      ++st.clean;
      if (st.clean >= cfg_.clean_windows_to_release) pardon(sv.src_addr, st, event.window_index);
    }
  }
}

void MitigationController::escalate(std::uint32_t src_addr, SourceState& st,
                                    std::uint64_t window_index) {
  if (cfg_.enable_quarantine && quarantine_fn_ && st.strikes >= cfg_.strikes_to_quarantine) {
    if (quarantine_fn_(src_addr)) {
      st.quarantined = true;
      // The device is down; edge rules against it are dead weight.
      if (st.acl) {
        st.acl = false;
        filter_.remove_acl(src_addr);
        log_action(ActionType::kAclRelease, window_index, src_addr, 0);
      }
      if (st.limited) {
        st.limited = false;
        filter_.remove_limit(src_addr);
        log_action(ActionType::kRateLimitRelease, window_index, src_addr, 0);
      }
      log_action(ActionType::kQuarantine, window_index, src_addr, st.strikes);
      schedule(cfg_.probation, [this, src_addr] {
        auto it = sources_.find(src_addr);
        if (it == sources_.end() || !it->second.quarantined) return;
        it->second = SourceState{};  // rejoin on probation with a clean slate
        if (rejoin_fn_) rejoin_fn_(src_addr);
        log_action(ActionType::kProbationRejoin, current_window_, src_addr, 0);
      });
      return;
    }
    // Not a quarantineable device (spoofed source, external host): fall
    // through to edge enforcement, which works on any address.
  }
  if (cfg_.enable_acl && st.strikes >= cfg_.strikes_to_acl) {
    if (!st.acl) {
      st.acl = true;
      st.acl_expires_ns = sim().now().ns() + cfg_.acl_ttl.ns();
      filter_.install_acl(src_addr);
      log_action(ActionType::kAclInstall, window_index, src_addr,
                 static_cast<std::uint64_t>(cfg_.acl_ttl.ns()));
      if (st.limited) {
        st.limited = false;
        filter_.remove_limit(src_addr);
        log_action(ActionType::kRateLimitRelease, window_index, src_addr, 0);
      }
    } else {
      st.acl_expires_ns = sim().now().ns() + cfg_.acl_ttl.ns();  // refresh TTL
    }
    return;
  }
  if (cfg_.enable_rate_limit && st.strikes >= cfg_.strikes_to_limit && !st.limited && !st.acl) {
    st.limited = true;
    filter_.install_limit(src_addr, cfg_.limit_pps, cfg_.limit_burst);
    log_action(ActionType::kRateLimitInstall, window_index, src_addr,
               static_cast<std::uint64_t>(cfg_.limit_pps));
  }
}

void MitigationController::pardon(std::uint32_t src_addr, SourceState& st,
                                  std::uint64_t window_index) {
  st.strikes = 0;
  if (st.limited) {
    st.limited = false;
    filter_.remove_limit(src_addr);
    log_action(ActionType::kRateLimitRelease, window_index, src_addr, st.clean);
  }
}

void MitigationController::log_action(ActionType type, std::uint64_t window_index,
                                      std::uint32_t src_addr, std::uint64_t arg) {
  Action a;
  a.t_ns = sim().now().ns();
  a.window_index = window_index;
  a.type = type;
  a.src_addr = src_addr;
  a.arg = arg;
  log_.append(a);
}

MitigationSummary MitigationController::summary() const {
  MitigationSummary s;
  s.windows_processed = windows_processed_;
  s.actions = log_.size();
  for (const auto& a : log_.actions()) {
    switch (a.type) {
      case ActionType::kRateLimitInstall: ++s.rate_limits_installed; break;
      case ActionType::kAclInstall: ++s.acls_installed; break;
      case ActionType::kQuarantine: ++s.quarantines; break;
      case ActionType::kProbationRejoin: ++s.rejoins; break;
      default: break;
    }
  }
  s.sources_tracked = sources_.size();
  return s;
}

}  // namespace ddoshield::mitigate
