#include "features/window_stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "capture/flat_table.hpp"
#include "capture/flow.hpp"
#include "net/packet.hpp"
#include "util/stats.hpp"

namespace ddoshield::features {

void WindowStats::fill_row(FeatureRow& row) const {
  row[kWinPacketCount] = static_cast<double>(packet_count);
  row[kWinByteRate] = byte_rate;
  row[kWinDstPortEntropy] = dst_port_entropy;
  row[kWinSrcAddrEntropy] = src_addr_entropy;
  row[kWinSynNoAckRatio] = syn_no_ack_ratio;
  row[kWinShortLivedFlows] = short_lived_flows;
  row[kWinRepeatedAttempts] = repeated_attempts;
  row[kWinSeqVarianceLog] = seq_variance_log;
  row[kWinMeanPayload] = mean_payload;
  row[kWinUdpFraction] = udp_fraction;
}

namespace {

// Per-window flow tallies, as a policy so the production and reference
// implementations share one aggregation loop.
//
// FlatCounters is the production path: open-addressing tables, since this
// loop runs once per packet per window and tree-map node allocations here
// used to dominate the feature cost. MapCounters is that original tree-map
// implementation, kept runtime-selectable so bench_scale's legacy mode can
// measure the seed's per-packet cost profile on the same binary.
struct U64Hash {
  std::size_t operator()(std::uint64_t v) const {
    return static_cast<std::size_t>(capture::mix_u64(v));
  }
};

// Flat-table drop-in for util::FrequencyCounter on the per-packet path.
// entropy() sums in ascending key order — the same order std::map iterates —
// so the two counter policies produce bit-identical feature values despite
// the hash table's unordered slots.
class FlatFrequencyCounter {
 public:
  void add(std::uint64_t key, std::uint64_t weight = 1) {
    counts_.find_or_insert(key) += weight;
    total_ += weight;
  }

  double entropy() const {
    if (total_ == 0 || counts_.size() <= 1) return 0.0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted;
    sorted.reserve(counts_.size());
    counts_.for_each([&](const std::uint64_t& key, const std::uint64_t& c) {
      sorted.emplace_back(key, c);
    });
    std::sort(sorted.begin(), sorted.end());
    double h = 0.0;
    const double n = static_cast<double>(total_);
    for (const auto& [key, c] : sorted) {
      if (c == 0) continue;
      const double p = static_cast<double>(c) / n;
      h -= p * std::log2(p);
    }
    return h;
  }

 private:
  capture::FlatTable<std::uint64_t, std::uint64_t, U64Hash> counts_;
  std::uint64_t total_ = 0;
};

struct FlatCounters {
  capture::FlatTable<capture::FlowKey, std::uint32_t, capture::FlowKeyHash> flow_packets;
  capture::FlatTable<std::uint64_t, std::uint32_t, U64Hash> syn_per_src_dport;
  FlatFrequencyCounter dst_ports;
  FlatFrequencyCounter src_addrs;

  explicit FlatCounters(std::size_t packet_hint) : flow_packets(packet_hint / 4) {}

  void count_flow_packet(const capture::PacketRecord& r) {
    ++flow_packets.find_or_insert(capture::FlowKey::of(r));
  }
  void count_syn(const capture::PacketRecord& r) {
    ++syn_per_src_dport.find_or_insert((std::uint64_t{r.src_addr} << 16) | r.dst_port);
  }
  std::uint64_t short_lived_flows() const {
    std::uint64_t n = 0;
    flow_packets.for_each(
        [&](const capture::FlowKey&, const std::uint32_t& count) { n += count <= 2; });
    return n;
  }
  std::uint64_t repeated_attempts() const {
    std::uint64_t n = 0;
    syn_per_src_dport.for_each(
        [&](const std::uint64_t&, const std::uint32_t& syns) { n += syns >= 3; });
    return n;
  }
};

struct MapCounters {
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t, std::uint8_t>,
           std::uint32_t>
      flow_packets;
  std::map<std::tuple<std::uint32_t, std::uint16_t>, std::uint32_t> syn_per_src_dport;
  util::FrequencyCounter dst_ports;
  util::FrequencyCounter src_addrs;

  explicit MapCounters(std::size_t) {}

  void count_flow_packet(const capture::PacketRecord& r) {
    ++flow_packets[{r.src_addr, r.dst_addr, r.src_port, r.dst_port, r.protocol}];
  }
  void count_syn(const capture::PacketRecord& r) {
    ++syn_per_src_dport[{r.src_addr, r.dst_port}];
  }
  std::uint64_t short_lived_flows() const {
    std::uint64_t n = 0;
    for (const auto& [key, count] : flow_packets) n += count <= 2;
    return n;
  }
  std::uint64_t repeated_attempts() const {
    std::uint64_t n = 0;
    for (const auto& [key, syns] : syn_per_src_dport) n += syns >= 3;
    return n;
  }
};

bool g_reference_counters = false;

template <typename Counters>
WindowStats compute_with(std::span<const capture::PacketRecord> packets,
                         util::SimTime window_duration) {
  WindowStats stats;

  util::OnlineStats seq_stats;
  util::OnlineStats payload_stats;
  Counters counters{packets.size()};

  std::uint64_t total_bytes = 0;
  std::uint64_t tcp_packets = 0;
  std::uint64_t udp_packets = 0;
  std::uint64_t syn_no_ack = 0;

  for (const auto& r : packets) {
    total_bytes += r.wire_bytes;
    counters.dst_ports.add(r.dst_port);
    counters.src_addrs.add(r.src_addr);
    payload_stats.add(static_cast<double>(r.payload_bytes));
    counters.count_flow_packet(r);

    if (r.is_tcp()) {
      ++tcp_packets;
      seq_stats.add(static_cast<double>(r.seq));
      const bool syn = r.has_flag(net::TcpFlags::kSyn);
      const bool ack = r.has_flag(net::TcpFlags::kAck);
      if (syn && !ack) {
        ++syn_no_ack;
        counters.count_syn(r);
      }
    } else if (r.is_udp()) {
      ++udp_packets;
    }
  }

  stats.packet_count = packets.size();
  stats.byte_rate = static_cast<double>(total_bytes) / window_duration.to_seconds();
  stats.dst_port_entropy = counters.dst_ports.entropy();
  stats.src_addr_entropy = counters.src_addrs.entropy();
  stats.syn_no_ack_ratio =
      tcp_packets == 0 ? 0.0 : static_cast<double>(syn_no_ack) / static_cast<double>(tcp_packets);
  stats.short_lived_flows = static_cast<double>(counters.short_lived_flows());
  stats.repeated_attempts = static_cast<double>(counters.repeated_attempts());
  stats.seq_variance_log = std::log10(1.0 + seq_stats.variance());
  stats.mean_payload = payload_stats.mean();
  stats.udp_fraction = packets.empty()
                           ? 0.0
                           : static_cast<double>(udp_packets) / static_cast<double>(packets.size());
  return stats;
}

}  // namespace

void set_reference_window_counters(bool on) { g_reference_counters = on; }
bool reference_window_counters() { return g_reference_counters; }

WindowStats compute_window_stats(std::span<const capture::PacketRecord> packets,
                                 util::SimTime window_duration) {
  if (window_duration <= util::SimTime{}) {
    throw std::invalid_argument("compute_window_stats: window duration must be positive");
  }
  WindowStats stats;
  if (packets.empty()) return stats;
  return g_reference_counters ? compute_with<MapCounters>(packets, window_duration)
                              : compute_with<FlatCounters>(packets, window_duration);
}

void fill_basic_features(const capture::PacketRecord& record, FeatureRow& row) {
  row[kTimestamp] = record.timestamp.to_seconds();
  row[kSrcAddr] = static_cast<double>(record.src_addr) / 4294967296.0;
  row[kDstAddr] = static_cast<double>(record.dst_addr) / 4294967296.0;
  row[kProtoIsTcp] = record.is_tcp() ? 1.0 : 0.0;
  row[kSrcPort] = static_cast<double>(record.src_port) / 65535.0;
  row[kDstPort] = static_cast<double>(record.dst_port) / 65535.0;
  row[kPayloadBytes] = static_cast<double>(record.payload_bytes);
}

FeatureRow make_feature_row(const capture::PacketRecord& record, const WindowStats& stats) {
  FeatureRow row{};
  fill_basic_features(record, row);
  stats.fill_row(row);
  return row;
}

}  // namespace ddoshield::features
