#include "features/window_stats.hpp"

#include <cmath>
#include <map>
#include <stdexcept>
#include <tuple>

#include "net/packet.hpp"
#include "util/stats.hpp"

namespace ddoshield::features {

void WindowStats::fill_row(FeatureRow& row) const {
  row[kWinPacketCount] = static_cast<double>(packet_count);
  row[kWinByteRate] = byte_rate;
  row[kWinDstPortEntropy] = dst_port_entropy;
  row[kWinSrcAddrEntropy] = src_addr_entropy;
  row[kWinSynNoAckRatio] = syn_no_ack_ratio;
  row[kWinShortLivedFlows] = short_lived_flows;
  row[kWinRepeatedAttempts] = repeated_attempts;
  row[kWinSeqVarianceLog] = seq_variance_log;
  row[kWinMeanPayload] = mean_payload;
  row[kWinUdpFraction] = udp_fraction;
}

WindowStats compute_window_stats(std::span<const capture::PacketRecord> packets,
                                 util::SimTime window_duration) {
  if (window_duration <= util::SimTime{}) {
    throw std::invalid_argument("compute_window_stats: window duration must be positive");
  }
  WindowStats stats;
  if (packets.empty()) return stats;

  util::FrequencyCounter dst_ports;
  util::FrequencyCounter src_addrs;
  util::OnlineStats seq_stats;
  util::OnlineStats payload_stats;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t, std::uint16_t, std::uint8_t>,
           std::uint32_t>
      flow_packets;
  std::map<std::tuple<std::uint32_t, std::uint16_t>, std::uint32_t> syn_per_src_dport;

  std::uint64_t total_bytes = 0;
  std::uint64_t tcp_packets = 0;
  std::uint64_t udp_packets = 0;
  std::uint64_t syn_no_ack = 0;

  for (const auto& r : packets) {
    total_bytes += r.wire_bytes;
    dst_ports.add(r.dst_port);
    src_addrs.add(r.src_addr);
    payload_stats.add(static_cast<double>(r.payload_bytes));
    ++flow_packets[{r.src_addr, r.dst_addr, r.src_port, r.dst_port, r.protocol}];

    if (r.is_tcp()) {
      ++tcp_packets;
      seq_stats.add(static_cast<double>(r.seq));
      const bool syn = r.has_flag(net::TcpFlags::kSyn);
      const bool ack = r.has_flag(net::TcpFlags::kAck);
      if (syn && !ack) {
        ++syn_no_ack;
        ++syn_per_src_dport[{r.src_addr, r.dst_port}];
      }
    } else if (r.is_udp()) {
      ++udp_packets;
    }
  }

  stats.packet_count = packets.size();
  stats.byte_rate = static_cast<double>(total_bytes) / window_duration.to_seconds();
  stats.dst_port_entropy = dst_ports.entropy();
  stats.src_addr_entropy = src_addrs.entropy();
  stats.syn_no_ack_ratio =
      tcp_packets == 0 ? 0.0 : static_cast<double>(syn_no_ack) / static_cast<double>(tcp_packets);

  std::uint64_t short_lived = 0;
  for (const auto& [key, count] : flow_packets) short_lived += count <= 2;
  stats.short_lived_flows = static_cast<double>(short_lived);

  std::uint64_t repeated = 0;
  for (const auto& [key, syns] : syn_per_src_dport) repeated += syns >= 3;
  stats.repeated_attempts = static_cast<double>(repeated);

  stats.seq_variance_log = std::log10(1.0 + seq_stats.variance());
  stats.mean_payload = payload_stats.mean();
  stats.udp_fraction = packets.empty()
                           ? 0.0
                           : static_cast<double>(udp_packets) / static_cast<double>(packets.size());
  return stats;
}

void fill_basic_features(const capture::PacketRecord& record, FeatureRow& row) {
  row[kTimestamp] = record.timestamp.to_seconds();
  row[kSrcAddr] = static_cast<double>(record.src_addr) / 4294967296.0;
  row[kDstAddr] = static_cast<double>(record.dst_addr) / 4294967296.0;
  row[kProtoIsTcp] = record.is_tcp() ? 1.0 : 0.0;
  row[kSrcPort] = static_cast<double>(record.src_port) / 65535.0;
  row[kDstPort] = static_cast<double>(record.dst_port) / 65535.0;
  row[kPayloadBytes] = static_cast<double>(record.payload_bytes);
}

FeatureRow make_feature_row(const capture::PacketRecord& record, const WindowStats& stats) {
  FeatureRow row{};
  fill_basic_features(record, row);
  stats.fill_row(row);
  return row;
}

}  // namespace ddoshield::features
