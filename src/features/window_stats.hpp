// Per-window statistical features (§IV-A of the paper): packet counts,
// destination-port entropy, port-usage frequency patterns (short-lived
// connections, repeated attempts), SYN-without-ACK analysis, flow rate,
// and sequence-number variance.
#pragma once

#include <cstdint>
#include <span>

#include "capture/packet_record.hpp"
#include "features/schema.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::features {

struct WindowStats {
  std::uint64_t packet_count = 0;
  double byte_rate = 0.0;          // wire bytes per second over the window
  double dst_port_entropy = 0.0;   // bits
  double src_addr_entropy = 0.0;   // bits
  double syn_no_ack_ratio = 0.0;   // SYN-without-ACK / TCP packets
  double short_lived_flows = 0.0;  // 5-tuples with <=2 packets in window
  double repeated_attempts = 0.0;  // (src,dst_port) pairs with >=3 SYNs
  double seq_variance_log = 0.0;   // log10(1 + var(seq)) over TCP packets
  double mean_payload = 0.0;
  double udp_fraction = 0.0;

  /// Writes the statistical block of `row` (indices kWinPacketCount..).
  void fill_row(FeatureRow& row) const;
};

/// Computes the statistics over one window's packets.
/// `window_duration` must be positive; it scales byte_rate.
WindowStats compute_window_stats(std::span<const capture::PacketRecord> packets,
                                 util::SimTime window_duration);

/// Selects the flow-tally implementation behind compute_window_stats:
/// false (default) = open-addressing FlatTable; true = the original
/// tree-map implementation, kept as the runtime-selectable reference that
/// bench_scale's legacy mode measures against. Both produce identical
/// statistics.
void set_reference_window_counters(bool on);
bool reference_window_counters();

/// Builds the basic-feature prefix of a row from one packet.
void fill_basic_features(const capture::PacketRecord& record, FeatureRow& row);

/// Convenience: basic + statistical in one row.
FeatureRow make_feature_row(const capture::PacketRecord& record, const WindowStats& stats);

}  // namespace ddoshield::features
