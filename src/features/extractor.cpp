#include "features/extractor.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace ddoshield::features {

FeatureAggregator::FeatureAggregator(AggregatorConfig config) : config_{config} {
  if (config_.window <= util::SimTime{}) {
    throw std::invalid_argument("FeatureAggregator: window must be positive");
  }
  auto& reg = obs::MetricsRegistry::global();
  m_packets_ = &reg.counter("features.packets_added");
  m_windows_ = &reg.counter("features.windows_emitted");
  m_extract_ns_ = &reg.histogram("features.extract_ns");
}

void FeatureAggregator::add(const capture::PacketRecord& record) {
  const auto window_of = [this](util::SimTime t) {
    return static_cast<std::uint64_t>(t.ns() / config_.window.ns());
  };
  const std::uint64_t w = window_of(record.timestamp);
  if (!have_window_) {
    current_window_ = w;
    have_window_ = true;
  } else if (w != current_window_) {
    if (w < current_window_) {
      throw std::invalid_argument("FeatureAggregator::add: packets out of order");
    }
    close_window();
    current_window_ = w;
  }
  buffer_.push_back(record);
  m_packets_->inc();
}

void FeatureAggregator::flush() {
  if (!buffer_.empty()) close_window();
  have_window_ = false;
}

void FeatureAggregator::close_window() {
  if (buffer_.empty()) return;
  WindowOutput out;
  out.window_index = current_window_;
  out.window_start =
      util::SimTime::nanos(static_cast<std::int64_t>(current_window_) * config_.window.ns());
  {
    obs::ScopedTimer timer{*m_extract_ns_};
    out.stats = compute_window_stats(buffer_, config_.window);
    out.rows.reserve(buffer_.size());
    out.labels.reserve(buffer_.size());
    for (const auto& r : buffer_) {
      out.rows.push_back(make_feature_row(r, out.stats));
      out.labels.push_back(r.is_malicious() ? 1 : 0);
    }
  }
  buffer_.clear();
  ++windows_emitted_;
  m_windows_->inc();
  if (on_window_) on_window_(out);
}

FeatureMatrix extract_features(const capture::Dataset& dataset, AggregatorConfig config) {
  FeatureMatrix matrix;
  matrix.rows.reserve(dataset.size());
  matrix.labels.reserve(dataset.size());
  FeatureAggregator agg{config};
  agg.set_on_window([&matrix](const WindowOutput& out) {
    matrix.rows.insert(matrix.rows.end(), out.rows.begin(), out.rows.end());
    matrix.labels.insert(matrix.labels.end(), out.labels.begin(), out.labels.end());
  });
  for (const auto& r : dataset.records()) agg.add(r);
  agg.flush();
  return matrix;
}

}  // namespace ddoshield::features
