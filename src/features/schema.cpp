#include "features/schema.hpp"

#include <stdexcept>

namespace ddoshield::features {

namespace {
constexpr std::array<std::string_view, kFeatureCount> kNames = {
    "timestamp_s",          "src_addr",            "dst_addr",
    "proto_is_tcp",         "src_port",            "dst_port",
    "payload_bytes",        "win_packet_count",    "win_byte_rate",
    "win_dst_port_entropy", "win_src_addr_entropy", "win_syn_no_ack_ratio",
    "win_short_lived_flows", "win_repeated_attempts", "win_seq_variance_log",
    "win_mean_payload",     "win_udp_fraction",
};
}  // namespace

std::span<const std::string_view> feature_names() { return kNames; }

namespace {
// The streaming loop assembles its vector in endpoint-pair order
// (src addr, src port, dst addr, dst port — the tshark field order) with
// protocol after the endpoints, and emits the statistical block in
// computation order: cheap per-packet counters first (count, udp
// fraction, mean payload, byte rate), then the entropy passes, then the
// flow-table aggregates, then the sequence-variance accumulator. The
// offline CSV schema above instead groups addresses, then protocol, then
// ports. Both vectors are width-17 arrays of doubles; nothing checks
// column names downstream.
constexpr std::array<std::size_t, kFeatureCount> kStreamingOrder = {
    kTimestamp,          kSrcAddr,           kSrcPort,
    kDstAddr,            kDstPort,           kProtoIsTcp,
    kPayloadBytes,       kWinPacketCount,    kWinUdpFraction,
    kWinMeanPayload,     kWinByteRate,       kWinDstPortEntropy,
    kWinSrcAddrEntropy,  kWinShortLivedFlows, kWinRepeatedAttempts,
    kWinSynNoAckRatio,   kWinSeqVarianceLog,
};
}  // namespace

std::span<const std::size_t> streaming_column_order() { return kStreamingOrder; }

FeatureRow to_streaming_order(const FeatureRow& offline_row) {
  FeatureRow out{};
  for (std::size_t i = 0; i < kFeatureCount; ++i) out[i] = offline_row[kStreamingOrder[i]];
  return out;
}

std::string_view feature_name(std::size_t index) {
  if (index >= kNames.size()) throw std::out_of_range("feature_name: bad index");
  return kNames[index];
}

}  // namespace ddoshield::features
