// Windowed feature aggregation (Fig. 2's "preprocessing of data" stage).
//
// Packets stream in timestamp order (the tap guarantees this in real time;
// datasets are stored in capture order). The aggregator buffers one window
// (default 1 s, user-configurable per the paper), computes the statistical
// features when the window closes, stamps them onto every packet's basic
// features, and emits the labelled rows.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "capture/dataset.hpp"
#include "capture/packet_record.hpp"
#include "features/schema.hpp"
#include "features/window_stats.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::obs {
class Counter;
class Histogram;
}

namespace ddoshield::features {

/// One closed window's worth of feature rows.
struct WindowOutput {
  std::uint64_t window_index = 0;
  util::SimTime window_start;
  WindowStats stats;
  std::vector<FeatureRow> rows;
  std::vector<int> labels;  // 0 benign / 1 malicious, row-aligned
};

struct AggregatorConfig {
  util::SimTime window = util::SimTime::seconds(1);
};

class FeatureAggregator {
 public:
  using WindowFn = std::function<void(const WindowOutput&)>;

  explicit FeatureAggregator(AggregatorConfig config = {});

  void set_on_window(WindowFn fn) { on_window_ = std::move(fn); }

  /// Feeds one packet; closes (and emits) any windows that ended before
  /// this packet's timestamp. Packets must arrive in timestamp order.
  void add(const capture::PacketRecord& record);

  /// Closes the current partial window (end of run).
  void flush();

  std::uint64_t windows_emitted() const { return windows_emitted_; }
  util::SimTime window_duration() const { return config_.window; }

 private:
  void close_window();

  AggregatorConfig config_;
  WindowFn on_window_;
  std::vector<capture::PacketRecord> buffer_;
  std::uint64_t current_window_ = 0;
  bool have_window_ = false;
  std::uint64_t windows_emitted_ = 0;

  // Registry instruments ("features.*"), resolved once at construction.
  obs::Counter* m_packets_;
  obs::Counter* m_windows_;
  obs::Histogram* m_extract_ns_;
};

/// Labelled design matrix built from a whole dataset in one pass — the
/// offline path used for model training.
struct FeatureMatrix {
  std::vector<FeatureRow> rows;
  std::vector<int> labels;

  std::size_t size() const { return rows.size(); }
};

/// Runs the aggregator over a dataset (including the final partial window).
FeatureMatrix extract_features(const capture::Dataset& dataset,
                               AggregatorConfig config = {});

}  // namespace ddoshield::features
