// Feature schema shared by the extractor, the ML models, and the IDS.
//
// Follows the paper (§IV-A) literally. The *basic* features are the packet
// attributes the paper lists: timestamp, source/destination IP address,
// protocol type, and source/destination port (plus the payload size, a
// standard capture attribute). Note that per-packet TCP flags are NOT
// basic features — in the paper, flag behaviour enters only through the
// windowed statistics (SYN-without-ACK analysis). The *statistical*
// features are computed per time window and are identical for every packet
// of a window — deliberately so; that design choice (together with the
// absolute timestamp being a trainable feature) is what produces the
// real-time accuracy behaviour of Table I and the boundary-window dips.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

namespace ddoshield::features {

// Basic (per-packet) features.
inline constexpr std::size_t kTimestamp = 0;     // seconds since run start
inline constexpr std::size_t kSrcAddr = 1;       // normalized /2^32
inline constexpr std::size_t kDstAddr = 2;       // normalized /2^32
inline constexpr std::size_t kProtoIsTcp = 3;
inline constexpr std::size_t kSrcPort = 4;       // normalized /65535
inline constexpr std::size_t kDstPort = 5;       // normalized /65535
inline constexpr std::size_t kPayloadBytes = 6;
inline constexpr std::size_t kBasicFeatureCount = 7;

// Statistical (per-window) features, equal across a window's packets.
inline constexpr std::size_t kWinPacketCount = 7;
inline constexpr std::size_t kWinByteRate = 8;
inline constexpr std::size_t kWinDstPortEntropy = 9;
inline constexpr std::size_t kWinSrcAddrEntropy = 10;
inline constexpr std::size_t kWinSynNoAckRatio = 11;
inline constexpr std::size_t kWinShortLivedFlows = 12;
inline constexpr std::size_t kWinRepeatedAttempts = 13;
inline constexpr std::size_t kWinSeqVarianceLog = 14;
inline constexpr std::size_t kWinMeanPayload = 15;
inline constexpr std::size_t kWinUdpFraction = 16;
inline constexpr std::size_t kFeatureCount = 17;

using FeatureRow = std::array<double, kFeatureCount>;

/// Human-readable feature names, index-aligned with the constants above.
std::span<const std::string_view> feature_names();

/// Name of one feature; throws std::out_of_range for bad indices.
std::string_view feature_name(std::size_t index);

/// The column order the *streaming* feature implementation emits, as a
/// permutation: streaming_column_order()[i] is the offline-schema index of
/// the value that the real-time loop writes at position i. The basic block
/// is identical; the statistical block is emitted in computation order
/// (cheap counters first, then entropies, then flow-table aggregates),
/// which differs from the offline CSV export's schema order above.
///
/// This mirrors the paper artifact's split pipeline: the offline training
/// scripts read the exported CSV, while the real-time component assembles
/// its vectors inline. Models trained and served through the same code are
/// unaffected; a model trained on the CSV order but served the streaming
/// order silently consumes permuted statistics — see EXPERIMENTS.md (E3).
std::span<const std::size_t> streaming_column_order();

/// Re-orders an offline-schema row into the streaming order.
FeatureRow to_streaming_order(const FeatureRow& offline_row);

}  // namespace ddoshield::features
