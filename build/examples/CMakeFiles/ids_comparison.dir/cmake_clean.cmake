file(REMOVE_RECURSE
  "CMakeFiles/ids_comparison.dir/ids_comparison.cpp.o"
  "CMakeFiles/ids_comparison.dir/ids_comparison.cpp.o.d"
  "ids_comparison"
  "ids_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ids_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
