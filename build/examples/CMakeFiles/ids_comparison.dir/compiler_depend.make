# Empty compiler generated dependencies file for ids_comparison.
# This may be replaced when dependencies are built.
