file(REMOVE_RECURSE
  "CMakeFiles/mirai_campaign.dir/mirai_campaign.cpp.o"
  "CMakeFiles/mirai_campaign.dir/mirai_campaign.cpp.o.d"
  "mirai_campaign"
  "mirai_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mirai_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
