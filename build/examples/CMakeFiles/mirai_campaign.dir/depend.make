# Empty dependencies file for mirai_campaign.
# This may be replaced when dependencies are built.
