file(REMOVE_RECURSE
  "CMakeFiles/federated_nids.dir/federated_nids.cpp.o"
  "CMakeFiles/federated_nids.dir/federated_nids.cpp.o.d"
  "federated_nids"
  "federated_nids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_nids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
