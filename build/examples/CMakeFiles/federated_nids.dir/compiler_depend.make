# Empty compiler generated dependencies file for federated_nids.
# This may be replaced when dependencies are built.
