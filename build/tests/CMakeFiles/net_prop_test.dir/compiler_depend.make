# Empty compiler generated dependencies file for net_prop_test.
# This may be replaced when dependencies are built.
