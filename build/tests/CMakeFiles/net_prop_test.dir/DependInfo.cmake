
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net_prop_test.cpp" "tests/CMakeFiles/net_prop_test.dir/net_prop_test.cpp.o" "gcc" "tests/CMakeFiles/net_prop_test.dir/net_prop_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ddos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/ids/CMakeFiles/ddos_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/ddos_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/ddos_features.dir/DependInfo.cmake"
  "/root/repo/build/src/capture/CMakeFiles/ddos_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/botnet/CMakeFiles/ddos_botnet.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/ddos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/ddos_container.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
