file(REMOVE_RECURSE
  "CMakeFiles/net_prop_test.dir/net_prop_test.cpp.o"
  "CMakeFiles/net_prop_test.dir/net_prop_test.cpp.o.d"
  "net_prop_test"
  "net_prop_test.pdb"
  "net_prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
