# Empty dependencies file for botnet_test.
# This may be replaced when dependencies are built.
