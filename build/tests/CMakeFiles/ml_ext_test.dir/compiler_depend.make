# Empty compiler generated dependencies file for ml_ext_test.
# This may be replaced when dependencies are built.
