file(REMOVE_RECURSE
  "CMakeFiles/ml_ext_test.dir/ml_ext_test.cpp.o"
  "CMakeFiles/ml_ext_test.dir/ml_ext_test.cpp.o.d"
  "ml_ext_test"
  "ml_ext_test.pdb"
  "ml_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
