file(REMOVE_RECURSE
  "CMakeFiles/net_sim_test.dir/net_sim_test.cpp.o"
  "CMakeFiles/net_sim_test.dir/net_sim_test.cpp.o.d"
  "net_sim_test"
  "net_sim_test.pdb"
  "net_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
