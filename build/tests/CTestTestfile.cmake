# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/obs_test[1]_include.cmake")
include("/root/repo/build/tests/net_sim_test[1]_include.cmake")
include("/root/repo/build/tests/net_tcp_test[1]_include.cmake")
include("/root/repo/build/tests/container_test[1]_include.cmake")
include("/root/repo/build/tests/apps_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/botnet_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/features_test[1]_include.cmake")
include("/root/repo/build/tests/ml_test[1]_include.cmake")
include("/root/repo/build/tests/ml_ext_test[1]_include.cmake")
include("/root/repo/build/tests/ids_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/net_prop_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
