file(REMOVE_RECURSE
  "libddos_ids.a"
)
