# Empty dependencies file for ddos_ids.
# This may be replaced when dependencies are built.
