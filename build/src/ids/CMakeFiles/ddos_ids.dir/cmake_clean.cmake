file(REMOVE_RECURSE
  "CMakeFiles/ddos_ids.dir/realtime_ids.cpp.o"
  "CMakeFiles/ddos_ids.dir/realtime_ids.cpp.o.d"
  "libddos_ids.a"
  "libddos_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
