# Empty dependencies file for ddos_net.
# This may be replaced when dependencies are built.
