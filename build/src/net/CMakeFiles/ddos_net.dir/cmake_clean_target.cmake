file(REMOVE_RECURSE
  "libddos_net.a"
)
