
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/ddos_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/address.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/ddos_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/link.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/ddos_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/ddos_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/ddos_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/packet.cpp.o.d"
  "/root/repo/src/net/simulator.cpp" "src/net/CMakeFiles/ddos_net.dir/simulator.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/simulator.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/net/CMakeFiles/ddos_net.dir/tcp.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/tcp.cpp.o.d"
  "/root/repo/src/net/udp.cpp" "src/net/CMakeFiles/ddos_net.dir/udp.cpp.o" "gcc" "src/net/CMakeFiles/ddos_net.dir/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
