file(REMOVE_RECURSE
  "CMakeFiles/ddos_net.dir/address.cpp.o"
  "CMakeFiles/ddos_net.dir/address.cpp.o.d"
  "CMakeFiles/ddos_net.dir/link.cpp.o"
  "CMakeFiles/ddos_net.dir/link.cpp.o.d"
  "CMakeFiles/ddos_net.dir/network.cpp.o"
  "CMakeFiles/ddos_net.dir/network.cpp.o.d"
  "CMakeFiles/ddos_net.dir/node.cpp.o"
  "CMakeFiles/ddos_net.dir/node.cpp.o.d"
  "CMakeFiles/ddos_net.dir/packet.cpp.o"
  "CMakeFiles/ddos_net.dir/packet.cpp.o.d"
  "CMakeFiles/ddos_net.dir/simulator.cpp.o"
  "CMakeFiles/ddos_net.dir/simulator.cpp.o.d"
  "CMakeFiles/ddos_net.dir/tcp.cpp.o"
  "CMakeFiles/ddos_net.dir/tcp.cpp.o.d"
  "CMakeFiles/ddos_net.dir/udp.cpp.o"
  "CMakeFiles/ddos_net.dir/udp.cpp.o.d"
  "libddos_net.a"
  "libddos_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
