file(REMOVE_RECURSE
  "CMakeFiles/ddos_core.dir/pipeline.cpp.o"
  "CMakeFiles/ddos_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/ddos_core.dir/scenario.cpp.o"
  "CMakeFiles/ddos_core.dir/scenario.cpp.o.d"
  "CMakeFiles/ddos_core.dir/testbed.cpp.o"
  "CMakeFiles/ddos_core.dir/testbed.cpp.o.d"
  "libddos_core.a"
  "libddos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
