file(REMOVE_RECURSE
  "libddos_core.a"
)
