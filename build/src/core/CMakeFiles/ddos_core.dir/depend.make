# Empty dependencies file for ddos_core.
# This may be replaced when dependencies are built.
