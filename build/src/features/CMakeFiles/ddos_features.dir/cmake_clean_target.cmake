file(REMOVE_RECURSE
  "libddos_features.a"
)
