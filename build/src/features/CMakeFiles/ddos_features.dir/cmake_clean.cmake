file(REMOVE_RECURSE
  "CMakeFiles/ddos_features.dir/extractor.cpp.o"
  "CMakeFiles/ddos_features.dir/extractor.cpp.o.d"
  "CMakeFiles/ddos_features.dir/schema.cpp.o"
  "CMakeFiles/ddos_features.dir/schema.cpp.o.d"
  "CMakeFiles/ddos_features.dir/window_stats.cpp.o"
  "CMakeFiles/ddos_features.dir/window_stats.cpp.o.d"
  "libddos_features.a"
  "libddos_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
