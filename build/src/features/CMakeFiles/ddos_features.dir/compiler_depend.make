# Empty compiler generated dependencies file for ddos_features.
# This may be replaced when dependencies are built.
