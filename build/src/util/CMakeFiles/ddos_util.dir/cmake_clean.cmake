file(REMOVE_RECURSE
  "CMakeFiles/ddos_util.dir/logging.cpp.o"
  "CMakeFiles/ddos_util.dir/logging.cpp.o.d"
  "CMakeFiles/ddos_util.dir/rng.cpp.o"
  "CMakeFiles/ddos_util.dir/rng.cpp.o.d"
  "CMakeFiles/ddos_util.dir/sim_time.cpp.o"
  "CMakeFiles/ddos_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/ddos_util.dir/stats.cpp.o"
  "CMakeFiles/ddos_util.dir/stats.cpp.o.d"
  "libddos_util.a"
  "libddos_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
