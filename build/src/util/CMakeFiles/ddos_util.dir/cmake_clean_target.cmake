file(REMOVE_RECURSE
  "libddos_util.a"
)
