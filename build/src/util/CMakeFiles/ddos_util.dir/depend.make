# Empty dependencies file for ddos_util.
# This may be replaced when dependencies are built.
