file(REMOVE_RECURSE
  "CMakeFiles/ddos_container.dir/container.cpp.o"
  "CMakeFiles/ddos_container.dir/container.cpp.o.d"
  "CMakeFiles/ddos_container.dir/resource_account.cpp.o"
  "CMakeFiles/ddos_container.dir/resource_account.cpp.o.d"
  "CMakeFiles/ddos_container.dir/runtime.cpp.o"
  "CMakeFiles/ddos_container.dir/runtime.cpp.o.d"
  "libddos_container.a"
  "libddos_container.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_container.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
