
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/container.cpp" "src/container/CMakeFiles/ddos_container.dir/container.cpp.o" "gcc" "src/container/CMakeFiles/ddos_container.dir/container.cpp.o.d"
  "/root/repo/src/container/resource_account.cpp" "src/container/CMakeFiles/ddos_container.dir/resource_account.cpp.o" "gcc" "src/container/CMakeFiles/ddos_container.dir/resource_account.cpp.o.d"
  "/root/repo/src/container/runtime.cpp" "src/container/CMakeFiles/ddos_container.dir/runtime.cpp.o" "gcc" "src/container/CMakeFiles/ddos_container.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ddos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
