# Empty compiler generated dependencies file for ddos_container.
# This may be replaced when dependencies are built.
