file(REMOVE_RECURSE
  "libddos_container.a"
)
