# Empty dependencies file for ddos_capture.
# This may be replaced when dependencies are built.
