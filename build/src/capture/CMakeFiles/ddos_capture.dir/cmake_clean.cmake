file(REMOVE_RECURSE
  "CMakeFiles/ddos_capture.dir/dataset.cpp.o"
  "CMakeFiles/ddos_capture.dir/dataset.cpp.o.d"
  "CMakeFiles/ddos_capture.dir/flow.cpp.o"
  "CMakeFiles/ddos_capture.dir/flow.cpp.o.d"
  "CMakeFiles/ddos_capture.dir/packet_record.cpp.o"
  "CMakeFiles/ddos_capture.dir/packet_record.cpp.o.d"
  "CMakeFiles/ddos_capture.dir/tap.cpp.o"
  "CMakeFiles/ddos_capture.dir/tap.cpp.o.d"
  "libddos_capture.a"
  "libddos_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
