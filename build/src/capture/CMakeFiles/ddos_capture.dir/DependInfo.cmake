
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/capture/dataset.cpp" "src/capture/CMakeFiles/ddos_capture.dir/dataset.cpp.o" "gcc" "src/capture/CMakeFiles/ddos_capture.dir/dataset.cpp.o.d"
  "/root/repo/src/capture/flow.cpp" "src/capture/CMakeFiles/ddos_capture.dir/flow.cpp.o" "gcc" "src/capture/CMakeFiles/ddos_capture.dir/flow.cpp.o.d"
  "/root/repo/src/capture/packet_record.cpp" "src/capture/CMakeFiles/ddos_capture.dir/packet_record.cpp.o" "gcc" "src/capture/CMakeFiles/ddos_capture.dir/packet_record.cpp.o.d"
  "/root/repo/src/capture/tap.cpp" "src/capture/CMakeFiles/ddos_capture.dir/tap.cpp.o" "gcc" "src/capture/CMakeFiles/ddos_capture.dir/tap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/ddos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
