file(REMOVE_RECURSE
  "libddos_capture.a"
)
