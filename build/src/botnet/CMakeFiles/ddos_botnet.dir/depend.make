# Empty dependencies file for ddos_botnet.
# This may be replaced when dependencies are built.
