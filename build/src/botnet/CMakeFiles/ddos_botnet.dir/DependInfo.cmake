
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/botnet/bot.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/bot.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/bot.cpp.o.d"
  "/root/repo/src/botnet/c2.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/c2.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/c2.cpp.o.d"
  "/root/repo/src/botnet/credentials.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/credentials.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/credentials.cpp.o.d"
  "/root/repo/src/botnet/floods.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/floods.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/floods.cpp.o.d"
  "/root/repo/src/botnet/scanner.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/scanner.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/scanner.cpp.o.d"
  "/root/repo/src/botnet/telnet_service.cpp" "src/botnet/CMakeFiles/ddos_botnet.dir/telnet_service.cpp.o" "gcc" "src/botnet/CMakeFiles/ddos_botnet.dir/telnet_service.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ddos_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/container/CMakeFiles/ddos_container.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
