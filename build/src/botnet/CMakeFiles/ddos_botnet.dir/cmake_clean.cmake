file(REMOVE_RECURSE
  "CMakeFiles/ddos_botnet.dir/bot.cpp.o"
  "CMakeFiles/ddos_botnet.dir/bot.cpp.o.d"
  "CMakeFiles/ddos_botnet.dir/c2.cpp.o"
  "CMakeFiles/ddos_botnet.dir/c2.cpp.o.d"
  "CMakeFiles/ddos_botnet.dir/credentials.cpp.o"
  "CMakeFiles/ddos_botnet.dir/credentials.cpp.o.d"
  "CMakeFiles/ddos_botnet.dir/floods.cpp.o"
  "CMakeFiles/ddos_botnet.dir/floods.cpp.o.d"
  "CMakeFiles/ddos_botnet.dir/scanner.cpp.o"
  "CMakeFiles/ddos_botnet.dir/scanner.cpp.o.d"
  "CMakeFiles/ddos_botnet.dir/telnet_service.cpp.o"
  "CMakeFiles/ddos_botnet.dir/telnet_service.cpp.o.d"
  "libddos_botnet.a"
  "libddos_botnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_botnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
