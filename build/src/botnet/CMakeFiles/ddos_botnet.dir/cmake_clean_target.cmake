file(REMOVE_RECURSE
  "libddos_botnet.a"
)
