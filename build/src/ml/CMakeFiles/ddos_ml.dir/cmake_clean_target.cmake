file(REMOVE_RECURSE
  "libddos_ml.a"
)
