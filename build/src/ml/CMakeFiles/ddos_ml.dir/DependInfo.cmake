
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/ddos_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cnn.cpp" "src/ml/CMakeFiles/ddos_ml.dir/cnn.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/cnn.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/ddos_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/feature_selection.cpp" "src/ml/CMakeFiles/ddos_ml.dir/feature_selection.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/feature_selection.cpp.o.d"
  "/root/repo/src/ml/federated.cpp" "src/ml/CMakeFiles/ddos_ml.dir/federated.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/federated.cpp.o.d"
  "/root/repo/src/ml/isolation_forest.cpp" "src/ml/CMakeFiles/ddos_ml.dir/isolation_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/isolation_forest.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/ddos_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/ddos_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_store.cpp" "src/ml/CMakeFiles/ddos_ml.dir/model_store.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/model_store.cpp.o.d"
  "/root/repo/src/ml/preprocess.cpp" "src/ml/CMakeFiles/ddos_ml.dir/preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/preprocess.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/ddos_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/ddos_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/ddos_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
