file(REMOVE_RECURSE
  "CMakeFiles/ddos_ml.dir/classifier.cpp.o"
  "CMakeFiles/ddos_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/cnn.cpp.o"
  "CMakeFiles/ddos_ml.dir/cnn.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/ddos_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/feature_selection.cpp.o"
  "CMakeFiles/ddos_ml.dir/feature_selection.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/federated.cpp.o"
  "CMakeFiles/ddos_ml.dir/federated.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/isolation_forest.cpp.o"
  "CMakeFiles/ddos_ml.dir/isolation_forest.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/kmeans.cpp.o"
  "CMakeFiles/ddos_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/metrics.cpp.o"
  "CMakeFiles/ddos_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/model_store.cpp.o"
  "CMakeFiles/ddos_ml.dir/model_store.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/preprocess.cpp.o"
  "CMakeFiles/ddos_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/random_forest.cpp.o"
  "CMakeFiles/ddos_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/ddos_ml.dir/svm.cpp.o"
  "CMakeFiles/ddos_ml.dir/svm.cpp.o.d"
  "libddos_ml.a"
  "libddos_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
