# Empty dependencies file for ddos_ml.
# This may be replaced when dependencies are built.
