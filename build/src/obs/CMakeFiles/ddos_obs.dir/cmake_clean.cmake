file(REMOVE_RECURSE
  "CMakeFiles/ddos_obs.dir/metrics.cpp.o"
  "CMakeFiles/ddos_obs.dir/metrics.cpp.o.d"
  "CMakeFiles/ddos_obs.dir/sampler.cpp.o"
  "CMakeFiles/ddos_obs.dir/sampler.cpp.o.d"
  "CMakeFiles/ddos_obs.dir/snapshot.cpp.o"
  "CMakeFiles/ddos_obs.dir/snapshot.cpp.o.d"
  "CMakeFiles/ddos_obs.dir/trace.cpp.o"
  "CMakeFiles/ddos_obs.dir/trace.cpp.o.d"
  "libddos_obs.a"
  "libddos_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
