# Empty dependencies file for ddos_obs.
# This may be replaced when dependencies are built.
