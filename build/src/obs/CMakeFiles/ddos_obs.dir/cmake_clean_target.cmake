file(REMOVE_RECURSE
  "libddos_obs.a"
)
