# Empty compiler generated dependencies file for ddos_apps.
# This may be replaced when dependencies are built.
