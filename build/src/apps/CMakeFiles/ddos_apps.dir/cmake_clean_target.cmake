file(REMOVE_RECURSE
  "libddos_apps.a"
)
