
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cpp" "src/apps/CMakeFiles/ddos_apps.dir/app.cpp.o" "gcc" "src/apps/CMakeFiles/ddos_apps.dir/app.cpp.o.d"
  "/root/repo/src/apps/ftp.cpp" "src/apps/CMakeFiles/ddos_apps.dir/ftp.cpp.o" "gcc" "src/apps/CMakeFiles/ddos_apps.dir/ftp.cpp.o.d"
  "/root/repo/src/apps/http.cpp" "src/apps/CMakeFiles/ddos_apps.dir/http.cpp.o" "gcc" "src/apps/CMakeFiles/ddos_apps.dir/http.cpp.o.d"
  "/root/repo/src/apps/telemetry.cpp" "src/apps/CMakeFiles/ddos_apps.dir/telemetry.cpp.o" "gcc" "src/apps/CMakeFiles/ddos_apps.dir/telemetry.cpp.o.d"
  "/root/repo/src/apps/video.cpp" "src/apps/CMakeFiles/ddos_apps.dir/video.cpp.o" "gcc" "src/apps/CMakeFiles/ddos_apps.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/container/CMakeFiles/ddos_container.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ddos_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ddos_util.dir/DependInfo.cmake"
  "/root/repo/build/src/obs/CMakeFiles/ddos_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
