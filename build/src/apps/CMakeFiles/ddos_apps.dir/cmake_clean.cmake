file(REMOVE_RECURSE
  "CMakeFiles/ddos_apps.dir/app.cpp.o"
  "CMakeFiles/ddos_apps.dir/app.cpp.o.d"
  "CMakeFiles/ddos_apps.dir/ftp.cpp.o"
  "CMakeFiles/ddos_apps.dir/ftp.cpp.o.d"
  "CMakeFiles/ddos_apps.dir/http.cpp.o"
  "CMakeFiles/ddos_apps.dir/http.cpp.o.d"
  "CMakeFiles/ddos_apps.dir/telemetry.cpp.o"
  "CMakeFiles/ddos_apps.dir/telemetry.cpp.o.d"
  "CMakeFiles/ddos_apps.dir/video.cpp.o"
  "CMakeFiles/ddos_apps.dir/video.cpp.o.d"
  "libddos_apps.a"
  "libddos_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddos_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
