# Empty dependencies file for bench_e8_skew_ablation.
# This may be replaced when dependencies are built.
