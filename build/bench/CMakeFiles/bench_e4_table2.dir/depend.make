# Empty dependencies file for bench_e4_table2.
# This may be replaced when dependencies are built.
