# Empty dependencies file for bench_e3_table1.
# This may be replaced when dependencies are built.
