file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_timeline.dir/bench_e5_timeline.cpp.o"
  "CMakeFiles/bench_e5_timeline.dir/bench_e5_timeline.cpp.o.d"
  "bench_e5_timeline"
  "bench_e5_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
