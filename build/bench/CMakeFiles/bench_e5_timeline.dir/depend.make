# Empty dependencies file for bench_e5_timeline.
# This may be replaced when dependencies are built.
