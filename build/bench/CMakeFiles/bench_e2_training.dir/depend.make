# Empty dependencies file for bench_e2_training.
# This may be replaced when dependencies are built.
