file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_training.dir/bench_e2_training.cpp.o"
  "CMakeFiles/bench_e2_training.dir/bench_e2_training.cpp.o.d"
  "bench_e2_training"
  "bench_e2_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
