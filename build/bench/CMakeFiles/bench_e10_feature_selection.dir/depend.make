# Empty dependencies file for bench_e10_feature_selection.
# This may be replaced when dependencies are built.
