file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_dataset.dir/bench_e1_dataset.cpp.o"
  "CMakeFiles/bench_e1_dataset.dir/bench_e1_dataset.cpp.o.d"
  "bench_e1_dataset"
  "bench_e1_dataset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_dataset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
