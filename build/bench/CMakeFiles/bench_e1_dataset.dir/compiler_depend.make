# Empty compiler generated dependencies file for bench_e1_dataset.
# This may be replaced when dependencies are built.
