file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_ddosim.dir/bench_e6_ddosim.cpp.o"
  "CMakeFiles/bench_e6_ddosim.dir/bench_e6_ddosim.cpp.o.d"
  "bench_e6_ddosim"
  "bench_e6_ddosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_ddosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
