# Empty dependencies file for bench_e7_window_sweep.
# This may be replaced when dependencies are built.
