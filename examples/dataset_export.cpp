// Dataset export: run the testbed as a labelled-traffic generator and
// write the capture to CSV — the "high-quality IoT IDS dataset" use case
// the paper motivates (training data for third-party IDS research).
//
// Usage:  ./build/examples/dataset_export [output.csv] [seconds]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "capture/flow.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  const std::string out_path = argc > 1 ? argv[1] : "/tmp/ddoshield_capture.csv";
  const double seconds = argc > 2 ? std::atof(argv[2]) : 60.0;

  core::Scenario s = core::training_scenario(/*seed=*/11);
  s.duration = util::SimTime::from_seconds(seconds);

  std::printf("running testbed for %.0f simulated seconds...\n", seconds);
  core::Testbed tb{s};
  tb.deploy();
  tb.record_dataset();
  tb.run();

  const auto& ds = tb.dataset();
  std::printf("%s", ds.composition_summary().c_str());

  // Flow-level view of the capture (Wireshark "conversations" style).
  capture::FlowTable flows;
  for (const auto& r : ds.records()) flows.add(r);
  std::size_t malicious_flows = 0;
  flows.for_each(
      [&](const capture::FlowKey&, const capture::FlowRecord& flow) { malicious_flows += flow.malicious; });
  std::printf("flows: %zu total, %zu tainted by attack traffic\n", flows.flow_count(),
              malicious_flows);
  std::printf("short-lived flows (<100 ms, <=2 pkts): %zu\n",
              flows.short_lived_count(util::SimTime::millis(100), 2));

  ds.save_csv(out_path);
  std::printf("wrote %zu labelled packets to %s\n", ds.size(), out_path.c_str());
  std::printf("reload with capture::Dataset::load_csv() or any CSV tool.\n");
  return 0;
}
