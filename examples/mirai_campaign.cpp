// Mirai campaign walkthrough: the full attack lifecycle, narrated.
//
//   1. Devices boot with factory-default telnet credentials and serve
//      benign traffic (HTTP / video / FTP clients against the TServer).
//   2. The attacker scans, brute-forces the dictionary, and plants bots.
//   3. The C2 drives SYN / ACK / UDP flood bursts while devices churn.
//   4. Per-second samples show the TServer's benign goodput collapsing
//      under attack and recovering afterwards (the DDoSim experiment
//      family the testbed inherits).
//
// Build & run:  ./build/examples/mirai_campaign
#include <cstdio>

#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  core::Scenario s;
  s.seed = 7;
  s.device_count = 8;
  s.duration = util::SimTime::seconds(60);
  s.infection_start = util::SimTime::seconds(2);
  s.churn.events_per_device_per_second = 0.01;  // occasional device dropouts
  s.churn.down_time = util::SimTime::seconds(4);

  // One burst of each vector, heavy enough to visibly hurt the victim.
  const botnet::AttackType vectors[] = {botnet::AttackType::kSynFlood,
                                        botnet::AttackType::kAckFlood,
                                        botnet::AttackType::kUdpFlood};
  for (int i = 0; i < 3; ++i) {
    core::AttackBurst burst;
    burst.start = util::SimTime::seconds(18 + i * 14);
    burst.type = vectors[i];
    burst.duration = util::SimTime::seconds(8);
    burst.packets_per_second_per_bot = 1500.0;
    burst.spoof_sources = burst.type == botnet::AttackType::kSynFlood;
    s.attacks.push_back(burst);
  }

  core::Testbed tb{s};
  tb.deploy();
  tb.sample_throughput_every(util::SimTime::seconds(1));

  std::printf("t(s)  bots  benign-goodput(kbit/s)  uplink(Mbit/s)  phase\n");
  for (int t = 1; t <= 60; ++t) {
    tb.run_until(util::SimTime::seconds(t));
    const auto& series = tb.throughput_series();
    if (series.empty()) continue;
    const auto& sample = series.back();

    const char* phase = "benign";
    if (t < 3) {
      phase = "boot";
    } else if (tb.infected_devices() < s.device_count && t < 18) {
      phase = "infection";
    }
    for (const auto& a : s.attacks) {
      if (sample.at > a.start && sample.at <= a.start + a.duration) {
        phase = botnet::to_string(a.type) == "syn"   ? "SYN FLOOD"
                : botnet::to_string(a.type) == "ack" ? "ACK FLOOD"
                                                     : "UDP FLOOD";
      }
    }
    std::printf("%3d   %4zu  %22.1f  %14.2f  %s\n", t, sample.connected_bots,
                sample.benign_goodput_bps / 1e3, sample.uplink_rx_bps / 1e6, phase);
  }

  std::printf("\ncampaign summary:\n");
  std::printf("  infected devices     : %zu / %zu\n", tb.infected_devices(), s.device_count);
  std::printf("  benign completions   : %llu\n",
              static_cast<unsigned long long>(tb.benign_completions()));
  std::printf("  benign failures      : %llu\n",
              static_cast<unsigned long long>(tb.benign_failures()));
  std::printf("  victim TCP state     : %zu live connections, %llu RSTs emitted\n",
              tb.topology().tserver->tcp().active_connections(),
              static_cast<unsigned long long>(tb.topology().tserver->tcp().rst_sent()));
  return 0;
}
