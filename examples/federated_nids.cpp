// Federated NIDS (§VI future work): the paper's stated next objective is
// "to enhance DDoShield-IoT to emulate a FL-based Network Intrusion
// Detection System". This example does exactly that on the testbed:
//
//   1. Generate a labelled capture.
//   2. Shard it across the devices — each device only ever sees the
//      traffic it participated in (its private local view).
//   3. Train the shared CNN with FedAvg: local epochs on-device, only
//      parameter vectors travel to the aggregator.
//   4. Deploy the federated global model in the real-time IDS and compare
//      it against the centrally-trained CNN on the same run.
//
// Build & run:  ./build/examples/federated_nids
#include <cstdio>

#include "core/pipeline.hpp"
#include "ml/federated.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // --- 1. capture -------------------------------------------------------------
  const core::Scenario gen = core::training_scenario(/*seed=*/1);
  std::printf("generating training capture (%.0f s simulated)...\n",
              gen.duration.to_seconds());
  const core::GenerationResult generation = core::run_generation(gen);

  features::AggregatorConfig agg_cfg;
  const features::FeatureMatrix fm = features::extract_features(generation.dataset, agg_cfg);
  ml::DesignMatrix x;
  std::vector<int> y;
  core::to_design_matrix(fm, x, y);

  // --- 2. per-device shards ---------------------------------------------------
  // A device's local view: every captured packet it sent or received.
  // (Packets between the attacker and the server fall to shard 0, the
  // gateway's view.)
  const std::size_t clients = gen.device_count;
  std::vector<ml::DesignMatrix> xs(clients, ml::DesignMatrix{features::kFeatureCount});
  std::vector<std::vector<int>> ys(clients);
  const auto& records = generation.dataset.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    // Device addresses are 10.1.z.(10+k): recover k from either endpoint.
    auto device_of = [&](std::uint32_t addr) -> long {
      const std::uint32_t base = net::Ipv4Address{10, 1, 0, 10}.bits();
      const long k = static_cast<long>(addr) - static_cast<long>(base);
      return k >= 0 && k < static_cast<long>(clients) ? k : -1;
    };
    long dev = device_of(records[i].src_addr);
    if (dev < 0) dev = device_of(records[i].dst_addr);
    if (dev < 0) dev = 0;
    xs[static_cast<std::size_t>(dev)].add_row(fm.rows[i]);
    ys[static_cast<std::size_t>(dev)].push_back(fm.labels[i]);
  }
  std::vector<ml::FederatedShard> shards;
  for (std::size_t c = 0; c < clients; ++c) {
    if (!xs[c].empty()) shards.push_back({&xs[c], &ys[c]});
    std::printf("  device %zu local shard: %zu packets\n", c, xs[c].rows());
  }

  // --- 3. FedAvg ---------------------------------------------------------------
  ml::StandardScaler scaler;
  scaler.fit(x);  // shared calibration artifact (agreed feature scaling)

  ml::FederatedConfig fed_cfg;
  fed_cfg.rounds = 5;
  fed_cfg.local_epochs = 1;
  fed_cfg.cnn.hidden = 256;  // edge-sized network
  std::printf("\nFedAvg: %zu clients, %zu rounds x %zu local epoch(s)...\n",
              shards.size(), fed_cfg.rounds, fed_cfg.local_epochs);
  ml::FederatedCnnTrainer trainer{fed_cfg};
  const ml::Cnn1D federated = trainer.train(shards, scaler);
  for (const auto& round : trainer.round_stats()) {
    std::printf("  round %zu: mean parameter delta %.6f\n", round.round + 1,
                round.mean_parameter_delta);
  }

  // Centralised baseline: same architecture, same total epochs, all data.
  ml::CnnConfig central_cfg = fed_cfg.cnn;
  central_cfg.epochs = fed_cfg.rounds * fed_cfg.local_epochs;
  ml::Cnn1D centralized{central_cfg};
  std::printf("training centralized baseline...\n");
  centralized.fit(x, y);

  // --- 4. deploy both in the real-time IDS ------------------------------------
  const core::Scenario det = core::detection_scenario(/*seed=*/2);
  const core::DetectionResult fed_result = core::run_detection(det, federated);
  const core::DetectionResult cen_result = core::run_detection(det, centralized);

  std::printf("\nreal-time detection (%.0f s, 1 s windows):\n", det.duration.to_seconds());
  std::printf("  federated CNN   : avg %.2f%%  min %.2f%%\n",
              100.0 * fed_result.summary.average_accuracy,
              100.0 * fed_result.summary.min_accuracy);
  std::printf("  centralized CNN : avg %.2f%%  min %.2f%%\n",
              100.0 * cen_result.summary.average_accuracy,
              100.0 * cen_result.summary.min_accuracy);
  std::printf("\nno raw packet ever left its device during federated training —\n"
              "only %zu-parameter vectors travelled per round.\n",
              federated.parameter_count());
  return 0;
}
