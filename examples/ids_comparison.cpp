// IDS comparison workbench: train the three detectors, persist them to
// model files (the paper's PKL step), reload, and evaluate each in the
// real-time IDS container — the workflow a researcher uses to slot their
// own model into the testbed.
//
// Build & run:  ./build/examples/ids_comparison
#include <cstdio>
#include <filesystem>

#include "core/pipeline.hpp"
#include "ml/model_store.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // --- capture + train -------------------------------------------------------
  std::printf("generating training capture...\n");
  const core::GenerationResult generation =
      core::run_generation(core::training_scenario(/*seed=*/1));
  std::printf("%s\n", generation.dataset.composition_summary().c_str());

  std::printf("training models...\n");
  const core::TrainedModels models = core::train_all_models(generation.dataset);

  // --- persist to model files (the PKL role) --------------------------------
  const std::string dir = "/tmp/ddoshield_models";
  std::filesystem::create_directories(dir);
  for (const auto& report : models.reports) {
    const std::string path = dir + "/" + report.model + ".ddsm";
    ml::save_model_file(models.get(report.model), path);
    std::printf("saved %-7s -> %s (%.1f KB, test acc %.4f)\n", report.model.c_str(),
                path.c_str(), static_cast<double>(report.model_file_bytes) / 1024.0,
                report.test.accuracy());
  }

  // --- reload + deploy in the real-time IDS ---------------------------------
  const core::Scenario det = core::detection_scenario(/*seed=*/2);
  std::printf("\nreal-time evaluation (%.0f s, 1 s windows):\n", det.duration.to_seconds());
  std::printf("%-8s %10s %8s %8s %9s %10s\n", "model", "avg acc%", "min%", "cpu%",
              "mem KB", "windows");
  for (const char* name : {"rf", "kmeans", "cnn"}) {
    const auto loaded = ml::load_model_file(dir + "/" + std::string{name} + ".ddsm");
    const core::DetectionResult result = core::run_detection(det, *loaded);
    std::printf("%-8s %10.2f %8.2f %8.1f %9.1f %10llu\n", name,
                100.0 * result.summary.average_accuracy,
                100.0 * result.summary.min_accuracy, result.summary.cpu_percent,
                result.summary.memory_kb,
                static_cast<unsigned long long>(result.summary.windows));
  }

  std::printf("\nto evaluate your own detector: implement ml::Classifier, fit it on\n"
              "core::train_all_models' feature matrix (or your own pipeline), and\n"
              "pass it to core::run_detection — the testbed does the rest.\n");
  return 0;
}
