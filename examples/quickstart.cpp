// Quickstart: the whole DDoShield-IoT workflow in one file.
//
//   1. Run the testbed to generate a labelled traffic dataset
//      (benign HTTP/video/FTP + Mirai SYN/ACK/UDP floods).
//   2. Train the three IDS models (Random Forest, K-Means, CNN).
//   3. Re-run the testbed with each model deployed in the real-time IDS
//      container and report per-model detection accuracy and resource use.
//
// Build & run:  ./build/examples/quickstart
//
// Pass --trace[=path] to record a sim-time trace of the detection runs
// (IDS windows + sampled gauges) and write it as Chrome trace_event JSON
// (default quickstart_trace.json); open it at chrome://tracing.
//
// Pass --flight-dump[=path] to fly with the black box armed: the flight
// recorder samples packet/window lifecycle stages throughout, crash
// handlers write the last events + a final metrics snapshot to the dump
// path (default flight_dump.json) if anything dies, and a clean run
// writes the same dump at exit. With --trace too, flight events are
// merged into the Chrome timeline under the "flight" category.
//
// Pass --survival-report to append a fourth phase: a seeded SYN flood from
// half the fleet against a narrowed uplink, with the SurvivalMeter tallying
// benign connect success, goodput, and tail latency through the attack.
// Add --mitigate to also run the defended pass — RF verdicts driving the
// closed detect→defend loop (rate limits, ACLs, SYN cookies) — and print
// the two summaries side by side. With --trace, every mitigation action
// lands in the Chrome timeline as an instant event under "mitigate".
#include <cstdio>
#include <cstring>
#include <string>

#include "core/pipeline.hpp"
#include "core/testbed.hpp"
#include "ids/realtime_ids.hpp"
#include "mitigate/mitigation.hpp"
#include "obs/flight.hpp"
#include "obs/survival.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

namespace {

// Same shape as the seeded survival integration test: 4 of 8 devices turn
// bot and SYN-flood the TServer at 3.2x the (narrowed) uplink capacity,
// so the undefended baseline visibly loses benign connects and latency.
core::Scenario survival_scenario() {
  core::Scenario s;
  s.seed = 17;
  s.device_count = 8;
  s.vulnerable_fraction = 0.5;
  s.duration = util::SimTime::seconds(12);
  s.infection_start = util::SimTime::millis(500);

  core::AttackBurst burst;
  burst.start = util::SimTime::seconds(3);
  burst.type = botnet::AttackType::kSynFlood;
  burst.duration = util::SimTime::seconds(6);
  burst.packets_per_second_per_bot = 20000.0;
  burst.spoof_sources = false;  // bot-addressed, so edge rules can bite
  s.attacks.push_back(burst);

  s.topology.uplink.rate_bps = 8e6;
  return s;
}

obs::SurvivalReport run_survival_pass(const ml::Classifier& model, bool defended) {
  core::Testbed bed{survival_scenario()};
  bed.deploy();

  ids::IdsConfig ids_cfg;
  ids_cfg.window = util::SimTime::millis(500);
  bed.deploy_ids(model, ids_cfg);
  if (defended) bed.enable_mitigation();

  auto& meter = obs::SurvivalMeter::global();
  meter.reset();
  meter.set_enabled(true);
  bed.run();
  meter.set_enabled(false);

  if (defended && bed.mitigation() != nullptr) {
    const mitigate::MitigationController& ctl = *bed.mitigation();
    std::printf("  %s\n", ctl.summary().to_string().c_str());
    auto& trace = obs::TraceRecorder::global();
    if (trace.enabled()) {
      // Instant events line the defense's moves up against the IDS window
      // spans and sampled gauges already on the timeline.
      for (const mitigate::Action& a : ctl.action_log().actions()) {
        trace.instant(std::string{"mitigate."} + mitigate::to_string(a.type), "mitigate",
                      util::SimTime::nanos(a.t_ns));
      }
    }
  }
  return meter.report();
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress visible when piped
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  std::string trace_path;
  std::string flight_path;
  bool survival_report = false;
  bool mitigate_flag = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace_path = "quickstart_trace.json";
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--flight-dump") == 0) {
      flight_path = "flight_dump.json";
    } else if (std::strncmp(argv[i], "--flight-dump=", 14) == 0) {
      flight_path = argv[i] + 14;
    } else if (std::strcmp(argv[i], "--survival-report") == 0) {
      survival_report = true;
    } else if (std::strcmp(argv[i], "--mitigate") == 0) {
      mitigate_flag = true;  // implies the survival phase
      survival_report = true;
    }
  }
  if (!trace_path.empty()) obs::TraceRecorder::global().set_enabled(true);
  auto& flight = obs::FlightRecorder::global();
  if (!flight_path.empty()) {
    flight.set_enabled(true);
    flight.arm_dump(flight_path);
    flight.install_crash_handlers();
  }

  // --- 1. dataset generation ------------------------------------------------
  core::Scenario gen = core::training_scenario(/*seed=*/1);
  std::printf("Generating dataset (%.0f s simulated)...\n", gen.duration.to_seconds());
  core::GenerationResult generation = core::run_generation(gen);
  std::printf("  infected devices : %zu\n", generation.infected_devices);
  std::printf("  %s", generation.dataset.composition_summary().c_str());

  // --- 2. training ----------------------------------------------------------
  std::printf("\nTraining RF / K-Means / CNN...\n");
  core::TrainedModels models = core::train_all_models(generation.dataset);
  for (const auto& report : models.reports) {
    std::printf("  %-7s test acc=%.4f prec=%.4f rec=%.4f f1=%.4f  (model %.1f KB, fit %.2fs)\n",
                report.model.c_str(), report.test.accuracy(), report.test.precision(),
                report.test.recall(), report.test.f1(),
                static_cast<double>(report.model_file_bytes) / 1024.0, report.fit_seconds);
  }

  // --- 3. real-time detection ------------------------------------------------
  core::Scenario det = core::detection_scenario(/*seed=*/2);
  std::printf("\nReal-time detection (%.0f s simulated, 1 s windows)...\n",
              det.duration.to_seconds());
  for (const char* name : {"rf", "kmeans", "cnn"}) {
    const core::DetectionResult result = core::run_detection(det, models.get(name));
    std::printf("  %-7s avg window acc=%.2f%%  min=%.2f%%  windows=%llu  cpu=%.1f%%  mem=%.1f KB\n",
                name, 100.0 * result.summary.average_accuracy,
                100.0 * result.summary.min_accuracy,
                static_cast<unsigned long long>(result.summary.windows),
                result.summary.cpu_percent, result.summary.memory_kb);
  }
  // --- 4. survival under attack (--survival-report / --mitigate) ------------
  if (survival_report) {
    std::printf("\nSurvival under attack (SYN flood, 12 s simulated, RF verdicts)...\n");
    std::printf("undefended:\n");
    const obs::SurvivalReport off = run_survival_pass(models.get("rf"), false);
    std::printf("%s\n", off.summary().c_str());
    if (mitigate_flag) {
      std::printf("defended (--mitigate):\n");
      const obs::SurvivalReport on = run_survival_pass(models.get("rf"), true);
      std::printf("%s\n", on.summary().c_str());
      std::printf("  connect success %.1f%% -> %.1f%%, p99 latency %.0f ms -> %.0f ms\n",
                  100.0 * off.connect_success_rate(), 100.0 * on.connect_success_rate(),
                  off.latency_p99_ns / 1e6, on.latency_p99_ns / 1e6);
    }
  }

  if (!trace_path.empty()) {
    auto& trace = obs::TraceRecorder::global();
    if (!flight_path.empty()) flight.export_to_trace(trace);
    if (trace.write_chrome_trace_file(trace_path)) {
      std::printf("\nTrace (%zu events) written to %s — open chrome://tracing and load it.\n",
                  trace.size(), trace_path.c_str());
    } else {
      std::printf("\nWARNING: could not write trace file %s\n", trace_path.c_str());
    }
  }
  if (!flight_path.empty()) {
    // Nothing crashed: the armed dump is still pending, so write it now as
    // the run's latency post-mortem (detect-lag percentiles included).
    if (flight.dump_if_armed("clean exit")) {
      std::printf("Flight dump (%zu events) written to %s\n", flight.size(),
                  flight_path.c_str());
    }
  }
  std::printf("\nDone. See bench/ for the full paper-scale reproductions.\n");
  return 0;
}
