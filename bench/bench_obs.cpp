// bench_obs: observability-overhead microbenchmark for the flight
// recorder. The same deterministic detection scenario runs with the flight
// recorder disabled and enabled (1-in-16 uid sampling, the default), and
// the tap packets/s of the two configurations are compared best-of-N.
//
// The gate is relative, not absolute: both configurations run interleaved
// in the same process on the same machine, so "flight on must keep >= 95%
// of flight-off packets/s" holds regardless of how fast the host is. The
// recorder must not change behaviour either — events_total, packets_total,
// and the number of flight events recorded are deterministic counters,
// equal across reps and machines, and pinned by the committed golden.
//
// Outputs BENCH_OBS.json. With --golden FILE the deterministic counters
// are checked against the committed golden (the CI perf-smoke gate);
// --write-golden regenerates it.
//
// Usage:
//   bench_obs [--reps N] [--budget FRACTION] [--no-gate] [--out FILE]
//             [--golden FILE] [--write-golden FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "features/extractor.hpp"
#include "ml/kmeans.hpp"
#include "net/simulator.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

namespace {

constexpr std::uint64_t kScenarioSeed = 42;
constexpr std::size_t kDevices = 10;
constexpr std::int64_t kSimSeconds = 4;

struct RunResult {
  bool flight_on = false;
  double wall_seconds = 0.0;
  double packets_per_sec = 0.0;
  // Deterministic across reps and machines.
  std::uint64_t events_total = 0;
  std::uint64_t packets_total = 0;
  std::uint64_t flight_recorded = 0;
  std::uint64_t flight_overwritten = 0;
};

// Same shape as bench_scale's sweep scenario: dense benign mix plus a
// spoofed flood cycle, so the per-packet flight sites (link enqueue/tx/rx,
// tap) dominate the run.
core::Scenario make_obs_scenario() {
  core::Scenario s = core::detection_scenario(kScenarioSeed);
  s.device_count = kDevices;
  s.duration = util::SimTime::seconds(kSimSeconds);
  s.infection_start = util::SimTime::millis(200);
  s.benign.http_session_rate = 2.0;
  s.benign.video_session_rate = 0.3;
  s.benign.ftp_session_rate = 0.2;
  s.attacks.clear();
  core::schedule_attack_cycle(s, util::SimTime::millis(800), s.duration,
                              /*burst=*/util::SimTime::millis(900),
                              /*gap=*/util::SimTime::millis(300),
                              {botnet::AttackType::kSynFlood, botnet::AttackType::kUdpFlood,
                               botnet::AttackType::kAckFlood},
                              /*pps_per_bot=*/2500.0);
  s.churn.events_per_device_per_second = 0.0;
  return s;
}

RunResult run_once(bool flight_on, const ml::Classifier& model) {
  auto& flight = obs::FlightRecorder::global();
  // configure() clears the ring and its per-run counters; the ring is
  // sized so a full rep never wraps and flight_recorded stays exact.
  flight.configure(obs::FlightConfig{.capacity = 1u << 16, .sample_every = 16});
  flight.set_enabled(flight_on);

  core::Testbed tb{make_obs_scenario()};
  tb.deploy();
  tb.deploy_ids(model);

  const auto t0 = std::chrono::steady_clock::now();
  tb.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.flight_on = flight_on;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_total = tb.network().simulator().events_executed();
  r.packets_total = tb.tap().packets_captured();
  r.flight_recorded = flight.recorded();
  r.flight_overwritten = flight.overwritten();
  r.packets_per_sec = static_cast<double>(r.packets_total) /
                      (r.wall_seconds > 0 ? r.wall_seconds : 1e-9);
  flight.set_enabled(false);
  return r;
}

std::unique_ptr<ml::Classifier> train_model() {
  core::Scenario train = core::training_scenario(/*seed=*/1);
  train.device_count = 6;
  train.duration = util::SimTime::seconds(12);
  std::fprintf(stderr, "[setup] training kmeans on a %zu-device %.0f s capture...\n",
               train.device_count, train.duration.to_seconds());
  const core::GenerationResult gen = core::run_generation(train);
  const features::FeatureMatrix fm = features::extract_features(gen.dataset);
  ml::DesignMatrix x;
  std::vector<int> y;
  core::to_design_matrix(fm, x, y);
  auto model = std::make_unique<ml::KMeansDetector>();
  model->fit(x, y);
  return model;
}

void write_json(const std::string& path, const std::vector<RunResult>& runs,
                const RunResult& best_off, const RunResult& best_on, double budget) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_obs\",\n  \"config\": {\n";
  out << "    \"devices\": " << kDevices << ", \"sim_seconds\": " << kSimSeconds
      << ", \"scenario_seed\": " << kScenarioSeed << ",\n";
  out << "    \"flight\": {\"capacity\": 65536, \"sample_every\": 16},\n";
  out << "    \"overhead_budget\": " << budget << ",\n";
  out << "    \"notes\": \"flight on/off reps interleave in one process; the gate "
         "compares best-of reps, so only the relative overhead matters. "
         "events_total/packets_total/flight_recorded are deterministic and "
         "golden-pinned; *_per_sec is machine-dependent.\"\n  },\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"flight\": %s, \"wall_seconds\": %.3f, \"packets_per_sec\": %.0f, "
                  "\"events_total\": %llu, \"packets_total\": %llu, "
                  "\"flight_recorded\": %llu}%s\n",
                  r.flight_on ? "true" : "false", r.wall_seconds, r.packets_per_sec,
                  static_cast<unsigned long long>(r.events_total),
                  static_cast<unsigned long long>(r.packets_total),
                  static_cast<unsigned long long>(r.flight_recorded),
                  i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  const double overhead = best_off.packets_per_sec > 0
                              ? 1.0 - best_on.packets_per_sec / best_off.packets_per_sec
                              : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"comparison\": {\"off_packets_per_sec\": %.0f, "
                "\"on_packets_per_sec\": %.0f, \"overhead_fraction\": %.4f}\n",
                best_off.packets_per_sec, best_on.packets_per_sec, overhead);
  out << buf << "}\n";

  std::ofstream file{path};
  file << out.str();
  std::printf("wrote %s\n", path.c_str());
}

// Golden format: one "events_total packets_total flight_recorded" line
// ('#' lines are comments). flight_recorded comes from flight-on reps.
int check_golden(const std::string& path, const RunResult& off, const RunResult& on) {
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "GOLDEN FAIL: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in{line};
    std::uint64_t events = 0, packets = 0, recorded = 0;
    if (!(in >> events >> packets >> recorded)) {
      std::fprintf(stderr, "GOLDEN FAIL: malformed line '%s'\n", line.c_str());
      return 1;
    }
    if (off.events_total != events || off.packets_total != packets ||
        on.flight_recorded != recorded) {
      std::fprintf(stderr,
                   "GOLDEN FAIL: expected events=%llu packets=%llu flight_recorded=%llu, "
                   "got events=%llu packets=%llu flight_recorded=%llu\n",
                   static_cast<unsigned long long>(events),
                   static_cast<unsigned long long>(packets),
                   static_cast<unsigned long long>(recorded),
                   static_cast<unsigned long long>(off.events_total),
                   static_cast<unsigned long long>(off.packets_total),
                   static_cast<unsigned long long>(on.flight_recorded));
      return 1;
    }
    std::printf("golden OK: counters match %s\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr, "GOLDEN FAIL: %s contains no counter line\n", path.c_str());
  return 1;
}

void write_golden(const std::string& path, const RunResult& off, const RunResult& on) {
  std::ofstream file{path};
  file << "# bench_obs deterministic counters: events_total packets_total flight_recorded\n";
  file << "# Regenerate with: bench_obs --write-golden <this file>\n";
  file << off.events_total << " " << off.packets_total << " " << on.flight_recorded << "\n";
  std::printf("wrote golden %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  int reps = 3;
  double budget = 0.05;
  bool gate = true;
  std::string out_path = "BENCH_OBS.json";
  std::string golden_path;
  std::string write_golden_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--budget") {
      budget = std::atof(next().c_str());
    } else if (arg == "--no-gate") {
      gate = false;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--golden") {
      golden_path = next();
    } else if (arg == "--write-golden") {
      write_golden_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_obs [--reps N] [--budget FRACTION] [--no-gate] "
                   "[--out FILE] [--golden FILE] [--write-golden FILE]\n");
      return 2;
    }
  }

  const auto model = train_model();

  std::vector<RunResult> runs;
  RunResult best_off, best_on;
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool flight_on : {false, true}) {
      runs.push_back(run_once(flight_on, *model));
      const RunResult& r = runs.back();
      std::printf("[rep %d] flight=%s wall=%.3fs packets/s=%.0f packets=%llu "
                  "flight_recorded=%llu\n",
                  rep, flight_on ? "on " : "off", r.wall_seconds, r.packets_per_sec,
                  static_cast<unsigned long long>(r.packets_total),
                  static_cast<unsigned long long>(r.flight_recorded));
      RunResult& best = flight_on ? best_on : best_off;
      if (best.packets_per_sec < r.packets_per_sec) best = r;
    }
  }

  // Behaviour invariance: the recorder observes, it must not perturb. Any
  // divergence in the simulation's own counters is a hard failure before
  // any throughput talk.
  int exit_code = 0;
  for (const RunResult& r : runs) {
    if (r.events_total != runs[0].events_total || r.packets_total != runs[0].packets_total) {
      std::fprintf(stderr,
                   "DETERMINISM FAIL: flight=%s run saw events=%llu packets=%llu, "
                   "expected events=%llu packets=%llu\n",
                   r.flight_on ? "on" : "off",
                   static_cast<unsigned long long>(r.events_total),
                   static_cast<unsigned long long>(r.packets_total),
                   static_cast<unsigned long long>(runs[0].events_total),
                   static_cast<unsigned long long>(runs[0].packets_total));
      exit_code = 1;
    }
    if (r.flight_on && r.flight_overwritten != 0) {
      std::fprintf(stderr, "RING FAIL: %llu events overwritten; grow the bench ring\n",
                   static_cast<unsigned long long>(r.flight_overwritten));
      exit_code = 1;
    }
  }

  const double floor = best_off.packets_per_sec * (1.0 - budget);
  std::printf("best off=%.0f pkts/s, best on=%.0f pkts/s (floor %.0f, budget %.0f%%)\n",
              best_off.packets_per_sec, best_on.packets_per_sec, floor, budget * 100.0);
  if (gate && best_on.packets_per_sec < floor && exit_code == 0) {
    std::fprintf(stderr, "OVERHEAD FAIL: flight-on throughput %.0f below %.2f of off %.0f\n",
                 best_on.packets_per_sec, 1.0 - budget, best_off.packets_per_sec);
    exit_code = 1;
  }

  write_json(out_path, runs, best_off, best_on, budget);
  if (!write_golden_path.empty()) write_golden(write_golden_path, best_off, best_on);
  if (!golden_path.empty() && exit_code == 0) {
    exit_code = check_golden(golden_path, best_off, best_on);
  }
  return exit_code;
}
