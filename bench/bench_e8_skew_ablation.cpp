// E8 — train/serve column-order skew ablation.
//
// A reconstruction experiment for Table I's anomalous RF row: the
// published artifact trains each model with its own script, so a silent
// column-order mismatch between the offline CSV and the real-time
// feature assembly is a live failure mode. This bench serves each model
// both ways and reports the damage. The measured result is itself a
// finding: the centroid model (K-Means) collapses under the permutation
// while the tree ensemble and the CNN barely move — i.e. *whichever*
// model's serving path diverges is the one that breaks, and a 61%-class
// collapse of exactly one model is the signature of such a skew rather
// than of the model family.
#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E8", "train/serve column-order skew ablation");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);
  const core::Scenario det = core::detection_scenario(/*seed=*/2);

  std::printf("\n%-8s %16s %16s %10s\n", "model", "consistent (%)", "skew-served (%)",
              "delta");
  for (const char* name : bench::kModelNames) {
    const core::DetectionResult clean = core::run_detection(det, models.get(name));
    const core::SkewServedClassifier skewed{models.get(name)};
    const core::DetectionResult skew = core::run_detection(det, skewed);
    std::printf("%-8s %16.2f %16.2f %+10.2f\n", name,
                100.0 * clean.summary.average_accuracy,
                100.0 * skew.summary.average_accuracy,
                100.0 * (skew.summary.average_accuracy - clean.summary.average_accuracy));
  }
  std::printf(
      "\nreading: a serving-side feature permutation silently destroys the\n"
      "distance-based detector while redundant-split models shrug it off;\n"
      "per-model serving pipelines (as in the published artifact) make this\n"
      "class of bug both easy to introduce and hard to notice.\n");
  return 0;
}
