// E3 — Table I: real-time detection average accuracy.
//
//   Paper:  RF 61.22 %   K-Means 94.82 %   CNN 95.47 %
//
// The clean-room pipeline reproduces the K-Means and CNN rows closely.
// The paper's RF row is only reachable through train/serve skew in the
// published artifact's split per-model tooling (see EXPERIMENTS.md E3 and
// the E8 ablation); we report our clean measurement and the skew-served
// value side by side rather than hiding the divergence.
#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E3", "Table I — real-time detection accuracy");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);

  const core::Scenario det = core::detection_scenario(/*seed=*/2);
  std::printf("[setup] real-time run: %.0f s simulated, 1 s windows, bursty attacks\n\n",
              det.duration.to_seconds());

  const double paper[] = {61.22, 94.82, 95.47};
  std::printf("%-8s %12s %14s %16s %10s\n", "model", "paper (%)", "measured (%)",
              "skew-served (%)", "windows");
  for (std::size_t i = 0; i < 3; ++i) {
    const char* name = bench::kModelNames[i];
    const core::DetectionResult clean = core::run_detection(det, models.get(name));
    const core::SkewServedClassifier skewed{models.get(name)};
    const core::DetectionResult skew = core::run_detection(det, skewed);
    std::printf("%-8s %12.2f %14.2f %16.2f %10llu\n", name, paper[i],
                100.0 * clean.summary.average_accuracy,
                100.0 * skew.summary.average_accuracy,
                static_cast<unsigned long long>(clean.summary.windows));
  }

  std::printf(
      "\nshape notes:\n"
      "  * K-Means and CNN match the paper's ~95%% real-time accuracy.\n"
      "  * RF does NOT collapse in a consistent train/serve pipeline; the\n"
      "    paper's 61.22%% is attributable to pipeline skew in the published\n"
      "    artifact (see EXPERIMENTS.md E3 and the E8 skew ablation).\n");
  return 0;
}
