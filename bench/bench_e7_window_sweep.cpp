// E7 — §IV-E CPU-mitigation claim (ablation).
//
// Paper: "A strategic approach to mitigate this high CPU usage involves
// adjusting the frequency at which statistical features are computed. By
// extending the period for computing these features, a reduction in CPU
// utilization can be achieved." This bench sweeps the IDS window and
// measures CPU% per model; it must fall as the window grows.
#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E7", "IDS window sweep — CPU mitigation (paper §IV-E)");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);
  const core::Scenario det = core::detection_scenario(/*seed=*/2);

  const double windows_s[] = {0.5, 1.0, 2.0, 5.0};
  std::printf("\n%-12s %10s %10s %10s %14s\n", "window (s)", "rf cpu%", "km cpu%",
              "cnn cpu%", "km accuracy %");
  double prev_mean_cpu = 1e9;
  bool falls = true;
  for (const double w : windows_s) {
    ids::IdsConfig cfg;
    cfg.window = util::SimTime::from_seconds(w);
    double cpu[3];
    double km_acc = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      const core::DetectionResult r =
          core::run_detection(det, models.get(bench::kModelNames[i]), cfg);
      cpu[i] = r.summary.cpu_percent;
      if (i == 1) km_acc = 100.0 * r.summary.average_accuracy;
    }
    std::printf("%-12.1f %10.2f %10.2f %10.2f %14.2f\n", w, cpu[0], cpu[1], cpu[2], km_acc);
    const double mean = (cpu[0] + cpu[1] + cpu[2]) / 3.0;
    if (mean > prev_mean_cpu * 1.1) falls = false;
    prev_mean_cpu = mean;
  }
  std::printf("\nshape check: CPU%% decreases as the statistical window grows: %s\n",
              falls ? "PASS" : "CHECK");
  return 0;
}
