// bench_scale: macrobenchmark of the hot-path overhaul, sweeping device
// count through the real Testbed + RealTimeIds pipeline.
//
// Each sweep point runs the same deterministic scenario twice per mode
// request:
//   * "legacy" — binary-heap scheduler + per-packet heap allocation
//     (PacketPool bypass): the pre-overhaul configuration;
//   * "tuned"  — calendar-queue scheduler + pooled packets.
// Both modes execute the identical event sequence (the scheduler backends
// pop in the same (when, seq) order and the pool does not change
// behaviour), so total events / tapped packets are deterministic counters:
// equal across modes, stable across machines, and gateable in CI. Wall-
// clock throughput (events/s, packets/s) is machine-dependent and reported
// but never gated.
//
// Outputs BENCH_SCALE.json. With --golden FILE the deterministic counters
// are checked against the committed golden and the process exits non-zero
// on any drift (the CI perf-smoke gate); --write-golden regenerates it.
//
// Usage:
//   bench_scale [--small] [--mode both|tuned|legacy] [--out FILE]
//               [--golden FILE] [--write-golden FILE]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/app.hpp"
#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "features/extractor.hpp"
#include "features/window_stats.hpp"
#include "ml/kmeans.hpp"
#include "net/node.hpp"
#include "net/simulator.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

namespace {

struct SweepPoint {
  std::size_t devices = 0;
  std::int64_t sim_seconds = 0;
};

// Larger fleets run fewer simulated seconds so the full sweep stays in
// benchmark-friendly wall time; each point's config is recorded in the
// JSON and pinned by the golden.
const std::vector<SweepPoint> kFullSweep = {{10, 20}, {50, 12}, {200, 8}, {1000, 2}};
const std::vector<SweepPoint> kSmallSweep = {{10, 6}, {50, 4}};

constexpr std::uint64_t kScenarioSeed = 42;

struct RunResult {
  std::string mode;
  std::size_t devices = 0;
  std::int64_t sim_seconds = 0;
  double wall_seconds = 0.0;
  double measured_wall_seconds = 0.0;  // post-warmup phase only
  // Deterministic counters (identical across modes and machines).
  std::uint64_t events_total = 0;
  std::uint64_t packets_total = 0;
  // Machine-dependent throughput over the measured phase.
  double events_per_sec = 0.0;
  double packets_per_sec = 0.0;
  // Pool behaviour.
  std::uint64_t pool_allocated_packets = 0;
  std::uint64_t pool_steady_state_allocs = 0;  // fresh slots after warmup
  std::uint64_t pool_reuses = 0;
  std::uint64_t pool_outstanding_high_water = 0;
  // Scheduler behaviour.
  std::uint64_t calendar_rollovers = 0;
  std::size_t calendar_bucket_high_water = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t ids_windows = 0;
  long peak_rss_kb = 0;  // process-wide high water at sample time
};

long peak_rss_kb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

// The scenario behind every sweep point: detection-style star topology,
// full benign mix, and a repeating SYN/UDP/ACK attack cycle that starts
// early so the warmup half of the run reaches steady-state attack load.
core::Scenario make_scale_scenario(const SweepPoint& point) {
  core::Scenario s = core::detection_scenario(kScenarioSeed);
  s.device_count = point.devices;
  s.duration = util::SimTime::seconds(point.sim_seconds);
  s.infection_start = util::SimTime::millis(200);
  // A denser benign mix than the canonical scenario so aggregate load
  // scales with the fleet, plus a hot spoofed flood cycle from early on —
  // the regime the scheduler/pool overhaul targets.
  s.benign.http_session_rate = 2.0;
  s.benign.video_session_rate = 0.3;
  s.benign.ftp_session_rate = 0.2;
  s.attacks.clear();
  core::schedule_attack_cycle(s, util::SimTime::millis(800), s.duration,
                              /*burst=*/util::SimTime::millis(900),
                              /*gap=*/util::SimTime::millis(300),
                              {botnet::AttackType::kSynFlood, botnet::AttackType::kUdpFlood,
                               botnet::AttackType::kAckFlood},
                              /*pps_per_bot=*/2500.0);
  for (core::AttackBurst& burst : s.attacks) burst.spoof_sources = true;
  // Long-delay links keep many packets in flight, so the pending-event
  // population grows with load instead of draining instantly.
  s.topology.access_link.delay = util::SimTime::millis(30);
  s.topology.access_link.queue_bytes = 512 * 1024;
  s.topology.uplink.rate_bps = 400e6;
  s.topology.uplink.delay = util::SimTime::millis(10);
  s.topology.uplink.queue_bytes = 4 * 1024 * 1024;
  s.churn.events_per_device_per_second = 0.0;  // churn off: pure load sweep
  return s;
}

// In-flight ceiling the tuned pool is pre-sized to; runs report
// pool_outstanding_high_water so a sweep that outgrows it is visible.
constexpr std::size_t kPoolReservePackets = 32 * 1024;

RunResult run_point(const SweepPoint& point, const std::string& mode,
                    const ml::Classifier& model) {
  const bool legacy = mode == "legacy";
  net::Simulator::set_default_scheduler(legacy ? net::SchedulerKind::kBinaryHeap
                                               : net::SchedulerKind::kCalendar);
  features::set_reference_window_counters(legacy);
  net::Node::set_route_cache_enabled(!legacy);
  apps::App::set_eager_prune_compat(legacy);
  core::Testbed tb{make_scale_scenario(point)};
  tb.deploy();
  net::Simulator& sim = tb.network().simulator();
  sim.set_alloc_compat(legacy);
  sim.packet_pool().set_bypass(legacy);
  if (!legacy) sim.packet_pool().reserve(kPoolReservePackets);
  ids::RealTimeIds& ids = tb.deploy_ids(model);

  const util::SimTime warmup = tb.scenario().duration / 2;

  const auto t0 = std::chrono::steady_clock::now();
  tb.run_until(warmup);
  const auto t1 = std::chrono::steady_clock::now();
  const std::uint64_t warm_events = sim.events_executed();
  const std::uint64_t warm_packets = tb.tap().packets_captured();
  const std::uint64_t warm_pool_allocs = sim.packet_pool().stats().allocated_packets;
  tb.run();
  const auto t2 = std::chrono::steady_clock::now();

  net::Simulator::set_default_scheduler(net::SchedulerKind::kCalendar);
  features::set_reference_window_counters(false);
  net::Node::set_route_cache_enabled(true);
  apps::App::set_eager_prune_compat(false);

  RunResult r;
  r.mode = mode;
  r.devices = point.devices;
  r.sim_seconds = point.sim_seconds;
  r.wall_seconds = std::chrono::duration<double>(t2 - t0).count();
  r.measured_wall_seconds = std::chrono::duration<double>(t2 - t1).count();
  r.events_total = sim.events_executed();
  r.packets_total = tb.tap().packets_captured();
  const double measured = r.measured_wall_seconds > 0 ? r.measured_wall_seconds : 1e-9;
  r.events_per_sec = static_cast<double>(r.events_total - warm_events) / measured;
  r.packets_per_sec = static_cast<double>(r.packets_total - warm_packets) / measured;
  const auto& pool = sim.packet_pool().stats();
  r.pool_allocated_packets = pool.allocated_packets;
  r.pool_steady_state_allocs = pool.allocated_packets - warm_pool_allocs;
  r.pool_reuses = pool.reuses;
  r.pool_outstanding_high_water = pool.outstanding_high_water;
  r.calendar_rollovers = sim.calendar_rollovers();
  r.calendar_bucket_high_water = sim.calendar_bucket_high_water();
  r.queue_high_water = sim.queue_high_water();
  r.ids_windows = ids.summarize().windows;
  r.peak_rss_kb = peak_rss_kb();
  return r;
}

// Trains the detector the IDS serves — one short generation run, shared by
// every sweep point. K-Means is the paper's lightweight detector; its
// per-packet inference is a handful of distance computations, so the sweep
// measures the event/packet pipeline rather than model arithmetic.
std::unique_ptr<ml::Classifier> train_model() {
  core::Scenario train = core::training_scenario(/*seed=*/1);
  train.device_count = 8;
  train.duration = util::SimTime::seconds(20);
  std::fprintf(stderr, "[setup] training kmeans on a %zu-device %.0f s capture...\n",
               train.device_count, train.duration.to_seconds());
  const core::GenerationResult gen = core::run_generation(train);
  const features::FeatureMatrix fm = features::extract_features(gen.dataset);
  ml::DesignMatrix x;
  std::vector<int> y;
  core::to_design_matrix(fm, x, y);
  auto model = std::make_unique<ml::KMeansDetector>();
  model->fit(x, y);
  return model;
}

std::string json_escape_mode(const RunResult& r) { return r.mode; }

void write_json(const std::string& path, const std::vector<SweepPoint>& sweep,
                const std::vector<RunResult>& runs, bool small) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_scale\",\n";
  out << "  \"config\": {\n";
  out << "    \"sweep\": \"" << (small ? "small" : "full") << "\",\n";
  out << "    \"scenario_seed\": " << kScenarioSeed << ",\n";
  out << "    \"warmup_fraction\": 0.5,\n";
  out << "    \"points\": [";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    out << (i ? ", " : "") << "{\"devices\": " << sweep[i].devices
        << ", \"sim_seconds\": " << sweep[i].sim_seconds << "}";
  }
  out << "],\n";
  out << "    \"notes\": \"deterministic counters (events_total, packets_total) are "
         "identical across modes and machines; *_per_sec and peak_rss_kb are "
         "machine-dependent and not gated; peak_rss_kb is the process high water "
         "at sample time\"\n";
  out << "  },\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    out << "    {\"mode\": \"" << json_escape_mode(r) << "\", \"devices\": " << r.devices
        << ", \"sim_seconds\": " << r.sim_seconds << ",\n";
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "     \"wall_seconds\": %.3f, \"events_per_sec\": %.0f, "
                  "\"packets_per_sec\": %.0f,\n",
                  r.wall_seconds, r.events_per_sec, r.packets_per_sec);
    out << buf;
    out << "     \"events_total\": " << r.events_total
        << ", \"packets_total\": " << r.packets_total << ",\n";
    out << "     \"pool_allocated_packets\": " << r.pool_allocated_packets
        << ", \"pool_steady_state_allocs\": " << r.pool_steady_state_allocs
        << ", \"pool_reuses\": " << r.pool_reuses
        << ", \"pool_outstanding_high_water\": " << r.pool_outstanding_high_water << ",\n";
    out << "     \"calendar_rollovers\": " << r.calendar_rollovers
        << ", \"calendar_bucket_high_water\": " << r.calendar_bucket_high_water
        << ", \"queue_high_water\": " << r.queue_high_water << ",\n";
    out << "     \"ids_windows\": " << r.ids_windows << ", \"peak_rss_kb\": " << r.peak_rss_kb
        << "}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ],\n";
  // Per-size legacy-vs-tuned comparison when both modes ran.
  out << "  \"comparison\": [";
  bool first = true;
  for (const RunResult& tuned : runs) {
    if (tuned.mode != "tuned") continue;
    for (const RunResult& legacy : runs) {
      if (legacy.mode != "legacy" || legacy.devices != tuned.devices) continue;
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"devices\": %zu, \"legacy_packets_per_sec\": %.0f, "
                    "\"tuned_packets_per_sec\": %.0f, \"speedup\": %.2f}",
                    first ? "" : ",", tuned.devices, legacy.packets_per_sec,
                    tuned.packets_per_sec,
                    legacy.packets_per_sec > 0 ? tuned.packets_per_sec / legacy.packets_per_sec
                                               : 0.0);
      out << buf;
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";

  std::ofstream file{path};
  file << out.str();
  std::printf("wrote %s\n", path.c_str());
}

// Golden format: one "devices events_total packets_total" line per sweep
// point ('#' lines are comments). Counters come from tuned-mode runs but
// are mode-independent by construction.
int check_golden(const std::string& path, const std::vector<RunResult>& runs) {
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "GOLDEN FAIL: cannot open %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  std::size_t checked = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in{line};
    std::size_t devices = 0;
    std::uint64_t events = 0, packets = 0;
    if (!(in >> devices >> events >> packets)) {
      std::fprintf(stderr, "GOLDEN FAIL: malformed line '%s'\n", line.c_str());
      return 1;
    }
    bool found = false;
    for (const RunResult& r : runs) {
      if (r.mode != "tuned" || r.devices != devices) continue;
      found = true;
      ++checked;
      if (r.events_total != events || r.packets_total != packets) {
        std::fprintf(stderr,
                     "GOLDEN FAIL: devices=%zu expected events=%llu packets=%llu, "
                     "got events=%llu packets=%llu\n",
                     devices, static_cast<unsigned long long>(events),
                     static_cast<unsigned long long>(packets),
                     static_cast<unsigned long long>(r.events_total),
                     static_cast<unsigned long long>(r.packets_total));
        ++failures;
      }
    }
    if (!found) {
      std::fprintf(stderr, "GOLDEN FAIL: no tuned run for devices=%zu\n", devices);
      ++failures;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "GOLDEN FAIL: %s contains no sweep points\n", path.c_str());
    return 1;
  }
  if (failures == 0) {
    std::printf("golden OK: %zu sweep point(s) match %s\n", checked, path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

void write_golden(const std::string& path, const std::vector<RunResult>& runs) {
  std::ofstream file{path};
  file << "# bench_scale deterministic counters: devices events_total packets_total\n";
  file << "# Regenerate with: bench_scale --small --mode tuned --write-golden <this file>\n";
  for (const RunResult& r : runs) {
    if (r.mode != "tuned") continue;
    file << r.devices << " " << r.events_total << " " << r.packets_total << "\n";
  }
  std::printf("wrote golden %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  bool small = false;
  std::string mode = "both";
  std::string out_path = "BENCH_SCALE.json";
  std::string golden_path;
  std::string write_golden_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--small") {
      small = true;
    } else if (arg == "--mode") {
      mode = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--golden") {
      golden_path = next();
    } else if (arg == "--write-golden") {
      write_golden_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--small] [--mode both|tuned|legacy] [--out FILE] "
                   "[--golden FILE] [--write-golden FILE]\n");
      return 2;
    }
  }
  if (mode != "both" && mode != "tuned" && mode != "legacy") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  const std::vector<SweepPoint>& sweep = small ? kSmallSweep : kFullSweep;
  const auto model = train_model();

  std::vector<RunResult> runs;
  for (const SweepPoint& point : sweep) {
    for (const char* m : {"legacy", "tuned"}) {
      if (mode != "both" && mode != m) continue;
      std::printf("[run] devices=%zu sim_seconds=%lld mode=%s...\n", point.devices,
                  static_cast<long long>(point.sim_seconds), m);
      runs.push_back(run_point(point, m, *model));
      const RunResult& r = runs.back();
      std::printf(
          "      events=%llu packets=%llu wall=%.2fs events/s=%.0f packets/s=%.0f "
          "steady_allocs=%llu\n",
          static_cast<unsigned long long>(r.events_total),
          static_cast<unsigned long long>(r.packets_total), r.wall_seconds, r.events_per_sec,
          r.packets_per_sec, static_cast<unsigned long long>(r.pool_steady_state_allocs));
    }
  }

  // Cross-mode determinism check: both backends must execute the identical
  // event sequence.
  int exit_code = 0;
  for (const RunResult& tuned : runs) {
    if (tuned.mode != "tuned") continue;
    for (const RunResult& legacy : runs) {
      if (legacy.mode != "legacy" || legacy.devices != tuned.devices) continue;
      if (legacy.events_total != tuned.events_total ||
          legacy.packets_total != tuned.packets_total) {
        std::fprintf(stderr,
                     "DETERMINISM FAIL: devices=%zu legacy(events=%llu packets=%llu) != "
                     "tuned(events=%llu packets=%llu)\n",
                     tuned.devices, static_cast<unsigned long long>(legacy.events_total),
                     static_cast<unsigned long long>(legacy.packets_total),
                     static_cast<unsigned long long>(tuned.events_total),
                     static_cast<unsigned long long>(tuned.packets_total));
        exit_code = 1;
      }
    }
    if (tuned.pool_steady_state_allocs != 0) {
      std::fprintf(stderr,
                   "POOL FAIL: devices=%zu tuned mode allocated %llu packet slots after "
                   "warmup (expected 0)\n",
                   tuned.devices,
                   static_cast<unsigned long long>(tuned.pool_steady_state_allocs));
      exit_code = 1;
    }
  }

  write_json(out_path, sweep, runs, small);
  if (!write_golden_path.empty()) write_golden(write_golden_path, runs);
  if (!golden_path.empty() && exit_code == 0) exit_code = check_golden(golden_path, runs);
  return exit_code;
}
