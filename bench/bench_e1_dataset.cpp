// E1 — §IV-D dataset generation.
//
// Paper: a 10-minute run captures 3,012,885 malicious and 2,243,634 benign
// packets ("nearly balanced", ratio 1.343). Our run is time-scaled (5x
// shorter) with packet rates sized for seconds-long wall time, so absolute
// counts are smaller; the contract is the malicious:benign ratio and the
// presence of all six traffic sources.
#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E1", "dataset composition (paper §IV-D)");
  const core::GenerationResult generation = bench::canonical_generation();
  const auto& ds = generation.dataset;

  std::printf("\ninfected devices        : %zu / %zu\n", generation.infected_devices,
              core::training_scenario().device_count);
  std::printf("peak connected bots     : %zu\n", generation.peak_connected_bots);
  std::printf("\n%-22s %12s %12s\n", "", "paper", "measured");
  std::printf("%-22s %12s %12zu\n", "total packets", "5,256,519", ds.size());
  std::printf("%-22s %12s %12zu\n", "malicious packets", "3,012,885", ds.malicious_count());
  std::printf("%-22s %12s %12zu\n", "benign packets", "2,243,634", ds.benign_count());
  std::printf("%-22s %12.3f %12.3f\n", "malicious:benign", 1.343, ds.balance_ratio());

  std::printf("\nper-origin composition:\n");
  for (const auto& [origin, count] : ds.origin_histogram()) {
    std::printf("  %-18s %10zu (%.1f%%)\n", net::to_string(origin).c_str(), count,
                100.0 * static_cast<double>(count) / static_cast<double>(ds.size()));
  }

  const bool nearly_balanced = ds.balance_ratio() > 0.7 && ds.balance_ratio() < 2.0;
  std::printf("\nshape check: dataset nearly balanced, malicious-leaning: %s\n",
              nearly_balanced && ds.balance_ratio() > 1.0 ? "PASS" : "CHECK");
  return 0;
}
