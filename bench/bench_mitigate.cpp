// bench_mitigate: mitigation-path overhead microbenchmark. A benign-only
// scenario (no infection, no attacks) runs with the closed-loop defense
// disabled and enabled, interleaved in one process, and tap packets/s is
// compared best-of-N. With no malicious verdicts the controller installs
// nothing, so the cost measured is exactly the always-on machinery: the
// router's per-packet IngressFilter hook (two branches on the empty-rule
// fast path), the verdict-sink buffering, and the per-window controller
// tick. The gate holds that machinery under --budget (3% in CI).
//
// Defense must also be invisible on benign traffic: packets_total is
// deterministic and equal across off/on reps (same seed, zero
// enforcement); events_total is deterministic per mode (the controller's
// own window ticks are scheduled events, so the on runs execute a handful
// more). Both are pinned by the committed golden together with
// mitigation_actions (always 1 — the boot-time syn_cookies_on line; the
// cookie watermark is set unreachably high so cookies never alter a
// handshake) and acl/ratelimit drops (always 0).
//
// Outputs BENCH_MITIGATE.json. With --golden FILE the deterministic
// counters are checked against the committed golden (the CI perf-smoke
// gate); --write-golden regenerates it.
//
// Usage:
//   bench_mitigate [--reps N] [--budget FRACTION] [--no-gate] [--out FILE]
//                  [--golden FILE] [--write-golden FILE]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "mitigate/mitigation.hpp"
#include "ml/classifier.hpp"
#include "net/simulator.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

namespace {

// Larger than bench_obs' scenario: benign-only traffic is far sparser than
// a flood, so the run must be longer for wall time to rise above scheduler
// noise and make a 3% gate meaningful.
constexpr std::uint64_t kScenarioSeed = 42;
constexpr std::size_t kDevices = 24;
constexpr std::int64_t kSimSeconds = 30;

// The bench isolates the mitigation path, not the model: a constant-benign
// classifier needs no training run and guarantees zero enforcement, so any
// off/on throughput delta is pure plumbing overhead.
class AlwaysBenign : public ml::Classifier {
 public:
  std::string name() const override { return "always-benign"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  int predict(std::span<const double>) const override { return 0; }
  bool trained() const override { return true; }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 0; }
  std::uint64_t inference_scratch_bytes() const override { return 0; }
};

struct RunResult {
  bool mitigate_on = false;
  double wall_seconds = 0.0;
  double packets_per_sec = 0.0;
  // Deterministic across reps and machines.
  std::uint64_t events_total = 0;
  std::uint64_t packets_total = 0;
  std::uint64_t actions = 0;
  std::uint64_t acl_dropped = 0;
  std::uint64_t ratelimit_dropped = 0;
  std::uint64_t cookies_sent = 0;
};

// Dense benign-only mix: every tapped packet crosses the router's ingress
// hook, so the per-packet fast path dominates the measured work.
core::Scenario make_benign_scenario() {
  core::Scenario s = core::detection_scenario(kScenarioSeed);
  s.device_count = kDevices;
  s.duration = util::SimTime::seconds(kSimSeconds);
  s.vulnerable_fraction = 0.0;  // nothing to infect
  s.attacks.clear();
  // Dense enough that the per-packet ingress hook dominates, but below the
  // SYN-cookie half-open watermark: benign handshakes must complete the
  // stateful way in both modes or off/on packet counts diverge.
  s.benign.http_session_rate = 2.0;
  s.benign.video_session_rate = 0.3;
  s.benign.ftp_session_rate = 0.2;
  s.churn.events_per_device_per_second = 0.0;
  return s;
}

RunResult run_once(bool mitigate_on, const ml::Classifier& model) {
  core::Testbed tb{make_benign_scenario()};
  tb.deploy();
  tb.deploy_ids(model);
  if (mitigate_on) {
    // All mechanisms armed, none allowed to trigger: the dense benign mix
    // does queue up transient half-opens, so the default backlog/2 cookie
    // watermark would fire and change handshake packet counts. An
    // unreachable watermark keeps the per-SYN cookie check (the actual
    // overhead) while guaranteeing the stateful path in both modes.
    mitigate::MitigationConfig cfg;
    cfg.syn_cookie_watermark = 1u << 20;  // never reached by benign load
    tb.enable_mitigation(cfg);
  }

  const auto t0 = std::chrono::steady_clock::now();
  tb.run();
  const auto t1 = std::chrono::steady_clock::now();

  RunResult r;
  r.mitigate_on = mitigate_on;
  r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  r.events_total = tb.network().simulator().events_executed();
  r.packets_total = tb.tap().packets_captured();
  if (mitigate_on) {
    r.actions = tb.mitigation()->action_log().size();
    const net::NodeStats& router = tb.topology().router->stats();
    r.acl_dropped = router.dropped_acl;
    r.ratelimit_dropped = router.dropped_ratelimit;
    r.cookies_sent = tb.topology().tserver->tcp().syn_cookies_sent();
  }
  r.packets_per_sec = static_cast<double>(r.packets_total) /
                      (r.wall_seconds > 0 ? r.wall_seconds : 1e-9);
  return r;
}

void write_json(const std::string& path, const std::vector<RunResult>& runs,
                const RunResult& best_off, const RunResult& best_on, double budget) {
  std::ostringstream out;
  out << "{\n  \"bench\": \"bench_mitigate\",\n  \"config\": {\n";
  out << "    \"devices\": " << kDevices << ", \"sim_seconds\": " << kSimSeconds
      << ", \"scenario_seed\": " << kScenarioSeed << ",\n";
  out << "    \"overhead_budget\": " << budget << ",\n";
  out << "    \"notes\": \"benign-only traffic, mitigation off/on reps interleave in "
         "one process; the gate compares best-of reps, so only the relative "
         "overhead matters. events_total/packets_total/actions/drops are "
         "deterministic and golden-pinned; *_per_sec is machine-dependent.\"\n  },\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "    {\"mitigate\": %s, \"wall_seconds\": %.3f, \"packets_per_sec\": "
                  "%.0f, \"events_total\": %llu, \"packets_total\": %llu, "
                  "\"actions\": %llu, \"drops\": %llu}%s\n",
                  r.mitigate_on ? "true" : "false", r.wall_seconds, r.packets_per_sec,
                  static_cast<unsigned long long>(r.events_total),
                  static_cast<unsigned long long>(r.packets_total),
                  static_cast<unsigned long long>(r.actions),
                  static_cast<unsigned long long>(r.acl_dropped + r.ratelimit_dropped),
                  i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  const double overhead = best_off.packets_per_sec > 0
                              ? 1.0 - best_on.packets_per_sec / best_off.packets_per_sec
                              : 0.0;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"comparison\": {\"off_packets_per_sec\": %.0f, "
                "\"on_packets_per_sec\": %.0f, \"overhead_fraction\": %.4f}\n",
                best_off.packets_per_sec, best_on.packets_per_sec, overhead);
  out << buf << "}\n";

  std::ofstream file{path};
  file << out.str();
  std::printf("wrote %s\n", path.c_str());
}

// Golden format: one "events_off events_on packets_total actions" line
// ('#' lines are comments). actions comes from the mitigation-on reps.
int check_golden(const std::string& path, const RunResult& off, const RunResult& on) {
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "GOLDEN FAIL: cannot open %s\n", path.c_str());
    return 1;
  }
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in{line};
    std::uint64_t events_off = 0, events_on = 0, packets = 0, actions = 0;
    if (!(in >> events_off >> events_on >> packets >> actions)) {
      std::fprintf(stderr, "GOLDEN FAIL: malformed line '%s'\n", line.c_str());
      return 1;
    }
    if (off.events_total != events_off || on.events_total != events_on ||
        off.packets_total != packets || on.actions != actions) {
      std::fprintf(stderr,
                   "GOLDEN FAIL: expected events_off=%llu events_on=%llu packets=%llu "
                   "actions=%llu, got events_off=%llu events_on=%llu packets=%llu "
                   "actions=%llu\n",
                   static_cast<unsigned long long>(events_off),
                   static_cast<unsigned long long>(events_on),
                   static_cast<unsigned long long>(packets),
                   static_cast<unsigned long long>(actions),
                   static_cast<unsigned long long>(off.events_total),
                   static_cast<unsigned long long>(on.events_total),
                   static_cast<unsigned long long>(off.packets_total),
                   static_cast<unsigned long long>(on.actions));
      return 1;
    }
    std::printf("golden OK: counters match %s\n", path.c_str());
    return 0;
  }
  std::fprintf(stderr, "GOLDEN FAIL: %s contains no counter line\n", path.c_str());
  return 1;
}

void write_golden(const std::string& path, const RunResult& off, const RunResult& on) {
  std::ofstream file{path};
  file << "# bench_mitigate deterministic counters: events_off events_on "
          "packets_total actions\n";
  file << "# Regenerate with: bench_mitigate --write-golden <this file>\n";
  file << off.events_total << " " << on.events_total << " " << off.packets_total << " "
       << on.actions << "\n";
  std::printf("wrote golden %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  // More reps than bench_obs: the 3% budget is tighter than warm-up noise
  // on a single early rep, and best-of-N only beats that noise for N >= ~5.
  int reps = 5;
  double budget = 0.03;
  bool gate = true;
  std::string out_path = "BENCH_MITIGATE.json";
  std::string golden_path;
  std::string write_golden_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--reps") {
      reps = std::max(1, std::atoi(next().c_str()));
    } else if (arg == "--budget") {
      budget = std::atof(next().c_str());
    } else if (arg == "--no-gate") {
      gate = false;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--golden") {
      golden_path = next();
    } else if (arg == "--write-golden") {
      write_golden_path = next();
    } else {
      std::fprintf(stderr,
                   "usage: bench_mitigate [--reps N] [--budget FRACTION] [--no-gate] "
                   "[--out FILE] [--golden FILE] [--write-golden FILE]\n");
      return 2;
    }
  }

  const AlwaysBenign model;

  std::vector<RunResult> runs;
  RunResult best_off, best_on;
  for (int rep = 0; rep < reps; ++rep) {
    for (const bool mitigate_on : {false, true}) {
      runs.push_back(run_once(mitigate_on, model));
      const RunResult& r = runs.back();
      std::printf("[rep %d] mitigate=%s wall=%.3fs packets/s=%.0f packets=%llu "
                  "actions=%llu cookies=%llu\n",
                  rep, mitigate_on ? "on " : "off", r.wall_seconds, r.packets_per_sec,
                  static_cast<unsigned long long>(r.packets_total),
                  static_cast<unsigned long long>(r.actions),
                  static_cast<unsigned long long>(r.cookies_sent));
      RunResult& best = mitigate_on ? best_on : best_off;
      if (best.packets_per_sec < r.packets_per_sec) best = r;
    }
  }

  // Behaviour invariance: with no malicious verdicts the defense must not
  // touch the traffic. Packet counts must match across modes; event counts
  // must match within a mode (the controller's own ticks are events, so the
  // on runs execute a few more). Any divergence, or any enforcement at all,
  // is a hard failure before any throughput talk.
  int exit_code = 0;
  for (const RunResult& r : runs) {
    const RunResult& ref = r.mitigate_on ? best_on : best_off;
    if (r.events_total != ref.events_total || r.packets_total != runs[0].packets_total) {
      std::fprintf(stderr,
                   "DETERMINISM FAIL: mitigate=%s run saw events=%llu packets=%llu, "
                   "expected events=%llu packets=%llu\n",
                   r.mitigate_on ? "on" : "off",
                   static_cast<unsigned long long>(r.events_total),
                   static_cast<unsigned long long>(r.packets_total),
                   static_cast<unsigned long long>(ref.events_total),
                   static_cast<unsigned long long>(runs[0].packets_total));
      exit_code = 1;
    }
    if (r.acl_dropped + r.ratelimit_dropped != 0) {
      std::fprintf(stderr,
                   "FALSE POSITIVE FAIL: benign-only run dropped %llu packets "
                   "(acl=%llu ratelimit=%llu)\n",
                   static_cast<unsigned long long>(r.acl_dropped + r.ratelimit_dropped),
                   static_cast<unsigned long long>(r.acl_dropped),
                   static_cast<unsigned long long>(r.ratelimit_dropped));
      exit_code = 1;
    }
  }

  const double floor = best_off.packets_per_sec * (1.0 - budget);
  std::printf("best off=%.0f pkts/s, best on=%.0f pkts/s (floor %.0f, budget %.0f%%)\n",
              best_off.packets_per_sec, best_on.packets_per_sec, floor, budget * 100.0);
  if (gate && best_on.packets_per_sec < floor && exit_code == 0) {
    std::fprintf(stderr,
                 "OVERHEAD FAIL: mitigation-on throughput %.0f below %.2f of off %.0f\n",
                 best_on.packets_per_sec, 1.0 - budget, best_off.packets_per_sec);
    exit_code = 1;
  }

  write_json(out_path, runs, best_off, best_on, budget);
  if (!write_golden_path.empty()) write_golden(write_golden_path, best_off, best_on);
  if (!golden_path.empty() && exit_code == 0) {
    exit_code = check_golden(golden_path, best_off, best_on);
  }
  return exit_code;
}
