// Micro-benchmarks (google-benchmark): throughput of the hot paths —
// the event engine, TCP transfers, flood generation, feature extraction,
// and per-model inference latency. These are the budgets behind the
// end-to-end experiment wall times.
#include <benchmark/benchmark.h>

#include "botnet/floods.hpp"
#include "capture/dataset.hpp"
#include "features/extractor.hpp"
#include "ml/cnn.hpp"
#include "ml/kmeans.hpp"
#include "ml/random_forest.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

namespace {

using namespace ddoshield;
using util::Rng;
using util::SimTime;

// --------------------------------------------------------------------------
// Event engine
// --------------------------------------------------------------------------

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    net::Simulator sim;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    for (int i = 0; i < n; ++i) {
      sim.schedule(SimTime::micros(i), [&fired] { ++fired; });
    }
    sim.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulatorEventThroughput)->Arg(10000)->Arg(100000);

// --------------------------------------------------------------------------
// UDP datapath
// --------------------------------------------------------------------------

void BM_UdpDatapath(benchmark::State& state) {
  for (auto _ : state) {
    net::Network net;
    net::Node& a = net.add_node("a", net::Ipv4Address{10, 0, 0, 1});
    net::Node& b = net.add_node("b", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(a, b, net::LinkConfig{.rate_bps = 1e9, .queue_bytes = 1 << 22});
    a.set_default_route(0);
    b.set_default_route(0);
    auto server = b.udp().open(9);
    server->set_receive_callback([](const net::Packet&) {});
    auto client = a.udp().open();
    for (int i = 0; i < 5000; ++i) {
      client->send_to(net::Endpoint{b.address(), 9}, 64, net::TrafficOrigin::kHttp);
    }
    net.simulator().run_all();
    benchmark::DoNotOptimize(b.stats().received_packets);
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_UdpDatapath);

// --------------------------------------------------------------------------
// TCP bulk transfer
// --------------------------------------------------------------------------

void BM_TcpBulkTransfer(benchmark::State& state) {
  for (auto _ : state) {
    net::Network net;
    net::Node& c = net.add_node("c", net::Ipv4Address{10, 0, 0, 1});
    net::Node& s = net.add_node("s", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(c, s,
                 net::LinkConfig{.rate_bps = 1e9,
                                 .delay = SimTime::micros(100),
                                 .queue_bytes = 1 << 22});
    c.set_default_route(0);
    s.set_default_route(0);
    auto listener = s.tcp().listen(80);
    std::uint64_t got = 0;
    listener->set_on_accept([&got](std::shared_ptr<net::TcpConnection> conn) {
      conn->set_on_data([&got](std::uint32_t n, const std::string&) { got += n; });
    });
    auto conn = c.tcp().connect(net::Endpoint{s.address(), 80}, net::TrafficOrigin::kFtp);
    conn->set_on_connected([&conn] { conn->send(4 * 1024 * 1024); });
    net.simulator().run_until(SimTime::seconds(60));
    benchmark::DoNotOptimize(got);
  }
  state.SetBytesProcessed(state.iterations() * 4 * 1024 * 1024);
}
BENCHMARK(BM_TcpBulkTransfer);

// --------------------------------------------------------------------------
// Flood generation
// --------------------------------------------------------------------------

void BM_FloodEmission(benchmark::State& state) {
  for (auto _ : state) {
    net::Network net;
    net::Node& bot = net.add_node("bot", net::Ipv4Address{10, 0, 0, 1});
    net::Node& victim = net.add_node("v", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(bot, victim, net::LinkConfig{.rate_bps = 1e9, .queue_bytes = 1 << 22});
    bot.set_default_route(0);
    victim.set_default_route(0);
    botnet::FloodEngine engine{bot, Rng{1}};
    botnet::FloodConfig cfg;
    cfg.type = botnet::AttackType::kSynFlood;
    cfg.target = victim.address();
    cfg.packets_per_second = 100000;
    cfg.duration = SimTime::millis(200);
    engine.start(cfg);
    net.simulator().run_until(SimTime::seconds(1));
    benchmark::DoNotOptimize(engine.packets_emitted());
  }
}
BENCHMARK(BM_FloodEmission);

// --------------------------------------------------------------------------
// Feature extraction
// --------------------------------------------------------------------------

capture::Dataset synthetic_dataset(std::size_t packets) {
  capture::Dataset ds;
  Rng rng{3};
  for (std::size_t i = 0; i < packets; ++i) {
    capture::PacketRecord r;
    r.timestamp = SimTime::micros(static_cast<std::int64_t>(i) * 500);
    r.src_addr = static_cast<std::uint32_t>(rng.next_u64());
    r.dst_addr = 42;
    r.src_port = static_cast<std::uint16_t>(1024 + rng.uniform_u64(64000));
    r.dst_port = rng.bernoulli(0.5) ? 80 : 9000;
    r.protocol = rng.bernoulli(0.8) ? 6 : 17;
    r.tcp_flags = rng.bernoulli(0.2) ? net::TcpFlags::kSyn : net::TcpFlags::kAck;
    r.seq = static_cast<std::uint32_t>(rng.next_u64());
    r.payload_bytes = static_cast<std::uint32_t>(rng.uniform_u64(1400));
    r.wire_bytes = r.payload_bytes + 40;
    r.origin = rng.bernoulli(0.5) ? net::TrafficOrigin::kHttp
                                  : net::TrafficOrigin::kMiraiSynFlood;
    r.label = net::traffic_class_of(r.origin);
    ds.add(r);
  }
  return ds;
}

void BM_FeatureExtraction(benchmark::State& state) {
  const capture::Dataset ds = synthetic_dataset(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    const features::FeatureMatrix fm = features::extract_features(ds);
    benchmark::DoNotOptimize(fm.rows.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FeatureExtraction)->Arg(10000)->Arg(100000);

// --------------------------------------------------------------------------
// Model inference latency
// --------------------------------------------------------------------------

struct TrainedFixture {
  ml::DesignMatrix x{features::kFeatureCount};
  std::vector<int> y;
  ml::RandomForest rf;
  ml::KMeansDetector km;
  ml::Cnn1D cnn{ml::CnnConfig{.epochs = 1, .max_training_rows = 4000}};

  TrainedFixture() {
    const capture::Dataset ds = synthetic_dataset(8000);
    const features::FeatureMatrix fm = features::extract_features(ds);
    for (const auto& row : fm.rows) x.add_row(row);
    y = fm.labels;
    rf.fit(x, y);
    km.fit(x, y);
    cnn.fit(x, y);
  }

  static TrainedFixture& instance() {
    static TrainedFixture f;
    return f;
  }
};

template <typename GetModel>
void inference_bench(benchmark::State& state, GetModel get) {
  auto& f = TrainedFixture::instance();
  const ml::Classifier& model = get(f);
  std::size_t i = 0;
  for (auto _ : state) {
    const int pred = model.predict(f.x.row(i % f.x.rows()));
    benchmark::DoNotOptimize(pred);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_InferenceRandomForest(benchmark::State& state) {
  inference_bench(state, [](TrainedFixture& f) -> const ml::Classifier& { return f.rf; });
}
void BM_InferenceKMeans(benchmark::State& state) {
  inference_bench(state, [](TrainedFixture& f) -> const ml::Classifier& { return f.km; });
}
void BM_InferenceCnn(benchmark::State& state) {
  inference_bench(state, [](TrainedFixture& f) -> const ml::Classifier& { return f.cnn; });
}
BENCHMARK(BM_InferenceRandomForest);
BENCHMARK(BM_InferenceKMeans);
BENCHMARK(BM_InferenceCnn);

}  // namespace

BENCHMARK_MAIN();
