// E2 — §IV-D training-phase evaluation.
//
// Paper: "all models have attained values across these evaluation metrics,
// with a small amount of false positives and false negatives" (no table is
// given). We report accuracy / precision / recall / F1 on a stratified
// 80/20 split of the training capture, plus fit time and model file size.
#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E2", "training-phase metrics (paper §IV-D)");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);

  std::printf("\n%-8s %9s %9s %9s %9s %9s %12s %8s\n", "model", "acc", "prec", "rec",
              "f1", "train-acc", "size (KB)", "fit (s)");
  for (const char* name : bench::kModelNames) {
    const core::ModelReport& r = models.report_of(name);
    std::printf("%-8s %9.4f %9.4f %9.4f %9.4f %9.4f %12.1f %8.2f\n", name,
                r.test.accuracy(), r.test.precision(), r.test.recall(), r.test.f1(),
                r.train.accuracy(),
                static_cast<double>(r.model_file_bytes) / 1024.0, r.fit_seconds);
  }

  std::printf("\nconfusion matrices (test split):\n");
  for (const char* name : bench::kModelNames) {
    std::printf("  %-8s %s\n", name, models.report_of(name).test.to_string().c_str());
  }

  bool all_high = true;
  for (const char* name : bench::kModelNames) {
    all_high = all_high && models.report_of(name).test.accuracy() > 0.80;
  }
  std::printf("\nshape check: all models attain high training-phase metrics: %s\n",
              all_high ? "PASS" : "CHECK");
  return 0;
}
