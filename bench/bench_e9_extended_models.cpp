// E9 — extended model comparison (§V future work).
//
// The paper's threats-to-validity section plans "a more in-depth analysis
// … of additional ML models representative of the most popular tools used
// for intrusion detection in the IoT domain (e.g., SVM, Isolation
// Forest)". This bench runs that analysis: all five detectors through the
// identical train → persist → real-time-detect pipeline, reporting the
// paper's full metric set (accuracy + CPU + memory + model size) so the
// "ideal resource/performance profile" question the paper poses can be
// answered directly.
#include "bench/bench_common.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/model_store.hpp"
#include "ml/svm.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E9", "extended model comparison (paper §V)");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels base = bench::canonical_training(generation);

  // Train the two §V additions on the same feature matrix.
  features::AggregatorConfig agg_cfg;
  const features::FeatureMatrix fm = features::extract_features(generation.dataset, agg_cfg);
  ml::DesignMatrix x;
  std::vector<int> y;
  core::to_design_matrix(fm, x, y);

  ml::LinearSvm svm;
  std::printf("[setup] training svm...\n");
  svm.fit(x, y);
  ml::IsolationForest iforest;
  std::printf("[setup] training iforest...\n");
  iforest.fit(x, y);

  const core::Scenario det = core::detection_scenario(/*seed=*/2);
  std::printf("\n%-9s %12s %8s %8s %10s %12s\n", "model", "avg acc %", "min %", "cpu %",
              "mem KB", "size KB");

  auto report = [&det](const ml::Classifier& model) {
    const core::DetectionResult r = core::run_detection(det, model);
    std::printf("%-9s %12.2f %8.2f %8.1f %10.1f %12.2f\n", model.name().c_str(),
                100.0 * r.summary.average_accuracy, 100.0 * r.summary.min_accuracy,
                r.summary.cpu_percent, r.summary.memory_kb, r.model_size_kb);
    return r.summary.average_accuracy;
  };

  for (const char* name : bench::kModelNames) report(base.get(name));
  const double svm_acc = report(svm);
  const double iforest_acc = report(iforest);

  std::printf(
      "\nreading: the linear SVM is the resource-frugal supervised option\n"
      "(~KB model, SVM acc %.1f%%); the Isolation Forest gives label-free\n"
      "detection at %.1f%% — both slot into the same IDS container via\n"
      "ml::Classifier, which is the extensibility claim the paper makes\n"
      "for the testbed.\n",
      100.0 * svm_acc, 100.0 * iforest_acc);
  return 0;
}
