// E10 — feature-usefulness evaluation (§IV-D footnote, the paper's own
// "future work": a feature-extraction algorithm that evaluates the actual
// usefulness of each feature after basic/statistical aggregation).
//
// Fisher-score ranking over the training capture, then a top-k sweep:
// train on the k best features, deploy in the real-time IDS, and measure
// what feature curation buys in accuracy and CPU.
#include "bench/bench_common.hpp"
#include "features/schema.hpp"
#include "ml/feature_selection.hpp"
#include "ml/random_forest.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E10", "feature-usefulness evaluation (paper future work)");
  const core::GenerationResult generation = bench::canonical_generation();

  features::AggregatorConfig agg_cfg;
  const features::FeatureMatrix fm = features::extract_features(generation.dataset, agg_cfg);
  ml::DesignMatrix x;
  std::vector<int> y;
  core::to_design_matrix(fm, x, y);

  const auto ranking = ml::rank_features(x, y);
  std::printf("\nFisher-score ranking of the paper's feature set:\n");
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    std::printf("  %2zu. %-22s %10.4f\n", i + 1,
                std::string{features::feature_name(ranking[i].index)}.c_str(),
                ranking[i].score);
  }

  const core::Scenario det = core::detection_scenario(/*seed=*/2);
  std::printf("\n%-6s %12s %8s %10s\n", "top-k", "avg acc %", "cpu %", "size KB");
  for (const std::size_t k : {std::size_t{3}, std::size_t{6}, std::size_t{10}, features::kFeatureCount}) {
    const auto columns = ml::top_k_columns(ranking, k);
    const ml::DesignMatrix reduced = ml::select_columns(x, columns);
    ml::RandomForest rf;
    rf.fit(reduced, y);
    const ml::ColumnSubsetClassifier wrapped{rf, columns};
    const core::DetectionResult r = core::run_detection(det, wrapped);
    std::printf("%-6zu %12.2f %8.1f %10.2f\n", k, 100.0 * r.summary.average_accuracy,
                r.summary.cpu_percent,
                static_cast<double>(rf.parameter_bytes()) / 1024.0);
  }

  std::printf(
      "\nreading: a handful of curated features carries nearly all of the\n"
      "detection signal with a smaller model — the curation step the paper\n"
      "identified as the fix for its statistical-feature noise.\n");
  return 0;
}
