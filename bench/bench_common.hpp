// Shared helpers for the experiment-reproduction benches (E1-E8).
//
// Each bench binary is self-contained: it builds the canonical scenario,
// runs the pipeline it needs, and prints the paper's table next to the
// measured values. Absolute numbers depend on the simulated substrate and
// the time-scaling documented in DESIGN.md; the *shape* is the contract.
#pragma once

#include <cstdio>

#include "core/pipeline.hpp"
#include "util/logging.hpp"

namespace ddoshield::bench {

inline void banner(const char* experiment, const char* title) {
  std::printf("==========================================================\n");
  std::printf("%s — %s\n", experiment, title);
  std::printf("==========================================================\n");
}

/// Runs the canonical E1 generation (the paper's 10-minute capture,
/// time-scaled) and returns the dataset + infection stats.
inline core::GenerationResult canonical_generation() {
  std::printf("[setup] generating training capture (%.0f s simulated)...\n",
              core::training_scenario().duration.to_seconds());
  return core::run_generation(core::training_scenario(/*seed=*/1));
}

/// Trains the three models on a generation result (E2 prerequisites).
inline core::TrainedModels canonical_training(const core::GenerationResult& generation) {
  std::printf("[setup] training rf / kmeans / cnn on %zu packets...\n",
              generation.dataset.size());
  return core::train_all_models(generation.dataset);
}

inline const char* kModelNames[] = {"rf", "kmeans", "cnn"};

}  // namespace ddoshield::bench
