// bench_infer: microbenchmark of the batched, off-thread inference engine
// (Table II framing), sweeping batch size × model × kernel × execution
// mode through the three paper detectors.
//
// Each sweep point scores the same deterministic feature matrix:
//   * kernel  — "scalar" (per-row predict(), the pre-overhaul loop) vs
//     "batched" (the cache-blocked score_batch kernels), toggled through
//     the Classifier::set_batched_inference legacy switch;
//   * exec    — "inline" (simulation thread) vs "offthread" (the
//     ids::InferenceEngine SPSC worker).
// The kernels are bit-identical by construction and the engine is FIFO,
// so every (kernel × exec) combination must produce the identical verdict
// sequence: the bench hashes the verdicts and fails hard on any mismatch.
// That checksum is the deterministic, golden-gateable output; packets/s,
// CPU% and RSS are machine-dependent and reported but never gated.
//
// Outputs BENCH_INFER.json. With --golden FILE the verdict checksums are
// checked against the committed golden (CI perf-smoke); --write-golden
// regenerates it. --min-speedup S additionally requires the batched
// kernel to reach S× the scalar packets/s at batch 64 on at least one
// model (the PR acceptance gate; run on an otherwise idle machine).
//
// Usage:
//   bench_infer [--small] [--out FILE] [--golden FILE]
//               [--write-golden FILE] [--min-speedup S]
#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "features/extractor.hpp"
#include "ids/infer_engine.hpp"
#include "ml/classifier.hpp"
#include "util/logging.hpp"

using namespace ddoshield;

namespace {

constexpr std::uint64_t kScenarioSeed = 1;

struct RunResult {
  std::string model;
  std::size_t batch = 0;
  std::string kernel;  // "scalar" | "batched"
  std::string exec;    // "inline" | "offthread"
  std::uint64_t rows_per_pass = 0;
  std::uint64_t rows_scored = 0;
  double wall_seconds = 0.0;
  double packets_per_sec = 0.0;   // machine-dependent
  double cpu_percent = 0.0;       // process user+sys over wall (all threads)
  long peak_rss_kb = 0;
  std::uint64_t backpressure_waits = 0;  // offthread only
  std::uint64_t verdict_checksum = 0;    // deterministic, gated
};

long peak_rss_kb() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

double cpu_seconds() {
  struct rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto to_s = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) + static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_s(usage.ru_utime) + to_s(usage.ru_stime);
}

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  return h * 0x100000001b3ull;
}

std::uint64_t checksum_verdicts(const ml::Verdicts& v) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const int x : v) h = fnv1a(h, static_cast<std::uint64_t>(static_cast<unsigned>(x)));
  return h;
}

/// The shared evaluation matrix: features of a short deterministic
/// capture, tiled until it holds at least min_rows rows so every batch
/// size gets full batches.
ml::DesignMatrix make_eval_matrix(const ml::DesignMatrix& base, std::size_t min_rows) {
  ml::DesignMatrix x{base.cols()};
  x.reserve(min_rows + base.rows());
  while (x.rows() < min_rows) {
    for (std::size_t i = 0; i < base.rows() && x.rows() < min_rows; ++i) x.add_row(base.row(i));
  }
  return x;
}

std::vector<ml::DesignMatrix> split_batches(const ml::DesignMatrix& x, std::size_t batch) {
  std::vector<ml::DesignMatrix> out;
  out.reserve((x.rows() + batch - 1) / batch);
  for (std::size_t base = 0; base < x.rows(); base += batch) {
    ml::DesignMatrix b{x.cols()};
    const std::size_t n = std::min(batch, x.rows() - base);
    b.reserve(n);
    for (std::size_t i = 0; i < n; ++i) b.add_row(x.row(base + i));
    out.push_back(std::move(b));
  }
  return out;
}

void score_pass_inline(const ml::Classifier& model, const std::vector<ml::DesignMatrix>& batches,
                       ml::Verdicts* sink) {
  ml::Verdicts v;
  for (const ml::DesignMatrix& b : batches) {
    model.score_batch(b, v);
    if (sink) sink->insert(sink->end(), v.begin(), v.end());
  }
}

void score_pass_offthread(ids::InferenceEngine& engine,
                          const std::vector<ml::DesignMatrix>& batches, ml::Verdicts* sink,
                          std::uint64_t* backpressure) {
  ids::InferResult res;
  for (const ml::DesignMatrix& b : batches) {
    engine.submit(ml::DesignMatrix{b});  // copy: batches are reused across passes
    while (engine.try_collect(res)) {
      if (sink) sink->insert(sink->end(), res.verdicts.begin(), res.verdicts.end());
    }
  }
  while (engine.outstanding() > 0) {
    res = engine.collect();
    if (sink) sink->insert(sink->end(), res.verdicts.begin(), res.verdicts.end());
  }
  if (backpressure) *backpressure = engine.stats().backpressure_waits;
}

RunResult run_point(const ml::Classifier& model, const ml::DesignMatrix& eval, std::size_t batch,
                    bool batched_kernel, bool offthread, double min_measure_seconds) {
  ml::Classifier::set_batched_inference(batched_kernel);
  const std::vector<ml::DesignMatrix> batches = split_batches(eval, batch);

  RunResult r;
  r.model = model.name();
  r.batch = batch;
  r.kernel = batched_kernel ? "batched" : "scalar";
  r.exec = offthread ? "offthread" : "inline";
  r.rows_per_pass = eval.rows();

  std::unique_ptr<ids::InferenceEngine> engine;
  if (offthread) engine = std::make_unique<ids::InferenceEngine>(model);

  // Untimed pass: warms caches and produces the gated verdict sequence.
  ml::Verdicts verdicts;
  verdicts.reserve(eval.rows());
  if (offthread) {
    score_pass_offthread(*engine, batches, &verdicts, nullptr);
  } else {
    score_pass_inline(model, batches, &verdicts);
  }
  r.verdict_checksum = checksum_verdicts(verdicts);

  // Timed passes: repeat until the wall budget is met so fast kernels
  // still accumulate a measurable interval.
  const double cpu0 = cpu_seconds();
  const auto t0 = std::chrono::steady_clock::now();
  double wall = 0.0;
  while (wall < min_measure_seconds) {
    if (offthread) {
      score_pass_offthread(*engine, batches, nullptr, &r.backpressure_waits);
    } else {
      score_pass_inline(model, batches, nullptr);
    }
    r.rows_scored += eval.rows();
    wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  }
  r.wall_seconds = wall;
  r.packets_per_sec = static_cast<double>(r.rows_scored) / (wall > 0 ? wall : 1e-9);
  r.cpu_percent = 100.0 * (cpu_seconds() - cpu0) / (wall > 0 ? wall : 1e-9);
  r.peak_rss_kb = peak_rss_kb();

  ml::Classifier::set_batched_inference(true);
  return r;
}

void write_json(const std::string& path, const std::vector<RunResult>& runs,
                const std::vector<std::size_t>& batch_sizes, std::size_t eval_rows, bool small) {
  std::ostringstream out;
  out << "{\n";
  out << "  \"bench\": \"bench_infer\",\n";
  out << "  \"config\": {\n";
  out << "    \"sweep\": \"" << (small ? "small" : "full") << "\",\n";
  out << "    \"scenario_seed\": " << kScenarioSeed << ",\n";
  out << "    \"eval_rows\": " << eval_rows << ",\n";
  out << "    \"batch_sizes\": [";
  for (std::size_t i = 0; i < batch_sizes.size(); ++i) out << (i ? ", " : "") << batch_sizes[i];
  out << "],\n";
  out << "    \"notes\": \"verdict_checksum is deterministic and identical across kernel/exec "
         "modes (gated); packets_per_sec, cpu_percent and peak_rss_kb are machine-dependent "
         "and not gated; cpu_percent covers all process threads so offthread runs can exceed "
         "100\"\n";
  out << "  },\n";
  out << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunResult& r = runs[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"model\": \"%s\", \"batch\": %zu, \"kernel\": \"%s\", "
                  "\"exec\": \"%s\",\n"
                  "     \"rows_scored\": %llu, \"wall_seconds\": %.3f, "
                  "\"packets_per_sec\": %.0f, \"cpu_percent\": %.1f,\n"
                  "     \"peak_rss_kb\": %ld, \"backpressure_waits\": %llu, "
                  "\"verdict_checksum\": \"%016llx\"}%s\n",
                  r.model.c_str(), r.batch, r.kernel.c_str(), r.exec.c_str(),
                  static_cast<unsigned long long>(r.rows_scored), r.wall_seconds,
                  r.packets_per_sec, r.cpu_percent, r.peak_rss_kb,
                  static_cast<unsigned long long>(r.backpressure_waits),
                  static_cast<unsigned long long>(r.verdict_checksum),
                  i + 1 < runs.size() ? "," : "");
    out << buf;
  }
  out << "  ],\n";
  // Per-model batched-vs-scalar speedup at each batch size (inline exec).
  out << "  \"comparison\": [";
  bool first = true;
  for (const RunResult& b : runs) {
    if (b.kernel != "batched" || b.exec != "inline") continue;
    for (const RunResult& s : runs) {
      if (s.kernel != "scalar" || s.exec != "inline" || s.model != b.model ||
          s.batch != b.batch) {
        continue;
      }
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s\n    {\"model\": \"%s\", \"batch\": %zu, "
                    "\"scalar_packets_per_sec\": %.0f, \"batched_packets_per_sec\": %.0f, "
                    "\"speedup\": %.2f}",
                    first ? "" : ",", b.model.c_str(), b.batch, s.packets_per_sec,
                    b.packets_per_sec,
                    s.packets_per_sec > 0 ? b.packets_per_sec / s.packets_per_sec : 0.0);
      out << buf;
      first = false;
    }
  }
  out << (first ? "" : "\n  ") << "]\n";
  out << "}\n";

  std::ofstream file{path};
  file << out.str();
  std::printf("wrote %s\n", path.c_str());
}

// Golden format: one "model batch rows checksum" line per (model, batch)
// pair ('#' lines are comments). Checksums come from batched-inline runs
// but are mode-independent by the equality gate.
int check_golden(const std::string& path, const std::vector<RunResult>& runs) {
  std::ifstream file{path};
  if (!file) {
    std::fprintf(stderr, "GOLDEN FAIL: cannot open %s\n", path.c_str());
    return 1;
  }
  int failures = 0;
  std::size_t checked = 0;
  std::string line;
  while (std::getline(file, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in{line};
    std::string model;
    std::size_t batch = 0;
    std::uint64_t rows = 0;
    std::string checksum_hex;
    if (!(in >> model >> batch >> rows >> checksum_hex)) {
      std::fprintf(stderr, "GOLDEN FAIL: malformed line '%s'\n", line.c_str());
      return 1;
    }
    const std::uint64_t checksum = std::stoull(checksum_hex, nullptr, 16);
    bool found = false;
    for (const RunResult& r : runs) {
      if (r.kernel != "batched" || r.exec != "inline" || r.model != model || r.batch != batch) {
        continue;
      }
      found = true;
      ++checked;
      if (r.rows_per_pass != rows || r.verdict_checksum != checksum) {
        std::fprintf(stderr,
                     "GOLDEN FAIL: %s batch=%zu expected rows=%llu checksum=%016llx, "
                     "got rows=%llu checksum=%016llx\n",
                     model.c_str(), batch, static_cast<unsigned long long>(rows),
                     static_cast<unsigned long long>(checksum),
                     static_cast<unsigned long long>(r.rows_per_pass),
                     static_cast<unsigned long long>(r.verdict_checksum));
        ++failures;
      }
    }
    if (!found) {
      std::fprintf(stderr, "GOLDEN FAIL: no run for model=%s batch=%zu\n", model.c_str(), batch);
      ++failures;
    }
  }
  if (checked == 0) {
    std::fprintf(stderr, "GOLDEN FAIL: %s contains no sweep points\n", path.c_str());
    return 1;
  }
  if (failures == 0) {
    std::printf("golden OK: %zu sweep point(s) match %s\n", checked, path.c_str());
  }
  return failures == 0 ? 0 : 1;
}

void write_golden(const std::string& path, const std::vector<RunResult>& runs) {
  std::ofstream file{path};
  file << "# bench_infer deterministic verdicts: model batch rows checksum\n";
  file << "# Regenerate with: bench_infer --small --write-golden <this file>\n";
  char buf[128];
  for (const RunResult& r : runs) {
    if (r.kernel != "batched" || r.exec != "inline") continue;
    std::snprintf(buf, sizeof(buf), "%s %zu %llu %016llx\n", r.model.c_str(), r.batch,
                  static_cast<unsigned long long>(r.rows_per_pass),
                  static_cast<unsigned long long>(r.verdict_checksum));
    file << buf;
  }
  std::printf("wrote golden %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  util::Logger::instance().set_level(util::LogLevel::kWarn);

  bool small = false;
  std::string out_path = "BENCH_INFER.json";
  std::string golden_path;
  std::string write_golden_path;
  double min_speedup = 0.0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--small") {
      small = true;
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--golden") {
      golden_path = next();
    } else if (arg == "--write-golden") {
      write_golden_path = next();
    } else if (arg == "--min-speedup") {
      min_speedup = std::stod(next());
    } else {
      std::fprintf(stderr,
                   "usage: bench_infer [--small] [--out FILE] [--golden FILE] "
                   "[--write-golden FILE] [--min-speedup S]\n");
      return 2;
    }
  }

  // --- setup: one short capture trains all three models and supplies the
  // evaluation rows.
  core::Scenario train = core::training_scenario(kScenarioSeed);
  train.device_count = 8;
  train.duration = util::SimTime::seconds(20);
  std::printf("[setup] generating %zu-device %.0f s capture...\n", train.device_count,
              train.duration.to_seconds());
  const core::GenerationResult gen = core::run_generation(train);
  std::printf("[setup] training rf / kmeans / cnn on %zu packets...\n", gen.dataset.size());
  const core::TrainedModels models = core::train_all_models(gen.dataset);

  const features::FeatureMatrix fm = features::extract_features(gen.dataset);
  ml::DesignMatrix base;
  std::vector<int> labels;
  core::to_design_matrix(fm, base, labels);
  const std::size_t eval_rows = small ? 2048 : 8192;
  const ml::DesignMatrix eval = make_eval_matrix(base, eval_rows);
  const double measure_seconds = small ? 0.15 : 0.5;

  const std::vector<std::size_t> batch_sizes =
      small ? std::vector<std::size_t>{1, 64} : std::vector<std::size_t>{1, 16, 64, 256};

  std::vector<RunResult> runs;
  for (const char* name : bench::kModelNames) {
    const ml::Classifier& model = models.get(name);
    for (const std::size_t batch : batch_sizes) {
      for (const bool batched : {false, true}) {
        for (const bool offthread : {false, true}) {
          runs.push_back(run_point(model, eval, batch, batched, offthread, measure_seconds));
          const RunResult& r = runs.back();
          std::printf(
              "[run] %-6s batch=%-3zu %-7s %-9s packets/s=%10.0f cpu=%5.1f%% rss=%ld kB "
              "checksum=%016llx\n",
              r.model.c_str(), r.batch, r.kernel.c_str(), r.exec.c_str(), r.packets_per_sec,
              r.cpu_percent, r.peak_rss_kb,
              static_cast<unsigned long long>(r.verdict_checksum));
        }
      }
    }
  }

  // --- hard gate: every (kernel × exec) mode must produce the identical
  // verdict sequence for each (model, batch) point.
  int exit_code = 0;
  for (const RunResult& a : runs) {
    for (const RunResult& b : runs) {
      if (a.model != b.model || a.batch != b.batch) continue;
      if (a.verdict_checksum != b.verdict_checksum) {
        std::fprintf(stderr,
                     "DETERMINISM FAIL: %s batch=%zu %s/%s checksum %016llx != %s/%s %016llx\n",
                     a.model.c_str(), a.batch, a.kernel.c_str(), a.exec.c_str(),
                     static_cast<unsigned long long>(a.verdict_checksum), b.kernel.c_str(),
                     b.exec.c_str(), static_cast<unsigned long long>(b.verdict_checksum));
        exit_code = 1;
      }
    }
  }
  // Batch size must not change verdicts either (pure chunking).
  for (const RunResult& a : runs) {
    for (const RunResult& b : runs) {
      if (a.model == b.model && a.verdict_checksum != b.verdict_checksum) exit_code = 1;
    }
  }

  // --- optional acceptance gate: batched kernel speedup at batch 64.
  if (min_speedup > 0.0) {
    double best = 0.0;
    std::string best_model = "none";
    for (const RunResult& b : runs) {
      if (b.kernel != "batched" || b.exec != "inline" || b.batch != 64) continue;
      for (const RunResult& s : runs) {
        if (s.kernel != "scalar" || s.exec != "inline" || s.model != b.model || s.batch != 64) {
          continue;
        }
        const double speedup = s.packets_per_sec > 0 ? b.packets_per_sec / s.packets_per_sec : 0;
        if (speedup > best) {
          best = speedup;
          best_model = b.model;
        }
      }
    }
    std::printf("best batch-64 speedup: %.2fx (%s)\n", best, best_model.c_str());
    if (best < min_speedup) {
      std::fprintf(stderr, "SPEEDUP FAIL: best batch-64 speedup %.2fx < required %.2fx\n", best,
                   min_speedup);
      exit_code = 1;
    }
  }

  write_json(out_path, runs, batch_sizes, eval.rows(), small);
  if (!write_golden_path.empty()) write_golden(write_golden_path, runs);
  if (!golden_path.empty() && exit_code == 0) exit_code = check_golden(golden_path, runs);
  return exit_code;
}
