// E4 — Table II: ML model sustainability during real-time detection.
//
//   Paper:            CPU (%)   Memory (Kb)   Model Size (Kb)
//     RF               65.46        98.07          712.30
//     K-Means          67.88        86.83           11.20
//     CNN              65.94       275.85          736.30
//
// CPU and memory are genuinely measured around the executed detection
// computation and normalised with the documented calibration constants
// (DESIGN.md §2); model size is the exact serialized model file size.
// The contract is the shape: CPU roughly equal across models (dominated
// by statistical-feature computation), CNN the largest memory, K-Means
// the lightest model by orders of magnitude.
//
// Emits BENCH_E4.json: a ddoshield-metrics-v2 snapshot of the whole run's
// counters and latency histograms plus per-model "bench.e4.*" gauges for
// the table's measured values (schema documented in DESIGN.md).
#include "bench/bench_common.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E4", "Table II — ML model sustainability");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);
  const core::Scenario det = core::detection_scenario(/*seed=*/2);

  struct PaperRow {
    double cpu, mem_kb, size_kb;
  };
  const PaperRow paper[] = {{65.46, 98.07, 712.30}, {67.88, 86.83, 11.20},
                            {65.94, 275.85, 736.30}};

  std::printf("\n%-8s | %9s %9s | %11s %11s | %11s %11s\n", "model", "cpu% (p)",
              "cpu% (m)", "mem KB (p)", "mem KB (m)", "size KB (p)", "size KB (m)");
  double cpu_measured[3];
  double mem_measured[3];
  double size_measured[3];
  auto& registry = obs::MetricsRegistry::global();
  for (std::size_t i = 0; i < 3; ++i) {
    const char* name = bench::kModelNames[i];
    const core::DetectionResult result = core::run_detection(det, models.get(name));
    cpu_measured[i] = result.summary.cpu_percent;
    mem_measured[i] = result.summary.memory_kb;
    size_measured[i] = result.model_size_kb;
    std::printf("%-8s | %9.2f %9.2f | %11.2f %11.2f | %11.2f %11.2f\n", name,
                paper[i].cpu, cpu_measured[i], paper[i].mem_kb, mem_measured[i],
                paper[i].size_kb, size_measured[i]);
    const std::string prefix = std::string{"bench.e4."} + name;
    registry.gauge(prefix + ".cpu_percent").set(cpu_measured[i]);
    registry.gauge(prefix + ".memory_kb").set(mem_measured[i]);
    registry.gauge(prefix + ".model_size_kb").set(size_measured[i]);
    registry.gauge(prefix + ".avg_window_accuracy").set(result.summary.average_accuracy);
  }

  const bool cpu_flat = cpu_measured[0] > 30 && cpu_measured[1] > 30 &&
                        cpu_measured[2] > 30;
  const bool cnn_mem_largest =
      mem_measured[2] > mem_measured[0] && mem_measured[2] > mem_measured[1];
  const bool kmeans_tiny = size_measured[1] * 10 < size_measured[0] &&
                           size_measured[1] * 10 < size_measured[2];
  std::printf("\nshape checks:\n");
  std::printf("  CPU elevated for all models (feature computation): %s\n",
              cpu_flat ? "PASS" : "CHECK");
  std::printf("  CNN has the largest detection memory:              %s\n",
              cnn_mem_largest ? "PASS" : "CHECK");
  std::printf("  K-Means model is orders of magnitude smaller:      %s\n",
              kmeans_tiny ? "PASS" : "CHECK");

  if (obs::write_json_snapshot_file(registry, "BENCH_E4.json")) {
    std::printf("\nmetrics artifact written to BENCH_E4.json\n");
  } else {
    std::printf("\nWARNING: could not write BENCH_E4.json\n");
  }
  return 0;
}
