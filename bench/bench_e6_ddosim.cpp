// E6 — DDoSim substrate behaviours (§III-A / Fig. 1).
//
// DDoSim's evaluation axes: target-server degradation vs. bot count,
// device churn, and attack duration. The testbed must show the same
// monotone shapes: more bots -> less benign service; churn -> weaker
// attack (bots drop off); longer attacks -> longer degradation windows.
#include "bench/bench_common.hpp"

using namespace ddoshield;

namespace {

struct RunStats {
  std::size_t completions = 0;
  std::size_t infected = 0;
  double attack_uplink_mbps = 0.0;  // mean uplink rx rate during the attack
};

// Device count stays fixed (benign load constant); `bots` controls how
// many devices still carry a factory credential and join the botnet.
RunStats run_campaign(std::size_t bots, double churn_rate, double attack_seconds,
                      double pps_per_bot) {
  constexpr std::size_t kDevices = 16;
  core::Scenario s;
  s.seed = 42;
  s.device_count = kDevices;
  s.vulnerable_fraction = static_cast<double>(bots) / static_cast<double>(kDevices);
  s.duration = util::SimTime::seconds(45);
  s.infection_start = util::SimTime::seconds(1);
  s.churn.events_per_device_per_second = churn_rate;
  s.churn.down_time = util::SimTime::seconds(5);
  core::AttackBurst burst;
  burst.start = util::SimTime::seconds(15);
  burst.type = botnet::AttackType::kSynFlood;
  burst.duration = util::SimTime::from_seconds(attack_seconds);
  burst.packets_per_second_per_bot = pps_per_bot;
  burst.spoof_sources = true;
  s.attacks.push_back(burst);

  core::Testbed tb{s};
  tb.deploy();
  tb.sample_throughput_every(util::SimTime::seconds(1));
  tb.run();

  RunStats out;
  out.completions = tb.benign_completions();
  out.infected = tb.infected_devices();
  double sum = 0.0;
  int n = 0;
  for (const auto& sample : tb.throughput_series()) {
    const double t = sample.at.to_seconds();
    if (t > 15.0 && t <= 15.0 + attack_seconds) {
      sum += sample.uplink_rx_bps;
      ++n;
    }
  }
  out.attack_uplink_mbps = n ? sum / n / 1e6 : 0.0;
  return out;
}

}  // namespace

int main() {
  bench::banner("E6", "DDoSim substrate: bots / churn / duration sweeps");

  std::printf("\n--- benign service vs. bot count (16 devices, 20 s SYN flood @2000 pps/bot) ---\n");
  std::printf("%6s %12s %14s %18s\n", "bots", "infected", "completions", "uplink Mbit/s");
  std::size_t prev_completions = 0;
  bool monotone = true;
  bool first = true;
  for (std::size_t bots : {0, 2, 4, 8, 16}) {
    const RunStats r = run_campaign(bots, 0.0, 20.0, 2000.0);
    std::printf("%6zu %12zu %14zu %18.2f\n", bots, r.infected, r.completions,
                r.attack_uplink_mbps);
    if (!first && r.completions > prev_completions + prev_completions / 4) monotone = false;
    prev_completions = r.completions;
    first = false;
  }
  std::printf("shape check: benign completions degrade with bot count: %s\n",
              monotone ? "PASS" : "CHECK");

  std::printf("\n--- attack intensity vs. churn (16 bots) ---\n");
  std::printf("%14s %14s %18s\n", "churn (ev/dev/s)", "completions", "uplink Mbit/s");
  double prev_uplink = 0.0;
  bool churn_weakens = true;
  first = true;
  for (double churn : {0.0, 0.02, 0.08}) {
    const RunStats r = run_campaign(16, churn, 20.0, 2000.0);
    std::printf("%14.2f %14zu %18.2f\n", churn, r.completions, r.attack_uplink_mbps);
    if (!first && r.attack_uplink_mbps > prev_uplink * 1.15) churn_weakens = false;
    prev_uplink = r.attack_uplink_mbps;
    first = false;
  }
  std::printf("shape check: churn weakens the delivered attack: %s\n",
              churn_weakens ? "PASS" : "CHECK");

  std::printf("\n--- benign service vs. attack duration (16 bots) ---\n");
  std::printf("%14s %14s\n", "duration (s)", "completions");
  prev_completions = 0;
  bool longer_hurts = true;
  first = true;
  for (double dur : {5.0, 10.0, 20.0, 28.0}) {
    const RunStats r = run_campaign(16, 0.0, dur, 2000.0);
    std::printf("%14.0f %14zu\n", dur, r.completions);
    if (!first && r.completions > prev_completions + prev_completions / 4) longer_hurts = false;
    prev_completions = r.completions;
    first = false;
  }
  std::printf("shape check: longer attacks cost more benign service: %s\n",
              longer_hurts ? "PASS" : "CHECK");
  return 0;
}
