// E5 — §IV-D per-second accuracy analysis.
//
// Paper: "the first and the last second of an attack duration report a
// drop in the model accuracy. The minimum registered is 35% for the
// K-Means model" — the boundary windows mix both classes while the
// window-level statistical features take a single (noisy) value.
// This bench prints the per-window accuracy series for each model and
// summarises boundary-window vs interior-window accuracy.
#include <algorithm>

#include "bench/bench_common.hpp"

using namespace ddoshield;

int main() {
  bench::banner("E5", "per-second accuracy timeline (paper §IV-D)");
  const core::GenerationResult generation = bench::canonical_generation();
  const core::TrainedModels models = bench::canonical_training(generation);
  const core::Scenario det = core::detection_scenario(/*seed=*/2);

  core::DetectionResult results[3];
  for (std::size_t i = 0; i < 3; ++i) {
    results[i] = core::run_detection(det, models.get(bench::kModelNames[i]));
  }

  // Mark attack boundary windows from the scenario schedule.
  auto window_kind = [&det](std::uint64_t w) -> char {
    const double t0 = static_cast<double>(w);
    for (const auto& a : det.attacks) {
      const double start = a.start.to_seconds();
      const double end = (a.start + a.duration).to_seconds();
      const bool covers_start = t0 <= start && start < t0 + 1.0;
      const bool covers_end = t0 <= end && end < t0 + 1.0;
      if (covers_start || covers_end) return 'B';              // boundary
      if (t0 >= start && t0 + 1.0 <= end) return 'A';          // inside attack
    }
    return '.';                                                // quiet
  };

  std::printf("\nwin  kind  mal%%    rf     kmeans  cnn\n");
  const auto& base = results[0].windows;
  for (std::size_t w = 0; w < base.size(); ++w) {
    const double mal_frac = base[w].packets == 0
                                ? 0.0
                                : 100.0 * static_cast<double>(base[w].truth_malicious) /
                                      static_cast<double>(base[w].packets);
    std::printf("%3llu   %c   %5.1f  %6.2f  %6.2f  %6.2f\n",
                static_cast<unsigned long long>(base[w].window_index),
                window_kind(base[w].window_index), mal_frac,
                100.0 * results[0].windows[w].accuracy,
                100.0 * results[1].windows[w].accuracy,
                100.0 * results[2].windows[w].accuracy);
  }

  std::printf("\n%-8s %14s %16s %12s\n", "model", "interior avg %", "boundary avg %",
              "minimum %");
  bool dips = true;
  for (std::size_t i = 0; i < 3; ++i) {
    double interior = 0.0, boundary = 0.0;
    int n_int = 0, n_bnd = 0;
    double minimum = 1.0;
    for (const auto& w : results[i].windows) {
      minimum = std::min(minimum, w.accuracy);
      if (window_kind(w.window_index) == 'B') {
        boundary += w.accuracy;
        ++n_bnd;
      } else {
        interior += w.accuracy;
        ++n_int;
      }
    }
    interior = n_int ? interior / n_int : 0.0;
    boundary = n_bnd ? boundary / n_bnd : 0.0;
    std::printf("%-8s %14.2f %16.2f %12.2f\n", bench::kModelNames[i], 100.0 * interior,
                100.0 * boundary, 100.0 * minimum);
    if (i == 1) dips = boundary < interior;  // K-Means boundary dip (paper's min 35%)
  }
  std::printf("\npaper reference: K-Means minimum 35%% at attack boundaries\n");
  std::printf("shape check: boundary windows dip below interior windows: %s\n",
              dips ? "PASS" : "CHECK");
  return 0;
}
