// Property-style parameterised sweeps over the network substrate: TCP
// bulk transfers across link regimes, flood emission across vectors and
// rates, and conservation invariants on links and nodes.
#include <gtest/gtest.h>

#include "botnet/floods.hpp"
#include "net/network.hpp"
#include "net/tcp.hpp"
#include "net/udp.hpp"
#include "util/rng.hpp"

namespace ddoshield::net {
namespace {

using util::Rng;
using util::SimTime;

// --------------------------------------------------------------------------
// TCP bulk transfers complete exactly across sizes and link regimes.
// --------------------------------------------------------------------------

struct TransferParams {
  std::uint32_t bytes;
  double rate_bps;
  std::int64_t delay_ms;
  std::uint32_t queue_bytes;
};

class TcpTransferSweep : public ::testing::TestWithParam<TransferParams> {};

TEST_P(TcpTransferSweep, DeliversExactByteCount) {
  const TransferParams p = GetParam();
  Network net;
  Node& c = net.add_node("c", Ipv4Address{10, 0, 0, 1});
  Node& s = net.add_node("s", Ipv4Address{10, 0, 0, 2});
  net.add_link(c, s,
               LinkConfig{.rate_bps = p.rate_bps,
                          .delay = SimTime::millis(p.delay_ms),
                          .queue_bytes = p.queue_bytes});
  c.set_default_route(0);
  s.set_default_route(0);

  auto listener = s.tcp().listen(80);
  std::uint64_t got = 0;
  std::uint64_t messages = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> conn) {
    conn->set_on_data([&](std::uint32_t n, const std::string& m) {
      got += n;
      messages += !m.empty();
    });
  });

  auto conn = c.tcp().connect(Endpoint{s.address(), 80}, TrafficOrigin::kFtp);
  conn->set_on_connected([&conn, &p] { conn->send(p.bytes, "payload"); });
  net.simulator().run_until(SimTime::seconds(300));

  EXPECT_EQ(got, p.bytes);
  EXPECT_EQ(messages, 1u);  // the app message arrives exactly once
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndLinks, TcpTransferSweep,
    ::testing::Values(
        TransferParams{1, 10e6, 1, 64 * 1024},            // single byte
        TransferParams{1460, 10e6, 1, 64 * 1024},         // exactly one MSS
        TransferParams{1461, 10e6, 1, 64 * 1024},         // one MSS + 1
        TransferParams{100'000, 10e6, 1, 64 * 1024},      // medium
        TransferParams{1'000'000, 100e6, 5, 256 * 1024},  // fast fat link
        TransferParams{500'000, 2e6, 20, 16 * 1024},      // slow lossy link
        TransferParams{250'000, 5e6, 50, 8 * 1024}));     // long RTT tiny queue

// --------------------------------------------------------------------------
// Flood vectors hit the victim at roughly the configured rate.
// --------------------------------------------------------------------------

struct FloodParams {
  botnet::AttackType type;
  double pps;
  bool spoof;
};

class FloodSweep : public ::testing::TestWithParam<FloodParams> {};

TEST_P(FloodSweep, EmissionRateAndLabels) {
  const FloodParams p = GetParam();
  Network net;
  Node& bot = net.add_node("bot", Ipv4Address{10, 0, 0, 1});
  Node& victim = net.add_node("victim", Ipv4Address{10, 0, 0, 2});
  net.add_link(bot, victim, LinkConfig{.rate_bps = 1e9, .queue_bytes = 1 << 22});
  bot.set_default_route(0);
  victim.set_default_route(0);

  std::uint64_t malicious_seen = 0;
  victim.add_tap([&](const Packet& pkt, TapDirection dir) {
    if (dir != TapDirection::kReceived) return;
    EXPECT_EQ(traffic_class_of(pkt.origin), TrafficClass::kMalicious);
    ++malicious_seen;
  });

  botnet::FloodEngine engine{bot, Rng{9}};
  botnet::FloodConfig cfg;
  cfg.type = p.type;
  cfg.target = victim.address();
  cfg.target_port = 80;
  cfg.packets_per_second = p.pps;
  cfg.duration = SimTime::seconds(4);
  cfg.spoof_sources = p.spoof;
  engine.start(cfg);
  net.simulator().run_until(SimTime::seconds(5));

  const double expected = p.pps * 4.0;
  EXPECT_GT(static_cast<double>(malicious_seen), expected * 0.8);
  EXPECT_LT(static_cast<double>(malicious_seen), expected * 1.2);
  EXPECT_EQ(engine.packets_emitted(), malicious_seen);  // nothing dropped here
}

INSTANTIATE_TEST_SUITE_P(
    VectorsAndRates, FloodSweep,
    ::testing::Values(FloodParams{botnet::AttackType::kSynFlood, 200, false},
                      FloodParams{botnet::AttackType::kSynFlood, 2000, true},
                      FloodParams{botnet::AttackType::kAckFlood, 500, false},
                      FloodParams{botnet::AttackType::kAckFlood, 1500, true},
                      FloodParams{botnet::AttackType::kUdpFlood, 300, false},
                      FloodParams{botnet::AttackType::kUdpFlood, 2500, false}));

// --------------------------------------------------------------------------
// Conservation invariants
// --------------------------------------------------------------------------

class LinkConservationSweep : public ::testing::TestWithParam<int> {};

TEST_P(LinkConservationSweep, TransmittedPlusDroppedEqualsOffered) {
  const int offered = GetParam();
  Network net;
  Node& a = net.add_node("a", Ipv4Address{10, 0, 0, 1});
  Node& b = net.add_node("b", Ipv4Address{10, 0, 0, 2});
  Link& link = net.add_link(a, b,
                            LinkConfig{.rate_bps = 1e6,  // slow: forces drops
                                       .delay = SimTime::millis(1),
                                       .queue_bytes = 8 * 1024});
  a.set_default_route(0);
  b.set_default_route(0);
  auto sink = b.udp().open(9);
  std::uint64_t received = 0;
  sink->set_receive_callback([&](const Packet&) { ++received; });

  auto client = a.udp().open();
  for (int i = 0; i < offered; ++i) {
    client->send_to(Endpoint{b.address(), 9}, 500, TrafficOrigin::kHttp);
  }
  net.simulator().run_all();

  const auto& stats = link.stats_from(a);
  EXPECT_EQ(stats.tx_packets + stats.dropped_packets, static_cast<std::uint64_t>(offered));
  EXPECT_EQ(received, stats.tx_packets);  // every transmitted packet arrives
}

INSTANTIATE_TEST_SUITE_P(OfferedLoads, LinkConservationSweep,
                         ::testing::Values(1, 10, 100, 500, 2000));

// --------------------------------------------------------------------------
// Determinism: identical seeds give identical traffic.
// --------------------------------------------------------------------------

TEST(DeterminismTest, FloodReplayIsBitIdentical) {
  auto run_once = [] {
    Network net;
    Node& bot = net.add_node("bot", Ipv4Address{10, 0, 0, 1});
    Node& victim = net.add_node("victim", Ipv4Address{10, 0, 0, 2});
    net.add_link(bot, victim, LinkConfig{});
    bot.set_default_route(0);
    victim.set_default_route(0);
    std::vector<std::uint64_t> trace;
    victim.add_tap([&](const Packet& pkt, TapDirection dir) {
      if (dir == TapDirection::kReceived) {
        trace.push_back((static_cast<std::uint64_t>(pkt.src_port) << 32) ^ pkt.seq);
      }
    });
    botnet::FloodEngine engine{bot, Rng{77}};
    botnet::FloodConfig cfg;
    cfg.type = botnet::AttackType::kSynFlood;
    cfg.target = victim.address();
    cfg.packets_per_second = 500;
    cfg.duration = SimTime::seconds(2);
    engine.start(cfg);
    net.simulator().run_until(SimTime::seconds(3));
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(DeterminismTest, TcpExchangeReplayIsIdentical) {
  auto run_once = [] {
    Network net;
    Node& c = net.add_node("c", Ipv4Address{10, 0, 0, 1});
    Node& s = net.add_node("s", Ipv4Address{10, 0, 0, 2});
    net.add_link(c, s, LinkConfig{});
    c.set_default_route(0);
    s.set_default_route(0);
    std::vector<std::uint64_t> trace;
    s.add_tap([&](const Packet& pkt, TapDirection) {
      trace.push_back(pkt.seq ^ (static_cast<std::uint64_t>(pkt.tcp_flags) << 40));
    });
    auto listener = s.tcp().listen(80);
    listener->set_on_accept([](std::shared_ptr<TcpConnection> conn) {
      conn->set_on_data([conn](std::uint32_t n, const std::string&) { conn->send(n); });
    });
    auto conn = c.tcp().connect(Endpoint{s.address(), 80}, TrafficOrigin::kHttp);
    conn->set_on_connected([&conn] { conn->send(50'000, "x"); });
    net.simulator().run_until(SimTime::seconds(10));
    return trace;
  };
  EXPECT_EQ(run_once(), run_once());
}

// --------------------------------------------------------------------------
// Many concurrent clients against one listener, across backlog sizes.
// --------------------------------------------------------------------------

class BacklogSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BacklogSweep, LegitimateClientsEventuallyAllConnect) {
  const std::size_t backlog = GetParam();
  Network net;
  Node& c = net.add_node("c", Ipv4Address{10, 0, 0, 1});
  Node& s = net.add_node("s", Ipv4Address{10, 0, 0, 2});
  net.add_link(c, s, LinkConfig{.rate_bps = 100e6, .queue_bytes = 1 << 20});
  c.set_default_route(0);
  s.set_default_route(0);

  auto listener = s.tcp().listen(80, backlog);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});

  constexpr int kClients = 30;
  int connected = 0;
  std::vector<std::shared_ptr<TcpConnection>> conns;
  for (int i = 0; i < kClients; ++i) {
    auto conn = c.tcp().connect(Endpoint{s.address(), 80}, TrafficOrigin::kHttp);
    conn->set_on_connected([&connected] { ++connected; });
    conns.push_back(std::move(conn));
  }
  net.simulator().run_until(SimTime::seconds(30));
  // Handshakes complete fast, freeing backlog slots; each SYN retry wave
  // admits ~backlog clients and a client retries 4 times, so a backlog of
  // b can admit about 5*b of a simultaneous burst before retries exhaust.
  if (backlog * 5 >= static_cast<std::size_t>(kClients)) {
    EXPECT_EQ(connected, kClients);
    EXPECT_EQ(listener->accepted(), static_cast<std::uint64_t>(kClients));
  } else {
    EXPECT_GE(connected, static_cast<int>(backlog * 4));
    EXPECT_LT(connected, kClients);  // a tiny backlog really does turn users away
    EXPECT_GT(listener->backlog_drops(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Backlogs, BacklogSweep, ::testing::Values(2u, 8u, 64u, 256u));

}  // namespace
}  // namespace ddoshield::net
