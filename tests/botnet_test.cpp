// Tests for the Mirai botnet emulation: credentials, telnet daemon,
// scanner/loader, C2, bot agents, and the three flood vectors.
#include <gtest/gtest.h>

#include "botnet/bot.hpp"
#include "botnet/c2.hpp"
#include "botnet/credentials.hpp"
#include "botnet/floods.hpp"
#include "botnet/scanner.hpp"
#include "botnet/telnet_service.hpp"
#include "container/runtime.hpp"
#include "net/network.hpp"
#include "net/udp.hpp"

namespace ddoshield::botnet {
namespace {

using util::Rng;
using util::SimTime;

// --------------------------------------------------------------------------
// Credentials
// --------------------------------------------------------------------------

TEST(CredentialsTest, DictionaryIsNonTrivialAndStable) {
  EXPECT_GE(credential_dictionary_size(), 32u);
  EXPECT_EQ(credential_at(0), (Credential{"root", "xc3511"}));  // Mirai's #1
  EXPECT_EQ(default_credential_dictionary().size(), credential_dictionary_size());
  EXPECT_THROW(credential_at(credential_dictionary_size()), std::out_of_range);
}

TEST(CredentialsTest, EntriesAreUnique) {
  const auto dict = default_credential_dictionary();
  for (std::size_t i = 0; i < dict.size(); ++i) {
    for (std::size_t j = i + 1; j < dict.size(); ++j) {
      EXPECT_FALSE(dict[i] == dict[j]) << "duplicate at " << i << "," << j;
    }
  }
}

// --------------------------------------------------------------------------
// Attack types
// --------------------------------------------------------------------------

TEST(AttackTypeTest, NamesRoundTrip) {
  for (auto t : {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood}) {
    EXPECT_EQ(attack_type_from_string(to_string(t)), t);
  }
  EXPECT_THROW(attack_type_from_string("icmp"), std::invalid_argument);
}

TEST(AttackTypeTest, OriginsAreMalicious) {
  for (auto t : {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood}) {
    EXPECT_EQ(net::traffic_class_of(origin_of(t)), net::TrafficClass::kMalicious);
  }
}

// --------------------------------------------------------------------------
// C2 command wire format
// --------------------------------------------------------------------------

TEST(C2CommandTest, EncodeDecodeRoundTrip) {
  C2Command cmd;
  cmd.type = AttackType::kAckFlood;
  cmd.target = net::Ipv4Address{10, 0, 1, 1};
  cmd.target_port = 8080;
  cmd.duration = SimTime::millis(12500);
  cmd.packets_per_second = 750.5;
  cmd.spoof_sources = true;

  const C2Command decoded = C2Command::decode(cmd.encode());
  EXPECT_EQ(decoded.type, cmd.type);
  EXPECT_EQ(decoded.target, cmd.target);
  EXPECT_EQ(decoded.target_port, cmd.target_port);
  EXPECT_EQ(decoded.duration, cmd.duration);
  EXPECT_DOUBLE_EQ(decoded.packets_per_second, cmd.packets_per_second);
  EXPECT_TRUE(decoded.spoof_sources);
}

TEST(C2CommandTest, DecodeRejectsGarbage) {
  EXPECT_THROW(C2Command::decode("PING"), std::invalid_argument);
  EXPECT_THROW(C2Command::decode("ATK"), std::invalid_argument);
  EXPECT_THROW(C2Command::decode("ATK xyz 10.0.0.1 80 1000 100 0"), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Fixture: attacker + victim device + target server in a star.
// --------------------------------------------------------------------------

struct BotnetFixture : ::testing::Test {
  net::Network net;
  net::StarTopology topo;
  container::ContainerRuntime runtime;
  container::Container* attacker_box = nullptr;
  container::Container* tserver_box = nullptr;
  std::vector<container::Container*> dev_boxes;

  void SetUp() override {
    topo = net::build_star_topology(net, net::StarTopologyConfig{.device_count = 3});
    runtime.register_image({"test/box", "1", nullptr});
    attacker_box = &runtime.create("attacker", "test/box:1");
    attacker_box->attach_node(*topo.attacker);
    attacker_box->start();
    tserver_box = &runtime.create("tserver", "test/box:1");
    tserver_box->attach_node(*topo.tserver);
    tserver_box->start();
    for (std::size_t i = 0; i < topo.devices.size(); ++i) {
      auto& box = runtime.create("dev" + std::to_string(i), "test/box:1");
      box.attach_node(*topo.devices[i]);
      box.start();
      dev_boxes.push_back(&box);
    }
  }
};

// --------------------------------------------------------------------------
// Telnet service
// --------------------------------------------------------------------------

TEST_F(BotnetFixture, TelnetAcceptsCorrectCredentialOnly) {
  TelnetServiceConfig cfg;
  cfg.credential = Credential{"root", "admin"};
  bool infected = false;
  TelnetService telnet{*dev_boxes[0], Rng{1}, cfg,
                       [&](const std::string&) { infected = true; }};
  telnet.start();

  // Manual session from the attacker: wrong then right credentials.
  auto conn = topo.attacker->tcp().connect(
      net::Endpoint{topo.devices[0]->address(), 23}, net::TrafficOrigin::kMiraiScan);
  std::vector<std::string> replies;
  conn->set_on_data([&](std::uint32_t, const std::string& msg) {
    replies.push_back(msg);
    if (msg == "FAIL") conn->send(48, "LOGIN root admin");
  });
  conn->set_on_connected([&] { conn->send(48, "LOGIN root wrong"); });

  net.simulator().run_until(SimTime::seconds(5));
  ASSERT_GE(replies.size(), 2u);
  EXPECT_EQ(replies[0], "FAIL");
  EXPECT_EQ(replies[1], "OK shell");
  EXPECT_EQ(telnet.login_attempts(), 2u);
  EXPECT_EQ(telnet.successful_logins(), 1u);
  EXPECT_FALSE(infected);  // no INSTALL yet
}

TEST_F(BotnetFixture, TelnetInstallRequiresAuthentication) {
  TelnetServiceConfig cfg;
  cfg.credential = Credential{"root", "admin"};
  std::string c2_seen;
  TelnetService telnet{*dev_boxes[0], Rng{1}, cfg,
                       [&](const std::string& c2) { c2_seen = c2; }};
  telnet.start();

  auto conn = topo.attacker->tcp().connect(
      net::Endpoint{topo.devices[0]->address(), 23}, net::TrafficOrigin::kMiraiScan);
  conn->set_on_connected([&] { conn->send(64, "INSTALL 10.0.0.2"); });
  net.simulator().run_until(SimTime::seconds(3));
  EXPECT_FALSE(telnet.infected());

  auto conn2 = topo.attacker->tcp().connect(
      net::Endpoint{topo.devices[0]->address(), 23}, net::TrafficOrigin::kMiraiScan);
  conn2->set_on_data([&](std::uint32_t, const std::string& msg) {
    if (msg.rfind("OK", 0) == 0) conn2->send(64, "INSTALL 10.0.0.2");
  });
  conn2->set_on_connected([&] { conn2->send(48, "LOGIN root admin"); });
  net.simulator().run_until(SimTime::seconds(6));
  EXPECT_TRUE(telnet.infected());
  EXPECT_EQ(c2_seen, "10.0.0.2");
}

TEST_F(BotnetFixture, TelnetDropsSessionAfterTooManyFailures) {
  TelnetServiceConfig cfg;
  cfg.credential = Credential{"root", "admin"};
  cfg.max_attempts_per_session = 2;
  TelnetService telnet{*dev_boxes[0], Rng{1}, cfg, nullptr};
  telnet.start();

  bool closed = false;
  auto conn = topo.attacker->tcp().connect(
      net::Endpoint{topo.devices[0]->address(), 23}, net::TrafficOrigin::kMiraiScan);
  conn->set_on_closed([&](net::TcpCloseReason r) {
    closed = r == net::TcpCloseReason::kReset;
  });
  conn->set_on_data([&](std::uint32_t, const std::string& msg) {
    if (msg == "FAIL" && conn->state() == net::TcpState::kEstablished) {
      conn->send(48, "LOGIN root nope2");
    }
  });
  conn->set_on_connected([&] { conn->send(48, "LOGIN root nope1"); });
  net.simulator().run_until(SimTime::seconds(5));
  EXPECT_TRUE(closed);
}

TEST_F(BotnetFixture, PatchedDeviceNeverAuthenticates) {
  TelnetServiceConfig cfg;  // credential = nullopt -> patched
  TelnetService telnet{*dev_boxes[0], Rng{1}, cfg, nullptr};
  telnet.start();

  ScannerConfig scfg;
  scfg.targets = {topo.devices[0]->address()};
  scfg.guess_interval = SimTime::millis(10);
  bool found = false;
  Scanner scanner{*attacker_box, Rng{2}, scfg, [&](const ScanResult&) { found = true; }};
  scanner.start();
  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_FALSE(found);
  EXPECT_TRUE(scanner.finished());
  EXPECT_EQ(scanner.hosts_compromised(), 0u);
  EXPECT_GT(telnet.login_attempts(), 4u);  // brute force was attempted
}

// --------------------------------------------------------------------------
// Scanner + Loader end to end
// --------------------------------------------------------------------------

TEST_F(BotnetFixture, ScannerFindsDictionaryCredentials) {
  std::vector<std::unique_ptr<TelnetService>> services;
  for (std::size_t i = 0; i < topo.devices.size(); ++i) {
    TelnetServiceConfig cfg;
    cfg.credential = credential_at(i);  // first entries of the dictionary
    services.push_back(
        std::make_unique<TelnetService>(*dev_boxes[i], Rng{10 + i}, cfg, nullptr));
    services.back()->start();
  }

  ScannerConfig scfg;
  for (auto* dev : topo.devices) scfg.targets.push_back(dev->address());
  scfg.guess_interval = SimTime::millis(20);
  std::vector<ScanResult> found;
  bool done = false;
  Scanner scanner{*attacker_box, Rng{2}, scfg,
                  [&](const ScanResult& r) { found.push_back(r); }, [&] { done = true; }};
  scanner.start();

  net.simulator().run_until(SimTime::seconds(120));
  EXPECT_TRUE(done);
  EXPECT_EQ(found.size(), 3u);
  EXPECT_EQ(scanner.hosts_compromised(), 3u);
  EXPECT_EQ(scanner.hosts_scanned(), 3u);
  for (const auto& r : found) {
    // The reported credential must actually be the device's.
    bool matched = false;
    for (std::size_t i = 0; i < topo.devices.size(); ++i) {
      if (topo.devices[i]->address() == r.address) {
        matched = r.credential == credential_at(i);
      }
    }
    EXPECT_TRUE(matched);
  }
}

TEST_F(BotnetFixture, LoaderInstallsAfterScan) {
  TelnetServiceConfig cfg;
  cfg.credential = credential_at(2);
  bool infected = false;
  TelnetService telnet{*dev_boxes[0], Rng{1}, cfg,
                       [&](const std::string&) { infected = true; }};
  telnet.start();

  LoaderConfig lcfg;
  lcfg.c2_address = topo.attacker->address().to_string();
  std::vector<net::Ipv4Address> installed;
  Loader loader{*attacker_box, Rng{3}, lcfg,
                [&](net::Ipv4Address a) { installed.push_back(a); }};
  loader.start();

  ScannerConfig scfg;
  scfg.targets = {topo.devices[0]->address()};
  scfg.guess_interval = SimTime::millis(20);
  Scanner scanner{*attacker_box, Rng{2}, scfg,
                  [&](const ScanResult& r) { loader.infect(r); }};
  scanner.start();

  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_TRUE(infected);
  ASSERT_EQ(installed.size(), 1u);
  EXPECT_EQ(installed[0], topo.devices[0]->address());
  EXPECT_EQ(loader.installs_succeeded(), 1u);
}

// --------------------------------------------------------------------------
// C2 + bots + floods
// --------------------------------------------------------------------------

struct BotArmyFixture : BotnetFixture {
  std::unique_ptr<C2Server> c2;
  std::vector<std::unique_ptr<BotAgent>> bots;

  void start_army() {
    c2 = std::make_unique<C2Server>(*attacker_box, Rng{7});
    c2->start();
    for (std::size_t i = 0; i < dev_boxes.size(); ++i) {
      BotAgentConfig cfg;
      cfg.c2 = net::Endpoint{topo.attacker->address(), 48101};
      bots.push_back(std::make_unique<BotAgent>(*dev_boxes[i], Rng{20 + i}, cfg));
      bots.back()->start();
    }
    net.simulator().run_until(SimTime::seconds(5));
  }
};

TEST_F(BotArmyFixture, BotsRegisterWithC2) {
  start_army();
  EXPECT_EQ(c2->connected_bots(), 3u);
  EXPECT_EQ(c2->total_registrations(), 3u);
  for (const auto& bot : bots) EXPECT_TRUE(bot->connected());
  const auto names = c2->bot_names();
  EXPECT_EQ(names.size(), 3u);
}

TEST_F(BotArmyFixture, AttackCommandReachesAllBots) {
  start_army();
  C2Command cmd;
  cmd.type = AttackType::kSynFlood;
  cmd.target = topo.tserver->address();
  cmd.target_port = 80;
  cmd.duration = SimTime::seconds(3);
  cmd.packets_per_second = 200;
  EXPECT_EQ(c2->launch_attack(cmd), 3u);
  net.simulator().run_until(SimTime::seconds(12));  // 5 s in + 3 s attack + slack
  for (const auto& bot : bots) {
    EXPECT_EQ(bot->attacks_executed(), 1u);
    EXPECT_GT(bot->flood_packets_sent(), 200u);
    EXPECT_FALSE(bot->attacking());  // duration elapsed
  }
}

TEST_F(BotArmyFixture, StopCommandHaltsFlood) {
  start_army();
  C2Command cmd;
  cmd.type = AttackType::kUdpFlood;
  cmd.target = topo.tserver->address();
  cmd.duration = SimTime::seconds(60);
  cmd.packets_per_second = 500;
  c2->launch_attack(cmd);
  net.simulator().run_until(SimTime::seconds(7));
  for (const auto& bot : bots) EXPECT_TRUE(bot->attacking());
  c2->stop_attack();
  net.simulator().run_until(SimTime::seconds(9));
  for (const auto& bot : bots) EXPECT_FALSE(bot->attacking());
}

TEST_F(BotArmyFixture, BotsReconnectAfterChurn) {
  start_army();
  // Take device 0's access link down; its C2 connection dies once the
  // heartbeat retransmissions exhaust (~35 s with the default timers).
  net::Link& link = topo.devices[0]->link_at(0);
  link.set_up(false);
  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_FALSE(bots[0]->connected());
  EXPECT_EQ(c2->connected_bots(), 2u);

  link.set_up(true);
  net.simulator().run_until(SimTime::seconds(90));
  EXPECT_TRUE(bots[0]->connected());
  EXPECT_EQ(c2->connected_bots(), 3u);
}

TEST_F(BotArmyFixture, SynFloodExhaustsListenerBacklog) {
  start_army();
  auto listener = topo.tserver->tcp().listen(80, 64, net::TrafficOrigin::kHttp);
  listener->set_on_accept([](std::shared_ptr<net::TcpConnection>) {});

  C2Command cmd;
  cmd.type = AttackType::kSynFlood;
  cmd.target = topo.tserver->address();
  cmd.target_port = 80;
  cmd.duration = SimTime::seconds(10);
  cmd.packets_per_second = 400;
  cmd.spoof_sources = true;  // never completes handshakes
  c2->launch_attack(cmd);

  net.simulator().run_until(SimTime::seconds(8));
  EXPECT_EQ(listener->half_open(), 64u);       // backlog saturated
  EXPECT_GT(listener->backlog_drops(), 100u);  // excess SYNs rejected
}

TEST_F(BotArmyFixture, AckFloodProvokesRsts) {
  start_army();
  C2Command cmd;
  cmd.type = AttackType::kAckFlood;
  cmd.target = topo.tserver->address();
  cmd.target_port = 80;
  cmd.duration = SimTime::seconds(5);
  cmd.packets_per_second = 300;
  c2->launch_attack(cmd);
  net.simulator().run_until(SimTime::seconds(8));
  EXPECT_GT(topo.tserver->tcp().rst_sent(), 500u);
}

TEST_F(BotArmyFixture, UdpFloodCountsAsNoSocketDrops) {
  start_army();
  C2Command cmd;
  cmd.type = AttackType::kUdpFlood;
  cmd.target = topo.tserver->address();
  cmd.target_port = 9000;
  cmd.duration = SimTime::seconds(5);
  cmd.packets_per_second = 300;
  c2->launch_attack(cmd);
  net.simulator().run_until(SimTime::seconds(8));
  EXPECT_GT(topo.tserver->udp().dropped_no_socket(), 500u);
}

// --------------------------------------------------------------------------
// FloodEngine packet shapes
// --------------------------------------------------------------------------

struct FloodShapeFixture : BotnetFixture {
  std::vector<net::Packet> seen;

  void run_flood(AttackType type, bool spoof = false) {
    topo.tserver->add_tap([this](const net::Packet& p, net::TapDirection d) {
      if (d == net::TapDirection::kReceived) seen.push_back(p);
    });
    FloodEngine engine{*topo.devices[0], Rng{5}};
    FloodConfig cfg;
    cfg.type = type;
    cfg.target = topo.tserver->address();
    cfg.target_port = 80;
    cfg.packets_per_second = 500;
    cfg.duration = SimTime::seconds(2);
    cfg.spoof_sources = spoof;
    bool done = false;
    engine.start(cfg, [&] { done = true; });
    net.simulator().run_until(SimTime::seconds(3));
    EXPECT_TRUE(done);
    EXPECT_GT(seen.size(), 400u);
  }
};

TEST_F(FloodShapeFixture, SynFloodPackets) {
  run_flood(AttackType::kSynFlood);
  std::set<std::uint16_t> src_ports;
  std::set<std::uint32_t> seqs;
  for (const auto& p : seen) {
    ASSERT_EQ(p.proto, net::IpProto::kTcp);
    EXPECT_EQ(p.tcp_flags, net::TcpFlags::kSyn);
    EXPECT_EQ(p.dst_port, 80);
    EXPECT_EQ(p.payload_bytes, 0u);
    EXPECT_EQ(p.origin, net::TrafficOrigin::kMiraiSynFlood);
    src_ports.insert(p.src_port);
    seqs.insert(p.seq);
  }
  // Randomised source ports and sequence numbers.
  EXPECT_GT(src_ports.size(), seen.size() / 4);
  EXPECT_GT(seqs.size(), seen.size() * 9 / 10);
}

TEST_F(FloodShapeFixture, AckFloodPackets) {
  run_flood(AttackType::kAckFlood);
  for (const auto& p : seen) {
    ASSERT_EQ(p.proto, net::IpProto::kTcp);
    EXPECT_TRUE(p.has_flag(net::TcpFlags::kAck));
    EXPECT_FALSE(p.has_flag(net::TcpFlags::kSyn));
    EXPECT_GT(p.payload_bytes, 0u);  // Mirai-style payloaded ACKs
    EXPECT_EQ(p.origin, net::TrafficOrigin::kMiraiAckFlood);
  }
}

TEST_F(FloodShapeFixture, UdpFloodSpraysPorts) {
  run_flood(AttackType::kUdpFlood);
  std::set<std::uint16_t> dst_ports;
  for (const auto& p : seen) {
    ASSERT_EQ(p.proto, net::IpProto::kUdp);
    EXPECT_GE(p.dst_port, 80);
    EXPECT_GT(p.payload_bytes, 0u);
    dst_ports.insert(p.dst_port);
  }
  EXPECT_GT(dst_ports.size(), 50u);
}

TEST_F(FloodShapeFixture, SpoofedFloodRandomisesSources) {
  run_flood(AttackType::kSynFlood, /*spoof=*/true);
  std::set<std::uint32_t> sources;
  for (const auto& p : seen) sources.insert(p.src.bits());
  EXPECT_GT(sources.size(), seen.size() * 9 / 10);
}

TEST_F(FloodShapeFixture, FloodRateRoughlyMatchesConfig) {
  run_flood(AttackType::kUdpFlood);
  // 500 pps for 2 s with Poisson gaps: expect within ±25%.
  EXPECT_GT(seen.size(), 750u);
  EXPECT_LT(seen.size(), 1250u);
}

TEST(FloodEngineTest, RejectsNonPositiveRate) {
  net::Network net;
  net::Node& n = net.add_node("n", net::Ipv4Address{1, 1, 1, 1});
  FloodEngine engine{n, Rng{1}};
  FloodConfig cfg;
  cfg.packets_per_second = 0;
  EXPECT_THROW(engine.start(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace ddoshield::botnet
