// Tests for the MQTT-style telemetry extension (§V benign diversity).
#include <gtest/gtest.h>

#include "apps/telemetry.hpp"
#include "container/runtime.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "net/network.hpp"

namespace ddoshield::apps {
namespace {

using util::Rng;
using util::SimTime;

struct TelemetryFixture : ::testing::Test {
  net::Network net;
  net::Node* broker_node = nullptr;
  net::Node* sensor_node = nullptr;
  container::ContainerRuntime runtime;
  container::Container* broker_box = nullptr;
  container::Container* sensor_box = nullptr;

  void SetUp() override {
    broker_node = &net.add_node("broker", net::Ipv4Address{10, 0, 0, 1});
    sensor_node = &net.add_node("sensor", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*broker_node, *sensor_node, net::LinkConfig{});
    broker_node->set_default_route(0);
    sensor_node->set_default_route(0);
    runtime.register_image({"t/box", "1", nullptr});
    broker_box = &runtime.create("broker", "t/box:1");
    broker_box->attach_node(*broker_node);
    broker_box->start();
    sensor_box = &runtime.create("sensor", "t/box:1");
    sensor_box->attach_node(*sensor_node);
    sensor_box->start();
  }
};

TEST_F(TelemetryFixture, SensorPublishesAndGetsAcks) {
  TelemetryBroker broker{*broker_box, Rng{1}};
  broker.start();
  TelemetrySensorConfig cfg;
  cfg.broker = {broker_node->address(), 1883};
  cfg.publish_rate = 2.0;
  TelemetrySensor sensor{*sensor_box, Rng{2}, cfg};
  sensor.start();

  net.simulator().run_until(SimTime::seconds(20));
  EXPECT_TRUE(sensor.connected());
  EXPECT_GT(sensor.publishes_sent(), 20u);
  // The last publish/ack may still be in flight at the cut-off.
  EXPECT_GE(sensor.publishes_sent(), broker.publishes_received());
  EXPECT_LE(sensor.publishes_sent() - broker.publishes_received(), 1u);
  EXPECT_GE(broker.publishes_received(), sensor.publishes_acked());
  EXPECT_LE(broker.publishes_received() - sensor.publishes_acked(), 1u);
  EXPECT_EQ(broker.sessions_accepted(), 1u);
  EXPECT_EQ(sensor.reconnects(), 0u);
}

TEST_F(TelemetryFixture, SensorKeepsAliveWhenIdle) {
  TelemetryBroker broker{*broker_box, Rng{1}};
  broker.start();
  TelemetrySensorConfig cfg;
  cfg.broker = {broker_node->address(), 1883};
  cfg.publish_rate = 0.001;  // effectively never publishes
  cfg.keepalive = SimTime::seconds(5);
  TelemetrySensor sensor{*sensor_box, Rng{2}, cfg};
  sensor.start();

  net.simulator().run_until(SimTime::seconds(60));
  // The connection survives pure idleness through PINGREQ/PINGRESP.
  EXPECT_TRUE(sensor.connected());
  EXPECT_EQ(sensor.reconnects(), 0u);
}

TEST_F(TelemetryFixture, SensorReconnectsAfterOutage) {
  TelemetryBroker broker{*broker_box, Rng{1}};
  broker.start();
  TelemetrySensorConfig cfg;
  cfg.broker = {broker_node->address(), 1883};
  cfg.publish_rate = 2.0;
  TelemetrySensor sensor{*sensor_box, Rng{2}, cfg};
  sensor.start();

  net.simulator().run_until(SimTime::seconds(5));
  ASSERT_TRUE(sensor.connected());
  net::Link& link = sensor_node->link_at(0);
  link.set_up(false);
  net.simulator().run_until(SimTime::seconds(45));  // retransmissions exhaust
  EXPECT_FALSE(sensor.connected());
  link.set_up(true);
  net.simulator().run_until(SimTime::seconds(80));
  EXPECT_TRUE(sensor.connected());
  EXPECT_GT(sensor.reconnects(), 0u);
}

TEST(TelemetryScenarioTest, TestbedWiresTelemetryWhenEnabled) {
  core::Scenario s;
  s.seed = 5;
  s.device_count = 3;
  s.duration = SimTime::seconds(15);
  s.benign.telemetry_publish_rate = 1.0;
  core::Testbed tb{s};
  tb.deploy();
  tb.record_dataset();
  tb.run();
  ASSERT_NE(tb.telemetry_broker(), nullptr);
  EXPECT_GT(tb.telemetry_broker()->publishes_received(), 20u);
  EXPECT_EQ(tb.telemetry_broker()->sessions_accepted(), 3u);
}

TEST(TelemetryScenarioTest, DisabledByDefaultInCanonicalScenarios) {
  EXPECT_EQ(core::training_scenario().benign.telemetry_publish_rate, 0.0);
  EXPECT_EQ(core::detection_scenario().benign.telemetry_publish_rate, 0.0);
  core::Scenario s;
  s.device_count = 2;
  s.duration = SimTime::seconds(5);
  core::Testbed tb{s};
  tb.deploy();
  EXPECT_EQ(tb.telemetry_broker(), nullptr);
}

}  // namespace
}  // namespace ddoshield::apps
