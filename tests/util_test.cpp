// Unit tests for src/util: time, RNG, statistics, byte buffers.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/byte_buffer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

namespace ddoshield::util {
namespace {

// --------------------------------------------------------------------------
// SimTime
// --------------------------------------------------------------------------

TEST(SimTimeTest, FactoryUnitsAgree) {
  EXPECT_EQ(SimTime::seconds(1), SimTime::millis(1000));
  EXPECT_EQ(SimTime::millis(1), SimTime::micros(1000));
  EXPECT_EQ(SimTime::micros(1), SimTime::nanos(1000));
}

TEST(SimTimeTest, FromSecondsRoundsToNearestNanosecond) {
  EXPECT_EQ(SimTime::from_seconds(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_seconds(0.0000000014).ns(), 1);
  EXPECT_EQ(SimTime::from_seconds(-2.0).ns(), -2'000'000'000);
}

TEST(SimTimeTest, ArithmeticAndComparison) {
  const auto a = SimTime::millis(300);
  const auto b = SimTime::millis(200);
  EXPECT_EQ((a + b), SimTime::millis(500));
  EXPECT_EQ((a - b), SimTime::millis(100));
  EXPECT_EQ(a * 3, SimTime::millis(900));
  EXPECT_EQ(a / 3, SimTime::millis(100));
  EXPECT_LT(b, a);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_TRUE((b - a).is_negative());
}

TEST(SimTimeTest, ToSecondsRoundTrip) {
  const auto t = SimTime::micros(1'234'567);
  EXPECT_DOUBLE_EQ(t.to_seconds(), 1.234567);
  EXPECT_DOUBLE_EQ(t.to_millis(), 1234.567);
}

TEST(SimTimeTest, InterArrivalInvertsRate) {
  EXPECT_EQ(inter_arrival(200.0), SimTime::millis(5));
  EXPECT_THROW(inter_arrival(0.0), std::invalid_argument);
  EXPECT_THROW(inter_arrival(-1.0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// Rng
// --------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentOfDrawCount) {
  Rng parent1{7};
  Rng parent2{7};
  (void)parent2.next_u64();  // drawing from the parent must not change forks
  Rng f1 = parent1.fork("x");
  Rng f2 = parent2.fork("x");
  // fork() derives from captured state at construction; both parents were
  // seeded identically but parent2 advanced. Forks still derive from the
  // *state*, so these must differ... unless fork uses the original seed.
  // The contract we guarantee: forks of equal-state parents are equal,
  // and differently-tagged forks differ.
  Rng g1 = parent1.fork("x");
  EXPECT_EQ(f1.next_u64(), g1.next_u64());
  Rng h = parent1.fork("y");
  EXPECT_NE(parent1.fork("x").next_u64(), h.next_u64());
  (void)f2;
}

TEST(RngTest, UniformBounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(17);
    EXPECT_LT(v, 17u);
  }
  EXPECT_THROW(rng.uniform_u64(0), std::invalid_argument);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng{4};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(RngTest, NormalMomentsRoughlyCorrect) {
  Rng rng{5};
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng{6};
  OnlineStats s;
  for (int i = 0; i < 200000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, ParetoIsBoundedBelowByScale) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  EXPECT_THROW(rng.pareto(0.0, 1.0), std::invalid_argument);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng{8};
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng{9};
  OnlineStats small, large;
  for (int i = 0; i < 50000; ++i) small.add(rng.poisson(3.0));
  for (int i = 0; i < 50000; ++i) large.add(rng.poisson(100.0));
  EXPECT_NEAR(small.mean(), 3.0, 0.1);
  EXPECT_NEAR(large.mean(), 100.0, 0.5);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng{10};
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) ++counts[rng.weighted_index(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 40000.0, 0.75, 0.02);
  EXPECT_THROW(rng.weighted_index({}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(rng.weighted_index({-1.0, 2.0}), std::invalid_argument);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng{11};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// --------------------------------------------------------------------------
// OnlineStats
// --------------------------------------------------------------------------

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStatsTest, SingleSampleVarianceZero) {
  OnlineStats s;
  s.add(42.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 42.0);
}

TEST(OnlineStatsTest, ResetClears) {
  OnlineStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

// --------------------------------------------------------------------------
// FrequencyCounter
// --------------------------------------------------------------------------

TEST(FrequencyCounterTest, EntropyUniformIsLogN) {
  FrequencyCounter fc;
  for (std::uint64_t k = 0; k < 8; ++k) fc.add(k, 10);
  EXPECT_NEAR(fc.entropy(), 3.0, 1e-12);  // log2(8)
}

TEST(FrequencyCounterTest, EntropySingleKeyIsZero) {
  FrequencyCounter fc;
  fc.add(80, 1000);
  EXPECT_EQ(fc.entropy(), 0.0);
  EXPECT_EQ(fc.max_share(), 1.0);
}

TEST(FrequencyCounterTest, EmptyEntropyZero) {
  FrequencyCounter fc;
  EXPECT_EQ(fc.entropy(), 0.0);
  EXPECT_EQ(fc.max_share(), 0.0);
  EXPECT_EQ(fc.distinct(), 0u);
}

TEST(FrequencyCounterTest, SkewReducesEntropy) {
  FrequencyCounter uniform, skewed;
  for (std::uint64_t k = 0; k < 4; ++k) uniform.add(k, 25);
  skewed.add(0, 97);
  for (std::uint64_t k = 1; k < 4; ++k) skewed.add(k, 1);
  EXPECT_GT(uniform.entropy(), skewed.entropy());
  EXPECT_GT(skewed.max_share(), 0.9);
}

TEST(FrequencyCounterTest, CountsAndReset) {
  FrequencyCounter fc;
  fc.add(53);
  fc.add(53);
  fc.add(80);
  EXPECT_EQ(fc.count_of(53), 2u);
  EXPECT_EQ(fc.count_of(99), 0u);
  EXPECT_EQ(fc.total(), 3u);
  fc.reset();
  EXPECT_EQ(fc.total(), 0u);
}

// --------------------------------------------------------------------------
// Histogram
// --------------------------------------------------------------------------

TEST(HistogramTest, BinningAndClamping) {
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // clamps to bin 0
  h.add(100.0);  // clamps to bin 9
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[9], 2u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, QuantileOfUniformFill) {
  Histogram h{0.0, 100.0, 100};
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(HistogramTest, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

// --------------------------------------------------------------------------
// ByteWriter / ByteReader
// --------------------------------------------------------------------------

TEST(ByteBufferTest, RoundTripScalars) {
  ByteWriter w;
  w.put_u8(0xAB);
  w.put_u16(0xBEEF);
  w.put_u32(0xDEADBEEF);
  w.put_u64(0x0123456789ABCDEFULL);
  w.put_i64(-42);
  w.put_f64(3.14159);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.get_u8(), 0xAB);
  EXPECT_EQ(r.get_u16(), 0xBEEF);
  EXPECT_EQ(r.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.get_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.get_i64(), -42);
  EXPECT_DOUBLE_EQ(r.get_f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteBufferTest, RoundTripStringAndVector) {
  ByteWriter w;
  w.put_string("hello world");
  std::vector<double> xs{1.0, -2.5, 1e300};
  w.put_f64_span(xs);
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.get_string(), "hello world");
  EXPECT_EQ(r.get_f64_vector(), xs);
}

TEST(ByteBufferTest, TruncatedInputThrows) {
  ByteWriter w;
  w.put_u32(7);
  ByteReader r{w.bytes()};
  (void)r.get_u16();
  (void)r.get_u16();
  EXPECT_THROW(r.get_u8(), std::out_of_range);
}

TEST(ByteBufferTest, EmptyStringRoundTrip) {
  ByteWriter w;
  w.put_string("");
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.get_string(), "");
}

// --------------------------------------------------------------------------
// Logging / format_braces
// --------------------------------------------------------------------------

TEST(FormatBracesTest, SubstitutesInOrder) {
  EXPECT_EQ(format_braces("a={} b={}", 1, "two"), "a=1 b=two");
  EXPECT_EQ(format_braces("no placeholders"), "no placeholders");
}

TEST(FormatBracesTest, MoreArgsThanPlaceholdersIgnoresExtras) {
  EXPECT_EQ(format_braces("only {}", 1, 2, 3), "only 1");
  EXPECT_EQ(format_braces("none", 1, 2), "none");
  // Extra args must not eat the text after the last placeholder.
  EXPECT_EQ(format_braces("{} tail", 1, 2), "1 tail");
}

TEST(FormatBracesTest, FewerArgsThanPlaceholdersRendersLiterally) {
  EXPECT_EQ(format_braces("{} and {}", 7), "7 and {}");
  EXPECT_EQ(format_braces("{} {} {}"), "{} {} {}");
}

TEST(FormatBracesTest, EscapedBracesRenderLiterally) {
  EXPECT_EQ(format_braces("{{}}"), "{}");
  EXPECT_EQ(format_braces("{{}}", 1), "{}");  // escape is never a placeholder
  EXPECT_EQ(format_braces("a {{}} b {}", 1), "a {} b 1");
  EXPECT_EQ(format_braces("{} then {{}}", 1), "1 then {}");
  EXPECT_EQ(format_braces("{{}}{{}}", 9), "{}{}");
}

TEST(FormatBracesTest, LoneBracesPassThrough) {
  EXPECT_EQ(format_braces("json {\"k\": {}}", 1), "json {\"k\": 1}");
  EXPECT_EQ(format_braces("open { close }", 1), "open { close }");
}

TEST(LoggerTest, OffLevelDisablesEverything) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kTrace));
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  EXPECT_FALSE(logger.enabled(LogLevel::kOff));
  logger.set_level(saved);
}

TEST(LoggerTest, ThresholdGatesLowerLevels) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kDebug));
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(saved);
}

TEST(LoggerTest, LevelNamesArePrintable) {
  EXPECT_EQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_EQ(log_level_name(LogLevel::kError), "ERROR");
}

}  // namespace
}  // namespace ddoshield::util
