// Tests for the ML layer: containers, preprocessing, metrics, and the
// three classifiers (Random Forest, K-Means, CNN) on synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/classifier.hpp"
#include "ml/cnn.hpp"
#include "ml/decision_tree.hpp"
#include "ml/design_matrix.hpp"
#include "ml/kmeans.hpp"
#include "ml/metrics.hpp"
#include "ml/model_store.hpp"
#include "ml/preprocess.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {
namespace {

using util::Rng;

/// Two Gaussian blobs in `dims` dimensions, linearly separable when
/// `separation` is large relative to the unit blob stddev.
void make_blobs(std::size_t n, std::size_t dims, double separation, Rng& rng,
                DesignMatrix& x, std::vector<int>& y) {
  x = DesignMatrix{dims};
  y.clear();
  std::vector<double> row(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = rng.normal(cls == 0 ? 0.0 : separation, 1.0);
    }
    x.add_row(row);
    y.push_back(cls);
  }
}

double accuracy_on(const Classifier& model, const DesignMatrix& x, const std::vector<int>& y) {
  const auto pred = model.predict_batch(x);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < y.size(); ++i) ok += pred[i] == y[i];
  return static_cast<double>(ok) / static_cast<double>(y.size());
}

// --------------------------------------------------------------------------
// DesignMatrix
// --------------------------------------------------------------------------

TEST(DesignMatrixTest, AddAndAccessRows) {
  DesignMatrix m{3};
  m.add_row(std::vector<double>{1, 2, 3});
  m.add_row(std::vector<double>{4, 5, 6});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
  EXPECT_EQ(m.row(0).size(), 3u);
  EXPECT_EQ(m.byte_size(), 6 * sizeof(double));
}

TEST(DesignMatrixTest, Validation) {
  EXPECT_THROW(DesignMatrix{0}, std::invalid_argument);
  DesignMatrix m{2};
  EXPECT_THROW(m.add_row(std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(m.row(0), std::out_of_range);
  EXPECT_TRUE(m.empty());
}

TEST(DesignMatrixTest, MutableRowWritesThrough) {
  DesignMatrix m{2};
  m.add_row(std::vector<double>{1, 2});
  m.mutable_row(0)[1] = 9.0;
  EXPECT_DOUBLE_EQ(m.at(0, 1), 9.0);
}

// --------------------------------------------------------------------------
// StandardScaler
// --------------------------------------------------------------------------

TEST(ScalerTest, CentersAndScales) {
  DesignMatrix x{2};
  x.add_row(std::vector<double>{0.0, 10.0});
  x.add_row(std::vector<double>{2.0, 20.0});
  x.add_row(std::vector<double>{4.0, 30.0});
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.mean()[0], 2.0);
  EXPECT_DOUBLE_EQ(scaler.mean()[1], 20.0);
  const auto z = scaler.transform(x.row(0));
  EXPECT_NEAR(z[0], -2.0 / scaler.stddev()[0], 1e-12);
  // Transformed data has ~zero mean.
  const DesignMatrix zx = scaler.transform(x);
  double mean0 = (zx.at(0, 0) + zx.at(1, 0) + zx.at(2, 0)) / 3.0;
  EXPECT_NEAR(mean0, 0.0, 1e-12);
}

TEST(ScalerTest, ConstantFeatureScalesToZero) {
  DesignMatrix x{1};
  for (int i = 0; i < 5; ++i) x.add_row(std::vector<double>{7.0});
  StandardScaler scaler;
  scaler.fit(x);
  EXPECT_DOUBLE_EQ(scaler.transform(x.row(0))[0], 0.0);
}

TEST(ScalerTest, ClampsToTrainingSupport) {
  DesignMatrix x{1};
  for (int i = -2; i <= 2; ++i) x.add_row(std::vector<double>{static_cast<double>(i)});
  StandardScaler scaler;
  scaler.fit(x);
  // A wildly out-of-range value clamps at +-3 sigma.
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{1e9})[0], 3.0);
  EXPECT_DOUBLE_EQ(scaler.transform(std::vector<double>{-1e9})[0], -3.0);
}

TEST(ScalerTest, ErrorsOnMisuse) {
  StandardScaler scaler;
  EXPECT_FALSE(scaler.fitted());
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(scaler.fit(DesignMatrix{}), std::invalid_argument);
  DesignMatrix x{2};
  x.add_row(std::vector<double>{1, 2});
  scaler.fit(x);
  EXPECT_THROW(scaler.transform(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(ScalerTest, SaveLoadRoundTrip) {
  DesignMatrix x{2};
  x.add_row(std::vector<double>{1, 100});
  x.add_row(std::vector<double>{3, 300});
  StandardScaler scaler;
  scaler.fit(x);
  util::ByteWriter w;
  scaler.save(w);
  StandardScaler loaded;
  util::ByteReader r{w.bytes()};
  loaded.load(r);
  EXPECT_EQ(loaded.mean(), scaler.mean());
  EXPECT_EQ(loaded.stddev(), scaler.stddev());
}

// --------------------------------------------------------------------------
// train_test_split / subsample
// --------------------------------------------------------------------------

TEST(SplitTest, StratifiedProportions) {
  DesignMatrix x{1};
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.add_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(i < 80 ? 0 : 1);  // 80/20 imbalance
  }
  Rng rng{3};
  const auto split = train_test_split(x, y, 0.25, rng);
  EXPECT_EQ(split.test_y.size(), 25u);
  EXPECT_EQ(split.train_y.size(), 75u);
  const auto count_ones = [](const std::vector<int>& v) {
    return std::count(v.begin(), v.end(), 1);
  };
  EXPECT_EQ(count_ones(split.test_y), 5);  // stratification preserved
  EXPECT_EQ(count_ones(split.train_y), 15);
}

TEST(SplitTest, Validation) {
  DesignMatrix x{1};
  x.add_row(std::vector<double>{1.0});
  Rng rng{1};
  EXPECT_THROW(train_test_split(x, {0, 1}, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(x, {0}, 0.0, rng), std::invalid_argument);
  EXPECT_THROW(train_test_split(x, {0}, 1.0, rng), std::invalid_argument);
}

TEST(SubsampleTest, CapsRowsAndPreservesAll) {
  DesignMatrix x{1};
  std::vector<int> y;
  for (int i = 0; i < 50; ++i) {
    x.add_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(i % 2);
  }
  Rng rng{4};
  DesignMatrix small;
  std::vector<int> small_y;
  subsample(x, y, 10, rng, small, small_y);
  EXPECT_EQ(small.rows(), 10u);
  EXPECT_EQ(small_y.size(), 10u);

  DesignMatrix all;
  std::vector<int> all_y;
  subsample(x, y, 100, rng, all, all_y);
  EXPECT_EQ(all.rows(), 50u);
  EXPECT_EQ(all_y, y);
}

// --------------------------------------------------------------------------
// ConfusionMatrix
// --------------------------------------------------------------------------

TEST(ConfusionMatrixTest, CellsAndMetrics) {
  ConfusionMatrix cm;
  // 8 TP, 1 FN, 1 FP, 10 TN.
  for (int i = 0; i < 8; ++i) cm.add(1, 1);
  cm.add(1, 0);
  cm.add(0, 1);
  for (int i = 0; i < 10; ++i) cm.add(0, 0);
  EXPECT_EQ(cm.tp(), 8u);
  EXPECT_EQ(cm.fn(), 1u);
  EXPECT_EQ(cm.fp(), 1u);
  EXPECT_EQ(cm.tn(), 10u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(cm.precision(), 8.0 / 9.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 8.0 / 9.0);
  EXPECT_NEAR(cm.f1(), 8.0 / 9.0, 1e-12);
}

TEST(ConfusionMatrixTest, EmptyDenominatorsReturnZero) {
  ConfusionMatrix cm;
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.precision(), 0.0);
  EXPECT_EQ(cm.recall(), 0.0);
  EXPECT_EQ(cm.f1(), 0.0);
  // Single-class window (the paper's division-by-zero caveat): only
  // benign truth and benign predictions -> recall undefined -> 0.
  cm.add(0, 0);
  EXPECT_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(ConfusionMatrixTest, AddAllValidatesSizes) {
  ConfusionMatrix cm;
  std::vector<int> t{1, 0};
  std::vector<int> p{1};
  EXPECT_THROW(cm.add_all(t, p), std::invalid_argument);
  cm.add_all(t, t);
  EXPECT_EQ(cm.total(), 2u);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(ConfusionMatrixTest, ToStringMentionsAll) {
  ConfusionMatrix cm;
  cm.add(1, 1);
  const std::string s = cm.to_string();
  EXPECT_NE(s.find("tp=1"), std::string::npos);
  EXPECT_NE(s.find("acc="), std::string::npos);
}

// --------------------------------------------------------------------------
// DecisionTree
// --------------------------------------------------------------------------

TEST(DecisionTreeTest, LearnsAxisAlignedBoundary) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{5};
  for (int i = 0; i < 400; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    x.add_row(std::vector<double>{a, b});
    y.push_back(a > 0.5 ? 1 : 0);
  }
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  DecisionTree tree;
  tree.fit(x, y, idx, 2, TreeConfig{}, rng);
  EXPECT_TRUE(tree.trained());
  std::size_t ok = 0;
  for (std::size_t i = 0; i < x.rows(); ++i) ok += tree.predict(x.row(i)) == y[i];
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(x.rows()), 0.98);
  EXPECT_GE(tree.depth(), 1u);
}

TEST(DecisionTreeTest, PureDataYieldsSingleLeaf) {
  DesignMatrix x{1};
  std::vector<int> y;
  for (int i = 0; i < 10; ++i) {
    x.add_row(std::vector<double>{static_cast<double>(i)});
    y.push_back(1);
  }
  std::vector<std::size_t> idx(10);
  for (std::size_t i = 0; i < 10; ++i) idx[i] = i;
  Rng rng{6};
  DecisionTree tree;
  tree.fit(x, y, idx, 2, TreeConfig{}, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(std::vector<double>{99.0}), 1);
}

TEST(DecisionTreeTest, RespectsMaxDepth) {
  DesignMatrix x{1};
  std::vector<int> y;
  Rng rng{7};
  for (int i = 0; i < 200; ++i) {
    x.add_row(std::vector<double>{rng.uniform()});
    y.push_back(rng.bernoulli(0.5) ? 1 : 0);  // pure noise forces deep growth
  }
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  DecisionTree tree;
  tree.fit(x, y, idx, 2, TreeConfig{.max_depth = 3, .min_samples_leaf = 1}, rng);
  EXPECT_LE(tree.depth(), 3u);
}

TEST(DecisionTreeTest, Validation) {
  DecisionTree tree;
  EXPECT_THROW(tree.predict(std::vector<double>{1.0}), std::logic_error);
  DesignMatrix x{1};
  x.add_row(std::vector<double>{1.0});
  std::vector<std::size_t> idx{0};
  Rng rng{1};
  EXPECT_THROW(tree.fit(x, std::vector<int>{0, 1}, idx, 2, TreeConfig{}, rng),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(x, std::vector<int>{0}, {}, 2, TreeConfig{}, rng),
               std::invalid_argument);
  EXPECT_THROW(tree.fit(x, std::vector<int>{0}, idx, 1, TreeConfig{}, rng),
               std::invalid_argument);
}

TEST(DecisionTreeTest, SerializationRoundTrip) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{8};
  make_blobs(200, 2, 4.0, rng, x, y);
  std::vector<std::size_t> idx(x.rows());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  DecisionTree tree;
  tree.fit(x, y, idx, 2, TreeConfig{}, rng);

  util::ByteWriter w;
  tree.save(w);
  DecisionTree loaded;
  util::ByteReader r{w.bytes()};
  loaded.load(r);
  EXPECT_EQ(loaded.node_count(), tree.node_count());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_EQ(loaded.predict(x.row(i)), tree.predict(x.row(i)));
  }
}

// --------------------------------------------------------------------------
// RandomForest
// --------------------------------------------------------------------------

TEST(RandomForestTest, SeparatesBlobs) {
  DesignMatrix x{4};
  std::vector<int> y;
  Rng rng{9};
  make_blobs(1000, 4, 3.0, rng, x, y);
  RandomForest rf{RandomForestConfig{.n_estimators = 20}};
  rf.fit(x, y);
  EXPECT_TRUE(rf.trained());
  EXPECT_EQ(rf.tree_count(), 20u);
  EXPECT_GT(accuracy_on(rf, x, y), 0.97);
}

TEST(RandomForestTest, HandlesNoisyLabels) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{10};
  make_blobs(1000, 3, 4.0, rng, x, y);
  for (std::size_t i = 0; i < y.size(); i += 10) y[i] ^= 1;  // 10% label noise
  RandomForest rf{RandomForestConfig{.n_estimators = 30}};
  rf.fit(x, y);
  // The ensemble should still track the true boundary on clean majority.
  EXPECT_GT(accuracy_on(rf, x, y), 0.85);
}

TEST(RandomForestTest, Validation) {
  EXPECT_THROW(RandomForest(RandomForestConfig{.n_estimators = 0}), std::invalid_argument);
  RandomForest rf;
  EXPECT_THROW(rf.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(rf.fit(DesignMatrix{}, {}), std::invalid_argument);
}

TEST(RandomForestTest, SerializationRoundTrip) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{11};
  make_blobs(300, 3, 3.0, rng, x, y);
  RandomForest rf{RandomForestConfig{.n_estimators = 8}};
  rf.fit(x, y);

  const auto bytes = serialize_model(rf);
  const auto loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded->name(), "rf");
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->predict(x.row(i)), rf.predict(x.row(i)));
  }
  EXPECT_GT(rf.parameter_bytes(), 0u);
  EXPECT_GT(rf.inference_scratch_bytes(), 0u);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{12};
  make_blobs(200, 2, 2.0, rng, x, y);
  RandomForest a{RandomForestConfig{.n_estimators = 5, .seed = 7}};
  RandomForest b{RandomForestConfig{.n_estimators = 5, .seed = 7}};
  a.fit(x, y);
  b.fit(x, y);
  EXPECT_EQ(serialize_model(a), serialize_model(b));
}

// --------------------------------------------------------------------------
// KMeansDetector
// --------------------------------------------------------------------------

TEST(KMeansTest, ClustersAndLabelsBlobs) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{13};
  make_blobs(1000, 3, 6.0, rng, x, y);
  KMeansDetector km;
  km.fit(x, y);
  EXPECT_TRUE(km.trained());
  EXPECT_GE(km.cluster_count(), 2u);
  EXPECT_GT(accuracy_on(km, x, y), 0.95);
}

TEST(KMeansTest, EntropyPenaltyPrunesClusters) {
  // Two well-separated blobs with 16 initial clusters: pruning + the
  // penalty should end well below the initial count.
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{14};
  make_blobs(2000, 2, 10.0, rng, x, y);
  KMeansDetector km{KMeansConfig{.initial_clusters = 16, .entropy_weight = 0.2,
                                 .min_proportion = 0.03}};
  km.fit(x, y);
  EXPECT_LT(km.cluster_count(), 16u);
  EXPECT_GE(km.cluster_count(), 2u);
  EXPECT_GT(accuracy_on(km, x, y), 0.95);
}

TEST(KMeansTest, ClusterLabelsCoverBothClasses) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{15};
  make_blobs(500, 2, 8.0, rng, x, y);
  KMeansDetector km;
  km.fit(x, y);
  const auto& labels = km.cluster_labels();
  EXPECT_NE(std::count(labels.begin(), labels.end(), 0), 0);
  EXPECT_NE(std::count(labels.begin(), labels.end(), 1), 0);
}

TEST(KMeansTest, Validation) {
  EXPECT_THROW(KMeansDetector(KMeansConfig{.initial_clusters = 1}), std::invalid_argument);
  KMeansDetector km;
  EXPECT_THROW(km.predict(std::vector<double>{1.0}), std::logic_error);
  DesignMatrix tiny{1};
  tiny.add_row(std::vector<double>{1.0});
  EXPECT_THROW(km.fit(tiny, {0}), std::invalid_argument);  // fewer rows than clusters
}

TEST(KMeansTest, SerializationRoundTrip) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{16};
  make_blobs(400, 2, 5.0, rng, x, y);
  KMeansDetector km;
  km.fit(x, y);
  const auto bytes = serialize_model(km);
  const auto loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded->name(), "kmeans");
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->predict(x.row(i)), km.predict(x.row(i)));
  }
  // K-Means models are tiny (Table II's 11.2 Kb row).
  EXPECT_LT(bytes.size(), 16 * 1024u);
}

// --------------------------------------------------------------------------
// Cnn1D
// --------------------------------------------------------------------------

TEST(CnnTest, LearnsLinearlySeparableBlobs) {
  DesignMatrix x{8};
  std::vector<int> y;
  Rng rng{17};
  make_blobs(2000, 8, 2.0, rng, x, y);
  Cnn1D cnn{CnnConfig{.filters = 4, .hidden = 32, .epochs = 6}};
  cnn.fit(x, y);
  EXPECT_TRUE(cnn.trained());
  EXPECT_GT(accuracy_on(cnn, x, y), 0.95);
}

TEST(CnnTest, ProbabilitiesSumToOne) {
  DesignMatrix x{6};
  std::vector<int> y;
  Rng rng{18};
  make_blobs(500, 6, 3.0, rng, x, y);
  Cnn1D cnn{CnnConfig{.filters = 4, .hidden = 16, .epochs = 3}};
  cnn.fit(x, y);
  const auto probs = cnn.predict_proba(x.row(0));
  ASSERT_EQ(probs.size(), 2u);
  EXPECT_NEAR(probs[0] + probs[1], 1.0, 1e-9);
  EXPECT_GE(probs[0], 0.0);
  EXPECT_GE(probs[1], 0.0);
}

TEST(CnnTest, Validation) {
  EXPECT_THROW(Cnn1D(CnnConfig{.kernel = 4}), std::invalid_argument);
  EXPECT_THROW(Cnn1D(CnnConfig{.filters = 0}), std::invalid_argument);
  Cnn1D cnn;
  EXPECT_THROW(cnn.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(cnn.fit(DesignMatrix{}, {}), std::invalid_argument);
}

TEST(CnnTest, SerializationRoundTrip) {
  DesignMatrix x{6};
  std::vector<int> y;
  Rng rng{19};
  make_blobs(600, 6, 3.0, rng, x, y);
  Cnn1D cnn{CnnConfig{.filters = 4, .hidden = 24, .epochs = 3}};
  cnn.fit(x, y);
  const auto bytes = serialize_model(cnn);
  const auto loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded->name(), "cnn");
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->predict(x.row(i)), cnn.predict(x.row(i)));
  }
  EXPECT_EQ(cnn.parameter_bytes(), cnn.parameter_count() * sizeof(double));
}

TEST(CnnTest, ParameterCountMatchesArchitecture) {
  DesignMatrix x{8};
  std::vector<int> y;
  Rng rng{20};
  make_blobs(100, 8, 5.0, rng, x, y);
  Cnn1D cnn{CnnConfig{.filters = 2, .kernel = 3, .hidden = 4, .epochs = 1}};
  cnn.fit(x, y);
  // conv: 2*3+2, dense1: 4*(2*4)+4, dense2: 2*4+2
  const std::size_t expected = (2 * 3 + 2) + (4 * 8 + 4) + (2 * 4 + 2);
  EXPECT_EQ(cnn.parameter_count(), expected);
}

// --------------------------------------------------------------------------
// Model store
// --------------------------------------------------------------------------

TEST(ModelStoreTest, MakeModelByName) {
  EXPECT_EQ(make_model("rf")->name(), "rf");
  EXPECT_EQ(make_model("kmeans")->name(), "kmeans");
  EXPECT_EQ(make_model("cnn")->name(), "cnn");
  EXPECT_THROW(make_model("vae"), std::invalid_argument);
}

TEST(ModelStoreTest, RejectsCorruptBytes) {
  std::vector<std::uint8_t> junk{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_THROW(deserialize_model(junk), std::invalid_argument);
  EXPECT_THROW(deserialize_model({}), std::out_of_range);
}

TEST(ModelStoreTest, FileRoundTrip) {
  DesignMatrix x{2};
  std::vector<int> y;
  Rng rng{21};
  make_blobs(200, 2, 4.0, rng, x, y);
  RandomForest rf{RandomForestConfig{.n_estimators = 4}};
  rf.fit(x, y);
  const std::string path = "/tmp/ddoshield_model_test.bin";
  save_model_file(rf, path);
  const auto loaded = load_model_file(path);
  EXPECT_EQ(loaded->name(), "rf");
  EXPECT_EQ(loaded->predict(x.row(0)), rf.predict(x.row(0)));
  std::remove(path.c_str());
  EXPECT_THROW(load_model_file("/nonexistent/model.bin"), std::runtime_error);
}

// --------------------------------------------------------------------------
// Property-style sweeps: all three models beat the base rate on separable
// data across seeds and dimensions.
// --------------------------------------------------------------------------

struct ModelSweepParams {
  std::uint64_t seed;
  std::size_t dims;
};

class AllModelsSweep : public ::testing::TestWithParam<ModelSweepParams> {};

TEST_P(AllModelsSweep, SeparableBlobsAreLearnable) {
  const auto p = GetParam();
  DesignMatrix x{p.dims};
  std::vector<int> y;
  Rng rng{p.seed};
  make_blobs(600, p.dims, 4.0, rng, x, y);

  RandomForest rf{RandomForestConfig{.n_estimators = 10}};
  rf.fit(x, y);
  EXPECT_GT(accuracy_on(rf, x, y), 0.9) << "rf seed=" << p.seed;

  KMeansDetector km;
  km.fit(x, y);
  EXPECT_GT(accuracy_on(km, x, y), 0.9) << "kmeans seed=" << p.seed;

  Cnn1D cnn{CnnConfig{.filters = 4, .hidden = 16, .epochs = 4}};
  cnn.fit(x, y);
  EXPECT_GT(accuracy_on(cnn, x, y), 0.9) << "cnn seed=" << p.seed;
}

INSTANTIATE_TEST_SUITE_P(SeedsAndDims, AllModelsSweep,
                         ::testing::Values(ModelSweepParams{1, 4}, ModelSweepParams{2, 8},
                                           ModelSweepParams{3, 17}, ModelSweepParams{4, 6},
                                           ModelSweepParams{5, 12}));

}  // namespace
}  // namespace ddoshield::ml
