// Tests for the §V/§VI extension models: linear SVM, Isolation Forest,
// feature selection, and federated (FedAvg) CNN training.
#include <gtest/gtest.h>

#include <cmath>

#include "ml/feature_selection.hpp"
#include "ml/federated.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/model_store.hpp"
#include "ml/svm.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ddoshield::ml {
namespace {

using util::Rng;

void make_blobs(std::size_t n, std::size_t dims, double separation, Rng& rng,
                DesignMatrix& x, std::vector<int>& y) {
  x = DesignMatrix{dims};
  y.clear();
  std::vector<double> row(dims);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    for (std::size_t d = 0; d < dims; ++d) {
      row[d] = rng.normal(cls == 0 ? 0.0 : separation, 1.0);
    }
    x.add_row(row);
    y.push_back(cls);
  }
}

double accuracy_on(const Classifier& model, const DesignMatrix& x, const std::vector<int>& y) {
  const auto pred = model.predict_batch(x);
  std::size_t ok = 0;
  for (std::size_t i = 0; i < y.size(); ++i) ok += pred[i] == y[i];
  return static_cast<double>(ok) / static_cast<double>(y.size());
}

// --------------------------------------------------------------------------
// LinearSvm
// --------------------------------------------------------------------------

TEST(SvmTest, SeparatesBlobs) {
  DesignMatrix x{5};
  std::vector<int> y;
  Rng rng{31};
  make_blobs(1000, 5, 3.0, rng, x, y);
  LinearSvm svm;
  svm.fit(x, y);
  EXPECT_TRUE(svm.trained());
  EXPECT_GT(accuracy_on(svm, x, y), 0.95);
}

TEST(SvmTest, DecisionValueSignMatchesPrediction) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{32};
  make_blobs(400, 3, 3.0, rng, x, y);
  LinearSvm svm;
  svm.fit(x, y);
  for (std::size_t i = 0; i < 50; ++i) {
    const double v = svm.decision_value(x.row(i));
    EXPECT_EQ(svm.predict(x.row(i)), v > 0.0 ? 1 : 0);
  }
}

TEST(SvmTest, Validation) {
  EXPECT_THROW(LinearSvm(SvmConfig{.lambda = 0.0}), std::invalid_argument);
  EXPECT_THROW(LinearSvm(SvmConfig{.epochs = 0}), std::invalid_argument);
  LinearSvm svm;
  EXPECT_FALSE(svm.trained());
  EXPECT_THROW(svm.predict(std::vector<double>{1.0}), std::logic_error);
  EXPECT_THROW(svm.fit(DesignMatrix{}, {}), std::invalid_argument);
}

TEST(SvmTest, SerializationRoundTrip) {
  DesignMatrix x{4};
  std::vector<int> y;
  Rng rng{33};
  make_blobs(300, 4, 3.0, rng, x, y);
  LinearSvm svm;
  svm.fit(x, y);
  const auto bytes = serialize_model(svm);
  const auto loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded->name(), "svm");
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded->predict(x.row(i)), svm.predict(x.row(i)));
  }
  // SVMs are tiny: weights + bias + scaler.
  EXPECT_LT(bytes.size(), 4096u);
}

// --------------------------------------------------------------------------
// IsolationForest
// --------------------------------------------------------------------------

TEST(IsolationForestTest, CNormMatchesKnownValues) {
  EXPECT_DOUBLE_EQ(isolation_c_norm(0), 0.0);
  EXPECT_DOUBLE_EQ(isolation_c_norm(1), 0.0);
  // c(2) = 2*H(1) - 2*(1/2) = 2*0.5772... - 1 ~ 0.154 with the Euler
  // approximation of H(1); the classic paper uses the same approximation.
  EXPECT_NEAR(isolation_c_norm(2), 2.0 * 0.5772156649 - 1.0, 0.01);
  EXPECT_NEAR(isolation_c_norm(256), 10.24, 0.3);
}

TEST(IsolationForestTest, AnomaliesScoreHigherThanInliers) {
  // Dense inlier cluster + scattered anomalies.
  DesignMatrix x{4};
  std::vector<int> y;
  Rng rng{34};
  std::vector<double> row(4);
  for (int i = 0; i < 2000; ++i) {
    const bool anomaly = i % 20 == 0;  // 5%
    for (auto& v : row) v = anomaly ? rng.uniform(-12.0, 12.0) : rng.normal(0.0, 1.0);
    x.add_row(row);
    y.push_back(anomaly ? 1 : 0);
  }
  IsolationForest forest;
  forest.fit(x, y);
  EXPECT_TRUE(forest.trained());

  util::OnlineStats inlier_scores, anomaly_scores;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    (y[i] ? anomaly_scores : inlier_scores).add(forest.anomaly_score(x.row(i)));
  }
  EXPECT_GT(anomaly_scores.mean(), inlier_scores.mean() + 0.1);
  EXPECT_GT(accuracy_on(forest, x, y), 0.9);
}

TEST(IsolationForestTest, ScoresAreInUnitInterval) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{35};
  make_blobs(600, 3, 4.0, rng, x, y);
  IsolationForest forest{IsolationForestConfig{.n_trees = 25}};
  forest.fit(x, y);
  for (std::size_t i = 0; i < 100; ++i) {
    const double s = forest.anomaly_score(x.row(i));
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, 1.0);
  }
}

TEST(IsolationForestTest, Validation) {
  EXPECT_THROW(IsolationForest(IsolationForestConfig{.n_trees = 0}), std::invalid_argument);
  EXPECT_THROW(IsolationForest(IsolationForestConfig{.subsample = 1}), std::invalid_argument);
  IsolationForest forest;
  EXPECT_THROW(forest.predict(std::vector<double>{1.0}), std::logic_error);
  DesignMatrix tiny{1};
  tiny.add_row(std::vector<double>{1.0});
  EXPECT_THROW(forest.fit(tiny, {0}), std::invalid_argument);
}

TEST(IsolationForestTest, SerializationRoundTrip) {
  DesignMatrix x{3};
  std::vector<int> y;
  Rng rng{36};
  make_blobs(600, 3, 5.0, rng, x, y);
  IsolationForest forest{IsolationForestConfig{.n_trees = 20}};
  forest.fit(x, y);
  const auto bytes = serialize_model(forest);
  const auto loaded = deserialize_model(bytes);
  EXPECT_EQ(loaded->name(), "iforest");
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(loaded->predict(x.row(i)), forest.predict(x.row(i)));
  }
}

// --------------------------------------------------------------------------
// Feature selection
// --------------------------------------------------------------------------

TEST(FeatureSelectionTest, RanksInformativeFeaturesFirst) {
  // Feature 0: strong signal; feature 1: weak signal; features 2,3: noise.
  DesignMatrix x{4};
  std::vector<int> y;
  Rng rng{37};
  std::vector<double> row(4);
  for (int i = 0; i < 3000; ++i) {
    const int cls = i % 2;
    row[0] = rng.normal(cls * 5.0, 1.0);
    row[1] = rng.normal(cls * 0.5, 1.0);
    row[2] = rng.normal(0.0, 1.0);
    row[3] = rng.uniform(0.0, 1.0);
    x.add_row(row);
    y.push_back(cls);
  }
  const auto ranking = rank_features(x, y);
  ASSERT_EQ(ranking.size(), 4u);
  EXPECT_EQ(ranking[0].index, 0u);
  EXPECT_EQ(ranking[1].index, 1u);
  EXPECT_GT(ranking[0].score, ranking[1].score);
  EXPECT_GT(ranking[1].score, ranking[2].score);
}

TEST(FeatureSelectionTest, ConstantFeatureScoresZero) {
  DesignMatrix x{2};
  std::vector<int> y;
  for (int i = 0; i < 100; ++i) {
    x.add_row(std::vector<double>{7.0, static_cast<double>(i % 2)});
    y.push_back(i % 2);
  }
  const auto ranking = rank_features(x, y);
  EXPECT_EQ(ranking.back().index, 0u);
  EXPECT_EQ(ranking.back().score, 0.0);
}

TEST(FeatureSelectionTest, SelectColumnsAndTopK) {
  DesignMatrix x{3};
  x.add_row(std::vector<double>{1, 2, 3});
  x.add_row(std::vector<double>{4, 5, 6});
  const DesignMatrix sub = select_columns(x, {2, 0});
  EXPECT_EQ(sub.cols(), 2u);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(sub.at(1, 0), 6.0);
  EXPECT_THROW(select_columns(x, {}), std::invalid_argument);
  EXPECT_THROW(select_columns(x, {5}), std::out_of_range);

  std::vector<FeatureScore> ranking{{2, 0.9}, {0, 0.5}, {1, 0.1}};
  EXPECT_EQ(top_k_columns(ranking, 2), (std::vector<std::size_t>{2, 0}));
  EXPECT_THROW(top_k_columns(ranking, 0), std::invalid_argument);
  EXPECT_THROW(top_k_columns(ranking, 4), std::invalid_argument);
}

TEST(FeatureSelectionTest, SubsetClassifierMatchesDirectUse) {
  DesignMatrix x{6};
  std::vector<int> y;
  Rng rng{38};
  make_blobs(800, 6, 3.0, rng, x, y);
  const auto ranking = rank_features(x, y);
  const auto columns = top_k_columns(ranking, 3);
  const DesignMatrix reduced = select_columns(x, columns);

  LinearSvm svm;
  svm.fit(reduced, y);
  ColumnSubsetClassifier wrapped{svm, columns};
  EXPECT_EQ(wrapped.columns(), columns);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(wrapped.predict(x.row(i)), svm.predict(reduced.row(i)));
  }
  EXPECT_THROW(wrapped.fit(x, y), std::logic_error);
  EXPECT_THROW(wrapped.predict(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(FeatureSelectionTest, TopFeaturesRetainAccuracy) {
  DesignMatrix x{8};
  std::vector<int> y;
  Rng rng{39};
  make_blobs(1500, 8, 2.5, rng, x, y);
  LinearSvm full;
  full.fit(x, y);

  const auto columns = top_k_columns(rank_features(x, y), 4);
  const DesignMatrix reduced = select_columns(x, columns);
  LinearSvm half;
  half.fit(reduced, y);

  EXPECT_GT(accuracy_on(half, reduced, y), accuracy_on(full, x, y) - 0.05);
}

// --------------------------------------------------------------------------
// Federated CNN (FedAvg)
// --------------------------------------------------------------------------

TEST(CnnParametersTest, GetSetRoundTrip) {
  DesignMatrix x{6};
  std::vector<int> y;
  Rng rng{40};
  make_blobs(300, 6, 3.0, rng, x, y);
  Cnn1D cnn{CnnConfig{.filters = 2, .hidden = 8, .epochs = 1}};
  cnn.fit(x, y);
  auto params = cnn.parameters();
  EXPECT_EQ(params.size(), cnn.parameter_count());

  Cnn1D other{CnnConfig{.filters = 2, .hidden = 8, .epochs = 1}};
  StandardScaler scaler;
  scaler.fit(x);
  other.initialize(x.cols(), scaler);
  other.set_parameters(params);
  // Identical parameters, identical scaler source => identical predictions.
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(other.predict(x.row(i)), cnn.predict(x.row(i)));
  }
  params.pop_back();
  EXPECT_THROW(other.set_parameters(params), std::invalid_argument);
}

TEST(CnnParametersTest, TrainEpochsRequiresInitialize) {
  Cnn1D cnn{CnnConfig{.filters = 2, .hidden = 8}};
  DesignMatrix x{4};
  x.add_row(std::vector<double>{1, 2, 3, 4});
  EXPECT_THROW(cnn.train_epochs(x, {0}, 1), std::logic_error);
}

TEST(FederatedTest, ShardDatasetSplitsEvenly) {
  DesignMatrix x{2};
  std::vector<int> y;
  for (int i = 0; i < 10; ++i) {
    x.add_row(std::vector<double>{static_cast<double>(i), 0.0});
    y.push_back(i % 2);
  }
  std::vector<DesignMatrix> xs;
  std::vector<std::vector<int>> ys;
  shard_dataset(x, y, 3, xs, ys);
  ASSERT_EQ(xs.size(), 3u);
  EXPECT_EQ(xs[0].rows(), 4u);
  EXPECT_EQ(xs[1].rows(), 3u);
  EXPECT_EQ(xs[2].rows(), 3u);
  EXPECT_DOUBLE_EQ(xs[1].at(0, 0), 1.0);  // row 1 went to shard 1
  EXPECT_THROW(shard_dataset(x, y, 0, xs, ys), std::invalid_argument);
}

TEST(FederatedTest, FedAvgLearnsAcrossClients) {
  DesignMatrix x{6};
  std::vector<int> y;
  Rng rng{41};
  make_blobs(1800, 6, 2.5, rng, x, y);

  std::vector<DesignMatrix> xs;
  std::vector<std::vector<int>> ys;
  shard_dataset(x, y, 3, xs, ys);
  std::vector<FederatedShard> shards;
  for (std::size_t c = 0; c < 3; ++c) shards.push_back({&xs[c], &ys[c]});

  StandardScaler scaler;
  scaler.fit(x);  // the shared calibration artifact

  FederatedConfig cfg;
  cfg.rounds = 4;
  cfg.local_epochs = 1;
  cfg.cnn = CnnConfig{.filters = 4, .hidden = 16};
  FederatedCnnTrainer trainer{cfg};
  Cnn1D global = trainer.train(shards, scaler);

  EXPECT_GT(accuracy_on(global, x, y), 0.9);
  EXPECT_EQ(trainer.round_stats().size(), 4u);
  // Updates shrink as the model converges.
  EXPECT_LT(trainer.round_stats().back().mean_parameter_delta,
            trainer.round_stats().front().mean_parameter_delta);
}

TEST(FederatedTest, Validation) {
  FederatedConfig zero_rounds;
  zero_rounds.rounds = 0;
  EXPECT_THROW((FederatedCnnTrainer{zero_rounds}), std::invalid_argument);
  FederatedCnnTrainer trainer;
  StandardScaler scaler;
  EXPECT_THROW(trainer.train({}, scaler), std::invalid_argument);
}

TEST(ModelStoreExtTest, NewModelsRegistered) {
  EXPECT_EQ(make_model("svm")->name(), "svm");
  EXPECT_EQ(make_model("iforest")->name(), "iforest");
}

}  // namespace
}  // namespace ddoshield::ml
