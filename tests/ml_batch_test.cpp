// Batch-vs-scalar equivalence for the three paper models: score_batch
// must be bit-identical to per-row predict() — on training-like data and
// on adversarial fuzz matrices — and the train/serve scaler guards must
// hold. These are the determinism tests backing DESIGN.md §10.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "ml/classifier.hpp"
#include "ml/cnn.hpp"
#include "ml/design_matrix.hpp"
#include "ml/kmeans.hpp"
#include "ml/preprocess.hpp"
#include "ml/random_forest.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace ddoshield::ml {
namespace {

using util::Rng;

constexpr std::size_t kDims = 17;  // the feature schema's width

void make_blobs(std::size_t n, double separation, Rng& rng, DesignMatrix& x,
                std::vector<int>& y) {
  x = DesignMatrix{kDims};
  y.clear();
  std::vector<double> row(kDims);
  for (std::size_t i = 0; i < n; ++i) {
    const int cls = static_cast<int>(i % 2);
    for (std::size_t d = 0; d < kDims; ++d) {
      row[d] = rng.normal(cls == 0 ? 0.0 : separation, 1.0);
    }
    x.add_row(row);
    y.push_back(cls);
  }
}

/// Adversarial inputs for a tie-hunting equality check: clustered noise,
/// exact duplicates, near-boundary points, zeros, and large magnitudes.
DesignMatrix make_fuzz_matrix(std::size_t n, Rng& rng) {
  DesignMatrix x{kDims};
  std::vector<double> row(kDims);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 5) {
      case 0:  // broad uniform noise
        for (auto& v : row) v = rng.uniform(-10.0, 10.0);
        break;
      case 1:  // tight cluster near the class boundary
        for (auto& v : row) v = rng.normal(1.5, 0.05);
        break;
      case 2:  // all-zero / constant rows
        for (auto& v : row) v = 0.0;
        break;
      case 3:  // huge magnitudes (exercise the scaler's ±3σ clamp)
        for (auto& v : row) v = rng.uniform(-1e6, 1e6);
        break;
      default:  // duplicate of the previous row (exact ties)
        break;
    }
    x.add_row(row);
  }
  return x;
}

/// score_batch (batched) vs per-row predict() vs score_batch with the
/// legacy scalar kernel: all three must agree verdict-for-verdict.
void expect_batch_matches_scalar(const Classifier& model, const DesignMatrix& x) {
  Verdicts batched;
  model.score_batch(x, batched);
  ASSERT_EQ(batched.size(), x.rows());

  model.set_batched_inference(false);
  Verdicts legacy;
  model.score_batch(x, legacy);
  model.set_batched_inference(true);

  for (std::size_t i = 0; i < x.rows(); ++i) {
    ASSERT_EQ(batched[i], model.predict(x.row(i))) << model.name() << " row " << i;
    ASSERT_EQ(batched[i], legacy[i]) << model.name() << " legacy row " << i;
  }
}

struct Trained {
  std::unique_ptr<Classifier> model;
  DesignMatrix train_x;
  std::vector<int> train_y;
};

Trained train(std::unique_ptr<Classifier> model, std::uint64_t seed) {
  Trained t;
  Rng rng{seed};
  make_blobs(600, 3.0, rng, t.train_x, t.train_y);
  model->fit(t.train_x, t.train_y);
  t.model = std::move(model);
  return t;
}

class BatchEqualityTest : public ::testing::TestWithParam<int> {
 protected:
  Trained make_trained() const {
    switch (GetParam()) {
      case 0: {
        RandomForestConfig cfg;
        cfg.n_estimators = 20;  // keep the fuzz sweep fast
        return train(std::make_unique<RandomForest>(cfg), 11);
      }
      case 1:
        return train(std::make_unique<KMeansDetector>(), 12);
      default: {
        CnnConfig cfg;
        cfg.epochs = 2;
        cfg.max_training_rows = 400;
        return train(std::make_unique<Cnn1D>(cfg), 13);
      }
    }
  }
};

TEST_P(BatchEqualityTest, BitIdenticalOnTrainingData) {
  const Trained t = make_trained();
  expect_batch_matches_scalar(*t.model, t.train_x);
}

TEST_P(BatchEqualityTest, BitIdenticalOnFuzzMatrices) {
  const Trained t = make_trained();
  for (std::uint64_t seed = 100; seed < 104; ++seed) {
    Rng rng{seed};
    expect_batch_matches_scalar(*t.model, make_fuzz_matrix(97, rng));
  }
}

TEST_P(BatchEqualityTest, OddBatchSizesIncludingPartialTiles) {
  // Sizes straddling the kernels' internal row blocks and the GEMM tile
  // width (1, sub-tile, tile±1, block±1).
  const Trained t = make_trained();
  Rng rng{42};
  for (const std::size_t n : {1u, 2u, 15u, 16u, 17u, 31u, 33u, 63u, 65u}) {
    expect_batch_matches_scalar(*t.model, make_fuzz_matrix(n, rng));
  }
}

TEST_P(BatchEqualityTest, SaveLoadRoundTripKeepsBatchVerdicts) {
  const Trained t = make_trained();
  util::ByteWriter w;
  t.model->save(w);

  auto fresh = [&]() -> std::unique_ptr<Classifier> {
    switch (GetParam()) {
      case 0: return std::make_unique<RandomForest>();
      case 1: return std::make_unique<KMeansDetector>();
      default: return std::make_unique<Cnn1D>();
    }
  }();
  util::ByteReader r{w.bytes()};
  fresh->load(r);

  Rng rng{7};
  const DesignMatrix x = make_fuzz_matrix(64, rng);
  Verdicts before, after;
  t.model->score_batch(x, before);
  fresh->score_batch(x, after);
  EXPECT_EQ(before, after);
}

std::string model_param_name(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0: return "Rf";
    case 1: return "Kmeans";
    default: return "Cnn";
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, BatchEqualityTest, ::testing::Values(0, 1, 2),
                         model_param_name);

// --------------------------------------------------------------------------
// Scaler guards (train/serve equality)
// --------------------------------------------------------------------------

TEST(ScalerGuardTest, TransformIntoMatchesTransform) {
  Rng rng{3};
  DesignMatrix x;
  std::vector<int> y;
  make_blobs(50, 3.0, rng, x, y);
  StandardScaler scaler;
  scaler.fit(x);

  std::vector<double> buf(kDims);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto expected = scaler.transform(x.row(i));
    scaler.transform_into(x.row(i), buf);
    for (std::size_t c = 0; c < kDims; ++c) {
      // Bit-identical, not just close: the batched path feeds the models
      // through transform_into.
      EXPECT_EQ(buf[c], expected[c]);
    }
  }
}

TEST(ScalerGuardTest, FingerprintTracksParameters) {
  Rng rng{4};
  DesignMatrix x;
  std::vector<int> y;
  make_blobs(50, 3.0, rng, x, y);
  StandardScaler a, b;
  a.fit(x);
  b.fit(x);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  DesignMatrix shifted{kDims};
  std::vector<double> row(kDims, 0.5);
  shifted.add_row(row);
  row.assign(kDims, 1.5);
  shifted.add_row(row);
  b.fit(shifted);
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(ScalerGuardTest, LoadRejectsTamperedParameters) {
  Rng rng{5};
  DesignMatrix x;
  std::vector<int> y;
  make_blobs(50, 3.0, rng, x, y);
  StandardScaler scaler;
  scaler.fit(x);

  util::ByteWriter w;
  scaler.save(w);
  std::vector<std::uint8_t> bytes = w.bytes();
  // Flip one bit inside the first mean value: the affine map changes but
  // the stored fingerprint stays — exactly the train/serve skew the guard
  // exists to catch.
  bytes[sizeof(std::uint64_t)] ^= 0x01;

  StandardScaler loaded;
  util::ByteReader r{bytes};
  EXPECT_THROW(loaded.load(r), std::invalid_argument);
}

}  // namespace
}  // namespace ddoshield::ml
