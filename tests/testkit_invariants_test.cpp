// InvariantChecker unit coverage: a legal TCP exchange sails through, each
// class of synthetic illegality is flagged, exempt traffic stays exempt,
// link conservation is checked against live stats, and the metrics
// self-consistency pass accepts a healthy registry.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/tcp.hpp"
#include "obs/metrics.hpp"
#include "testkit/fuzzer.hpp"
#include "testkit/invariants.hpp"

namespace ddoshield::testkit {
namespace {

using util::SimTime;

struct Rig {
  net::Network net;
  net::Node& a;
  net::Node& b;
  net::Link& link;
  InvariantChecker checker{net.simulator()};

  Rig()
      : a{net.add_node("a", net::Ipv4Address{10, 0, 0, 1})},
        b{net.add_node("b", net::Ipv4Address{10, 0, 0, 2})},
        link{net.add_link(a, b)} {
    a.set_default_route(0);
    b.set_default_route(0);
  }

  // Hand-crafts a stack-tagged TCP segment from a -> b and sends it.
  void send_stack_segment(std::uint8_t flags, std::uint32_t seq, std::uint32_t ack,
                          std::uint32_t payload, bool stack = true) {
    net::Packet pkt;
    pkt.dst = b.address();
    pkt.proto = net::IpProto::kTcp;
    pkt.src_port = 5000;
    pkt.dst_port = 80;
    pkt.tcp_flags = flags;
    pkt.seq = seq;
    pkt.ack = ack;
    pkt.payload_bytes = payload;
    pkt.stack_tcp = stack;
    a.send(pkt);
  }
};

TEST(InvariantsTest, LegalBulkTransferPasses) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.checker.watch_node(rig.b);
  rig.checker.watch_link_direction(rig.link, rig.a);
  rig.checker.watch_link_direction(rig.link, rig.b);

  auto listener = rig.b.tcp().listen(80);
  std::uint64_t got = 0;
  listener->set_on_accept([&](std::shared_ptr<net::TcpConnection> conn) {
    conn->set_on_data([&](std::uint32_t n, const std::string&) { got += n; });
  });
  auto conn = rig.a.tcp().connect(net::Endpoint{rig.b.address(), 80},
                                  net::TrafficOrigin::kHttp);
  conn->set_on_connected([&conn] {
    conn->send(50'000, "bulk");
    conn->close();
  });
  rig.net.simulator().run_all();
  ASSERT_EQ(got, 50'000u);

  const InvariantReport report = rig.checker.finalize();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.packets_checked, 30u);
  EXPECT_GE(report.flows_tracked, 2u);
  EXPECT_EQ(report.directions_checked, 2u);
}

TEST(InvariantsTest, DataBeforeHandshakeFlagged) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kAck, 100, 1, 512);
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_EQ(report.total_violations, 1u);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_NE(report.violations[0].find("data before handshake"), std::string::npos);
}

TEST(InvariantsTest, SequenceGapFlagged) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 100, 0, 0);       // edge = 101
    rig.send_stack_segment(net::TcpFlags::kAck, 200, 1, 100);     // gap: 101 < 200
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_EQ(report.total_violations, 1u);
  EXPECT_NE(report.violations[0].find("sequence gap"), std::string::npos);
}

TEST(InvariantsTest, RetransmissionIsLegal) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 100, 0, 0);
    rig.send_stack_segment(net::TcpFlags::kSyn, 100, 0, 0);           // SYN rexmit
    rig.send_stack_segment(net::TcpFlags::kAck, 101, 1, 1000);        // data
    rig.send_stack_segment(net::TcpFlags::kAck, 101, 1, 1000);        // rexmit
    rig.send_stack_segment(net::TcpFlags::kAck, 1101, 1, 500);        // next chunk
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.packets_checked, 5u);
}

TEST(InvariantsTest, AckRegressionFlagged) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 1, 0, 0);
    rig.send_stack_segment(net::TcpFlags::kAck, 2, 1000, 0);
    rig.send_stack_segment(net::TcpFlags::kAck, 2, 500, 0);  // ack went backward
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_EQ(report.total_violations, 1u);
  EXPECT_NE(report.violations[0].find("ack regressed"), std::string::npos);
}

TEST(InvariantsTest, SegmentAfterRstFlagged) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 10, 0, 0);
    rig.send_stack_segment(net::TcpFlags::kRst, 11, 0, 0);
    // A second RST is fine — closed endpoints RST stray retransmissions.
    rig.send_stack_segment(net::TcpFlags::kRst | net::TcpFlags::kAck, 11, 1, 0);
    rig.send_stack_segment(net::TcpFlags::kAck, 11, 1, 100);  // zombie segment
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_EQ(report.total_violations, 1u);
  EXPECT_NE(report.violations[0].find("after RST"), std::string::npos);
}

TEST(InvariantsTest, DataBeyondFinFlagged) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 0, 0, 0);                       // edge 1
    rig.send_stack_segment(net::TcpFlags::kAck | net::TcpFlags::kFin, 1, 1, 0); // fin edge 2
    rig.send_stack_segment(net::TcpFlags::kAck, 2, 1, 100);                     // beyond FIN
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_EQ(report.total_violations, 1u);
  EXPECT_NE(report.violations[0].find("beyond FIN"), std::string::npos);
}

TEST(InvariantsTest, FloodForgeriesAreExempt) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    // Wildly illegal TCP, but not stack-emitted: raw flood forgery.
    rig.send_stack_segment(net::TcpFlags::kAck, 999, 7, 1400, /*stack=*/false);
    rig.send_stack_segment(net::TcpFlags::kAck, 1, 3, 1400, /*stack=*/false);
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.packets_checked, 0u);
}

TEST(InvariantsTest, NewIssOpensFreshEpoch) {
  Rig rig;
  rig.checker.watch_node(rig.a);
  rig.net.simulator().schedule_at(SimTime::millis(1), [&] {
    rig.send_stack_segment(net::TcpFlags::kSyn, 100, 0, 0);
    rig.send_stack_segment(net::TcpFlags::kAck, 101, 1, 50);
    rig.send_stack_segment(net::TcpFlags::kRst, 151, 0, 0);
    // Ephemeral-port reuse: same 4-tuple, new ISS — must not trip the
    // RST-terminality or gap checks of the dead epoch.
    rig.send_stack_segment(net::TcpFlags::kSyn, 90'000, 0, 0);
    rig.send_stack_segment(net::TcpFlags::kAck, 90'001, 1, 50);
  });
  rig.net.simulator().run_all();

  const auto report = rig.checker.finalize();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.packets_checked, 5u);
}

// One pinned fuzz seed, replayed through the full pipeline on both
// scheduler backends: the event logs must be byte-identical. This is the
// guarantee that lets the calendar queue replace the binary heap — any
// ordering divergence between the backends shows up as a digest mismatch.
TEST(InvariantsTest, SchedulerBackendsProduceIdenticalEventLogs) {
  constexpr std::uint64_t kPinnedSeed = 0xDD05'51E1Dull;

  auto run_with = [](net::SchedulerKind kind) {
    const net::SchedulerKind previous = net::Simulator::default_scheduler();
    net::Simulator::set_default_scheduler(kind);
    FuzzResult result = Fuzzer{}.run(kPinnedSeed);
    net::Simulator::set_default_scheduler(previous);
    return result;
  };

  const FuzzResult calendar = run_with(net::SchedulerKind::kCalendar);
  const FuzzResult heap = run_with(net::SchedulerKind::kBinaryHeap);

  EXPECT_TRUE(calendar.ok()) << calendar.invariants.summary();
  EXPECT_TRUE(heap.ok()) << heap.invariants.summary();
  EXPECT_GT(calendar.log.size(), 0u);
  EXPECT_EQ(calendar.log.size(), heap.log.size());
  EXPECT_EQ(calendar.log.digest(), heap.log.digest());
  EXPECT_EQ(calendar.events_executed, heap.events_executed);
  EXPECT_EQ(calendar.packets_tapped, heap.packets_tapped);
  EXPECT_EQ(calendar.end_time, heap.end_time);
}

TEST(InvariantsTest, MetricsSelfConsistencyAcceptsHealthyRegistry) {
  auto& reg = obs::MetricsRegistry::global();
  auto& h = reg.histogram("testkit.invariants_test.latency");
  for (std::uint64_t v : {0ull, 1ull, 2ull, 1024ull, 123'456'789ull}) h.observe(v);
  reg.gauge("testkit.invariants_test.gauge").set(5.0);
  reg.gauge("testkit.invariants_test.gauge").set(2.0);

  std::vector<std::string> violations;
  EXPECT_EQ(InvariantChecker::check_metrics(reg, &violations), 0u)
      << (violations.empty() ? "" : violations[0]);
}

}  // namespace
}  // namespace ddoshield::testkit
