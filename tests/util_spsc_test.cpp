// Property tests for the lock-free SPSC ring: capacity rounding, FIFO
// order across wraparound, move-only payloads, and a two-thread stress
// run exercising the full/empty races.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "util/spsc_ring.hpp"

namespace ddoshield::util {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>{1}.capacity(), 1u);
  EXPECT_EQ(SpscRing<int>{2}.capacity(), 2u);
  EXPECT_EQ(SpscRing<int>{3}.capacity(), 4u);
  EXPECT_EQ(SpscRing<int>{8}.capacity(), 8u);
  EXPECT_EQ(SpscRing<int>{9}.capacity(), 16u);
  EXPECT_EQ(SpscRing<int>{1000}.capacity(), 1024u);
}

TEST(SpscRingTest, StartsEmptyAndPopFails) {
  SpscRing<int> ring{4};
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRingTest, FillsToCapacityThenRejects) {
  SpscRing<int> ring{4};
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_EQ(ring.size(), 4u);
  int overflow = 99;
  EXPECT_FALSE(ring.try_push(std::move(overflow)));
  EXPECT_EQ(overflow, 99);  // failed push leaves the argument untouched
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(int{4}));  // slot freed
}

TEST(SpscRingTest, FifoAcrossManyWraparounds) {
  SpscRing<std::uint64_t> ring{4};
  std::uint64_t next_push = 0, next_pop = 0;
  // Uneven push/pop cadence forces the indices to wrap the 4-slot buffer
  // hundreds of times; order must survive every wrap.
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 3; ++i) {
      if (ring.try_push(std::uint64_t{next_push})) ++next_push;
    }
    std::uint64_t out = 0;
    while (ring.try_pop(out)) {
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(SpscRingTest, CarriesMoveOnlyTypes) {
  SpscRing<std::unique_ptr<int>> ring{2};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(7)));
  std::unique_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(*out, 7);
}

TEST(SpscRingTest, FailedPushKeepsMoveOnlyValueIntact) {
  SpscRing<std::unique_ptr<int>> ring{1};
  EXPECT_TRUE(ring.try_push(std::make_unique<int>(1)));
  auto second = std::make_unique<int>(2);
  EXPECT_FALSE(ring.try_push(std::move(second)));
  ASSERT_NE(second, nullptr);  // still ours, safe to retry
  EXPECT_EQ(*second, 2);
}

// Two real threads hammer a tiny ring so both the full and the empty edge
// are hit constantly. The consumer asserts the exact sequence: any lost,
// duplicated, or reordered element fails immediately.
TEST(SpscRingTest, TwoThreadStressPreservesExactSequence) {
  constexpr std::uint64_t kCount = 200'000;
  SpscRing<std::uint64_t> ring{8};

  std::thread producer{[&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(std::uint64_t{i})) std::this_thread::yield();
    }
  }};

  std::uint64_t expected = 0;
  while (expected < kCount) {
    std::uint64_t out = 0;
    if (!ring.try_pop(out)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(out, expected);
    ++expected;
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace ddoshield::util
