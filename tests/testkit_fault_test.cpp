// FaultInjector behaviour: link flaps with exact conservation accounting,
// probabilistic degradation (loss, corruption, delay), container crash /
// restart semantics, and testbed-level device crash recovery.
#include <gtest/gtest.h>

#include "container/container.hpp"
#include "core/testbed.hpp"
#include "net/network.hpp"
#include "testkit/event_log.hpp"
#include "testkit/fault_injector.hpp"

namespace ddoshield::testkit {
namespace {

using util::SimTime;

// A two-node UDP rig: `sends` packets, one every 10 ms starting at t=0.
struct UdpRig {
  net::Network net;
  net::Node& a;
  net::Node& b;
  net::Link& link;
  std::uint64_t received = 0;
  SimTime last_arrival;

  explicit UdpRig(net::LinkConfig cfg = {.rate_bps = 10e6,
                                         .delay = SimTime::millis(20),
                                         .queue_bytes = 1 << 20})
      : a{net.add_node("a", net::Ipv4Address{10, 0, 0, 1})},
        b{net.add_node("b", net::Ipv4Address{10, 0, 0, 2})},
        link{net.add_link(a, b, cfg)} {
    a.set_default_route(0);
    b.set_default_route(0);
    b.add_tap([this](const net::Packet&, net::TapDirection dir) {
      if (dir == net::TapDirection::kReceived) {
        ++received;
        last_arrival = net.simulator().now();
      }
    });
  }

  void send_every_10ms(int count) {
    for (int i = 0; i < count; ++i) {
      net.simulator().schedule_at(SimTime::millis(10 * i), [this] {
        net::Packet pkt;
        pkt.dst = b.address();
        pkt.proto = net::IpProto::kUdp;
        pkt.src_port = 1000;
        pkt.dst_port = 2000;
        pkt.payload_bytes = 100;
        a.send(pkt);
      });
    }
  }
};

TEST(FaultInjectorTest, FlapDropsIngressAndLosesInFlight) {
  UdpRig rig;
  EventLog log;
  FaultInjector injector{rig.net.simulator(), 1, &log};

  rig.send_every_10ms(100);  // t = 0 .. 990 ms
  injector.flap_link(rig.link, SimTime::millis(305), SimTime::millis(200), "ab");
  rig.net.simulator().run_all();

  // Sends at 310..500 ms hit a downed link (20 ingress drops); packets
  // sent at 290 and 300 ms were still propagating (20 ms delay) when the
  // link dropped at 305 ms, so they are lost in flight.
  const auto& s = rig.link.stats_from(rig.a);
  EXPECT_EQ(s.dropped_packets, 20u);
  EXPECT_EQ(s.lost_in_flight_packets, 2u);
  EXPECT_EQ(s.tx_packets, s.delivered_packets + s.lost_in_flight_packets);
  EXPECT_EQ(rig.received, s.delivered_packets);
  EXPECT_EQ(rig.received, 78u);

  EXPECT_EQ(injector.faults_scheduled(), 2u);
  EXPECT_EQ(injector.faults_fired(), 2u);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_NE(log.lines()[0].find("fault=link_down ab"), std::string::npos);
  EXPECT_NE(log.lines()[1].find("fault=link_up ab"), std::string::npos);
}

TEST(FaultInjectorTest, DegradeWithCertainLossDropsTheWindow) {
  UdpRig rig;
  FaultInjector injector{rig.net.simulator(), 2};

  rig.send_every_10ms(50);  // t = 0 .. 490 ms
  net::LinkFault fault;
  fault.drop_probability = 1.0;
  injector.degrade_link(rig.link, SimTime::millis(105), SimTime::millis(100), fault);
  rig.net.simulator().run_all();

  // Sends at 110..200 ms (10 packets) are fault-dropped; everything else
  // arrives. Conservation still balances.
  const auto& s = rig.link.stats_from(rig.a);
  EXPECT_EQ(s.fault_dropped_packets, 10u);
  EXPECT_EQ(s.dropped_packets, 10u);
  EXPECT_EQ(rig.received, 40u);
  EXPECT_EQ(s.tx_packets, s.delivered_packets + s.lost_in_flight_packets);
  EXPECT_TRUE(rig.link.fault().active() == false);  // cleared at window end
}

TEST(FaultInjectorTest, CorruptionMarksDeliveredPackets) {
  UdpRig rig;
  std::uint64_t corrupted_seen = 0;
  rig.b.add_tap([&](const net::Packet& pkt, net::TapDirection dir) {
    if (dir == net::TapDirection::kReceived && pkt.corrupted) ++corrupted_seen;
  });
  FaultInjector injector{rig.net.simulator(), 3};

  rig.send_every_10ms(30);
  net::LinkFault fault;
  fault.corrupt_probability = 1.0;
  injector.degrade_link(rig.link, SimTime::millis(105), SimTime::millis(100), fault);
  rig.net.simulator().run_all();

  const auto& s = rig.link.stats_from(rig.a);
  EXPECT_EQ(s.corrupted_packets, 10u);
  EXPECT_EQ(corrupted_seen, 10u);
  EXPECT_EQ(rig.received, 30u);  // corrupted packets still arrive
}

TEST(FaultInjectorTest, ExtraDelayShiftsArrival) {
  UdpRig rig;
  FaultInjector injector{rig.net.simulator(), 4};

  // One packet inside the degraded window.
  rig.net.simulator().schedule_at(SimTime::millis(150), [&] {
    net::Packet pkt;
    pkt.dst = rig.b.address();
    pkt.proto = net::IpProto::kUdp;
    pkt.payload_bytes = 100;
    rig.a.send(pkt);
  });
  net::LinkFault fault;
  fault.extra_delay = SimTime::millis(50);
  injector.degrade_link(rig.link, SimTime::millis(100), SimTime::millis(200), fault);
  rig.net.simulator().run_all();

  ASSERT_EQ(rig.received, 1u);
  // Base arrival = send + serialization + 20 ms propagation; the fault
  // adds 50 ms on top.
  EXPECT_GE(rig.last_arrival, SimTime::millis(150 + 20 + 50));
  EXPECT_LT(rig.last_arrival, SimTime::millis(150 + 20 + 50 + 5));
}

TEST(FaultInjectorTest, PartitionTakesAllLinksDownTogether) {
  net::Network net;
  net::Node& a = net.add_node("a", net::Ipv4Address{10, 0, 0, 1});
  net::Node& b = net.add_node("b", net::Ipv4Address{10, 0, 0, 2});
  net::Node& c = net.add_node("c", net::Ipv4Address{10, 0, 0, 3});
  net::Link& ab = net.add_link(a, b);
  net::Link& bc = net.add_link(b, c);

  FaultInjector injector{net.simulator(), 5};
  injector.partition({&ab, &bc}, SimTime::millis(100), SimTime::millis(100));

  net.simulator().run_until(SimTime::millis(150));
  EXPECT_FALSE(ab.is_up());
  EXPECT_FALSE(bc.is_up());
  net.simulator().run_until(SimTime::millis(250));
  EXPECT_TRUE(ab.is_up());
  EXPECT_TRUE(bc.is_up());
}

TEST(FaultInjectorTest, CrashContainerKillsAndRestarts) {
  net::Network net;
  net::Node& n = net.add_node("host", net::Ipv4Address{10, 0, 0, 1});

  int entry_runs = 0;
  container::Container box{"box", container::Image{"img", "1", [&](container::Container&) {
                                                     ++entry_runs;
                                                   }}};
  box.attach_node(n);
  box.start();

  FaultInjector injector{net.simulator(), 6};
  injector.crash_container(box, SimTime::millis(100), SimTime::millis(300));

  net.simulator().run_until(SimTime::millis(200));
  EXPECT_EQ(box.state(), container::ContainerState::kStopped);
  EXPECT_TRUE(box.last_exit_crashed());

  net.simulator().run_all();
  EXPECT_EQ(box.state(), container::ContainerState::kRunning);
  EXPECT_FALSE(box.last_exit_crashed());
  EXPECT_EQ(box.restart_count(), 1u);
  EXPECT_EQ(entry_runs, 2);
}

TEST(FaultInjectorTest, TestbedDeviceCrashAndRecovery) {
  core::Scenario s;
  s.seed = 99;
  s.device_count = 2;
  s.duration = SimTime::seconds(2);
  s.infection_start = SimTime::seconds(10);  // no infection in this run
  core::Testbed bed{s};
  bed.deploy();

  FaultInjector injector{bed.network().simulator(), 7};
  injector.crash_node(
      SimTime::millis(500), SimTime::millis(400), [&bed] { bed.crash_device(0); },
      [&bed] { bed.restart_device(0); }, "dev_0");

  bed.run_until(SimTime::millis(700));
  EXPECT_EQ(bed.runtime().get("dev_0").state(), container::ContainerState::kStopped);
  EXPECT_TRUE(bed.runtime().get("dev_0").last_exit_crashed());
  EXPECT_EQ(bed.runtime().get("dev_1").state(), container::ContainerState::kRunning);

  bed.run();
  EXPECT_EQ(bed.runtime().get("dev_0").restart_count(), 1u);
  EXPECT_EQ(injector.faults_fired(), 2u);
}

}  // namespace
}  // namespace ddoshield::testkit
