// Tests for the container runtime emulation.
#include <gtest/gtest.h>

#include "container/runtime.hpp"
#include "net/network.hpp"

namespace ddoshield::container {
namespace {

struct RuntimeFixture : ::testing::Test {
  net::Network net;
  net::Node* node = nullptr;
  ContainerRuntime runtime;

  void SetUp() override {
    node = &net.add_node("host", net::Ipv4Address{10, 0, 0, 1});
    runtime.register_image({"test/image", "1.0", nullptr});
  }
};

TEST_F(RuntimeFixture, ImageRegistryRoundTrip) {
  EXPECT_TRUE(runtime.has_image("test/image:1.0"));
  EXPECT_FALSE(runtime.has_image("test/image:2.0"));
  EXPECT_EQ(runtime.image("test/image:1.0").name, "test/image");
  EXPECT_THROW(runtime.image("nope:1.0"), std::invalid_argument);
}

TEST_F(RuntimeFixture, ImageRefCombinesNameAndTag) {
  Image img{"a/b", "3.1", nullptr};
  EXPECT_EQ(img.ref(), "a/b:3.1");
}

TEST_F(RuntimeFixture, CreateStartStopLifecycle) {
  Container& c = runtime.create("c1", "test/image:1.0");
  EXPECT_EQ(c.state(), ContainerState::kCreated);
  c.attach_node(*node);
  c.start();
  EXPECT_EQ(c.state(), ContainerState::kRunning);
  EXPECT_EQ(runtime.running_count(), 1u);
  c.stop();
  EXPECT_EQ(c.state(), ContainerState::kStopped);
  EXPECT_EQ(runtime.running_count(), 0u);
}

TEST_F(RuntimeFixture, EntrypointRunsOnStart) {
  bool ran = false;
  runtime.register_image({"test/entry", "1", [&ran](Container&) { ran = true; }});
  Container& c = runtime.create("c2", "test/entry:1");
  c.attach_node(*node);
  EXPECT_FALSE(ran);
  c.start();
  EXPECT_TRUE(ran);
}

TEST_F(RuntimeFixture, StartWithoutNodeThrows) {
  Container& c = runtime.create("c3", "test/image:1.0");
  EXPECT_THROW(c.start(), std::logic_error);
}

TEST_F(RuntimeFixture, DoubleStartThrows) {
  Container& c = runtime.create("c4", "test/image:1.0");
  c.attach_node(*node);
  c.start();
  EXPECT_THROW(c.start(), std::logic_error);
}

TEST_F(RuntimeFixture, RebindingRunningContainerThrows) {
  Container& c = runtime.create("c5", "test/image:1.0");
  c.attach_node(*node);
  c.start();
  EXPECT_THROW(c.attach_node(*node), std::logic_error);
}

TEST_F(RuntimeFixture, DuplicateNameRejected) {
  runtime.create("dup", "test/image:1.0");
  EXPECT_THROW(runtime.create("dup", "test/image:1.0"), std::invalid_argument);
}

TEST_F(RuntimeFixture, UnknownImageRejected) {
  EXPECT_THROW(runtime.create("x", "missing:0"), std::invalid_argument);
}

TEST_F(RuntimeFixture, RemoveStopsAndErases) {
  Container& c = runtime.create("c6", "test/image:1.0");
  c.attach_node(*node);
  c.start();
  runtime.remove("c6");
  EXPECT_FALSE(runtime.exists("c6"));
  EXPECT_THROW(runtime.get("c6"), std::invalid_argument);
  EXPECT_THROW(runtime.remove("c6"), std::invalid_argument);
}

TEST_F(RuntimeFixture, StopHooksRunOnceInOrder) {
  Container& c = runtime.create("c7", "test/image:1.0");
  c.attach_node(*node);
  c.start();
  std::vector<int> order;
  c.on_stop([&] { order.push_back(1); });
  c.on_stop([&] { order.push_back(2); });
  c.stop();
  c.stop();  // second stop is a no-op
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST_F(RuntimeFixture, StopAllStopsEverything) {
  for (int i = 0; i < 3; ++i) {
    Container& c = runtime.create("m" + std::to_string(i), "test/image:1.0");
    c.attach_node(*node);
    c.start();
  }
  EXPECT_EQ(runtime.running_count(), 3u);
  runtime.stop_all();
  EXPECT_EQ(runtime.running_count(), 0u);
  EXPECT_EQ(runtime.list().size(), 3u);
}

TEST_F(RuntimeFixture, EnvVariables) {
  Container& c = runtime.create("env", "test/image:1.0");
  c.set_env("C2_ADDR", "10.0.0.2");
  EXPECT_EQ(c.env("C2_ADDR"), "10.0.0.2");
  EXPECT_EQ(c.env("MISSING", "fallback"), "fallback");
  EXPECT_EQ(c.env("MISSING"), "");
}

TEST_F(RuntimeFixture, NodeAccessWithoutAttachThrows) {
  Container& c = runtime.create("n", "test/image:1.0");
  EXPECT_THROW(c.node(), std::logic_error);
  c.attach_node(*node);
  EXPECT_EQ(&c.node(), node);
}

// --------------------------------------------------------------------------
// ResourceAccount
// --------------------------------------------------------------------------

TEST(ResourceAccountTest, CpuCounters) {
  ResourceAccount acc;
  acc.charge_cpu_ops(100);
  acc.charge_cpu_ops(50);
  acc.charge_cpu_time_ns(1000);
  EXPECT_EQ(acc.cpu_ops(), 150u);
  EXPECT_EQ(acc.cpu_time_ns(), 1000u);
}

TEST(ResourceAccountTest, HeapTracksPeak) {
  ResourceAccount acc;
  acc.alloc(1000);
  acc.alloc(500);
  EXPECT_EQ(acc.heap_bytes(), 1500u);
  acc.free(1200);
  EXPECT_EQ(acc.heap_bytes(), 300u);
  EXPECT_EQ(acc.peak_heap_bytes(), 1500u);
}

TEST(ResourceAccountTest, OverFreeThrows) {
  ResourceAccount acc;
  acc.alloc(10);
  EXPECT_THROW(acc.free(11), std::logic_error);
}

TEST(ResourceAccountTest, ResetClearsEverything) {
  ResourceAccount acc;
  acc.alloc(10);
  acc.charge_cpu_ops(5);
  acc.reset();
  EXPECT_EQ(acc.heap_bytes(), 0u);
  EXPECT_EQ(acc.peak_heap_bytes(), 0u);
  EXPECT_EQ(acc.cpu_ops(), 0u);
}

TEST(ResourceAccountTest, SummaryMentionsFields) {
  ResourceAccount acc;
  acc.alloc(2048);
  const std::string s = acc.summary();
  EXPECT_NE(s.find("heap_kb=2"), std::string::npos);
}

TEST(ScopedAllocationTest, RaiiChargesAndReleases) {
  ResourceAccount acc;
  {
    ScopedAllocation a{acc, 4096};
    EXPECT_EQ(acc.heap_bytes(), 4096u);
  }
  EXPECT_EQ(acc.heap_bytes(), 0u);
  EXPECT_EQ(acc.peak_heap_bytes(), 4096u);
}

TEST(ScopedAllocationTest, MoveTransfersOwnership) {
  ResourceAccount acc;
  ScopedAllocation a{acc, 100};
  ScopedAllocation b{std::move(a)};
  EXPECT_EQ(acc.heap_bytes(), 100u);
  ScopedAllocation c;
  c = std::move(b);
  EXPECT_EQ(acc.heap_bytes(), 100u);
}

TEST(ScopedAllocationTest, ResizeAdjustsCharge) {
  ResourceAccount acc;
  ScopedAllocation a{acc, 100};
  a.resize(250);
  EXPECT_EQ(acc.heap_bytes(), 250u);
  a.resize(50);
  EXPECT_EQ(acc.heap_bytes(), 50u);
  ScopedAllocation empty;
  EXPECT_THROW(empty.resize(10), std::logic_error);
}

}  // namespace
}  // namespace ddoshield::container
