// Tests for the open-addressing FlatTable behind the capture/feature hot
// path: collision chains under a degenerate hash, tombstone reuse, and
// rehashes preserving per-flow state across a window boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "capture/flat_table.hpp"
#include "capture/flow.hpp"

namespace ddoshield::capture {
namespace {

// Degenerate hash: every key lands on the same home slot, so every probe
// walks one linear collision chain.
struct CollidingHash {
  std::size_t operator()(int) const { return 0; }
};

TEST(FlatTableTest, InsertFindEraseRoundTrip) {
  FlatTable<int, std::string> table;
  table.find_or_insert(1) = "one";
  table.find_or_insert(2) = "two";
  table.find_or_insert(3) = "three";
  EXPECT_EQ(table.size(), 3u);

  ASSERT_NE(table.find(2), nullptr);
  EXPECT_EQ(*table.find(2), "two");
  EXPECT_EQ(table.find(99), nullptr);

  EXPECT_TRUE(table.erase(2));
  EXPECT_FALSE(table.erase(2));
  EXPECT_EQ(table.find(2), nullptr);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.tombstones(), 1u);
}

TEST(FlatTableTest, FindOrInsertReturnsSameSlotOnRepeat) {
  FlatTable<int, int> table;
  int& v = table.find_or_insert(7);
  v = 41;
  ++table.find_or_insert(7);
  EXPECT_EQ(*table.find(7), 42);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FlatTableTest, CollisionChainsResolveByLinearProbing) {
  FlatTable<int, int, CollidingHash> table(64);
  for (int k = 0; k < 16; ++k) table.find_or_insert(k) = k * 10;
  EXPECT_EQ(table.size(), 16u);
  for (int k = 0; k < 16; ++k) {
    ASSERT_NE(table.find(k), nullptr) << "key " << k;
    EXPECT_EQ(*table.find(k), k * 10);
  }
  EXPECT_EQ(table.find(16), nullptr);
  // All 16 keys share one home slot, so the chain must have been probed.
  EXPECT_GE(table.stats().max_probe_length, 15u);
}

TEST(FlatTableTest, EraseInMiddleOfChainKeepsTailReachable) {
  FlatTable<int, int, CollidingHash> table(64);
  for (int k = 0; k < 8; ++k) table.find_or_insert(k) = k;
  // Tombstone the middle of the chain; keys probed past it must stay
  // findable (lookups skip tombstones instead of stopping).
  EXPECT_TRUE(table.erase(3));
  for (int k = 0; k < 8; ++k) {
    if (k == 3) {
      EXPECT_EQ(table.find(k), nullptr);
    } else {
      ASSERT_NE(table.find(k), nullptr) << "key " << k;
    }
  }
}

TEST(FlatTableTest, InsertReusesFirstTombstoneInChain) {
  FlatTable<int, int, CollidingHash> table(64);
  for (int k = 0; k < 8; ++k) table.find_or_insert(k) = k;
  table.erase(2);
  table.erase(5);
  EXPECT_EQ(table.tombstones(), 2u);

  // A fresh key probing the same chain must land in the first tombstone.
  table.find_or_insert(100) = 1000;
  EXPECT_EQ(table.stats().tombstones_reclaimed, 1u);
  EXPECT_EQ(table.tombstones(), 1u);
  EXPECT_EQ(*table.find(100), 1000);

  // And re-inserting an erased key reclaims the remaining tombstone.
  table.find_or_insert(5) = 55;
  EXPECT_EQ(table.stats().tombstones_reclaimed, 2u);
  EXPECT_EQ(table.tombstones(), 0u);
  EXPECT_EQ(*table.find(5), 55);
}

TEST(FlatTableTest, GrowthRehashPreservesEveryEntry) {
  FlatTable<std::uint64_t, std::uint64_t> table(8);
  const std::size_t initial_capacity = table.capacity();
  for (std::uint64_t k = 0; k < 1000; ++k) table.find_or_insert(k) = k * k;
  EXPECT_GT(table.capacity(), initial_capacity);
  EXPECT_GE(table.stats().rehashes, 1u);
  EXPECT_EQ(table.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(table.find(k), nullptr) << "key " << k;
    EXPECT_EQ(*table.find(k), k * k);
  }
}

TEST(FlatTableTest, ChurnRehashDropsTombstonesKeepsLiveEntries) {
  // Heavy insert/erase churn in a bounded key space drives the combined
  // live+tombstone load over the 7/8 threshold repeatedly; every rehash
  // must compact tombstones without losing a live entry. Mirror against
  // std::map as the oracle.
  FlatTable<int, int> table(8);
  std::map<int, int> oracle;
  std::mt19937 rng{1234};
  for (int step = 0; step < 20000; ++step) {
    const int key = static_cast<int>(rng() % 64);
    if (rng() % 3 == 0) {
      EXPECT_EQ(table.erase(key), oracle.erase(key) > 0);
    } else {
      table.find_or_insert(key) = step;
      oracle[key] = step;
    }
  }
  EXPECT_EQ(table.size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    ASSERT_NE(table.find(key), nullptr) << "key " << key;
    EXPECT_EQ(*table.find(key), value);
  }
  table.for_each([&](const int& key, const int&) { EXPECT_EQ(oracle.count(key), 1u); });
}

TEST(FlatTableTest, RehashPreservesPerFlowStateAtWindowBoundary) {
  // The window-boundary scenario from the feature path: flow records
  // accumulated mid-window must survive a growth rehash bit-for-bit.
  FlatTable<FlowKey, FlowRecord, FlowKeyHash> table(8);
  std::vector<FlowKey> keys;
  for (std::uint32_t i = 0; i < 100; ++i) {
    FlowKey key{0x0a000001u + i, 0x0a0000ffu, static_cast<std::uint16_t>(40000 + i), 80, 6};
    FlowRecord& rec = table.find_or_insert(key);
    rec.first_seen = util::SimTime::millis(i);
    rec.last_seen = util::SimTime::millis(i + 5);
    rec.packets = i + 1;
    rec.bytes = (i + 1) * 100;
    rec.syn_count = 1;
    rec.malicious = (i % 7) == 0;
    keys.push_back(key);
  }
  EXPECT_GE(table.stats().rehashes, 1u);  // grew well past the initial 8 slots
  for (std::uint32_t i = 0; i < 100; ++i) {
    const FlowRecord* rec = table.find(keys[i]);
    ASSERT_NE(rec, nullptr) << "flow " << i;
    EXPECT_EQ(rec->first_seen, util::SimTime::millis(i));
    EXPECT_EQ(rec->last_seen, util::SimTime::millis(i + 5));
    EXPECT_EQ(rec->packets, i + 1u);
    EXPECT_EQ(rec->bytes, (i + 1u) * 100u);
    EXPECT_EQ(rec->syn_count, 1u);
    EXPECT_EQ(rec->malicious, (i % 7) == 0);
  }
}

TEST(FlatTableTest, ExplicitRehashAtSameCapacityCompactsTombstones) {
  FlatTable<int, int, CollidingHash> table(64);
  for (int k = 0; k < 16; ++k) table.find_or_insert(k) = k;
  for (int k = 0; k < 16; k += 2) table.erase(k);
  EXPECT_EQ(table.tombstones(), 8u);
  table.rehash(table.capacity());
  EXPECT_EQ(table.tombstones(), 0u);
  EXPECT_EQ(table.size(), 8u);
  for (int k = 1; k < 16; k += 2) {
    ASSERT_NE(table.find(k), nullptr);
    EXPECT_EQ(*table.find(k), k);
  }
}

TEST(FlatTableTest, ClearEmptiesEverything) {
  FlatTable<int, int> table;
  for (int k = 0; k < 20; ++k) table.find_or_insert(k) = k;
  table.erase(3);
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.tombstones(), 0u);
  EXPECT_EQ(table.find(5), nullptr);
  std::size_t visited = 0;
  table.for_each([&](const int&, const int&) { ++visited; });
  EXPECT_EQ(visited, 0u);
}

TEST(FlatTableTest, ForEachVisitsEachLiveEntryOnce) {
  FlatTable<int, int> table;
  for (int k = 0; k < 50; ++k) table.find_or_insert(k) = k;
  for (int k = 0; k < 50; k += 5) table.erase(k);
  std::set<int> seen;
  table.for_each([&](const int& key, const int& value) {
    EXPECT_EQ(key, value);
    EXPECT_TRUE(seen.insert(key).second) << "duplicate visit of " << key;
  });
  EXPECT_EQ(seen.size(), table.size());
}

TEST(MixU64Test, DistinctInputsGiveDistinctHashes) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) hashes.insert(mix_u64(i));
  EXPECT_EQ(hashes.size(), 1000u);  // sequential inputs must not collide
}

}  // namespace
}  // namespace ddoshield::capture
