// Offload-mode latency attribution: the flight recorder's window stages
// and the LatencyTracker's infer-ring/batch series must reconcile with the
// InferenceEngine's own counters on a seeded run — every completed batch
// is accounted for, ring waits show up exactly when the engine reports
// backpressure-prone queueing, and the per-packet detect-lag series covers
// every tapped packet.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "capture/tap.hpp"
#include "container/runtime.hpp"
#include "ids/infer_engine.hpp"
#include "ids/realtime_ids.hpp"
#include "net/network.hpp"
#include "obs/flight.hpp"
#include "obs/latency.hpp"
#include "obs/metrics.hpp"

namespace ddoshield::ids {
namespace {

using util::Rng;
using util::SimTime;

/// Port classifier (dst_port 9999 = attack), optionally slow per row so the
/// ring backs up while simulated windows keep closing.
class PortModel : public ml::Classifier {
 public:
  explicit PortModel(std::chrono::microseconds row_delay = {}) : delay_{row_delay} {}

  std::string name() const override { return "port"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  bool trained() const override { return true; }
  int predict(std::span<const double> row) const override {
    if (delay_.count() > 0) std::this_thread::sleep_for(delay_);
    return row[5] > 0.14 ? 1 : 0;  // dst_port 9999/65535 = 0.1526
  }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 1024; }
  std::uint64_t inference_scratch_bytes() const override { return 256; }

 private:
  std::chrono::microseconds delay_;
};

struct World {
  net::Network net;
  net::Node* sender = nullptr;
  net::Node* victim = nullptr;
  container::ContainerRuntime runtime;
  container::Container* ids_box = nullptr;
  capture::PacketTap tap;

  World() {
    sender = &net.add_node("sender", net::Ipv4Address{10, 0, 0, 1});
    victim = &net.add_node("victim", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*sender, *victim, net::LinkConfig{});
    sender->set_default_route(0);
    victim->set_default_route(0);
    tap.attach_to(*victim);
    runtime.register_image({"test/ids", "1", nullptr});
    ids_box = &runtime.create("ids", "test/ids:1");
    ids_box->attach_node(*victim);
    ids_box->start();
  }

  void emit(std::uint16_t dst_port, net::TrafficOrigin origin) {
    net::Packet p;
    p.dst = victim->address();
    p.dst_port = dst_port;
    p.proto = net::IpProto::kUdp;
    p.payload_bytes = 64;
    p.origin = origin;
    sender->send(std::move(p));
  }

  void schedule_mixed_workload() {
    for (int w = 0; w < 5; ++w) {
      for (int i = 0; i < 3 + w; ++i) {
        const bool attack = (w + i) % 2 == 0;
        net.simulator().schedule(
            SimTime::millis(static_cast<std::int64_t>(w) * 1000 + 100 + i * 50), [=, this] {
              emit(attack ? 9999 : 80,
                   attack ? net::TrafficOrigin::kMiraiUdpFlood : net::TrafficOrigin::kHttp);
            });
      }
    }
  }
};

struct SeriesBaselines {
  std::uint64_t batch, wait, ring, benign, attack;
  static SeriesBaselines capture() {
    auto& lat = obs::LatencyTracker::global();
    return SeriesBaselines{lat.series("flight.ids.infer_batch_ns").count(),
                           lat.series("flight.ids.infer_wait_ns").count(),
                           lat.series("flight.ids.ring_wait_ns").count(),
                           lat.series("flight.port.detect_lag_ns.benign").count(),
                           lat.series("flight.port.detect_lag_ns.attack").count()};
  }
};

std::uint64_t count_stage(const std::vector<obs::FlightEvent>& events,
                          obs::FlightStage stage) {
  std::uint64_t n = 0;
  for (const auto& e : events) n += e.stage == stage ? 1 : 0;
  return n;
}

struct GlobalFlightGuard {
  ~GlobalFlightGuard() {
    auto& f = obs::FlightRecorder::global();
    f.set_enabled(false);
    f.configure(obs::FlightConfig{});
  }
};

TEST(IdsFlightTest, OffloadAttributionReconcilesWithEngineCounters) {
  GlobalFlightGuard guard;
  auto& flight = obs::FlightRecorder::global();
  // Every packet sampled; ring big enough that nothing is overwritten.
  flight.configure(obs::FlightConfig{.capacity = 2048, .sample_every = 1});
  flight.set_enabled(true);
  const SeriesBaselines before = SeriesBaselines::capture();

  World world;
  // 200 us per row with a one-slot ring: simulated window closes outpace
  // the worker, so jobs sit in the ring (queue_wait_ns > 0) and submits
  // hit backpressure — the exact regime the attribution must explain.
  PortModel model{std::chrono::microseconds{200}};
  IdsConfig config;
  config.offload_inference = true;
  config.infer_ring_capacity = 1;
  RealTimeIds ids{*world.ids_box, Rng{1}, model, config};
  ids.attach_tap(world.tap);
  ids.start();
  world.schedule_mixed_workload();
  world.net.simulator().run_until(SimTime::millis(5500));
  ids.flush();

  const auto reports = ids.reports();
  ASSERT_GE(reports.size(), 5u);
  std::uint64_t total_packets = 0;
  for (const auto& r : reports) total_packets += r.packets;

  ASSERT_NE(ids.engine(), nullptr);
  const auto stats = ids.engine()->stats();
  EXPECT_EQ(stats.completed, reports.size());
  EXPECT_EQ(stats.rows_scored, total_packets);

  // Flight window stages reconcile with the engine's batch accounting:
  // one submit/complete/verdict triple per completed batch.
  const auto events = flight.events_in_order();
  EXPECT_EQ(flight.overwritten(), 0u) << "ring too small for the run";
  EXPECT_EQ(count_stage(events, obs::FlightStage::kWindowClose), reports.size());
  EXPECT_EQ(count_stage(events, obs::FlightStage::kInferSubmit), stats.submitted);
  EXPECT_EQ(count_stage(events, obs::FlightStage::kInferComplete), stats.completed);
  EXPECT_EQ(count_stage(events, obs::FlightStage::kVerdict), stats.completed);
  // Every tapped packet was sampled into the capture stage.
  EXPECT_EQ(count_stage(events, obs::FlightStage::kCaptureTap), total_packets);

  // Latency attribution: one batch-time observation per completed batch,
  // one around-the-batch wait per finalized window, and — in this seeded
  // backpressure regime — at least one nonzero ring sit. Ring waits can
  // never outnumber completed batches.
  auto& lat = obs::LatencyTracker::global();
  const std::uint64_t batch = lat.series("flight.ids.infer_batch_ns").count() - before.batch;
  const std::uint64_t wait = lat.series("flight.ids.infer_wait_ns").count() - before.wait;
  const std::uint64_t ring = lat.series("flight.ids.ring_wait_ns").count() - before.ring;
  EXPECT_EQ(batch, stats.completed);
  EXPECT_EQ(wait, stats.completed);
  EXPECT_GE(ring, 1u);
  EXPECT_LE(ring, stats.completed);
  EXPECT_GE(stats.backpressure_waits, 1u);

  // Per-packet end-to-end detect lag: every tapped packet lands in exactly
  // one traffic-class series.
  const std::uint64_t benign =
      lat.series("flight.port.detect_lag_ns.benign").count() - before.benign;
  const std::uint64_t attack =
      lat.series("flight.port.detect_lag_ns.attack").count() - before.attack;
  EXPECT_EQ(benign + attack, total_packets);
  EXPECT_GT(attack, 0u);
  EXPECT_GT(benign, 0u);
}

TEST(IdsFlightTest, InlineModeHasNoRingWait) {
  GlobalFlightGuard guard;
  auto& flight = obs::FlightRecorder::global();
  flight.configure(obs::FlightConfig{.capacity = 2048, .sample_every = 1});
  flight.set_enabled(true);
  const SeriesBaselines before = SeriesBaselines::capture();

  World world;
  PortModel model;
  IdsConfig config;
  config.offload_inference = false;
  RealTimeIds ids{*world.ids_box, Rng{1}, model, config};
  ids.attach_tap(world.tap);
  ids.start();
  world.schedule_mixed_workload();
  world.net.simulator().run_until(SimTime::millis(5500));
  ids.flush();

  const auto reports = ids.reports();
  ASSERT_GE(reports.size(), 5u);
  EXPECT_EQ(ids.engine(), nullptr);

  auto& lat = obs::LatencyTracker::global();
  // Inline scoring has no ring: batch and wait observations still cover
  // every window, but the ring-wait series stays untouched.
  EXPECT_EQ(lat.series("flight.ids.infer_batch_ns").count() - before.batch, reports.size());
  EXPECT_EQ(lat.series("flight.ids.infer_wait_ns").count() - before.wait, reports.size());
  EXPECT_EQ(lat.series("flight.ids.ring_wait_ns").count() - before.ring, 0u);
}

// ---------------------------------------------------------------------------
// ResourceMeter peak RSS
// ---------------------------------------------------------------------------

TEST(ResourceMeterPeakTest, PeakRssIsPopulatedAndMonotone) {
  ResourceMeter meter{"peaktest", ResourceMeterConfig{}};
  EXPECT_EQ(meter.peak_rss_kb(), 0u) << "no probe yet";
  const std::uint64_t current = meter.sample_rss_kb(0);
  const std::uint64_t peak = meter.peak_rss_kb();
  EXPECT_GT(current, 0u);
  EXPECT_GT(peak, 0u);
  // The high-water mark can never sit below the current working set.
  EXPECT_GE(peak, current);

  // Re-probing never regresses the peak.
  meter.sample_rss_kb(1);
  EXPECT_GE(meter.peak_rss_kb(), peak);

  // on_window_closed publishes the gauge alongside cpu/rss.
  meter.on_window_closed(2, 1'000'000, 1'000'000, 1'000'000'000);
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_GE(reg.gauge("ids.peaktest.rss_peak_kb").value(),
            static_cast<double>(peak));
}

}  // namespace
}  // namespace ddoshield::ids
