// Cross-module integration tests: the full capture → features → model →
// IDS chain under varied configurations, dataset persistence round trips
// through retraining, and all five detectors deployed end-to-end.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/pipeline.hpp"
#include "ml/feature_selection.hpp"
#include "ml/isolation_forest.hpp"
#include "ml/model_store.hpp"
#include "ml/random_forest.hpp"
#include "ml/svm.hpp"

namespace ddoshield::core {
namespace {

using botnet::AttackType;
using util::SimTime;

Scenario tiny_scenario(std::uint64_t seed) {
  Scenario s;
  s.seed = seed;
  s.device_count = 4;
  s.duration = SimTime::seconds(25);
  s.infection_start = SimTime::seconds(1);
  schedule_attack_cycle(s, SimTime::seconds(9), SimTime::seconds(24), SimTime::seconds(3),
                        SimTime::seconds(2),
                        {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood},
                        150.0);
  return s;
}

struct SharedPipeline {
  GenerationResult generation = run_generation(tiny_scenario(21));
  features::FeatureMatrix fm = features::extract_features(generation.dataset);
  ml::DesignMatrix x;
  std::vector<int> y;

  SharedPipeline() { to_design_matrix(fm, x, y); }

  static SharedPipeline& instance() {
    static SharedPipeline p;
    return p;
  }
};

// --------------------------------------------------------------------------
// Every registered detector runs end-to-end in the IDS container.
// --------------------------------------------------------------------------

class AllDetectorsEndToEnd : public ::testing::TestWithParam<const char*> {};

TEST_P(AllDetectorsEndToEnd, TrainsPersistsDetects) {
  auto& p = SharedPipeline::instance();
  auto model = ml::make_model(GetParam());
  model->fit(p.x, p.y);
  ASSERT_TRUE(model->trained());

  // Persist + reload (the PKL workflow), then deploy the *loaded* model.
  const auto bytes = ml::serialize_model(*model);
  const auto loaded = ml::deserialize_model(bytes);

  const DetectionResult result = run_detection(tiny_scenario(22), *loaded);
  EXPECT_GT(result.summary.windows, 5u);
  EXPECT_GT(result.summary.packets, 500u);
  // Everything should beat a coin flip on this easy scenario.
  EXPECT_GT(result.summary.average_accuracy, 0.5) << GetParam();
  EXPECT_GT(result.summary.cpu_percent, 0.0);
  EXPECT_GT(result.model_size_kb, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Detectors, AllDetectorsEndToEnd,
                         ::testing::Values("rf", "kmeans", "cnn", "svm", "iforest"));

// --------------------------------------------------------------------------
// Dataset persistence: save -> load -> retrain gives identical models.
// --------------------------------------------------------------------------

TEST(DatasetRoundTripTest, RetrainingFromCsvIsIdentical) {
  auto& p = SharedPipeline::instance();
  const std::string path = "/tmp/ddoshield_integration_roundtrip.csv";
  p.generation.dataset.save_csv(path);
  const capture::Dataset loaded = capture::Dataset::load_csv(path);
  std::filesystem::remove(path);
  ASSERT_EQ(loaded.size(), p.generation.dataset.size());

  const features::FeatureMatrix fm2 = features::extract_features(loaded);
  ml::DesignMatrix x2;
  std::vector<int> y2;
  to_design_matrix(fm2, x2, y2);
  ASSERT_EQ(x2.rows(), p.x.rows());
  EXPECT_EQ(y2, p.y);

  ml::LinearSvm a, b;
  a.fit(p.x, p.y);
  b.fit(x2, y2);
  EXPECT_EQ(ml::serialize_model(a), ml::serialize_model(b));
}

// --------------------------------------------------------------------------
// IDS window sweep: results remain sane across window sizes.
// --------------------------------------------------------------------------

class WindowSweepIntegration : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(WindowSweepIntegration, DetectionSaneAcrossWindows) {
  auto& p = SharedPipeline::instance();
  ml::LinearSvm svm;
  svm.fit(p.x, p.y);

  ids::IdsConfig cfg;
  cfg.window = SimTime::millis(GetParam());
  const DetectionResult result = run_detection(tiny_scenario(23), svm, cfg);
  EXPECT_GT(result.summary.windows, 0u);
  EXPECT_GT(result.summary.average_accuracy, 0.5);
  EXPECT_LE(result.summary.average_accuracy, 1.0);
  // Window count scales inversely with window size (within slack: empty
  // windows produce no report).
  const auto expected = static_cast<double>(tiny_scenario(23).duration.ns()) /
                        static_cast<double>(cfg.window.ns());
  EXPECT_LE(result.summary.windows, static_cast<std::uint64_t>(expected) + 1);
}

INSTANTIATE_TEST_SUITE_P(Windows, WindowSweepIntegration,
                         ::testing::Values(250, 500, 1000, 2000, 5000));

// --------------------------------------------------------------------------
// Feature selection composes with the IDS.
// --------------------------------------------------------------------------

TEST(FeatureSelectionIntegration, ReducedModelRunsInIds) {
  auto& p = SharedPipeline::instance();
  const auto ranking = ml::rank_features(p.x, p.y);
  const auto columns = ml::top_k_columns(ranking, 6);
  const ml::DesignMatrix reduced = ml::select_columns(p.x, columns);
  ml::RandomForest rf{ml::RandomForestConfig{.n_estimators = 20}};
  rf.fit(reduced, p.y);
  const ml::ColumnSubsetClassifier wrapped{rf, columns};

  const DetectionResult result = run_detection(tiny_scenario(24), wrapped);
  EXPECT_GT(result.summary.average_accuracy, 0.6);
}

// --------------------------------------------------------------------------
// Churn + attacks + IDS all at once (the kitchen-sink scenario).
// --------------------------------------------------------------------------

TEST(KitchenSinkTest, ChurnAttackAndDetectionCoexist) {
  auto& p = SharedPipeline::instance();
  ml::LinearSvm svm;
  svm.fit(p.x, p.y);

  Scenario s = tiny_scenario(25);
  s.churn.events_per_device_per_second = 0.03;
  s.churn.down_time = SimTime::seconds(3);
  s.attacks[1].spoof_sources = true;  // mix spoofed and unspoofed bursts

  const DetectionResult result = run_detection(s, svm);
  EXPECT_GT(result.summary.windows, 5u);
  EXPECT_GT(result.summary.average_accuracy, 0.5);
}

// --------------------------------------------------------------------------
// The skew adapter composes with any detector.
// --------------------------------------------------------------------------

class SkewAllModels : public ::testing::TestWithParam<const char*> {};

TEST_P(SkewAllModels, SkewServingNeverCrashes) {
  auto& p = SharedPipeline::instance();
  auto model = ml::make_model(GetParam());
  model->fit(p.x, p.y);
  const SkewServedClassifier skewed{*model};
  const DetectionResult result = run_detection(tiny_scenario(26), skewed);
  EXPECT_GT(result.summary.windows, 0u);
  EXPECT_GE(result.summary.average_accuracy, 0.0);
  EXPECT_LE(result.summary.average_accuracy, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Detectors, SkewAllModels,
                         ::testing::Values("rf", "kmeans", "cnn", "svm"));

}  // namespace
}  // namespace ddoshield::core
