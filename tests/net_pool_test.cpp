// Tests for the free-list PacketPool: slot reuse, block-at-a-time growth
// under exhaustion, payload-arena capacity retention, bypass mode, and the
// double-release abort.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace ddoshield::net {
namespace {

TEST(PacketPoolTest, FirstAcquireAllocatesOneBlock) {
  PacketPool pool;
  Packet* p = pool.acquire();
  ASSERT_NE(p, nullptr);
  const auto& s = pool.stats();
  EXPECT_EQ(s.allocated_blocks, 1u);
  EXPECT_EQ(s.allocated_packets, PacketPool::kBlockPackets);
  EXPECT_EQ(s.acquires, 1u);
  EXPECT_EQ(s.outstanding, 1u);
  pool.release(p);
  EXPECT_EQ(pool.stats().outstanding, 0u);
}

TEST(PacketPoolTest, ReleasedSlotIsReusedWithoutAllocation) {
  PacketPool pool;
  Packet* a = pool.acquire();
  pool.release(a);
  Packet* b = pool.acquire();
  // LIFO free list: the most recently released slot comes back first.
  EXPECT_EQ(a, b);
  const auto& s = pool.stats();
  EXPECT_EQ(s.allocated_blocks, 1u);
  EXPECT_EQ(s.allocated_packets, PacketPool::kBlockPackets);
  EXPECT_EQ(s.reuses, 1u);
  pool.release(b);
}

TEST(PacketPoolTest, ReusedSlotComesBackFieldReset) {
  PacketPool pool;
  Packet* p = pool.acquire();
  p->src = Ipv4Address(10, 0, 0, 1);
  p->dst = Ipv4Address(10, 0, 0, 2);
  p->proto = IpProto::kTcp;
  p->src_port = 1234;
  p->dst_port = 80;
  p->seq = 42;
  p->tcp_flags = TcpFlags::kSyn;
  p->payload_bytes = 512;
  p->app_data = "GET / HTTP/1.1";
  p->origin = TrafficOrigin::kMiraiSynFlood;
  p->uid = 7;
  p->stack_tcp = true;
  p->corrupted = true;
  pool.release(p);

  Packet* q = pool.acquire();
  ASSERT_EQ(p, q);
  EXPECT_EQ(q->src, Ipv4Address{});
  EXPECT_EQ(q->dst, Ipv4Address{});
  EXPECT_EQ(q->proto, IpProto::kUdp);
  EXPECT_EQ(q->src_port, 0);
  EXPECT_EQ(q->dst_port, 0);
  EXPECT_EQ(q->seq, 0u);
  EXPECT_EQ(q->tcp_flags, 0);
  EXPECT_EQ(q->payload_bytes, 0u);
  EXPECT_TRUE(q->app_data.empty());
  EXPECT_EQ(q->origin, TrafficOrigin::kInfrastructure);
  EXPECT_EQ(q->uid, 0u);
  EXPECT_FALSE(q->stack_tcp);
  EXPECT_FALSE(q->corrupted);
  pool.release(q);
}

TEST(PacketPoolTest, AppDataCapacitySurvivesReuse) {
  PacketPool pool;
  Packet* p = pool.acquire();
  p->app_data.assign(4096, 'x');
  const std::size_t cap = p->app_data.capacity();
  pool.release(p);
  Packet* q = pool.acquire();
  ASSERT_EQ(p, q);
  // clear() preserves the buffer — the retained capacity is the payload
  // arena that keeps steady-state sends allocation-free.
  EXPECT_TRUE(q->app_data.empty());
  EXPECT_GE(q->app_data.capacity(), cap);
  pool.release(q);
}

TEST(PacketPoolTest, ExhaustionGrowsBlockAtATime) {
  PacketPool pool;
  std::vector<Packet*> held;
  // Drain the first block completely, then one more acquire must grow by
  // exactly one block (not per-packet).
  for (std::size_t i = 0; i < PacketPool::kBlockPackets; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.stats().allocated_blocks, 1u);
  held.push_back(pool.acquire());
  const auto& s = pool.stats();
  EXPECT_EQ(s.allocated_blocks, 2u);
  EXPECT_EQ(s.allocated_packets, 2 * PacketPool::kBlockPackets);
  EXPECT_EQ(s.outstanding, PacketPool::kBlockPackets + 1);
  EXPECT_EQ(s.outstanding_high_water, PacketPool::kBlockPackets + 1);

  // All slots are distinct.
  std::vector<Packet*> sorted = held;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());

  for (Packet* p : held) pool.release(p);
  EXPECT_EQ(pool.stats().outstanding, 0u);

  // Warm pool: churning through the same depth again allocates nothing.
  const std::uint64_t allocated_before = pool.stats().allocated_packets;
  for (int round = 0; round < 3; ++round) {
    std::vector<Packet*> again;
    for (std::size_t i = 0; i < PacketPool::kBlockPackets + 1; ++i) again.push_back(pool.acquire());
    for (Packet* p : again) pool.release(p);
  }
  EXPECT_EQ(pool.stats().allocated_packets, allocated_before);
  EXPECT_EQ(pool.stats().allocated_blocks, 2u);
}

TEST(PacketPoolTest, BypassModeAllocatesPerPacket) {
  PacketPool pool;
  pool.set_bypass(true);
  EXPECT_TRUE(pool.bypass());
  Packet* a = pool.acquire();
  Packet* b = pool.acquire();
  EXPECT_EQ(pool.stats().allocated_packets, 2u);
  EXPECT_EQ(pool.stats().allocated_blocks, 0u);
  pool.release(a);
  pool.release(b);
  // Every bypass acquire is a fresh allocation — no reuse accounting.
  Packet* c = pool.acquire();
  EXPECT_EQ(pool.stats().allocated_packets, 3u);
  EXPECT_EQ(pool.stats().reuses, 0u);
  pool.release(c);
  pool.set_bypass(false);
  EXPECT_FALSE(pool.bypass());
}

#if GTEST_HAS_DEATH_TEST
TEST(PacketPoolDeathTest, DoubleReleaseAborts) {
  PacketPool pool;
  Packet* p = pool.acquire();
  pool.release(p);
  EXPECT_DEATH(pool.release(p), "double release");
}

TEST(PacketPoolDeathTest, BypassToggleWithOutstandingSlotsAborts) {
  PacketPool pool;
  Packet* p = pool.acquire();
  EXPECT_DEATH(pool.set_bypass(true), "outstanding");
  pool.release(p);
}
#endif

}  // namespace
}  // namespace ddoshield::net
