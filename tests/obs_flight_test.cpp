// FlightRecorder unit coverage plus the post-mortem contract: a seeded run
// with an injected TCP invariant violation writes a flight dump whose
// events replay byte-identically across two same-seed runs (wall clock
// off), and the dump is written exactly once.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "net/network.hpp"
#include "net/simulator.hpp"
#include "net/tcp.hpp"
#include "obs/flight.hpp"
#include "obs/trace.hpp"
#include "testkit/invariants.hpp"
#include "util/sim_time.hpp"

namespace ddoshield::obs {
namespace {

using util::SimTime;

// The wiring in net/capture/ids records into the process-global recorder,
// so tests that exercise it must restore a quiescent global state.
struct GlobalFlightGuard {
  ~GlobalFlightGuard() {
    auto& f = FlightRecorder::global();
    f.set_enabled(false);
    f.arm_dump("");
    f.configure(FlightConfig{});
  }
};

TEST(FlightRecorderTest, DisabledRecorderSamplesAndRecordsNothing) {
  FlightRecorder rec;
  EXPECT_FALSE(rec.enabled());
  EXPECT_FALSE(rec.sampled(0));
  EXPECT_FALSE(rec.sampled(16));
  rec.record(FlightStage::kNetEnqueue, 1, 10);
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.recorded(), 0u);
}

TEST(FlightRecorderTest, SamplesOneInNUids) {
  FlightRecorder rec;
  rec.set_enabled(true);
  // Default 1-in-16: multiples of 16 pass, everything else does not.
  for (std::uint64_t uid = 0; uid < 64; ++uid) {
    EXPECT_EQ(rec.sampled(uid), uid % 16 == 0) << "uid " << uid;
  }
  // sample_every=1 records every packet; non-powers round up.
  rec.configure(FlightConfig{.capacity = 16, .sample_every = 1});
  EXPECT_TRUE(rec.sampled(7));
  rec.configure(FlightConfig{.capacity = 16, .sample_every = 3});
  EXPECT_EQ(rec.config().sample_every, 4u);
}

TEST(FlightRecorderTest, RingOverwritesOldestFirst) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 4, .sample_every = 1});
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 6; ++i) {
    rec.record(FlightStage::kNetEnqueue, i, static_cast<std::int64_t>(i * 100));
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.recorded(), 6u);
  EXPECT_EQ(rec.overwritten(), 2u);

  const auto events = rec.events_in_order();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].id, i + 2) << "oldest two must have been evicted";
    EXPECT_EQ(events[i].sim_ns, static_cast<std::int64_t>((i + 2) * 100));
  }

  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(FlightRecorderTest, ConfigureRoundsCapacityToPowerOfTwo) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 5, .sample_every = 1});
  EXPECT_EQ(rec.config().capacity, 8u);
  rec.set_enabled(true);
  for (std::uint64_t i = 0; i < 8; ++i) rec.record(FlightStage::kLinkTx, i, 0);
  EXPECT_EQ(rec.overwritten(), 0u);
  rec.record(FlightStage::kLinkTx, 8, 0);
  EXPECT_EQ(rec.overwritten(), 1u);
}

TEST(FlightRecorderTest, WallClockConfigGatesStamps) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 4, .sample_every = 1, .wall_clock = false});
  EXPECT_EQ(rec.wall_now_ns(), 0);
  rec.configure(FlightConfig{.capacity = 4, .sample_every = 1, .wall_clock = true});
  const std::int64_t a = rec.wall_now_ns();
  const std::int64_t b = rec.wall_now_ns();
  EXPECT_GT(a, 0);
  EXPECT_GE(b, a);
}

TEST(FlightRecorderTest, WriteDumpEmitsSchemaReasonAndEvents) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 8, .sample_every = 1, .wall_clock = false});
  rec.set_enabled(true);
  rec.record(FlightStage::kNetEnqueue, 7, 100, 0, 1400);
  rec.record(FlightStage::kVerdict, 3, 200, 0, 12);

  std::ostringstream os;
  rec.write_dump(os, "unit \"test\"");
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\": \"ddoshield-flight-dump-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"net_enqueue\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\": \"verdict\""), std::string::npos);
  EXPECT_NE(json.find("\"arg\": 1400"), std::string::npos);
  // The embedded post-mortem metrics snapshot is the v2 schema.
  EXPECT_NE(json.find("\"schema\": \"ddoshield-metrics-v2\""), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);

  // Balanced braces outside strings (escape-aware).
  int depth = 0;
  bool in_string = false, escaped = false;
  for (const char c : json) {
    if (escaped) { escaped = false; continue; }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorderTest, DumpIfArmedWritesExactlyOnce) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 4, .sample_every = 1, .wall_clock = false});
  const std::string path = ::testing::TempDir() + "flight_once.json";
  std::remove(path.c_str());

  EXPECT_FALSE(rec.dump_if_armed("unarmed"));  // nothing armed yet
  rec.arm_dump(path);
  EXPECT_FALSE(rec.dumped());
  EXPECT_TRUE(rec.dump_if_armed("first"));
  EXPECT_TRUE(rec.dumped());
  EXPECT_FALSE(rec.dump_if_armed("second")) << "write-once";

  std::ifstream in{path};
  ASSERT_TRUE(in.is_open());
  std::ostringstream contents;
  contents << in.rdbuf();
  EXPECT_NE(contents.str().find("\"reason\": \"first\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, ExportToTraceMergesEventsAsInstants) {
  FlightRecorder rec;
  rec.configure(FlightConfig{.capacity = 8, .sample_every = 1, .wall_clock = false});
  rec.set_enabled(true);
  rec.record(FlightStage::kCaptureTap, 42, 1'000'000);
  rec.record(FlightStage::kWindowClose, 3, 2'000'000);

  TraceRecorder trace;
  trace.set_enabled(true);
  rec.export_to_trace(trace);
  EXPECT_EQ(trace.size(), 2u);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("capture_tap #42"), std::string::npos);
  EXPECT_NE(json.find("window_close #3"), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"flight\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Post-mortem end-to-end: seeded run, injected violation, deterministic dump
// ---------------------------------------------------------------------------

// One seeded mini-testbed run: a legal bulk transfer plus one stack-tagged
// data-before-handshake segment that trips the TCP invariant checker. The
// checker's first violation writes the armed flight dump mid-run.
std::string run_seeded_violation(const std::string& dump_path) {
  auto& flight = FlightRecorder::global();
  flight.configure(
      FlightConfig{.capacity = 256, .sample_every = 1, .wall_clock = false});
  flight.set_enabled(true);
  flight.arm_dump(dump_path);

  net::Network net;
  net::Node& a = net.add_node("a", net::Ipv4Address{10, 0, 0, 1});
  net::Node& b = net.add_node("b", net::Ipv4Address{10, 0, 0, 2});
  net.add_link(a, b);
  a.set_default_route(0);
  b.set_default_route(0);
  testkit::InvariantChecker checker{net.simulator()};
  checker.watch_node(a);
  checker.watch_node(b);

  auto listener = b.tcp().listen(80);
  listener->set_on_accept([](std::shared_ptr<net::TcpConnection> conn) {
    conn->set_on_data([](std::uint32_t, const std::string&) {});
  });
  auto conn = a.tcp().connect(net::Endpoint{b.address(), 80}, net::TrafficOrigin::kHttp);
  conn->set_on_connected([&conn] {
    conn->send(20'000, "bulk");
    conn->close();
  });

  net.simulator().schedule_at(SimTime::millis(5), [&] {
    net::Packet pkt;  // stack-tagged data with no preceding SYN
    pkt.dst = b.address();
    pkt.proto = net::IpProto::kTcp;
    pkt.src_port = 5999;
    pkt.dst_port = 81;
    pkt.tcp_flags = net::TcpFlags::kAck;
    pkt.seq = 100;
    pkt.ack = 1;
    pkt.payload_bytes = 512;
    pkt.stack_tcp = true;
    a.send(pkt);
  });
  net.simulator().run_all();

  const testkit::InvariantReport report = checker.finalize();
  EXPECT_EQ(report.total_violations, 1u) << report.summary();
  EXPECT_TRUE(flight.dumped()) << "first violation must write the armed dump";

  std::ifstream in{dump_path};
  EXPECT_TRUE(in.is_open()) << "missing dump: " << dump_path;
  std::ostringstream contents;
  contents << in.rdbuf();
  flight.set_enabled(false);
  flight.arm_dump("");
  return contents.str();
}

// The dump's events array is the replayable part: sim-time stamps only
// (wall_clock off zeroes the rest), so two same-seed runs must produce the
// same bytes even though the embedded metrics snapshot accumulates across
// runs in the process-global registry.
std::string events_array_of(const std::string& dump) {
  const std::size_t start = dump.find("\"events\": [");
  EXPECT_NE(start, std::string::npos);
  const std::size_t end = dump.find("]", start);
  EXPECT_NE(end, std::string::npos);
  return dump.substr(start, end - start + 1);
}

TEST(FlightPostMortemTest, InjectedViolationDumpsDeterministicEvents) {
  GlobalFlightGuard guard;
  const std::string path_a = ::testing::TempDir() + "flight_dump_a.json";
  const std::string path_b = ::testing::TempDir() + "flight_dump_b.json";
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  const std::string dump_a = run_seeded_violation(path_a);
  const std::string dump_b = run_seeded_violation(path_b);
  ASSERT_FALSE(dump_a.empty());
  ASSERT_FALSE(dump_b.empty());

  const std::string events_a = events_array_of(dump_a);
  const std::string events_b = events_array_of(dump_b);
  EXPECT_GT(events_a.size(), std::string{"\"events\": []"}.size())
      << "sampled packet stages must be present in the dump";
  EXPECT_EQ(events_a, events_b) << "same seed, same events, byte for byte";

  // The timeline covers the net stages of the sampled packets and records
  // them with sim-time stamps only.
  for (const char* stage : {"net_enqueue", "link_tx", "link_rx", "tcp_deliver"}) {
    EXPECT_NE(events_a.find(stage), std::string::npos) << stage;
  }
  EXPECT_NE(dump_a.find("\"reason\": \"tcp: data before handshake"), std::string::npos)
      << "dump reason should carry the violation message";

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

}  // namespace
}  // namespace ddoshield::obs
