// Tests for the benign traffic applications (HTTP, video streaming, FTP).
#include <gtest/gtest.h>

#include "apps/ftp.hpp"
#include "apps/http.hpp"
#include "apps/video.hpp"
#include "container/runtime.hpp"
#include "net/network.hpp"

namespace ddoshield::apps {
namespace {

using util::Rng;
using util::SimTime;

// A two-node world: one server container, one client container.
struct AppsFixture : ::testing::Test {
  net::Network net;
  net::Node* server_node = nullptr;
  net::Node* client_node = nullptr;
  container::ContainerRuntime runtime;
  container::Container* server_box = nullptr;
  container::Container* client_box = nullptr;

  void SetUp() override {
    server_node = &net.add_node("server", net::Ipv4Address{10, 0, 0, 1});
    client_node = &net.add_node("client", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*server_node, *client_node,
                 net::LinkConfig{.rate_bps = 50e6,
                                 .delay = SimTime::millis(2),
                                 .queue_bytes = 256 * 1024});
    server_node->set_default_route(0);
    client_node->set_default_route(0);

    runtime.register_image({"test/box", "1", nullptr});
    server_box = &runtime.create("server", "test/box:1");
    server_box->attach_node(*server_node);
    server_box->start();
    client_box = &runtime.create("client", "test/box:1");
    client_box->attach_node(*client_node);
    client_box->start();
  }

  net::Endpoint server_ep(std::uint16_t port) {
    return net::Endpoint{server_node->address(), port};
  }
};

// --------------------------------------------------------------------------
// HTTP
// --------------------------------------------------------------------------

TEST_F(AppsFixture, HttpSessionsCompleteRequests) {
  HttpServer server{*server_box, Rng{1}};
  server.start();

  HttpClientConfig cfg;
  cfg.server = server_ep(80);
  cfg.session_rate = 1.0;
  cfg.mean_requests_per_session = 3.0;
  HttpClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(30));
  EXPECT_GT(server.requests_served(), 10u);
  EXPECT_EQ(client.responses_completed(), server.requests_served());
  EXPECT_EQ(client.bytes_downloaded(), server.bytes_served());
  EXPECT_GT(client.response_latency().mean(), 0.0);
  EXPECT_EQ(client.failed_sessions(), 0u);
}

TEST_F(AppsFixture, HttpResponseSizesAreHeavyTailedButBounded) {
  HttpServerConfig scfg;
  scfg.mean_response_bytes = 8 * 1024;
  HttpServer server{*server_box, Rng{1}, scfg};
  server.start();

  HttpClientConfig cfg;
  cfg.server = server_ep(80);
  cfg.session_rate = 2.0;
  HttpClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(30));
  ASSERT_GT(server.requests_served(), 20u);
  const double mean_response = static_cast<double>(server.bytes_served()) /
                               static_cast<double>(server.requests_served());
  EXPECT_GT(mean_response, 1024.0);
  EXPECT_LT(mean_response, 256.0 * 1024.0);
}

TEST_F(AppsFixture, HttpClientFailsWhenServerAbsent) {
  HttpClientConfig cfg;
  cfg.server = server_ep(80);  // nobody listening
  cfg.session_rate = 2.0;
  HttpClient client{*client_box, Rng{2}, cfg};
  client.start();
  net.simulator().run_until(SimTime::seconds(10));
  EXPECT_EQ(client.responses_completed(), 0u);
  EXPECT_GT(client.failed_sessions(), 0u);
}

TEST_F(AppsFixture, HttpStopsCleanlyMidTraffic) {
  HttpServer server{*server_box, Rng{1}};
  server.start();
  HttpClientConfig cfg;
  cfg.server = server_ep(80);
  cfg.session_rate = 5.0;
  HttpClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(5));
  client.stop();
  server.stop();
  // The simulation must drain without crashes or stuck retransmit loops.
  net.simulator().run_until(SimTime::seconds(40));
  EXPECT_FALSE(client.running());
}

TEST_F(AppsFixture, HttpTrafficCarriesHttpOrigin) {
  HttpServer server{*server_box, Rng{1}};
  server.start();
  HttpClientConfig cfg;
  cfg.server = server_ep(80);
  cfg.session_rate = 2.0;
  HttpClient client{*client_box, Rng{2}, cfg};
  client.start();

  std::size_t http_origin = 0;
  std::size_t total = 0;
  server_node->add_tap([&](const net::Packet& p, net::TapDirection) {
    ++total;
    http_origin += p.origin == net::TrafficOrigin::kHttp;
  });
  net.simulator().run_until(SimTime::seconds(10));
  ASSERT_GT(total, 0u);
  EXPECT_EQ(http_origin, total);
}

// --------------------------------------------------------------------------
// Video
// --------------------------------------------------------------------------

TEST_F(AppsFixture, VideoStreamsChunksUntilViewerLeaves) {
  VideoServer server{*server_box, Rng{1}};
  server.start();

  VideoClientConfig cfg;
  cfg.server = server_ep(1935);
  cfg.session_rate = 0.5;
  cfg.mean_watch_seconds = 5.0;
  VideoClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(40));
  EXPECT_GT(server.streams_started(), 2u);
  EXPECT_GT(server.chunks_sent(), 20u);
  EXPECT_GT(client.bytes_received(), 20u * 4096u);
  EXPECT_EQ(client.sessions_started(), server.streams_started());
}

TEST_F(AppsFixture, VideoChunkCadenceMatchesConfig) {
  VideoServerConfig scfg;
  scfg.chunk_bytes = 2048;
  scfg.chunk_interval = SimTime::millis(50);
  VideoServer server{*server_box, Rng{1}, scfg};
  server.start();

  // Drive exactly one viewer session by hand so the cadence is isolated.
  auto conn = client_node->tcp().connect(server_ep(1935), net::TrafficOrigin::kVideo);
  conn->set_on_connected([&] { conn->send(96, "PLAY stream-1"); });
  net.simulator().run_until(SimTime::seconds(10));
  // ~20 chunks/s once the PLAY lands (a few ms in).
  EXPECT_GT(server.chunks_sent(), 150u);
  EXPECT_LT(server.chunks_sent(), 230u);
  EXPECT_EQ(server.streams_started(), 1u);
}

TEST_F(AppsFixture, VideoServerStopsStreamingWhenStopped) {
  VideoServer server{*server_box, Rng{1}};
  server.start();
  VideoClientConfig cfg;
  cfg.server = server_ep(1935);
  cfg.session_rate = 5.0;
  VideoClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(5));
  const auto chunks_at_stop = server.chunks_sent();
  ASSERT_GT(chunks_at_stop, 0u);
  server.stop();
  net.simulator().run_until(SimTime::seconds(10));
  EXPECT_EQ(server.chunks_sent(), chunks_at_stop);
}

// --------------------------------------------------------------------------
// FTP
// --------------------------------------------------------------------------

TEST_F(AppsFixture, FtpDownloadsCompleteOverDataConnections) {
  FtpServerConfig scfg;
  scfg.mean_file_bytes = 64 * 1024;
  FtpServer server{*server_box, Rng{1}, scfg};
  server.start();

  FtpClientConfig cfg;
  cfg.server = server_ep(21);
  cfg.session_rate = 0.5;
  cfg.mean_files_per_session = 2.0;
  cfg.mean_pause_seconds = 0.5;
  FtpClient client{*client_box, Rng{2}, cfg};
  client.start();

  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_GT(client.downloads_completed(), 3u);
  // The cut-off can strand a transfer mid-confirmation; both sides must
  // otherwise agree.
  EXPECT_GE(client.downloads_completed(), server.transfers_completed());
  EXPECT_LE(client.downloads_completed() - server.transfers_completed(), 3u);
  EXPECT_GE(client.bytes_downloaded(), client.downloads_completed() * 1024u);
  EXPECT_EQ(client.failed_downloads(), 0u);
}

TEST_F(AppsFixture, FtpUsesSeparateDataPort) {
  FtpServer server{*server_box, Rng{1}};
  server.start();
  FtpClientConfig cfg;
  cfg.server = server_ep(21);
  cfg.session_rate = 1.0;
  cfg.mean_files_per_session = 1.0;
  FtpClient client{*client_box, Rng{2}, cfg};
  client.start();

  bool saw_data_port = false;
  server_node->add_tap([&](const net::Packet& p, net::TapDirection dir) {
    if (dir == net::TapDirection::kReceived && p.proto == net::IpProto::kTcp &&
        p.dst_port != 21 && p.has_flag(net::TcpFlags::kSyn)) {
      saw_data_port = true;
    }
  });
  net.simulator().run_until(SimTime::seconds(30));
  ASSERT_GT(client.downloads_completed(), 0u);
  EXPECT_TRUE(saw_data_port);
}

TEST_F(AppsFixture, FtpClientFailsGracefullyWithoutServer) {
  FtpClientConfig cfg;
  cfg.server = server_ep(21);
  cfg.session_rate = 2.0;
  FtpClient client{*client_box, Rng{2}, cfg};
  client.start();
  net.simulator().run_until(SimTime::seconds(15));
  EXPECT_EQ(client.downloads_completed(), 0u);
}

// --------------------------------------------------------------------------
// App base behaviour
// --------------------------------------------------------------------------

TEST_F(AppsFixture, ContainerStopStopsApps) {
  HttpServer server{*server_box, Rng{1}};
  server.start();
  EXPECT_TRUE(server.running());
  server_box->stop();
  EXPECT_FALSE(server.running());
}

TEST_F(AppsFixture, AppStartIsIdempotent) {
  HttpServer server{*server_box, Rng{1}};
  server.start();
  EXPECT_NO_THROW(server.start());
  EXPECT_TRUE(server.running());
}

TEST_F(AppsFixture, MixedWorkloadsShareTheLink) {
  HttpServer http_server{*server_box, Rng{1}};
  http_server.start();
  VideoServer video_server{*server_box, Rng{2}};
  video_server.start();
  FtpServer ftp_server{*server_box, Rng{3}};
  ftp_server.start();

  HttpClientConfig hcfg;
  hcfg.server = server_ep(80);
  hcfg.session_rate = 1.0;
  HttpClient http_client{*client_box, Rng{4}, hcfg};
  http_client.start();

  VideoClientConfig vcfg;
  vcfg.server = server_ep(1935);
  vcfg.session_rate = 0.3;
  VideoClient video_client{*client_box, Rng{5}, vcfg};
  video_client.start();

  FtpClientConfig fcfg;
  fcfg.server = server_ep(21);
  fcfg.session_rate = 0.2;
  FtpClient ftp_client{*client_box, Rng{6}, fcfg};
  ftp_client.start();

  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_GT(http_client.responses_completed(), 0u);
  EXPECT_GT(video_client.bytes_received(), 0u);
  EXPECT_GT(ftp_client.downloads_completed(), 0u);
}

}  // namespace
}  // namespace ddoshield::apps
