// Tests for the TCP state machine: handshake, data transfer, loss recovery,
// teardown, RSTs, and the flood behaviours the testbed relies on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/network.hpp"
#include "net/tcp.hpp"

namespace ddoshield::net {
namespace {

using util::SimTime;

struct TcpFixture : ::testing::Test {
  Network net;
  Node* client = nullptr;
  Node* server = nullptr;
  Link* link = nullptr;

  void SetUp() override {
    client = &net.add_node("client", Ipv4Address{10, 0, 0, 1});
    server = &net.add_node("server", Ipv4Address{10, 0, 0, 2});
    link = &net.add_link(*client, *server,
                         LinkConfig{.rate_bps = 80e6,
                                    .delay = SimTime::millis(1),
                                    .queue_bytes = 512 * 1024});
    client->set_default_route(0);
    server->set_default_route(0);
  }

  Endpoint server_ep(std::uint16_t port) { return Endpoint{server->address(), port}; }
};

TEST_F(TcpFixture, ThreeWayHandshakeEstablishes) {
  auto listener = server->tcp().listen(80);
  std::shared_ptr<TcpConnection> accepted;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) { accepted = std::move(c); });

  bool connected = false;
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_connected([&] { connected = true; });

  net.simulator().run_until(SimTime::seconds(1));
  EXPECT_TRUE(connected);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(conn->state(), TcpState::kEstablished);
  EXPECT_EQ(accepted->state(), TcpState::kEstablished);
  EXPECT_EQ(listener->accepted(), 1u);
  EXPECT_EQ(listener->half_open(), 0u);
}

TEST_F(TcpFixture, HandshakePacketsCarryConnectionOrigin) {
  auto listener = server->tcp().listen(80, 128, TrafficOrigin::kHttp);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});

  std::vector<TrafficOrigin> seen;
  server->add_tap([&](const Packet& p, TapDirection d) {
    if (d == TapDirection::kReceived || d == TapDirection::kSent) seen.push_back(p.origin);
  });

  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  net.simulator().run_until(SimTime::seconds(1));
  ASSERT_GE(seen.size(), 3u);
  for (auto o : seen) EXPECT_EQ(o, TrafficOrigin::kHttp);
}

TEST_F(TcpFixture, DataDeliveredInOrderWithAppData) {
  auto listener = server->tcp().listen(80);
  std::string received_msg;
  std::uint64_t received_bytes = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    auto conn = c;
    conn->set_on_data([&received_msg, &received_bytes](std::uint32_t n, const std::string& m) {
      received_bytes += n;
      if (!m.empty()) received_msg = m;
    });
  });

  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_connected([&] { conn->send(5000, "GET /index.html"); });

  net.simulator().run_until(SimTime::seconds(2));
  EXPECT_EQ(received_bytes, 5000u);
  EXPECT_EQ(received_msg, "GET /index.html");
  EXPECT_EQ(conn->bytes_sent(), 5000u);
}

TEST_F(TcpFixture, LargeTransferCompletesAndIsCountedBothSides) {
  auto listener = server->tcp().listen(80);
  std::shared_ptr<TcpConnection> accepted;
  std::uint64_t got = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    accepted = c;
    accepted->set_on_data([&](std::uint32_t n, const std::string&) { got += n; });
  });

  constexpr std::uint32_t kSize = 1'000'000;
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kFtp);
  conn->set_on_connected([&] { conn->send(kSize); });

  net.simulator().run_until(SimTime::seconds(10));
  EXPECT_EQ(got, kSize);
  EXPECT_EQ(accepted->bytes_received(), kSize);
}

TEST_F(TcpFixture, BidirectionalEcho) {
  auto listener = server->tcp().listen(7);
  listener->set_on_accept([](std::shared_ptr<TcpConnection> c) {
    auto conn = c;
    conn->set_on_data([conn](std::uint32_t n, const std::string& m) {
      conn->send(n, "echo:" + m);
    });
  });

  std::string reply;
  auto conn = client->tcp().connect(server_ep(7), TrafficOrigin::kHttp);
  conn->set_on_data([&](std::uint32_t, const std::string& m) { reply = m; });
  conn->set_on_connected([&] { conn->send(100, "ping"); });

  net.simulator().run_until(SimTime::seconds(2));
  EXPECT_EQ(reply, "echo:ping");
}

TEST_F(TcpFixture, GracefulCloseBothSidesReachClosed) {
  auto listener = server->tcp().listen(80);
  std::shared_ptr<TcpConnection> accepted;
  TcpCloseReason server_reason{};
  bool server_closed = false;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    accepted = c;
    accepted->set_on_peer_fin([&, c] { c->close(); });
    accepted->set_on_closed([&](TcpCloseReason r) {
      server_closed = true;
      server_reason = r;
    });
  });

  bool client_closed = false;
  TcpCloseReason client_reason{};
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_connected([&] { conn->close(); });
  conn->set_on_closed([&](TcpCloseReason r) {
    client_closed = true;
    client_reason = r;
  });

  net.simulator().run_until(SimTime::seconds(5));
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(client_reason, TcpCloseReason::kGracefulClose);
  EXPECT_EQ(server_reason, TcpCloseReason::kGracefulClose);
  EXPECT_EQ(server->tcp().active_connections(), 0u);
  EXPECT_EQ(client->tcp().active_connections(), 0u);
}

TEST_F(TcpFixture, DataBeforeCloseIsDeliveredThenFin) {
  auto listener = server->tcp().listen(80);
  std::uint64_t got = 0;
  bool peer_fin = false;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    auto conn = c;
    conn->set_on_data([&](std::uint32_t n, const std::string&) { got += n; });
    conn->set_on_peer_fin([&, conn] {
      peer_fin = true;
      conn->close();
    });
  });

  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_connected([&] {
    conn->send(40000, "payload");
    conn->close();  // FIN must trail all queued data
  });

  net.simulator().run_until(SimTime::seconds(5));
  EXPECT_EQ(got, 40000u);
  EXPECT_TRUE(peer_fin);
}

TEST_F(TcpFixture, ConnectToClosedPortGetsReset) {
  bool closed = false;
  TcpCloseReason reason{};
  auto conn = client->tcp().connect(server_ep(81), TrafficOrigin::kHttp);
  conn->set_on_closed([&](TcpCloseReason r) {
    closed = true;
    reason = r;
  });
  net.simulator().run_until(SimTime::seconds(2));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kReset);
  EXPECT_EQ(server->tcp().rst_sent(), 1u);
}

TEST_F(TcpFixture, SynRetransmitsWhenServerSilent) {
  // No listener and suppress RSTs by dropping the link server->client.
  auto listener_none = 0;
  (void)listener_none;
  // Use a black-hole: point client's default route at a dead link? Simpler:
  // connect to an address with no node — but routing needs a route. Use the
  // downed-link trick after the SYN leaves: here, drop ALL traffic.
  link->set_up(false);
  bool closed = false;
  TcpCloseReason reason{};
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_closed([&](TcpCloseReason r) {
    closed = true;
    reason = r;
  });
  net.simulator().run_until(SimTime::seconds(60));
  EXPECT_TRUE(closed);
  EXPECT_EQ(reason, TcpCloseReason::kConnectTimeout);
  EXPECT_GE(conn->retransmissions(), 4u);
}

TEST_F(TcpFixture, LossyTransferRecoversViaRetransmission) {
  // Tight queue forces drops under the initial window burst.
  Network lossy_net;
  Node& c = lossy_net.add_node("c", Ipv4Address{10, 0, 0, 1});
  Node& s = lossy_net.add_node("s", Ipv4Address{10, 0, 0, 2});
  lossy_net.add_link(c, s,
                     LinkConfig{.rate_bps = 4e6,
                                .delay = SimTime::millis(5),
                                .queue_bytes = 4000});
  c.set_default_route(0);
  s.set_default_route(0);

  auto listener = s.tcp().listen(80);
  std::uint64_t got = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> conn) {
    conn->set_on_data([&](std::uint32_t n, const std::string&) { got += n; });
  });

  constexpr std::uint32_t kSize = 200'000;
  auto conn = c.tcp().connect(Endpoint{s.address(), 80}, TrafficOrigin::kFtp);
  conn->set_on_connected([&] { conn->send(kSize); });

  lossy_net.simulator().run_until(SimTime::seconds(120));
  EXPECT_EQ(got, kSize);
  EXPECT_GT(conn->retransmissions(), 0u);
}

TEST_F(TcpFixture, ListenerBacklogExhaustionDropsNewSyns) {
  auto listener = server->tcp().listen(80, /*backlog=*/4);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});

  // Raw SYNs from spoofed sources that will never complete the handshake.
  for (int i = 0; i < 20; ++i) {
    Packet syn;
    syn.src = Ipv4Address{172, 16, 0, static_cast<std::uint8_t>(i + 1)};
    syn.dst = server->address();
    syn.src_port = static_cast<std::uint16_t>(10000 + i);
    syn.dst_port = 80;
    syn.proto = IpProto::kTcp;
    syn.tcp_flags = TcpFlags::kSyn;
    syn.seq = 1000 + static_cast<std::uint32_t>(i);
    syn.origin = TrafficOrigin::kMiraiSynFlood;
    client->send(std::move(syn));
  }
  net.simulator().run_until(SimTime::millis(100));
  EXPECT_EQ(listener->half_open(), 4u);
  EXPECT_EQ(listener->backlog_drops(), 16u);

  // Embryos expire after SYN-ACK retries; slots free up again.
  net.simulator().run_until(SimTime::seconds(30));
  EXPECT_EQ(listener->half_open(), 0u);
  EXPECT_EQ(listener->accepted(), 0u);
}

TEST_F(TcpFixture, SynCookiesKeepServiceAvailableUnderBacklogExhaustion) {
  server->tcp().set_syn_cookies(true);  // watermark defaults to backlog/2
  auto listener = server->tcp().listen(80, /*backlog=*/4);
  std::shared_ptr<TcpConnection> accepted;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    accepted = std::move(c);
    accepted->set_on_data([&](std::uint32_t, const std::string& msg) {
      if (msg == "ping") accepted->send(16, "pong");
    });
  });

  // The same spoofed flood that exhausts the backlog in the test above.
  for (int i = 0; i < 20; ++i) {
    Packet syn;
    syn.src = Ipv4Address{172, 16, 0, static_cast<std::uint8_t>(i + 1)};
    syn.dst = server->address();
    syn.src_port = static_cast<std::uint16_t>(10000 + i);
    syn.dst_port = 80;
    syn.proto = IpProto::kTcp;
    syn.tcp_flags = TcpFlags::kSyn;
    syn.seq = 1000 + static_cast<std::uint32_t>(i);
    syn.origin = TrafficOrigin::kMiraiSynFlood;
    client->send(std::move(syn));
  }
  net.simulator().run_until(SimTime::millis(100));

  // Above the watermark the server answers statelessly: the embryo store
  // is pinned at the watermark instead of filling, and nothing is dropped.
  EXPECT_EQ(listener->half_open(), 2u);
  EXPECT_EQ(listener->backlog_drops(), 0u);
  EXPECT_EQ(server->tcp().syn_cookies_sent(), 18u);

  // A legitimate client still gets in — its ACK validates the cookie and
  // the connection is created directly ESTABLISHED, data flowing both ways.
  bool connected = false;
  std::string reply;
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_connected([&] {
    connected = true;
    conn->send(16, "ping");
  });
  conn->set_on_data([&](std::uint32_t, const std::string& msg) { reply = msg; });
  net.simulator().run_until(SimTime::millis(300));

  EXPECT_TRUE(connected);
  ASSERT_NE(accepted, nullptr);
  EXPECT_EQ(accepted->state(), TcpState::kEstablished);
  EXPECT_EQ(reply, "pong");
  EXPECT_GE(server->tcp().syn_cookies_accepted(), 1u);
}

TEST_F(TcpFixture, SynCookieIsnIsDeterministicPerTuple) {
  server->tcp().set_syn_cookies(true);
  const Ipv4Address c{10, 0, 0, 1};
  const Ipv4Address s{10, 0, 0, 2};
  const std::uint32_t a = server->tcp().syn_cookie_isn(c, s, 5555, 80, 1234);
  EXPECT_EQ(a, server->tcp().syn_cookie_isn(c, s, 5555, 80, 1234));
  // Any field change re-keys the cookie.
  EXPECT_NE(a, server->tcp().syn_cookie_isn(c, s, 5556, 80, 1234));
  EXPECT_NE(a, server->tcp().syn_cookie_isn(c, s, 5555, 80, 1235));
  // And another host derives a different secret from its address.
  EXPECT_NE(a, client->tcp().syn_cookie_isn(c, s, 5555, 80, 1234));
}

TEST_F(TcpFixture, RetransmittedSynGetsIdenticalCookie) {
  server->tcp().set_syn_cookies(true);
  auto listener = server->tcp().listen(80, /*backlog=*/2);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});

  // Saturate to the watermark (backlog/2 = 1) so cookies activate.
  auto forge_syn = [&](std::uint8_t host, std::uint16_t port) {
    Packet syn;
    syn.src = Ipv4Address{172, 16, 0, host};
    syn.dst = server->address();
    syn.src_port = port;
    syn.dst_port = 80;
    syn.proto = IpProto::kTcp;
    syn.tcp_flags = TcpFlags::kSyn;
    syn.seq = 42;
    syn.origin = TrafficOrigin::kMiraiSynFlood;
    client->send(std::move(syn));
  };
  forge_syn(1, 10000);

  std::vector<std::uint32_t> cookie_seqs;
  server->add_tap([&](const Packet& p, TapDirection d) {
    if (d == TapDirection::kSent && p.has_flag(TcpFlags::kSyn) &&
        p.has_flag(TcpFlags::kAck) && p.dst == Ipv4Address{172, 16, 0, 2}) {
      cookie_seqs.push_back(p.seq);
    }
  });
  forge_syn(2, 20000);  // gets a cookie SYN-ACK
  net.simulator().run_until(SimTime::millis(50));
  forge_syn(2, 20000);  // "retransmitted" SYN: identical cookie
  net.simulator().run_until(SimTime::millis(100));

  ASSERT_EQ(cookie_seqs.size(), 2u);
  EXPECT_EQ(cookie_seqs[0], cookie_seqs[1]);
  EXPECT_EQ(cookie_seqs[0], server->tcp().syn_cookie_isn(Ipv4Address{172, 16, 0, 2},
                                                         server->address(), 20000, 80, 42));
}

TEST_F(TcpFixture, AckWithBadCookieIsRejectedWithRst) {
  server->tcp().set_syn_cookies(true);
  auto listener = server->tcp().listen(80, /*backlog=*/4);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});

  // A forged ACK that never saw a cookie: validation fails, stray-ACK RST.
  Packet ack;
  ack.src = Ipv4Address{172, 16, 0, 9};
  ack.dst = server->address();
  ack.src_port = 3333;
  ack.dst_port = 80;
  ack.proto = IpProto::kTcp;
  ack.tcp_flags = TcpFlags::kAck;
  ack.seq = 77;
  ack.ack = 88;
  ack.origin = TrafficOrigin::kMiraiAckFlood;
  client->send(std::move(ack));
  net.simulator().run_until(SimTime::millis(100));

  EXPECT_EQ(server->tcp().syn_cookies_rejected(), 1u);
  EXPECT_EQ(server->tcp().syn_cookies_accepted(), 0u);
  EXPECT_EQ(server->tcp().rst_sent(), 1u);
  EXPECT_EQ(listener->accepted(), 0u);
}

TEST_F(TcpFixture, SynCookiesOffIsByteForByteTheOldBehavior) {
  // The switch is off by default; the config stays inert unless enabled.
  EXPECT_FALSE(server->tcp().syn_cookies_enabled());
  auto listener = server->tcp().listen(80, /*backlog=*/4);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});
  for (int i = 0; i < 20; ++i) {
    Packet syn;
    syn.src = Ipv4Address{172, 16, 0, static_cast<std::uint8_t>(i + 1)};
    syn.dst = server->address();
    syn.src_port = static_cast<std::uint16_t>(10000 + i);
    syn.dst_port = 80;
    syn.proto = IpProto::kTcp;
    syn.tcp_flags = TcpFlags::kSyn;
    syn.seq = 1000 + static_cast<std::uint32_t>(i);
    syn.origin = TrafficOrigin::kMiraiSynFlood;
    client->send(std::move(syn));
  }
  net.simulator().run_until(SimTime::millis(100));
  EXPECT_EQ(listener->half_open(), 4u);
  EXPECT_EQ(listener->backlog_drops(), 16u);
  EXPECT_EQ(server->tcp().syn_cookies_sent(), 0u);
}

TEST_F(TcpFixture, StrayAckDrawsRst) {
  Packet ack;
  ack.src = Ipv4Address{172, 16, 0, 9};
  ack.dst = server->address();
  ack.src_port = 3333;
  ack.dst_port = 80;
  ack.proto = IpProto::kTcp;
  ack.tcp_flags = TcpFlags::kAck;
  ack.seq = 77;
  ack.ack = 88;
  ack.origin = TrafficOrigin::kMiraiAckFlood;
  client->send(std::move(ack));
  net.simulator().run_until(SimTime::millis(100));
  EXPECT_EQ(server->tcp().rst_sent(), 1u);
}

TEST_F(TcpFixture, RstIsNeverAnsweredWithRst) {
  Packet rst;
  rst.src = Ipv4Address{172, 16, 0, 9};
  rst.dst = server->address();
  rst.src_port = 3333;
  rst.dst_port = 80;
  rst.proto = IpProto::kTcp;
  rst.tcp_flags = TcpFlags::kRst;
  client->send(std::move(rst));
  net.simulator().run_until(SimTime::millis(100));
  EXPECT_EQ(server->tcp().rst_sent(), 0u);
}

TEST_F(TcpFixture, RstTearsDownEstablishedConnection) {
  auto listener = server->tcp().listen(80);
  std::shared_ptr<TcpConnection> accepted;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) { accepted = c; });

  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  net.simulator().run_until(SimTime::seconds(1));
  ASSERT_NE(accepted, nullptr);

  bool server_closed = false;
  TcpCloseReason reason{};
  accepted->set_on_closed([&](TcpCloseReason r) {
    server_closed = true;
    reason = r;
  });
  conn->abort();
  net.simulator().run_until(SimTime::seconds(2));
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(reason, TcpCloseReason::kReset);
  EXPECT_EQ(conn->state(), TcpState::kClosed);
}

TEST_F(TcpFixture, SendOnUnconnectedSocketThrows) {
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  EXPECT_THROW(conn->send(100), std::logic_error);  // still SYN_SENT
}

TEST_F(TcpFixture, DoubleListenOnSamePortThrows) {
  auto l1 = server->tcp().listen(80);
  EXPECT_THROW(server->tcp().listen(80), std::invalid_argument);
}

TEST_F(TcpFixture, ClosedListenerIgnoresNewSyns) {
  auto listener = server->tcp().listen(80);
  listener->close();
  bool closed = false;
  TcpCloseReason reason{};
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_closed([&](TcpCloseReason r) {
    closed = true;
    reason = r;
  });
  net.simulator().run_until(SimTime::seconds(60));
  // No listener response: SYN retries exhaust (closed listener drops, the
  // port also no longer RSTs through the dead weak_ptr path).
  EXPECT_TRUE(closed);
}

TEST_F(TcpFixture, ManyParallelConnectionsAllComplete) {
  auto listener = server->tcp().listen(80, 256);
  std::uint64_t total = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    auto conn = c;
    conn->set_on_data([&total](std::uint32_t n, const std::string&) { total += n; });
  });

  constexpr int kConns = 40;
  std::vector<std::shared_ptr<TcpConnection>> conns;
  for (int i = 0; i < kConns; ++i) {
    auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
    conn->set_on_connected([conn] { conn->send(10'000); });
    conns.push_back(std::move(conn));
  }
  net.simulator().run_until(SimTime::seconds(30));
  EXPECT_EQ(total, static_cast<std::uint64_t>(kConns) * 10'000u);
}

TEST_F(TcpFixture, EstablishedAtTimestampIsSet) {
  auto listener = server->tcp().listen(80);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  net.simulator().run_until(SimTime::seconds(1));
  EXPECT_GT(conn->established_at().ns(), 0);
}

// --------------------------------------------------------------------------
// Retransmission-timeout backoff: the exact exponential schedule, edge to
// edge. SYN retries double from syn_rto (500 ms): sends at 0, 0.5, 1.5,
// 3.5, 7.5 s, and the connect gives up one doubled timeout after the
// final retry, at 15.5 s.
// --------------------------------------------------------------------------

TEST_F(TcpFixture, SynRetransmitBackoffFollowsExactSchedule) {
  link->set_up(false);  // black-hole: nothing ever answers
  std::vector<std::int64_t> syn_sends_ms;
  client->add_tap([&](const Packet& pkt, TapDirection dir) {
    if (dir == TapDirection::kSent && pkt.has_flag(TcpFlags::kSyn)) {
      syn_sends_ms.push_back(net.simulator().now().to_millis());
    }
  });

  SimTime closed_at;
  TcpCloseReason reason{};
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);
  conn->set_on_closed([&](TcpCloseReason r) {
    reason = r;
    closed_at = net.simulator().now();
  });
  net.simulator().run_until(SimTime::seconds(60));

  EXPECT_EQ(syn_sends_ms, (std::vector<std::int64_t>{0, 500, 1500, 3500, 7500}));
  EXPECT_EQ(reason, TcpCloseReason::kConnectTimeout);
  EXPECT_EQ(closed_at, SimTime::millis(15'500));
  EXPECT_EQ(conn->retransmissions(), 4u);
}

TEST_F(TcpFixture, DataRetransmitBackoffDoublesUntilRetryLimit) {
  auto listener = server->tcp().listen(80);
  listener->set_on_accept([](std::shared_ptr<TcpConnection>) {});
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);

  // Once established, cut the link at exactly t=100 ms and push one
  // segment into the void. base_rto=250 ms, so with per-retry doubling
  // the data goes out at 100, 350, 850, 1850, 3850, 7850, 15850 ms, and
  // the connection dies one doubled timeout later, at 31850 ms — the
  // worst-case drain the fuzzer's post-run grace period must cover.
  std::vector<std::int64_t> data_sends_ms;
  client->add_tap([&](const Packet& pkt, TapDirection dir) {
    if (dir == TapDirection::kSent && pkt.payload_bytes > 0) {
      data_sends_ms.push_back(net.simulator().now().to_millis());
    }
  });
  SimTime closed_at;
  TcpCloseReason reason{};
  conn->set_on_closed([&](TcpCloseReason r) {
    reason = r;
    closed_at = net.simulator().now();
  });
  net.simulator().schedule_at(SimTime::millis(100), [&] {
    ASSERT_EQ(conn->state(), TcpState::kEstablished);
    link->set_up(false);
    conn->send(1000);
  });

  net.simulator().run_until(SimTime::seconds(120));
  EXPECT_EQ(data_sends_ms,
            (std::vector<std::int64_t>{100, 350, 850, 1850, 3850, 7850, 15850}));
  EXPECT_EQ(reason, TcpCloseReason::kRetransmitLimit);
  EXPECT_EQ(closed_at, SimTime::millis(31'850));
  EXPECT_EQ(conn->retransmissions(), 6u);
}

TEST_F(TcpFixture, AckDuringBackoffResetsRetrySchedule) {
  auto listener = server->tcp().listen(80);
  std::shared_ptr<TcpConnection> server_conn;
  std::uint64_t got = 0;
  listener->set_on_accept([&](std::shared_ptr<TcpConnection> c) {
    server_conn = c;
    c->set_on_data([&](std::uint32_t n, const std::string&) { got += n; });
  });
  auto conn = client->tcp().connect(server_ep(80), TrafficOrigin::kHttp);

  // Lose two retries' worth of time, then heal the link: the segment is
  // retransmitted and acked, and the retry counter must reset so a later
  // loss restarts the backoff ladder from base_rto instead of resuming
  // where the first episode left off.
  net.simulator().schedule_at(SimTime::millis(100), [&] {
    link->set_up(false);
    conn->send(500);
  });
  net.simulator().schedule_at(SimTime::millis(900), [&] { link->set_up(true); });
  net.simulator().run_until(SimTime::seconds(5));
  ASSERT_EQ(got, 500u);
  ASSERT_EQ(conn->state(), TcpState::kEstablished);
  const auto retrans_first_episode = conn->retransmissions();
  ASSERT_GE(retrans_first_episode, 2u);

  std::vector<std::int64_t> second_episode_ms;
  client->add_tap([&](const Packet& pkt, TapDirection dir) {
    if (dir == TapDirection::kSent && pkt.payload_bytes > 0) {
      second_episode_ms.push_back(net.simulator().now().to_millis());
    }
  });
  net.simulator().schedule_at(SimTime::seconds(10), [&] {
    link->set_up(false);
    conn->send(500);
  });
  net.simulator().schedule_at(SimTime::millis(10'400), [&] { link->set_up(true); });
  net.simulator().run_until(SimTime::seconds(20));

  EXPECT_EQ(got, 1000u);
  // Fresh ladder: original at 10000 ms, first retry one base_rto later.
  ASSERT_GE(second_episode_ms.size(), 2u);
  EXPECT_EQ(second_episode_ms[0], 10'000);
  EXPECT_EQ(second_episode_ms[1], 10'250);
}

TEST(TcpStateNames, AllDistinct) {
  EXPECT_EQ(to_string(TcpState::kListen), "LISTEN");
  EXPECT_EQ(to_string(TcpState::kEstablished), "ESTABLISHED");
  EXPECT_EQ(to_string(TcpCloseReason::kGracefulClose), "graceful");
  EXPECT_EQ(to_string(TcpCloseReason::kReset), "reset");
  EXPECT_EQ(to_string(TcpCloseReason::kConnectTimeout), "connect-timeout");
}

}  // namespace
}  // namespace ddoshield::net
