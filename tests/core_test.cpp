// Integration tests for the testbed orchestration and the experiment
// pipeline (scenario -> deploy -> infect -> attack -> capture -> train ->
// detect).
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "core/scenario.hpp"
#include "core/testbed.hpp"
#include "ml/random_forest.hpp"

namespace ddoshield::core {
namespace {

using botnet::AttackType;
using util::SimTime;

Scenario small_scenario(std::uint64_t seed = 1) {
  Scenario s;
  s.seed = seed;
  s.device_count = 4;
  s.duration = SimTime::seconds(30);
  s.infection_start = SimTime::seconds(1);
  schedule_attack_cycle(s, SimTime::seconds(10), SimTime::seconds(28), SimTime::seconds(4),
                        SimTime::seconds(2),
                        {AttackType::kSynFlood, AttackType::kAckFlood, AttackType::kUdpFlood},
                        100.0);
  return s;
}

// --------------------------------------------------------------------------
// Scenario helpers
// --------------------------------------------------------------------------

TEST(ScenarioTest, AttackCycleSchedulesRotatingBursts) {
  Scenario s;
  schedule_attack_cycle(s, SimTime::seconds(10), SimTime::seconds(40), SimTime::seconds(5),
                        SimTime::seconds(5), {AttackType::kSynFlood, AttackType::kAckFlood},
                        200.0);
  ASSERT_EQ(s.attacks.size(), 3u);
  EXPECT_EQ(s.attacks[0].start, SimTime::seconds(10));
  EXPECT_EQ(s.attacks[0].type, AttackType::kSynFlood);
  EXPECT_EQ(s.attacks[1].start, SimTime::seconds(20));
  EXPECT_EQ(s.attacks[1].type, AttackType::kAckFlood);
  EXPECT_EQ(s.attacks[2].start, SimTime::seconds(30));
  EXPECT_EQ(s.attacks[2].type, AttackType::kSynFlood);  // rotation wraps
  for (const auto& a : s.attacks) {
    EXPECT_EQ(a.duration, SimTime::seconds(5));
    EXPECT_DOUBLE_EQ(a.packets_per_second_per_bot, 200.0);
  }
}

TEST(ScenarioTest, AttackCycleValidation) {
  Scenario s;
  EXPECT_THROW(schedule_attack_cycle(s, {}, SimTime::seconds(10), SimTime::seconds(1),
                                     {}, {}, 100.0),
               std::invalid_argument);
  EXPECT_THROW(schedule_attack_cycle(s, {}, SimTime::seconds(10), SimTime::seconds(0),
                                     {}, {AttackType::kSynFlood}, 100.0),
               std::invalid_argument);
}

TEST(ScenarioTest, CanonicalScenariosAreWellFormed) {
  const Scenario train = training_scenario();
  EXPECT_GT(train.duration, SimTime::seconds(60));
  EXPECT_FALSE(train.attacks.empty());
  // The training capture ends with a benign-only tail.
  const auto& last = train.attacks.back();
  EXPECT_LT(last.start + last.duration, train.duration);
  // Training timestamps are absolute (exported-pcap convention).
  EXPECT_GT(train.capture_clock_offset, SimTime::seconds(0));

  const Scenario detect = detection_scenario();
  EXPECT_FALSE(detect.attacks.empty());
  // Detection runs bursty: gaps exist between consecutive attacks.
  ASSERT_GE(detect.attacks.size(), 2u);
  EXPECT_GT(detect.attacks[1].start, detect.attacks[0].start + detect.attacks[0].duration);
}

// --------------------------------------------------------------------------
// Testbed
// --------------------------------------------------------------------------

TEST(TestbedTest, DeployCreatesAllContainers) {
  Testbed tb{small_scenario()};
  tb.deploy();
  auto names = tb.runtime().list();
  EXPECT_EQ(names.size(), 4u + 3u);  // tserver, attacker, ids + 4 devs
  EXPECT_TRUE(tb.runtime().exists("tserver"));
  EXPECT_TRUE(tb.runtime().exists("attacker"));
  EXPECT_TRUE(tb.runtime().exists("ids"));
  EXPECT_TRUE(tb.runtime().exists("dev_0"));
  EXPECT_EQ(tb.runtime().running_count(), 7u);
  EXPECT_THROW(tb.deploy(), std::logic_error);
}

TEST(TestbedTest, InfectionCompromisesVulnerableDevices) {
  Testbed tb{small_scenario()};
  tb.deploy();
  tb.run_until(SimTime::seconds(25));
  EXPECT_EQ(tb.infected_devices(), 4u);
  EXPECT_EQ(tb.connected_bots(), 4u);
}

TEST(TestbedTest, PatchedDevicesStayClean) {
  Scenario s = small_scenario();
  s.vulnerable_fraction = 0.0;
  Testbed tb{s};
  tb.deploy();
  tb.run_until(SimTime::seconds(25));
  EXPECT_EQ(tb.infected_devices(), 0u);
  EXPECT_EQ(tb.connected_bots(), 0u);
}

TEST(TestbedTest, BenignTrafficFlowsWithoutAttacks) {
  Scenario s = small_scenario();
  s.attacks.clear();
  Testbed tb{s};
  tb.deploy();
  tb.run();
  EXPECT_GT(tb.benign_bytes_delivered(), 100'000u);
  EXPECT_GT(tb.benign_completions(), 10u);
  EXPECT_GT(tb.http_server().requests_served(), 0u);
  EXPECT_GT(tb.video_server().chunks_sent(), 0u);
  EXPECT_GT(tb.ftp_server().transfers_completed(), 0u);
}

TEST(TestbedTest, DatasetRecordsBothClasses) {
  Testbed tb{small_scenario()};
  tb.deploy();
  tb.record_dataset();
  tb.run();
  const auto& ds = tb.dataset();
  EXPECT_GT(ds.size(), 1000u);
  EXPECT_GT(ds.malicious_count(), 100u);
  EXPECT_GT(ds.benign_count(), 100u);
  const auto hist = ds.origin_histogram();
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kMiraiSynFlood));
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kMiraiAckFlood));
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kMiraiUdpFlood));
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kHttp));
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kVideo));
  EXPECT_TRUE(hist.contains(net::TrafficOrigin::kFtp));
}

TEST(TestbedTest, ClockOffsetShiftsDatasetTimestamps) {
  Scenario s = small_scenario();
  s.capture_clock_offset = SimTime::seconds(500);
  Testbed tb{s};
  tb.deploy();
  tb.record_dataset();
  tb.run();
  ASSERT_FALSE(tb.dataset().empty());
  EXPECT_GE(tb.dataset().records().front().timestamp, SimTime::seconds(500));
}

TEST(TestbedTest, AttacksDegradeBenignService) {
  // Same seed with and without a heavy attack; benign goodput must drop.
  Scenario calm = small_scenario(42);
  calm.attacks.clear();
  Testbed tb_calm{calm};
  tb_calm.deploy();
  tb_calm.run();

  Scenario stormy = small_scenario(42);
  stormy.attacks.clear();
  schedule_attack_cycle(stormy, SimTime::seconds(8), SimTime::seconds(30),
                        SimTime::seconds(22), SimTime::seconds(0),
                        {AttackType::kSynFlood}, 2000.0);
  stormy.attacks[0].spoof_sources = true;
  Testbed tb_storm{stormy};
  tb_storm.deploy();
  tb_storm.run();

  EXPECT_LT(tb_storm.benign_completions(), tb_calm.benign_completions());
}

TEST(TestbedTest, ChurnTakesDevicesOffline) {
  Scenario s = small_scenario();
  s.attacks.clear();
  s.churn.events_per_device_per_second = 0.05;
  s.churn.down_time = SimTime::seconds(4);
  Testbed tb{s};
  tb.deploy();
  tb.sample_throughput_every(SimTime::seconds(1));
  tb.run();
  // With churn, at least one sample should show fewer connected bots than
  // the infected count (bots reconnect after link-down).
  bool dip = false;
  for (const auto& sample : tb.throughput_series()) {
    if (sample.connected_bots < tb.infected_devices()) dip = true;
  }
  EXPECT_TRUE(dip);
  EXPECT_EQ(tb.throughput_series().size(), 30u);
}

TEST(TestbedTest, ThroughputSamplerTracksGoodput) {
  Scenario s = small_scenario();
  s.attacks.clear();
  Testbed tb{s};
  tb.deploy();
  tb.sample_throughput_every(SimTime::seconds(1));
  tb.run();
  double total_goodput = 0.0;
  for (const auto& sample : tb.throughput_series()) total_goodput += sample.benign_goodput_bps;
  EXPECT_GT(total_goodput, 0.0);
}

TEST(TestbedTest, DeployIdsRequiresDeploy) {
  Testbed tb{small_scenario()};
  ml::RandomForest rf;
  EXPECT_THROW(tb.deploy_ids(rf), std::logic_error);
}

// --------------------------------------------------------------------------
// Pipeline
// --------------------------------------------------------------------------

struct PipelineFixture : ::testing::Test {
  // Generation + training is expensive; share across tests in the suite.
  static GenerationResult& generation() {
    static GenerationResult g = run_generation(small_scenario(7));
    return g;
  }
  static TrainedModels& models() {
    static TrainedModels m = train_all_models(generation().dataset);
    return m;
  }
};

TEST_F(PipelineFixture, GenerationProducesBalancedDataset) {
  auto& g = generation();
  EXPECT_EQ(g.infected_devices, 4u);
  EXPECT_GT(g.peak_connected_bots, 0u);
  EXPECT_GT(g.dataset.size(), 1000u);
  EXPECT_GT(g.dataset.balance_ratio(), 0.3);
  EXPECT_LT(g.dataset.balance_ratio(), 4.0);
}

TEST_F(PipelineFixture, TrainingProducesThreeModels) {
  auto& m = models();
  EXPECT_EQ(m.reports.size(), 3u);
  for (const char* name : {"rf", "kmeans", "cnn"}) {
    EXPECT_TRUE(m.get(name).trained());
    const ModelReport& report = m.report_of(name);
    EXPECT_GT(report.test.accuracy(), 0.7) << name;
    EXPECT_GT(report.model_file_bytes, 0u);
    EXPECT_GE(report.fit_seconds, 0.0);
  }
  EXPECT_THROW(m.get("svm"), std::invalid_argument);
  EXPECT_THROW(m.report_of("svm"), std::invalid_argument);
  // K-Means models are tiny compared to RF and CNN (Table II shape).
  EXPECT_LT(m.report_of("kmeans").model_file_bytes,
            m.report_of("rf").model_file_bytes / 10);
  EXPECT_LT(m.report_of("kmeans").model_file_bytes,
            m.report_of("cnn").model_file_bytes / 10);
}

TEST_F(PipelineFixture, DetectionProducesWindowsAndSummary) {
  Scenario det = small_scenario(8);
  const DetectionResult result = run_detection(det, models().get("rf"));
  EXPECT_EQ(result.model, "rf");
  EXPECT_GT(result.summary.windows, 10u);
  EXPECT_GT(result.summary.packets, 1000u);
  EXPECT_GT(result.summary.average_accuracy, 0.5);
  EXPECT_LE(result.summary.average_accuracy, 1.0);
  EXPECT_EQ(result.windows.size(), result.summary.windows);
  EXPECT_GT(result.model_size_kb, 0.0);
  EXPECT_GT(result.summary.cpu_percent, 0.0);
  EXPECT_GT(result.summary.memory_kb, 0.0);
}

TEST_F(PipelineFixture, DetectionIsDeterministicPerScenarioSeed) {
  Scenario det = small_scenario(9);
  const DetectionResult a = run_detection(det, models().get("kmeans"));
  const DetectionResult b = run_detection(det, models().get("kmeans"));
  EXPECT_DOUBLE_EQ(a.summary.average_accuracy, b.summary.average_accuracy);
  EXPECT_EQ(a.summary.packets, b.summary.packets);
}

TEST_F(PipelineFixture, ToDesignMatrixPreservesShape) {
  features::FeatureMatrix fm;
  fm.rows.push_back(features::FeatureRow{});
  fm.rows.push_back(features::FeatureRow{});
  fm.labels = {0, 1};
  ml::DesignMatrix x;
  std::vector<int> y;
  to_design_matrix(fm, x, y);
  EXPECT_EQ(x.rows(), 2u);
  EXPECT_EQ(x.cols(), features::kFeatureCount);
  EXPECT_EQ(y, fm.labels);
}

TEST_F(PipelineFixture, SkewServedClassifierPermutesInputs) {
  const auto& rf = models().get("rf");
  SkewServedClassifier skewed{rf};
  EXPECT_EQ(skewed.name(), "rf");
  EXPECT_TRUE(skewed.trained());
  EXPECT_EQ(skewed.parameter_bytes(), rf.parameter_bytes());

  // Identity rows (all equal values) predict identically through the skew;
  // a row with distinct values may not.
  features::FeatureRow uniform{};
  uniform.fill(1.0);
  EXPECT_EQ(skewed.predict(uniform), rf.predict(uniform));

  EXPECT_THROW(skewed.predict(std::vector<double>{1.0, 2.0}), std::invalid_argument);
  ml::DesignMatrix x{2};
  EXPECT_THROW(skewed.fit(x, {}), std::logic_error);
  util::ByteWriter w;
  util::ByteReader r{w.bytes()};
  EXPECT_THROW(skewed.load(r), std::logic_error);
}

TEST(TrainAllModelsTest, RejectsEmptyDataset) {
  capture::Dataset empty;
  EXPECT_THROW(train_all_models(empty), std::invalid_argument);
}

}  // namespace
}  // namespace ddoshield::core
