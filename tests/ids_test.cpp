// Tests for the real-time IDS unit: windowing, scoring, resource metering.
#include <gtest/gtest.h>

#include "capture/tap.hpp"
#include "container/runtime.hpp"
#include "ids/realtime_ids.hpp"
#include "net/network.hpp"

namespace ddoshield::ids {
namespace {

using util::Rng;
using util::SimTime;

/// Deterministic stub model: classifies by destination port (attack port
/// 9999 malicious, everything else benign). Lets the tests control truth
/// and prediction independently.
class StubModel : public ml::Classifier {
 public:
  std::string name() const override { return "stub"; }
  void fit(const ml::DesignMatrix&, const std::vector<int>&) override {}
  bool trained() const override { return true; }
  int predict(std::span<const double> row) const override {
    ++predictions;
    // dst_port is feature index 5 (normalized /65535).
    return row[5] > 0.14 ? 1 : 0;  // 9999/65535 = 0.1526
  }
  void save(util::ByteWriter&) const override {}
  void load(util::ByteReader&) override {}
  std::uint64_t parameter_bytes() const override { return 1024; }
  std::uint64_t inference_scratch_bytes() const override { return 256; }

  mutable std::uint64_t predictions = 0;
};

struct IdsFixture : ::testing::Test {
  net::Network net;
  net::Node* sender = nullptr;
  net::Node* victim = nullptr;
  container::ContainerRuntime runtime;
  container::Container* ids_box = nullptr;
  capture::PacketTap tap;
  StubModel model;

  void SetUp() override {
    sender = &net.add_node("sender", net::Ipv4Address{10, 0, 0, 1});
    victim = &net.add_node("victim", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*sender, *victim, net::LinkConfig{});
    sender->set_default_route(0);
    victim->set_default_route(0);
    tap.attach_to(*victim);

    runtime.register_image({"test/ids", "1", nullptr});
    ids_box = &runtime.create("ids", "test/ids:1");
    ids_box->attach_node(*victim);
    ids_box->start();
  }

  /// Emits one UDP packet at the current sim time; port selects the class
  /// the stub model predicts, origin selects the ground truth.
  void emit(std::uint16_t dst_port, net::TrafficOrigin origin) {
    net::Packet p;
    p.dst = victim->address();
    p.dst_port = dst_port;
    p.proto = net::IpProto::kUdp;
    p.payload_bytes = 64;
    p.origin = origin;
    sender->send(std::move(p));
  }

  std::unique_ptr<RealTimeIds> make_ids(IdsConfig config = {}) {
    auto ids = std::make_unique<RealTimeIds>(*ids_box, Rng{1}, model, config);
    ids->attach_tap(tap);
    ids->start();
    return ids;
  }
};

TEST_F(IdsFixture, RequiresTrainedModel) {
  class Untrained : public StubModel {
   public:
    bool trained() const override { return false; }
  } untrained;
  EXPECT_THROW((RealTimeIds{*ids_box, Rng{1}, untrained}), std::invalid_argument);
}

TEST_F(IdsFixture, RejectsBadWindow) {
  IdsConfig config;
  config.window = SimTime::seconds(0);
  EXPECT_THROW((RealTimeIds{*ids_box, Rng{1}, model, config}), std::invalid_argument);
}

TEST_F(IdsFixture, WindowsCloseOnBoundaries) {
  auto ids = make_ids();
  // Two packets in second 0, three in second 2.
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(800), [&] { emit(80, net::TrafficOrigin::kHttp); });
  for (int i = 0; i < 3; ++i) {
    net.simulator().schedule(SimTime::millis(2100 + i * 100),
                             [&] { emit(80, net::TrafficOrigin::kHttp); });
  }
  net.simulator().run_until(SimTime::seconds(4));

  const auto& reports = ids->reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].window_index, 0u);
  EXPECT_EQ(reports[0].packets, 2u);
  EXPECT_EQ(reports[1].window_index, 2u);
  EXPECT_EQ(reports[1].packets, 3u);
}

TEST_F(IdsFixture, AccuracyPerWindowIsCorrect) {
  auto ids = make_ids();
  // Window 0: 3 benign predicted-benign (correct), 1 benign predicted-
  // malicious (port 9999 but benign origin -> FP).
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(200), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(300), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(400),
                           [&] { emit(9999, net::TrafficOrigin::kHttp); });
  net.simulator().run_until(SimTime::seconds(2));

  ASSERT_EQ(ids->reports().size(), 1u);
  const auto& r = ids->reports()[0];
  EXPECT_EQ(r.packets, 4u);
  EXPECT_DOUBLE_EQ(r.accuracy, 0.75);
  EXPECT_EQ(r.truth_malicious, 0u);
  EXPECT_EQ(r.predicted_malicious, 1u);
  EXPECT_TRUE(r.single_class);  // all truth benign
}

TEST_F(IdsFixture, SingleClassFlagClearedOnMixedWindows) {
  auto ids = make_ids();
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(200),
                           [&] { emit(9999, net::TrafficOrigin::kMiraiUdpFlood); });
  net.simulator().run_until(SimTime::seconds(2));
  ASSERT_EQ(ids->reports().size(), 1u);
  EXPECT_FALSE(ids->reports()[0].single_class);
  EXPECT_DOUBLE_EQ(ids->reports()[0].accuracy, 1.0);
}

TEST_F(IdsFixture, SummaryAveragesWindows) {
  auto ids = make_ids();
  // Window 0: accuracy 1.0 (benign correct).
  net.simulator().schedule(SimTime::millis(500), [&] { emit(80, net::TrafficOrigin::kHttp); });
  // Window 1: accuracy 0.0 (malicious truth on a benign-predicted port).
  net.simulator().schedule(SimTime::millis(1500),
                           [&] { emit(80, net::TrafficOrigin::kMiraiSynFlood); });
  net.simulator().run_until(SimTime::seconds(3));

  const IdsSummary s = ids->summarize();
  EXPECT_EQ(s.windows, 2u);
  EXPECT_EQ(s.packets, 2u);
  EXPECT_DOUBLE_EQ(s.average_accuracy, 0.5);
  EXPECT_DOUBLE_EQ(s.min_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(s.overall_accuracy, 0.5);
  EXPECT_EQ(s.confusion.fn(), 1u);
  EXPECT_EQ(s.confusion.tn(), 1u);
}

TEST_F(IdsFixture, EmptySummaryIsZero) {
  auto ids = make_ids();
  net.simulator().run_until(SimTime::seconds(2));
  const IdsSummary s = ids->summarize();
  EXPECT_EQ(s.windows, 0u);
  EXPECT_EQ(s.packets, 0u);
  EXPECT_EQ(s.average_accuracy, 0.0);
}

TEST_F(IdsFixture, FlushClosesPartialWindow) {
  auto ids = make_ids();
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().run_until(SimTime::millis(500));  // window 0 still open
  EXPECT_EQ(ids->reports().size(), 0u);
  ids->flush();
  EXPECT_EQ(ids->reports().size(), 1u);
}

TEST_F(IdsFixture, StoppingIdsStopsScoring) {
  auto ids = make_ids();
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().run_until(SimTime::seconds(2));
  ids->stop();
  const auto count = ids->reports().size();
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().run_until(SimTime::seconds(5));
  EXPECT_EQ(ids->reports().size(), count);
}

TEST_F(IdsFixture, CpuTimersArePopulated) {
  auto ids = make_ids();
  for (int i = 0; i < 50; ++i) {
    net.simulator().schedule(SimTime::millis(10 + i), [&] { emit(80, net::TrafficOrigin::kHttp); });
  }
  net.simulator().run_until(SimTime::seconds(2));
  ASSERT_EQ(ids->reports().size(), 1u);
  // Real measured nanoseconds: strictly positive for a 50-packet window.
  EXPECT_GT(ids->reports()[0].cpu_feature_ns, 0u);
  EXPECT_GT(ids->reports()[0].cpu_inference_ns, 0u);
  EXPECT_EQ(model.predictions, 50u);
}

TEST_F(IdsFixture, MemoryAccountsModelScratchAndBuffers) {
  IdsConfig cfg;
  cfg.meter.inference_chunk = 32;
  auto ids = make_ids(cfg);
  for (int i = 0; i < 20; ++i) {
    net.simulator().schedule(SimTime::millis(10 + i), [&] { emit(80, net::TrafficOrigin::kHttp); });
  }
  net.simulator().run_until(SimTime::seconds(2));
  const IdsSummary s = ids->summarize();
  // At least the model scratch (256 B x 32) plus the row chunk.
  EXPECT_GT(s.memory_kb, (256.0 * 32) / 1024.0);
}

TEST_F(IdsFixture, CustomWindowDuration) {
  IdsConfig cfg;
  cfg.window = SimTime::millis(500);
  auto ids = make_ids(cfg);
  net.simulator().schedule(SimTime::millis(100), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().schedule(SimTime::millis(700), [&] { emit(80, net::TrafficOrigin::kHttp); });
  net.simulator().run_until(SimTime::seconds(2));
  EXPECT_EQ(ids->reports().size(), 2u);
  EXPECT_EQ(ids->reports()[0].window_start, SimTime::seconds(0));
  EXPECT_EQ(ids->reports()[1].window_start, SimTime::millis(500));
}

// Parameterised sweep: the per-window accuracy equals the fraction the
// stub gets right for any benign/malicious interleaving.
class IdsAccuracySweep : public IdsFixture,
                         public ::testing::WithParamInterface<int> {};

TEST_P(IdsAccuracySweep, WindowAccuracyMatchesStub) {
  const int malicious = GetParam();
  const int total = 10;
  auto ids = make_ids();
  for (int i = 0; i < total; ++i) {
    const bool is_attack = i < malicious;
    net.simulator().schedule(SimTime::millis(50 + i * 20), [this, is_attack] {
      // Attack truth on the malicious-predicted port: always correct;
      // benign truth on the benign port: always correct. Accuracy 1.0,
      // but the malicious counters must match exactly.
      emit(is_attack ? 9999 : 80,
           is_attack ? net::TrafficOrigin::kMiraiUdpFlood : net::TrafficOrigin::kHttp);
    });
  }
  net.simulator().run_until(SimTime::seconds(2));
  ASSERT_EQ(ids->reports().size(), 1u);
  const auto& r = ids->reports()[0];
  EXPECT_EQ(r.truth_malicious, static_cast<std::uint64_t>(malicious));
  EXPECT_EQ(r.predicted_malicious, static_cast<std::uint64_t>(malicious));
  EXPECT_DOUBLE_EQ(r.accuracy, 1.0);
  EXPECT_EQ(r.single_class, malicious == 0 || malicious == total);
}

INSTANTIATE_TEST_SUITE_P(MaliciousFractions, IdsAccuracySweep,
                         ::testing::Values(0, 1, 3, 5, 9, 10));

}  // namespace
}  // namespace ddoshield::ids
