// Tests for the capture layer: packet records, taps, datasets, flows.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "capture/dataset.hpp"
#include "capture/flow.hpp"
#include "capture/packet_record.hpp"
#include "capture/tap.hpp"
#include "net/udp.hpp"
#include "net/network.hpp"

namespace ddoshield::capture {
namespace {

using util::SimTime;

net::Packet make_packet(net::TrafficOrigin origin = net::TrafficOrigin::kHttp) {
  net::Packet p;
  p.src = net::Ipv4Address{10, 0, 0, 5};
  p.dst = net::Ipv4Address{10, 0, 1, 1};
  p.src_port = 51000;
  p.dst_port = 80;
  p.proto = net::IpProto::kTcp;
  p.tcp_flags = net::TcpFlags::kAck | net::TcpFlags::kPsh;
  p.seq = 12345;
  p.payload_bytes = 333;
  p.origin = origin;
  return p;
}

// --------------------------------------------------------------------------
// PacketRecord
// --------------------------------------------------------------------------

TEST(PacketRecordTest, FromPacketCopiesHeadersAndLabels) {
  const auto r = PacketRecord::from_packet(make_packet(net::TrafficOrigin::kMiraiAckFlood),
                                           SimTime::millis(1500));
  EXPECT_EQ(r.timestamp, SimTime::millis(1500));
  EXPECT_EQ(r.src_addr, net::Ipv4Address(10, 0, 0, 5).bits());
  EXPECT_EQ(r.dst_addr, net::Ipv4Address(10, 0, 1, 1).bits());
  EXPECT_EQ(r.src_port, 51000);
  EXPECT_EQ(r.dst_port, 80);
  EXPECT_TRUE(r.is_tcp());
  EXPECT_FALSE(r.is_udp());
  EXPECT_EQ(r.seq, 12345u);
  EXPECT_EQ(r.payload_bytes, 333u);
  EXPECT_EQ(r.wire_bytes, 333u + 40u);
  EXPECT_TRUE(r.is_malicious());
  EXPECT_EQ(r.origin, net::TrafficOrigin::kMiraiAckFlood);
}

TEST(PacketRecordTest, CsvRoundTrip) {
  const auto r = PacketRecord::from_packet(make_packet(), SimTime::micros(987654321));
  const auto parsed = PacketRecord::from_csv(r.to_csv());
  EXPECT_EQ(parsed.timestamp, r.timestamp);
  EXPECT_EQ(parsed.src_addr, r.src_addr);
  EXPECT_EQ(parsed.dst_addr, r.dst_addr);
  EXPECT_EQ(parsed.src_port, r.src_port);
  EXPECT_EQ(parsed.dst_port, r.dst_port);
  EXPECT_EQ(parsed.protocol, r.protocol);
  EXPECT_EQ(parsed.tcp_flags, r.tcp_flags);
  EXPECT_EQ(parsed.seq, r.seq);
  EXPECT_EQ(parsed.payload_bytes, r.payload_bytes);
  EXPECT_EQ(parsed.wire_bytes, r.wire_bytes);
  EXPECT_EQ(parsed.label, r.label);
  EXPECT_EQ(parsed.origin, r.origin);
}

TEST(PacketRecordTest, CsvRejectsMalformedRows) {
  EXPECT_THROW(PacketRecord::from_csv(""), std::invalid_argument);
  EXPECT_THROW(PacketRecord::from_csv("1,2,3"), std::invalid_argument);
  EXPECT_THROW(PacketRecord::from_csv("a,b,c,d,e,f,g,h,i,j,k,l"), std::invalid_argument);
}

TEST(PacketRecordTest, CsvHeaderHasTwelveColumns) {
  const std::string header = PacketRecord::csv_header();
  EXPECT_EQ(std::count(header.begin(), header.end(), ','), 11);
}

// --------------------------------------------------------------------------
// PacketTap
// --------------------------------------------------------------------------

struct TapFixture : ::testing::Test {
  net::Network net;
  net::Node* a = nullptr;
  net::Node* b = nullptr;

  void SetUp() override {
    a = &net.add_node("a", net::Ipv4Address{10, 0, 0, 1});
    b = &net.add_node("b", net::Ipv4Address{10, 0, 0, 2});
    net.add_link(*a, *b, net::LinkConfig{});
    a->set_default_route(0);
    b->set_default_route(0);
  }

  void send_udp(int count) {
    auto server = b->udp().open(9);
    server->set_receive_callback([](const net::Packet&) {});
    auto client = a->udp().open();
    for (int i = 0; i < count; ++i) {
      client->send_to(net::Endpoint{b->address(), 9}, 64, net::TrafficOrigin::kHttp);
    }
    net.simulator().run_all();
  }
};

TEST_F(TapFixture, CapturesBothDirections) {
  PacketTap tap;
  tap.attach_to(*b);
  std::vector<PacketRecord> records;
  tap.add_sink([&](const PacketRecord& r) { records.push_back(r); });
  send_udp(3);
  EXPECT_EQ(records.size(), 3u);  // b only receives here
  EXPECT_EQ(tap.packets_captured(), 3u);
}

TEST_F(TapFixture, DirectionFiltersApply) {
  TapConfig config;
  config.capture_received = false;
  PacketTap tap{config};
  tap.attach_to(*b);
  int captured = 0;
  tap.add_sink([&](const PacketRecord&) { ++captured; });
  send_udp(3);
  EXPECT_EQ(captured, 0);  // b never sends in this exchange
}

TEST_F(TapFixture, DisabledTapDropsTraffic) {
  PacketTap tap;
  tap.attach_to(*b);
  int captured = 0;
  tap.add_sink([&](const PacketRecord&) { ++captured; });
  tap.set_enabled(false);
  send_udp(2);
  EXPECT_EQ(captured, 0);
  tap.set_enabled(true);
  send_udp(2);
  EXPECT_EQ(captured, 2);
}

TEST_F(TapFixture, ClockOffsetShiftsTimestamps) {
  PacketTap tap{TapConfig{.clock_offset = SimTime::seconds(1000)}};
  tap.attach_to(*b);
  std::vector<PacketRecord> records;
  tap.add_sink([&](const PacketRecord& r) { records.push_back(r); });
  send_udp(1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_GE(records[0].timestamp, SimTime::seconds(1000));
}

TEST_F(TapFixture, MultipleSinksAllReceive) {
  PacketTap tap;
  tap.attach_to(*b);
  int s1 = 0, s2 = 0;
  tap.add_sink([&](const PacketRecord&) { ++s1; });
  tap.add_sink([&](const PacketRecord&) { ++s2; });
  send_udp(4);
  EXPECT_EQ(s1, 4);
  EXPECT_EQ(s2, 4);
}

// --------------------------------------------------------------------------
// Dataset
// --------------------------------------------------------------------------

PacketRecord record_with(net::TrafficOrigin origin, std::int64_t t_ms = 0) {
  auto r = PacketRecord::from_packet(make_packet(origin), SimTime::millis(t_ms));
  return r;
}

TEST(DatasetTest, CountsAndBalance) {
  Dataset ds;
  for (int i = 0; i < 6; ++i) ds.add(record_with(net::TrafficOrigin::kMiraiSynFlood));
  for (int i = 0; i < 4; ++i) ds.add(record_with(net::TrafficOrigin::kHttp));
  EXPECT_EQ(ds.size(), 10u);
  EXPECT_EQ(ds.malicious_count(), 6u);
  EXPECT_EQ(ds.benign_count(), 4u);
  EXPECT_DOUBLE_EQ(ds.balance_ratio(), 1.5);
}

TEST(DatasetTest, BalanceRatioZeroWithoutBenign) {
  Dataset ds;
  ds.add(record_with(net::TrafficOrigin::kMiraiUdpFlood));
  EXPECT_EQ(ds.balance_ratio(), 0.0);
}

TEST(DatasetTest, OriginHistogram) {
  Dataset ds;
  ds.add(record_with(net::TrafficOrigin::kHttp));
  ds.add(record_with(net::TrafficOrigin::kHttp));
  ds.add(record_with(net::TrafficOrigin::kFtp));
  const auto hist = ds.origin_histogram();
  EXPECT_EQ(hist.at(net::TrafficOrigin::kHttp), 2u);
  EXPECT_EQ(hist.at(net::TrafficOrigin::kFtp), 1u);
  EXPECT_FALSE(hist.contains(net::TrafficOrigin::kVideo));
}

TEST(DatasetTest, SaveLoadCsvRoundTrip) {
  Dataset ds;
  for (int i = 0; i < 50; ++i) {
    ds.add(record_with(i % 3 == 0 ? net::TrafficOrigin::kMiraiAckFlood
                                  : net::TrafficOrigin::kVideo,
                       i * 10));
  }
  const std::string path = "/tmp/ddoshield_dataset_test.csv";
  ds.save_csv(path);
  const Dataset loaded = Dataset::load_csv(path);
  ASSERT_EQ(loaded.size(), ds.size());
  EXPECT_EQ(loaded.malicious_count(), ds.malicious_count());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(loaded.records()[i].timestamp, ds.records()[i].timestamp);
    EXPECT_EQ(loaded.records()[i].origin, ds.records()[i].origin);
  }
  std::filesystem::remove(path);
}

TEST(DatasetTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_THROW(Dataset::load_csv("/nonexistent/nope.csv"), std::runtime_error);
  const std::string path = "/tmp/ddoshield_bad_header.csv";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("wrong,header\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(Dataset::load_csv(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(DatasetTest, CompositionSummaryMentionsCounts) {
  Dataset ds;
  ds.add(record_with(net::TrafficOrigin::kMiraiSynFlood));
  ds.add(record_with(net::TrafficOrigin::kHttp));
  const std::string s = ds.composition_summary();
  EXPECT_NE(s.find("packets=2"), std::string::npos);
  EXPECT_NE(s.find("malicious=1"), std::string::npos);
  EXPECT_NE(s.find("mirai-syn-flood"), std::string::npos);
}

// --------------------------------------------------------------------------
// FlowTable
// --------------------------------------------------------------------------

PacketRecord flow_packet(std::uint16_t src_port, std::int64_t t_ms, std::uint8_t flags,
                         std::uint32_t payload = 100) {
  PacketRecord r;
  r.timestamp = SimTime::millis(t_ms);
  r.src_addr = net::Ipv4Address(10, 0, 0, 5).bits();
  r.dst_addr = net::Ipv4Address(10, 0, 1, 1).bits();
  r.src_port = src_port;
  r.dst_port = 80;
  r.protocol = 6;
  r.tcp_flags = flags;
  r.payload_bytes = payload;
  r.wire_bytes = payload + 40;
  return r;
}

TEST(FlowTableTest, GroupsByFiveTuple) {
  FlowTable table;
  table.add(flow_packet(1000, 0, net::TcpFlags::kSyn, 0));
  table.add(flow_packet(1000, 10, net::TcpFlags::kAck));
  table.add(flow_packet(2000, 5, net::TcpFlags::kSyn, 0));
  EXPECT_EQ(table.flow_count(), 2u);
  FlowKey key{net::Ipv4Address(10, 0, 0, 5).bits(), net::Ipv4Address(10, 0, 1, 1).bits(),
              1000, 80, 6};
  const FlowRecord* flow = table.find(key);
  ASSERT_NE(flow, nullptr);
  EXPECT_EQ(flow->packets, 2u);
  EXPECT_EQ(flow->syn_count, 1u);
  EXPECT_EQ(flow->duration(), SimTime::millis(10));
}

TEST(FlowTableTest, ShortLivedDetection) {
  FlowTable table;
  // A long flow with many packets.
  for (int i = 0; i < 10; ++i) table.add(flow_packet(1000, i * 100, net::TcpFlags::kAck));
  // Two one-packet flows (scanning signature).
  table.add(flow_packet(2000, 0, net::TcpFlags::kSyn, 0));
  table.add(flow_packet(3000, 1, net::TcpFlags::kSyn, 0));
  EXPECT_EQ(table.short_lived_count(SimTime::millis(50), 2), 2u);
}

TEST(FlowTableTest, RepeatedAttemptAggregation) {
  FlowTable table;
  // Same src/dst/dport, three different source ports, one SYN each.
  table.add(flow_packet(1000, 0, net::TcpFlags::kSyn, 0));
  table.add(flow_packet(1001, 1, net::TcpFlags::kSyn, 0));
  table.add(flow_packet(1002, 2, net::TcpFlags::kSyn, 0));
  EXPECT_EQ(table.repeated_attempt_sources(3), 1u);
  EXPECT_EQ(table.repeated_attempt_sources(4), 0u);
}

TEST(FlowTableTest, MaliciousTaintsWholeFlow) {
  FlowTable table;
  auto benign = flow_packet(1000, 0, net::TcpFlags::kAck);
  table.add(benign);
  auto bad = flow_packet(1000, 5, net::TcpFlags::kAck);
  bad.label = net::TrafficClass::kMalicious;
  table.add(bad);
  const auto flows = table.sorted_flows();
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_TRUE(flows[0].second.malicious);
}

TEST(FlowTableTest, ClearEmptiesTable) {
  FlowTable table;
  table.add(flow_packet(1000, 0, net::TcpFlags::kSyn, 0));
  table.clear();
  EXPECT_EQ(table.flow_count(), 0u);
}

}  // namespace
}  // namespace ddoshield::capture
