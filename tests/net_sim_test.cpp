// Tests for the discrete-event engine, links, nodes/routing, and UDP.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/address.hpp"
#include "net/network.hpp"
#include "net/packet.hpp"
#include "net/simulator.hpp"
#include "net/udp.hpp"

namespace ddoshield::net {
namespace {

using util::SimTime;

// --------------------------------------------------------------------------
// Ipv4Address
// --------------------------------------------------------------------------

TEST(Ipv4AddressTest, ParseAndFormatRoundTrip) {
  const auto a = Ipv4Address::parse("192.168.1.42");
  EXPECT_EQ(a.to_string(), "192.168.1.42");
  EXPECT_EQ(a, Ipv4Address(192, 168, 1, 42));
}

TEST(Ipv4AddressTest, ParseRejectsMalformed) {
  EXPECT_THROW(Ipv4Address::parse(""), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1.2.3.x"), std::invalid_argument);
  EXPECT_THROW(Ipv4Address::parse("1..2.3"), std::invalid_argument);
}

TEST(Ipv4AddressTest, SubnetMatching) {
  const auto a = Ipv4Address(10, 0, 1, 5);
  const auto b = Ipv4Address(10, 0, 1, 200);
  const auto c = Ipv4Address(10, 0, 2, 5);
  EXPECT_TRUE(a.same_subnet(b, 24));
  EXPECT_FALSE(a.same_subnet(c, 24));
  EXPECT_TRUE(a.same_subnet(c, 16));
  EXPECT_TRUE(a.same_subnet(c, 0));
  EXPECT_FALSE(a.same_subnet(b, 32));
  EXPECT_TRUE(a.same_subnet(a, 32));
}

// --------------------------------------------------------------------------
// Simulator
// --------------------------------------------------------------------------

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(SimTime::millis(30), [&] { order.push_back(3); });
  sim.schedule(SimTime::millis(10), [&] { order.push_back(1); });
  sim.schedule(SimTime::millis(20), [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), SimTime::millis(30));
}

TEST(SimulatorTest, SimultaneousEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(SimTime::millis(7), [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, RunUntilStopsAndAdvancesClock) {
  Simulator sim;
  int ran = 0;
  sim.schedule(SimTime::millis(10), [&] { ++ran; });
  sim.schedule(SimTime::millis(50), [&] { ++ran; });
  sim.run_until(SimTime::millis(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(sim.now(), SimTime::millis(20));
  sim.run_until(SimTime::millis(100));
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.now(), SimTime::millis(100));
}

TEST(SimulatorTest, EventsScheduledFromEventsRun) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.schedule(SimTime::millis(1), recurse);
  };
  sim.schedule(SimTime::millis(1), recurse);
  sim.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), SimTime::millis(5));
}

TEST(SimulatorTest, CancelledEventDoesNotRun) {
  Simulator sim;
  bool ran = false;
  auto h = sim.schedule(SimTime::millis(5), [&] { ran = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  sim.run_all();
  EXPECT_FALSE(ran);
  h.cancel();  // double cancel is a no-op
}

TEST(SimulatorTest, SchedulingInThePastThrows) {
  Simulator sim;
  sim.run_until(SimTime::seconds(1));
  EXPECT_THROW(sim.schedule_at(SimTime::millis(500), [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(SimTime::millis(-1), [] {}), std::invalid_argument);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 10; ++i) sim.schedule(SimTime::millis(i), [] {});
  EXPECT_EQ(sim.events_pending(), 10u);
  sim.run_all();
  EXPECT_EQ(sim.events_executed(), 10u);
  EXPECT_EQ(sim.events_pending(), 0u);
}

// --------------------------------------------------------------------------
// Calendar-queue backend (the default scheduler)
// --------------------------------------------------------------------------

// Identical interleavings on both backends, including mixed bucket/spill
// horizons and same-timestamp FIFO ties.
TEST(CalendarQueueTest, OrderMatchesBinaryHeapAcrossHorizons) {
  const std::vector<std::int64_t> delays_us = {
      500,        300,        300,       7'000'000,  12,         999'999,   5'000'000'000,
      4'095'999,  4'096'000,  4'097'000, 80'000'000, 80'000'000, 1,         0,
      33'000'000, 64'000'000, 2'500,     2'500,      2'500,      123'456'789};
  auto run = [&](SchedulerKind kind) {
    Simulator sim{kind};
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < delays_us.size(); ++i) {
      sim.schedule(SimTime::micros(delays_us[i]), [&order, i] { order.push_back(i); });
    }
    sim.run_all();
    return order;
  };
  const auto calendar = run(SchedulerKind::kCalendar);
  const auto heap = run(SchedulerKind::kBinaryHeap);
  EXPECT_EQ(calendar, heap);
  EXPECT_EQ(calendar.size(), delays_us.size());
}

TEST(CalendarQueueTest, FarFutureEventsSpillOverAndMigrateBack) {
  Simulator sim{SchedulerKind::kCalendar};
  // The wheel covers ~4.1 s; a 60 s timer must sit in the spillover heap
  // until the wheel fast-forwards to it.
  int ran = 0;
  sim.schedule(SimTime::seconds(60), [&] { ++ran; });
  sim.schedule(SimTime::millis(1), [&] { ++ran; });
  EXPECT_EQ(sim.calendar_overflow_pending(), 1u);
  sim.run_all();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sim.calendar_overflow_pending(), 0u);
  EXPECT_GE(sim.calendar_rollovers(), 1u);
  EXPECT_GE(sim.calendar_migrations(), 1u);
  EXPECT_EQ(sim.now(), SimTime::seconds(60));
}

TEST(CalendarQueueTest, CancellationWorksInBucketsAndOverflow) {
  Simulator sim{SchedulerKind::kCalendar};
  bool near_ran = false;
  bool far_ran = false;
  auto near = sim.schedule(SimTime::millis(2), [&] { near_ran = true; });
  auto far = sim.schedule(SimTime::seconds(30), [&] { far_ran = true; });
  near.cancel();
  far.cancel();
  sim.run_all();
  EXPECT_FALSE(near_ran);
  EXPECT_FALSE(far_ran);
  EXPECT_EQ(sim.events_cancelled(), 2u);
}

TEST(CalendarQueueTest, PostedEventsRunWithoutHandles) {
  Simulator sim;
  std::vector<int> order;
  sim.post(SimTime::millis(2), [&] { order.push_back(2); });
  sim.post(SimTime::millis(1), [&] { order.push_back(1); });
  sim.post_at(SimTime::seconds(10), [&] { order.push_back(3); });
  EXPECT_THROW(sim.post(SimTime::millis(-1), [] {}), std::invalid_argument);
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(CalendarQueueTest, HighWaterAndPendingTrackBothBackends) {
  for (SchedulerKind kind : {SchedulerKind::kCalendar, SchedulerKind::kBinaryHeap}) {
    Simulator sim{kind};
    for (int i = 0; i < 32; ++i) sim.schedule(SimTime::millis(1 + i % 3), [] {});
    EXPECT_EQ(sim.pending_events(), 32u);
    EXPECT_EQ(sim.queue_high_water(), 32u);
    sim.run_all();
    EXPECT_EQ(sim.pending_events(), 0u);
    EXPECT_EQ(sim.queue_high_water(), 32u);
    EXPECT_EQ(sim.events_executed(), 32u);
    EXPECT_EQ(sim.time_regressions(), 0u);
  }
}

TEST(CalendarQueueTest, ClearDropsBucketAndOverflowEvents) {
  Simulator sim{SchedulerKind::kCalendar};
  int ran = 0;
  sim.schedule(SimTime::millis(1), [&] { ++ran; });
  sim.schedule(SimTime::seconds(20), [&] { ++ran; });
  sim.clear();
  EXPECT_EQ(sim.events_pending(), 0u);
  sim.run_all();
  EXPECT_EQ(ran, 0);
}

TEST(CalendarQueueTest, DefaultSchedulerIsProcessWide) {
  EXPECT_EQ(Simulator::default_scheduler(), SchedulerKind::kCalendar);
  Simulator::set_default_scheduler(SchedulerKind::kBinaryHeap);
  Simulator heap_sim;
  EXPECT_EQ(heap_sim.scheduler_kind(), SchedulerKind::kBinaryHeap);
  Simulator::set_default_scheduler(SchedulerKind::kCalendar);
  Simulator cal_sim;
  EXPECT_EQ(cal_sim.scheduler_kind(), SchedulerKind::kCalendar);
}

// --------------------------------------------------------------------------
// Link + Node datapath
// --------------------------------------------------------------------------

struct TwoNodeFixture : ::testing::Test {
  Network net;
  Node* a = nullptr;
  Node* b = nullptr;
  Link* link = nullptr;

  void SetUp() override {
    a = &net.add_node("a", Ipv4Address{10, 0, 0, 1});
    b = &net.add_node("b", Ipv4Address{10, 0, 0, 2});
    link = &net.add_link(*a, *b,
                         LinkConfig{.rate_bps = 8e6,  // 1 byte/us
                                    .delay = SimTime::millis(1),
                                    .queue_bytes = 10000});
    a->set_default_route(0);
    b->set_default_route(0);
  }

  Packet make_udp(std::uint32_t payload) {
    Packet p;
    p.dst = b->address();
    p.proto = IpProto::kUdp;
    p.dst_port = 9;
    p.payload_bytes = payload;
    return p;
  }
};

TEST_F(TwoNodeFixture, PacketArrivesAfterSerializationPlusDelay) {
  auto sock = b->udp().open(9);
  SimTime arrival;
  sock->set_receive_callback([&](const Packet&) { arrival = net.simulator().now(); });

  a->send(make_udp(972));  // wire = 972 + 28 = 1000 bytes = 1ms at 8 Mbps
  net.simulator().run_all();
  EXPECT_EQ(arrival, SimTime::millis(2));  // 1ms tx + 1ms propagation
}

TEST_F(TwoNodeFixture, BackToBackPacketsQueueBehindEachOther) {
  auto sock = b->udp().open(9);
  std::vector<SimTime> arrivals;
  sock->set_receive_callback([&](const Packet&) { arrivals.push_back(net.simulator().now()); });

  a->send(make_udp(972));
  a->send(make_udp(972));
  net.simulator().run_all();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_EQ(arrivals[0], SimTime::millis(2));
  EXPECT_EQ(arrivals[1], SimTime::millis(3));  // queued behind the first
}

TEST_F(TwoNodeFixture, DropTailRejectsWhenBufferFull) {
  auto sock = b->udp().open(9);
  int received = 0;
  sock->set_receive_callback([&](const Packet&) { ++received; });

  // queue_bytes = 10000; each packet is 1000 wire bytes. The first starts
  // transmitting immediately; the backlog then grows until drops begin.
  for (int i = 0; i < 30; ++i) a->send(make_udp(972));
  net.simulator().run_all();
  EXPECT_LT(received, 30);
  EXPECT_GT(received, 5);
  EXPECT_GT(link->stats_from(*a).dropped_packets, 0u);
  EXPECT_EQ(link->stats_from(*a).tx_packets + link->stats_from(*a).dropped_packets, 30u);
}

TEST_F(TwoNodeFixture, DownedLinkDropsEverything) {
  auto sock = b->udp().open(9);
  int received = 0;
  sock->set_receive_callback([&](const Packet&) { ++received; });
  link->set_up(false);
  a->send(make_udp(100));
  net.simulator().run_all();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(link->stats_from(*a).dropped_packets, 1u);
}

TEST_F(TwoNodeFixture, TapsSeeSentAndReceived) {
  auto sock = b->udp().open(9);
  sock->set_receive_callback([](const Packet&) {});
  int sent_seen = 0, recv_seen = 0;
  a->add_tap([&](const Packet&, TapDirection d) { sent_seen += d == TapDirection::kSent; });
  b->add_tap([&](const Packet&, TapDirection d) { recv_seen += d == TapDirection::kReceived; });
  a->send(make_udp(10));
  net.simulator().run_all();
  EXPECT_EQ(sent_seen, 1);
  EXPECT_EQ(recv_seen, 1);
}

TEST_F(TwoNodeFixture, SourceAddressDefaultsAndSpoofingHonoured) {
  auto sock = b->udp().open(9);
  Ipv4Address seen_src;
  sock->set_receive_callback([&](const Packet& p) { seen_src = p.src; });

  a->send(make_udp(10));
  net.simulator().run_all();
  EXPECT_EQ(seen_src, a->address());

  Packet spoofed = make_udp(10);
  spoofed.src = Ipv4Address{1, 2, 3, 4};
  a->send(std::move(spoofed));
  net.simulator().run_all();
  EXPECT_EQ(seen_src, (Ipv4Address{1, 2, 3, 4}));
}

TEST_F(TwoNodeFixture, NoRouteCountsDrop) {
  Packet p = make_udp(10);
  p.dst = Ipv4Address{99, 99, 99, 99};
  // b has a default route, so use a fresh node with none.
  Node& c = net.add_node("c", Ipv4Address{10, 0, 0, 3});
  c.send(std::move(p));
  EXPECT_EQ(c.stats().dropped_no_route, 1u);
}

// --------------------------------------------------------------------------
// Routing through the star topology
// --------------------------------------------------------------------------

TEST(StarTopologyTest, DeviceReachesTServerThroughRouter) {
  Network net;
  StarTopology topo = build_star_topology(net, StarTopologyConfig{.device_count = 3});

  auto sock = topo.tserver->udp().open(5000);
  int received = 0;
  Ipv4Address last_src;
  sock->set_receive_callback([&](const Packet& p) {
    ++received;
    last_src = p.src;
  });

  for (Node* dev : topo.devices) {
    auto s = dev->udp().open();
    s->send_to(Endpoint{topo.tserver->address(), 5000}, 64, TrafficOrigin::kHttp);
  }
  net.simulator().run_all();
  EXPECT_EQ(received, 3);
  EXPECT_GT(topo.router->stats().forwarded_packets, 0u);
}

TEST(StarTopologyTest, TServerCanReplyToDevice) {
  Network net;
  StarTopology topo = build_star_topology(net, StarTopologyConfig{.device_count = 2});

  auto server_sock = topo.tserver->udp().open(5000);
  server_sock->set_receive_callback([&](const Packet& p) {
    server_sock->send_to(Endpoint{p.src, p.src_port}, 32, TrafficOrigin::kHttp);
  });

  auto dev_sock = topo.devices[0]->udp().open();
  int replies = 0;
  dev_sock->set_receive_callback([&](const Packet&) { ++replies; });
  dev_sock->send_to(Endpoint{topo.tserver->address(), 5000}, 16, TrafficOrigin::kHttp);
  net.simulator().run_all();
  EXPECT_EQ(replies, 1);
}

TEST(StarTopologyTest, TtlExpiryIsCounted) {
  Network net;
  StarTopology topo = build_star_topology(net, StarTopologyConfig{.device_count = 1});
  Packet p;
  p.dst = topo.tserver->address();
  p.dst_port = 7;
  p.proto = IpProto::kUdp;
  p.ttl = 1;  // dies at the router
  topo.devices[0]->send(std::move(p));
  net.simulator().run_all();
  EXPECT_EQ(topo.router->stats().dropped_ttl, 1u);
}

TEST(StarTopologyTest, RouteCacheMatchesLinearScanAndInvalidates) {
  // Enough devices that the router's table crosses the cache threshold.
  Network net;
  StarTopology topo = build_star_topology(net, StarTopologyConfig{.device_count = 12});
  ASSERT_TRUE(Node::route_cache_enabled());

  std::vector<Ipv4Address> dsts{topo.tserver->address(), topo.attacker->address()};
  for (Node* dev : topo.devices) dsts.push_back(dev->address());
  dsts.push_back(Ipv4Address{192, 168, 9, 9});  // no route: default or -1

  // Cached and scan results must agree for every destination — twice, so
  // the second pass reads populated cache slots.
  std::vector<int> cached;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& dst : dsts) cached.push_back(topo.router->route_lookup(dst));
  }
  Node::set_route_cache_enabled(false);
  std::vector<int> scanned;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& dst : dsts) scanned.push_back(topo.router->route_lookup(dst));
  }
  Node::set_route_cache_enabled(true);
  EXPECT_EQ(cached, scanned);

  // Adding a route must invalidate cached entries: the previously cached
  // unknown destination now resolves through the new more-specific route.
  const int before = topo.router->route_lookup(Ipv4Address{192, 168, 9, 9});
  topo.router->add_route(Ipv4Address{192, 168, 9, 0}, 24, 0);
  const int after = topo.router->route_lookup(Ipv4Address{192, 168, 9, 9});
  EXPECT_EQ(after, 0);
  // The star router has no default route, so the pre-invalidation answer
  // was "unroutable".
  EXPECT_EQ(before, -1);
}

TEST(StarTopologyTest, DuplicateNamesAndAddressesRejected) {
  Network net;
  net.add_node("x", Ipv4Address{1, 1, 1, 1});
  EXPECT_THROW(net.add_node("x", Ipv4Address{1, 1, 1, 2}), std::invalid_argument);
  EXPECT_THROW(net.add_node("y", Ipv4Address{1, 1, 1, 1}), std::invalid_argument);
}

// --------------------------------------------------------------------------
// UDP socket layer
// --------------------------------------------------------------------------

TEST_F(TwoNodeFixture, UdpPortDemultiplexing) {
  auto s1 = b->udp().open(1000);
  auto s2 = b->udp().open(2000);
  int on1 = 0, on2 = 0;
  s1->set_receive_callback([&](const Packet&) { ++on1; });
  s2->set_receive_callback([&](const Packet&) { ++on2; });

  auto client = a->udp().open();
  client->send_to(Endpoint{b->address(), 1000}, 8, TrafficOrigin::kHttp);
  client->send_to(Endpoint{b->address(), 2000}, 8, TrafficOrigin::kHttp);
  client->send_to(Endpoint{b->address(), 2000}, 8, TrafficOrigin::kHttp);
  net.simulator().run_all();
  EXPECT_EQ(on1, 1);
  EXPECT_EQ(on2, 2);
}

TEST_F(TwoNodeFixture, UdpToUnboundPortCountsDrop) {
  auto client = a->udp().open();
  client->send_to(Endpoint{b->address(), 4444}, 8, TrafficOrigin::kMiraiUdpFlood);
  net.simulator().run_all();
  EXPECT_EQ(b->udp().dropped_no_socket(), 1u);
  EXPECT_EQ(b->udp().delivered(), 0u);
}

TEST_F(TwoNodeFixture, UdpDoubleBindThrows) {
  auto s1 = b->udp().open(1000);
  EXPECT_THROW(b->udp().open(1000), std::invalid_argument);
}

TEST_F(TwoNodeFixture, UdpCloseReleasesPort) {
  auto s1 = b->udp().open(1000);
  s1->close();
  EXPECT_FALSE(s1->is_open());
  EXPECT_NO_THROW(b->udp().open(1000));
  EXPECT_THROW(s1->send_to(Endpoint{a->address(), 1}, 1, TrafficOrigin::kHttp),
               std::logic_error);
}

TEST_F(TwoNodeFixture, EphemeralPortsAreDistinct) {
  auto s1 = a->udp().open();
  auto s2 = a->udp().open();
  auto s3 = a->udp().open();
  EXPECT_NE(s1->port(), s2->port());
  EXPECT_NE(s2->port(), s3->port());
  EXPECT_GE(s1->port(), 1024);
}

TEST_F(TwoNodeFixture, AppDataRidesOnDatagram) {
  auto sock = b->udp().open(9);
  std::string seen;
  sock->set_receive_callback([&](const Packet& p) { seen = p.app_data; });
  auto client = a->udp().open();
  client->send_to(Endpoint{b->address(), 9}, 8, TrafficOrigin::kMiraiC2, "attack syn 10");
  net.simulator().run_all();
  EXPECT_EQ(seen, "attack syn 10");
}

// --------------------------------------------------------------------------
// Packet helpers
// --------------------------------------------------------------------------

TEST(PacketTest, WireBytesIncludesHeaders) {
  Packet tcp;
  tcp.proto = IpProto::kTcp;
  tcp.payload_bytes = 100;
  EXPECT_EQ(tcp.wire_bytes(), 140u);  // 20 IP + 20 TCP + 100

  Packet udp;
  udp.proto = IpProto::kUdp;
  udp.payload_bytes = 100;
  EXPECT_EQ(udp.wire_bytes(), 128u);  // 20 IP + 8 UDP + 100
}

TEST(PacketTest, TrafficClassOfOrigins) {
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kHttp), TrafficClass::kBenign);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kVideo), TrafficClass::kBenign);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kFtp), TrafficClass::kBenign);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kInfrastructure), TrafficClass::kBenign);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kMiraiScan), TrafficClass::kMalicious);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kMiraiC2), TrafficClass::kMalicious);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kMiraiSynFlood), TrafficClass::kMalicious);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kMiraiAckFlood), TrafficClass::kMalicious);
  EXPECT_EQ(traffic_class_of(TrafficOrigin::kMiraiUdpFlood), TrafficClass::kMalicious);
}

TEST(PacketTest, SummaryMentionsFlagsAndEndpoints) {
  Packet p;
  p.src = Ipv4Address{10, 0, 0, 1};
  p.dst = Ipv4Address{10, 0, 1, 1};
  p.src_port = 1234;
  p.dst_port = 80;
  p.proto = IpProto::kTcp;
  p.tcp_flags = TcpFlags::kSyn;
  const std::string s = p.summary();
  EXPECT_NE(s.find("10.0.0.1:1234"), std::string::npos);
  EXPECT_NE(s.find("10.0.1.1:80"), std::string::npos);
  EXPECT_NE(s.find("[S]"), std::string::npos);
}

}  // namespace
}  // namespace ddoshield::net
